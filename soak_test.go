package repro

import (
	"context"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/peachstar"
)

// soakModel mirrors the realtarget example's toy-Modbus model: the planted
// fault magic values sit among the legal sets so the campaign reaches the
// crash and hang paths within the soak budget.
func soakModel() *peachstar.Model {
	return peachstar.NewModel("SoakModbus",
		peachstar.Num("txn", 2, 1),
		peachstar.Num("proto", 2, 0).AsToken(),
		peachstar.Num("length", 2, 0).WithRel(peachstar.SizeOf, "tail", 0),
		peachstar.Blk("tail",
			peachstar.Num("unit", 1, 0xFF),
			peachstar.Alt("pdu",
				peachstar.Blk("read",
					peachstar.Num("fc", 1, 3).AsToken(),
					peachstar.Num("addr", 2, 0).WithLegal(0, 0x10, 0x7F),
					peachstar.Num("qty", 2, 4).WithLegal(1, 4, 0x7D),
				),
				peachstar.Blk("write",
					peachstar.Num("fc", 1, 6).AsToken(),
					peachstar.Num("addr", 2, 0x10).WithLegal(0x10, 0x40, 0xDE10, 0xDE90),
					peachstar.Num("val", 2, 0x1234),
				),
				peachstar.Blk("vendor",
					peachstar.Num("fc", 1, 0x41).AsToken(),
					peachstar.Num("op", 1, 0).WithLegal(0, 0xDE),
					peachstar.Num("arg", 1, 0),
				),
			),
		),
	)
}

// findPid locates the spawned toy server by scanning /proc for its unique
// temp-dir binary path — the soak's chaos arm deliberately bypasses the
// supervisor's own handle on the process.
func findPid(bin string) int {
	ents, err := os.ReadDir("/proc")
	if err != nil {
		return 0
	}
	for _, e := range ents {
		pid, err := strconv.Atoi(e.Name())
		if err != nil || pid <= 1 {
			continue
		}
		cmdline, err := os.ReadFile(filepath.Join("/proc", e.Name(), "cmdline"))
		if err != nil {
			continue
		}
		if strings.Contains(string(cmdline), bin) {
			return pid
		}
	}
	return 0
}

// TestSoakRealTarget is the chaos gate behind `make soak` (skipped unless
// PEACHSTAR_SOAK=1): a campaign against the real spawned toy server while
// a chaos goroutine SIGKILLs the server out from under the supervisor.
// The session must spend its full budget, observe the planted crashes and
// at least one watchdog hang on top of the injected kills, and every
// captured reproducer must replay without diverging — chaos kills replay
// clean (not input-driven), the planted faults replay to their signature.
func TestSoakRealTarget(t *testing.T) {
	if os.Getenv("PEACHSTAR_SOAK") != "1" {
		t.Skip("soak run not requested; set PEACHSTAR_SOAK=1 (or use `make soak`)")
	}
	const budget = 8000

	bin := filepath.Join(t.TempDir(), "soak-modbus-server")
	if out, err := exec.Command("go", "build", "-o", bin, "./examples/realtarget/server").CombinedOutput(); err != nil {
		t.Fatalf("building toy server: %v\n%s", err, out)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	target, err := peachstar.NewTarget("libmodbus")
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   target,
		Models:   []*peachstar.Model{soakModel()},
		Strategy: peachstar.PeachStar,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	backend := peachstar.WithProcOptions([]string{bin, "-listen", "{addr}"}, addr,
		peachstar.ProcOptions{ExecTimeout: 60 * time.Millisecond})

	run, err := campaign.Start(context.Background(), peachstar.RunConfig{
		Execs: budget,
		Exec:  backend,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Chaos arm: SIGKILL the live server every 300ms for as long as the
	// campaign runs. The supervisor must classify each death, restart, and
	// keep the campaign's coverage and corpus.
	var kills atomic.Int64
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		tick := time.NewTicker(300 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-run.Done():
				return
			case <-tick.C:
				if pid := findPid(bin); pid > 1 {
					if syscall.Kill(pid, syscall.SIGKILL) == nil {
						kills.Add(1)
					}
				}
			}
		}
	}()

	crashEvents := 0
	for ev := range run.Events() {
		if _, ok := ev.(peachstar.CrashEvent); ok {
			crashEvents++
		}
	}
	if err := run.Wait(); err != nil {
		t.Fatalf("session did not survive the chaos: %v", err)
	}
	<-chaosDone

	if got := kills.Load(); got < 3 {
		t.Fatalf("chaos landed only %d kills, want ≥ 3 (campaign too short for the soak to mean anything)", got)
	}
	stats := campaign.Stats()
	if stats.Execs < budget {
		t.Fatalf("campaign spent %d of %d execs — budget lost across restarts", stats.Execs, budget)
	}
	if stats.TargetRestarts < int(kills.Load()) {
		t.Fatalf("only %d target restarts for %d chaos kills", stats.TargetRestarts, kills.Load())
	}
	if stats.Hangs < 1 {
		t.Fatal("no watchdog hang observed; the vendor-op hang path never fired")
	}
	if stats.Edges == 0 || stats.CorpusPuzzles == 0 {
		t.Fatalf("coverage/corpus lost: %d edges, %d puzzles", stats.Edges, stats.CorpusPuzzles)
	}
	if crashEvents == 0 {
		t.Fatal("no crash events streamed during the soak")
	}

	// Every reproducer must replay cleanly: the planted exit faults to
	// their exact signature, the chaos kills to a surviving target.
	matched, replayed := 0, 0
	for _, rec := range campaign.Crashes() {
		if len(rec.Sequence) == 0 {
			continue
		}
		verdict, err := peachstar.ReplayCrash(backend, rec)
		if err != nil {
			t.Fatalf("replaying %s at %s: %v", rec.Kind, rec.Site, err)
		}
		replayed++
		switch {
		case verdict.Match:
			matched++
		case verdict.Outcome == "ok":
			// Not input-driven (a chaos kill): a clean replay is the
			// correct verdict.
		default:
			t.Errorf("reproducer for %s at %s DIVERGED: replayed to %s %s at %s",
				rec.Kind, rec.Site, verdict.Outcome, verdict.Kind, verdict.Site)
		}
	}
	if replayed == 0 {
		t.Fatal("no crash record carried a reproducer sequence")
	}
	if matched == 0 {
		t.Fatal("no reproducer replayed to its original signature (planted faults should)")
	}
	t.Logf("soak: %d execs, %d chaos kills, %d restarts, %d crashes (%d replayed, %d matched), %d hangs",
		stats.Execs, kills.Load(), stats.TargetRestarts, stats.UniqueCrashes, replayed, matched, stats.Hangs)
}
