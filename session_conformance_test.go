package repro

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/sandbox"
	"repro/internal/targets/iec104"
)

// Deep-state conformance: the reason session fuzzing exists, pinned as an
// experiment. The iec104.DeepSlave plants a fault reachable only through a
// correct multi-message session — STARTDT activation, at least two
// processed I-frames, then a single command, with no session reset in
// between. A sequence campaign walking the 104 state machine must find it
// within a modest budget; a single-packet campaign against the same target
// behind a per-connection executor provably cannot, because every
// execution starts from the deactivated state.

const deepFaultSite = "iec104deep.command.deep"

// perConnExec models the null hypothesis honestly: a real server that
// serves each packet on a fresh connection, so no session state survives
// between executions. Without it, a single-packet campaign against an
// in-process target would leak state across Runs and "find" the deep
// fault by accident of shared memory.
type perConnExec struct{ *executor.InProc }

func (x perConnExec) Run(pkt []byte) (sandbox.Result, error) {
	if err := x.BeginSession(); err != nil {
		return sandbox.Result{}, err
	}
	return x.InProc.Run(pkt)
}

// TestDeepStateConformance runs both arms at the same budget and seed.
func TestDeepStateConformance(t *testing.T) {
	const budget = 40000

	// Sequence arm: session fuzzing through the 104 state machine.
	tgt := iec104.NewDeep()
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     1,
		Session:  tgt.StateModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(budget)
	var deep int
	for _, r := range eng.Crashes().Records() {
		if r.Site != deepFaultSite {
			continue
		}
		deep++
		if len(r.Sequence) < 4 {
			t.Errorf("deep-fault reproducer has %d messages, want >= 4 (STARTDT + 2 I-frames + command)", len(r.Sequence))
		}
		if len(r.SeqStarts) == 0 || r.SeqStarts[0] != 0 {
			t.Errorf("deep-fault reproducer SeqStarts = %v, want a session boundary at 0", r.SeqStarts)
		}
	}
	if deep == 0 {
		t.Fatalf("sequence campaign did not reach %s in %d execs (crashes: %+v)",
			deepFaultSite, budget, eng.Crashes().Records())
	}
	if s := eng.Stats(); s.StatesReached != 2 {
		t.Errorf("sequence campaign reached %d states, want 2", s.StatesReached)
	}

	// Single-packet arm: same target, same budget, same seed — but each
	// packet is its own connection. The fault's gate (activation plus two
	// accepted I-frames) can never be open when the command arrives.
	tgt2 := iec104.NewDeep()
	eng2, err := core.New(core.Config{
		Models:   tgt2.Models(),
		Target:   tgt2,
		Strategy: core.StrategyPeachStar,
		Seed:     1,
		Executor: perConnExec{executor.NewInProc(tgt2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng2.Run(budget)
	for _, r := range eng2.Crashes().Records() {
		if r.Site == deepFaultSite {
			t.Fatalf("single-packet campaign reached the session-gated fault — the gate is broken: %+v", r)
		}
	}
	if s := eng2.Stats(); s.UniqueCrashes != 0 {
		t.Fatalf("single-packet arm crashed %d times; DeepSlave should only fault behind the session gate: %+v",
			s.UniqueCrashes, eng2.Crashes().Records())
	}
}

// TestSessionReproducibleRealTarget: a session campaign on the real IEC104
// state machine is reproducible for a fixed seed, adaptive on or off —
// the session analogue of TestAdaptiveReproducibleRealTarget.
func TestSessionReproducibleRealTarget(t *testing.T) {
	mk := func(adaptive bool) *core.Engine {
		tgt := iec104.NewDeep()
		eng, err := core.New(core.Config{
			Models:   tgt.Models(),
			Target:   tgt,
			Strategy: core.StrategyPeachStar,
			Seed:     5,
			Session:  tgt.StateModel(),
			Adaptive: adaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	for _, adaptive := range []bool{false, true} {
		a, b := mk(adaptive), mk(adaptive)
		a.Run(15000)
		b.Run(15000)
		sa, sb := a.Stats(), b.Stats()
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("adaptive=%v: session runs diverged:\n%+v\n%+v", adaptive, sa, sb)
		}
		if sa.Sequences == 0 || sa.StatesReached == 0 {
			t.Fatalf("adaptive=%v: session counters empty: %+v", adaptive, sa)
		}
	}
}
