package repro

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"
)

// TestSoakKillResume is the durable-checkpoint half of `make soak`
// (skipped unless PEACHSTAR_SOAK=1): a kill-9-and-resume storm against the
// peachstar CLI. The fuzzer itself — not the target — is repeatedly
// SIGKILLed mid-campaign and relaunched with -resume, so every relaunch
// warm-restarts from the last durable checkpoint.
//
// Because a serial in-process campaign is a pure function of its
// checkpoint state, the storm's final run must land on the *identical*
// final fingerprint as one uninterrupted run of the same seed and budget:
// each kill loses at most one checkpoint interval, and the resumed stream
// re-executes exactly what was lost. That subsumes the weaker guarantees
// (resumed coverage >= an equal-remaining-budget cold start, no banked
// crash lost) and also proves the atomic checkpoint write: a SIGKILL
// landing mid-write must never leave a half-written file behind, or the
// next -resume would refuse to start.
func TestSoakKillResume(t *testing.T) {
	if os.Getenv("PEACHSTAR_SOAK") != "1" {
		t.Skip("set PEACHSTAR_SOAK=1 (or run `make soak`) to run the kill-resume storm")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "peachstar-soak-cli")
	build := exec.Command("go", "build", "-o", bin, "./cmd/peachstar")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building peachstar CLI: %v\n%s", err, out)
	}

	const budget = 3000000
	base := []string{
		"-target", "libmodbus", "-adaptive",
		"-execs", strconv.Itoa(budget), "-seed", "7",
	}

	// Uninterrupted reference run: same seed and budget, no checkpoints.
	cold, err := exec.Command(bin, base...).CombinedOutput()
	if err != nil {
		t.Fatalf("cold reference run: %v\n%s", err, cold)
	}
	coldFinished := finishedLine(t, cold)

	ckpt := filepath.Join(dir, "campaign.ckpt")
	args := append(base, "-checkpoint", ckpt, "-checkpoint-every", "65536", "-resume")

	resumedAt := regexp.MustCompile(`resumed from .*: (\d+) execs`)
	kills, prevResume := 0, 0
	var final []byte
	for attempt := 0; ; attempt++ {
		if attempt > 40 {
			t.Fatalf("campaign did not finish after %d kills and %d attempts", kills, attempt)
		}
		cmd := exec.Command(bin, args...)
		var buf bytes.Buffer
		cmd.Stdout, cmd.Stderr = &buf, &buf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()

		// Storm phase: give the campaign a slice of progress, then
		// SIGKILL it. Once enough kills landed, let it run out. The
		// output buffer is only read after Wait returns, when the
		// exec-internal copiers are finished with it.
		var runErr error
		finished := false
		if kills < 8 {
			select {
			case runErr = <-done:
				finished = true // budget spent before the storm was over
			case <-time.After(400 * time.Millisecond):
				_ = cmd.Process.Kill()
				<-done
				kills++
			}
		} else {
			runErr = <-done
			finished = true
		}
		out := buf.Bytes()

		if m := resumedAt.FindSubmatch(out); m != nil {
			at, _ := strconv.Atoi(string(m[1]))
			if at < prevResume {
				t.Fatalf("resume mark went backwards: %d after %d", at, prevResume)
			}
			if at >= budget {
				t.Fatalf("resume mark %d at or past the %d budget", at, budget)
			}
			prevResume = at
		}
		if !finished {
			continue
		}
		if runErr != nil {
			t.Fatalf("campaign attempt %d failed: %v\n%s", attempt, runErr, out)
		}
		final = out
		break
	}
	t.Logf("storm: %d SIGKILLs, last resume mark %d of %d execs", kills, prevResume, budget)
	if kills == 0 {
		t.Fatal("storm killed the campaign zero times; budget too small for this machine")
	}

	if got, want := finishedLine(t, final), coldFinished; got != want {
		t.Fatalf("killed-and-resumed campaign diverged from the uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// The final checkpoint must still restore: the file the storm leaves
	// behind is a valid save of the finished campaign.
	restored := newCheckpointCampaign(t, "libmodbus", 1, true, false)
	if err := restored.RestoreCheckpoint(ckpt); err != nil {
		t.Fatalf("final checkpoint does not restore: %v", err)
	}
	if restored.Stats().Execs != budget {
		t.Fatalf("final checkpoint holds %d execs, want %d", restored.Stats().Execs, budget)
	}
}

// finishedLine extracts the CLI's final summary line, the campaign's whole
// fingerprint (execs, paths, edges, crashes, hangs, corpus).
func finishedLine(t *testing.T, out []byte) string {
	t.Helper()
	m := regexp.MustCompile(`(?m)^finished: .*$`).Find(out)
	if m == nil {
		t.Fatalf("no finished line in output:\n%s", out)
	}
	return string(m)
}
