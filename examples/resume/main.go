// Resume: durable campaign checkpoints and warm restart.
//
// The first half of the campaign runs with a checkpoint file configured
// (RunConfig.CheckpointPath), exactly as a long-running fuzzer would.
// Then the process "dies": we throw the campaign away and rebuild it from
// nothing but the checkpoint file, spend the remaining budget, and compare
// against a campaign that was never interrupted. For a serial in-process
// campaign the two are bit-for-bit identical — the checkpoint carries
// every stateful layer, target wear included.
//
//	go run ./examples/resume
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"

	"repro/peachstar"
)

func newCampaign() *peachstar.Campaign {
	target, err := peachstar.NewTarget("libmodbus")
	if err != nil {
		log.Fatal(err)
	}
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   target,
		Strategy: peachstar.PeachStar,
		Seed:     1,
		Adaptive: true, // learned mutator weights resume too
	})
	if err != nil {
		log.Fatal(err)
	}
	return campaign
}

func main() {
	execs := flag.Int("execs", 30000, "total execution budget")
	flag.Parse()

	dir, err := os.MkdirTemp("", "peachstar-resume")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "campaign.ckpt")

	// Phase 1: fuzz the first half with durable checkpoints enabled.
	// Checkpoints are written atomically every CheckpointEvery execs and
	// once at session end; each write surfaces as a CheckpointEvent.
	first := newCampaign()
	run, err := first.Start(context.Background(), peachstar.RunConfig{
		Execs:           *execs / 2,
		CheckpointPath:  ckpt,
		CheckpointEvery: *execs / 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	for ev := range run.Events() {
		if ce, ok := ev.(peachstar.CheckpointEvent); ok && ce.Err == nil {
			fmt.Printf("checkpoint at %6d execs (%d bytes)\n", ce.Execs, ce.Bytes)
		}
	}
	if err := run.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first life ends: %d execs, %d edges\n",
		first.Stats().Execs, first.Stats().Edges)

	// The process dies here. Nothing of `first` survives but the file.

	// Phase 2: warm restart. A freshly built campaign restores the
	// checkpoint and spends the remaining budget (Run takes the absolute
	// target, so it continues rather than starting over).
	resumed := newCampaign()
	if err := resumed.RestoreCheckpoint(ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed: %d execs, %d edges\n",
		resumed.Stats().Execs, resumed.Stats().Edges)
	resumed.Run(*execs)

	// The reference: the same campaign, never interrupted.
	straight := newCampaign()
	straight.Run(*execs)

	if !reflect.DeepEqual(resumed.Stats(), straight.Stats()) {
		log.Fatalf("resumed campaign diverged:\n got %+v\nwant %+v",
			resumed.Stats(), straight.Stats())
	}
	s := resumed.Stats()
	fmt.Printf("resume: continuation matches the uninterrupted campaign (%d execs, %d edges, %d crashes)\n",
		s.Execs, s.Edges, s.UniqueCrashes)
}
