// Mesh: three hub-less fleet nodes on loopback in a single process — the
// smallest complete demonstration of a gossip-mesh Peach* campaign. There
// is no hub: every node runs the sync accept loop AND keeps uplinks to its
// peers, and the whole mesh is bootstrapped from one seed address (the
// handshake peer exchange spreads the rest). On real hardware each block
// below runs as its own `peachstar -mesh` process on its own machine; the
// protocol is identical.
//
// Each node's campaign runs as one Campaign.Start session with its mesh
// membership attached; the node handles are kept across sessions for the
// settlement rounds.
//
//	go run ./examples/mesh [-execs N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/peachstar"
)

func main() {
	execs := flag.Int("execs", 30000, "total execution budget across the three nodes")
	flag.Parse()

	// Every node shares the campaign seed but fuzzes its own RNG stream
	// (SeedStream), so the mesh is one reproducible campaign with no
	// duplicated work. On separate machines each block is
	// `peachstar -mesh :7712 -advertise host<k>:7712 -peers host0:7712 -seed 1 -seed-stream <k>`.
	type node struct {
		name     string
		campaign *peachstar.Campaign
		mesh     *peachstar.MeshNode
	}
	var nodes []*node
	var seedAddr string
	for k := 0; k < 3; k++ {
		target, err := peachstar.NewTarget("libmodbus")
		if err != nil {
			log.Fatal(err)
		}
		campaign, err := peachstar.NewCampaign(peachstar.Options{
			Target:     target,
			Strategy:   peachstar.PeachStar,
			Seed:       1,
			SeedStream: k,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts := peachstar.MeshOptions{Listen: "127.0.0.1:0"}
		if k > 0 {
			// Later nodes bootstrap from the first node's address only;
			// they learn of each other through the handshake peer
			// exchange and dial direct links.
			opts.Peers = []string{seedAddr}
		}
		mesh, err := campaign.JoinMesh(opts)
		if err != nil {
			log.Fatal(err)
		}
		defer mesh.Close()
		if k == 0 {
			seedAddr = mesh.Addr()
		}
		nodes = append(nodes, &node{name: fmt.Sprintf("node-%d", k), campaign: campaign, mesh: mesh})
		fmt.Printf("%s: accepting mesh peers on %s\n", nodes[k].name, mesh.Addr())
	}

	// Run all three nodes concurrently, each spending a third of the
	// budget and syncing with its peers every 1024 executions: one
	// session per node, the mesh node attached borrowed (WithMesh would
	// instead create a node owned by — and closed with — the session).
	var wg sync.WaitGroup
	for _, n := range nodes {
		run, err := n.campaign.Start(context.Background(), peachstar.RunConfig{
			Execs:     *execs / 3,
			SyncEvery: 1024,
			Attach:    []peachstar.Attachment{n.mesh.Attachment()},
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(n *node, run *peachstar.Run) {
			defer wg.Done()
			if err := run.Wait(); err != nil {
				log.Printf("%s: %v", n.name, err)
			}
		}(n, run)
	}
	wg.Wait()

	// Settlement rounds: with no hub holding the union, a node's final
	// discoveries reach everyone after at most a couple of gossip hops.
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			if err := n.mesh.Sync(); err != nil {
				log.Printf("%s settlement: %v", n.name, err)
			}
		}
	}

	// Every node now agrees on the campaign union — and every node both
	// accepted inbound peers or kept uplinks, with no designated hub.
	for _, n := range nodes {
		s := n.campaign.Stats()
		uplinks, inbound, known := n.mesh.PeerStats()
		fmt.Printf("%s: %d execs locally, %d edges, %d unique crashes, corpus %d puzzles (%d uplinks, %d inbound, %d known peers)\n",
			n.name, s.Execs, s.Edges, s.UniqueCrashes, s.CorpusPuzzles, uplinks, inbound, known)
	}

	a, b, c := nodes[0].campaign.Stats(), nodes[1].campaign.Stats(), nodes[2].campaign.Stats()
	if a.Edges == b.Edges && b.Edges == c.Edges {
		fmt.Printf("mesh converged: all nodes report %d edges with no hub\n", a.Edges)
	} else {
		fmt.Printf("mesh NOT converged: %d vs %d vs %d edges\n", a.Edges, b.Edges, c.Edges)
	}
}
