// Command server is the toy stateful IEC-104-style TCP target for the
// stateful-fuzzing example and the executor session tests. Its interesting
// behavior is deliberately gated behind per-connection session state, the
// way real ICS servers gate theirs:
//
//   - STARTDT activation: I-frames are ignored until the connection has
//     seen a STARTDT-act U-frame (0x68 04 07 00 00 00).
//   - Receive sequence numbers: an I-frame is accepted only when its N(S)
//     matches the connection's receive counter — replayed or reordered
//     frames are acknowledged but not processed.
//   - A planted fault: a single-command ASDU (type 0x2d) accepted after
//     two already-accepted I-frames exits the process — reachable only
//     through a correct 3-message prefix on one session, never by a
//     single packet.
//   - A one-shot connection drop: the first I-frame carrying ASDU type
//     0xfe makes the server close the connection without dying (the
//     fault-injection hook); later ones are acknowledged normally.
//
// Malformed frames (bad start byte, bad length) shed the connection, like
// the toy Modbus server. All session state is per connection: a
// reconnecting client starts from scratch.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
)

// dropArmed arms the one-shot connection-drop fault; per process, so a
// replay against a fresh instance sees the same drop at the same step.
var dropArmed = true

func main() {
	listen := flag.String("listen", "127.0.0.1:2404", "address to serve on")
	flag.Parse()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		handle(conn)
	}
}

// uFrame builds a U-format APCI with the given control byte.
func uFrame(ctrl byte) []byte { return []byte{0x68, 0x04, ctrl, 0x00, 0x00, 0x00} }

// sFrame builds an S-format ack carrying the receive counter.
func sFrame(vr byte) []byte { return []byte{0x68, 0x04, 0x01, 0x00, vr << 1, 0x00} }

// handle serves one connection; session state lives and dies with it.
func handle(c net.Conn) {
	defer c.Close()
	started := false
	vr := byte(0) // expected N(S) of the next accepted I-frame
	accepted := 0 // I-frames accepted on this connection
	buf := make([]byte, 4096)
	for {
		n, err := c.Read(buf)
		if err != nil {
			return
		}
		pkt := buf[:n]
		if len(pkt) < 6 || pkt[0] != 0x68 || int(pkt[1]) != len(pkt)-2 {
			return // malformed: shed the connection
		}
		ctrl1 := pkt[2]
		switch {
		case ctrl1&0x03 == 0x03: // U-format
			switch ctrl1 {
			case 0x07: // STARTDT act
				started, vr, accepted = true, 0, 0
				c.Write(uFrame(0x0b))
			case 0x13: // STOPDT act
				started = false
				c.Write(uFrame(0x23))
			case 0x43: // TESTFR act
				c.Write(uFrame(0x83))
			default:
				c.Write(sFrame(vr))
			}
		case ctrl1&0x01 == 0x01: // S-format
			c.Write(sFrame(vr))
		default: // I-format
			if len(pkt) >= 9 && pkt[6] == 0xfe {
				if dropArmed {
					dropArmed = false
					return // one-shot injected connection drop
				}
				c.Write(sFrame(vr))
				continue
			}
			ns := ctrl1 >> 1 // 7 bits are plenty for the toy
			if !started || ns != vr || len(pkt) < 12 {
				c.Write(sFrame(vr)) // acknowledged, not processed
				continue
			}
			if pkt[6] == 0x2d && accepted >= 2 {
				os.Exit(3) // planted deep-state fault
			}
			vr++
			accepted++
			c.Write(sFrame(vr))
		}
	}
}
