// Stateful: session fuzzing through a protocol state machine — the
// sequence-level counterpart of the quickstart's single-packet campaign.
// With Options.Sessions set, each engine iteration walks the target's
// session state model (for the built-in IEC104 target, the STARTDT
// activation gate of IEC 60870-5-104): it generates a legal message
// sequence, sends it through one simulated connection, and attributes
// coverage to the protocol state each message was sent from. Valuable
// sequences enter the corpus and are mutated at message granularity —
// spliced, reordered, dropped, truncated — alongside the usual byte-level
// payload mutation.
//
// The bundled TCP server (examples/stateful/server) is the same state
// machine as a real process, for fuzzing over the wire with -exec-cmd (see
// the executor session tests); this example stays in-process to keep the
// walkthrough deterministic.
//
//	go run ./examples/stateful
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/peachstar"
)

func main() {
	execs := flag.Int("execs", 20000, "campaign execution budget (messages, not sequences)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	flag.Parse()

	target, err := peachstar.NewTarget("IEC104")
	if err != nil {
		log.Fatal(err)
	}
	// Sessions flips the campaign to sequence fuzzing; the state machine
	// comes from the target itself (it implements peachstar.SessionTarget).
	// A custom machine — hand-built States or a Pit file's <StateModel>
	// via ParsePitDocument — would go in Options.StateModel instead.
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   target,
		Strategy: peachstar.PeachStar,
		Seed:     *seed,
		Sessions: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("session-fuzzing %s for %d execs\n", target.Name(), *execs)
	run, err := campaign.Start(context.Background(), peachstar.RunConfig{Execs: *execs})
	if err != nil {
		log.Fatal(err)
	}
	for ev := range run.Events() {
		switch ev := ev.(type) {
		case peachstar.StateEvent:
			fmt.Printf("reached state %q at exec %d\n", ev.State, ev.Exec)
		case peachstar.CrashEvent:
			fmt.Printf("crash: %s at %s (%d-message sequence)\n",
				ev.Record.Kind, ev.Record.Site, len(ev.Record.Sequence))
		}
	}
	if err := run.Wait(); err != nil {
		log.Fatal(err)
	}

	stats := campaign.Stats()
	fmt.Printf("execs %d: %d sequences, %d edges, %d paths, corpus %d\n",
		stats.Execs, stats.Sequences, stats.Edges, stats.Paths, stats.CorpusPuzzles)
	for _, sc := range stats.StateCoverage {
		fmt.Printf("  state %-10s %8d messages sent  %4d edges first lit here\n",
			sc.State, sc.Sent, sc.Edges)
	}
	for _, op := range stats.SeqOpStats {
		fmt.Printf("  op %-14s %8d trials  %4d hits\n", op.Name, op.Trials, op.Hits)
	}
	fmt.Printf("stateful: done (%d/%d states reached)\n",
		stats.StatesReached, len(stats.StateCoverage))
}
