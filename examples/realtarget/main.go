// Realtarget: fuzz a real server process over TCP — the execution-backend
// counterpart of the quickstart's in-process campaign. The example builds
// the bundled toy Modbus-TCP server (examples/realtarget/server), spawns
// it under the process supervisor, and fuzzes it with a data model biased
// toward the server's planted faults: crashes are detected from exit
// statuses, hangs by the watchdog, and the target is restarted each time
// with the campaign's coverage and corpus intact. Afterwards every
// captured crash is replayed from its packet-sequence reproducer against a
// fresh server instance to show the reproducers are deterministic.
//
//	go run ./examples/realtarget
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/peachstar"
)

// toyModel describes the toy server's surface with the planted-fault
// magic values among the legal sets, so the generator reaches the crash
// and hang paths within a small budget.
func toyModel() *peachstar.Model {
	return peachstar.NewModel("ToyModbus",
		peachstar.Num("txn", 2, 1),
		peachstar.Num("proto", 2, 0).AsToken(),
		peachstar.Num("length", 2, 0).WithRel(peachstar.SizeOf, "tail", 0),
		peachstar.Blk("tail",
			peachstar.Num("unit", 1, 0xFF),
			peachstar.Alt("pdu",
				peachstar.Blk("read",
					peachstar.Num("fc", 1, 3).AsToken(),
					peachstar.Num("addr", 2, 0).WithLegal(0, 0x10, 0x7F),
					peachstar.Num("qty", 2, 4).WithLegal(1, 4, 0x7D),
				),
				peachstar.Blk("write",
					peachstar.Num("fc", 1, 6).AsToken(),
					// 0xDExx addresses are the planted register corruption.
					peachstar.Num("addr", 2, 0x10).WithLegal(0x10, 0x40, 0xDE10, 0xDE90),
					peachstar.Num("val", 2, 0x1234),
				),
				peachstar.Blk("vendor",
					peachstar.Num("fc", 1, 0x41).AsToken(),
					// A 0xDE operand wedges the handler (the watchdog case).
					peachstar.Num("op", 1, 0).WithLegal(0, 0xDE),
					peachstar.Num("arg", 1, 0),
				),
			),
		),
	)
}

// buildServer compiles the toy server into a temp dir and returns the
// binary path plus a cleanup func.
func buildServer() (string, func()) {
	dir, err := os.MkdirTemp("", "realtarget")
	if err != nil {
		log.Fatal(err)
	}
	bin := filepath.Join(dir, "toy-modbus-server")
	out, err := exec.Command("go", "build", "-o", bin, "./examples/realtarget/server").CombinedOutput()
	if err != nil {
		os.RemoveAll(dir)
		log.Fatalf("building toy server: %v\n%s", err, out)
	}
	return bin, func() { os.RemoveAll(dir) }
}

// pickAddr reserves a free loopback port for the server.
func pickAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func main() {
	execs := flag.Int("execs", 2500, "campaign execution budget")
	seed := flag.Uint64("seed", 1, "campaign seed")
	verbose := flag.Bool("v", false, "log supervisor lifecycle events")
	flag.Parse()

	bin, cleanup := buildServer()
	defer cleanup()
	addr := pickAddr()

	// The campaign is an ordinary Peach* campaign — same models-in,
	// coverage-feedback loop; only the execution seam differs. The
	// in-process target only lends its name here: with RunConfig.Exec set,
	// every generated packet goes to the spawned server instead.
	target, err := peachstar.NewTarget("libmodbus")
	if err != nil {
		log.Fatal(err)
	}
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   target,
		Models:   []*peachstar.Model{toyModel()},
		Strategy: peachstar.PeachStar,
		Seed:     *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := peachstar.ProcOptions{ExecTimeout: 100 * time.Millisecond}
	if *verbose {
		opts.Logf = log.Printf
	}
	backend := peachstar.WithProcOptions([]string{bin, "-listen", "{addr}"}, addr, opts)

	fmt.Printf("fuzzing %s at %s for %d execs\n", filepath.Base(bin), addr, *execs)
	run, err := campaign.Start(context.Background(), peachstar.RunConfig{
		Execs: *execs,
		Exec:  backend,
	})
	if err != nil {
		log.Fatal(err)
	}
	for ev := range run.Events() {
		if c, ok := ev.(peachstar.CrashEvent); ok {
			fmt.Printf("crash: %s at %s (%d-packet reproducer)\n",
				c.Record.Kind, c.Record.Site, len(c.Record.Sequence))
		}
	}
	if err := run.Wait(); err != nil {
		log.Fatal(err)
	}

	stats := campaign.Stats()
	fmt.Printf("execs %d: %d edges, %d unique crashes, %d hangs, %d target restarts\n",
		stats.Execs, stats.Edges, stats.UniqueCrashes, stats.Hangs, stats.TargetRestarts)

	// Replay each captured reproducer against a fresh server instance (the
	// campaign's own is gone — the session killed it on shutdown).
	matched := 0
	for _, rec := range campaign.Crashes() {
		if len(rec.Sequence) == 0 {
			continue
		}
		verdict, err := peachstar.ReplayCrash(backend, rec)
		if err != nil {
			log.Fatalf("replaying %s at %s: %v", rec.Kind, rec.Site, err)
		}
		status := "DIVERGED"
		switch {
		case verdict.Match:
			status = "reproduced"
			matched++
		case verdict.Outcome == "ok":
			status = "not input-driven (target survived replay)"
		}
		fmt.Printf("replay %s at %s: %s\n", rec.Kind, rec.Site, status)
	}
	fmt.Printf("realtarget: done (%d/%d reproducers verified)\n", matched, len(campaign.Crashes()))
}
