// Command server is the toy Modbus-TCP target the realtarget example (and
// the executor acceptance tests) fuzz as a real process: a standalone
// server that parses MBAP-framed requests, answers function codes 3 and 6,
// and carries deliberately planted faults so the supervision loop has
// something to catch —
//
//   - holding-register write (fc 6) to an address whose high byte is 0xDE
//     aborts the process (two distinct exit codes for two address ranges,
//     so crash deduplication has two signatures to separate),
//   - function code 0x41 with a 0xDE operand wedges the connection handler
//     in a busy loop (the watchdog's hang case),
//   - everything else gets a well-formed response or a Modbus exception,
//     giving the fuzzer's response-derived coverage honest signal.
//
// Flags: -listen host:port (default 127.0.0.1:15502), -udp to serve
// datagrams instead of a stream.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"net"
	"os"
)

// Deliberate-fault exit codes: distinct codes give the supervisor distinct
// crash signatures ("exit:41" vs "exit:42").
const (
	exitCrashLow  = 41 // fc6 write to 0xDExx with xx < 0x80
	exitCrashHigh = 42 // fc6 write to 0xDExx with xx >= 0x80
)

func main() {
	listen := flag.String("listen", "127.0.0.1:15502", "host:port to serve on")
	udp := flag.Bool("udp", false, "serve UDP datagrams instead of TCP")
	flag.Parse()

	if *udp {
		serveUDP(*listen)
		return
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintf(os.Stderr, "server: accept: %v\n", err)
			os.Exit(1)
		}
		// One connection at a time: the fuzzer drives a single stream, and
		// a crash must take the whole process down, not a goroutine.
		serveConn(conn)
	}
}

// serveConn handles one client stream: read an MBAP frame, handle, reply,
// until the client goes away.
func serveConn(conn net.Conn) {
	defer conn.Close()
	hdr := make([]byte, 7)
	body := make([]byte, 256)
	for {
		if _, err := readFull(conn, hdr); err != nil {
			return
		}
		// MBAP: transaction(2) protocol(2) length(2) unit(1); length
		// counts unit+PDU.
		length := int(binary.BigEndian.Uint16(hdr[4:6]))
		if length < 2 || length > 1+len(body) {
			// Malformed frame: drop the connection, like a server that
			// lost framing. The fuzzer must survive this without calling
			// it a crash.
			return
		}
		pdu := body[:length-1]
		if _, err := readFull(conn, pdu); err != nil {
			return
		}
		resp := handle(hdr, pdu)
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

// serveUDP is the datagram flavor: one request per packet, same PDU logic.
func serveUDP(listen string) {
	pc, err := net.ListenPacket("udp", listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "server: %v\n", err)
		os.Exit(1)
	}
	buf := make([]byte, 512)
	for {
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "server: read: %v\n", err)
			os.Exit(1)
		}
		if n < 8 {
			continue // not even a header plus a function code: ignore
		}
		resp := handle(buf[:7], buf[7:n])
		pc.WriteTo(resp, from)
	}
}

// registers is the server's holding-register bank.
var registers [128]uint16

// handle processes one PDU and builds the response frame (MBAP header
// echoed with the response length).
func handle(hdr, pdu []byte) []byte {
	if len(pdu) == 0 {
		return exception(hdr, 0, 1) // illegal function
	}
	fc := pdu[0]
	switch fc {
	case 3: // read holding registers
		if len(pdu) < 5 {
			return exception(hdr, fc, 3) // illegal data value
		}
		addr := binary.BigEndian.Uint16(pdu[1:3])
		count := binary.BigEndian.Uint16(pdu[3:5])
		if count == 0 || count > 0x7D || int(addr)+int(count) > len(registers) {
			return exception(hdr, fc, 2) // illegal data address
		}
		data := make([]byte, 2+1+2*count)
		data[0] = fc
		data[1] = byte(2 * count)
		for i := uint16(0); i < count; i++ {
			binary.BigEndian.PutUint16(data[2+2*i:], registers[addr+i])
		}
		return frame(hdr, data[:2+2*count])
	case 6: // write single register
		if len(pdu) < 5 {
			return exception(hdr, fc, 3)
		}
		addr := binary.BigEndian.Uint16(pdu[1:3])
		val := binary.BigEndian.Uint16(pdu[3:5])
		if addr>>8 == 0xDE {
			// Planted fault: a write into the 0xDExx range "corrupts" the
			// server. Two address sub-ranges die with two distinct codes,
			// so the fuzzer's crash bank should end up with two records.
			fmt.Fprintf(os.Stderr, "server: fatal register corruption at %#04x\n", addr)
			if addr&0x80 == 0 {
				os.Exit(exitCrashLow)
			}
			os.Exit(exitCrashHigh)
		}
		if int(addr) >= len(registers) {
			return exception(hdr, fc, 2)
		}
		registers[addr] = val
		return frame(hdr, pdu[:5]) // echo, per the spec
	case 0x41:
		// Planted hang: the vendor-specific opcode wedges the handler when
		// its first operand byte carries the magic 0xDE (gated so fuzzing
		// campaigns hit it occasionally, not constantly).
		if len(pdu) >= 2 && pdu[1] == 0xDE {
			for {
			}
		}
		return exception(hdr, fc, 1)
	default:
		return exception(hdr, fc, 1)
	}
}

// frame wraps a response PDU in the request's MBAP header.
func frame(hdr, pdu []byte) []byte {
	out := make([]byte, 7+len(pdu))
	copy(out, hdr[:4])
	binary.BigEndian.PutUint16(out[4:6], uint16(1+len(pdu)))
	out[6] = hdr[6]
	copy(out[7:], pdu)
	return out
}

// exception builds a Modbus exception response (function | 0x80, code).
func exception(hdr []byte, fc, code byte) []byte {
	return frame(hdr, []byte{fc | 0x80, code})
}

// readFull fills buf from the stream.
func readFull(conn net.Conn, buf []byte) (int, error) {
	read := 0
	for read < len(buf) {
		n, err := conn.Read(buf[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}
