// Quickstart: fuzz the libmodbus target with Peach* for a fixed execution
// budget and print what the campaign found.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/peachstar"
)

func main() {
	// Pick one of the six built-in ICS protocol targets.
	target, err := peachstar.NewTarget("libmodbus")
	if err != nil {
		log.Fatal(err)
	}

	// A campaign is fully reproducible under a fixed seed.
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   target,
		Strategy: peachstar.PeachStar,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Fuzz in slices so progress is visible.
	for _, budget := range []int{5000, 10000, 20000, 40000} {
		campaign.Run(budget)
		s := campaign.Stats()
		fmt.Printf("execs %6d: %3d paths, %3d edges, %d unique crashes, %4d puzzles\n",
			s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.CorpusPuzzles)
	}

	// Report unique faults, ASan-style.
	for _, c := range campaign.Crashes() {
		fmt.Printf("\n%s in %s\n", c.Kind, c.Site)
		fmt.Printf("  first triggered at execution %d, hit %d times\n", c.FirstExec, c.Count)
		fmt.Printf("  reproducer packet: %x\n", c.Example)
	}
	if len(campaign.Crashes()) == 0 {
		fmt.Println("\nno crashes at this budget — raise it or try another seed")
	}
}
