// Quickstart: fuzz the libmodbus target with Peach* for a fixed execution
// budget, watching the campaign's typed event stream, and print what it
// found.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/peachstar"
)

func main() {
	// Pick one of the six built-in ICS protocol targets.
	target, err := peachstar.NewTarget("libmodbus")
	if err != nil {
		log.Fatal(err)
	}

	// A campaign is fully reproducible under a fixed seed.
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   target,
		Strategy: peachstar.PeachStar,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Start one session for the whole budget. The returned Run is a live
	// handle: its event stream reports progress, new coverage and crashes
	// as they happen, and closes when the budget is spent — so ranging
	// over it doubles as the wait. (Campaign.Run(40000) would do the same
	// without the live view; ctx cancellation or run.Stop() would end the
	// session early.)
	run, err := campaign.Start(context.Background(), peachstar.RunConfig{
		Execs:      40000,
		StatsEvery: 10000,
	})
	if err != nil {
		log.Fatal(err)
	}
	for ev := range run.Events() {
		switch ev := ev.(type) {
		case peachstar.StatsEvent:
			s := ev.Stats
			fmt.Printf("execs %6d: %3d paths, %3d edges, %d unique crashes, %4d puzzles\n",
				s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.CorpusPuzzles)
		case peachstar.CrashEvent:
			fmt.Printf("crash found: %s in %s\n", ev.Record.Kind, ev.Record.Site)
		}
	}
	if err := run.Wait(); err != nil {
		log.Fatal(err)
	}

	// Report unique faults, ASan-style.
	for _, c := range campaign.Crashes() {
		fmt.Printf("\n%s in %s\n", c.Kind, c.Site)
		fmt.Printf("  first triggered at execution %d, hit %d times\n", c.FirstExec, c.Count)
		fmt.Printf("  reproducer packet: %x\n", c.Example)
	}
	if len(campaign.Crashes()) == 0 {
		fmt.Println("\nno crashes at this budget — raise it or try another seed")
	}
}
