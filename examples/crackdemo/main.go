// Crackdemo: a guided tour of the paper's core mechanism — coverage-guided
// packet crack and generation — without running a fuzzing campaign.
//
// It walks the three steps of §IV on the lib60870 (CS101) models:
//
//  1. a "valuable" packet is cracked against the data-model set
//     (Algorithm 2), printing the instantiation tree,
//
//  2. the resulting puzzles are shown with their construction-rule
//     signatures (Definition 2),
//
//  3. a new packet for a *different* opcode is assembled with donated
//     puzzles and repaired by File Fixup (Algorithm 3, §IV-D).
//
//     go run ./examples/crackdemo
package main

import (
	"fmt"
	"log"

	"repro/peachstar"
)

func main() {
	target, err := peachstar.NewTarget("lib60870")
	if err != nil {
		log.Fatal(err)
	}
	models := target.Models()

	// Step 0: produce a packet with one model — in a live campaign this
	// would be a generated seed that triggered new coverage.
	var single, setpoint *peachstar.Model
	for _, m := range models {
		switch m.Name {
		case "SinglePointInfo":
			single = m
		case "SetpointScaled":
			setpoint = m
		}
	}
	valuable := single.Generate()
	packet := valuable.Bytes()
	fmt.Printf("valuable packet (%s): %x\n", single.Name, packet)

	// Step 1: crack it against every model of the specification
	// (Algorithm 2's PARSE + LEGAL loop).
	fmt.Println("\ncracking against the model set:")
	for _, m := range models {
		ins, err := m.Crack(packet)
		if err != nil {
			fmt.Printf("  %-18s rejected\n", m.Name)
			continue
		}
		fmt.Printf("  %-18s LEGAL -> %s\n", m.Name, ins)
	}

	// Step 2: the puzzles. Every leaf of the instantiation tree is one
	// donor-able piece; interior nodes contribute composed puzzles.
	ins, err := single.Crack(packet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npuzzles cracked from the packet (leaf chunks):")
	for _, leaf := range ins.Leaves(nil) {
		fmt.Printf("  %-12s %-28s data=%x\n",
			leaf.Chunk.Name, peachstar.RuleSignature(leaf.Chunk), leaf.Data)
	}

	// Step 3: semantic-aware generation. Donate the cracked "objects"
	// payload into the SetpointScaled model — a different opcode whose
	// objects chunk conforms to the same construction rule (§III) — and
	// let File Fixup re-establish the frame's two length octets and its
	// checksum.
	donor := ins.Find("objects")
	recipient := setpoint.Generate()
	fmt.Printf("\nrecipient before donation (%s): %x\n", setpoint.Name, recipient.Bytes())
	recipient.Find("objects").Data = append([]byte(nil), donor.Data...)
	setpoint.ApplyFixups(recipient) // File Fixup (§IV-D)
	fmt.Printf("recipient after donation+fixup:  %x\n", recipient.Bytes())

	// The donated packet is legal: it cracks against its own model.
	if _, err := setpoint.Crack(recipient.Bytes()); err != nil {
		log.Fatalf("donated packet is not legal: %v", err)
	}
	fmt.Println("\ndonated packet cracks cleanly: lengths and checksum were repaired")
}
