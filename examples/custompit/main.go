// Custompit: fuzz a user-defined protocol described by an XML Pit file —
// the workflow of §V-A, where the paper reuses existing Peach pits.
//
// The protocol here is a small telemetry service with three packet types
// (a "function code" field, §III) that share chunk construction rules, and
// a CRC32 integrity constraint (Fig. 1's Crc32Fixup). The target is
// implemented in this file and instrumented by hand, showing how any Go
// packet parser can be hooked up.
//
//	go run ./examples/custompit
package main

import (
	"context"
	"fmt"
	"log"

	"repro/peachstar"
)

// telemetryPit describes the wire format: opcode, length-prefixed body,
// trailing CRC32 over everything before it.
const telemetryPit = `
<Pit>
  <DataModel name="SensorReport">
    <Number name="op" size="8" value="1" token="true"/>
    <Number name="len" size="16"><Relation type="size" of="body"/></Number>
    <Block name="body">
      <Number name="sensorId" size="16" value="7"/>
      <Blob name="readings" minSize="2" maxSize="24" value="0b01"/>
    </Block>
    <Number name="crc" size="32"><Fixup class="Crc32" over="op,len,body"/></Number>
  </DataModel>
  <DataModel name="SensorConfig">
    <Number name="op" size="8" value="2" token="true"/>
    <Number name="len" size="16"><Relation type="size" of="body"/></Number>
    <Block name="body">
      <Number name="sensorId" size="16" value="7"/>
      <Number name="interval" size="16" value="1000"/>
    </Block>
    <Number name="crc" size="32"><Fixup class="Crc32" over="op,len,body"/></Number>
  </DataModel>
  <DataModel name="SensorQuery">
    <Number name="op" size="8" value="3" token="true"/>
    <Number name="len" size="16"><Relation type="size" of="body"/></Number>
    <Block name="body">
      <Number name="sensorId" size="16" value="7"/>
    </Block>
    <Number name="crc" size="32"><Fixup class="Crc32" over="op,len,body"/></Number>
  </DataModel>
</Pit>`

// telemetryTarget is a hand-instrumented server for the protocol above. It
// registers sensors on config packets; a report for a configured sensor
// with more than 8 readings walks a deliberately deep branch.
type telemetryTarget struct {
	models     []*peachstar.Model
	configured map[uint16]bool
	blocks     []peachstar.BlockID
}

func newTelemetryTarget(models []*peachstar.Model) *telemetryTarget {
	return &telemetryTarget{
		models:     models,
		configured: map[uint16]bool{},
		blocks:     peachstar.Blocks("telemetry", 32),
	}
}

func (t *telemetryTarget) Name() string               { return "telemetry" }
func (t *telemetryTarget) Models() []*peachstar.Model { return t.models }

func (t *telemetryTarget) Handle(tr *peachstar.Tracer, pkt []byte) {
	hit := func(i int) { tr.Hit(t.blocks[i]) }
	hit(0)
	if len(pkt) < 7 {
		hit(1)
		return
	}
	op := pkt[0]
	ln := int(pkt[1])<<8 | int(pkt[2])
	if 3+ln+4 != len(pkt) {
		hit(2)
		return
	}
	body := pkt[3 : 3+ln]
	// CRC check (the integrity gate File Fixup keeps satisfied).
	var crc uint32
	for _, b := range pkt[len(pkt)-4:] {
		crc = crc<<8 | uint32(b)
	}
	if crc != crc32of(pkt[:len(pkt)-4]) {
		hit(3)
		return
	}
	if len(body) < 2 {
		hit(4)
		return
	}
	sensor := uint16(body[0])<<8 | uint16(body[1])
	switch op {
	case 2: // config
		hit(5)
		if len(body) >= 4 {
			hit(6)
			t.configured[sensor] = true
		}
	case 1: // report
		hit(7)
		if t.configured[sensor] {
			hit(8)
			if len(body) > 10 {
				hit(9) // deep: configured sensor with a long reading set
			}
		}
	case 3: // query
		hit(10)
		if t.configured[sensor] {
			hit(11)
		}
	default:
		hit(12)
	}
}

func crc32of(data []byte) uint32 {
	return uint32(peachstar.Checksum(peachstar.CRC32IEEE, data))
}

func main() {
	models, err := peachstar.ParsePitString(telemetryPit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d data models from the pit file\n", len(models))

	target := newTelemetryTarget(models)
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   target,
		Strategy: peachstar.PeachStar,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := campaign.Start(context.Background(), peachstar.RunConfig{Execs: 20000})
	if err != nil {
		log.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		log.Fatal(err)
	}

	s := campaign.Stats()
	fmt.Printf("after %d execs: %d paths, %d edges, %d puzzles in the corpus\n",
		s.Execs, s.Paths, s.Edges, s.CorpusPuzzles)
	fmt.Println("\ncorpus construction-rule signatures (what packet cracking learned):")
	for _, sig := range campaign.CorpusSignatures() {
		fmt.Println("  ", sig)
	}
}
