// Vulnaudit: the workflow behind the paper's Table I — audit the three ICS
// protocol implementations in which Peach* found previously unknown
// vulnerabilities, and contrast against the baseline at the same budget.
//
// Expect lib60870's getCOT-style faults (the paper's Listing 1/2), the
// libmodbus use-after-free/SEGV pair, and libiccp's SEGV/overflow set; the
// exact subset found depends on budget and seed.
//
//	go run ./examples/vulnaudit
package main

import (
	"context"
	"fmt"
	"log"

	"repro/peachstar"
)

func audit(project string, strategy peachstar.Strategy, budget int, seed uint64) []*peachstar.CrashRecord {
	target, err := peachstar.NewTarget(project)
	if err != nil {
		log.Fatal(err)
	}
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   target,
		Strategy: strategy,
		Seed:     seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := campaign.Start(context.Background(), peachstar.RunConfig{Execs: budget})
	if err != nil {
		log.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		log.Fatal(err)
	}
	return campaign.Crashes()
}

func main() {
	const budget = 30000
	projects := []string{"libmodbus", "lib60870", "libiccp"}

	total := 0
	for _, p := range projects {
		fmt.Printf("=== %s (%d execs per strategy) ===\n", p, budget)
		baseline := audit(p, peachstar.Peach, budget, 1)
		star := audit(p, peachstar.PeachStar, budget, 1)
		fmt.Printf("  Peach  found %d unique faults\n", len(baseline))
		fmt.Printf("  Peach* found %d unique faults:\n", len(star))
		for _, c := range star {
			fmt.Printf("    %-22s %s\n", c.Kind, c.Site)
			fmt.Printf("      reproducer: %x\n", c.Example)
		}
		total += len(star)
		fmt.Println()
	}
	fmt.Printf("Peach* total across the audited projects: %d unique faults\n", total)
	fmt.Println("(Table I reports 9 across these three projects at the paper's budget;")
	fmt.Println(" run cmd/benchtable1 for the full multi-repetition hunt.)")
}
