// Distributed: one fleet-sync hub plus two leaf campaigns, all on
// loopback in a single process — the smallest complete demonstration of a
// multi-host Peach* fleet. On real hardware each block below runs as its
// own `peachstar` process on its own machine (`-serve` for the hub,
// `-connect` for the leaves); the protocol is identical.
//
//	go run ./examples/distributed [-execs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/peachstar"
)

func main() {
	execs := flag.Int("execs", 30000, "total execution budget across both leaves")
	flag.Parse()

	// --- Hub node -------------------------------------------------------
	// The hub owns the fleet-wide campaign state. Here it only
	// aggregates (it runs no executions of its own), which is the
	// `peachstar -serve :7712 -execs 0` configuration; giving it a budget
	// too would make it a fuzzing hub.
	hubTarget, err := peachstar.NewTarget("libmodbus")
	if err != nil {
		log.Fatal(err)
	}
	hubCampaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   hubTarget,
		Strategy: peachstar.PeachStar,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	hub, err := hubCampaign.ServeSync("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()
	fmt.Printf("hub: serving fleet sync on %s\n", hub.Addr())

	// --- Leaf nodes -----------------------------------------------------
	// Every leaf shares the campaign seed but fuzzes its own RNG stream
	// (SeedStream), so the fleet is one reproducible campaign with no
	// duplicated work. On separate machines this block is
	// `peachstar -connect hub:7712 -seed 1 -seed-stream <k>`.
	type node struct {
		name     string
		campaign *peachstar.Campaign
		leaf     *peachstar.SyncLeaf
	}
	var leaves []*node
	for k := 0; k < 2; k++ {
		target, err := peachstar.NewTarget("libmodbus")
		if err != nil {
			log.Fatal(err)
		}
		campaign, err := peachstar.NewCampaign(peachstar.Options{
			Target:     target,
			Strategy:   peachstar.PeachStar,
			Seed:       1,
			SeedStream: k,
		})
		if err != nil {
			log.Fatal(err)
		}
		leaf, err := campaign.DialSync(hub.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer leaf.Close()
		leaves = append(leaves, &node{name: fmt.Sprintf("leaf-%d", k), campaign: campaign, leaf: leaf})
	}

	// Run both leaves concurrently, each spending half the budget and
	// syncing with the hub every 1024 executions.
	var wg sync.WaitGroup
	for _, n := range leaves {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			if err := n.leaf.RunSynced(*execs/2, 1024); err != nil {
				log.Printf("%s: %v", n.name, err)
			}
		}(n)
	}
	wg.Wait()

	// Settlement round: one more sync each, so the last leaf to finish
	// has its final discoveries propagated to everyone.
	for _, n := range leaves {
		if err := n.leaf.Sync(); err != nil {
			log.Fatal(err)
		}
	}

	// Every node now agrees on the campaign union.
	for _, n := range leaves {
		s := n.campaign.Stats()
		fmt.Printf("%s: %d execs locally, %d edges, %d unique crashes, corpus %d puzzles\n",
			n.name, s.Execs, s.Edges, s.UniqueCrashes, s.CorpusPuzzles)
	}
	remoteExecs, _, _ := hub.RemoteStats()
	_, fleetEdges, _, _ := leaves[0].leaf.FleetStats()
	fmt.Printf("hub: %d remote execs aggregated, %d edges in the fleet union\n", remoteExecs, fleetEdges)

	a, b := leaves[0].campaign.Stats(), leaves[1].campaign.Stats()
	if a.Edges == b.Edges && a.Edges == fleetEdges {
		fmt.Printf("fleet converged: all nodes report %d edges\n", fleetEdges)
	} else {
		fmt.Printf("fleet NOT converged: %d vs %d vs hub %d edges\n", a.Edges, b.Edges, fleetEdges)
	}
}
