// Distributed: one fleet-sync hub plus two leaf campaigns, all on
// loopback in a single process — the smallest complete demonstration of a
// multi-host Peach* fleet on the session API. Each node is one
// Campaign.Start call: the hub session serves with WithHub, each leaf
// session uplinks with WithLeaf. On real hardware each block below runs
// as its own `peachstar` process on its own machine (`-serve` for the
// hub, `-connect` for the leaves); the protocol is identical.
//
//	go run ./examples/distributed [-execs N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"

	"repro/peachstar"
)

func newCampaign(seedStream int) *peachstar.Campaign {
	target, err := peachstar.NewTarget("libmodbus")
	if err != nil {
		log.Fatal(err)
	}
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:     target,
		Strategy:   peachstar.PeachStar,
		Seed:       1,
		SeedStream: seedStream,
	})
	if err != nil {
		log.Fatal(err)
	}
	return campaign
}

func main() {
	execs := flag.Int("execs", 30000, "total execution budget across both leaves")
	flag.Parse()
	ctx := context.Background()

	// --- Hub node -------------------------------------------------------
	// The hub owns the fleet-wide campaign state. Here it only aggregates
	// (a RelayOnly session runs no executions of its own), which is the
	// `peachstar -serve :7712 -execs 0` configuration; giving the session
	// an exec budget instead would make it a fuzzing hub. The hub handle
	// is kept so the leaves can learn its bound address and the summary
	// can query RemoteStats.
	hubCampaign := newCampaign(0)
	hub, err := hubCampaign.ServeSync("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer hub.Close()
	hubRun, err := hubCampaign.Start(ctx, peachstar.RunConfig{
		RelayOnly: true,
		Attach:    []peachstar.Attachment{hub.Attachment()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hub: serving fleet sync on %s\n", hub.Addr())

	// --- Leaf nodes -----------------------------------------------------
	// Every leaf shares the campaign seed but fuzzes its own RNG stream
	// (SeedStream), so the fleet is one reproducible campaign with no
	// duplicated work. Each leaf is a single session: budget, sync
	// cadence, and the uplink attachment in one RunConfig. On separate
	// machines this block is `peachstar -connect hub:7712 -seed 1
	// -seed-stream <k>`.
	type node struct {
		name     string
		campaign *peachstar.Campaign
		leaf     *peachstar.SyncLeaf
	}
	var leaves []*node
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		campaign := newCampaign(k)
		// The uplink handle outlives its session (it is attached borrowed,
		// not via WithLeaf, which would close it with the session) so the
		// settlement round below can reuse the hub's view of this same
		// node. A one-shot leaf session would just be
		// Attach: []Attachment{WithLeaf(hub.Addr())}.
		leaf, err := campaign.DialSync(hub.Addr())
		if err != nil {
			log.Fatal(err)
		}
		defer leaf.Close()
		n := &node{name: fmt.Sprintf("leaf-%d", k), campaign: campaign, leaf: leaf}
		leaves = append(leaves, n)
		run, err := campaign.Start(ctx, peachstar.RunConfig{
			Execs:     *execs / 2,
			SyncEvery: 1024,
			Attach:    []peachstar.Attachment{leaf.Attachment()},
		})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(n *node, run *peachstar.Run) {
			defer wg.Done()
			if err := run.Wait(); err != nil {
				log.Printf("%s: %v", n.name, err)
			}
		}(n, run)
	}
	wg.Wait()

	// Settlement round: one more sync each, so the last leaf to finish
	// has its final discoveries propagated to everyone.
	var fleetEdges int
	for _, n := range leaves {
		if err := n.leaf.Sync(); err != nil {
			log.Fatal(err)
		}
		_, fleetEdges, _, _ = n.leaf.FleetStats()
	}

	// Stop the hub session gracefully; its state survives in the campaign.
	hubRun.Stop()
	if err := hubRun.Wait(); err != nil {
		log.Fatal(err)
	}

	// Every node now agrees on the campaign union.
	for _, n := range leaves {
		s := n.campaign.Stats()
		fmt.Printf("%s: %d execs locally, %d edges, %d unique crashes, corpus %d puzzles\n",
			n.name, s.Execs, s.Edges, s.UniqueCrashes, s.CorpusPuzzles)
	}
	remoteExecs, _, _ := hub.RemoteStats()
	fmt.Printf("hub: %d remote execs aggregated, %d edges in the fleet union\n", remoteExecs, fleetEdges)

	a, b := leaves[0].campaign.Stats(), leaves[1].campaign.Stats()
	if a.Edges == b.Edges && a.Edges == fleetEdges {
		fmt.Printf("fleet converged: all nodes report %d edges\n", fleetEdges)
	} else {
		fmt.Printf("fleet NOT converged: %d vs %d vs hub %d edges\n", a.Edges, b.Edges, fleetEdges)
	}
}
