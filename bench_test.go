// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation (§V) as testing.B benchmarks. Each benchmark
// reports custom metrics alongside ns/op:
//
//   - paths_peach / paths_star: mean final paths covered (Fig. 4 y-axis)
//   - increase_pct: Peach*'s final path gain (§V-B, 8.35%-36.84%)
//   - speedup_x: speed to Peach's final coverage level (§V-B, 1.2X-25X)
//   - vulns: unique vulnerabilities found (Table I)
//
// Budgets here are sized for bench runs; cmd/benchfig4 and cmd/benchtable1
// run the committed EXPERIMENTS.md configuration.
package repro

import (
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sandbox"
	"repro/internal/targets"

	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

// benchCfg is the per-iteration experiment configuration used by the
// figure benchmarks.
var benchCfg = bench.Config{ExecBudget: 6000, Reps: 2, Checkpoints: 10, Seed: 1}

// benchProject runs one Fig. 4 panel per b.N iteration and reports the
// curve endpoints as metrics.
func benchProject(b *testing.B, project string) {
	b.Helper()
	var peach, star, inc, speed float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg
		cfg.Seed = benchCfg.Seed + uint64(i)
		r, err := bench.RunProject(project, cfg)
		if err != nil {
			b.Fatal(err)
		}
		peach += r.Peach.Final()
		star += r.Star.Final()
		inc += r.IncreasePct
		speed += r.Speedup
	}
	n := float64(b.N)
	b.ReportMetric(peach/n, "paths_peach")
	b.ReportMetric(star/n, "paths_star")
	b.ReportMetric(inc/n, "increase_pct")
	b.ReportMetric(speed/n, "speedup_x")
}

// Fig. 4(a): libmodbus.
func BenchmarkFig4Libmodbus(b *testing.B) { benchProject(b, "libmodbus") }

// Fig. 4(b): IEC104.
func BenchmarkFig4IEC104(b *testing.B) { benchProject(b, "IEC104") }

// Fig. 4(c): libiec61850.
func BenchmarkFig4Libiec61850(b *testing.B) { benchProject(b, "libiec61850") }

// Fig. 4(d): lib60870.
func BenchmarkFig4Lib60870(b *testing.B) { benchProject(b, "lib60870") }

// Fig. 4(e): libiccp.
func BenchmarkFig4Libiccp(b *testing.B) { benchProject(b, "libiccp") }

// Fig. 4(f): opendnp3.
func BenchmarkFig4Opendnp3(b *testing.B) { benchProject(b, "opendnp3") }

// BenchmarkSpeedup aggregates the §V-B headline numbers across all six
// projects (average final increase and speed to equal coverage).
func BenchmarkSpeedup(b *testing.B) {
	var inc, speed float64
	runs := 0
	for i := 0; i < b.N; i++ {
		for _, p := range bench.Projects() {
			cfg := benchCfg
			cfg.Seed = benchCfg.Seed + uint64(i)
			r, err := bench.RunProject(p, cfg)
			if err != nil {
				b.Fatal(err)
			}
			inc += r.IncreasePct
			speed += r.Speedup
			runs++
		}
	}
	b.ReportMetric(inc/float64(runs), "avg_increase_pct")
	b.ReportMetric(speed/float64(runs), "avg_speedup_x")
}

// BenchmarkTable1 runs the vulnerability hunt on the three projects that
// appear in Table I and reports the unique-fault total (paper: 9).
func BenchmarkTable1(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		for _, p := range []string{"libmodbus", "lib60870", "libiccp"} {
			row, err := bench.HuntVulnerabilities(p, 20000, 2, 1+uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			total += float64(row.Total)
		}
	}
	b.ReportMetric(total/float64(b.N), "vulns")
}

// benchAblation measures a Peach* configuration variant on lib60870 (the
// target where the full configuration shows the clearest gains).
func benchAblation(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	var paths float64
	for i := 0; i < b.N; i++ {
		tgt, err := targets.New("lib60870")
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.Config{
			Models:   tgt.Models(),
			Target:   tgt,
			Strategy: core.StrategyPeachStar,
			Seed:     1 + uint64(i),
		}
		mutate(&cfg)
		eng, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		eng.Run(6000)
		paths += float64(eng.Stats().Paths)
	}
	b.ReportMetric(paths/float64(b.N), "paths_star")
}

// BenchmarkAblationFull is the reference Peach* configuration.
func BenchmarkAblationFull(b *testing.B) {
	benchAblation(b, func(*core.Config) {})
}

// BenchmarkAblationNoFixup removes the File Fixup pass from semantic
// generation (§IV-D argues validity is lost).
func BenchmarkAblationNoFixup(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableFixup = true })
}

// BenchmarkAblationNoCracker removes packet cracking entirely; Peach*
// degenerates to the baseline loop.
func BenchmarkAblationNoCracker(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableCracker = true })
}

// BenchmarkAblationNoCrossModel restricts donors to same-model puzzles,
// suppressing the cross-opcode donation of §IV-D.
func BenchmarkAblationNoCrossModel(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableCrossModel = true })
}

// BenchmarkAblationCorpusCap sweeps the per-signature corpus bound called
// out in DESIGN.md.
func BenchmarkAblationCorpusCap8(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.CorpusPerSig = 8 })
}

func BenchmarkAblationCorpusCap256(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.CorpusPerSig = 256 })
}

// BenchmarkExtensionMutation compares the §VII future-work extension — the
// byte-level fuzzer with and without coverage-guided packet crack — on
// lib60870, reporting both path counts.
func BenchmarkExtensionMutation(b *testing.B) {
	var plain, star float64
	for i := 0; i < b.N; i++ {
		for _, strat := range []core.Strategy{core.StrategyMutation, core.StrategyMutationStar} {
			tgt, err := targets.New("lib60870")
			if err != nil {
				b.Fatal(err)
			}
			eng, err := core.New(core.Config{
				Models:   tgt.Models(),
				Target:   tgt,
				Strategy: strat,
				Seed:     1 + uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			eng.Run(6000)
			if strat == core.StrategyMutation {
				plain += float64(eng.Stats().Paths)
			} else {
				star += float64(eng.Stats().Paths)
			}
		}
	}
	b.ReportMetric(plain/float64(b.N), "paths_mutfuzz")
	b.ReportMetric(star/float64(b.N), "paths_mutfuzz_star")
}

// benchParallel measures raw executions per second of the sharded campaign
// runner on libmodbus at a given parallelism — the scaling evidence for the
// fleet. Near-linear growth of execs/s from 1 to N workers is the target,
// but only where the cores exist: a curve recorded with workers >
// runtime.NumCPU() measures scheduling contention and sharding overhead,
// not scaling, and BENCH_parallel.json labels such rows accordingly.
func benchParallel(b *testing.B, workers int) {
	b.Helper()
	if workers > runtime.NumCPU() {
		b.Logf("workers=%d > NumCPU=%d: this row measures contention overhead, not multi-core scaling", workers, runtime.NumCPU())
	}
	tgt, err := targets.New("libmodbus")
	if err != nil {
		b.Fatal(err)
	}
	fleet, err := core.NewFleet(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     1,
	}, core.ParallelConfig{
		Workers: workers,
		NewTarget: func() sandbox.Target {
			t, err := targets.New("libmodbus")
			if err != nil {
				panic(err)
			}
			return t
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	fleet.Run(b.N)
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(fleet.Stats().Execs)/secs, "execs/s")
	}
}

// BenchmarkParallelWorkers1/2/4/8: the serial baseline and the sharded
// runner at increasing parallelism (BENCH_parallel.json records a measured
// pair).
func BenchmarkParallelWorkers1(b *testing.B) { benchParallel(b, 1) }
func BenchmarkParallelWorkers2(b *testing.B) { benchParallel(b, 2) }
func BenchmarkParallelWorkers4(b *testing.B) { benchParallel(b, 4) }
func BenchmarkParallelWorkers8(b *testing.B) { benchParallel(b, 8) }

// BenchmarkEngineThroughput measures raw executions per second of the full
// Peach* loop on the largest target — the fuzzing-speed denominator behind
// every scaled budget in this reproduction.
func BenchmarkEngineThroughput(b *testing.B) {
	tgt, err := targets.New("libiec61850")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.Run(b.N)
}
