//go:build race

package repro

// raceEnabled reports whether the race detector is active; allocation-exact
// tests skip under it.
const raceEnabled = true
