// Command benchtable1 regenerates the paper's Table I: the unique
// vulnerabilities Peach* exposes in the six ICS protocol projects,
// aggregated over several campaign repetitions.
//
// Usage:
//
//	benchtable1                  # default budget (60000 execs x 4 reps)
//	benchtable1 -execs 100000 -reps 6 -seed 2
//	benchtable1 -sites           # also list the deduplicated fault sites
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"

	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

func main() {
	var (
		execs = flag.Int("execs", 60000, "executions per repetition")
		reps  = flag.Int("reps", 4, "campaign repetitions per project")
		seed  = flag.Uint64("seed", 1, "base seed")
		sites = flag.Bool("sites", false, "list deduplicated fault sites per project")
	)
	flag.Parse()

	var rows []bench.VulnRow
	for _, p := range bench.Projects() {
		row, err := bench.HuntVulnerabilities(p, *execs, *reps, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rows = append(rows, row)
		if *sites && row.Total > 0 {
			fmt.Printf("%s:\n", p)
			for _, s := range row.Sites {
				fmt.Printf("  %s\n", s)
			}
		}
	}
	fmt.Println(bench.FormatTable1(rows))
}
