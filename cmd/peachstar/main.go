// Command peachstar fuzzes one of the built-in ICS protocol targets with
// either the baseline Peach strategy or the full Peach* strategy, printing
// live progress from the campaign's event stream and any unique crashes
// found. It can also take part in a distributed fleet: -serve makes this
// node a sync hub, -connect makes it a leaf of one, and -mesh makes it a
// hub-less mesh node that both accepts peers and uplinks to them (see the
// README's "Distributed campaigns" and "Mesh campaigns" sections).
//
// The command is built on the session API: one Campaign.Start call with
// the budget and the attachments, events consumed as they stream, SIGINT
// mapped to Run.Stop for a graceful finish (workers stop at the next
// merge window, attachments flush, final stats print; a second SIGINT
// aborts hard).
//
// Usage:
//
//	peachstar -target libmodbus -strategy peachstar -execs 50000 -seed 1
//	peachstar -target libmodbus -execs 200000 -workers 4 -stats-every 20000
//	peachstar -target libmodbus -serve :7712 -execs 0            # hub (aggregator only)
//	peachstar -target libmodbus -connect host:7712 -seed-stream 1 -execs 100000
//	peachstar -target libmodbus -mesh :7712 -advertise hostA:7712 -execs 100000            # mesh seed node
//	peachstar -target libmodbus -mesh :7712 -advertise hostB:7712 -peers hostA:7712 \
//	          -seed-stream 1 -execs 100000                                                 # joins via hostA
//	peachstar -target libmodbus -exec-cmd "./myserver -listen {addr}" \
//	          -exec-addr 127.0.0.1:15502 -execs 100000    # fuzz a real spawned server
//	peachstar -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/peachstar"
)

func main() {
	var (
		target     = flag.String("target", "libmodbus", "protocol target to fuzz")
		strategy   = flag.String("strategy", "peachstar", "peach | peachstar")
		execs      = flag.Int("execs", 50000, "target executions to run (0 with -serve/-mesh: relay only)")
		seed       = flag.Uint64("seed", 1, "campaign seed (reproducible)")
		duration   = flag.Duration("duration", 0, "wall-clock budget (overrides -execs when set)")
		report     = flag.Int("report", 10, "number of progress reports when -stats-every is 0")
		statsEvery = flag.Int("stats-every", 0, "executions between live stats lines (0: derive from -report)")
		workers    = flag.Int("workers", 1, "parallel worker engines sharing the exec budget")
		serve      = flag.String("serve", "", "serve fleet sync to remote leaves on this host:port (hub node)")
		connect    = flag.String("connect", "", "sync with the fleet hub at this host:port (leaf node)")
		mesh       = flag.String("mesh", "", "join a hub-less mesh fleet, accepting peers on this host:port (mesh node)")
		peers      = flag.String("peers", "", "comma-separated bootstrap peer addresses (with -mesh; one live address is enough)")
		advertise  = flag.String("advertise", "", "externally dialable address peers should reach this node at (with -mesh; default: the bound -mesh address)")
		syncEvery  = flag.Int("sync-every", 1024, "executions between fleet syncs (with -connect or -mesh)")
		seedStream = flag.Int("seed-stream", 0, "RNG stream offset for this node's workers; give each leaf a disjoint range")
		adaptive   = flag.Bool("adaptive", false, "enable the adaptive scheduler (learned mutator weights, rarity-weighted seeds, corpus distillation)")
		sessions   = flag.Bool("sessions", false, "fuzz stateful message sequences through the target's session state machine instead of independent packets (target must publish a state model)")
		ckptPath   = flag.String("checkpoint", "", "write a durable campaign checkpoint to this file during the run (atomic replace each time; warm-restart with -resume)")
		ckptEvery  = flag.Int("checkpoint-every", 0, "executions between durable checkpoints (with -checkpoint; 0: default)")
		resume     = flag.Bool("resume", false, "warm-restart: restore campaign state from the -checkpoint file before fuzzing (missing file: cold start)")
		execCmd    = flag.String("exec-cmd", "", "spawn this command as the real fuzz target and drive it over the network ({addr} expands to -exec-addr); packets go to the process instead of the in-process sandbox")
		execAddr   = flag.String("exec-addr", "", "host:port the spawned target serves on (required with -exec-cmd)")
		execNet    = flag.String("exec-net", "tcp", "transport to the spawned target: tcp | udp (with -exec-cmd)")
		execTO     = flag.Duration("exec-timeout", 200*time.Millisecond, "watchdog budget per exchange with the spawned target; an unresponsive target is recorded as a hang and restarted (with -exec-cmd)")
		list       = flag.Bool("list", false, "list available targets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(peachstar.TargetNames(), "\n"))
		return
	}
	if *serve != "" && *connect != "" {
		fmt.Fprintln(os.Stderr, "a node cannot both -serve and -connect (for relay topologies, use -mesh)")
		os.Exit(2)
	}
	if *mesh != "" && (*serve != "" || *connect != "") {
		fmt.Fprintln(os.Stderr, "-mesh already accepts and dials peers; it cannot be combined with -serve or -connect")
		os.Exit(2)
	}
	if *mesh == "" && (*peers != "" || *advertise != "") {
		fmt.Fprintln(os.Stderr, "-peers and -advertise only apply to -mesh nodes")
		os.Exit(2)
	}
	if *ckptPath == "" && (*ckptEvery != 0 || *resume) {
		fmt.Fprintln(os.Stderr, "-checkpoint-every and -resume need -checkpoint (the checkpoint file)")
		os.Exit(2)
	}
	var backend peachstar.ExecBackend
	if *execCmd != "" {
		if *execAddr == "" {
			fmt.Fprintln(os.Stderr, "-exec-cmd needs -exec-addr (where the spawned target serves)")
			os.Exit(2)
		}
		if *workers != 1 {
			fmt.Fprintln(os.Stderr, "a process-backed campaign supervises one target: -exec-cmd requires -workers 1")
			os.Exit(2)
		}
		backend = peachstar.WithProcOptions(strings.Fields(*execCmd), *execAddr, peachstar.ProcOptions{
			Net:          *execNet,
			ExecTimeout:  *execTO,
			TargetStderr: os.Stderr,
		})
	} else if *execAddr != "" {
		fmt.Fprintln(os.Stderr, "-exec-addr only applies with -exec-cmd")
		os.Exit(2)
	}

	var strat peachstar.Strategy
	switch strings.ToLower(*strategy) {
	case "peach":
		strat = peachstar.Peach
	case "peachstar", "peach*":
		strat = peachstar.PeachStar
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q (want peach or peachstar)\n", *strategy)
		os.Exit(2)
	}

	tgt, err := peachstar.NewTarget(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:     tgt,
		Strategy:   strat,
		Seed:       *seed,
		Workers:    *workers,
		SeedStream: *seedStream,
		Adaptive:   *adaptive,
		Sessions:   *sessions,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *resume {
		switch err := campaign.RestoreCheckpoint(*ckptPath); {
		case errors.Is(err, os.ErrNotExist):
			// Nothing to resume yet — the first incarnation of a campaign
			// run under a supervisor that always passes -resume.
			fmt.Printf("no checkpoint at %s yet; starting cold\n", *ckptPath)
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		default:
			s := campaign.Stats()
			fmt.Printf("resumed from %s: %d execs, %d edges, %d crashes, corpus %d puzzles\n",
				*ckptPath, s.Execs, s.Edges, s.UniqueCrashes, s.CorpusPuzzles)
		}
	}

	// Attachments: a hub and a mesh node are created as campaign-level
	// handles (they span the fuzzing session and the serve phase after
	// it); the leaf handle additionally feeds fleet-wide figures into the
	// progress lines.
	var attach []peachstar.Attachment
	var hub *peachstar.SyncServer
	if *serve != "" {
		hub, err = campaign.ServeSync(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer hub.Close()
		fmt.Printf("serving fleet sync on %s\n", hub.Addr())
	}
	var leaf *peachstar.SyncLeaf
	if *connect != "" {
		leaf, err = campaign.DialSync(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer leaf.Close()
		attach = append(attach, leaf.Attachment())
		fmt.Printf("syncing with fleet hub at %s (every %d execs)\n", *connect, *syncEvery)
	}
	var mnode *peachstar.MeshNode
	if *mesh != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		mnode, err = campaign.JoinMesh(peachstar.MeshOptions{
			Listen:    *mesh,
			Peers:     peerList,
			Advertise: *advertise,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer mnode.Close()
		attach = append(attach, mnode.Attachment())
		fmt.Printf("mesh node on %s (%d bootstrap peers, syncing every %d execs)\n",
			mnode.Addr(), len(peerList), *syncEvery)
	}

	// SIGINT → graceful Stop of whichever session is live — and no
	// further phases: an interrupt during the fuzzing phase of a hub or
	// mesh node must fall through to the final stats, not into the
	// serve-forever phase. A second SIGINT exits hard. The mutex makes
	// "interrupted" and "which run is live" one atomic state, so a
	// signal can never slip between phases unobserved.
	var (
		mu          sync.Mutex
		live        *peachstar.Run
		interrupted bool
	)
	// beginPhase installs r as the live session unless an interrupt
	// already landed, in which case the phase is skipped (r is stopped).
	beginPhase := func(r *peachstar.Run) bool {
		mu.Lock()
		defer mu.Unlock()
		if interrupted {
			r.Stop()
			return false
		}
		live = r
		return true
	}
	keepServing := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return !interrupted
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "\ninterrupt: stopping at the next merge window (interrupt again to abort)")
		mu.Lock()
		interrupted = true
		if live != nil {
			live.Stop()
		}
		mu.Unlock()
		<-sig
		os.Exit(130)
	}()

	start := time.Now()
	fuzzing := *execs > 0 || *duration > 0
	if fuzzing {
		cfg := peachstar.RunConfig{
			Execs:           *execs,
			Duration:        *duration,
			SyncEvery:       *syncEvery,
			StatsEvery:      *statsEvery,
			Attach:          attach,
			Exec:            backend,
			CheckpointPath:  *ckptPath,
			CheckpointEvery: *ckptEvery,
		}
		if backend != nil {
			fmt.Printf("spawning target: %s (%s %s, watchdog %s)\n", *execCmd, *execNet, *execAddr, *execTO)
		}
		// Derive the stats cadence from the budget actually in force:
		// exec-budget runs report every execs/report executions; duration
		// runs report every duration/report of wall clock (a ticker below
		// — the exec total is unknowable up front), unless -stats-every
		// pins an execution cadence explicitly.
		var reportTick time.Duration
		if *duration > 0 {
			cfg.Execs = 0 // wall clock overrides the exec budget
			if *statsEvery == 0 {
				cfg.StatsEvery = -1 // no exec-based stats; ticker instead
				if *report > 0 {
					reportTick = *duration / time.Duration(*report)
				}
				if reportTick <= 0 {
					reportTick = *duration
				}
			}
		} else if *statsEvery == 0 {
			if *report > 0 {
				cfg.StatsEvery = *execs / *report
			}
			if cfg.StatsEvery < 1 {
				cfg.StatsEvery = peachstar.DefaultStatsEvery
			}
		}
		fmt.Printf("fuzzing %s with %s (seed %d, stream %d, %d workers)\n",
			*target, strat, *seed, *seedStream, campaign.Workers())
		r, err := campaign.Start(context.Background(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		beginPhase(r)
		if reportTick > 0 {
			go func() {
				t := time.NewTicker(reportTick)
				defer t.Stop()
				for {
					select {
					case <-r.Done():
						return
					case <-t.C:
						printStatsLine(r.Snapshot(), leaf, mnode, hub, start)
					}
				}
			}()
		}
		printEvents(r, leaf, mnode, hub, start)
		if err := r.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "session ended with: %v\n", err)
		}
	}

	if (hub != nil || mnode != nil) && keepServing() {
		// Hub and mesh nodes outlive their own budget: keep serving (and,
		// for a mesh node, relaying between peers) until interrupted. A
		// node with -execs 0 is a pure relay.
		fmt.Println("local budget spent; serving fleet sync until interrupted (Ctrl-C)")
		r, err := campaign.Start(context.Background(), peachstar.RunConfig{
			RelayOnly:       true,
			Attach:          attach,
			CheckpointPath:  *ckptPath,
			CheckpointEvery: *ckptEvery,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if beginPhase(r) {
			printEvents(r, leaf, mnode, hub, start)
		}
		if err := r.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "serve session ended with: %v\n", err)
		}
	}

	s := campaign.Stats()
	fmt.Printf("\nfinished: %d execs, %d paths, %d edges, %d unique crashes, %d hangs, corpus %d puzzles\n",
		s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.Hangs, s.CorpusPuzzles)
	if backend != nil {
		fmt.Printf("target restarted %d times during the campaign\n", s.TargetRestarts)
	}
	if len(s.StateCoverage) > 0 {
		fmt.Printf("sessions: %d sequences sent, %d of %d states reached\n",
			s.Sequences, s.StatesReached, len(s.StateCoverage))
		for _, sc := range s.StateCoverage {
			fmt.Printf("  state %-16s %9d sent  %5d edges\n", sc.State, sc.Sent, sc.Edges)
		}
	}
	if len(s.MutatorStats) > 0 {
		fmt.Printf("scheduler: %d distillations; operator yields:\n", s.Distills)
		for _, ms := range s.MutatorStats {
			fmt.Printf("  %-24s %9d trials  %6d hits\n", ms.Name, ms.Trials, ms.Hits)
		}
	}
	for i, c := range campaign.Crashes() {
		fmt.Printf("crash %d: %s at %s (first at exec %d, seen %d times)\n  packet: %x\n",
			i+1, c.Kind, c.Site, c.FirstExec, c.Count, c.Example)
		if len(c.Sequence) > 0 {
			fmt.Printf("  reproducer: %d-packet sequence captured\n", len(c.Sequence))
		}
	}
}

// printEvents consumes one session's event stream to the terminal: a
// progress line per StatsEvent, a discovery line per crash, sync failures
// as they happen. It returns when the session ends and the stream closes.
func printEvents(r *peachstar.Run, leaf *peachstar.SyncLeaf, mnode *peachstar.MeshNode, hub *peachstar.SyncServer, start time.Time) {
	for ev := range r.Events() {
		switch ev := ev.(type) {
		case peachstar.StatsEvent:
			printStatsLine(ev.Stats, leaf, mnode, hub, start)
		case peachstar.CrashEvent:
			fmt.Printf("%8.1fs  NEW CRASH: %s at %s (worker %d)\n  packet: %x\n",
				time.Since(start).Seconds(), ev.Record.Kind, ev.Record.Site, ev.Worker, ev.Record.Example)
		case peachstar.StateEvent:
			fmt.Printf("%8.1fs  reached state %q (worker %d, exec %d)\n",
				time.Since(start).Seconds(), ev.State, ev.Worker, ev.Exec)
		case peachstar.DistillEvent:
			fmt.Printf("%8.1fs  distilled corpus (worker %d): kept %d of %d seeds covering %d edges, dropped %d puzzles\n",
				time.Since(start).Seconds(), ev.Worker, ev.SeedsKept, ev.SeedsKept+ev.SeedsDropped, ev.Edges, ev.PuzzlesDropped)
		case peachstar.SyncWindowEvent:
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "sync %s %s: %v (continuing locally)\n", ev.Attachment, ev.Addr, ev.Err)
			}
		case peachstar.CheckpointEvent:
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint %s: %v (continuing; next checkpoint retries)\n", ev.Path, ev.Err)
			}
		}
	}
}

// printStatsLine renders one progress line from a snapshot, with the
// fleet-, mesh-, or hub-side figures appended when those handles exist.
func printStatsLine(s peachstar.Stats, leaf *peachstar.SyncLeaf, mnode *peachstar.MeshNode, hub *peachstar.SyncServer, start time.Time) {
	line := fmt.Sprintf("%8.1fs  execs %8d  paths %5d  edges %5d  crashes %3d  corpus %5d",
		time.Since(start).Seconds(), s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.CorpusPuzzles)
	if leaf != nil {
		if fexecs, fedges, nodes, ok := leaf.FleetStats(); ok {
			line += fmt.Sprintf("  | fleet execs %8d  edges %5d  leaves %2d", fexecs, fedges, nodes)
		}
	}
	if mnode != nil {
		uplinks, inbound, known := mnode.PeerStats()
		line += fmt.Sprintf("  | mesh %d up/%d in of %d known, +%d remote execs",
			uplinks, inbound, known, mnode.RemoteExecs())
	}
	if hub != nil {
		rexecs, _, connected := hub.RemoteStats()
		line += fmt.Sprintf("  | +%d remote execs, %d leaves", rexecs, connected)
	}
	fmt.Println(line)
}
