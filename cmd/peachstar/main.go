// Command peachstar fuzzes one of the built-in ICS protocol targets with
// either the baseline Peach strategy or the full Peach* strategy, printing
// progress and any unique crashes found. It can also take part in a
// distributed fleet: -serve makes this node a sync hub, -connect makes it
// a leaf of one (see the README's "Distributed campaigns" section).
//
// Usage:
//
//	peachstar -target libmodbus -strategy peachstar -execs 50000 -seed 1
//	peachstar -target libmodbus -execs 200000 -workers 4
//	peachstar -target libmodbus -serve :7712 -execs 0            # hub (aggregator only)
//	peachstar -target libmodbus -connect host:7712 -seed-stream 1 -execs 100000
//	peachstar -list
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/peachstar"
)

func main() {
	var (
		target     = flag.String("target", "libmodbus", "protocol target to fuzz")
		strategy   = flag.String("strategy", "peachstar", "peach | peachstar")
		execs      = flag.Int("execs", 50000, "target executions to run (0 with -serve: aggregate only)")
		seed       = flag.Uint64("seed", 1, "campaign seed (reproducible)")
		duration   = flag.Duration("duration", 0, "wall-clock budget (overrides -execs when set)")
		report     = flag.Int("report", 10, "number of progress reports")
		workers    = flag.Int("workers", 1, "parallel worker engines sharing the exec budget")
		serve      = flag.String("serve", "", "serve fleet sync to remote leaves on this host:port (hub node)")
		connect    = flag.String("connect", "", "sync with the fleet hub at this host:port (leaf node)")
		syncEvery  = flag.Int("sync-every", 1024, "leaf executions between hub syncs (with -connect)")
		seedStream = flag.Int("seed-stream", 0, "RNG stream offset for this node's workers; give each leaf a disjoint range")
		list       = flag.Bool("list", false, "list available targets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(peachstar.TargetNames(), "\n"))
		return
	}
	if *serve != "" && *connect != "" {
		fmt.Fprintln(os.Stderr, "a node cannot both -serve and -connect (relay topologies are unsupported)")
		os.Exit(2)
	}

	var strat peachstar.Strategy
	switch strings.ToLower(*strategy) {
	case "peach":
		strat = peachstar.Peach
	case "peachstar", "peach*":
		strat = peachstar.PeachStar
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q (want peach or peachstar)\n", *strategy)
		os.Exit(2)
	}

	tgt, err := peachstar.NewTarget(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:     tgt,
		Strategy:   strat,
		Seed:       *seed,
		Workers:    *workers,
		SeedStream: *seedStream,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var hub *peachstar.SyncServer
	if *serve != "" {
		hub, err = campaign.ServeSync(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer hub.Close()
		fmt.Printf("serving fleet sync on %s\n", hub.Addr())
	}

	var leaf *peachstar.SyncLeaf
	if *connect != "" {
		leaf, err = campaign.DialSync(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer leaf.Close()
		fmt.Printf("syncing with fleet hub at %s (every %d execs)\n", *connect, *syncEvery)
	}

	fmt.Printf("fuzzing %s with %s (seed %d, stream %d, %d workers)\n",
		*target, strat, *seed, *seedStream, campaign.Workers())
	start := time.Now()
	switch {
	case *duration > 0:
		// Deadline-aware run: the deadline is checked inside every
		// worker's loop, so the campaign stops within one iteration of
		// the budget instead of rounding up to a full exec slice.
		deadline := start.Add(*duration)
		interval := *duration
		if *report > 0 {
			interval = *duration / time.Duration(*report)
		}
		if interval <= 0 {
			interval = *duration
		}
		for next := start.Add(interval); time.Now().Before(deadline); next = next.Add(interval) {
			if next.After(deadline) {
				next = deadline
			}
			if leaf != nil {
				if err := leaf.RunSyncedUntil(next, *syncEvery); err != nil {
					fmt.Fprintf(os.Stderr, "sync: %v (continuing locally)\n", err)
				}
			} else {
				campaign.RunUntil(next)
			}
			printProgress(campaign, leaf, hub, start)
		}
	case *execs > 0:
		per := *execs / *report
		if per < 1 {
			per = 1
		}
		for done := per; done <= *execs; done += per {
			if leaf != nil {
				if err := leaf.RunSynced(done, *syncEvery); err != nil {
					fmt.Fprintf(os.Stderr, "sync: %v (continuing locally)\n", err)
				}
			} else {
				campaign.Run(done)
			}
			printProgress(campaign, leaf, hub, start)
		}
	}

	if hub != nil {
		// Hub nodes outlive their own budget: keep aggregating leaves
		// until interrupted, reporting periodically.
		fmt.Println("local budget spent; serving fleet sync until interrupted (Ctrl-C)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
	serveLoop:
		for {
			select {
			case <-sig:
				break serveLoop
			case <-tick.C:
				printProgress(campaign, nil, hub, start)
			}
		}
	}

	s := campaign.Stats()
	fmt.Printf("\nfinished: %d execs, %d paths, %d edges, %d unique crashes, %d hangs, corpus %d puzzles\n",
		s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.Hangs, s.CorpusPuzzles)
	for i, c := range campaign.Crashes() {
		fmt.Printf("crash %d: %s at %s (first at exec %d, seen %d times)\n  packet: %x\n",
			i+1, c.Kind, c.Site, c.FirstExec, c.Count, c.Example)
	}
}

func printProgress(c *peachstar.Campaign, leaf *peachstar.SyncLeaf, hub *peachstar.SyncServer, start time.Time) {
	s := c.Stats()
	line := fmt.Sprintf("%8.1fs  execs %8d  paths %5d  edges %5d  crashes %3d  corpus %5d",
		time.Since(start).Seconds(), s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.CorpusPuzzles)
	if leaf != nil {
		if fexecs, fedges, nodes, ok := leaf.FleetStats(); ok {
			line += fmt.Sprintf("  | fleet execs %8d  edges %5d  leaves %2d", fexecs, fedges, nodes)
		}
	}
	if hub != nil {
		rexecs, _, connected := hub.RemoteStats()
		line += fmt.Sprintf("  | +%d remote execs, %d leaves", rexecs, connected)
	}
	fmt.Println(line)
}
