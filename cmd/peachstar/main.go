// Command peachstar fuzzes one of the built-in ICS protocol targets with
// either the baseline Peach strategy or the full Peach* strategy, printing
// progress and any unique crashes found.
//
// Usage:
//
//	peachstar -target libmodbus -strategy peachstar -execs 50000 -seed 1
//	peachstar -target libmodbus -execs 200000 -workers 4
//	peachstar -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/peachstar"
)

func main() {
	var (
		target   = flag.String("target", "libmodbus", "protocol target to fuzz")
		strategy = flag.String("strategy", "peachstar", "peach | peachstar")
		execs    = flag.Int("execs", 50000, "target executions to run")
		seed     = flag.Uint64("seed", 1, "campaign seed (reproducible)")
		duration = flag.Duration("duration", 0, "wall-clock budget (overrides -execs when set)")
		report   = flag.Int("report", 10, "number of progress reports")
		workers  = flag.Int("workers", 1, "parallel worker engines sharing the exec budget")
		list     = flag.Bool("list", false, "list available targets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(peachstar.TargetNames(), "\n"))
		return
	}

	var strat peachstar.Strategy
	switch strings.ToLower(*strategy) {
	case "peach":
		strat = peachstar.Peach
	case "peachstar", "peach*":
		strat = peachstar.PeachStar
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q (want peach or peachstar)\n", *strategy)
		os.Exit(2)
	}

	tgt, err := peachstar.NewTarget(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:   tgt,
		Strategy: strat,
		Seed:     *seed,
		Workers:  *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("fuzzing %s with %s (seed %d, %d workers)\n", *target, strat, *seed, campaign.Workers())
	start := time.Now()
	if *duration > 0 {
		// Deadline-aware run: the deadline is checked inside every
		// worker's loop, so the campaign stops within one iteration of
		// the budget instead of rounding up to a full exec slice.
		// Progress is reported at interval boundaries between RunUntil
		// segments.
		deadline := start.Add(*duration)
		interval := *duration
		if *report > 0 {
			interval = *duration / time.Duration(*report)
		}
		if interval <= 0 {
			interval = *duration
		}
		for next := start.Add(interval); time.Now().Before(deadline); next = next.Add(interval) {
			if next.After(deadline) {
				next = deadline
			}
			campaign.RunUntil(next)
			printProgress(campaign, start)
		}
	} else {
		per := *execs / *report
		if per < 1 {
			per = 1
		}
		for done := per; done <= *execs; done += per {
			campaign.Run(done)
			printProgress(campaign, start)
		}
	}

	s := campaign.Stats()
	fmt.Printf("\nfinished: %d execs, %d paths, %d edges, %d unique crashes, %d hangs, corpus %d puzzles\n",
		s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.Hangs, s.CorpusPuzzles)
	for i, c := range campaign.Crashes() {
		fmt.Printf("crash %d: %s at %s (first at exec %d, seen %d times)\n  packet: %x\n",
			i+1, c.Kind, c.Site, c.FirstExec, c.Count, c.Example)
	}
}

func printProgress(c *peachstar.Campaign, start time.Time) {
	s := c.Stats()
	fmt.Printf("%8.1fs  execs %8d  paths %5d  edges %5d  crashes %3d  corpus %5d\n",
		time.Since(start).Seconds(), s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.CorpusPuzzles)
}
