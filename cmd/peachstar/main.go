// Command peachstar fuzzes one of the built-in ICS protocol targets with
// either the baseline Peach strategy or the full Peach* strategy, printing
// progress and any unique crashes found. It can also take part in a
// distributed fleet: -serve makes this node a sync hub, -connect makes it
// a leaf of one, and -mesh makes it a hub-less mesh node that both accepts
// peers and uplinks to them (see the README's "Distributed campaigns" and
// "Mesh campaigns" sections).
//
// Usage:
//
//	peachstar -target libmodbus -strategy peachstar -execs 50000 -seed 1
//	peachstar -target libmodbus -execs 200000 -workers 4
//	peachstar -target libmodbus -serve :7712 -execs 0            # hub (aggregator only)
//	peachstar -target libmodbus -connect host:7712 -seed-stream 1 -execs 100000
//	peachstar -target libmodbus -mesh :7712 -advertise hostA:7712 -execs 100000            # mesh seed node
//	peachstar -target libmodbus -mesh :7712 -advertise hostB:7712 -peers hostA:7712 \
//	          -seed-stream 1 -execs 100000                                                 # joins via hostA
//	peachstar -list
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/peachstar"
)

func main() {
	var (
		target     = flag.String("target", "libmodbus", "protocol target to fuzz")
		strategy   = flag.String("strategy", "peachstar", "peach | peachstar")
		execs      = flag.Int("execs", 50000, "target executions to run (0 with -serve: aggregate only)")
		seed       = flag.Uint64("seed", 1, "campaign seed (reproducible)")
		duration   = flag.Duration("duration", 0, "wall-clock budget (overrides -execs when set)")
		report     = flag.Int("report", 10, "number of progress reports")
		workers    = flag.Int("workers", 1, "parallel worker engines sharing the exec budget")
		serve      = flag.String("serve", "", "serve fleet sync to remote leaves on this host:port (hub node)")
		connect    = flag.String("connect", "", "sync with the fleet hub at this host:port (leaf node)")
		mesh       = flag.String("mesh", "", "join a hub-less mesh fleet, accepting peers on this host:port (mesh node)")
		peers      = flag.String("peers", "", "comma-separated bootstrap peer addresses (with -mesh; one live address is enough)")
		advertise  = flag.String("advertise", "", "externally dialable address peers should reach this node at (with -mesh; default: the bound -mesh address)")
		syncEvery  = flag.Int("sync-every", 1024, "executions between fleet syncs (with -connect or -mesh)")
		seedStream = flag.Int("seed-stream", 0, "RNG stream offset for this node's workers; give each leaf a disjoint range")
		list       = flag.Bool("list", false, "list available targets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(peachstar.TargetNames(), "\n"))
		return
	}
	if *serve != "" && *connect != "" {
		fmt.Fprintln(os.Stderr, "a node cannot both -serve and -connect (for relay topologies, use -mesh)")
		os.Exit(2)
	}
	if *mesh != "" && (*serve != "" || *connect != "") {
		fmt.Fprintln(os.Stderr, "-mesh already accepts and dials peers; it cannot be combined with -serve or -connect")
		os.Exit(2)
	}
	if *mesh == "" && (*peers != "" || *advertise != "") {
		fmt.Fprintln(os.Stderr, "-peers and -advertise only apply to -mesh nodes")
		os.Exit(2)
	}

	var strat peachstar.Strategy
	switch strings.ToLower(*strategy) {
	case "peach":
		strat = peachstar.Peach
	case "peachstar", "peach*":
		strat = peachstar.PeachStar
	default:
		fmt.Fprintf(os.Stderr, "unknown strategy %q (want peach or peachstar)\n", *strategy)
		os.Exit(2)
	}

	tgt, err := peachstar.NewTarget(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	campaign, err := peachstar.NewCampaign(peachstar.Options{
		Target:     tgt,
		Strategy:   strat,
		Seed:       *seed,
		Workers:    *workers,
		SeedStream: *seedStream,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var hub *peachstar.SyncServer
	if *serve != "" {
		hub, err = campaign.ServeSync(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer hub.Close()
		fmt.Printf("serving fleet sync on %s\n", hub.Addr())
	}

	var leaf *peachstar.SyncLeaf
	if *connect != "" {
		leaf, err = campaign.DialSync(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer leaf.Close()
		fmt.Printf("syncing with fleet hub at %s (every %d execs)\n", *connect, *syncEvery)
	}

	var mnode *peachstar.MeshNode
	if *mesh != "" {
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		mnode, err = campaign.JoinMesh(peachstar.MeshOptions{
			Listen:    *mesh,
			Peers:     peerList,
			Advertise: *advertise,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer mnode.Close()
		fmt.Printf("mesh node on %s (%d bootstrap peers, syncing every %d execs)\n",
			mnode.Addr(), len(peerList), *syncEvery)
	}

	fmt.Printf("fuzzing %s with %s (seed %d, stream %d, %d workers)\n",
		*target, strat, *seed, *seedStream, campaign.Workers())
	start := time.Now()
	switch {
	case *duration > 0:
		// Deadline-aware run: the deadline is checked inside every
		// worker's loop, so the campaign stops within one iteration of
		// the budget instead of rounding up to a full exec slice.
		deadline := start.Add(*duration)
		interval := *duration
		if *report > 0 {
			interval = *duration / time.Duration(*report)
		}
		if interval <= 0 {
			interval = *duration
		}
		for next := start.Add(interval); time.Now().Before(deadline); next = next.Add(interval) {
			if next.After(deadline) {
				next = deadline
			}
			switch {
			case leaf != nil:
				if err := leaf.RunSyncedUntil(next, *syncEvery); err != nil {
					fmt.Fprintf(os.Stderr, "sync: %v (continuing locally)\n", err)
				}
			case mnode != nil:
				if err := mnode.RunSyncedUntil(next, *syncEvery); err != nil {
					fmt.Fprintf(os.Stderr, "sync: %v (continuing locally)\n", err)
				}
			default:
				campaign.RunUntil(next)
			}
			printProgress(campaign, leaf, mnode, hub, start)
		}
	case *execs > 0:
		per := *execs / *report
		if per < 1 {
			per = 1
		}
		for done := per; done <= *execs; done += per {
			switch {
			case leaf != nil:
				if err := leaf.RunSynced(done, *syncEvery); err != nil {
					fmt.Fprintf(os.Stderr, "sync: %v (continuing locally)\n", err)
				}
			case mnode != nil:
				if err := mnode.RunSynced(done, *syncEvery); err != nil {
					fmt.Fprintf(os.Stderr, "sync: %v (continuing locally)\n", err)
				}
			default:
				campaign.Run(done)
			}
			printProgress(campaign, leaf, mnode, hub, start)
		}
	}

	if hub != nil || mnode != nil {
		// Hub and mesh nodes outlive their own budget: keep serving (and,
		// for a mesh node, relaying between peers) until interrupted,
		// reporting periodically. A -mesh -execs 0 node is a pure relay.
		fmt.Println("local budget spent; serving fleet sync until interrupted (Ctrl-C)")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
	serveLoop:
		for {
			select {
			case <-sig:
				break serveLoop
			case <-tick.C:
				if mnode != nil {
					if err := mnode.Sync(); err != nil {
						fmt.Fprintf(os.Stderr, "sync: %v (continuing)\n", err)
					}
				}
				printProgress(campaign, nil, mnode, hub, start)
			}
		}
	}

	s := campaign.Stats()
	fmt.Printf("\nfinished: %d execs, %d paths, %d edges, %d unique crashes, %d hangs, corpus %d puzzles\n",
		s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.Hangs, s.CorpusPuzzles)
	for i, c := range campaign.Crashes() {
		fmt.Printf("crash %d: %s at %s (first at exec %d, seen %d times)\n  packet: %x\n",
			i+1, c.Kind, c.Site, c.FirstExec, c.Count, c.Example)
	}
}

func printProgress(c *peachstar.Campaign, leaf *peachstar.SyncLeaf, mnode *peachstar.MeshNode, hub *peachstar.SyncServer, start time.Time) {
	s := c.Stats()
	line := fmt.Sprintf("%8.1fs  execs %8d  paths %5d  edges %5d  crashes %3d  corpus %5d",
		time.Since(start).Seconds(), s.Execs, s.Paths, s.Edges, s.UniqueCrashes, s.CorpusPuzzles)
	if leaf != nil {
		if fexecs, fedges, nodes, ok := leaf.FleetStats(); ok {
			line += fmt.Sprintf("  | fleet execs %8d  edges %5d  leaves %2d", fexecs, fedges, nodes)
		}
	}
	if mnode != nil {
		uplinks, inbound, known := mnode.PeerStats()
		line += fmt.Sprintf("  | mesh %d up/%d in of %d known, +%d remote execs",
			uplinks, inbound, known, mnode.RemoteExecs())
	}
	if hub != nil {
		rexecs, _, connected := hub.RemoteStats()
		line += fmt.Sprintf("  | +%d remote execs, %d leaves", rexecs, connected)
	}
	fmt.Println(line)
}
