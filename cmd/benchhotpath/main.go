// Command benchhotpath measures the Peach* execution hot path — the serial
// engine loop on libmodbus — and emits the BENCH_hotpath.json measurement
// fields as one JSON object on stdout: ns/exec, allocs/exec, bytes/exec and
// execs/sec. `make bench-hotpath` runs it; paste the object into the
// "after" slot of BENCH_hotpath.json when recording a new machine or a
// hot-path change.
//
// Usage:
//
//	benchhotpath [-execs 200000] [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/targets"

	_ "repro/internal/targets/modbus"
)

func main() {
	execs := flag.Int("execs", 200000, "executions to measure")
	seed := flag.Uint64("seed", 1, "campaign seed")
	flag.Parse()

	tgt, err := targets.New("libmodbus")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	eng.Run(*execs)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	n := eng.Stats().Execs
	nsPerExec := float64(elapsed.Nanoseconds()) / float64(n)
	out := map[string]any{
		"bench":           "libmodbus Peach* serial hot loop (core.Engine.Run)",
		"go":              runtime.Version(),
		"goarch":          runtime.GOARCH,
		"execs_measured":  n,
		"ns_per_exec":     nsPerExec,
		"execs_per_sec":   1e9 / nsPerExec,
		"allocs_per_exec": float64(after.Mallocs-before.Mallocs) / float64(n),
		"bytes_per_exec":  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
