// Command benchfleetnet measures the cost of a fleetnet sync window — the
// wire exchange a node performs with its peers every N executions — over
// TCP loopback on libmodbus, and emits the BENCH_fleetnet.json measurement
// fields as one JSON object on stdout. `make bench-fleetnet` runs it.
//
// Three figures matter for sizing a hub/leaf fleet:
//
//   - steady-window cost: wall time and bytes of a sync after `-window`
//     fresh executions (the per-window overhead a leaf actually pays);
//   - empty-window round trip: a sync with nothing new on either side
//     (the protocol floor: framing + one empty delta each way);
//   - full-resync cost: the first window of a reconnecting leaf whose
//     session state was lost (shadow bitmap reset, journal replayed).
//
// With -mesh it instead measures a 3-node hub-less mesh (one seed node,
// two nodes bootstrapped from its address): the per-node steady window
// cost across all of a node's links, and the mesh-wide wire bytes per
// round — the numbers that size -sync-every when sync bandwidth scales
// with links instead of flowing through one hub.
//
// Usage:
//
//	benchfleetnet [-windows 200] [-window 256] [-warmup 50000] [-seed 1] [-mesh]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fleetnet"
	"repro/internal/targets"

	_ "repro/internal/targets/modbus"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	windows := flag.Int("windows", 200, "sync windows to measure")
	window := flag.Int("window", 256, "executions per sync window")
	warmup := flag.Int("warmup", 50000, "executions before measuring (coverage near saturation)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	meshMode := flag.Bool("mesh", false, "measure a 3-node hub-less mesh instead of hub/leaf")
	flag.Parse()

	if *meshMode {
		benchMesh(*windows, *window, *warmup, *seed)
		return
	}

	tgt, err := targets.New("libmodbus")
	if err != nil {
		die(err)
	}
	state := core.NewSyncState(0)
	hub, err := fleetnet.NewHub(fleetnet.HubConfig{State: state, Target: "libmodbus", Models: tgt.Models()})
	if err != nil {
		die(err)
	}
	if err := hub.ListenAndServe("127.0.0.1:0"); err != nil {
		die(err)
	}
	defer hub.Close()

	fleet, err := core.NewFleet(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     *seed,
	}, core.ParallelConfig{Workers: 1})
	if err != nil {
		die(err)
	}
	leaf, err := fleetnet.NewLeaf(fleetnet.LeafConfig{
		Fleet: fleet, Addr: hub.Addr(), Target: "libmodbus", Models: tgt.Models(),
	})
	if err != nil {
		die(err)
	}
	defer leaf.Close()

	// Warm up: build coverage and corpus so measured windows carry the
	// trickle of novelty a long campaign's windows do, not cold-start floods.
	if err := leaf.Run(*warmup, *window); err != nil {
		die(err)
	}

	// Steady windows: window execs of fuzzing, then one sync.
	tx0, rx0 := leaf.Traffic()
	var fuzzTotal, syncTotal, syncMax time.Duration
	for i := 0; i < *windows; i++ {
		start := time.Now()
		fleet.Run(fleet.Execs() + *window)
		fuzzTotal += time.Since(start)
		start = time.Now()
		if err := leaf.Sync(); err != nil {
			die(err)
		}
		d := time.Since(start)
		syncTotal += d
		if d > syncMax {
			syncMax = d
		}
	}
	tx1, rx1 := leaf.Traffic()

	// Empty windows: sync again with no new executions — protocol floor.
	var emptyTotal time.Duration
	const emptyRounds = 100
	for i := 0; i < emptyRounds; i++ {
		start := time.Now()
		if err := leaf.Sync(); err != nil {
			die(err)
		}
		emptyTotal += time.Since(start)
	}
	tx2, rx2 := leaf.Traffic()

	// Full resync: a replacement leaf process attaching the same campaign
	// state cold — fresh shadow bitmap and journal cursor on both sides,
	// so the entire bitmap and corpus cross the wire once, each way.
	leaf.Close()
	leaf2, err := fleetnet.NewLeaf(fleetnet.LeafConfig{
		Fleet: fleet, Addr: hub.Addr(), Target: "libmodbus", Models: tgt.Models(),
	})
	if err != nil {
		die(err)
	}
	defer leaf2.Close()
	start := time.Now()
	if err := leaf2.Sync(); err != nil {
		die(err)
	}
	resync := time.Since(start)
	rtx, rrx := leaf2.Traffic()

	s := fleet.Stats()
	out := map[string]any{
		"warmup_execs":            fleet.Execs(),
		"edges_at_measurement":    s.Edges,
		"corpus_puzzles":          s.CorpusPuzzles,
		"window_execs":            *window,
		"windows_measured":        *windows,
		"sync_us_avg":             float64(syncTotal.Microseconds()) / float64(*windows),
		"sync_us_max":             float64(syncMax.Microseconds()),
		"sync_tx_bytes_avg":       float64(tx1-tx0) / float64(*windows),
		"sync_rx_bytes_avg":       float64(rx1-rx0) / float64(*windows),
		"empty_sync_us_avg":       float64(emptyTotal.Microseconds()) / float64(emptyRounds),
		"empty_sync_tx_bytes_avg": float64(tx2-tx1) / float64(emptyRounds),
		"empty_sync_rx_bytes_avg": float64(rx2-rx1) / float64(emptyRounds),
		"full_resync_us":          float64(resync.Microseconds()),
		"full_resync_tx_bytes":    rtx,
		"full_resync_rx_bytes":    rrx,
		// Share of a leaf's wall clock spent syncing rather than fuzzing
		// at this window size — the number that sizes -sync-every.
		"sync_overhead_pct": 100 * float64(syncTotal) / float64(fuzzTotal+syncTotal),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		die(err)
	}
}

// newMeshFleet builds one 1-worker libmodbus fleet on the given RNG stream
// of the campaign seed.
func newMeshFleet(seed uint64, stream int) *core.Fleet {
	tgt, err := targets.New("libmodbus")
	if err != nil {
		die(err)
	}
	fleet, err := core.NewFleet(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     seed,
	}, core.ParallelConfig{Workers: 1, SeedStream: stream})
	if err != nil {
		die(err)
	}
	return fleet
}

// benchMesh measures the steady sync-window cost of a 3-node hub-less
// mesh: two nodes bootstrap from the seed node's address, the nodes are
// driven round-robin to saturation, then each measured round runs every
// node `window` executions and one Sync across all of its links.
func benchMesh(windows, window, warmup int, seed uint64) {
	const nodes = 3
	fleets := make([]*core.Fleet, nodes)
	meshes := make([]*fleetnet.Mesh, nodes)
	tgt, err := targets.New("libmodbus")
	if err != nil {
		die(err)
	}
	var seedAddr string
	for i := 0; i < nodes; i++ {
		fleets[i] = newMeshFleet(seed, i)
		cfg := fleetnet.MeshConfig{
			Fleet:  fleets[i],
			Target: "libmodbus",
			Models: tgt.Models(),
			NodeID: fmt.Sprintf("bench-%d", i),
		}
		if i > 0 {
			cfg.Peers = []string{seedAddr}
		}
		m, err := fleetnet.NewMesh(cfg)
		if err != nil {
			die(err)
		}
		if err := m.ListenAndServe("127.0.0.1:0"); err != nil {
			die(err)
		}
		defer m.Close()
		if i == 0 {
			seedAddr = m.Addr()
		}
		meshes[i] = m
	}

	// Warm up to saturation, interleaving the nodes so the mesh reaches
	// the same steady trickle a long concurrent campaign sees.
	perNode := warmup / nodes
	for done := 0; done < perNode; done += window {
		for i, m := range meshes {
			fleets[i].Run(fleets[i].Execs() + window)
			if err := m.Sync(); err != nil {
				die(err)
			}
		}
	}

	// Measured rounds: per node, one window of fuzzing and one Sync over
	// all of its links.
	type tr struct{ tx, rx int }
	before := make([]tr, nodes)
	for i, m := range meshes {
		before[i].tx, before[i].rx = m.Traffic()
	}
	var fuzzTotal, syncTotal, syncMax time.Duration
	for w := 0; w < windows; w++ {
		for i, m := range meshes {
			start := time.Now()
			fleets[i].Run(fleets[i].Execs() + window)
			fuzzTotal += time.Since(start)
			start = time.Now()
			if err := m.Sync(); err != nil {
				die(err)
			}
			d := time.Since(start)
			syncTotal += d
			if d > syncMax {
				syncMax = d
			}
		}
	}
	var tx, rx, uplinks int
	for i, m := range meshes {
		t, r := m.Traffic()
		tx += t - before[i].tx
		rx += r - before[i].rx
		u, _, _ := m.PeerStats()
		uplinks += u
	}

	nodeWindows := float64(windows * nodes)
	edges := 0
	for _, f := range fleets {
		if e := f.Stats().Edges; e > edges {
			edges = e
		}
	}
	out := map[string]any{
		"mesh_nodes":           nodes,
		"mesh_links":           uplinks,
		"warmup_execs":         fleets[0].Execs() + fleets[1].Execs() + fleets[2].Execs() - nodes*windows*window,
		"edges_at_measurement": edges,
		"window_execs":         window,
		"windows_measured":     windows,
		// Per node-window: one node's full sync across ALL of its links.
		"mesh_sync_us_avg": float64(syncTotal.Microseconds()) / nodeWindows,
		"mesh_sync_us_max": float64(syncMax.Microseconds()),
		// Mesh-wide wire bytes per round (uplink tx+rx summed over nodes;
		// inbound legs are the same bytes seen from the dialer side).
		"mesh_round_tx_bytes_avg": float64(tx) / float64(windows),
		"mesh_round_rx_bytes_avg": float64(rx) / float64(windows),
		"sync_overhead_pct":       100 * float64(syncTotal) / float64(fuzzTotal+syncTotal),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		die(err)
	}
}
