// Command benchfleetnet measures the cost of a fleetnet sync window — the
// wire exchange a leaf performs with its hub every N executions — over TCP
// loopback on libmodbus, and emits the BENCH_fleetnet.json measurement
// fields as one JSON object on stdout. `make bench-fleetnet` runs it.
//
// Three figures matter for sizing a fleet:
//
//   - steady-window cost: wall time and bytes of a sync after `-window`
//     fresh executions (the per-window overhead a leaf actually pays);
//   - empty-window round trip: a sync with nothing new on either side
//     (the protocol floor: framing + one empty delta each way);
//   - full-resync cost: the first window of a reconnecting leaf whose
//     session state was lost (shadow bitmap reset, journal replayed).
//
// Usage:
//
//	benchfleetnet [-windows 200] [-window 256] [-warmup 50000] [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fleetnet"
	"repro/internal/targets"

	_ "repro/internal/targets/modbus"
)

func die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	windows := flag.Int("windows", 200, "sync windows to measure")
	window := flag.Int("window", 256, "executions per sync window")
	warmup := flag.Int("warmup", 50000, "executions before measuring (coverage near saturation)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	flag.Parse()

	tgt, err := targets.New("libmodbus")
	if err != nil {
		die(err)
	}
	state := core.NewSyncState(0)
	hub, err := fleetnet.NewHub(fleetnet.HubConfig{State: state, Target: "libmodbus", Models: tgt.Models()})
	if err != nil {
		die(err)
	}
	if err := hub.ListenAndServe("127.0.0.1:0"); err != nil {
		die(err)
	}
	defer hub.Close()

	fleet, err := core.NewFleet(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     *seed,
	}, core.ParallelConfig{Workers: 1})
	if err != nil {
		die(err)
	}
	leaf, err := fleetnet.NewLeaf(fleetnet.LeafConfig{
		Fleet: fleet, Addr: hub.Addr(), Target: "libmodbus", Models: tgt.Models(),
	})
	if err != nil {
		die(err)
	}
	defer leaf.Close()

	// Warm up: build coverage and corpus so measured windows carry the
	// trickle of novelty a long campaign's windows do, not cold-start floods.
	if err := leaf.Run(*warmup, *window); err != nil {
		die(err)
	}

	// Steady windows: window execs of fuzzing, then one sync.
	tx0, rx0 := leaf.Traffic()
	var fuzzTotal, syncTotal, syncMax time.Duration
	for i := 0; i < *windows; i++ {
		start := time.Now()
		fleet.Run(fleet.Execs() + *window)
		fuzzTotal += time.Since(start)
		start = time.Now()
		if err := leaf.Sync(); err != nil {
			die(err)
		}
		d := time.Since(start)
		syncTotal += d
		if d > syncMax {
			syncMax = d
		}
	}
	tx1, rx1 := leaf.Traffic()

	// Empty windows: sync again with no new executions — protocol floor.
	var emptyTotal time.Duration
	const emptyRounds = 100
	for i := 0; i < emptyRounds; i++ {
		start := time.Now()
		if err := leaf.Sync(); err != nil {
			die(err)
		}
		emptyTotal += time.Since(start)
	}
	tx2, rx2 := leaf.Traffic()

	// Full resync: a replacement leaf process attaching the same campaign
	// state cold — fresh shadow bitmap and journal cursor on both sides,
	// so the entire bitmap and corpus cross the wire once, each way.
	leaf.Close()
	leaf2, err := fleetnet.NewLeaf(fleetnet.LeafConfig{
		Fleet: fleet, Addr: hub.Addr(), Target: "libmodbus", Models: tgt.Models(),
	})
	if err != nil {
		die(err)
	}
	defer leaf2.Close()
	start := time.Now()
	if err := leaf2.Sync(); err != nil {
		die(err)
	}
	resync := time.Since(start)
	rtx, rrx := leaf2.Traffic()

	s := fleet.Stats()
	out := map[string]any{
		"warmup_execs":            fleet.Execs(),
		"edges_at_measurement":    s.Edges,
		"corpus_puzzles":          s.CorpusPuzzles,
		"window_execs":            *window,
		"windows_measured":        *windows,
		"sync_us_avg":             float64(syncTotal.Microseconds()) / float64(*windows),
		"sync_us_max":             float64(syncMax.Microseconds()),
		"sync_tx_bytes_avg":       float64(tx1-tx0) / float64(*windows),
		"sync_rx_bytes_avg":       float64(rx1-rx0) / float64(*windows),
		"empty_sync_us_avg":       float64(emptyTotal.Microseconds()) / float64(emptyRounds),
		"empty_sync_tx_bytes_avg": float64(tx2-tx1) / float64(emptyRounds),
		"empty_sync_rx_bytes_avg": float64(rx2-rx1) / float64(emptyRounds),
		"full_resync_us":          float64(resync.Microseconds()),
		"full_resync_tx_bytes":    rtx,
		"full_resync_rx_bytes":    rrx,
		// Share of a leaf's wall clock spent syncing rather than fuzzing
		// at this window size — the number that sizes -sync-every.
		"sync_overhead_pct": 100 * float64(syncTotal) / float64(fuzzTotal+syncTotal),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		die(err)
	}
}
