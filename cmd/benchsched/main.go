// Command benchsched compares the static Peach* engine with the adaptive
// scheduler (core.Config.Adaptive) on the built-in protocol targets and
// emits the BENCH_sched.json measurement fields as one JSON object on
// stdout: per target, the edge coverage, paths, corpus size and
// distillation count of both configurations at the same execution budget
// and seed. `make bench-sched` runs it; paste the object into the
// "measurements" slot of BENCH_sched.json when recording a new machine or
// a scheduler change.
//
// Usage:
//
//	benchsched [-execs 100000] [-seed 1] [-targets libmodbus,IEC104,lib60870,libiccp]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/targets"

	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

// row is one (target, configuration) measurement.
type row struct {
	Edges        int     `json:"edges"`
	Paths        int     `json:"paths"`
	Corpus       int     `json:"corpus"`
	Distills     int     `json:"distills"`
	EdgesPerMExe float64 `json:"edges_per_1m_execs"`
	NsPerExec    float64 `json:"ns_per_exec"`
}

func measure(name string, execs int, seed uint64, adaptive bool) (row, error) {
	tgt, err := targets.New(name)
	if err != nil {
		return row{}, err
	}
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     seed,
		Adaptive: adaptive,
	})
	if err != nil {
		return row{}, err
	}
	start := time.Now()
	eng.Run(execs)
	elapsed := time.Since(start)
	s := eng.Stats()
	return row{
		Edges:        s.Edges,
		Paths:        s.Paths,
		Corpus:       s.CorpusPuzzles,
		Distills:     s.Distills,
		EdgesPerMExe: float64(s.Edges) / float64(s.Execs) * 1e6,
		NsPerExec:    float64(elapsed.Nanoseconds()) / float64(s.Execs),
	}, nil
}

// measureSession runs the stateful-session configuration (sequence
// generation through the target's state model, non-adaptive) at the same
// budget and seed, for the sequence-vs-single-packet comparison row.
func measureSession(name string, execs int, seed uint64) (row, error) {
	tgt, err := targets.New(name)
	if err != nil {
		return row{}, err
	}
	st, ok := tgt.(targets.SessionTarget)
	if !ok {
		return row{}, fmt.Errorf("benchsched: target %q publishes no session state model", name)
	}
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     seed,
		Session:  st.StateModel(),
	})
	if err != nil {
		return row{}, err
	}
	start := time.Now()
	eng.Run(execs)
	elapsed := time.Since(start)
	s := eng.Stats()
	return row{
		Edges:        s.Edges,
		Paths:        s.Paths,
		Corpus:       s.CorpusPuzzles,
		Distills:     s.Distills,
		EdgesPerMExe: float64(s.Edges) / float64(s.Execs) * 1e6,
		NsPerExec:    float64(elapsed.Nanoseconds()) / float64(s.Execs),
	}, nil
}

func main() {
	execs := flag.Int("execs", 100000, "execution budget per configuration")
	seed := flag.Uint64("seed", 1, "campaign seed")
	list := flag.String("targets", "libmodbus,IEC104,lib60870,libiccp", "comma-separated target names")
	flag.Parse()

	type pair struct {
		Static   row `json:"static"`
		Adaptive row `json:"adaptive"`
	}
	results := map[string]pair{}
	adaptiveWins := 0
	var names []string
	for _, name := range strings.Split(*list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	for _, name := range names {
		st, err := measure(name, *execs, *seed, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ad, err := measure(name, *execs, *seed, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results[name] = pair{Static: st, Adaptive: ad}
		if ad.Edges >= st.Edges {
			adaptiveWins++
		}
	}

	// Sequence vs single-packet on the session-capable IEC104 target: same
	// budget and seed, session walks against independent packets. Reuses
	// the single-packet row when IEC104 is already in the target list.
	seqRow, err := measureSession("IEC104", *execs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	singleRow, measured := results["IEC104"]
	if !measured {
		st, err := measure("IEC104", *execs, *seed, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		singleRow = pair{Static: st}
	}

	out := map[string]any{
		"bench":                       "static vs adaptive scheduler, serial Peach* engines, equal budget and seed",
		"go":                          runtime.Version(),
		"goarch":                      runtime.GOARCH,
		"execs":                       *execs,
		"seed":                        *seed,
		"results":                     results,
		"adaptive_edges_ge_static_on": fmt.Sprintf("%d of %d targets", adaptiveWins, len(names)),
		"sessions": map[string]any{
			"target":        "IEC104",
			"single_packet": singleRow.Static,
			"sequence":      seqRow,
		},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
