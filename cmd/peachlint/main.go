// Command peachlint is the multichecker for the repository's five
// project-specific analyzers (detsource, rnggate, hotalloc, snapfields,
// atomicmix — see internal/analysis). It runs in two modes:
//
// Standalone, the `make lint` entry point:
//
//	peachlint ./...
//
// loads the matched packages via `go list -export` (type-checking against
// the build cache's export data, fully offline), runs every analyzer, prints
// findings as file:line:col: analyzer: message, and exits 1 if there are
// any.
//
// Vet-tool, the cmd/go unitchecker protocol:
//
//	go vet -vettool=$(which peachlint) ./...
//
// cmd/go invokes the tool once per package with a JSON config file argument
// (and with -V=full for the cache-busting version handshake); peachlint
// type-checks the unit from the config's file lists, writes the (empty)
// facts file cmd/go expects, and reports findings as vet JSON.
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		// cmd/go's vet-tool version handshake: the printed id keys the
		// build cache. The analyzers' behaviour is pinned by this string;
		// bump it when diagnostics change.
		fmt.Printf("peachlint version peachlint-v1\n")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		// cmd/go asks which tool flags exist before deciding what to pass;
		// peachlint takes none beyond the protocol itself.
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		if err := runVetUnit(os.Args[1]); err != nil {
			fmt.Fprintf(os.Stderr, "peachlint: %v\n", err)
			os.Exit(1)
		}
		return
	}

	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: peachlint [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "peachlint: %v\n", err)
		os.Exit(1)
	}
	analyzers := analysis.Analyzers()
	total := 0
	for _, pkg := range pkgs {
		for _, f := range analysis.RunPackage(pkg, analyzers) {
			fmt.Println(f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "peachlint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// vetConfig is the JSON unit description cmd/go hands a vet tool; the field
// set mirrors x/tools' unitchecker.Config (only the fields peachlint needs
// are decoded).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetDiagnostic is one finding in cmd/go's vet JSON output format.
type vetDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// runVetUnit analyzes one compilation unit described by a vet .cfg file.
func runVetUnit(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// cmd/go requires the facts file to exist even though peachlint's
	// analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		f, err := os.Create(cfg.VetxOutput)
		if err != nil {
			return err
		}
		if err := gob.NewEncoder(f).Encode([]string{}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	// cmd/go also hands over the test variants of each package; peachlint
	// checks shipped code only (the runtime suites own the tests), so test
	// files are dropped and a test-only unit is vacuously clean.
	shipped := cfg.GoFiles[:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			shipped = append(shipped, f)
		}
	}
	cfg.GoFiles = shipped
	if len(cfg.GoFiles) == 0 {
		return nil
	}

	pkg, err := analysis.LoadVetUnit(analysis.VetUnit{
		ImportPath:  cfg.ImportPath,
		Dir:         cfg.Dir,
		GoFiles:     cfg.GoFiles,
		ImportMap:   cfg.ImportMap,
		PackageFile: cfg.PackageFile,
	})
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return err
	}
	findings := analysis.RunPackage(pkg, analysis.Analyzers())
	if len(findings) == 0 {
		return nil
	}
	// Vet JSON: {"<importpath>": {"<analyzer>": [diagnostics]}}.
	byAnalyzer := map[string][]vetDiagnostic{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], vetDiagnostic{
			Posn:    positionString(f.Pos),
			Message: f.Message,
		})
	}
	out := map[string]map[string][]vetDiagnostic{cfg.ImportPath: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		return err
	}
	os.Exit(2) // diagnostics found: the unitchecker exit convention
	return nil
}

func positionString(p token.Position) string {
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
