package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildPeachlint compiles the tool into a scratch dir and returns the
// binary path.
func buildPeachlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "peachlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building peachlint: %v\n%s", err, out)
	}
	return bin
}

// TestVetToolProtocol drives peachlint through cmd/go's vet-tool protocol
// end to end — the -V=full version handshake, per-unit .cfg analysis and
// facts-file writes — against packages that must vet clean.
func TestVetToolProtocol(t *testing.T) {
	bin := buildPeachlint(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full handshake: %v", err)
	}
	if !strings.HasPrefix(string(out), "peachlint version ") {
		t.Fatalf("-V=full output %q does not follow the vet handshake convention", out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "repro/internal/rng", "repro/internal/checkpoint", "repro/internal/mutator")
	vet.Dir = "../.."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=peachlint: %v\n%s", err, out)
	}
}

// TestStandaloneClean runs the standalone driver over a package that must
// be clean and checks the exit status path.
func TestStandaloneClean(t *testing.T) {
	bin := buildPeachlint(t)
	cmd := exec.Command(bin, "./internal/rng")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("peachlint ./internal/rng: %v\n%s", err, out)
	}
}
