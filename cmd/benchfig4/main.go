// Command benchfig4 regenerates the paper's Fig. 4 (average paths covered
// by Peach and Peach* on the six ICS protocol projects) and the §V-B
// headline summary (final path increase, speed to equal coverage).
//
// Usage:
//
//	benchfig4                    # all six panels + summary (default config)
//	benchfig4 -project libmodbus # one panel
//	benchfig4 -summary           # summary table only
//	benchfig4 -execs 50000 -reps 10 -seed 3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"

	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

func main() {
	def := bench.DefaultConfig()
	var (
		project     = flag.String("project", "", "single project (default: all six)")
		execs       = flag.Int("execs", def.ExecBudget, "executions per repetition (scaled 24h budget)")
		reps        = flag.Int("reps", def.Reps, "repetitions to average (paper uses 10)")
		checkpoints = flag.Int("checkpoints", def.Checkpoints, "curve samples")
		seed        = flag.Uint64("seed", def.Seed, "base seed")
		summaryOnly = flag.Bool("summary", false, "print the summary table only")
		csvDir      = flag.String("csv", "", "also write per-panel CSV files into this directory")
	)
	flag.Parse()

	cfg := bench.Config{ExecBudget: *execs, Reps: *reps, Checkpoints: *checkpoints, Seed: *seed}
	projects := bench.Projects()
	if *project != "" {
		projects = []string{*project}
	}

	var results []bench.ProjectResult
	for _, p := range projects {
		r, err := bench.RunProject(p, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = append(results, r)
		if !*summaryOnly {
			fmt.Println(bench.FormatFig4Panel(r))
			fmt.Printf("Peach  %s\nPeach* %s\n\n", bench.Sparkline(r.Peach), bench.Sparkline(r.Star))
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, r); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	fmt.Println(bench.FormatSummary(results))
	if *csvDir != "" {
		f, err := os.Create(filepath.Join(*csvDir, "summary.csv"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := bench.WriteSummaryCSV(f, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeCSV stores one panel's curves as <project>.csv in dir.
func writeCSV(dir string, r bench.ProjectResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, r.Project+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteCSV(f, r)
}
