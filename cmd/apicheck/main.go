// Command apicheck pins the public API surface of the peachstar package:
// it renders every exported symbol (constants, variables, types, their
// exported methods, and functions) into a normalized one-line-per-symbol
// snapshot, asserts each has a doc comment, and compares the snapshot
// against the checked-in golden file. A diff means the public API changed
// — deliberately or not — and the golden file must be regenerated (and
// the change reviewed) with -update.
//
// The snapshot format is produced here, not by `go doc`, so it is stable
// across Go releases.
//
// Usage (wired as `make api-check` / `make api-snapshot`):
//
//	go run ./cmd/apicheck                # verify against api/peachstar.golden
//	go run ./cmd/apicheck -update        # regenerate the golden file
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	pkgDir := flag.String("pkg", "peachstar", "directory of the package to snapshot")
	golden := flag.String("golden", "api/peachstar.golden", "golden snapshot file")
	update := flag.Bool("update", false, "rewrite the golden file instead of comparing")
	flag.Parse()

	snapshot, undocumented, err := render(*pkgDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	if len(undocumented) > 0 {
		fmt.Fprintf(os.Stderr, "apicheck: %d exported symbols lack doc comments:\n", len(undocumented))
		for _, sym := range undocumented {
			fmt.Fprintln(os.Stderr, "  ", sym)
		}
		os.Exit(1)
	}
	if *update {
		if err := os.WriteFile(*golden, []byte(snapshot), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		fmt.Printf("apicheck: wrote %s (%d lines)\n", *golden, strings.Count(snapshot, "\n"))
		return
	}
	want, err := os.ReadFile(*golden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v (run `make api-snapshot` to create it)\n", err)
		os.Exit(1)
	}
	if string(want) == snapshot {
		fmt.Printf("apicheck: %s API surface matches %s\n", *pkgDir, *golden)
		return
	}
	fmt.Fprintf(os.Stderr, "apicheck: %s API surface differs from %s:\n", *pkgDir, *golden)
	printDiff(os.Stderr, string(want), snapshot)
	fmt.Fprintln(os.Stderr, "review the change, then regenerate with `make api-snapshot`")
	os.Exit(1)
}

// render parses the package and produces the normalized snapshot plus the
// list of exported symbols missing doc comments.
func render(dir string) (snapshot string, undocumented []string, err error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return "", nil, err
	}
	if len(pkgs) != 1 {
		return "", nil, fmt.Errorf("expected one package in %s, found %d", dir, len(pkgs))
	}
	var astPkg *ast.Package
	for _, p := range pkgs {
		astPkg = p
	}
	// doc.New reorganizes declarations into the same symbol model godoc
	// uses: package-level consts/vars/funcs, and types with their
	// associated consts, funcs and methods.
	d := doc.New(astPkg, dir, 0)

	var lines []string
	note := func(kind, name string, node any, hasDoc bool) {
		lines = append(lines, fmt.Sprintf("%s %s: %s", kind, name, exprString(fset, node)))
		if !hasDoc {
			undocumented = append(undocumented, kind+" "+name)
		}
	}

	for _, v := range d.Consts {
		constLines(fset, v, "const", note)
	}
	for _, v := range d.Vars {
		constLines(fset, v, "var", note)
	}
	for _, f := range d.Funcs {
		if ast.IsExported(f.Name) {
			note("func", f.Name, f.Decl, f.Doc != "")
		}
	}
	for _, t := range d.Types {
		if ast.IsExported(t.Name) {
			note("type", t.Name, typeSpecOf(t.Decl), t.Doc != "")
		}
		for _, v := range t.Consts {
			constLines(fset, v, "const", note)
		}
		for _, v := range t.Vars {
			constLines(fset, v, "var", note)
		}
		for _, f := range t.Funcs {
			if ast.IsExported(f.Name) {
				note("func", f.Name, f.Decl, f.Doc != "")
			}
		}
		for _, m := range t.Methods {
			if ast.IsExported(m.Name) {
				note("method", t.Name+"."+m.Name, m.Decl, m.Doc != "")
			}
		}
	}
	sort.Strings(lines)
	sort.Strings(undocumented)
	return strings.Join(lines, "\n") + "\n", undocumented, nil
}

// constLines emits one line per exported name of a const/var block.
func constLines(fset *token.FileSet, v *doc.Value, kind string, note func(kind, name string, node any, hasDoc bool)) {
	for _, spec := range v.Decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			if !ast.IsExported(name.Name) {
				continue
			}
			// Within a block, a spec's own doc counts too (a block-level
			// comment covers single-name blocks).
			hasDoc := v.Doc != "" || vs.Doc.Text() != ""
			note(kind, name.Name, vs, hasDoc)
		}
	}
}

// typeSpecOf digs the TypeSpec out of a type declaration.
func typeSpecOf(decl *ast.GenDecl) any {
	for _, spec := range decl.Specs {
		if ts, ok := spec.(*ast.TypeSpec); ok {
			return ts
		}
	}
	return decl
}

// exprString renders an AST node on one normalized line. Struct and
// interface bodies keep their exported field/method names so additions
// and removals show up in the diff; doc comments inside bodies are
// dropped by rendering the bare AST node.
func exprString(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	switch n := node.(type) {
	case *ast.FuncDecl:
		// Render the signature without the body.
		sig := *n
		sig.Body = nil
		sig.Doc = nil
		printer.Fprint(&buf, fset, &sig)
	case *ast.TypeSpec:
		ts := *n
		ts.Doc = nil
		ts.Comment = nil
		printer.Fprint(&buf, fset, &ts)
	case *ast.ValueSpec:
		vs := *n
		vs.Doc = nil
		vs.Comment = nil
		printer.Fprint(&buf, fset, &vs)
	default:
		printer.Fprint(&buf, fset, node)
	}
	// Collapse to one line: the golden file diffs line-per-symbol.
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}

// printDiff prints a minimal line diff (missing/extra lines, order
// ignored is not wanted here — both sides are sorted).
func printDiff(w *os.File, want, got string) {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintln(w, "  -", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintln(w, "  +", l)
		}
	}
}
