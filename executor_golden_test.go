package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/targets"

	_ "repro/internal/targets/modbus"
)

// TestExecutorInProcGolden pins the executor-seam half of the execution
// backend contract: routing the sandbox through an explicit InProc
// executor (Config.Executor) is bit-for-bit identical to the default path
// (Config.Target alone) — the refactor that introduced the seam moved the
// call, not the behavior. The golden string is the same one
// TestAdaptiveOffGolden pins for the pre-scheduler engine.
func TestExecutorInProcGolden(t *testing.T) {
	const golden = "iters=28927 execs=30000 paths=110 semExecs=1660 semPaths=14 edges=180 crashes=2 hangs=0 corpus=290"
	tgt, err := targets.New("libmodbus")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Executor: executor.NewInProc(tgt),
		Strategy: core.StrategyPeachStar,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(30000)
	if got := fingerprint(eng); got != golden {
		t.Errorf("explicit InProc executor diverged from the default in-process path:\n got %s\nwant %s", got, golden)
	}
}
