package corpus

import (
	"fmt"
	"testing"

	"repro/internal/datamodel"
)

// These tests pin the contract corpus distillation (internal/core's
// adaptive scheduler) leans on: Remove touches only the live store — the
// acceptance journal, its compaction horizon, and registered peer cursors
// are untouched — so a corpus can be pruned in the middle of an
// incremental sync and every reader still converges.

func TestRemoveSemantics(t *testing.T) {
	c := New(0)
	chunk := datamodel.Num("x", 2, 0)
	sig := datamodel.RuleSignature(chunk)
	c.Add(puzzle(sig, "aa", "m"))
	c.Add(puzzle(sig, "bb", "m"))

	if c.Remove(sig, []byte("zz")) {
		t.Fatal("removing an absent puzzle reported true")
	}
	if c.Remove("nosuchsig", []byte("aa")) {
		t.Fatal("removing under an absent signature reported true")
	}
	if !c.Remove(sig, []byte("aa")) {
		t.Fatal("removing a present puzzle reported false")
	}
	if c.Remove(sig, []byte("aa")) {
		t.Fatal("double remove reported true")
	}
	if c.Len() != 1 {
		t.Fatalf("corpus = %d puzzles after remove, want 1", c.Len())
	}
	donors := c.Donors(chunk)
	if len(donors) != 1 || string(donors[0].Data) != "bb" {
		t.Fatalf("donors after remove = %+v", donors)
	}

	// A removed puzzle is addable again: its dedup key is forgotten.
	if !c.Add(puzzle(sig, "aa", "m")) {
		t.Fatal("re-adding a removed puzzle was rejected as a duplicate")
	}

	// Removing the last puzzle of a signature clears the donor list
	// entirely.
	c.Remove(sig, []byte("aa"))
	c.Remove(sig, []byte("bb"))
	if got := c.Donors(chunk); len(got) != 0 {
		t.Fatalf("donors after clearing the signature = %+v", got)
	}
	if c.Len() != 0 || !c.Empty() {
		t.Fatal("corpus bookkeeping wrong after removing everything")
	}
}

// TestRemoveLeavesJournal: pruning is local-only — the journal still
// carries the removed puzzle, its length and base do not move, and a
// peer replaying the journal receives the puzzle the pruner dropped.
func TestRemoveLeavesJournal(t *testing.T) {
	src := New(0)
	src.Add(puzzle("sig", "a", "m"))
	src.Add(puzzle("sig", "b", "m"))
	jl, jb := src.JournalLen(), src.JournalBase()

	src.Remove("sig", []byte("a"))
	if src.JournalLen() != jl || src.JournalBase() != jb {
		t.Fatalf("Remove moved the journal: len %d→%d base %d→%d",
			jl, src.JournalLen(), jb, src.JournalBase())
	}

	dst := New(0)
	if added, _ := dst.MergeJournal(src, 0); added != 2 {
		t.Fatalf("replay after remove added %d, want 2 (journal is append-only)", added)
	}
	if dst.Len() != 2 {
		t.Fatalf("dst = %d puzzles, want 2", dst.Len())
	}
}

// TestDistillMidSync is the regression test for distillation racing an
// incremental journal sync: a source corpus is pruned between two delta
// windows, and the destination still converges on the journal's contents
// with valid marks — no skipped entries, no re-scans, and idempotent
// re-replay.
func TestDistillMidSync(t *testing.T) {
	src, dst := New(0), New(0)
	src.Add(puzzle("sig", "a", "m"))
	src.Add(puzzle("sig", "b", "m"))

	added, mark := dst.MergeJournal(src, 0)
	if added != 2 || mark != 2 {
		t.Fatalf("first window: added=%d mark=%d, want 2,2", added, mark)
	}

	// Distillation prunes "a" from the live store mid-sync, then fuzzing
	// continues and accepts fresh material.
	if !src.Remove("sig", []byte("a")) {
		t.Fatal("setup: remove failed")
	}
	src.Add(puzzle("sig", "c", "m"))
	src.Add(puzzle("sig2", "d", "m"))

	added, mark = dst.MergeJournal(src, mark)
	if added != 2 || mark != 4 {
		t.Fatalf("post-distill window: added=%d mark=%d, want 2,4", added, mark)
	}
	if dst.Len() != 4 {
		t.Fatalf("dst = %d puzzles, want 4 (removal does not propagate)", dst.Len())
	}

	// Re-replaying the full journal is idempotent for the destination…
	if added, _ = dst.MergeJournal(src, 0); added != 0 {
		t.Fatalf("full re-replay added %d, want 0", added)
	}
	// …and re-absorbs the pruned puzzle on the source itself, deduping on
	// a second pass (the crash-recovery path).
	if added, _ = src.MergeJournal(src, 0); added != 1 {
		t.Fatalf("self-replay re-added %d, want 1 (just the pruned puzzle)", added)
	}
	if added, _ = src.MergeJournal(src, 0); added != 0 {
		t.Fatalf("second self-replay added %d, want 0", added)
	}
}

// TestDistillWithPeerCursors: removal does not disturb registered peer
// cursors or the compaction horizon — a reader mid-stream keeps its exact
// position, and compaction after a prune still honors the slowest reader.
func TestDistillWithPeerCursors(t *testing.T) {
	src := New(0)
	for i := 0; i < 6; i++ {
		src.Add(puzzle("sig", fmt.Sprintf("p%d", i), "m"))
	}
	slow := src.RegisterPeer(2)
	fast := src.RegisterPeer(6)

	src.Remove("sig", []byte("p0"))
	src.Remove("sig", []byte("p3"))

	// Compaction is bounded by the slow reader at 2, untouched by the
	// removals above it.
	if dropped := src.CompactJournal(); dropped != 2 || src.JournalBase() != 2 {
		t.Fatalf("compaction dropped %d (base %d), want 2 up to the slow peer's cursor",
			dropped, src.JournalBase())
	}
	// The slow reader resumes from its cursor and sees every journal entry
	// from there — including the pruned p3.
	var got []string
	mark := src.ReadJournal(2, func(p Puzzle) { got = append(got, string(p.Data)) })
	if mark != 6 || len(got) != 4 {
		t.Fatalf("resume read: mark=%d entries=%v", mark, got)
	}
	for i, want := range []string{"p2", "p3", "p4", "p5"} {
		if got[i] != want {
			t.Fatalf("resume read entry %d = %q, want %q", i, got[i], want)
		}
	}

	src.AdvancePeer(slow, 6)
	src.DropPeer(fast)
	if dropped := src.CompactJournal(); dropped != 4 || src.JournalBase() != 6 {
		t.Fatalf("post-advance compaction dropped %d (base %d), want 4 up to 6",
			dropped, src.JournalBase())
	}

	// A reader whose mark predates the horizon is out of range: the call
	// degrades to a full replay of the live (distilled) store — the two
	// pruned puzzles are gone, everything else converges.
	dst := New(0)
	added, newMark := dst.MergeJournal(src, 0)
	if added != src.Len() || newMark != src.JournalLen() {
		t.Fatalf("out-of-range delta = %d,%d, want full replay %d,%d",
			added, newMark, src.Len(), src.JournalLen())
	}
	if dst.Len() != 4 {
		t.Fatalf("fallback merged %d puzzles, want the 4 live ones", dst.Len())
	}
}
