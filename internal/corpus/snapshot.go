package corpus

import (
	"fmt"

	"repro/internal/checkpoint"
)

// This file is the corpus's side of the campaign-checkpoint seam. The
// snapshot captures the live store (per-signature puzzle lists in their
// freshness order — eviction order matters), the acceptance journal with
// its compaction horizon, and the registered peer cursors, so a
// warm-restarted node resumes exactly the sync relationships it had:
// in-range cursors keep reading incrementally, and any peer of a previous
// incarnation that reconnects lands in the existing full-replay fallback.
//
// Encoding is canonical: signatures are written in sorted order, lists in
// stored order, every integer minimally — snapshot → restore → snapshot
// reproduces the identical byte string.

// Snapshot writes the corpus's full state through the checkpoint codec.
func (c *Corpus) Snapshot(w *checkpoint.Writer) {
	w.Int(c.perSig)
	w.Int(c.inserted)
	sigs := c.Signatures()
	w.Int(len(sigs))
	for _, sig := range sigs {
		list := c.bySig[sig]
		w.String(sig)
		w.Int(len(list))
		for _, p := range list {
			w.Blob(p.Data)
			w.String(p.Model)
		}
	}
	w.Int(c.journalBase)
	w.Int(len(c.journal))
	for _, p := range c.journal {
		w.String(p.Signature)
		w.Blob(p.Data)
		w.String(p.Model)
	}
	w.Int(len(c.peerCursors))
	for _, cur := range c.peerCursors {
		// -1 (dropped slot) encodes as 0, live cursor n as n+1 — keeps
		// every value in uvarint range.
		w.Uvarint(uint64(cur + 1))
	}
}

// Restore overwrites the corpus with a Snapshot-produced dump, rebuilding
// the dedup set and puzzle counter from the restored store. Violated
// invariants — unsorted signatures, over-capacity lists, duplicate
// (signature, bytes) pairs, a journal horizon behind its base — fail the
// restore.
func (c *Corpus) Restore(r *checkpoint.Reader) error {
	perSig := r.Int()
	inserted := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if perSig <= 0 {
		return fmt.Errorf("corpus: non-positive per-signature bound %d", perSig)
	}
	c.perSig = perSig
	c.inserted = inserted
	c.bySig = make(map[string][]Puzzle)
	c.seen = make(map[string]bool)
	c.puzzles = 0
	c.journal = nil
	c.journalBase = 0
	c.peerCursors = nil

	nsig := r.Count()
	prevSig := ""
	for i := 0; i < nsig && r.Err() == nil; i++ {
		sig := r.String()
		n := r.Count()
		if r.Err() != nil {
			break
		}
		if i > 0 && sig <= prevSig {
			return fmt.Errorf("corpus: signatures out of order at %q", sig)
		}
		prevSig = sig
		if n == 0 || n > c.perSig {
			return fmt.Errorf("corpus: signature %q holds %d puzzles (bound %d)", sig, n, c.perSig)
		}
		list := make([]Puzzle, 0, n)
		for j := 0; j < n && r.Err() == nil; j++ {
			p := Puzzle{Signature: sig, Data: r.Blob(), Model: r.String()}
			if r.Err() != nil {
				break
			}
			key := dedupKey(sig, p.Data)
			if c.seen[key] {
				return fmt.Errorf("corpus: duplicate puzzle under %q", sig)
			}
			c.seen[key] = true
			list = append(list, p)
			c.puzzles++
		}
		c.bySig[sig] = list
	}

	c.journalBase = r.Int()
	nj := r.Count()
	for i := 0; i < nj && r.Err() == nil; i++ {
		p := Puzzle{Signature: r.String(), Data: r.Blob(), Model: r.String()}
		if r.Err() == nil {
			c.journal = append(c.journal, p)
		}
	}

	np := r.Count()
	for i := 0; i < np && r.Err() == nil; i++ {
		v := r.Uvarint()
		if r.Err() != nil {
			break
		}
		cur := int(v) - 1
		if cur > c.JournalLen() {
			return fmt.Errorf("corpus: peer cursor %d beyond journal length %d", cur, c.JournalLen())
		}
		c.peerCursors = append(c.peerCursors, cur)
	}
	return r.Err()
}

// Peers returns the number of peer cursor slots ever registered (live and
// dropped). The fleet restore path uses it to drop slots that belonged to
// network peers of a previous incarnation, so dead cursors do not pin the
// journal against compaction forever.
func (c *Corpus) Peers() int { return len(c.peerCursors) }
