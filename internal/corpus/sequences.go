package corpus

import "strings"

// Sequences ride the corpus as ordinary puzzles under a reserved
// signature namespace, so the whole journal/sync/compaction machinery
// (and the fleetnet wire format) carries them with zero new plumbing: a
// sequence entry's Data is the versioned session codec encoding, its
// Signature is SeqSignature(stateModel). The namespace prefix contains a
// NUL byte, which no datamodel rule signature does ("num(...)",
// "blk(...)" — printable), so sequence entries can never collide with
// donor material or be returned by Donors.
const seqSigPrefix = "seq\x00"

// SeqSignature returns the corpus signature under which the named state
// model's sequences are stored.
func SeqSignature(stateModel string) string { return seqSigPrefix + stateModel }

// IsSeqSignature reports whether sig is in the reserved sequence
// namespace (any state model).
func IsSeqSignature(sig string) bool { return strings.HasPrefix(sig, seqSigPrefix) }

// AddSequence stores one encoded sequence for the named state model,
// returning true if it was new. Exact duplicates dedup; the per-signature
// bound applies, evicting the oldest sequence.
func (c *Corpus) AddSequence(stateModel string, encoded []byte) bool {
	return c.Add(Puzzle{Signature: SeqSignature(stateModel), Data: encoded, Model: stateModel})
}

// Sequences returns the stored encoded sequences for the named state
// model, oldest first. The slice is shared; callers must not modify it.
func (c *Corpus) Sequences(stateModel string) []Puzzle {
	return c.bySig[SeqSignature(stateModel)]
}
