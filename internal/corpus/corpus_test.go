package corpus

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/datamodel"
)

func puzzle(sig, data, model string) Puzzle {
	return Puzzle{Signature: sig, Data: []byte(data), Model: model}
}

func TestAddAndDonors(t *testing.T) {
	c := New(0)
	if !c.Empty() {
		t.Fatal("new corpus should be empty")
	}
	chunk := datamodel.Num("x", 2, 0)
	sig := datamodel.RuleSignature(chunk)
	if !c.Add(puzzle(sig, "ab", "m1")) {
		t.Fatal("first add should succeed")
	}
	if c.Add(puzzle(sig, "ab", "m1")) {
		t.Fatal("exact duplicate should be rejected")
	}
	donors := c.Donors(chunk)
	if len(donors) != 1 || !bytes.Equal(donors[0].Data, []byte("ab")) {
		t.Fatalf("donors = %+v", donors)
	}
	if c.Len() != 1 || c.Empty() {
		t.Fatal("corpus bookkeeping wrong")
	}
}

func TestDonorsRespectSignature(t *testing.T) {
	c := New(0)
	c.Add(puzzle(datamodel.RuleSignature(datamodel.Num("addr", 2, 0)), "xy", "m"))
	other := datamodel.Num("addr", 4, 0) // different width => different rule
	if len(c.Donors(other)) != 0 {
		t.Fatal("width-4 chunk must not receive width-2 donors")
	}
	role := datamodel.Num("version", 2, 0) // same shape, different role
	if len(c.Donors(role)) != 0 {
		t.Fatal("different-role number must not receive donors")
	}
	same := datamodel.Num("addr", 2, 99) // same rule in another model
	if len(c.Donors(same)) != 1 {
		t.Fatal("same-rule chunk should receive donors")
	}
}

func TestNonDonatableChunks(t *testing.T) {
	c := New(0)
	tok := datamodel.Num("op", 1, 3).AsToken()
	if c.Donors(tok) != nil {
		t.Fatal("tokens receive no donors")
	}
	n := &datamodel.Node{Chunk: tok, Data: []byte{3}}
	if c.AddNode("m", n) {
		t.Fatal("token instantiations are not stored")
	}
	rel := datamodel.Num("len", 2, 0).WithRel(datamodel.SizeOf, "op", 0)
	if c.AddNode("m", &datamodel.Node{Chunk: rel, Data: []byte{0, 2}}) {
		t.Fatal("relation fields are not stored")
	}
}

func TestCrossModelPreference(t *testing.T) {
	c := New(0)
	chunk := datamodel.Num("x", 2, 0)
	sig := datamodel.RuleSignature(chunk)
	c.Add(puzzle(sig, "aa", "m1"))
	c.Add(puzzle(sig, "bb", "m2"))
	cross := c.CrossModelDonors(chunk, "m1")
	if len(cross) != 1 || cross[0].Model != "m2" {
		t.Fatalf("cross donors = %+v", cross)
	}
	// When only same-model donors exist, fall back to them.
	fallback := c.CrossModelDonors(chunk, "m2")
	if len(fallback) != 1 || fallback[0].Model != "m1" {
		t.Fatalf("fallback donors = %+v", fallback)
	}
	only := New(0)
	only.Add(puzzle(sig, "cc", "m1"))
	fb := only.CrossModelDonors(chunk, "m1")
	if len(fb) != 1 {
		t.Fatal("same-model fallback missing")
	}
}

func TestEvictionBound(t *testing.T) {
	c := New(4)
	chunk := datamodel.Num("x", 2, 0)
	sig := datamodel.RuleSignature(chunk)
	for i := 0; i < 10; i++ {
		c.Add(puzzle(sig, fmt.Sprintf("%02d", i), "m"))
	}
	donors := c.Donors(chunk)
	if len(donors) != 4 {
		t.Fatalf("kept %d donors, want 4", len(donors))
	}
	// Oldest evicted: survivors are 06..09.
	if string(donors[0].Data) != "06" || string(donors[3].Data) != "09" {
		t.Fatalf("eviction order wrong: %s..%s", donors[0].Data, donors[3].Data)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Inserted() != 10 {
		t.Fatalf("Inserted = %d", c.Inserted())
	}
	// An evicted puzzle may be re-added (its dedup key was forgotten).
	if !c.Add(puzzle(sig, "00", "m")) {
		t.Fatal("evicted puzzle should be re-addable")
	}
}

func TestAddNodeCopiesData(t *testing.T) {
	c := New(0)
	chunk := datamodel.Bytes("b", 2, nil)
	data := []byte{1, 2}
	n := &datamodel.Node{Chunk: chunk, Data: data}
	c.AddNode("m", n)
	data[0] = 99
	if c.Donors(chunk)[0].Data[0] == 99 {
		t.Fatal("corpus aliases caller memory")
	}
}

func TestSignaturesSorted(t *testing.T) {
	c := New(0)
	c.Add(puzzle("zz", "1", "m"))
	c.Add(puzzle("aa", "2", "m"))
	sigs := c.Signatures()
	if len(sigs) != 2 || sigs[0] != "aa" || sigs[1] != "zz" {
		t.Fatalf("signatures = %v", sigs)
	}
}

func TestMergeFromDedups(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(puzzle("sig1", "aa", "m1"))
	a.Add(puzzle("sig2", "bb", "m1"))
	b.Add(puzzle("sig1", "aa", "m2")) // duplicate content, different provenance
	b.Add(puzzle("sig1", "cc", "m2"))
	b.Add(puzzle("sig3", "dd", "m2"))

	if got := a.MergeFrom(b); got != 2 {
		t.Fatalf("merge added %d puzzles, want 2 (one exact duplicate dropped)", got)
	}
	if got := a.Len(); got != 4 {
		t.Fatalf("merged corpus holds %d puzzles, want 4", got)
	}
	if got := a.MergeFrom(b); got != 0 {
		t.Fatalf("second merge added %d puzzles, want 0", got)
	}
	// The source corpus is unchanged.
	if got := b.Len(); got != 3 {
		t.Fatalf("source corpus mutated: %d puzzles, want 3", got)
	}
}

func TestMergeFromRespectsPerSigBound(t *testing.T) {
	a, b := New(2), New(0)
	for i := 0; i < 5; i++ {
		b.Add(puzzle("sig", fmt.Sprintf("d%d", i), "m"))
	}
	a.MergeFrom(b)
	if got := a.Len(); got != 2 {
		t.Fatalf("bounded corpus holds %d puzzles, want 2", got)
	}
}

func TestMergeFromNeverEvicts(t *testing.T) {
	a, b := New(2), New(0)
	a.Add(puzzle("sig", "local1", "m"))
	a.Add(puzzle("sig", "local2", "m"))
	for i := 0; i < 4; i++ {
		b.Add(puzzle("sig", fmt.Sprintf("remote%d", i), "m"))
	}
	if got := a.MergeFrom(b); got != 0 {
		t.Fatalf("merge into a full signature added %d puzzles, want 0", got)
	}
	donors := a.bySig["sig"]
	if len(donors) != 2 || string(donors[0].Data) != "local1" || string(donors[1].Data) != "local2" {
		t.Fatalf("merge displaced local puzzles: %v", donors)
	}
	// Merging is idempotent: a second pass converges to a no-op even when
	// both corpora are bounded.
	if got := a.MergeFrom(b); got != 0 {
		t.Fatalf("repeat merge added %d puzzles, want 0", got)
	}
}

func TestJournalRecordsAcceptedPuzzles(t *testing.T) {
	c := New(0)
	if c.JournalLen() != 0 {
		t.Fatalf("fresh journal length = %d, want 0", c.JournalLen())
	}
	c.Add(puzzle("sig", "a", "m"))
	c.Add(puzzle("sig", "a", "m")) // duplicate: rejected, not journaled
	c.Add(puzzle("sig", "b", "m"))
	if got := c.JournalLen(); got != 2 {
		t.Fatalf("journal length = %d, want 2 (accepted only)", got)
	}
}

func TestMergeJournalAppliesOnlyTheDelta(t *testing.T) {
	src, dst := New(0), New(0)
	src.Add(puzzle("sig", "a", "m"))
	src.Add(puzzle("sig", "b", "m"))

	added, mark := dst.MergeJournal(src, 0)
	if added != 2 || mark != 2 {
		t.Fatalf("first delta: added=%d mark=%d, want 2,2", added, mark)
	}
	// Nothing new: replay from the mark is a no-op.
	if added, mark = dst.MergeJournal(src, mark); added != 0 || mark != 2 {
		t.Fatalf("empty delta: added=%d mark=%d, want 0,2", added, mark)
	}
	// New material after the mark is picked up, old entries are not
	// re-scanned.
	src.Add(puzzle("sig", "c", "m"))
	if added, mark = dst.MergeJournal(src, mark); added != 1 || mark != 3 {
		t.Fatalf("second delta: added=%d mark=%d, want 1,3", added, mark)
	}
	if dst.Len() != 3 {
		t.Fatalf("dst corpus = %d puzzles, want 3", dst.Len())
	}
}

func TestMergeJournalMatchesMergeFrom(t *testing.T) {
	src := New(0)
	for i := 0; i < 10; i++ {
		src.Add(puzzle(fmt.Sprintf("sig%d", i%3), fmt.Sprintf("d%d", i), "m"))
	}
	viaFrom, viaJournal := New(2), New(2)
	viaFrom.MergeFrom(src)
	viaJournal.MergeJournal(src, 0)
	if viaFrom.Len() != viaJournal.Len() {
		t.Fatalf("journal merge = %d puzzles, full merge = %d", viaJournal.Len(), viaFrom.Len())
	}
	for _, sig := range viaFrom.Signatures() {
		if len(viaFrom.bySig[sig]) != len(viaJournal.bySig[sig]) {
			t.Fatalf("signature %q: journal %d vs full %d", sig, len(viaJournal.bySig[sig]), len(viaFrom.bySig[sig]))
		}
	}
}

func TestMergeJournalNeverEvicts(t *testing.T) {
	src, dst := New(0), New(1)
	dst.Add(puzzle("sig", "local", "m"))
	src.Add(puzzle("sig", "remote", "m"))
	if added, _ := dst.MergeJournal(src, 0); added != 0 {
		t.Fatalf("delta into full signature added %d, want 0", added)
	}
	if got := dst.bySig["sig"][0].Data; string(got) != "local" {
		t.Fatalf("delta merge displaced local puzzle: %q", got)
	}
}

func TestMergedPuzzlesPropagateThroughJournal(t *testing.T) {
	// A puzzle pulled from the shared corpus enters the worker's journal,
	// so a third peer syncing against the worker still sees it.
	a, b, c := New(0), New(0), New(0)
	a.Add(puzzle("sig", "x", "m"))
	b.MergeJournal(a, 0)
	c.MergeJournal(b, 0)
	if c.Len() != 1 {
		t.Fatalf("puzzle did not propagate: c has %d", c.Len())
	}
}
