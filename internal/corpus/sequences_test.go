package corpus

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/datamodel"
	"repro/internal/session"
)

func TestSeqSignatureNamespace(t *testing.T) {
	sig := SeqSignature("iec104")
	if !IsSeqSignature(sig) {
		t.Fatalf("SeqSignature not recognized")
	}
	// No datamodel rule signature may land in the namespace.
	chunks := []*datamodel.Chunk{
		{Name: "n", Kind: datamodel.Number, Width: 2},
		{Name: "b", Kind: datamodel.Blob, Size: datamodel.Variable, MinSize: 0, MaxSize: 8},
		{Name: "s", Kind: datamodel.String, Size: 4},
	}
	for _, ch := range chunks {
		if IsSeqSignature(datamodel.RuleSignature(ch)) {
			t.Fatalf("rule signature %q collides with sequence namespace", datamodel.RuleSignature(ch))
		}
	}
}

func TestAddSequenceDedupAndBound(t *testing.T) {
	c := New(4)
	enc := session.Encode(nil, session.Sequence{Steps: []session.Step{{Data: []byte("x")}}})
	if !c.AddSequence("sm", enc) {
		t.Fatalf("first add rejected")
	}
	if c.AddSequence("sm", enc) {
		t.Fatalf("duplicate accepted")
	}
	for i := 0; i < 10; i++ {
		seq := session.Sequence{Steps: []session.Step{{Data: []byte(fmt.Sprintf("p%d", i))}}}
		c.AddSequence("sm", session.Encode(nil, seq))
	}
	if got := len(c.Sequences("sm")); got != 4 {
		t.Fatalf("per-signature bound not applied: %d", got)
	}
}

// TestSequencesRideJournalSync: sequence entries must flow through the
// incremental journal exactly like donor puzzles — including a peer that
// attaches mid-campaign with a saved mark — and decode losslessly on the
// far side.
func TestSequencesRideJournalSync(t *testing.T) {
	src := New(0)
	dst := New(0)
	seqA := session.Sequence{Steps: []session.Step{{State: 0, Action: 0, Data: []byte{0x68, 0x04, 0x07, 0, 0, 0}}}}
	src.AddSequence("iec104", session.Encode(nil, seqA))
	mark := 0
	added, mark := dst.MergeJournal(src, mark)
	if added != 1 {
		t.Fatalf("first window added %d", added)
	}
	// Mid-sync: more sequences land, the peer resumes from its mark.
	seqB := session.Sequence{Steps: []session.Step{
		{State: 0, Action: 0, Data: []byte("start")},
		{State: 1, Action: 2, Data: []byte("deep")},
	}}
	src.AddSequence("iec104", session.Encode(nil, seqB))
	added, _ = dst.MergeJournal(src, mark)
	if added != 1 {
		t.Fatalf("second window added %d", added)
	}
	got := dst.Sequences("iec104")
	if len(got) != 2 {
		t.Fatalf("dst holds %d sequences, want 2", len(got))
	}
	dec, err := session.Decode(got[1].Data)
	if err != nil {
		t.Fatalf("synced sequence does not decode: %v", err)
	}
	if len(dec.Steps) != 2 || !bytes.Equal(dec.Steps[1].Data, []byte("deep")) {
		t.Fatalf("synced sequence lost content: %+v", dec)
	}
	// Donor lookups must never surface sequence entries.
	ch := &datamodel.Chunk{Name: "n", Kind: datamodel.Number, Width: 2}
	for _, p := range dst.Donors(ch) {
		if IsSeqSignature(p.Signature) {
			t.Fatalf("sequence entry leaked into donor list")
		}
	}
}
