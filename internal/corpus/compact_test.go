package corpus

import (
	"bytes"
	"fmt"
	"testing"
)

// fill adds n distinct puzzles across a few signatures and returns the
// corpus, mimicking a campaign's acceptance stream.
func fill(c *Corpus, start, n int) {
	for i := start; i < start+n; i++ {
		sig := fmt.Sprintf("sig-%d", i%5)
		c.Add(Puzzle{Signature: sig, Data: []byte(fmt.Sprintf("data-%04d", i)), Model: "m"})
	}
}

// equalCorpora asserts two corpora hold identical content: same signatures,
// same per-signature puzzle sequences, byte for byte.
func equalCorpora(t *testing.T, got, want *Corpus) {
	t.Helper()
	gs, ws := got.Signatures(), want.Signatures()
	if len(gs) != len(ws) {
		t.Fatalf("signature sets differ: got %v, want %v", gs, ws)
	}
	for i, sig := range ws {
		if gs[i] != sig {
			t.Fatalf("signature %d: got %q, want %q", i, gs[i], sig)
		}
		gp, wp := got.bySig[sig], want.bySig[sig]
		if len(gp) != len(wp) {
			t.Fatalf("%s: got %d puzzles, want %d", sig, len(gp), len(wp))
		}
		for j := range wp {
			if !bytes.Equal(gp[j].Data, wp[j].Data) || gp[j].Model != wp[j].Model {
				t.Fatalf("%s[%d]: got %+v, want %+v", sig, j, gp[j], wp[j])
			}
		}
	}
}

func TestCompactJournalNoPeersIsNoop(t *testing.T) {
	c := New(0)
	fill(c, 0, 20)
	if dropped := c.CompactJournal(); dropped != 0 {
		t.Fatalf("compaction with no registered peers dropped %d entries", dropped)
	}
	if c.JournalBase() != 0 || c.JournalLen() != 20 {
		t.Fatalf("journal changed: base %d len %d", c.JournalBase(), c.JournalLen())
	}
}

// TestCompactJournalWaitsForSlowestPeer is the safety property: a prefix is
// dropped only after every registered peer's cursor has passed it.
func TestCompactJournalWaitsForSlowestPeer(t *testing.T) {
	c := New(0)
	fill(c, 0, 30)
	fast := c.RegisterPeer(0)
	slow := c.RegisterPeer(0)
	c.AdvancePeer(fast, 30)
	if dropped := c.CompactJournal(); dropped != 0 {
		t.Fatalf("dropped %d entries while the slow peer's cursor is at 0", dropped)
	}
	c.AdvancePeer(slow, 12)
	if dropped := c.CompactJournal(); dropped != 12 {
		t.Fatalf("dropped %d entries, want 12 (the slow peer's cursor)", dropped)
	}
	if c.JournalBase() != 12 || c.JournalLen() != 30 {
		t.Fatalf("base %d len %d after compaction, want 12 / 30", c.JournalBase(), c.JournalLen())
	}
	// Cursors are absolute, so the slow peer's incremental read resumes
	// exactly where it left off.
	rest := 0
	if newMark := c.ReadJournal(12, func(Puzzle) { rest++ }); newMark != 30 || rest != 18 {
		t.Fatalf("resume read saw %d entries to mark %d, want 18 to 30", rest, newMark)
	}
}

func TestDroppedPeerStopsPinningJournal(t *testing.T) {
	c := New(0)
	fill(c, 0, 10)
	dead := c.RegisterPeer(0)
	live := c.RegisterPeer(0)
	c.AdvancePeer(live, 10)
	if dropped := c.CompactJournal(); dropped != 0 {
		t.Fatalf("dead peer at cursor 0 should pin the journal, dropped %d", dropped)
	}
	c.DropPeer(dead)
	if dropped := c.CompactJournal(); dropped != 10 {
		t.Fatalf("after dropping the dead peer, dropped %d entries, want 10", dropped)
	}
}

// TestMergeJournalAfterCompactionConverges checks that a consumer syncing
// incrementally across compactions ends bit-for-bit identical to one that
// replayed the full, never-compacted journal.
func TestMergeJournalAfterCompactionConverges(t *testing.T) {
	src := New(0)
	peer := src.RegisterPeer(0)

	subject := New(0) // merges incrementally, with compactions in between
	mark := 0
	for round := 0; round < 6; round++ {
		fill(src, round*25, 25)
		_, mark = subject.MergeJournal(src, mark)
		src.AdvancePeer(peer, mark)
		if round%2 == 1 {
			if dropped := src.CompactJournal(); dropped == 0 {
				t.Fatalf("round %d: expected compaction to drop entries", round)
			}
		}
	}

	control := New(0) // one full replay of an uncompacted equivalent
	full := New(0)
	fill(full, 0, 150)
	control.MergeJournal(full, 0)

	equalCorpora(t, subject, control)
}

// TestMergeJournalFallbackOnCompactedMark: a reconnecting peer whose saved
// mark predates the compaction horizon gets a full replay and still
// converges to the source's current contents.
func TestMergeJournalFallbackOnCompactedMark(t *testing.T) {
	src := New(0)
	fill(src, 0, 40)
	peer := src.RegisterPeer(0)
	src.AdvancePeer(peer, 40)
	if src.CompactJournal() != 40 {
		t.Fatal("setup: expected full compaction")
	}

	stale := New(0)
	added, mark := stale.MergeJournal(src, 3) // 3 < JournalBase: fallback
	if mark != src.JournalLen() {
		t.Fatalf("fallback mark = %d, want %d", mark, src.JournalLen())
	}
	if added != src.Len() {
		t.Fatalf("fallback added %d puzzles, want the full corpus (%d)", added, src.Len())
	}
	fresh := New(0)
	fresh.MergeFrom(src)
	equalCorpora(t, stale, fresh)
}

func TestReadJournalFallbackReplaysCurrentContents(t *testing.T) {
	src := New(0)
	fill(src, 0, 25)
	peer := src.RegisterPeer(0)
	src.AdvancePeer(peer, 20)
	src.CompactJournal()

	var seen int
	mark := src.ReadJournal(0, func(Puzzle) { seen++ }) // 0 < base: full replay
	if mark != src.JournalLen() || seen != src.Len() {
		t.Fatalf("fallback read saw %d puzzles to mark %d, want %d to %d",
			seen, mark, src.Len(), src.JournalLen())
	}
}

func TestRegisterPeerClampsResumeCursor(t *testing.T) {
	src := New(0)
	fill(src, 0, 10)
	p1 := src.RegisterPeer(0)
	src.AdvancePeer(p1, 10)
	src.CompactJournal()
	// A peer resuming below the horizon is clamped up to it; one resuming
	// past the end is clamped down.
	if id := src.RegisterPeer(2); src.peerCursors[id] != src.JournalBase() {
		t.Fatalf("stale resume cursor = %d, want clamp to base %d", src.peerCursors[id], src.JournalBase())
	}
	if id := src.RegisterPeer(999); src.peerCursors[id] != src.JournalLen() {
		t.Fatalf("overshooting cursor = %d, want clamp to len %d", src.peerCursors[id], src.JournalLen())
	}
}
