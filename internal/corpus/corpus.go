// Package corpus stores puzzles — the chunk instantiations produced by
// cracking valuable seeds (paper §IV-C, Definition 2). Puzzles are indexed
// by the construction-rule signature of the chunk they instantiated, so the
// semantic-aware generator (Algorithm 3, GETDONOR) can look up donor
// material for a chunk of any other data model that conforms to a similar
// rule (§III's cross-opcode chunk similarity).
package corpus

import (
	"sort"

	"repro/internal/datamodel"
)

// Puzzle is one stored chunk instantiation: the bytes plus provenance.
type Puzzle struct {
	// Signature of the construction rule that produced the bytes.
	Signature string
	// Data is the wire content of the puzzle.
	Data []byte
	// Model names the data model of the seed the puzzle was cracked
	// from; the generator uses it to prefer cross-model donation.
	Model string
}

// Corpus is the puzzle store. It deduplicates exact (signature, bytes)
// pairs and bounds the number of puzzles kept per signature, evicting the
// oldest — fresher puzzles come from more recently discovered paths, which
// is the material Algorithm 3 wants.
//
// A Corpus is not safe for concurrent use; the engine owns it.
type Corpus struct {
	perSig   int
	bySig    map[string][]Puzzle
	seen     map[string]bool // dedup key: signature + "\x00" + data
	puzzles  int
	inserted int
	// journal is the append-only list of accepted puzzles in acceptance
	// order. Sync peers remember how far into a corpus's journal they have
	// read (JournalLen) and exchange only the tail (MergeJournal), making a
	// sync window O(puzzles since last sync) instead of O(corpus). Entries
	// are never removed — an evicted puzzle's journal entry just dedups or
	// bounces off a full signature when replayed — so memory is O(accepted
	// over the campaign), the same order as the dedup key set.
	journal []Puzzle
}

// DefaultPerSignature bounds stored puzzles per construction rule. The
// bound keeps the donor set diverse without letting one hot rule dominate
// memory; the ablation bench sweeps it.
const DefaultPerSignature = 64

// New returns an empty corpus keeping at most perSig puzzles per rule
// signature (0 means DefaultPerSignature).
func New(perSig int) *Corpus {
	if perSig <= 0 {
		perSig = DefaultPerSignature
	}
	return &Corpus{
		perSig: perSig,
		bySig:  make(map[string][]Puzzle),
		seen:   make(map[string]bool),
	}
}

// dedupKey is the exact-duplicate identity of a puzzle: its rule signature
// plus its bytes.
func dedupKey(sig string, data []byte) string {
	return sig + "\x00" + string(data)
}

// Add stores one puzzle, returning true if it was new. Exact duplicates
// (same rule, same bytes) are dropped — repeated donation of identical
// content is the "meaningless repetition" the paper wants ruled out.
func (c *Corpus) Add(p Puzzle) bool {
	key := dedupKey(p.Signature, p.Data)
	if c.seen[key] {
		return false
	}
	c.seen[key] = true
	c.inserted++
	list := c.bySig[p.Signature]
	if len(list) >= c.perSig {
		// Evict the oldest; forget its dedup key so equivalent
		// content can return later if rediscovered.
		old := list[0]
		delete(c.seen, dedupKey(old.Signature, old.Data))
		copy(list, list[1:])
		list = list[:len(list)-1]
		c.puzzles--
	}
	c.bySig[p.Signature] = append(list, p)
	c.puzzles++
	c.journal = append(c.journal, p)
	return true
}

// AddNode cracks-and-stores convenience: stores the instantiation of one
// leaf node under its chunk's rule signature, skipping non-donatable chunks
// (tokens, relation and fixup fields — their content is recomputed or
// defines the packet type, so donating them is useless).
func (c *Corpus) AddNode(model string, n *datamodel.Node) bool {
	if !datamodel.Donatable(n.Chunk) {
		return false
	}
	data := make([]byte, len(n.Data))
	copy(data, n.Data)
	return c.Add(Puzzle{
		Signature: datamodel.RuleSignature(n.Chunk),
		Data:      data,
		Model:     model,
	})
}

// Donors returns the stored puzzles whose rule signature matches the chunk
// — the Candidates set of Algorithm 3 (GETDONOR). The returned slice is
// shared; callers must not modify the puzzles. Nil when the chunk is not
// donatable or nothing matches.
func (c *Corpus) Donors(chunk *datamodel.Chunk) []Puzzle {
	if !datamodel.Donatable(chunk) {
		return nil
	}
	return c.bySig[datamodel.RuleSignature(chunk)]
}

// CrossModelDonors returns donors whose provenance differs from the given
// model — the cross-opcode donation of §IV-D ("a valuable seed with one
// value of the opcode can be used to optimize seed generation for other
// values"). Falls back to all donors when no cross-model material exists.
func (c *Corpus) CrossModelDonors(chunk *datamodel.Chunk, model string) []Puzzle {
	all := c.Donors(chunk)
	var cross []Puzzle
	for _, p := range all {
		if p.Model != model {
			cross = append(cross, p)
		}
	}
	if len(cross) > 0 {
		return cross
	}
	return all
}

// MergeFrom folds o's puzzles into c, returning how many were new.
// Iteration is in sorted-signature order so merging is deterministic for a
// fixed pair of corpora. Puzzle data is shared, not copied: puzzles are
// immutable once stored, so the slices may safely back both corpora.
//
// Merged puzzles only fill a signature's spare capacity — unlike Add they
// never evict. Eviction forgets dedup keys, so an evicting merge between
// two bounded corpora would reintroduce each other's evicted material every
// round (perpetual churn) and displace fresh local puzzles with old remote
// ones; filling spare capacity keeps each corpus's own freshness ordering
// and makes repeated merges converge to no-ops. This is the exchange step
// of the sharded campaign runner — workers push local discoveries into the
// shared corpus and pull the other workers' material back out.
func (c *Corpus) MergeFrom(o *Corpus) int {
	added := 0
	for _, sig := range o.Signatures() {
		for _, p := range o.bySig[sig] {
			if c.addNoEvict(p) {
				added++
			}
		}
	}
	return added
}

// addNoEvict stores one puzzle only when it is unseen and its signature has
// spare capacity.
func (c *Corpus) addNoEvict(p Puzzle) bool {
	key := dedupKey(p.Signature, p.Data)
	if c.seen[key] || len(c.bySig[p.Signature]) >= c.perSig {
		return false
	}
	c.seen[key] = true
	c.inserted++
	c.bySig[p.Signature] = append(c.bySig[p.Signature], p)
	c.puzzles++
	c.journal = append(c.journal, p)
	return true
}

// JournalLen returns the current length of the acceptance journal — the
// mark a sync peer records to resume reading the journal later.
func (c *Corpus) JournalLen() int { return len(c.journal) }

// MergeJournal folds o's puzzles accepted since mark (a previous JournalLen
// of o) into c and returns o's new journal length. Like MergeFrom it never
// evicts — deltas only fill spare signature capacity — and puzzle data is
// shared, not copied. This is the incremental form of MergeFrom used by the
// sharded campaign runner's sync windows: cost is proportional to what o
// accepted since the last window, not to the whole corpus.
func (c *Corpus) MergeJournal(o *Corpus, mark int) (added, newMark int) {
	if mark < 0 {
		mark = 0
	}
	for _, p := range o.journal[mark:] {
		if c.addNoEvict(p) {
			added++
		}
	}
	return added, len(o.journal)
}

// Len returns the number of stored puzzles.
func (c *Corpus) Len() int { return c.puzzles }

// Inserted returns the total number of accepted Add calls, including
// puzzles that were later evicted — a campaign statistic.
func (c *Corpus) Inserted() int { return c.inserted }

// Empty reports whether the corpus holds no puzzles — the engine's signal
// that the semantic-aware strategy is not yet available (§IV-A: "Initially,
// the puzzle corpus is vacant").
func (c *Corpus) Empty() bool { return c.puzzles == 0 }

// Signatures returns the stored rule signatures, sorted, for reports.
func (c *Corpus) Signatures() []string {
	out := make([]string, 0, len(c.bySig))
	for s := range c.bySig {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
