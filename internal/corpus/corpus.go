// Package corpus stores puzzles — the chunk instantiations produced by
// cracking valuable seeds (paper §IV-C, Definition 2). Puzzles are indexed
// by the construction-rule signature of the chunk they instantiated, so the
// semantic-aware generator (Algorithm 3, GETDONOR) can look up donor
// material for a chunk of any other data model that conforms to a similar
// rule (§III's cross-opcode chunk similarity).
package corpus

import (
	"sort"

	"repro/internal/datamodel"
)

// Puzzle is one stored chunk instantiation: the bytes plus provenance.
type Puzzle struct {
	// Signature of the construction rule that produced the bytes.
	Signature string
	// Data is the wire content of the puzzle.
	Data []byte
	// Model names the data model of the seed the puzzle was cracked
	// from; the generator uses it to prefer cross-model donation.
	Model string
}

// Corpus is the puzzle store. It deduplicates exact (signature, bytes)
// pairs and bounds the number of puzzles kept per signature, evicting the
// oldest — fresher puzzles come from more recently discovered paths, which
// is the material Algorithm 3 wants.
//
// A Corpus is not safe for concurrent use; the engine owns it.
type Corpus struct {
	perSig int
	bySig  map[string][]Puzzle
	//peachstar:nosnap dedup set is rebuilt by Restore from the restored store
	seen     map[string]bool // dedup key: signature + "\x00" + data
	puzzles  int             //peachstar:nosnap recounted by Restore while rebuilding the store
	inserted int
	// journal is the list of accepted puzzles in acceptance order. Sync
	// peers remember how far into a corpus's journal they have read
	// (JournalLen) and exchange only the tail (MergeJournal), making a
	// sync window O(puzzles since last sync) instead of O(corpus). An
	// evicted puzzle's journal entry just dedups or bounces off a full
	// signature when replayed.
	//
	// The journal is logically append-only but physically compactable:
	// CompactJournal drops the prefix every registered peer has already
	// consumed, so memory on a long campaign is O(unconsumed tail), not
	// O(accepted over the campaign). journalBase is the absolute index of
	// journal[0]; all cursors (marks) are absolute, so compaction never
	// invalidates a live cursor.
	journal     []Puzzle
	journalBase int
	// peerCursors holds, per registered sync peer, the absolute journal
	// index that peer has consumed up to. -1 marks a dropped peer slot.
	peerCursors []int
}

// DefaultPerSignature bounds stored puzzles per construction rule. The
// bound keeps the donor set diverse without letting one hot rule dominate
// memory; the ablation bench sweeps it.
const DefaultPerSignature = 64

// New returns an empty corpus keeping at most perSig puzzles per rule
// signature (0 means DefaultPerSignature).
func New(perSig int) *Corpus {
	if perSig <= 0 {
		perSig = DefaultPerSignature
	}
	return &Corpus{
		perSig: perSig,
		bySig:  make(map[string][]Puzzle),
		seen:   make(map[string]bool),
	}
}

// dedupKey is the exact-duplicate identity of a puzzle: its rule signature
// plus its bytes.
func dedupKey(sig string, data []byte) string {
	return sig + "\x00" + string(data)
}

// Add stores one puzzle, returning true if it was new. Exact duplicates
// (same rule, same bytes) are dropped — repeated donation of identical
// content is the "meaningless repetition" the paper wants ruled out.
func (c *Corpus) Add(p Puzzle) bool {
	key := dedupKey(p.Signature, p.Data)
	if c.seen[key] {
		return false
	}
	c.seen[key] = true
	c.inserted++
	list := c.bySig[p.Signature]
	if len(list) >= c.perSig {
		// Evict the oldest; forget its dedup key so equivalent
		// content can return later if rediscovered.
		old := list[0]
		delete(c.seen, dedupKey(old.Signature, old.Data))
		copy(list, list[1:])
		list = list[:len(list)-1]
		c.puzzles--
	}
	c.bySig[p.Signature] = append(list, p)
	c.puzzles++
	c.journal = append(c.journal, p)
	return true
}

// AddNode cracks-and-stores convenience: stores the instantiation of one
// leaf node under its chunk's rule signature, skipping non-donatable chunks
// (tokens, relation and fixup fields — their content is recomputed or
// defines the packet type, so donating them is useless).
func (c *Corpus) AddNode(model string, n *datamodel.Node) bool {
	if !datamodel.Donatable(n.Chunk) {
		return false
	}
	data := make([]byte, len(n.Data))
	copy(data, n.Data)
	return c.Add(Puzzle{
		Signature: datamodel.RuleSignature(n.Chunk),
		Data:      data,
		Model:     model,
	})
}

// Donors returns the stored puzzles whose rule signature matches the chunk
// — the Candidates set of Algorithm 3 (GETDONOR). The returned slice is
// shared; callers must not modify the puzzles. Nil when the chunk is not
// donatable or nothing matches.
func (c *Corpus) Donors(chunk *datamodel.Chunk) []Puzzle {
	if !datamodel.Donatable(chunk) {
		return nil
	}
	return c.bySig[datamodel.RuleSignature(chunk)]
}

// CrossModelDonors returns donors whose provenance differs from the given
// model — the cross-opcode donation of §IV-D ("a valuable seed with one
// value of the opcode can be used to optimize seed generation for other
// values"). Falls back to all donors when no cross-model material exists.
// It allocates a fresh slice whenever cross-model material exists; hot
// callers use CrossModelDonorsInto with a reusable scratch slice instead.
func (c *Corpus) CrossModelDonors(chunk *datamodel.Chunk, model string) []Puzzle {
	donors, _ := c.CrossModelDonorsInto(nil, chunk, model)
	return donors
}

// CrossModelDonorsInto is CrossModelDonors filtering into a caller-owned
// scratch slice: cross-model donors are appended to dst[:0], so a caller
// that keeps the returned scratch across calls pays no allocation once the
// scratch has grown to its high-water mark (the e.cands pattern of the
// engine's semantic generator, which calls this once per leaf per round).
// donors is the result — the filtered scratch when cross-model material
// exists, otherwise the shared full donor list (read-only, like Donors) —
// and scratch is dst's possibly-grown backing to store back for the next
// call. The donors slice is valid until the corpus changes or the scratch
// is reused, whichever comes first.
func (c *Corpus) CrossModelDonorsInto(dst []Puzzle, chunk *datamodel.Chunk, model string) (donors, scratch []Puzzle) {
	all := c.Donors(chunk)
	scratch = dst[:0]
	for _, p := range all {
		if p.Model != model {
			scratch = append(scratch, p)
		}
	}
	if len(scratch) > 0 {
		return scratch, scratch
	}
	return all, scratch
}

// Remove drops the stored puzzle with the given rule signature and exact
// bytes, returning true when it was present. This is the corpus-distillation
// primitive: the scheduler removes puzzles whose source seeds fell out of
// the minimal covering set, shrinking the donor lists (and with them what
// MergeFrom-based full replays ship).
//
// Remove touches only the live store (bySig and the dedup set) — never the
// acceptance journal or the registered peer cursors. A removed puzzle's
// journal entry remains exactly where it was, so an incremental reader
// resuming mid-journal still sees a well-formed tail, and replaying such an
// entry into this corpus via Absorb simply re-adds the content (its dedup
// key was forgotten with it); replaying it twice dedups the second copy, so
// replay stays idempotent.
func (c *Corpus) Remove(sig string, data []byte) bool {
	key := dedupKey(sig, data)
	if !c.seen[key] {
		return false
	}
	list := c.bySig[sig]
	for i, p := range list {
		if string(p.Data) != string(data) { // comparison only; no allocation
			continue
		}
		copy(list[i:], list[i+1:])
		list[len(list)-1] = Puzzle{}
		if len(list) == 1 {
			delete(c.bySig, sig)
		} else {
			c.bySig[sig] = list[:len(list)-1]
		}
		delete(c.seen, key)
		c.puzzles--
		return true
	}
	return false
}

// MergeFrom folds o's puzzles into c, returning how many were new.
// Iteration is in sorted-signature order so merging is deterministic for a
// fixed pair of corpora. Puzzle data is shared, not copied: puzzles are
// immutable once stored, so the slices may safely back both corpora.
//
// Merged puzzles only fill a signature's spare capacity — unlike Add they
// never evict. Eviction forgets dedup keys, so an evicting merge between
// two bounded corpora would reintroduce each other's evicted material every
// round (perpetual churn) and displace fresh local puzzles with old remote
// ones; filling spare capacity keeps each corpus's own freshness ordering
// and makes repeated merges converge to no-ops. This is the exchange step
// of the sharded campaign runner — workers push local discoveries into the
// shared corpus and pull the other workers' material back out.
func (c *Corpus) MergeFrom(o *Corpus) int {
	added := 0
	for _, sig := range o.Signatures() {
		for _, p := range o.bySig[sig] {
			if c.addNoEvict(p) {
				added++
			}
		}
	}
	return added
}

// addNoEvict stores one puzzle only when it is unseen and its signature has
// spare capacity.
func (c *Corpus) addNoEvict(p Puzzle) bool {
	key := dedupKey(p.Signature, p.Data)
	if c.seen[key] || len(c.bySig[p.Signature]) >= c.perSig {
		return false
	}
	c.seen[key] = true
	c.inserted++
	c.bySig[p.Signature] = append(c.bySig[p.Signature], p)
	c.puzzles++
	c.journal = append(c.journal, p)
	return true
}

// JournalLen returns the absolute length of the acceptance journal — the
// mark a sync peer records to resume reading the journal later. Marks are
// absolute positions: they stay valid across CompactJournal.
func (c *Corpus) JournalLen() int { return c.journalBase + len(c.journal) }

// JournalBase returns the absolute index of the oldest journal entry still
// held — the compaction horizon. A mark below it can no longer be resumed
// incrementally; MergeJournal and ReadJournal fall back to a full replay of
// the corpus's current contents.
func (c *Corpus) JournalBase() int { return c.journalBase }

// MergeJournal folds o's puzzles accepted since mark (a previous JournalLen
// of o) into c and returns o's new journal length. Like MergeFrom it never
// evicts — deltas only fill spare signature capacity — and puzzle data is
// shared, not copied. This is the incremental form of MergeFrom used by the
// sharded campaign runner's sync windows: cost is proportional to what o
// accepted since the last window, not to the whole corpus.
//
// If mark falls outside o's live journal — below the compaction horizon
// (a reconnecting network peer whose cursor was compacted away) or beyond
// the end (a cursor issued by some previous incarnation of o, e.g. a hub
// that restarted with lost state) — the incremental tail is meaningless
// and the call degrades to MergeFrom: a full replay of o's current
// contents, which converges to the same corpus as replaying the lost
// entries would have (dropped entries either dedup or bounce off full
// signatures).
func (c *Corpus) MergeJournal(o *Corpus, mark int) (added, newMark int) {
	if mark < o.journalBase || mark > o.JournalLen() {
		return c.MergeFrom(o), o.JournalLen()
	}
	for _, p := range o.journal[mark-o.journalBase:] {
		if c.addNoEvict(p) {
			added++
		}
	}
	return added, o.JournalLen()
}

// ReadJournal invokes fn for every puzzle accepted at or after mark and
// returns the new mark — the journal-export primitive network transports
// use to encode a sync delta without touching corpus internals. Like
// MergeJournal it falls back to a full replay (current contents, sorted
// signature order) when mark falls outside the live journal: below the
// compaction horizon, or — a cursor minted by a previous incarnation of
// this corpus, such as a hub restarted with lost state — beyond the end.
// Remote cursors reach this unvalidated, so out-of-range must degrade,
// never panic.
func (c *Corpus) ReadJournal(mark int, fn func(Puzzle)) (newMark int) {
	if mark < c.journalBase || mark > c.JournalLen() {
		for _, sig := range c.Signatures() {
			for _, p := range c.bySig[sig] {
				fn(p)
			}
		}
		return c.JournalLen()
	}
	for _, p := range c.journal[mark-c.journalBase:] {
		fn(p)
	}
	return c.JournalLen()
}

// Absorb stores one puzzle received from a sync peer: unseen content fills
// its signature's spare capacity and is journaled for this corpus's own
// peers, duplicates and overflow are dropped. Never evicts (see MergeFrom
// for why evicting merges churn). Returns true when the puzzle was new.
func (c *Corpus) Absorb(p Puzzle) bool { return c.addNoEvict(p) }

// RegisterPeer declares a sync consumer of this corpus's journal, starting
// at absolute cursor (0 for a fresh peer, a saved mark for a resuming one;
// clamped into the journal's valid range). The returned id is used with
// AdvancePeer/DropPeer. CompactJournal only drops entries every registered
// peer's cursor has passed, so a registered peer's incremental reads are
// never silently invalidated.
func (c *Corpus) RegisterPeer(cursor int) int {
	if cursor < c.journalBase {
		cursor = c.journalBase
	}
	if max := c.JournalLen(); cursor > max {
		cursor = max
	}
	c.peerCursors = append(c.peerCursors, cursor)
	return len(c.peerCursors) - 1
}

// AdvancePeer records that peer id has consumed the journal up to absolute
// position cursor. Cursors never move backwards.
func (c *Corpus) AdvancePeer(id, cursor int) {
	if id < 0 || id >= len(c.peerCursors) || c.peerCursors[id] < 0 {
		return
	}
	if cursor > c.peerCursors[id] {
		c.peerCursors[id] = cursor
	}
}

// DropPeer unregisters a sync peer (a disconnected network leaf), so a dead
// consumer no longer pins the journal. If the peer later resumes with its
// old mark, RegisterPeer + the MergeJournal fallback give it a full replay
// when its tail has been compacted away.
func (c *Corpus) DropPeer(id int) {
	if id >= 0 && id < len(c.peerCursors) {
		c.peerCursors[id] = -1
	}
}

// CompactJournal drops the journal prefix that every registered peer has
// consumed and returns how many entries were dropped. With no registered
// peers it is a no-op: nothing is known about consumers, so nothing is
// provably dead. Closes the O(accepted) journal-memory growth on multi-day
// campaigns — steady-state journal size is the slowest peer's lag.
func (c *Corpus) CompactJournal() int {
	min := -1
	for _, cur := range c.peerCursors {
		if cur < 0 {
			continue // dropped slot
		}
		if min < 0 || cur < min {
			min = cur
		}
	}
	drop := min - c.journalBase
	if min < 0 || drop <= 0 {
		return 0
	}
	if drop > len(c.journal) {
		drop = len(c.journal)
	}
	// Shift in place: keeps the backing array for reuse by future appends
	// and lets the dropped entries' tails be overwritten.
	n := copy(c.journal, c.journal[drop:])
	tail := c.journal[n:]
	for i := range tail {
		tail[i] = Puzzle{} // release puzzle data held only by the prefix
	}
	c.journal = c.journal[:n]
	c.journalBase += drop
	return drop
}

// Len returns the number of stored puzzles.
func (c *Corpus) Len() int { return c.puzzles }

// Inserted returns the total number of accepted Add calls, including
// puzzles that were later evicted — a campaign statistic.
func (c *Corpus) Inserted() int { return c.inserted }

// Empty reports whether the corpus holds no puzzles — the engine's signal
// that the semantic-aware strategy is not yet available (§IV-A: "Initially,
// the puzzle corpus is vacant").
func (c *Corpus) Empty() bool { return c.puzzles == 0 }

// Signatures returns the stored rule signatures, sorted, for reports.
func (c *Corpus) Signatures() []string {
	out := make([]string, 0, len(c.bySig))
	for s := range c.bySig {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
