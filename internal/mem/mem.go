// Package mem provides a simulated process heap with AddressSanitizer-like
// fault detection.
//
// The paper detects its Table I vulnerabilities (SEGV, heap-use-after-free,
// heap-buffer-overflow) with ASan on C targets. The Go targets in this
// repository cannot corrupt real memory, so buffer handling on the seeded
// bug paths goes through this package instead: an explicit heap with
// Alloc/Free/Load/Store whose safety checks report the same fault classes
// ASan would. Faults are reported by panicking with a *Fault value, which
// the sandbox converts into a crash record — mirroring how an ASan abort
// surfaces to the fuzzer.
package mem

import "fmt"

// FaultKind classifies a detected memory-safety violation, using the names
// from the paper's Table I.
type FaultKind string

// Fault kinds reported by the simulated heap. These correspond one-to-one
// with the "Vulnerability Type" column of Table I.
const (
	SEGV               FaultKind = "SEGV"
	HeapUseAfterFree   FaultKind = "heap-use-after-free"
	HeapBufferOverflow FaultKind = "heap-buffer-overflow"
	DoubleFree         FaultKind = "double-free"
)

// Fault kinds reported by the real-process execution backend
// (internal/executor), where the supervisor observes deaths from the
// outside rather than through the simulated heap. Signal deaths in the
// SEGV class (SIGSEGV, SIGBUS) keep the Table I SEGV kind so both backends
// triage alike; these cover everything else a process can do.
const (
	// ProcExit is a target process exiting with a status mid-campaign
	// (abort paths, assertion failures, clean-but-unexpected shutdowns);
	// the site carries "exit:<code>".
	ProcExit FaultKind = "proc-exit"
	// ProcSignal is a target process killed by a signal outside the SEGV
	// class; the site carries "signal:<name>".
	ProcSignal FaultKind = "proc-signal"
	// ConnReset is a connection death whose process never delivered an
	// exit status — the supervisor saw the wire die but could not reap.
	ConnReset FaultKind = "conn-reset"
)

// Fault describes one detected memory-safety violation: what happened, at
// which simulated address, and at which named program site. Site is the
// stable deduplication key used by crash triage, playing the role of the
// file:line in an ASan report (cf. the paper's Listing 2).
type Fault struct {
	Kind FaultKind
	Addr uint32
	Site string
}

// Error implements the error interface so a *Fault can flow through error
// paths as well as panics.
func (f *Fault) Error() string {
	return fmt.Sprintf("AddressSanitizer: %s at simulated address 0x%08x in %s", f.Kind, f.Addr, f.Site)
}

// chunk is one live or freed allocation.
type chunk struct {
	base  uint32
	size  uint32
	freed bool
}

// Heap is a simulated heap. Addresses are opaque 32-bit values; allocations
// are placed with red zones between them so that small overflows land in
// detectable territory rather than in a neighbouring allocation.
//
// A Heap is not safe for concurrent use; each sandboxed execution owns one.
type Heap struct {
	next   uint32
	chunks []chunk
	bytes  map[uint32]byte
}

// redZone is the gap left between allocations, like ASan's red zones.
const redZone = 16

// NewHeap returns an empty heap. The zero address is never allocated, so 0
// behaves like NULL.
func NewHeap() *Heap {
	return &Heap{next: 0x1000}
}

// Reset discards all allocations, returning the heap to its initial state.
func (h *Heap) Reset() {
	h.next = 0x1000
	h.chunks = h.chunks[:0]
	h.bytes = nil
}

// Alloc reserves size bytes and returns the base address of the new chunk.
// A zero-byte allocation is legal and returns a unique address, as malloc(0)
// commonly does.
func (h *Heap) Alloc(size uint32) uint32 {
	base := h.next
	h.next += size + redZone
	h.chunks = append(h.chunks, chunk{base: base, size: size})
	return base
}

// find returns the chunk containing addr, or nil. Freed chunks are found
// too, so that use-after-free is distinguishable from a wild access.
func (h *Heap) find(addr uint32) *chunk {
	for i := range h.chunks {
		c := &h.chunks[i]
		if addr >= c.base && addr < c.base+c.size {
			return c
		}
		// A zero-size chunk still owns its base address for fault
		// classification.
		if c.size == 0 && addr == c.base {
			return c
		}
	}
	return nil
}

// Free releases the chunk based at addr. Freeing an unknown address raises
// SEGV (matching free() on a wild pointer under ASan); freeing twice raises
// a double-free fault.
func (h *Heap) Free(addr uint32, site string) {
	for i := range h.chunks {
		c := &h.chunks[i]
		if c.base == addr {
			if c.freed {
				panic(&Fault{Kind: DoubleFree, Addr: addr, Site: site})
			}
			c.freed = true
			return
		}
	}
	panic(&Fault{Kind: SEGV, Addr: addr, Site: site})
}

// check validates an n-byte access at addr and panics with the appropriate
// fault if it is invalid.
func (h *Heap) check(addr, n uint32, site string) *chunk {
	if addr == 0 {
		panic(&Fault{Kind: SEGV, Addr: addr, Site: site})
	}
	c := h.find(addr)
	if c == nil {
		// Access outside any chunk. If it lands just past a live
		// chunk (in the red zone) it is an overflow; otherwise a
		// wild access, i.e. SEGV.
		for i := range h.chunks {
			cc := &h.chunks[i]
			if !cc.freed && addr >= cc.base+cc.size && addr < cc.base+cc.size+redZone {
				panic(&Fault{Kind: HeapBufferOverflow, Addr: addr, Site: site})
			}
		}
		panic(&Fault{Kind: SEGV, Addr: addr, Site: site})
	}
	if c.freed {
		panic(&Fault{Kind: HeapUseAfterFree, Addr: addr, Site: site})
	}
	if addr+n > c.base+c.size {
		panic(&Fault{Kind: HeapBufferOverflow, Addr: addr, Site: site})
	}
	return c
}

// Load reads one byte at addr, checking validity.
func (h *Heap) Load(addr uint32, site string) byte {
	h.check(addr, 1, site)
	return h.bytes[addr]
}

// Store writes one byte at addr, checking validity.
func (h *Heap) Store(addr uint32, v byte, site string) {
	h.check(addr, 1, site)
	if h.bytes == nil {
		h.bytes = make(map[uint32]byte)
	}
	h.bytes[addr] = v
}

// LoadN reads n bytes starting at addr, checking the whole range.
func (h *Heap) LoadN(addr, n uint32, site string) []byte {
	h.check(addr, n, site)
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		out[i] = h.bytes[addr+i]
	}
	return out
}

// StoreN writes the bytes of p starting at addr, checking the whole range.
func (h *Heap) StoreN(addr uint32, p []byte, site string) {
	h.check(addr, uint32(len(p)), site)
	if h.bytes == nil {
		h.bytes = make(map[uint32]byte)
	}
	for i, b := range p {
		h.bytes[addr+uint32(i)] = b
	}
}
