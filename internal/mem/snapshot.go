package mem

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
)

// This file is the simulated heap's side of the campaign-checkpoint seam.
// A target's heap is long-lived state: allocation layout, freed flags, and
// stored bytes decide which seeded faults (use-after-free, double-free,
// overflow into red zones) an execution can reach, so a warm-restarted
// campaign must resume against the same heap wear the interrupted one had
// accumulated. Stored bytes are written in ascending address order so the
// encoding is canonical.

// Snapshot writes the heap's full state through the checkpoint codec.
func (h *Heap) Snapshot(w *checkpoint.Writer) {
	w.Uvarint(uint64(h.next))
	w.Int(len(h.chunks))
	for _, c := range h.chunks {
		w.Uvarint(uint64(c.base))
		w.Uvarint(uint64(c.size))
		w.Bool(c.freed)
	}
	addrs := make([]uint32, 0, len(h.bytes))
	for a := range h.bytes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.Int(len(addrs))
	for _, a := range addrs {
		w.Uvarint(uint64(a))
		w.Uvarint(uint64(h.bytes[a]))
	}
}

// Restore overwrites the heap with a Snapshot-produced dump.
func (h *Heap) Restore(r *checkpoint.Reader) error {
	h.Reset()
	next := r.Uvarint()
	if r.Err() != nil {
		return r.Err()
	}
	if next > 1<<32-1 {
		return fmt.Errorf("mem: heap cursor %#x out of range", next)
	}
	h.next = uint32(next)
	nc := r.Count()
	for i := 0; i < nc && r.Err() == nil; i++ {
		base, size := r.Uvarint(), r.Uvarint()
		freed := r.Bool()
		if r.Err() != nil {
			break
		}
		if base > 1<<32-1 || size > 1<<32-1 {
			return fmt.Errorf("mem: chunk %d out of 32-bit range", i)
		}
		h.chunks = append(h.chunks, chunk{base: uint32(base), size: uint32(size), freed: freed})
	}
	nb := r.Count()
	for i := 0; i < nb && r.Err() == nil; i++ {
		addr, v := r.Uvarint(), r.Uvarint()
		if r.Err() != nil {
			break
		}
		if addr > 1<<32-1 || v > 0xff {
			return fmt.Errorf("mem: stored byte %d out of range", i)
		}
		if h.bytes == nil {
			h.bytes = make(map[uint32]byte)
		}
		h.bytes[uint32(addr)] = byte(v)
	}
	return r.Err()
}
