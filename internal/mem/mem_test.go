package mem

import (
	"strings"
	"testing"
)

// catchFault runs f and returns the *Fault it panicked with, or nil.
func catchFault(f func()) (fault *Fault) {
	defer func() {
		if r := recover(); r != nil {
			fault = r.(*Fault)
		}
	}()
	f()
	return nil
}

func TestAllocLoadStoreRoundTrip(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(8)
	h.StoreN(a, []byte{1, 2, 3, 4, 5, 6, 7, 8}, "t")
	got := h.LoadN(a, 8, "t")
	for i, b := range got {
		if b != byte(i+1) {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
	h.Store(a+3, 0xAA, "t")
	if h.Load(a+3, "t") != 0xAA {
		t.Fatal("single-byte store lost")
	}
}

func TestNullDerefIsSEGV(t *testing.T) {
	h := NewHeap()
	f := catchFault(func() { h.Load(0, "null-site") })
	if f == nil || f.Kind != SEGV {
		t.Fatalf("fault = %+v, want SEGV", f)
	}
	if f.Site != "null-site" {
		t.Fatalf("site = %q", f.Site)
	}
}

func TestWildAccessIsSEGV(t *testing.T) {
	h := NewHeap()
	h.Alloc(8)
	f := catchFault(func() { h.Load(0xdeadbeef, "wild") })
	if f == nil || f.Kind != SEGV {
		t.Fatalf("fault = %+v, want SEGV", f)
	}
}

func TestOverflowIntoRedZone(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(8)
	f := catchFault(func() { h.Load(a+8, "rz") })
	if f == nil || f.Kind != HeapBufferOverflow {
		t.Fatalf("fault = %+v, want heap-buffer-overflow", f)
	}
}

func TestRangeOverflowDetected(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(8)
	f := catchFault(func() { h.LoadN(a+4, 8, "range") })
	if f == nil || f.Kind != HeapBufferOverflow {
		t.Fatalf("fault = %+v, want heap-buffer-overflow", f)
	}
	f = catchFault(func() { h.StoreN(a, make([]byte, 9), "range") })
	if f == nil || f.Kind != HeapBufferOverflow {
		t.Fatalf("store fault = %+v, want heap-buffer-overflow", f)
	}
}

func TestUseAfterFree(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(16)
	h.Free(a, "free")
	f := catchFault(func() { h.Load(a+2, "uaf") })
	if f == nil || f.Kind != HeapUseAfterFree {
		t.Fatalf("fault = %+v, want heap-use-after-free", f)
	}
	f = catchFault(func() { h.Store(a, 1, "uaf") })
	if f == nil || f.Kind != HeapUseAfterFree {
		t.Fatalf("store fault = %+v, want heap-use-after-free", f)
	}
}

func TestDoubleFree(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(4)
	h.Free(a, "f1")
	f := catchFault(func() { h.Free(a, "f2") })
	if f == nil || f.Kind != DoubleFree {
		t.Fatalf("fault = %+v, want double-free", f)
	}
}

func TestFreeWildPointer(t *testing.T) {
	h := NewHeap()
	f := catchFault(func() { h.Free(0x99, "wild-free") })
	if f == nil || f.Kind != SEGV {
		t.Fatalf("fault = %+v, want SEGV", f)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	h := NewHeap()
	var bases []uint32
	for i := 0; i < 32; i++ {
		bases = append(bases, h.Alloc(uint32(i)))
	}
	for i := 0; i < len(bases); i++ {
		for j := i + 1; j < len(bases); j++ {
			lo, hi := bases[i], bases[j]
			szLo := uint32(i)
			if lo > hi {
				lo, hi = hi, lo
				szLo = uint32(j)
			}
			if lo+szLo > hi {
				t.Fatalf("allocations %d and %d overlap", i, j)
			}
		}
	}
}

func TestZeroSizeAllocHasUniqueAddress(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(0)
	b := h.Alloc(0)
	if a == b {
		t.Fatal("zero-size allocations share an address")
	}
}

func TestResetClearsState(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(8)
	h.Store(a, 1, "t")
	h.Reset()
	f := catchFault(func() { h.Load(a, "after-reset") })
	if f == nil || f.Kind != SEGV {
		t.Fatalf("stale address should be wild after Reset, got %+v", f)
	}
}

func TestFaultErrorString(t *testing.T) {
	f := &Fault{Kind: HeapUseAfterFree, Addr: 0x1000, Site: "modbus.readHolding"}
	s := f.Error()
	for _, want := range []string{"heap-use-after-free", "0x00001000", "modbus.readHolding"} {
		if !strings.Contains(s, want) {
			t.Fatalf("error %q missing %q", s, want)
		}
	}
}

func TestLoadDefaultZero(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(4)
	if h.Load(a, "t") != 0 {
		t.Fatal("fresh allocation should read as zero")
	}
}
