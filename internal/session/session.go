// Package session models protocol sessions for stateful fuzzing: a
// Peach-pit-style state machine (states × transitions × which data model
// each transition sends), message sequences that walk it, sequence-level
// mutation operators (splice/reorder/drop/truncate at message
// granularity), and a versioned binary codec so sequences ride the corpus
// journal and fleetnet sync losslessly.
//
// The package is deliberately engine-agnostic: it knows data models only
// by name, consumes randomness only through *rng.RNG (so every operator
// draws a deterministic, countable number of values), and leaves payload
// bytes opaque. internal/core owns payload generation and coverage
// accounting; internal/pit parses <StateModel> elements into these types.
package session

import (
	"fmt"

	"repro/internal/rng"
)

// DefaultMaxSteps bounds generated walks when StateModel.MaxSteps is 0.
const DefaultMaxSteps = 8

// Action is one outgoing transition of a state: sending a message built
// from the named data model moves the session to the Next state.
type Action struct {
	// Model names the data model whose instance this transition sends.
	Model string
	// Next is the index of the destination state in StateModel.States.
	Next int
}

// State is one node of the session state machine.
type State struct {
	// Name identifies the state in pit files, events, and coverage stats.
	Name string
	// Actions are the transitions available from this state. A state with
	// no actions is terminal: walks stop there.
	Actions []Action
}

// StateModel is a protocol session state machine: which message (data
// model) may be sent from which state, and where sending it leads.
type StateModel struct {
	// Name identifies the model; it namespaces sequence corpus entries.
	Name string
	// Initial is the index of the start state in States.
	Initial int
	// States is the node list; Action.Next and Initial index into it.
	States []State
	// MaxSteps caps generated walk length; 0 means DefaultMaxSteps.
	MaxSteps int
}

// WalkCap returns the effective walk-length bound.
func (sm *StateModel) WalkCap() int {
	if sm.MaxSteps > 0 {
		return sm.MaxSteps
	}
	return DefaultMaxSteps
}

// StateIndex returns the index of the named state, or -1.
func (sm *StateModel) StateIndex(name string) int {
	for i := range sm.States {
		if sm.States[i].Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural sanity: at least one state, indices in
// range, unique state names, every action naming a non-empty model, and
// at least one action somewhere (a machine that can never send a message
// cannot drive a fuzzing campaign).
func (sm *StateModel) Validate() error {
	if sm.Name == "" {
		return fmt.Errorf("session: state model has no name")
	}
	if len(sm.States) == 0 {
		return fmt.Errorf("session: state model %q has no states", sm.Name)
	}
	if sm.Initial < 0 || sm.Initial >= len(sm.States) {
		return fmt.Errorf("session: state model %q initial state %d out of range", sm.Name, sm.Initial)
	}
	seen := make(map[string]bool, len(sm.States))
	anyAction := false
	for si := range sm.States {
		st := &sm.States[si]
		if st.Name == "" {
			return fmt.Errorf("session: state model %q: state %d has no name", sm.Name, si)
		}
		if seen[st.Name] {
			return fmt.Errorf("session: state model %q: duplicate state %q", sm.Name, st.Name)
		}
		seen[st.Name] = true
		for ai := range st.Actions {
			a := &st.Actions[ai]
			if a.Model == "" {
				return fmt.Errorf("session: state model %q: state %q action %d names no data model", sm.Name, st.Name, ai)
			}
			if a.Next < 0 || a.Next >= len(sm.States) {
				return fmt.Errorf("session: state model %q: state %q action %d next state %d out of range", sm.Name, st.Name, ai, a.Next)
			}
			anyAction = true
		}
	}
	if !anyAction {
		return fmt.Errorf("session: state model %q has no actions", sm.Name)
	}
	return nil
}

// Step is one message of a sequence: the state it was sent from, which of
// that state's actions was taken, and the rendered payload.
type Step struct {
	// State indexes StateModel.States.
	State int
	// Action indexes States[State].Actions.
	Action int
	// Data is the rendered message payload.
	Data []byte
}

// Sequence is an ordered run of messages over one protocol session.
type Sequence struct {
	Steps []Step
}

// Clone deep-copies the sequence, including payload bytes, so the copy
// survives arena resets and later in-place mutation of the original.
func (s Sequence) Clone() Sequence {
	if len(s.Steps) == 0 {
		return Sequence{}
	}
	cp := make([]Step, len(s.Steps))
	for i, st := range s.Steps {
		st.Data = append([]byte(nil), st.Data...)
		cp[i] = st
	}
	return Sequence{Steps: cp}
}

// Valid reports whether the sequence is a legal walk of sm from its
// initial state: every step's (State, Action) indices in range, each
// step sent from the state the walk is actually in.
func (sm *StateModel) Valid(s Sequence) error {
	cur := sm.Initial
	for i, st := range s.Steps {
		if st.State != cur {
			return fmt.Errorf("session: step %d sent from state %d, walk is in state %d", i, st.State, cur)
		}
		if st.State < 0 || st.State >= len(sm.States) {
			return fmt.Errorf("session: step %d state %d out of range", i, st.State)
		}
		acts := sm.States[st.State].Actions
		if st.Action < 0 || st.Action >= len(acts) {
			return fmt.Errorf("session: step %d action %d out of range for state %d", i, st.Action, st.State)
		}
		cur = acts[st.Action].Next
	}
	return nil
}

// Repair rewrites the sequence in place into a legal walk of sm. It
// walks from the initial state; each step keeps its *intent* (the data
// model its original action sent) and is re-anchored onto the first
// action of the current state that sends the same model. Steps whose
// intent has no counterpart in the current state — or whose indices are
// out of range — are dropped. The result always satisfies Valid.
func (sm *StateModel) Repair(s *Sequence) {
	cur := sm.Initial
	kept := s.Steps[:0]
	for _, st := range s.Steps {
		if st.State < 0 || st.State >= len(sm.States) {
			continue
		}
		acts := sm.States[st.State].Actions
		if st.Action < 0 || st.Action >= len(acts) {
			continue
		}
		want := acts[st.Action].Model
		found := -1
		for ai, a := range sm.States[cur].Actions {
			if a.Model == want {
				found = ai
				break
			}
		}
		if found < 0 {
			continue
		}
		st.State = cur
		st.Action = found
		cur = sm.States[cur].Actions[found].Next
		kept = append(kept, st)
	}
	s.Steps = kept
}

// Sequence-level mutation operator identifiers, in pick order. They are
// scheduled through the adaptive-credit machinery in internal/core just
// like byte-level mutators, so campaigns learn which granularity pays.
const (
	// OpSplice grafts a suffix of a donor sequence onto a prefix of the
	// base, then repairs the join.
	OpSplice = iota
	// OpReorder swaps two steps, then repairs.
	OpReorder
	// OpDrop removes one step, then repairs.
	OpDrop
	// OpTruncate keeps a strict prefix.
	OpTruncate
	// NumOps is the number of sequence operators.
	NumOps
)

// OpName returns a short stable label for a sequence operator.
func OpName(op int) string {
	switch op {
	case OpSplice:
		return "seq-splice"
	case OpReorder:
		return "seq-reorder"
	case OpDrop:
		return "seq-drop"
	case OpTruncate:
		return "seq-truncate"
	}
	return fmt.Sprintf("seq-op%d", op)
}

// Splice grafts a random suffix of donor onto a random prefix of base
// and repairs the result against sm. Draws exactly two values.
func Splice(r *rng.RNG, sm *StateModel, base *Sequence, donor Sequence) {
	cut := r.Intn(len(base.Steps) + 1)
	from := 0
	if len(donor.Steps) > 0 {
		from = r.Intn(len(donor.Steps))
	} else {
		r.Intn(1) // keep the draw count shape-independent
	}
	merged := make([]Step, 0, cut+len(donor.Steps)-from)
	merged = append(merged, base.Steps[:cut]...)
	merged = append(merged, donor.Steps[from:]...)
	base.Steps = merged
	sm.Repair(base)
}

// Reorder swaps two randomly chosen steps and repairs. Draws exactly two
// values.
func Reorder(r *rng.RNG, sm *StateModel, s *Sequence) {
	n := len(s.Steps)
	if n == 0 {
		r.Intn(1)
		r.Intn(1)
		return
	}
	i, j := r.Intn(n), r.Intn(n)
	s.Steps[i], s.Steps[j] = s.Steps[j], s.Steps[i]
	sm.Repair(s)
}

// Drop removes one randomly chosen step and repairs. Draws exactly one
// value.
func Drop(r *rng.RNG, sm *StateModel, s *Sequence) {
	n := len(s.Steps)
	if n == 0 {
		r.Intn(1)
		return
	}
	i := r.Intn(n)
	s.Steps = append(s.Steps[:i], s.Steps[i+1:]...)
	sm.Repair(s)
}

// Truncate keeps a random non-empty prefix (a strict prefix of a legal
// walk is itself legal, so no repair is needed). Draws exactly one value.
func Truncate(r *rng.RNG, sm *StateModel, s *Sequence) {
	n := len(s.Steps)
	if n <= 1 {
		r.Intn(1)
		return
	}
	keep := 1 + r.Intn(n-1)
	s.Steps = s.Steps[:keep]
}

// Apply runs one sequence operator on base. donor is consulted only by
// OpSplice; passing the zero Sequence is fine.
func Apply(r *rng.RNG, sm *StateModel, op int, base *Sequence, donor Sequence) {
	switch op {
	case OpSplice:
		Splice(r, sm, base, donor)
	case OpReorder:
		Reorder(r, sm, base)
	case OpDrop:
		Drop(r, sm, base)
	case OpTruncate:
		Truncate(r, sm, base)
	}
}
