package session

import (
	"encoding/binary"
	"fmt"
)

// codecVersion is the sequence wire-format version. The version byte
// leads every encoded sequence so corpus journals and fleetnet frames
// written by newer engines stay recognizable (and rejectable) by older
// ones, and so the format can evolve without a flag day.
const codecVersion = 1

// maxDecodeSteps bounds decoded sequences; it is far above any walk the
// engine generates and exists only to stop a hostile length prefix from
// allocating unbounded memory.
const maxDecodeSteps = 1 << 16

// Encode appends the versioned binary encoding of s to dst and returns
// the extended slice. Layout: version byte, uvarint step count, then per
// step uvarint state, uvarint action, uvarint payload length, payload.
func Encode(dst []byte, s Sequence) []byte {
	dst = append(dst, codecVersion)
	dst = binary.AppendUvarint(dst, uint64(len(s.Steps)))
	for _, st := range s.Steps {
		dst = binary.AppendUvarint(dst, uint64(st.State))
		dst = binary.AppendUvarint(dst, uint64(st.Action))
		dst = binary.AppendUvarint(dst, uint64(len(st.Data)))
		dst = append(dst, st.Data...)
	}
	return dst
}

// uvarint reads a minimally-encoded unsigned varint from data. It
// rejects non-minimal encodings (0x80 0x00 for zero, and so on) so that
// decoding is canonical: every accepted buffer re-encodes to itself,
// which keeps corpus dedup by byte signature honest.
func uvarint(data []byte) (uint64, int) {
	v, used := binary.Uvarint(data)
	if used > 1 && data[used-1] == 0 {
		return 0, 0
	}
	return v, used
}

// Decode parses an Encode-produced buffer. Payload slices are copied out
// of data, so the caller may recycle the input. Unknown versions,
// truncated or oversized inputs, and non-minimal varint encodings (the
// codec is canonical: Decode accepts exactly what Encode emits) return
// an error.
func Decode(data []byte) (Sequence, error) {
	if len(data) == 0 {
		return Sequence{}, fmt.Errorf("session: empty sequence encoding")
	}
	if data[0] != codecVersion {
		return Sequence{}, fmt.Errorf("session: unknown sequence codec version %d", data[0])
	}
	data = data[1:]
	n, used := uvarint(data)
	if used <= 0 {
		return Sequence{}, fmt.Errorf("session: bad step count")
	}
	if n > maxDecodeSteps {
		return Sequence{}, fmt.Errorf("session: step count %d exceeds limit", n)
	}
	data = data[used:]
	steps := make([]Step, 0, n)
	for i := uint64(0); i < n; i++ {
		state, used := uvarint(data)
		if used <= 0 {
			return Sequence{}, fmt.Errorf("session: step %d: bad state", i)
		}
		data = data[used:]
		action, used := uvarint(data)
		if used <= 0 {
			return Sequence{}, fmt.Errorf("session: step %d: bad action", i)
		}
		data = data[used:]
		size, used := uvarint(data)
		if used <= 0 {
			return Sequence{}, fmt.Errorf("session: step %d: bad payload length", i)
		}
		data = data[used:]
		if uint64(len(data)) < size {
			return Sequence{}, fmt.Errorf("session: step %d: payload truncated", i)
		}
		if state > maxDecodeSteps || action > maxDecodeSteps {
			return Sequence{}, fmt.Errorf("session: step %d: index out of range", i)
		}
		steps = append(steps, Step{
			State:  int(state),
			Action: int(action),
			Data:   append([]byte(nil), data[:size]...),
		})
		data = data[size:]
	}
	if len(data) != 0 {
		return Sequence{}, fmt.Errorf("session: %d trailing bytes after sequence", len(data))
	}
	return Sequence{Steps: steps}, nil
}
