package session

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

// testModel is a small machine with a handshake shape: stopped can only
// start or ping; started can send data, ping, or stop back.
func testModel() *StateModel {
	return &StateModel{
		Name:    "toy",
		Initial: 0,
		States: []State{
			{Name: "stopped", Actions: []Action{
				{Model: "Start", Next: 1},
				{Model: "Ping", Next: 0},
			}},
			{Name: "started", Actions: []Action{
				{Model: "Data", Next: 1},
				{Model: "Ping", Next: 1},
				{Model: "Stop", Next: 0},
			}},
		},
	}
}

func TestSessionValidate(t *testing.T) {
	sm := testModel()
	if err := sm.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := testModel()
	bad.States[1].Actions[0].Next = 99
	if err := bad.Validate(); err == nil {
		t.Fatalf("out-of-range next accepted")
	}
	dup := testModel()
	dup.States[1].Name = "stopped"
	if err := dup.Validate(); err == nil {
		t.Fatalf("duplicate state name accepted")
	}
	empty := &StateModel{Name: "e", States: []State{{Name: "s"}}}
	if err := empty.Validate(); err == nil {
		t.Fatalf("actionless model accepted")
	}
}

// randomWalk builds a legal sequence by walking the model.
func randomWalk(r *rng.RNG, sm *StateModel, maxSteps int) Sequence {
	var s Sequence
	cur := sm.Initial
	for len(s.Steps) < maxSteps {
		acts := sm.States[cur].Actions
		if len(acts) == 0 {
			break
		}
		ai := r.Intn(len(acts))
		s.Steps = append(s.Steps, Step{State: cur, Action: ai, Data: []byte{byte(cur), byte(ai)}})
		cur = acts[ai].Next
		if r.Chance(4) {
			break
		}
	}
	return s
}

// garble scrambles indices so Repair has real work to do.
func garble(r *rng.RNG, s *Sequence) {
	for i := range s.Steps {
		if r.Chance(3) {
			s.Steps[i].State = r.Intn(4) - 1
		}
		if r.Chance(3) {
			s.Steps[i].Action = r.Intn(5) - 1
		}
	}
}

// TestSessionRepairProperty: Repair always yields a legal walk, even
// from garbage, and preserves the model intent of surviving steps.
func TestSessionRepairProperty(t *testing.T) {
	sm := testModel()
	r := rng.New(7)
	for trial := 0; trial < 5000; trial++ {
		s := randomWalk(r, sm, 10)
		garble(r, &s)
		sm.Repair(&s)
		if err := sm.Valid(s); err != nil {
			t.Fatalf("trial %d: repaired sequence invalid: %v", trial, err)
		}
	}
}

// TestSessionOpsStayInAlphabet: every sequence operator, applied to
// arbitrary legal walks (and, for splice, arbitrary donors), produces a
// sequence whose every transition is in the state model's alphabet —
// i.e. Valid never fails. This is the satellite property test.
func TestSessionOpsStayInAlphabet(t *testing.T) {
	sm := testModel()
	r := rng.New(42)
	for trial := 0; trial < 5000; trial++ {
		base := randomWalk(r, sm, 10)
		donor := randomWalk(r, sm, 10)
		op := r.Intn(NumOps)
		Apply(r, sm, op, &base, donor)
		if err := sm.Valid(base); err != nil {
			t.Fatalf("trial %d: op %s produced out-of-alphabet sequence: %v", trial, OpName(op), err)
		}
	}
}

// TestSessionOpsOnEmpty: operators tolerate empty bases and donors.
func TestSessionOpsOnEmpty(t *testing.T) {
	sm := testModel()
	r := rng.New(3)
	for op := 0; op < NumOps; op++ {
		var empty Sequence
		Apply(r, sm, op, &empty, Sequence{})
		if err := sm.Valid(empty); err != nil {
			t.Fatalf("op %s on empty: %v", OpName(op), err)
		}
	}
}

func TestSessionTruncateKeepsPrefix(t *testing.T) {
	sm := testModel()
	r := rng.New(9)
	for trial := 0; trial < 200; trial++ {
		s := randomWalk(r, sm, 10)
		orig := s.Clone()
		Truncate(r, sm, &s)
		if len(s.Steps) > len(orig.Steps) {
			t.Fatalf("truncate grew the sequence")
		}
		if len(orig.Steps) > 1 && len(s.Steps) >= len(orig.Steps) {
			t.Fatalf("truncate kept the whole sequence")
		}
		for i := range s.Steps {
			if !bytes.Equal(s.Steps[i].Data, orig.Steps[i].Data) {
				t.Fatalf("truncate is not a prefix at step %d", i)
			}
		}
	}
}

func TestSessionCodecRoundTrip(t *testing.T) {
	sm := testModel()
	r := rng.New(11)
	for trial := 0; trial < 500; trial++ {
		s := randomWalk(r, sm, 10)
		enc := Encode(nil, s)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(dec.Steps) != len(s.Steps) {
			t.Fatalf("trial %d: step count %d != %d", trial, len(dec.Steps), len(s.Steps))
		}
		for i := range s.Steps {
			if dec.Steps[i].State != s.Steps[i].State || dec.Steps[i].Action != s.Steps[i].Action ||
				!bytes.Equal(dec.Steps[i].Data, s.Steps[i].Data) {
				t.Fatalf("trial %d: step %d mismatch", trial, i)
			}
		}
		// Re-encoding the decoded value must be byte-identical (canonical
		// form), which is what lets corpus dedup collapse duplicates.
		if !bytes.Equal(Encode(nil, dec), enc) {
			t.Fatalf("trial %d: re-encode differs", trial)
		}
	}
}

func TestSessionCodecRejects(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatalf("nil input accepted")
	}
	if _, err := Decode([]byte{99}); err == nil {
		t.Fatalf("unknown version accepted")
	}
	good := Encode(nil, Sequence{Steps: []Step{{State: 0, Action: 0, Data: []byte("abc")}}})
	if _, err := Decode(good[:len(good)-1]); err == nil {
		t.Fatalf("truncated payload accepted")
	}
	if _, err := Decode(append(good, 0)); err == nil {
		t.Fatalf("trailing bytes accepted")
	}
}

func TestSessionCloneIsDeep(t *testing.T) {
	s := Sequence{Steps: []Step{{State: 0, Action: 0, Data: []byte{1, 2}}}}
	c := s.Clone()
	s.Steps[0].Data[0] = 9
	if c.Steps[0].Data[0] != 1 {
		t.Fatalf("clone shares payload bytes")
	}
}

// TestSessionOpsDeterministic: identical seeds produce identical
// operator outcomes — the reproducibility contract sequence runs rely on.
func TestSessionOpsDeterministic(t *testing.T) {
	sm := testModel()
	run := func() []byte {
		r := rng.New(123)
		var out []byte
		for trial := 0; trial < 200; trial++ {
			base := randomWalk(r, sm, 10)
			donor := randomWalk(r, sm, 10)
			Apply(r, sm, r.Intn(NumOps), &base, donor)
			out = Encode(out, base)
		}
		return out
	}
	if !bytes.Equal(run(), run()) {
		t.Fatalf("sequence ops are not deterministic for a fixed seed")
	}
}
