package session

import (
	"bytes"
	"testing"
)

// FuzzSequenceCodec feeds arbitrary bytes to Decode; whatever decodes
// must re-encode byte-identically (round-trip), and Decode must never
// panic or over-allocate on hostile input.
func FuzzSequenceCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(nil, Sequence{}))
	f.Add(Encode(nil, Sequence{Steps: []Step{
		{State: 0, Action: 1, Data: []byte("startdt")},
		{State: 1, Action: 0, Data: []byte{0x68, 0x04, 0x07, 0x00, 0x00, 0x00}},
	}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		enc := Encode(nil, s)
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, enc)
		}
		s2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(s2.Steps) != len(s.Steps) {
			t.Fatalf("re-decode step count differs")
		}
	})
}
