// Package bench is the experiment harness that regenerates the paper's
// evaluation (§V): the per-project paths-over-time curves of Fig. 4, the
// speed-to-coverage and final-path-increase headline numbers of §V-B, and
// the vulnerability table (Table I).
//
// The paper's budget is 24 wall-clock hours per (project, fuzzer) pair,
// repeated 10 times. This harness scales the budget to a configurable
// number of target executions per repetition (DESIGN.md §2.4): both
// fuzzers pay one execution per generated seed, so execution count is the
// fair time axis.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/targets"
)

// Projects lists the six evaluated projects in the paper's Fig. 4 order.
func Projects() []string {
	return []string{"libmodbus", "IEC104", "libiec61850", "lib60870", "libiccp", "opendnp3"}
}

// Config parameterizes one experiment run.
type Config struct {
	// ExecBudget is the number of target executions per repetition —
	// the scaled stand-in for the paper's 24 hours.
	ExecBudget int
	// Reps is the number of repetitions averaged (the paper uses 10).
	Reps int
	// Checkpoints is the number of x-axis samples per curve.
	Checkpoints int
	// Seed bases the per-repetition seeds.
	Seed uint64
}

// DefaultConfig returns the configuration the committed EXPERIMENTS.md
// numbers were produced with.
func DefaultConfig() Config {
	return Config{ExecBudget: 20000, Reps: 5, Checkpoints: 20, Seed: 1}
}

// Series is one averaged paths-over-executions curve.
type Series struct {
	X []int     // execution counts at each checkpoint
	Y []float64 // mean paths covered at each checkpoint
}

// Final returns the last y value (paths at budget end).
func (s Series) Final() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// ProjectResult is the Fig. 4 panel plus §V-B headline stats for one
// project.
type ProjectResult struct {
	Project string
	Peach   Series // baseline curve
	Star    Series // Peach* curve
	// IncreasePct is the relative final-path gain of Peach* over Peach
	// (the 8.35%-36.84% range of §V-B).
	IncreasePct float64
	// Speedup is how many times faster Peach* reached Peach's final
	// path count (the 1.2X-25X range of §V-B). It is +Inf-free: when
	// Peach* never reaches the level, it reports the ratio at budget
	// end (< 1 means slower).
	Speedup float64
}

// runOne executes a single campaign, sampling paths at each checkpoint.
func runOne(project string, strat core.Strategy, seed uint64, cfg Config) ([]int, []int, *core.Engine, error) {
	tgt, err := targets.New(project)
	if err != nil {
		return nil, nil, nil, err
	}
	eng, err := core.New(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: strat,
		Seed:     seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	step := cfg.ExecBudget / cfg.Checkpoints
	if step < 1 {
		step = 1
	}
	var xs, ys []int
	for cp := 1; cp <= cfg.Checkpoints; cp++ {
		eng.Run(cp * step)
		xs = append(xs, cp*step)
		ys = append(ys, eng.Stats().Paths)
	}
	return xs, ys, eng, nil
}

// RunProject produces the Fig. 4 panel for one project.
func RunProject(project string, cfg Config) (ProjectResult, error) {
	res := ProjectResult{Project: project}
	sumPeach := make([]float64, cfg.Checkpoints)
	sumStar := make([]float64, cfg.Checkpoints)
	var xs []int
	for rep := 0; rep < cfg.Reps; rep++ {
		seed := cfg.Seed + uint64(rep)*7919
		x, yP, _, err := runOne(project, core.StrategyPeach, seed, cfg)
		if err != nil {
			return res, err
		}
		_, yS, _, err := runOne(project, core.StrategyPeachStar, seed, cfg)
		if err != nil {
			return res, err
		}
		xs = x
		for i := range yP {
			sumPeach[i] += float64(yP[i])
			sumStar[i] += float64(yS[i])
		}
	}
	res.Peach = Series{X: xs, Y: mean(sumPeach, cfg.Reps)}
	res.Star = Series{X: xs, Y: mean(sumStar, cfg.Reps)}
	res.IncreasePct = pctIncrease(res.Star.Final(), res.Peach.Final())
	res.Speedup = speedup(res.Star, res.Peach)
	return res, nil
}

func mean(sum []float64, n int) []float64 {
	out := make([]float64, len(sum))
	for i, v := range sum {
		out[i] = v / float64(n)
	}
	return out
}

func pctIncrease(star, peach float64) float64 {
	if peach == 0 {
		if star == 0 {
			return 0
		}
		return 100
	}
	return (star - peach) / peach * 100
}

// speedup reports execs(Peach to final level) / execs(Peach* to same
// level): how many times faster Peach* reached the baseline's final
// coverage (§V-B's 1.2X-25X).
func speedup(star, peach Series) float64 {
	level := peach.Final()
	if level == 0 {
		return 1
	}
	starExecs := execsToLevel(star, level)
	if starExecs == 0 {
		return 1
	}
	peachExecs := peach.X[len(peach.X)-1]
	return float64(peachExecs) / float64(starExecs)
}

// execsToLevel returns the first checkpoint at which the curve reaches the
// level, or 0 when it never does (caller treats that as no speedup).
func execsToLevel(s Series, level float64) int {
	for i, y := range s.Y {
		if y >= level {
			return s.X[i]
		}
	}
	return 0
}

// --- Table I ---

// VulnRow is one project's row of Table I.
type VulnRow struct {
	Project string
	// Counts per vulnerability type, keyed by the paper's names.
	Counts map[mem.FaultKind]int
	Total  int
	// Sites lists the deduplicated fault sites, for the detailed report.
	Sites []string
}

// HuntVulnerabilities runs Peach* campaigns against one project and
// returns its Table I row, aggregating the unique faults found across all
// repetitions — Table I reports everything the paper's evaluation exposed,
// not one campaign's haul. Projects without seeded bugs yield zero rows,
// matching the paper (only lib60870, libmodbus and libiec_iccp_mod appear
// in Table I).
func HuntVulnerabilities(project string, execBudget, reps int, seed uint64) (VulnRow, error) {
	row := VulnRow{Project: project, Counts: map[mem.FaultKind]int{}}
	type key struct {
		kind mem.FaultKind
		site string
	}
	seen := map[key]bool{}
	for rep := 0; rep < reps; rep++ {
		tgt, err := targets.New(project)
		if err != nil {
			return row, err
		}
		eng, err := core.New(core.Config{
			Models:   tgt.Models(),
			Target:   tgt,
			Strategy: core.StrategyPeachStar,
			Seed:     seed + uint64(rep)*104729,
		})
		if err != nil {
			return row, err
		}
		eng.Run(execBudget)
		for _, r := range eng.Crashes().Records() {
			k := key{r.Kind, r.Site}
			if seen[k] {
				continue
			}
			seen[k] = true
			row.Counts[r.Kind]++
			row.Total++
			row.Sites = append(row.Sites, fmt.Sprintf("%s: %s", r.Kind, r.Site))
		}
	}
	sort.Strings(row.Sites)
	return row, nil
}

// --- formatting ---

// FormatFig4Panel renders one project's curves as aligned text columns —
// the regenerated data behind one panel of Fig. 4.
func FormatFig4Panel(r ProjectResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.4 — %s: average paths covered (Peach vs Peach*)\n", r.Project)
	fmt.Fprintf(&b, "%10s %12s %12s\n", "execs", "Peach", "Peach*")
	for i := range r.Peach.X {
		fmt.Fprintf(&b, "%10d %12.1f %12.1f\n", r.Peach.X[i], r.Peach.Y[i], r.Star.Y[i])
	}
	fmt.Fprintf(&b, "final increase: %+.2f%%   speed to Peach-final coverage: %.2fX\n",
		r.IncreasePct, r.Speedup)
	return b.String()
}

// FormatSummary renders the §V-B headline table across projects.
func FormatSummary(results []ProjectResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %12s %9s\n", "project", "Peach", "Peach*", "increase", "speed")
	var sumInc, sumSpeed float64
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s %10.1f %10.1f %+11.2f%% %8.2fX\n",
			r.Project, r.Peach.Final(), r.Star.Final(), r.IncreasePct, r.Speedup)
		sumInc += r.IncreasePct
		sumSpeed += r.Speedup
	}
	if len(results) > 0 {
		fmt.Fprintf(&b, "%-14s %10s %10s %+11.2f%% %8.2fX\n", "average", "", "",
			sumInc/float64(len(results)), sumSpeed/float64(len(results)))
	}
	return b.String()
}

// FormatTable1 renders the vulnerability table in the paper's layout.
func FormatTable1(rows []VulnRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Vulnerabilities Exposed by Peach*\n")
	fmt.Fprintf(&b, "%-14s %-24s %7s\n", "Project", "Vulnerability Type", "Number")
	total := 0
	for _, row := range rows {
		if row.Total == 0 {
			continue
		}
		kinds := make([]string, 0, len(row.Counts))
		for k := range row.Counts {
			kinds = append(kinds, string(k))
		}
		sort.Strings(kinds)
		first := true
		for _, k := range kinds {
			name := row.Project
			if !first {
				name = ""
			}
			fmt.Fprintf(&b, "%-14s %-24s %7d\n", name, k, row.Counts[mem.FaultKind(k)])
			first = false
		}
		total += row.Total
	}
	fmt.Fprintf(&b, "%-14s %-24s %7d\n", "total", "", total)
	return b.String()
}
