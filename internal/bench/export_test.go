package bench

import (
	"strings"
	"testing"
)

func sampleResult() ProjectResult {
	return ProjectResult{
		Project:     "libmodbus",
		Peach:       Series{X: []int{100, 200}, Y: []float64{3, 5}},
		Star:        Series{X: []int{100, 200}, Y: []float64{4, 7}},
		IncreasePct: 40,
		Speedup:     2,
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, sampleResult()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "execs,peach,peachstar" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "200,5.00,7.00" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestWriteSummaryCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteSummaryCSV(&b, []ProjectResult{sampleResult()}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "libmodbus,5.00,7.00,40.00,2.00") {
		t.Fatalf("summary = %q", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Series{Y: []float64{0, 1, 2, 4}}
	spark := Sparkline(s)
	if len([]rune(spark)) != 4 {
		t.Fatalf("sparkline = %q", spark)
	}
	if []rune(spark)[3] != '█' {
		t.Fatalf("max should render full block: %q", spark)
	}
	if Sparkline(Series{}) != "" {
		t.Fatal("empty series should render empty")
	}
	flat := Sparkline(Series{Y: []float64{0, 0}})
	if len([]rune(flat)) != 2 {
		t.Fatal("flat series length wrong")
	}
}
