package bench

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV exports one project's Fig. 4 panel as CSV with the columns
// execs, peach, peachstar — the plotting-friendly form of the curves.
func WriteCSV(w io.Writer, r ProjectResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"execs", "peach", "peachstar"}); err != nil {
		return fmt.Errorf("bench: csv header: %w", err)
	}
	for i := range r.Peach.X {
		rec := []string{
			fmt.Sprintf("%d", r.Peach.X[i]),
			fmt.Sprintf("%.2f", r.Peach.Y[i]),
			fmt.Sprintf("%.2f", r.Star.Y[i]),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummaryCSV exports the §V-B headline table across projects.
func WriteSummaryCSV(w io.Writer, results []ProjectResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"project", "peach_final", "peachstar_final", "increase_pct", "speedup_x"}); err != nil {
		return fmt.Errorf("bench: summary header: %w", err)
	}
	for _, r := range results {
		rec := []string{
			r.Project,
			fmt.Sprintf("%.2f", r.Peach.Final()),
			fmt.Sprintf("%.2f", r.Star.Final()),
			fmt.Sprintf("%.2f", r.IncreasePct),
			fmt.Sprintf("%.2f", r.Speedup),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: summary row %s: %w", r.Project, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sparkline renders a curve as a compact unicode strip — the terminal
// stand-in for a Fig. 4 panel.
func Sparkline(s Series) string {
	if len(s.Y) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	max := s.Y[0]
	for _, v := range s.Y {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	out := make([]rune, len(s.Y))
	for i, v := range s.Y {
		idx := int(v / max * float64(len(blocks)-1))
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		out[i] = blocks[idx]
	}
	return string(out)
}
