package bench

import (
	"strings"
	"testing"

	"repro/internal/mem"

	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

// quickCfg keeps unit-test budgets small; the committed experiment numbers
// use DefaultConfig via cmd/benchfig4.
var quickCfg = Config{ExecBudget: 3000, Reps: 2, Checkpoints: 6, Seed: 1}

func TestProjectsListsAllSix(t *testing.T) {
	ps := Projects()
	if len(ps) != 6 {
		t.Fatalf("projects = %v", ps)
	}
	for _, p := range ps {
		if _, err := RunProject(p, Config{ExecBudget: 60, Reps: 1, Checkpoints: 2, Seed: 1}); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
}

func TestRunProjectShape(t *testing.T) {
	r, err := RunProject("libmodbus", quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Peach.X) != quickCfg.Checkpoints || len(r.Star.Y) != quickCfg.Checkpoints {
		t.Fatalf("series lengths: %d/%d", len(r.Peach.X), len(r.Star.Y))
	}
	// Curves are monotone: paths never decrease.
	for i := 1; i < len(r.Peach.Y); i++ {
		if r.Peach.Y[i] < r.Peach.Y[i-1] || r.Star.Y[i] < r.Star.Y[i-1] {
			t.Fatal("paths-over-time must be monotone")
		}
	}
	if r.Peach.Final() == 0 || r.Star.Final() == 0 {
		t.Fatal("both fuzzers should find some paths")
	}
}

func TestRunProjectUnknown(t *testing.T) {
	if _, err := RunProject("nope", quickCfg); err == nil {
		t.Fatal("unknown project should error")
	}
}

func TestPeachStarAdvantageAcrossProjects(t *testing.T) {
	// The §V-B shape claim at test scale: summed over all six projects,
	// Peach* covers more final paths than Peach, and at least four of
	// the six individual projects do not regress.
	if testing.Short() {
		t.Skip("multi-project campaign comparison")
	}
	var sumPeach, sumStar float64
	wins := 0
	for _, p := range Projects() {
		r, err := RunProject(p, Config{ExecBudget: 6000, Reps: 2, Checkpoints: 6, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		sumPeach += r.Peach.Final()
		sumStar += r.Star.Final()
		if r.Star.Final() >= r.Peach.Final() {
			wins++
		}
		t.Logf("%-14s peach=%.1f star=%.1f (%+.1f%%, %.2fX)",
			p, r.Peach.Final(), r.Star.Final(), r.IncreasePct, r.Speedup)
	}
	if sumStar <= sumPeach {
		t.Fatalf("peach* total %.1f <= peach total %.1f", sumStar, sumPeach)
	}
	if wins < 4 {
		t.Fatalf("peach* regressed on %d of 6 projects", 6-wins)
	}
}

func TestSpeedupComputation(t *testing.T) {
	peach := Series{X: []int{100, 200, 300, 400}, Y: []float64{1, 2, 3, 4}}
	star := Series{X: []int{100, 200, 300, 400}, Y: []float64{4, 5, 6, 7}}
	// Star reaches peach's final level (4) at x=100; peach needed 400.
	if s := speedup(star, peach); s != 4 {
		t.Fatalf("speedup = %v, want 4", s)
	}
	// A star curve that never reaches the level reports 1 (no speedup).
	slow := Series{X: []int{100, 200, 300, 400}, Y: []float64{0, 0, 1, 2}}
	if s := speedup(slow, peach); s != 1 {
		t.Fatalf("speedup (never reaches) = %v, want 1", s)
	}
}

func TestPctIncrease(t *testing.T) {
	if v := pctIncrease(127, 100); v != 27 {
		t.Fatalf("pctIncrease = %v", v)
	}
	if v := pctIncrease(0, 0); v != 0 {
		t.Fatalf("pctIncrease(0,0) = %v", v)
	}
	if v := pctIncrease(5, 0); v != 100 {
		t.Fatalf("pctIncrease(5,0) = %v", v)
	}
}

func TestHuntFindsTable1Subset(t *testing.T) {
	// A small-budget hunt on lib60870 should already expose at least one
	// of its three seeded SEGVs.
	row, err := HuntVulnerabilities("lib60870", 8000, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Counts[mem.SEGV] == 0 {
		t.Fatal("no lib60870 SEGV found at test budget")
	}
	if row.Counts[mem.HeapUseAfterFree] != 0 {
		t.Fatal("lib60870 must not report UAF (wrong project's bug class)")
	}
}

func TestHuntCleanProjects(t *testing.T) {
	// The three projects outside Table I must stay crash-free.
	for _, p := range []string{"IEC104", "libiec61850", "opendnp3"} {
		row, err := HuntVulnerabilities(p, 5000, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if row.Total != 0 {
			t.Fatalf("%s reported %d unexpected faults: %v", p, row.Total, row.Sites)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := RunProject("IEC104", quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProject("IEC104", quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Peach.Y {
		if a.Peach.Y[i] != b.Peach.Y[i] || a.Star.Y[i] != b.Star.Y[i] {
			t.Fatal("equal configs must give equal curves")
		}
	}
}

func TestFormatters(t *testing.T) {
	r, err := RunProject("IEC104", Config{ExecBudget: 500, Reps: 1, Checkpoints: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	panel := FormatFig4Panel(r)
	for _, want := range []string{"IEC104", "Peach*", "final increase"} {
		if !strings.Contains(panel, want) {
			t.Fatalf("panel missing %q:\n%s", want, panel)
		}
	}
	summary := FormatSummary([]ProjectResult{r})
	if !strings.Contains(summary, "average") {
		t.Fatalf("summary missing average:\n%s", summary)
	}
	table := FormatTable1([]VulnRow{{
		Project: "lib60870",
		Counts:  map[mem.FaultKind]int{mem.SEGV: 3},
		Total:   3,
	}})
	if !strings.Contains(table, "lib60870") || !strings.Contains(table, "SEGV") {
		t.Fatalf("table1 malformed:\n%s", table)
	}
	if !strings.Contains(table, "      3") {
		t.Fatalf("table1 missing count:\n%s", table)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ExecBudget < 1000 || cfg.Reps < 1 || cfg.Checkpoints < 2 {
		t.Fatalf("default config degenerate: %+v", cfg)
	}
}
