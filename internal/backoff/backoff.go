// Package backoff implements capped exponential backoff with deterministic,
// RNG-stream-seeded jitter — the retry policy shared by everything in this
// repository that redials a peer or reconnects to a supervised process: the
// fleetnet mesh's uplink redial schedule and the process executor's
// connect-retry liveness probe.
//
// Two views of the same curve are provided, because the two consumers pace
// themselves differently. The mesh counts *sync windows* (it only gets a
// chance to redial once per window, so the backoff is "how many windows to
// sit out"); the executor waits in *wall-clock time* (its probe loop owns
// the clock). Both are min(base<<n, cap) plus a uniform jitter drawn from a
// seeded rng.RNG stream, so a fleet of restarting nodes that all lost the
// same peer at the same instant spreads its redials instead of thundering
// onto the recovering process in lockstep — while any single node's
// schedule stays reproducible for a fixed seed.
package backoff

import (
	"time"

	"repro/internal/rng"
)

// Policy produces one retry schedule. The zero value is not usable; build
// one with New. A Policy is not safe for concurrent use: each link or
// supervisor owns its own (they are a few words each).
type Policy struct {
	r *rng.RNG
}

// New returns a policy whose jitter draws come from an rng stream seeded
// with the given value. Callers that already own a campaign-seeded RNG
// should seed with a value split or forked from it, so backoff draws never
// perturb the fuzzing streams.
func New(seed uint64) *Policy {
	return &Policy{r: rng.New(seed)}
}

// Steps returns how many scheduling windows to sit out after `fails`
// consecutive failures: min(2^(fails-1), cap) plus a jitter of up to half
// the capped value, so two nodes with equal failure counts do not redial on
// the same window forever. fails <= 1 returns at most 1 extra window of
// jitter (first failures retry promptly); cap <= 0 panics via the RNG
// bound check rather than silently disabling the cap.
func (p *Policy) Steps(fails, cap int) int {
	if fails < 1 {
		return 0
	}
	n := fails - 1
	// 1 << n with overflow protection: past the cap's bit width the shift
	// is irrelevant anyway.
	steps := cap
	if n < 31 && (1<<uint(n)) < cap {
		steps = 1 << uint(n)
	}
	return steps + p.r.Intn(steps/2+1)
}

// Delay returns the wall-clock pause before connect attempt `attempt`
// (0-based): min(base<<attempt, max) with a uniform jitter of ±25%, floored
// at a quarter of base so a zero-ish draw never turns into a hot spin.
func (p *Policy) Delay(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	d := max
	if attempt < 31 {
		if shifted := base << uint(attempt); shifted < max && shifted > 0 {
			d = shifted
		}
	}
	// Jitter in [-25%, +25%], quantized to the nanosecond by the RNG draw.
	span := int(d / 2)
	if span > 0 {
		d = d*3/4 + time.Duration(p.r.Intn(span+1))
	}
	if d < base/4 {
		d = base / 4
	}
	return d
}
