package backoff

import (
	"testing"
	"time"
)

// TestStepsCurve: the window-count schedule grows exponentially, respects
// the cap (including jitter headroom of at most half the capped value), and
// first failures retry promptly.
func TestStepsCurve(t *testing.T) {
	p := New(7)
	if got := p.Steps(0, 8); got != 0 {
		t.Fatalf("Steps(0) = %d, want 0", got)
	}
	for fails := 1; fails <= 20; fails++ {
		base := 1 << uint(fails-1)
		if base > 8 {
			base = 8
		}
		for i := 0; i < 100; i++ {
			got := p.Steps(fails, 8)
			if got < base || got > base+base/2 {
				t.Fatalf("Steps(%d, 8) = %d, want in [%d, %d]", fails, got, base, base+base/2)
			}
		}
	}
}

// TestStepsJitterSpreads: two policies with different seeds produce
// different schedules at equal failure counts — the anti-thundering-herd
// property — while a fixed seed reproduces its schedule exactly.
func TestStepsJitterSpreads(t *testing.T) {
	a, b := New(1), New(2)
	differ := false
	for i := 0; i < 64 && !differ; i++ {
		differ = a.Steps(6, 8) != b.Steps(6, 8)
	}
	if !differ {
		t.Fatal("seeds 1 and 2 produced identical 64-draw schedules; jitter is not seed-dependent")
	}
	c, d := New(42), New(42)
	for i := 0; i < 64; i++ {
		if c.Steps(5, 8) != d.Steps(5, 8) {
			t.Fatal("equal seeds diverged; schedule is not reproducible")
		}
	}
}

// TestDelayCurve: the wall-clock schedule doubles from base, caps at max,
// and stays within the ±25% jitter envelope.
func TestDelayCurve(t *testing.T) {
	p := New(3)
	base, max := 10*time.Millisecond, 500*time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		ideal := base << uint(attempt)
		if ideal > max || ideal <= 0 {
			ideal = max
		}
		for i := 0; i < 50; i++ {
			d := p.Delay(base, max, attempt)
			if d < ideal*3/4 || d > ideal*5/4 {
				t.Fatalf("Delay(attempt=%d) = %v, want within ±25%% of %v", attempt, d, ideal)
			}
		}
	}
}

// TestDelayDegenerateInputs: zero/inverted bounds are repaired rather than
// producing zero-length (hot-spin) delays.
func TestDelayDegenerateInputs(t *testing.T) {
	p := New(9)
	if d := p.Delay(0, 0, 5); d <= 0 {
		t.Fatalf("Delay with zero bounds = %v, want > 0", d)
	}
	if d := p.Delay(time.Second, time.Millisecond, 0); d < time.Second/4 {
		t.Fatalf("Delay with max < base = %v, want >= base/4", d)
	}
}
