package crash

import (
	"testing"

	"repro/internal/mem"
)

func TestReportDedups(t *testing.T) {
	b := NewBank()
	f := &mem.Fault{Kind: mem.SEGV, Site: "cs101.getCOT"}
	if !b.Report(f, []byte{1}, 10, 111) {
		t.Fatal("first report should be new")
	}
	if b.Report(f, []byte{2}, 20, 222) {
		t.Fatal("same site+kind should dedup")
	}
	if b.Unique() != 1 {
		t.Fatalf("unique = %d", b.Unique())
	}
	r := b.Records()[0]
	if r.Count != 2 || r.FirstExec != 10 || r.Example[0] != 1 {
		t.Fatalf("record = %+v", r)
	}
}

func TestDifferentKindSameSiteIsDistinct(t *testing.T) {
	b := NewBank()
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "x"}, nil, 1, 0)
	b.Report(&mem.Fault{Kind: mem.HeapUseAfterFree, Site: "x"}, nil, 2, 0)
	if b.Unique() != 2 {
		t.Fatalf("unique = %d, want 2", b.Unique())
	}
}

func TestRecordsOrderedByDiscovery(t *testing.T) {
	b := NewBank()
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "later"}, nil, 50, 0)
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "earlier"}, nil, 5, 0)
	recs := b.Records()
	if recs[0].Site != "earlier" || recs[1].Site != "later" {
		t.Fatal("records not ordered by first discovery")
	}
}

func TestCountByKind(t *testing.T) {
	b := NewBank()
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "a"}, nil, 1, 0)
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "b"}, nil, 2, 0)
	b.Report(&mem.Fault{Kind: mem.HeapBufferOverflow, Site: "c"}, nil, 3, 0)
	counts := b.CountByKind()
	if counts[mem.SEGV] != 2 || counts[mem.HeapBufferOverflow] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestHangsCounted(t *testing.T) {
	b := NewBank()
	b.ReportHang()
	b.ReportHang()
	if b.Hangs() != 2 || b.Unique() != 0 {
		t.Fatalf("hangs = %d unique = %d", b.Hangs(), b.Unique())
	}
}

func TestExampleCopied(t *testing.T) {
	b := NewBank()
	pkt := []byte{1, 2, 3}
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "s"}, pkt, 1, 0)
	pkt[0] = 99
	if b.Records()[0].Example[0] == 99 {
		t.Fatal("bank aliases caller packet")
	}
}

func TestStringSummary(t *testing.T) {
	b := NewBank()
	if b.String() != "crash.Bank{unique=0 hangs=0}" {
		t.Fatalf("summary = %q", b.String())
	}
}

func TestMergeFromDedupsAcrossBanks(t *testing.T) {
	a, b := NewBank(), NewBank()
	f1 := &mem.Fault{Kind: mem.HeapBufferOverflow, Site: "parse"}
	f2 := &mem.Fault{Kind: mem.SEGV, Site: "dispatch"}
	a.Report(f1, []byte{1}, 10, 0xA)
	a.Report(f1, []byte{2}, 11, 0xA)
	b.Report(f1, []byte{3}, 4, 0xB)
	b.Report(f2, []byte{4}, 9, 0xC)
	b.ReportHang()

	if got := a.MergeFrom(b); got != 1 {
		t.Fatalf("merge added %d new faults, want 1", got)
	}
	if got := a.Unique(); got != 2 {
		t.Fatalf("unique after merge = %d, want 2", got)
	}
	if got := a.Hangs(); got != 1 {
		t.Fatalf("hangs after merge = %d, want 1", got)
	}
	recs := a.Records()
	if recs[0].Site != "parse" || recs[0].Count != 3 {
		t.Fatalf("shared fault not summed: %+v", recs[0])
	}
	if recs[0].FirstExec != 4 {
		t.Fatalf("FirstExec = %d, want the earlier 4", recs[0].FirstExec)
	}
	// The example packet and path signature follow the earlier trigger.
	if len(recs[0].Example) != 1 || recs[0].Example[0] != 3 || recs[0].PathSig != 0xB {
		t.Fatalf("example/pathsig not taken from the earlier trigger: %+v", recs[0])
	}
}

func TestConcurrentReportAndSnapshot(t *testing.T) {
	b := NewBank()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			b.Report(&mem.Fault{Kind: mem.SEGV, Site: "s"}, []byte{byte(i)}, i, 1)
			if i%3 == 0 {
				b.ReportHang()
			}
		}
	}()
	for i := 0; i < 100; i++ {
		_ = b.Records()
		_ = b.Unique()
		_ = b.CountByKind()
	}
	<-done
	if b.Unique() != 1 {
		t.Fatalf("unique = %d, want 1", b.Unique())
	}
}

// TestAbsorbIsIdempotent covers the network-merge path: a reconnecting leaf
// re-sends its records and nothing may double-count.
func TestAbsorbIsIdempotent(t *testing.T) {
	b := NewBank()
	r := &Record{Kind: mem.SEGV, Site: "modbus.readBits", Example: []byte{9}, Count: 3, FirstExec: 50, PathSig: 7}
	if !b.Absorb(r) {
		t.Fatal("first absorb should be new")
	}
	if b.Absorb(r) {
		t.Fatal("re-absorbing the same record should not be new")
	}
	got := b.Records()[0]
	if got.Count != 3 || got.FirstExec != 50 {
		t.Fatalf("record after re-absorb = %+v", got)
	}
	// A later snapshot from the same peer carries a higher count and an
	// earlier first trigger; both converge, neither accumulates.
	b.Absorb(&Record{Kind: mem.SEGV, Site: "modbus.readBits", Example: []byte{4}, Count: 5, FirstExec: 20, PathSig: 9})
	b.Absorb(&Record{Kind: mem.SEGV, Site: "modbus.readBits", Example: []byte{4}, Count: 5, FirstExec: 20, PathSig: 9})
	got = b.Records()[0]
	if got.Count != 5 || got.FirstExec != 20 || got.Example[0] != 4 || got.PathSig != 9 {
		t.Fatalf("converged record = %+v", got)
	}
	if b.Unique() != 1 {
		t.Fatalf("unique = %d", b.Unique())
	}
}

// TestAbsorbCopiesRecord: the bank must detach from the caller's buffers.
func TestAbsorbCopiesRecord(t *testing.T) {
	b := NewBank()
	ex := []byte{1, 2, 3}
	r := &Record{Kind: mem.SEGV, Site: "s", Example: ex, Count: 1, FirstExec: 1}
	b.Absorb(r)
	ex[0] = 99
	r.Count = 42
	if got := b.Records()[0]; got.Example[0] != 1 || got.Count != 1 {
		t.Fatalf("bank aliased the caller's record: %+v", got)
	}
}
