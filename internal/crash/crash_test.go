package crash

import (
	"testing"

	"repro/internal/mem"
)

func TestReportDedups(t *testing.T) {
	b := NewBank()
	f := &mem.Fault{Kind: mem.SEGV, Site: "cs101.getCOT"}
	if !b.Report(f, []byte{1}, 10, 111) {
		t.Fatal("first report should be new")
	}
	if b.Report(f, []byte{2}, 20, 222) {
		t.Fatal("same site+kind should dedup")
	}
	if b.Unique() != 1 {
		t.Fatalf("unique = %d", b.Unique())
	}
	r := b.Records()[0]
	if r.Count != 2 || r.FirstExec != 10 || r.Example[0] != 1 {
		t.Fatalf("record = %+v", r)
	}
}

func TestDifferentKindSameSiteIsDistinct(t *testing.T) {
	b := NewBank()
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "x"}, nil, 1, 0)
	b.Report(&mem.Fault{Kind: mem.HeapUseAfterFree, Site: "x"}, nil, 2, 0)
	if b.Unique() != 2 {
		t.Fatalf("unique = %d, want 2", b.Unique())
	}
}

func TestRecordsOrderedByDiscovery(t *testing.T) {
	b := NewBank()
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "later"}, nil, 50, 0)
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "earlier"}, nil, 5, 0)
	recs := b.Records()
	if recs[0].Site != "earlier" || recs[1].Site != "later" {
		t.Fatal("records not ordered by first discovery")
	}
}

func TestCountByKind(t *testing.T) {
	b := NewBank()
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "a"}, nil, 1, 0)
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "b"}, nil, 2, 0)
	b.Report(&mem.Fault{Kind: mem.HeapBufferOverflow, Site: "c"}, nil, 3, 0)
	counts := b.CountByKind()
	if counts[mem.SEGV] != 2 || counts[mem.HeapBufferOverflow] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestHangsCounted(t *testing.T) {
	b := NewBank()
	b.ReportHang()
	b.ReportHang()
	if b.Hangs() != 2 || b.Unique() != 0 {
		t.Fatalf("hangs = %d unique = %d", b.Hangs(), b.Unique())
	}
}

func TestExampleCopied(t *testing.T) {
	b := NewBank()
	pkt := []byte{1, 2, 3}
	b.Report(&mem.Fault{Kind: mem.SEGV, Site: "s"}, pkt, 1, 0)
	pkt[0] = 99
	if b.Records()[0].Example[0] == 99 {
		t.Fatal("bank aliases caller packet")
	}
}

func TestStringSummary(t *testing.T) {
	b := NewBank()
	if b.String() != "crash.Bank{unique=0 hangs=0}" {
		t.Fatalf("summary = %q", b.String())
	}
}
