package crash

import (
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/mem"
)

// This file is the crash bank's side of the campaign-checkpoint seam.
// Records are written in sorted fault-identity (RecordKey) order — not
// discovery order, which can tie across merged workers — so the encoding
// is canonical and the round-trip golden test holds byte for byte.
// Reproducer journals (Sequence/SeqStarts) travel with their records: a
// warm-restarted campaign can still replay every banked crash against a
// fresh target.

// Snapshot writes the bank's full state through the checkpoint codec.
func (b *Bank) Snapshot(w *checkpoint.Writer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	keys := make([]string, 0, len(b.byKey))
	for k := range b.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		r := b.byKey[k]
		w.String(string(r.Kind))
		w.String(r.Site)
		w.Blob(r.Example)
		w.Int(r.Count)
		w.Int(r.FirstExec)
		w.U64(r.PathSig)
		// A nil Sequence (in-process fault; single-packet reproducer) is
		// semantically distinct from an empty one, so its presence gets an
		// explicit marker.
		w.Bool(r.Sequence != nil)
		if r.Sequence != nil {
			w.Int(len(r.Sequence))
			for _, p := range r.Sequence {
				w.Blob(p)
			}
			w.Int(len(r.SeqStarts))
			for _, s := range r.SeqStarts {
				w.Int(s)
			}
		}
	}
	w.Int(b.hangs)
	w.Int(len(b.hangOrder))
	for _, h := range b.hangOrder {
		w.Int(h.Budget)
		w.Blob(h.Prefix)
		w.Int(h.Count)
	}
}

// Restore overwrites the bank with a Snapshot-produced dump. Duplicate
// fault identities and out-of-range session boundaries fail the restore.
func (b *Bank) Restore(r *checkpoint.Reader) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.byKey = make(map[string]*Record)
	b.hangs = 0
	b.hangByKey = nil
	b.hangOrder = nil

	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := &Record{}
		rec.Kind = mem.FaultKind(r.String())
		rec.Site = r.String()
		rec.Example = r.Blob()
		rec.Count = r.Int()
		rec.FirstExec = r.Int()
		rec.PathSig = r.U64()
		if r.Bool() {
			ns := r.Count()
			rec.Sequence = make([][]byte, 0, ns)
			for j := 0; j < ns && r.Err() == nil; j++ {
				rec.Sequence = append(rec.Sequence, r.Blob())
			}
			nb := r.Count()
			for j := 0; j < nb && r.Err() == nil; j++ {
				s := r.Int()
				if r.Err() == nil && s > len(rec.Sequence) {
					return fmt.Errorf("crash: session boundary %d beyond sequence length %d", s, len(rec.Sequence))
				}
				rec.SeqStarts = append(rec.SeqStarts, s)
			}
		}
		if r.Err() != nil {
			break
		}
		k := recordKey(rec)
		if _, dup := b.byKey[k]; dup {
			return fmt.Errorf("crash: duplicate record %q", k)
		}
		b.byKey[k] = rec
	}

	b.hangs = r.Int()
	nh := r.Count()
	for i := 0; i < nh && r.Err() == nil; i++ {
		h := &HangRecord{Budget: r.Int(), Prefix: r.Blob(), Count: r.Int()}
		if r.Err() != nil {
			break
		}
		if b.hangByKey == nil {
			b.hangByKey = make(map[string]*HangRecord)
		}
		k := string(h.Prefix)
		if _, dup := b.hangByKey[k]; dup {
			return fmt.Errorf("crash: duplicate hang class %q", k)
		}
		b.hangByKey[k] = h
		b.hangOrder = append(b.hangOrder, h)
	}
	return r.Err()
}
