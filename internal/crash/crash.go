// Package crash collects and deduplicates the crashes and hangs a fuzzing
// campaign finds, producing the per-project vulnerability counts of the
// paper's Table I.
//
// Deduplication follows the paper's reporting: Table I counts *unique*
// vulnerabilities, identified by where the fault fired and what kind it was
// (an ASan report site), not by how many inputs reached it.
package crash

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mem"
)

// Record is one unique fault: its identity, an example triggering packet,
// and campaign statistics.
type Record struct {
	Kind    mem.FaultKind
	Site    string
	Example []byte // first packet observed to trigger the fault
	Count   int    // number of triggering executions
	// FirstExec is the execution index of the first trigger, counted by
	// the engine that found it. In a bank merged from parallel workers it
	// is the smallest *per-worker* index — worker-local clocks are not
	// comparable across workers, so treat it as "how early into its
	// budget a worker hit this", not a campaign-global position.
	FirstExec int
	PathSig   uint64 // coverage signature of the first triggering run
	// Sequence, when non-nil, is the replayable reproducer: the exact
	// packet sequence (oldest first, Example last) that drove a
	// supervised target process from a fresh start to this fault. Replay
	// it against a fresh instance to reproduce the same crash signature.
	// Nil for in-process faults, which single-packet Example reproduces,
	// and for records received over the fleet sync wire.
	Sequence [][]byte
	// SeqStarts, when Sequence is non-nil, holds the indices into Sequence
	// where a protocol session began (ascending; a plain single-session
	// journal has none or just {0}). Replaying a stateful reproducer must
	// re-run the session setup at each boundary — fresh connection, fresh
	// server-side sequence numbers — rather than pushing every packet down
	// one connection; see executor.ReplaySession.
	SeqStarts []int
}

// HangRecord is one class of hanging execution, keyed by the offending
// packet's prefix: the context a hang report needs to be triaged — how much
// budget the execution was allowed before the supervisor classified it as
// hung (the sandbox's step budget, or the process executor's watchdog
// timeout in milliseconds), and the input that drove it there.
type HangRecord struct {
	// Budget is the exhausted allowance: steps for in-process targets,
	// watchdog milliseconds for supervised processes.
	Budget int
	// Prefix is the offending packet's first HangPrefixLen bytes.
	Prefix []byte
	// Count is the number of hanging executions in this class.
	Count int
}

// HangPrefixLen bounds the packet prefix retained per hang class: enough
// to identify the opcode and leading structure that wedged the target,
// bounded so a campaign's hang bank never holds unbounded input bytes.
const HangPrefixLen = 32

// maxHangClasses bounds the number of distinct hang classes retained;
// further classes are tallied in the hang count only. Hangs beyond a few
// dozen distinct prefixes are a property of the target, not new triage
// information.
const maxHangClasses = 64

// Key returns the deduplication identity of a fault.
func Key(f *mem.Fault) string {
	return string(f.Kind) + "@" + f.Site
}

// RecordKey is Key for an already-materialized record — the one identity
// used everywhere a record is deduplicated: bank merges, and the network
// transport's sent-record suppression.
func RecordKey(r *Record) string {
	return string(r.Kind) + "@" + r.Site
}

// recordKey is the package-internal spelling of RecordKey.
func recordKey(r *Record) string { return RecordKey(r) }

// Bank accumulates unique crash records across a campaign. All methods are
// safe for concurrent use: parallel campaign workers report into their own
// banks while a monitor may snapshot records, and the shard runner merges
// worker banks into a campaign-level one.
type Bank struct {
	mu        sync.Mutex
	byKey     map[string]*Record
	hangs     int
	hangByKey map[string]*HangRecord //peachstar:nosnap dedup index; rebuilt by Restore from hangOrder
	hangOrder []*HangRecord
}

// NewBank returns an empty crash bank.
func NewBank() *Bank {
	return &Bank{byKey: make(map[string]*Record)}
}

// Report records one crashing execution. It returns true when the fault is
// new (a previously unseen unique vulnerability).
func (b *Bank) Report(f *mem.Fault, packet []byte, execIndex int, pathSig uint64) bool {
	return b.ReportSequence(f, packet, nil, execIndex, pathSig)
}

// ReportSequence is Report for a fault found by a supervised target
// process: seq, when non-nil, is the replayable reproducer journal (the
// packet sequence since the process last started, packet last). The
// sequence travels with the record that owns the example packet: the first
// observation of the fault keeps its journal, later duplicates only count.
func (b *Bank) ReportSequence(f *mem.Fault, packet []byte, seq [][]byte, execIndex int, pathSig uint64) bool {
	return b.ReportSequenceSteps(f, packet, seq, nil, execIndex, pathSig)
}

// ReportSequenceSteps is ReportSequence carrying session boundaries:
// starts lists the indices into seq where a protocol session began, so
// the stored reproducer replays with the same session structure the
// fuzzer drove (Record.SeqStarts).
func (b *Bank) ReportSequenceSteps(f *mem.Fault, packet []byte, seq [][]byte, starts []int, execIndex int, pathSig uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := Key(f)
	if r, ok := b.byKey[k]; ok {
		r.Count++
		return false
	}
	ex := make([]byte, len(packet))
	copy(ex, packet)
	b.byKey[k] = &Record{
		Kind:      f.Kind,
		Site:      f.Site,
		Example:   ex,
		Count:     1,
		FirstExec: execIndex,
		PathSig:   pathSig,
		Sequence:  copySequence(seq),
	}
	if seq != nil && len(starts) > 0 {
		b.byKey[k].SeqStarts = append([]int(nil), starts...)
	}
	return true
}

// copySequence deep-copies a reproducer journal so the bank's record is
// detached from the executor's live buffers.
func copySequence(seq [][]byte) [][]byte {
	if seq == nil {
		return nil
	}
	out := make([][]byte, len(seq))
	for i, p := range seq {
		out[i] = append([]byte(nil), p...)
	}
	return out
}

// ReportHang counts a hanging execution with no context — the legacy entry
// point, kept for callers that have nothing more to say. Prefer
// ReportHangDetail.
func (b *Bank) ReportHang() {
	b.mu.Lock()
	b.hangs++
	b.mu.Unlock()
}

// ReportHangDetail counts a hanging execution and files its triage
// context: the exhausted budget (steps or watchdog milliseconds) and the
// offending packet, classed by its HangPrefixLen-byte prefix. At most
// maxHangClasses distinct classes are retained; the hang tally is always
// exact.
func (b *Bank) ReportHangDetail(budget int, packet []byte) {
	prefix := packet
	if len(prefix) > HangPrefixLen {
		prefix = prefix[:HangPrefixLen]
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hangs++
	if b.hangByKey == nil {
		b.hangByKey = make(map[string]*HangRecord)
	}
	k := string(prefix)
	if h, ok := b.hangByKey[k]; ok {
		h.Count++
		return
	}
	if len(b.hangOrder) >= maxHangClasses {
		return
	}
	h := &HangRecord{
		Budget: budget,
		Prefix: append([]byte(nil), prefix...),
		Count:  1,
	}
	b.hangByKey[k] = h
	b.hangOrder = append(b.hangOrder, h)
}

// mergeHangLocked folds one already-detached hang class into the bank's
// hang bank (caller holds b.mu). Counts of a shared prefix class are
// summed; the hang tally itself is merged separately by the caller.
func (b *Bank) mergeHangLocked(h *HangRecord) {
	if b.hangByKey == nil {
		b.hangByKey = make(map[string]*HangRecord)
	}
	k := string(h.Prefix)
	if have, ok := b.hangByKey[k]; ok {
		have.Count += h.Count
		return
	}
	if len(b.hangOrder) >= maxHangClasses {
		return
	}
	b.hangByKey[k] = h
	b.hangOrder = append(b.hangOrder, h)
}

// HangRecords returns the retained hang classes in first-observation
// order, as detached copies.
func (b *Bank) HangRecords() []*HangRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*HangRecord, 0, len(b.hangOrder))
	for _, h := range b.hangOrder {
		cp := *h
		cp.Prefix = append([]byte(nil), h.Prefix...)
		out = append(out, &cp)
	}
	return out
}

// Unique returns the number of unique faults found.
func (b *Bank) Unique() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.byKey)
}

// Hangs returns the number of hanging executions observed.
func (b *Bank) Hangs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hangs
}

// Records returns all unique faults, ordered by first discovery. The
// returned records are copies, detached from the bank's live state, so
// callers may inspect them while executions keep being reported.
func (b *Bank) Records() []*Record {
	b.mu.Lock()
	out := make([]*Record, 0, len(b.byKey))
	for _, r := range b.byKey {
		cp := *r
		out = append(out, &cp)
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].FirstExec < out[j].FirstExec })
	return out
}

// MergeFrom folds another bank's faults into b, deduplicating by fault
// identity: counts of shared faults are summed (keeping the example packet
// and path signature of whichever trigger came first), unseen faults are
// copied in, and hangs are added. It returns how many faults were new to b. Merging the same source
// bank twice double-counts; the shard runner therefore merges worker banks
// into a fresh bank each time it reports.
func (b *Bank) MergeFrom(o *Bank) int {
	recs := o.Records() // snapshot under o's lock, released before taking b's
	hangs := o.Hangs()
	hangRecs := o.HangRecords()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hangs += hangs
	for _, h := range hangRecs {
		b.mergeHangLocked(h)
	}
	added := 0
	for _, r := range recs {
		k := recordKey(r)
		if have, ok := b.byKey[k]; ok {
			have.Count += r.Count
			if r.FirstExec < have.FirstExec {
				// The example packet and path signature describe the
				// first triggering run; they travel with its index.
				have.FirstExec = r.FirstExec
				have.Example = r.Example
				have.PathSig = r.PathSig
			}
			continue
		}
		b.byKey[k] = r // already a detached copy
		added++
	}
	return added
}

// Absorb folds one record received from a sync peer into the bank,
// returning true when its fault identity was new. Unlike MergeFrom it is
// idempotent: re-absorbing a record a reconnecting peer re-sends never
// inflates counts — Count converges to the maximum reported, and the
// example packet and path signature follow the earliest FirstExec. The
// record is copied, so the caller may reuse its buffers.
func (b *Bank) Absorb(r *Record) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := recordKey(r)
	if have, ok := b.byKey[k]; ok {
		if r.Count > have.Count {
			have.Count = r.Count
		}
		if r.FirstExec < have.FirstExec {
			have.FirstExec = r.FirstExec
			have.Example = append([]byte(nil), r.Example...)
			have.PathSig = r.PathSig
		}
		return false
	}
	cp := *r
	cp.Example = append([]byte(nil), r.Example...)
	b.byKey[k] = &cp
	return true
}

// CountByKind tallies unique faults per kind — the "Vulnerability Type /
// Number" columns of Table I.
func (b *Bank) CountByKind() map[mem.FaultKind]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := map[mem.FaultKind]int{}
	for _, r := range b.byKey {
		out[r.Kind]++
	}
	return out
}

// String renders a one-line summary.
func (b *Bank) String() string {
	return fmt.Sprintf("crash.Bank{unique=%d hangs=%d}", b.Unique(), b.Hangs())
}
