// Package crash collects and deduplicates the crashes and hangs a fuzzing
// campaign finds, producing the per-project vulnerability counts of the
// paper's Table I.
//
// Deduplication follows the paper's reporting: Table I counts *unique*
// vulnerabilities, identified by where the fault fired and what kind it was
// (an ASan report site), not by how many inputs reached it.
package crash

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// Record is one unique fault: its identity, an example triggering packet,
// and campaign statistics.
type Record struct {
	Kind      mem.FaultKind
	Site      string
	Example   []byte // first packet observed to trigger the fault
	Count     int    // number of triggering executions
	FirstExec int    // execution index of first trigger
	PathSig   uint64 // coverage signature of the first triggering run
}

// Key returns the deduplication identity of a fault.
func Key(f *mem.Fault) string {
	return string(f.Kind) + "@" + f.Site
}

// Bank accumulates unique crash records across a campaign. Not safe for
// concurrent use; the engine owns it.
type Bank struct {
	byKey map[string]*Record
	hangs int
}

// NewBank returns an empty crash bank.
func NewBank() *Bank {
	return &Bank{byKey: make(map[string]*Record)}
}

// Report records one crashing execution. It returns true when the fault is
// new (a previously unseen unique vulnerability).
func (b *Bank) Report(f *mem.Fault, packet []byte, execIndex int, pathSig uint64) bool {
	k := Key(f)
	if r, ok := b.byKey[k]; ok {
		r.Count++
		return false
	}
	ex := make([]byte, len(packet))
	copy(ex, packet)
	b.byKey[k] = &Record{
		Kind:      f.Kind,
		Site:      f.Site,
		Example:   ex,
		Count:     1,
		FirstExec: execIndex,
		PathSig:   pathSig,
	}
	return true
}

// ReportHang counts a hanging execution. Hangs are tallied but not treated
// as unique vulnerabilities (the paper's Table I lists memory faults only).
func (b *Bank) ReportHang() { b.hangs++ }

// Unique returns the number of unique faults found.
func (b *Bank) Unique() int { return len(b.byKey) }

// Hangs returns the number of hanging executions observed.
func (b *Bank) Hangs() int { return b.hangs }

// Records returns all unique faults, ordered by first discovery.
func (b *Bank) Records() []*Record {
	out := make([]*Record, 0, len(b.byKey))
	for _, r := range b.byKey {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FirstExec < out[j].FirstExec })
	return out
}

// CountByKind tallies unique faults per kind — the "Vulnerability Type /
// Number" columns of Table I.
func (b *Bank) CountByKind() map[mem.FaultKind]int {
	out := map[mem.FaultKind]int{}
	for _, r := range b.byKey {
		out[r.Kind]++
	}
	return out
}

// String renders a one-line summary.
func (b *Bank) String() string {
	return fmt.Sprintf("crash.Bank{unique=%d hangs=%d}", b.Unique(), b.hangs)
}
