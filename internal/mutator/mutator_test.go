package mutator

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/datamodel"
	"repro/internal/rng"
)

func num(width int) *datamodel.Chunk { return datamodel.Num("n", width, 7) }
func blob(size int) *datamodel.Chunk { return datamodel.Bytes("b", size, []byte{1, 2, 3, 4}) }
func vblob(min, max int) *datamodel.Chunk {
	return datamodel.BytesVar("b", min, max, []byte{1, 2, 3, 4})
}

func TestNumberRandomWidth(t *testing.T) {
	r := rng.New(1)
	m := NumberRandom{}
	for _, w := range []int{1, 2, 4, 8} {
		out := m.Mutate(r, num(w), nil, nil)
		if len(out) != w {
			t.Fatalf("width %d: got %d bytes", w, len(out))
		}
	}
}

func TestNumberRandomRespectsLegalMostly(t *testing.T) {
	r := rng.New(2)
	c := datamodel.Num("n", 2, 1).WithLegal(10, 20)
	m := NumberRandom{}
	legal, illegal := 0, 0
	for i := 0; i < 1000; i++ {
		v := decode(m.Mutate(r, c, nil, nil), c)
		if v == 10 || v == 20 {
			legal++
		} else {
			illegal++
		}
	}
	if legal < 700 {
		t.Fatalf("legal draws = %d/1000, expected dominant", legal)
	}
	if illegal == 0 {
		t.Fatal("mutator should occasionally violate the legal set")
	}
}

func TestNumberEdgeCaseTruncated(t *testing.T) {
	r := rng.New(3)
	m := NumberEdgeCase{}
	for i := 0; i < 200; i++ {
		out := m.Mutate(r, num(1), nil, nil)
		if len(out) != 1 {
			t.Fatal("width 1 edge case must be 1 byte")
		}
	}
}

func TestNumberDeltaUsesPrev(t *testing.T) {
	r := rng.New(4)
	m := NumberDeltaFromDefault{}
	c := num(4)
	prev := encode(nil, 1000, c)
	for i := 0; i < 100; i++ {
		v := decode(m.Mutate(r, c, prev, nil), c)
		if v < 1000-16 || v > 1000+16 {
			t.Fatalf("delta mutation out of range: %d", v)
		}
		if v == 1000 {
			t.Fatal("delta must change the value")
		}
	}
}

func TestBlobRandomSizes(t *testing.T) {
	r := rng.New(5)
	m := BlobRandom{}
	for i := 0; i < 100; i++ {
		out := m.Mutate(r, vblob(2, 10), nil, nil)
		if len(out) < 2 || len(out) > 10 {
			t.Fatalf("size %d out of [2,10]", len(out))
		}
	}
	if len(m.Mutate(r, blob(6), nil, nil)) != 6 {
		t.Fatal("fixed blob must keep its size under BlobRandom")
	}
}

func TestStringRandomPrintable(t *testing.T) {
	r := rng.New(6)
	m := BlobRandom{}
	c := datamodel.Str("s", 32, "")
	out := m.Mutate(r, c, nil, nil)
	for _, b := range out {
		if b < '!' || b > '~' {
			t.Fatalf("non-printable byte %02x in string mutation", b)
		}
	}
}

func TestBitFlipChangesSomething(t *testing.T) {
	r := rng.New(7)
	m := BlobBitFlip{}
	prev := []byte{0, 0, 0, 0}
	diff := false
	for i := 0; i < 20; i++ {
		out := m.Mutate(r, blob(4), prev, nil)
		if len(out) != 4 {
			t.Fatalf("bit flip changed length: %d", len(out))
		}
		if !bytes.Equal(out, prev) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("bit flips never changed the payload")
	}
}

func TestBitFlipDoesNotMutateInput(t *testing.T) {
	r := rng.New(8)
	m := BlobBitFlip{}
	prev := []byte{1, 2, 3, 4}
	orig := append([]byte(nil), prev...)
	m.Mutate(r, blob(4), prev, nil)
	if !bytes.Equal(prev, orig) {
		t.Fatal("mutator modified caller's slice")
	}
}

func TestExpandGrows(t *testing.T) {
	r := rng.New(9)
	m := BlobExpand{}
	out := m.Mutate(r, vblob(0, 0), []byte{1, 2, 3}, nil)
	if len(out) <= 3 {
		t.Fatalf("expand produced %d bytes", len(out))
	}
}

func TestExpandRespectsMaxSize(t *testing.T) {
	r := rng.New(10)
	m := BlobExpand{}
	for i := 0; i < 50; i++ {
		out := m.Mutate(r, vblob(0, 12), []byte{1, 2, 3, 4, 5, 6}, nil)
		if len(out) > 12 {
			t.Fatalf("expand exceeded MaxSize: %d", len(out))
		}
	}
}

func TestTruncateShrinks(t *testing.T) {
	r := rng.New(11)
	m := BlobTruncate{}
	for i := 0; i < 50; i++ {
		out := m.Mutate(r, vblob(0, 0), []byte{1, 2, 3, 4, 5}, nil)
		if len(out) >= 5 {
			t.Fatalf("truncate produced %d bytes", len(out))
		}
	}
}

func TestTruncateEmptyPrevAndDefaults(t *testing.T) {
	r := rng.New(12)
	m := BlobTruncate{}
	c := &datamodel.Chunk{Name: "b", Kind: datamodel.Blob, Size: datamodel.Variable}
	if out := m.Mutate(r, c, nil, nil); len(out) != 0 {
		t.Fatalf("truncate of empty default = %d bytes", len(out))
	}
}

func TestSuiteApplicability(t *testing.T) {
	suite := Suite()
	nApplies, bApplies := 0, 0
	for _, m := range suite {
		if m.Applies(num(2)) {
			nApplies++
		}
		if m.Applies(blob(4)) {
			bApplies++
		}
		if m.Applies(datamodel.Blk("x", num(1))) {
			t.Fatalf("%s applies to a block", m.Name())
		}
	}
	if nApplies != 3 || bApplies != 4 {
		t.Fatalf("applicability: numbers %d blobs %d", nApplies, bApplies)
	}
}

func TestPickReturnsApplicable(t *testing.T) {
	r := rng.New(13)
	suite := Suite()
	for i := 0; i < 100; i++ {
		m := Pick(r, suite, num(2))
		if m == nil || !m.Applies(num(2)) {
			t.Fatal("Pick returned inapplicable mutator")
		}
	}
	if Pick(r, suite, datamodel.Blk("x", num(1))) != nil {
		t.Fatal("Pick on block should be nil")
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Suite() {
		if seen[m.Name()] {
			t.Fatalf("duplicate mutator name %s", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(v uint64, w uint8, little bool) bool {
		width := int(w%8) + 1
		c := &datamodel.Chunk{Kind: datamodel.Number, Width: width}
		if little {
			c.Endian = datamodel.Little
		}
		masked := v & mask(width)
		return decode(encode(nil, masked, c), c) == masked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMutatorsDeterministicUnderSeed(t *testing.T) {
	for _, m := range Suite() {
		var c *datamodel.Chunk
		if m.Applies(num(4)) {
			c = num(4)
		} else {
			c = vblob(1, 16)
		}
		a := m.Mutate(rng.New(99), c, []byte{5, 6, 7, 8}, nil)
		b := m.Mutate(rng.New(99), c, []byte{5, 6, 7, 8}, nil)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s not deterministic under fixed seed", m.Name())
		}
	}
}
