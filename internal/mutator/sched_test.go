package mutator

import (
	"testing"

	"repro/internal/datamodel"
	"repro/internal/rng"
)

// TestPickGoldenStream pins Pick's exact RNG consumption and selection
// order: one Intn draw over the applicable count, scanned in suite order.
// The expected sequence was recorded from the pre-scheduler implementation;
// any change to it silently breaks the adaptive-off bit-for-bit
// compatibility guarantee (Config.Adaptive off must replay historical
// campaigns exactly), so a diff here is a compatibility break, not a test
// to update casually.
func TestPickGoldenStream(t *testing.T) {
	want := []string{
		"NumberRandom", "BlobExpand", "NumberDeltaFromDefault", "BlobBitFlip",
		"NumberEdgeCase", "BlobRandom", "NumberEdgeCase", "BlobTruncate",
		"NumberEdgeCase", "BlobBitFlip", "NumberEdgeCase", "BlobBitFlip",
		"NumberEdgeCase", "BlobExpand", "NumberEdgeCase", "BlobExpand",
		"NumberRandom", "BlobRandom", "NumberRandom", "BlobExpand",
		"NumberEdgeCase", "BlobTruncate", "NumberRandom", "BlobTruncate",
	}
	r := rng.New(42)
	suite := Suite()
	for i, name := range want {
		var m Mutator
		if i%2 == 0 {
			m = Pick(r, suite, num(2))
		} else {
			m = Pick(r, suite, vblob(0, 8))
		}
		if m == nil || m.Name() != name {
			got := "<nil>"
			if m != nil {
				got = m.Name()
			}
			t.Fatalf("draw %d: Pick = %s, golden stream has %s — Pick's RNG stream changed", i, got, name)
		}
	}
}

// TestPickWeightedDeterministic: a fixed RNG state yields a fixed pick.
func TestPickWeightedDeterministic(t *testing.T) {
	suite := Suite()
	weights := []uint32{200, 16, 40, 100, 16, 30, 256, 16}
	var first []int
	for trial := 0; trial < 2; trial++ {
		r := rng.New(7)
		var got []int
		for i := 0; i < 200; i++ {
			m, idx := PickWeighted(r, suite, vblob(0, 8), weights)
			if m == nil || idx < 0 || suite[idx] != m {
				t.Fatalf("draw %d: m=%v idx=%d", i, m, idx)
			}
			got = append(got, idx)
		}
		if trial == 0 {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("draw %d: %d vs %d across identical RNG states", i, got[i], first[i])
			}
		}
	}
}

// TestPickWeightedFollowsWeights: a heavily skewed weight table shifts the
// draw distribution accordingly, but the floor-weighted cold operator is
// still drawn — the scheduler's starvation guarantee lives or dies here.
func TestPickWeightedFollowsWeights(t *testing.T) {
	r := rng.New(9)
	suite := Suite()
	c := vblob(0, 8)
	// Weight every applicable blob mutator at the floor except one at
	// floor+span — the live scheduler's most extreme legal table.
	weights := make([]uint32, len(suite))
	hot := -1
	for i, m := range suite {
		if !m.Applies(c) {
			continue
		}
		weights[i] = 16
		if hot < 0 {
			hot = i
			weights[i] = 256
		}
	}
	counts := make(map[int]int)
	const draws = 4000
	for i := 0; i < draws; i++ {
		_, idx := PickWeighted(r, suite, c, weights)
		counts[idx]++
	}
	// hot carries 256 of 304 total weight ≈ 84%; each cold one ≈ 5%.
	if counts[hot] < draws/2 {
		t.Fatalf("hot mutator drawn %d/%d, want the majority", counts[hot], draws)
	}
	for i, m := range suite {
		if !m.Applies(c) || i == hot {
			continue
		}
		if counts[i] == 0 {
			t.Fatalf("floor-weighted mutator %s starved over %d draws", m.Name(), draws)
		}
	}
}

// TestPickWeightedNilUniform: nil weights mean weight 1 everywhere — a
// uniform draw over the applicable set, like Pick (though on a different
// RNG stream).
func TestPickWeightedNilUniform(t *testing.T) {
	r := rng.New(21)
	suite := Suite()
	c := num(2)
	counts := make(map[int]int)
	const draws = 3000
	for i := 0; i < draws; i++ {
		m, idx := PickWeighted(r, suite, c, nil)
		if m == nil || !m.Applies(c) {
			t.Fatal("nil-weights draw returned inapplicable mutator")
		}
		counts[idx]++
	}
	// Three applicable number mutators: each should land near draws/3.
	if len(counts) != 3 {
		t.Fatalf("drew %d distinct mutators, want 3", len(counts))
	}
	for idx, n := range counts {
		if n < draws/6 {
			t.Fatalf("mutator %d drawn %d/%d, far from uniform", idx, n, draws)
		}
	}
}

// TestPickWeightedZeroTotalFallsBack: an all-zero weight table degrades to
// the uniform draw instead of dividing by zero or returning nil.
func TestPickWeightedZeroTotalFallsBack(t *testing.T) {
	r := rng.New(5)
	suite := Suite()
	c := num(2)
	weights := make([]uint32, len(suite))
	seen := make(map[int]bool)
	for i := 0; i < 500; i++ {
		m, idx := PickWeighted(r, suite, c, weights)
		if m == nil || !m.Applies(c) {
			t.Fatal("zero-total draw returned inapplicable mutator")
		}
		seen[idx] = true
	}
	if len(seen) != 3 {
		t.Fatalf("zero-total fallback drew %d distinct mutators, want all 3 applicable", len(seen))
	}
}

// TestPickWeightedInapplicable: a chunk no mutator handles returns
// (nil, -1) and consumes no RNG value.
func TestPickWeightedInapplicable(t *testing.T) {
	r := rng.New(3)
	before := r.Uint64()
	r = rng.New(3)
	m, idx := PickWeighted(r, Suite(), datamodel.Blk("x", num(1)), nil)
	if m != nil || idx != -1 {
		t.Fatalf("block draw = (%v, %d), want (nil, -1)", m, idx)
	}
	if r.Uint64() != before {
		t.Fatal("inapplicable draw consumed an RNG value")
	}
}

// TestPickWeightedPartialWeights: entries past the end of a short weights
// slice default to 1, so a caller may size its table to a prefix of the
// suite without panicking or starving the tail.
func TestPickWeightedPartialWeights(t *testing.T) {
	r := rng.New(31)
	suite := Suite()
	c := vblob(0, 8)
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		m, idx := PickWeighted(r, suite, c, []uint32{1})
		if m == nil || !m.Applies(c) {
			t.Fatal("short-weights draw returned inapplicable mutator")
		}
		seen[idx] = true
	}
	if len(seen) != 4 {
		t.Fatalf("short-weights draw reached %d mutators, want all 4 applicable blobs", len(seen))
	}
}
