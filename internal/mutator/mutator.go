// Package mutator implements the Peach-style per-data-type mutators that
// the GENERATE step of Algorithm 1 draws from. The paper (§II) describes
// three classes: random generation, mutation of the default value, and
// mutation of existing chunks (from user seeds or previously generated
// ones). Each mutator here targets one leaf chunk kind and produces new
// leaf bytes; structure-level decisions (choices, array counts) are made by
// the generation strategies in internal/core.
package mutator

import (
	"repro/internal/datamodel"
	"repro/internal/rng"
)

// Mutator produces a value for one leaf chunk. prev is the chunk's previous
// instantiation (nil when generating from scratch); mutators that need an
// existing value fall back to the default when prev is nil.
type Mutator interface {
	// Name identifies the mutator in logs and ablation reports.
	Name() string
	// Applies reports whether the mutator can handle the chunk.
	Applies(c *datamodel.Chunk) bool
	// Mutate returns new wire bytes for the chunk, allocated from a when
	// possible: on the engine's hot path the returned slice lives only
	// until the arena's next Reset (one generation round), which is the
	// lifetime of the instance tree it is written into — anything that
	// retains longer must copy. A nil arena degrades to plain heap
	// allocation (the datamodel.Arena contract), so standalone use needs
	// no setup. Mutate never writes through prev, which may itself be
	// arena-backed or a read-only corpus alias.
	Mutate(r *rng.RNG, c *datamodel.Chunk, prev []byte, a *datamodel.Arena) []byte
}

// interestingU64 are boundary values mutation-based fuzzers have found
// productive: zero, small counts, sign boundaries, and width maxima.
var interestingU64 = []uint64{
	0, 1, 2, 3, 4, 8, 16, 32, 64, 100, 127, 128, 255, 256,
	512, 1000, 1024, 4096, 32767, 32768, 65535, 65536,
	0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
	0x7FFFFFFFFFFFFFFF, 0x8000000000000000, 0xFFFFFFFFFFFFFFFF,
}

// --- Number mutators ---

// NumberRandom draws a uniform value of the chunk's width; when the chunk
// declares a legal set it usually respects it but occasionally violates it
// deliberately, because illegal opcodes exercise error paths.
type NumberRandom struct{}

// Name implements Mutator.
func (NumberRandom) Name() string { return "NumberRandom" }

// Applies accepts Number chunks.
func (NumberRandom) Applies(c *datamodel.Chunk) bool { return c.Kind == datamodel.Number }

// Mutate implements Mutator.
func (NumberRandom) Mutate(r *rng.RNG, c *datamodel.Chunk, _ []byte, a *datamodel.Arena) []byte {
	var v uint64
	if len(c.Legal) > 0 && !r.Chance(8) {
		v = rng.Pick(r, c.Legal)
	} else {
		v = r.Uint64() & mask(c.Width)
	}
	return encode(a, v, c)
}

// NumberEdgeCase picks one of the interesting boundary values, truncated to
// the chunk's width.
type NumberEdgeCase struct{}

// Name implements Mutator.
func (NumberEdgeCase) Name() string { return "NumberEdgeCase" }

// Applies accepts Number chunks.
func (NumberEdgeCase) Applies(c *datamodel.Chunk) bool { return c.Kind == datamodel.Number }

// Mutate implements Mutator.
func (NumberEdgeCase) Mutate(r *rng.RNG, c *datamodel.Chunk, _ []byte, a *datamodel.Arena) []byte {
	return encode(a, rng.Pick(r, interestingU64)&mask(c.Width), c)
}

// NumberDeltaFromDefault perturbs the default (or previous) value by a small
// signed delta — Peach's "mutation on default value".
type NumberDeltaFromDefault struct{}

// Name implements Mutator.
func (NumberDeltaFromDefault) Name() string { return "NumberDeltaFromDefault" }

// Applies accepts Number chunks.
func (NumberDeltaFromDefault) Applies(c *datamodel.Chunk) bool { return c.Kind == datamodel.Number }

// Mutate implements Mutator.
func (NumberDeltaFromDefault) Mutate(r *rng.RNG, c *datamodel.Chunk, prev []byte, a *datamodel.Arena) []byte {
	base := c.Default
	if prev != nil {
		base = decode(prev, c)
	}
	delta := uint64(r.Range(1, 16))
	if r.Bool() {
		base += delta
	} else {
		base -= delta
	}
	return encode(a, base&mask(c.Width), c)
}

// --- Blob/String mutators ---

// BlobRandom regenerates the payload with random bytes, choosing a size in
// the declared range for variable chunks.
type BlobRandom struct{}

// Name implements Mutator.
func (BlobRandom) Name() string { return "BlobRandom" }

// Applies accepts Blob and String chunks.
func (BlobRandom) Applies(c *datamodel.Chunk) bool {
	return c.Kind == datamodel.Blob || c.Kind == datamodel.String
}

// Mutate implements Mutator.
func (BlobRandom) Mutate(r *rng.RNG, c *datamodel.Chunk, _ []byte, a *datamodel.Arena) []byte {
	n := sizeFor(r, c)
	out := a.Buffer(n)[:n] // every byte is written below
	for i := range out {
		if c.Kind == datamodel.String {
			out[i] = byte('!' + r.Intn(94)) // printable ASCII
		} else {
			out[i] = r.Byte()
		}
	}
	return out
}

// BlobBitFlip flips 1–8 bits of the previous value (or the default).
type BlobBitFlip struct{}

// Name implements Mutator.
func (BlobBitFlip) Name() string { return "BlobBitFlip" }

// Applies accepts Blob and String chunks.
func (BlobBitFlip) Applies(c *datamodel.Chunk) bool {
	return c.Kind == datamodel.Blob || c.Kind == datamodel.String
}

// Mutate implements Mutator.
func (BlobBitFlip) Mutate(r *rng.RNG, c *datamodel.Chunk, prev []byte, a *datamodel.Arena) []byte {
	base := prev
	if len(base) == 0 {
		base = defaultBytes(c, a)
	}
	if len(base) == 0 {
		return nil
	}
	out := append(a.Buffer(len(base)), base...)
	for k := r.Range(1, 8); k > 0; k-- {
		i := r.Intn(len(out) * 8)
		out[i/8] ^= 1 << (i % 8)
	}
	return out
}

// BlobExpand grows the payload, duplicating a random run — probes length
// handling. Fixed-size chunks are resized anyway: the engine's fixup pass
// repairs size relations, and over-long fixed fields are how real packet
// bugs (Table I's overflow) get reached.
type BlobExpand struct{}

// Name implements Mutator.
func (BlobExpand) Name() string { return "BlobExpand" }

// Applies accepts Blob and String chunks.
func (BlobExpand) Applies(c *datamodel.Chunk) bool {
	return c.Kind == datamodel.Blob || c.Kind == datamodel.String
}

// Mutate implements Mutator.
func (BlobExpand) Mutate(r *rng.RNG, c *datamodel.Chunk, prev []byte, a *datamodel.Arena) []byte {
	base := prev
	if len(base) == 0 {
		base = defaultBytes(c, a)
	}
	if len(base) == 0 {
		base = zeroByte
	}
	// Same RNG draw order as always (times, then the segment bounds); the
	// output buffer is sized after the segment is known so the appends
	// below stay inside one arena allocation.
	times := r.Range(2, 8)
	seg := base
	if len(base) > 4 {
		s := r.Intn(len(base) - 1)
		e := r.Range(s+1, len(base))
		seg = base[s:e]
	}
	out := append(a.Buffer(len(base)+times*len(seg)), base...)
	for i := 0; i < times; i++ {
		out = append(out, seg...)
	}
	if c.MaxSize > 0 && len(out) > c.MaxSize {
		out = out[:c.MaxSize]
	}
	return out
}

// BlobTruncate shrinks the payload — probes missing-field handling, the
// class of defect behind the paper's Listing 1 (a field "malformed or
// missing").
type BlobTruncate struct{}

// Name implements Mutator.
func (BlobTruncate) Name() string { return "BlobTruncate" }

// Applies accepts Blob and String chunks.
func (BlobTruncate) Applies(c *datamodel.Chunk) bool {
	return c.Kind == datamodel.Blob || c.Kind == datamodel.String
}

// Mutate implements Mutator.
func (BlobTruncate) Mutate(r *rng.RNG, c *datamodel.Chunk, prev []byte, a *datamodel.Arena) []byte {
	base := prev
	if len(base) == 0 {
		base = defaultBytes(c, a)
	}
	if len(base) == 0 {
		return nil
	}
	keep := r.Intn(len(base))
	return append(a.Buffer(keep), base[:keep]...)
}

// --- Suite ---

// Suite is the default mutator set, mirroring Peach's built-in Mutators.
func Suite() []Mutator {
	return []Mutator{
		NumberRandom{},
		NumberEdgeCase{},
		NumberDeltaFromDefault{},
		BlobRandom{},
		BlobBitFlip{},
		BlobExpand{},
		BlobTruncate{},
	}
}

// Pick selects a uniformly random mutator applicable to the chunk, or nil
// when none applies (interior chunks). The applicable set is counted and
// indexed in place rather than materialized, so Pick is allocation-free on
// the per-leaf hot path; the single Intn draw over the same count keeps the
// RNG stream identical to the materializing implementation.
//
//peachstar:hotpath
func Pick(r *rng.RNG, suite []Mutator, c *datamodel.Chunk) Mutator {
	apt := 0
	for _, m := range suite {
		if m.Applies(c) {
			apt++
		}
	}
	if apt == 0 {
		return nil
	}
	k := r.Intn(apt)
	for _, m := range suite {
		if !m.Applies(c) {
			continue
		}
		if k == 0 {
			return m
		}
		k--
	}
	return nil // unreachable
}

// PickWeighted selects a mutator applicable to the chunk with probability
// proportional to its weight, returning it with its suite index, or
// (nil, -1) when none applies. weights is indexed parallel to suite;
// entries for inapplicable mutators are ignored. A nil (or short) weights
// slice treats missing entries as weight 1, so PickWeighted(r, suite, c,
// nil) is a uniform draw like Pick — but note it draws from the RNG
// differently (one Uint64 over the weight total rather than one Intn over
// the applicable count), so the two are distinct streams: the engine's
// adaptive-off path must keep calling Pick.
//
// Like Pick, the applicable set is scanned in place and exactly one RNG
// value is consumed per call with at least one applicable mutator, so the
// choice is deterministic for a fixed RNG state and allocation-free.
// Callers enforce the scheduler's starvation floor by never passing a zero
// weight; a weight of 0 is tolerated (the mutator is simply never drawn)
// unless every applicable weight is 0, which falls back to a uniform draw
// over the applicable set so the call still consumes one value and returns
// a mutator.
//
//peachstar:hotpath
func PickWeighted(r *rng.RNG, suite []Mutator, c *datamodel.Chunk, weights []uint32) (Mutator, int) {
	var total uint64
	apt := 0
	for i, m := range suite {
		if !m.Applies(c) {
			continue
		}
		apt++
		total += uint64(weightAt(weights, i))
	}
	if apt == 0 {
		return nil, -1
	}
	if total == 0 {
		// All applicable weights zero: degrade to the uniform draw.
		k := r.Intn(apt)
		for i, m := range suite {
			if !m.Applies(c) {
				continue
			}
			if k == 0 {
				return m, i
			}
			k--
		}
	}
	k := r.Uint64() % total
	for i, m := range suite {
		if !m.Applies(c) {
			continue
		}
		w := uint64(weightAt(weights, i))
		if k < w {
			return m, i
		}
		k -= w
	}
	return nil, -1 // unreachable: k < total by construction
}

// weightAt reads the weight of mutator i, defaulting to 1 past the end of
// (or without) a weights slice.
func weightAt(weights []uint32, i int) uint32 {
	if i >= len(weights) {
		return 1
	}
	return weights[i]
}

// --- helpers ---

func mask(width int) uint64 {
	if width >= 8 {
		return ^uint64(0)
	}
	return (1 << (8 * width)) - 1
}

// zeroByte is the shared one-byte fallback payload for empty expandable
// chunks; mutators never write through their base, so sharing is safe.
var zeroByte = []byte{0}

// encode renders v at the chunk's width and endianness into an
// arena-backed buffer (every byte is overwritten, so the buffer needs no
// zeroing).
func encode(a *datamodel.Arena, v uint64, c *datamodel.Chunk) []byte {
	out := a.Buffer(c.Width)[:c.Width]
	if c.Endian == datamodel.Big {
		for i := c.Width - 1; i >= 0; i-- {
			out[i] = byte(v)
			v >>= 8
		}
	} else {
		for i := 0; i < c.Width; i++ {
			out[i] = byte(v)
			v >>= 8
		}
	}
	return out
}

func decode(data []byte, c *datamodel.Chunk) uint64 {
	var v uint64
	if c.Endian == datamodel.Big {
		for _, b := range data {
			v = v<<8 | uint64(b)
		}
	} else {
		for i := len(data) - 1; i >= 0; i-- {
			v = v<<8 | uint64(data[i])
		}
	}
	return v
}

func sizeFor(r *rng.RNG, c *datamodel.Chunk) int {
	if c.Size != datamodel.Variable {
		return c.Size
	}
	max := c.MaxSize
	if max <= 0 {
		max = c.MinSize + 32
	}
	return r.Range(c.MinSize, max)
}

// defaultBytes is the chunk's fallback base value: its declared default,
// or an arena-backed zero payload of its declared size. Callers treat the
// result as read-only.
func defaultBytes(c *datamodel.Chunk, a *datamodel.Arena) []byte {
	if len(c.DefaultBytes) > 0 {
		return c.DefaultBytes
	}
	if c.Size > 0 {
		return a.Bytes(c.Size)
	}
	if c.MinSize > 0 {
		return a.Bytes(c.MinSize)
	}
	return nil
}
