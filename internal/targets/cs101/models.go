package cs101

import "repro/internal/datamodel"

// Models returns the CS101 Pit-equivalent: fixed link frames plus one
// variable-frame model per ASDU type. The variable frame carries two
// integrity constraints the fixup engine maintains — the duplicated length
// octets (both size-of relations over the body) and the modular-sum
// checksum — exactly the constraint shapes §IV-D's File Fixup exists for.
func (s *Slave) Models() []*datamodel.Model {
	return CS101Models()
}

// fixedFrameModel builds the 0x10 link-control frame for one function code.
func fixedFrameModel(name string, fc uint64) *datamodel.Model {
	return datamodel.NewModel(name,
		datamodel.Num("start", 1, 0x10).AsToken(),
		datamodel.Num("ctrl", 1, 0x40|fc).AsToken(),
		datamodel.Num("addr", 1, 1),
		datamodel.Num("checksum", 1, 0).WithFix(datamodel.Sum8, "ctrl", "addr"),
		datamodel.Num("stop", 1, 0x16).AsToken(),
	)
}

// varFrame builds the 0x68 variable frame around ASDU chunks.
func varFrame(name string, typeID uint64, asduRest ...*datamodel.Chunk) *datamodel.Model {
	asdu := append([]*datamodel.Chunk{
		datamodel.Num("typeId", 1, typeID).AsToken(),
		datamodel.Num("vsq", 1, 1),
		datamodel.Num("cot", 1, 6),
		datamodel.Num("oa", 1, 0),
		datamodel.NumLE("commonAddr", 2, 1),
	}, asduRest...)
	body := datamodel.Blk("body",
		datamodel.Num("ctrl", 1, 0x73),
		datamodel.Num("linkAddr", 1, 1),
		datamodel.Blk("asdu", asdu...),
	)
	return datamodel.NewModel(name,
		datamodel.Num("start1", 1, 0x68).AsToken(),
		datamodel.Num("len1", 1, 0).WithRel(datamodel.SizeOf, "body", 0),
		datamodel.Num("len2", 1, 0).WithRel(datamodel.SizeOf, "body", 0),
		datamodel.Num("start2", 1, 0x68).AsToken(),
		body,
		datamodel.Num("checksum", 1, 0).WithFix(datamodel.Sum8, "body"),
		datamodel.Num("stop", 1, 0x16).AsToken(),
	)
}

// CS101Models builds the model set without a slave instance.
//
// The ASDU header in these models is 6 bytes (type, VSQ, COT, OA, CA lo,
// CA hi): the profile with a one-byte originator address, as lib60870's
// CS101 examples configure it. The decoder indexes COT at offset 2 and CA
// at offsets 4-5 with no length verification; truncating mutations shrink
// the header below those offsets, which is the road to the seeded
// getCOT/getCA faults.
func CS101Models() []*datamodel.Model {
	return []*datamodel.Model{
		// Coarse-grained variable frame: the whole ASDU as one chunk.
		// The paper notes coarse chunk information is enough (§V-A);
		// this model is also what lets truncation mutations produce
		// ASDUs shorter than the 6-byte header, the precondition of
		// the seeded getCOT/getCA faults.
		datamodel.NewModel("RawVariableFrame",
			datamodel.Num("start1", 1, 0x68).AsToken(),
			datamodel.Num("len1", 1, 0).WithRel(datamodel.SizeOf, "body", 0),
			datamodel.Num("len2", 1, 0).WithRel(datamodel.SizeOf, "body", 0),
			datamodel.Num("start2", 1, 0x68).AsToken(),
			datamodel.Blk("body",
				datamodel.Num("ctrl", 1, 0x73),
				datamodel.Num("linkAddr", 1, 1),
				datamodel.BytesVar("asdu", 0, 44, []byte{typeMSpNa, 1, 6, 0, 1, 0}),
			),
			datamodel.Num("checksum", 1, 0).WithFix(datamodel.Sum8, "body"),
			datamodel.Num("stop", 1, 0x16).AsToken(),
		),
		fixedFrameModel("ResetRemoteLink", fcResetRemoteLink),
		fixedFrameModel("TestLink", fcTestLink),
		fixedFrameModel("RequestStatus", fcReqStatus),
		fixedFrameModel("RequestClass2", fcReqClass2),
		varFrame("SinglePointInfo", typeMSpNa,
			datamodel.BytesVar("objects", 0, 32, []byte{0x01, 0x00, 0x00, 0x01}),
		),
		varFrame("MeasuredScaled", typeMMeNb,
			datamodel.BytesVar("objects", 0, 36, []byte{0x02, 0x00, 0x00, 0x34, 0x12, 0x00}),
		),
		varFrame("SingleCommand", typeCScNa,
			datamodel.BytesVar("objects", 0, 16, []byte{0x03, 0x00, 0x00, 0x01}),
		),
		varFrame("SetpointScaled", typeCSeNb,
			datamodel.BytesVar("objects", 0, 36, []byte{0x04, 0x00, 0x00, 0x64, 0x00, 0x00}),
		),
		varFrame("Interrogation", typeCIcNa,
			datamodel.BytesVar("objects", 0, 16, []byte{0x00, 0x00, 0x00, 0x14}),
		),
		varFrame("Bitstring32", typeMBoNa,
			datamodel.BytesVar("objects", 0, 40, []byte{0x05, 0x00, 0x00, 0xEF, 0xBE, 0xAD, 0xDE, 0x00}),
		),
		varFrame("DoubleCommand", typeCDcNa,
			datamodel.BytesVar("objects", 0, 16, []byte{0x06, 0x00, 0x00, 0x02}),
		),
		varFrame("SetpointNormalized", typeCSeNa,
			datamodel.BytesVar("objects", 0, 36, []byte{0x07, 0x00, 0x00, 0x00, 0x40, 0x00}),
		),
		varFrame("ParameterActivation", typePAcNa,
			datamodel.BytesVar("objects", 0, 16, []byte{0x08, 0x00, 0x00, 0x01}),
		),
	}
}
