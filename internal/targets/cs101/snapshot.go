package cs101

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
)

// This file is the IEC 60870-5-101 target's side of the campaign-checkpoint
// seam (sandbox.StateCheckpointer): link state, the frame-count bit, the
// point and value banks, and the extended-type banks. Signed values are
// stored as their unsigned bit patterns.

// SnapshotState implements sandbox.StateCheckpointer.
func (s *Slave) SnapshotState(w *checkpoint.Writer) {
	w.Bool(s.linkReset)
	w.Bool(s.fcb)
	for i := range s.points {
		w.Bool(s.points[i])
	}
	for i := range s.scaled {
		w.Uvarint(uint64(uint16(s.scaled[i])))
	}
	for i := range s.setpoints {
		w.Uvarint(uint64(uint16(s.setpoints[i])))
	}
	w.Uvarint(uint64(s.lastCOT))
	w.Blob(s.bitext.doublePoints[:])
	for i := range s.bitext.normalized {
		w.Uvarint(uint64(uint16(s.bitext.normalized[i])))
	}
	for i := range s.bitext.bitstrings {
		w.Uvarint(uint64(s.bitext.bitstrings[i]))
	}
	for i := range s.bitext.paramsActive {
		w.Bool(s.bitext.paramsActive[i])
	}
}

// RestoreState implements sandbox.StateCheckpointer.
func (s *Slave) RestoreState(r *checkpoint.Reader) error {
	s.linkReset = r.Bool()
	s.fcb = r.Bool()
	for i := range s.points {
		s.points[i] = r.Bool()
	}
	for i := range s.scaled {
		s.scaled[i] = int16(readBits16(r, "scaled value"))
	}
	for i := range s.setpoints {
		s.setpoints[i] = int16(readBits16(r, "setpoint"))
	}
	cot := r.Uvarint()
	if r.Err() == nil && cot > 0xff {
		return fmt.Errorf("cs101: cause of transmission %d out of range", cot)
	}
	s.lastCOT = byte(cot)
	dp := r.Blob()
	if r.Err() != nil {
		return r.Err()
	}
	if len(dp) != len(s.bitext.doublePoints) {
		return fmt.Errorf("cs101: %d double points, bank holds %d", len(dp), len(s.bitext.doublePoints))
	}
	copy(s.bitext.doublePoints[:], dp)
	for i := range s.bitext.normalized {
		s.bitext.normalized[i] = int16(readBits16(r, "normalized value"))
	}
	for i := range s.bitext.bitstrings {
		b := r.Uvarint()
		if r.Err() == nil && b > math.MaxUint32 {
			return fmt.Errorf("cs101: bitstring %#x out of range", b)
		}
		s.bitext.bitstrings[i] = uint32(b)
	}
	for i := range s.bitext.paramsActive {
		s.bitext.paramsActive[i] = r.Bool()
	}
	return r.Err()
}

// readBits16 reads one uvarint pinned to 16 bits of payload.
func readBits16(r *checkpoint.Reader, what string) uint16 {
	v := r.Uvarint()
	if r.Err() == nil && v > 0xffff {
		r.Fail(fmt.Errorf("cs101: %s %d out of range", what, v))
		return 0
	}
	return uint16(v)
}
