// Package cs101 reimplements the packet-processing core of lib60870
// (mz-automation) — the IEC 60870-5-101 balanced link layer plus the CS101
// ASDU layer — as an instrumented fuzzing target (paper §V-A, Fig. 4(d),
// Table I).
//
// CS101 frames come in two shapes: fixed-length frames (0x10 start) for
// link control, and variable-length frames (0x68 L L 0x68) carrying an
// ASDU, both closed by a modular-sum checksum and the 0x16 stop byte.
//
// Seeded vulnerabilities (matching Table I's lib60870 row — 3 SEGV):
//
//  1. CS101_ASDU_getCOT reads asdu[2] without verifying the ASDU length —
//     the literal bug of the paper's Listing 1/2, reproduced as an
//     unchecked slice index (a native Go fault the sandbox classifies as
//     SEGV, matching the ASan report).
//  2. CS101_ASDU_getCA reads the two common-address octets without a
//     length check, reachable when the header is truncated one field
//     later than (1).
//  3. The C_SE_NB (set-point command, scaled) element decoder trusts the
//     VSQ object count and reads past a short information-object section.
package cs101

import (
	"repro/internal/coverage"
	"repro/internal/targets"
)

// ASDU type identifiers decoded by the slave.
const (
	typeMSpNa = 1   // single point information
	typeMMeNb = 11  // measured value, scaled
	typeCScNa = 45  // single command
	typeCSeNb = 49  // set-point command, scaled value
	typeCIcNa = 100 // general interrogation
)

// Link function codes (fixed frames, primary to secondary).
const (
	fcResetRemoteLink = 0
	fcTestLink        = 2
	fcReqStatus       = 9
	fcReqClass1       = 10
	fcReqClass2       = 11
)

// Slave is the instrumented lib60870 CS101 slave core.
type Slave struct {
	id []coverage.BlockID //peachstar:nosnap immutable block identity wired at construction

	linkReset bool
	fcb       bool // frame count bit tracking
	points    [64]bool
	scaled    [64]int16
	setpoints [64]int16
	lastCOT   byte
	bitext    extendedState
}

// New returns a fresh slave with the link not yet reset.
func New() *Slave {
	return &Slave{id: coverage.Blocks("lib60870", 96)}
}

// Name implements targets.Target.
func (s *Slave) Name() string { return "lib60870" }

func (s *Slave) hit(tr *coverage.Tracer, n int) { tr.Hit(s.id[n]) }

// Handle implements targets.Target: link-layer framing, then ASDU handling
// for variable frames.
func (s *Slave) Handle(tr *coverage.Tracer, pkt []byte) {
	s.hit(tr, 0)
	if len(pkt) == 0 {
		s.hit(tr, 1)
		return
	}
	switch pkt[0] {
	case 0x10:
		s.hit(tr, 2)
		s.fixedFrame(tr, pkt)
	case 0x68:
		s.hit(tr, 3)
		s.variableFrame(tr, pkt)
	default:
		s.hit(tr, 4)
	}
}

// fixedFrame parses 0x10 | control | address | checksum | 0x16.
func (s *Slave) fixedFrame(tr *coverage.Tracer, pkt []byte) {
	if len(pkt) != 5 {
		s.hit(tr, 5)
		return
	}
	if pkt[4] != 0x16 {
		s.hit(tr, 6)
		return
	}
	if pkt[3] != pkt[1]+pkt[2] {
		s.hit(tr, 7)
		return
	}
	ctrl := pkt[1]
	fc := ctrl & 0x0F
	switch fc {
	case fcResetRemoteLink:
		s.hit(tr, 8)
		s.linkReset = true
		s.fcb = false
	case fcTestLink:
		s.hit(tr, 9)
	case fcReqStatus:
		s.hit(tr, 10)
	case fcReqClass1, fcReqClass2:
		if !s.linkReset {
			s.hit(tr, 11)
			return
		}
		s.hit(tr, 12)
	default:
		s.hit(tr, 13)
	}
}

// variableFrame parses 0x68 L L 0x68 | control | address | ASDU | ck | 0x16.
func (s *Slave) variableFrame(tr *coverage.Tracer, pkt []byte) {
	if len(pkt) < 6 {
		s.hit(tr, 14)
		return
	}
	l1, l2 := int(pkt[1]), int(pkt[2])
	if l1 != l2 || pkt[3] != 0x68 {
		s.hit(tr, 15)
		return
	}
	// L counts control + address + ASDU.
	if len(pkt) != 4+l1+2 {
		s.hit(tr, 16)
		return
	}
	body := pkt[4 : 4+l1]
	ck := pkt[4+l1]
	if pkt[5+l1] != 0x16 {
		s.hit(tr, 17)
		return
	}
	var sum byte
	for _, b := range body {
		sum += b
	}
	if sum != ck {
		s.hit(tr, 18)
		return
	}
	if len(body) < 2 {
		s.hit(tr, 19)
		return
	}
	if !s.linkReset {
		s.hit(tr, 20)
		return
	}
	s.hit(tr, 21)
	s.handleASDU(tr, body[2:])
}

// getCOT is CS101_ASDU_getCOT from the paper's Listing 1, defect included:
// the cause-of-transmission octet is read without verifying that the ASDU
// is long enough. A truncated ASDU faults here (Listing 2's SEGV).
func getCOT(asdu []byte) byte {
	// BUG(seeded, Table I lib60870 SEGV #1): no length verification.
	return asdu[2] & 0x3F
}

// getCA is CS101_ASDU_getCA, with the sibling defect one field later: the
// two common-address octets are read unchecked.
func getCA(asdu []byte) uint16 {
	// BUG(seeded, Table I lib60870 SEGV #2): no length verification.
	return uint16(asdu[4]) | uint16(asdu[5])<<8
}

// handleASDU decodes the ASDU header and dispatches per type id, following
// lib60870's CS101_ASDU_createFromBuffer + handler layering.
func (s *Slave) handleASDU(tr *coverage.Tracer, asdu []byte) {
	if len(asdu) == 0 {
		s.hit(tr, 22)
		return
	}
	typeID := asdu[0]
	// Unknown type ids are rejected before header decoding — so the
	// unchecked reads below are only reachable through plausible ASDUs,
	// like the real bug.
	known := map[byte]bool{
		typeMSpNa: true, typeMMeNb: true, typeCScNa: true,
		typeCSeNb: true, typeCIcNa: true, typeMBoNa: true,
		typeCDcNa: true, typeCSeNa: true, typePAcNa: true,
	}
	if !known[typeID] {
		s.hit(tr, 23)
		return
	}
	s.hit(tr, 24)
	cot := getCOT(asdu) // faults on len < 3
	ca := getCA(asdu)   // faults on len < 6
	s.lastCOT = cot
	if ca == 0 {
		s.hit(tr, 25)
		return
	}
	if cot == 0 || cot > 47 {
		s.hit(tr, 26)
		return
	}
	vsq := asdu[1]
	n := int(vsq & 0x7F)
	body := asdu[6:]
	switch typeID {
	case typeMSpNa:
		s.hit(tr, 27)
		s.decodePoints(tr, body, n)
	case typeMMeNb:
		s.hit(tr, 28)
		s.decodeScaled(tr, body, n)
	case typeCScNa:
		s.hit(tr, 29)
		s.singleCommand(tr, body, cot)
	case typeCSeNb:
		s.hit(tr, 30)
		s.setpointScaled(tr, body, n, cot)
	case typeCIcNa:
		s.hit(tr, 31)
		s.interrogation(tr, body, cot)
	default:
		s.dispatchExtended(tr, typeID, body, n, cot)
	}
}

func ioa(b []byte) int { return int(b[0]) | int(b[1])<<8 | int(b[2])<<16 }

// decodePoints parses single-point objects (IOA + SIQ), bounds-checked —
// this path is sound in lib60870.
func (s *Slave) decodePoints(tr *coverage.Tracer, body []byte, n int) {
	if len(body) < 4*n {
		s.hit(tr, 32)
		return
	}
	for i := 0; i < n; i++ {
		obj := body[4*i:]
		a := ioa(obj)
		if a < len(s.points) {
			s.hit(tr, 33)
			s.points[a] = obj[3]&1 != 0
		} else {
			s.hit(tr, 34)
		}
	}
}

// decodeScaled parses measured scaled values (IOA + value + QDS), also
// bounds-checked.
func (s *Slave) decodeScaled(tr *coverage.Tracer, body []byte, n int) {
	if len(body) < 6*n {
		s.hit(tr, 35)
		return
	}
	for i := 0; i < n; i++ {
		obj := body[6*i:]
		a := ioa(obj)
		v := int16(uint16(obj[3]) | uint16(obj[4])<<8)
		if a < len(s.scaled) {
			s.hit(tr, 36)
			s.scaled[a] = v
		}
	}
}

// singleCommand executes C_SC_NA commands.
func (s *Slave) singleCommand(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 4 {
		s.hit(tr, 37)
		return
	}
	if cot != 6 {
		s.hit(tr, 38)
		return
	}
	a := ioa(body)
	if a >= len(s.points) {
		s.hit(tr, 39)
		return
	}
	s.hit(tr, 40)
	s.points[a] = body[3]&1 != 0
}

// setpointScaled decodes C_SE_NB set-point commands. The element loop
// trusts the VSQ count — the third seeded fault.
func (s *Slave) setpointScaled(tr *coverage.Tracer, body []byte, n int, cot byte) {
	if cot != 6 {
		s.hit(tr, 41)
		return
	}
	s.hit(tr, 42)
	for i := 0; i < n; i++ {
		// BUG(seeded, Table I lib60870 SEGV #3): no bounds check
		// against len(body); a VSQ count larger than the carried
		// objects walks off the frame.
		obj := body[6*i : 6*i+6]
		a := ioa(obj)
		v := int16(uint16(obj[3]) | uint16(obj[4])<<8)
		qos := obj[5]
		if qos&0x80 != 0 { // select
			s.hit(tr, 43)
			continue
		}
		if a < len(s.setpoints) {
			s.hit(tr, 44)
			s.setpoints[a] = v
		}
	}
}

// interrogation handles C_IC_NA.
func (s *Slave) interrogation(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 4 {
		s.hit(tr, 45)
		return
	}
	if cot != 6 {
		s.hit(tr, 46)
		return
	}
	if body[3] == 20 {
		s.hit(tr, 47)
	} else {
		s.hit(tr, 48)
	}
}

// LinkReset reports link state (tests use it).
func (s *Slave) LinkReset() bool { return s.linkReset }

// LastCOT returns the last accepted cause of transmission (tests use it).
func (s *Slave) LastCOT() byte { return s.lastCOT }

func init() {
	targets.Register("lib60870", func() targets.Target { return New() })
}
