package cs101

import "repro/internal/coverage"

// Extended ASDU types: double commands, normalized set-points, bit strings
// and parameter activation — the remainder of lib60870's CS101 slave
// surface. All extended decoders are bounds-checked; the three Table I
// faults stay where cs101.go seeds them.
const (
	typeMBoNa = 7   // M_BO_NA_1 bitstring of 32 bit
	typeCDcNa = 46  // C_DC_NA_1 double command
	typeCSeNa = 48  // C_SE_NA_1 set-point command, normalized
	typePAcNa = 113 // P_AC_NA_1 parameter activation
)

// extendedState holds the banks served by the extended types.
type extendedState struct {
	doublePoints [64]byte
	normalized   [64]int16
	bitstrings   [32]uint32
	paramsActive [16]bool
}

// dispatchExtended decodes the extended type ids; returns false when the
// type id is not handled here.
func (s *Slave) dispatchExtended(tr *coverage.Tracer, typeID byte, body []byte, n int, cot byte) bool {
	switch typeID {
	case typeMBoNa:
		s.hit(tr, 60)
		s.decodeBitstrings(tr, body, n)
	case typeCDcNa:
		s.hit(tr, 61)
		s.doubleCommand(tr, body, cot)
	case typeCSeNa:
		s.hit(tr, 62)
		s.setpointNormalized(tr, body, cot)
	case typePAcNa:
		s.hit(tr, 63)
		s.parameterActivation(tr, body, cot)
	default:
		return false
	}
	return true
}

// decodeBitstrings parses M_BO_NA_1: IOA + 4-byte bitstring + QDS.
func (s *Slave) decodeBitstrings(tr *coverage.Tracer, body []byte, n int) {
	const objLen = 8
	if len(body) < objLen*n {
		s.hit(tr, 64)
		return
	}
	for i := 0; i < n; i++ {
		obj := body[objLen*i:]
		a := ioa(obj)
		if a >= len(s.bitext.bitstrings) {
			s.hit(tr, 65)
			continue
		}
		s.hit(tr, 66)
		s.bitext.bitstrings[a] = uint32(obj[3]) | uint32(obj[4])<<8 |
			uint32(obj[5])<<16 | uint32(obj[6])<<24
	}
}

// doubleCommand executes C_DC_NA_1: DCS 1 = off, 2 = on.
func (s *Slave) doubleCommand(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 4 {
		s.hit(tr, 67)
		return
	}
	if cot != 6 {
		s.hit(tr, 68)
		return
	}
	a := ioa(body)
	dcs := body[3] & 0x03
	if a >= len(s.bitext.doublePoints) || dcs == 0 || dcs == 3 {
		s.hit(tr, 69)
		return
	}
	if body[3]&0x80 != 0 { // select
		s.hit(tr, 70)
		return
	}
	s.hit(tr, 71)
	s.bitext.doublePoints[a] = dcs
}

// setpointNormalized executes C_SE_NA_1: a 16-bit normalized value with a
// qualifier-of-set-point octet. Unlike the seeded scaled variant this
// decoder is bounds-checked.
func (s *Slave) setpointNormalized(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 6 {
		s.hit(tr, 72)
		return
	}
	if cot != 6 {
		s.hit(tr, 73)
		return
	}
	a := ioa(body)
	if a >= len(s.bitext.normalized) {
		s.hit(tr, 74)
		return
	}
	if body[5]&0x80 != 0 { // select
		s.hit(tr, 75)
		return
	}
	s.hit(tr, 76)
	s.bitext.normalized[a] = int16(uint16(body[3]) | uint16(body[4])<<8)
}

// parameterActivation executes P_AC_NA_1: QPA 1 activates, 2 deactivates
// the previously loaded parameter of the addressed object.
func (s *Slave) parameterActivation(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 4 {
		s.hit(tr, 77)
		return
	}
	if cot != 6 && cot != 8 {
		s.hit(tr, 78)
		return
	}
	a := ioa(body)
	qpa := body[3]
	if a >= len(s.bitext.paramsActive) {
		s.hit(tr, 79)
		return
	}
	switch qpa {
	case 1:
		s.hit(tr, 80)
		s.bitext.paramsActive[a] = true
	case 2:
		s.hit(tr, 81)
		s.bitext.paramsActive[a] = false
	default:
		s.hit(tr, 82)
	}
}
