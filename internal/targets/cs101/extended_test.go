package cs101

import (
	"testing"

	"repro/internal/sandbox"
)

func TestBitstrings(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	asdu := []byte{typeMBoNa, 1, 3, 0, 1, 0, 0x05, 0x00, 0x00, 0xEF, 0xBE, 0xAD, 0xDE, 0x00}
	if res := r.Run(varFrameRaw(asdu)); res.Outcome != sandbox.OK {
		t.Fatalf("bitstring crashed: %v", res.Fault)
	}
	if s.bitext.bitstrings[5] != 0xDEADBEEF {
		t.Fatalf("bitstrings[5] = %08x", s.bitext.bitstrings[5])
	}
	// Count beyond body: checked path, no crash.
	asdu = []byte{typeMBoNa, 9, 3, 0, 1, 0, 0x05, 0x00, 0x00}
	if res := r.Run(varFrameRaw(asdu)); res.Outcome != sandbox.OK {
		t.Fatalf("short bitstring crashed: %v", res.Fault)
	}
}

func TestDoubleCommandCS101(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	asdu := []byte{typeCDcNa, 1, 6, 0, 1, 0, 0x06, 0x00, 0x00, 0x02}
	r.Run(varFrameRaw(asdu))
	if s.bitext.doublePoints[6] != 2 {
		t.Fatal("double command not executed")
	}
	// Invalid DCS 3 and select bit both refuse.
	r.Run(varFrameRaw([]byte{typeCDcNa, 1, 6, 0, 1, 0, 0x07, 0x00, 0x00, 0x03}))
	r.Run(varFrameRaw([]byte{typeCDcNa, 1, 6, 0, 1, 0, 0x08, 0x00, 0x00, 0x81}))
	if s.bitext.doublePoints[7] != 0 || s.bitext.doublePoints[8] != 0 {
		t.Fatal("invalid double command executed")
	}
}

func TestSetpointNormalized(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	// value 0x4000, QOS execute.
	asdu := []byte{typeCSeNa, 1, 6, 0, 1, 0, 0x07, 0x00, 0x00, 0x00, 0x40, 0x00}
	if res := r.Run(varFrameRaw(asdu)); res.Outcome != sandbox.OK {
		t.Fatalf("normalized setpoint crashed: %v", res.Fault)
	}
	if s.bitext.normalized[7] != 0x4000 {
		t.Fatalf("normalized[7] = %04x", s.bitext.normalized[7])
	}
	// Unlike the seeded scaled variant, truncation here is SAFE.
	asdu = []byte{typeCSeNa, 5, 6, 0, 1, 0, 0x07, 0x00, 0x00}
	if res := r.Run(varFrameRaw(asdu)); res.Outcome != sandbox.OK {
		t.Fatalf("short normalized setpoint crashed: %v", res.Fault)
	}
}

func TestParameterActivation(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	r.Run(varFrameRaw([]byte{typePAcNa, 1, 6, 0, 1, 0, 0x08, 0x00, 0x00, 0x01}))
	if !s.bitext.paramsActive[8] {
		t.Fatal("parameter not activated")
	}
	r.Run(varFrameRaw([]byte{typePAcNa, 1, 8, 0, 1, 0, 0x08, 0x00, 0x00, 0x02}))
	if s.bitext.paramsActive[8] {
		t.Fatal("parameter not deactivated")
	}
	// Unknown QPA: no state change, distinct branch.
	r.Run(varFrameRaw([]byte{typePAcNa, 1, 6, 0, 1, 0, 0x09, 0x00, 0x00, 0x07}))
	if s.bitext.paramsActive[9] {
		t.Fatal("unknown QPA executed")
	}
}

func TestExtendedModelsSelfConsistent(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	for _, m := range CS101Models() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
		if res := r.Run(pkt); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
}
