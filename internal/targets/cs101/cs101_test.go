package cs101

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sandbox"
	"repro/internal/targets"
)

// fixedFrame builds a valid 0x10 frame for a link function code.
func fixedFrame(fc byte) []byte {
	ctrl := byte(0x40 | fc)
	return []byte{0x10, ctrl, 0x01, ctrl + 0x01, 0x16}
}

// varFrameRaw wraps an ASDU in a valid variable frame (lengths, checksum).
func varFrameRaw(asdu []byte) []byte {
	body := append([]byte{0x73, 0x01}, asdu...)
	var sum byte
	for _, b := range body {
		sum += b
	}
	out := []byte{0x68, byte(len(body)), byte(len(body)), 0x68}
	out = append(out, body...)
	return append(out, sum, 0x16)
}

// resetLink brings the slave's link up.
func resetLink(r *sandbox.Runner) {
	r.Run(fixedFrame(fcResetRemoteLink))
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("lib60870")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Name() != "lib60870" {
		t.Fatalf("name = %s", tgt.Name())
	}
}

func TestModelsSelfConsistent(t *testing.T) {
	for _, m := range CS101Models() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
	}
}

func TestDefaultInstancesSafeAfterReset(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	for _, m := range CS101Models() {
		if res := r.Run(m.Generate().Bytes()); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
}

func TestLinkStateMachine(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	if s.LinkReset() {
		t.Fatal("link should start down")
	}
	// ASDUs before reset are dropped.
	asdu := []byte{typeMSpNa, 1, 6, 0, 1, 0, 0x01, 0x00, 0x00, 0x01}
	r.Run(varFrameRaw(asdu))
	if s.points[1] {
		t.Fatal("ASDU processed before link reset")
	}
	resetLink(r)
	if !s.LinkReset() {
		t.Fatal("reset frame not processed")
	}
	r.Run(varFrameRaw(asdu))
	if !s.points[1] {
		t.Fatal("ASDU dropped after link reset")
	}
}

func TestFixedFrameValidation(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	bad := fixedFrame(fcResetRemoteLink)
	bad[3]++ // break checksum
	r.Run(bad)
	if s.LinkReset() {
		t.Fatal("bad checksum accepted")
	}
	short := []byte{0x10, 0x40, 0x01, 0x41}
	if res := r.Run(short); res.Outcome != sandbox.OK {
		t.Fatal("short fixed frame crashed")
	}
}

func TestVariableFrameValidation(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	asdu := []byte{typeMSpNa, 1, 6, 0, 1, 0, 0x02, 0x00, 0x00, 0x01}
	good := varFrameRaw(asdu)

	lenMismatch := append([]byte(nil), good...)
	lenMismatch[1]++ // L1 != L2
	r.Run(lenMismatch)

	badCk := append([]byte(nil), good...)
	badCk[len(badCk)-2]++
	r.Run(badCk)

	noStop := append([]byte(nil), good...)
	noStop[len(noStop)-1] = 0x00
	r.Run(noStop)

	if s.points[2] {
		t.Fatal("corrupted frame processed")
	}
	r.Run(good)
	if !s.points[2] {
		t.Fatal("good frame rejected")
	}
}

// TestGetCOTCrash reproduces the paper's Listing 1/2: a truncated ASDU
// reaches CS101_ASDU_getCOT, which reads offset 2 without verification —
// SEGV (experiment E10).
func TestGetCOTCrash(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	res := r.Run(varFrameRaw([]byte{typeMSpNa, 1})) // 2-byte ASDU
	if res.Outcome != sandbox.Crash {
		t.Fatal("truncated ASDU should crash in getCOT")
	}
	if res.Fault.Kind != mem.SEGV {
		t.Fatalf("fault kind = %s, want SEGV", res.Fault.Kind)
	}
}

func TestGetCACrash(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	// 4-byte ASDU: getCOT survives, getCA reads offsets 4-5 and faults.
	res := r.Run(varFrameRaw([]byte{typeMSpNa, 1, 6, 0}))
	if res.Outcome != sandbox.Crash || res.Fault.Kind != mem.SEGV {
		t.Fatalf("res = %+v fault = %+v", res.Outcome, res.Fault)
	}
}

func TestSetpointCountCrash(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	// VSQ claims 5 objects, only one carried.
	asdu := []byte{typeCSeNb, 5, 6, 0, 1, 0, 0x04, 0x00, 0x00, 0x64, 0x00, 0x00}
	res := r.Run(varFrameRaw(asdu))
	if res.Outcome != sandbox.Crash || res.Fault.Kind != mem.SEGV {
		t.Fatalf("res = %+v fault = %+v", res.Outcome, res.Fault)
	}
}

func TestThreeDistinctSEGVSites(t *testing.T) {
	// The three seeded faults must dedup to three distinct sites, matching
	// Table I's count for lib60870.
	sites := map[string]bool{}
	for _, asdu := range [][]byte{
		{typeMSpNa, 1},
		{typeMSpNa, 1, 6, 0},
		{typeCSeNb, 5, 6, 0, 1, 0, 0x04, 0x00, 0x00, 0x64, 0x00, 0x00},
	} {
		s := New()
		r := sandbox.NewRunner(s)
		resetLink(r)
		res := r.Run(varFrameRaw(asdu))
		if res.Outcome != sandbox.Crash {
			t.Fatalf("asdu %x did not crash", asdu)
		}
		sites[res.Fault.Site] = true
	}
	if len(sites) != 3 {
		t.Fatalf("distinct fault sites = %d, want 3 (%v)", len(sites), sites)
	}
}

func TestUnknownTypeRejectedBeforeHeaderReads(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	// Unknown type id with a short ASDU must NOT crash: the type check
	// precedes the unchecked header reads.
	if res := r.Run(varFrameRaw([]byte{0x7F, 1})); res.Outcome != sandbox.OK {
		t.Fatalf("unknown type crashed: %v", res.Fault)
	}
}

func TestScaledValuesStored(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	asdu := []byte{typeMMeNb, 1, 3, 0, 1, 0, 0x05, 0x00, 0x00, 0x2C, 0x01, 0x00}
	r.Run(varFrameRaw(asdu))
	if s.scaled[5] != 300 {
		t.Fatalf("scaled[5] = %d", s.scaled[5])
	}
}

func TestSetpointValidPath(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	asdu := []byte{typeCSeNb, 1, 6, 0, 1, 0, 0x06, 0x00, 0x00, 0x0A, 0x00, 0x00}
	if res := r.Run(varFrameRaw(asdu)); res.Outcome != sandbox.OK {
		t.Fatalf("valid setpoint crashed: %v", res.Fault)
	}
	if s.setpoints[6] != 10 {
		t.Fatalf("setpoints[6] = %d", s.setpoints[6])
	}
	// Select bit: skip execution.
	asdu = []byte{typeCSeNb, 1, 6, 0, 1, 0, 0x07, 0x00, 0x00, 0x0A, 0x00, 0x80}
	r.Run(varFrameRaw(asdu))
	if s.setpoints[7] != 0 {
		t.Fatal("select-only setpoint executed")
	}
}

func TestRawModelCracksFineFrames(t *testing.T) {
	// The coarse-grained model must crack frames generated by the
	// fine-grained ones — that is how cross-model puzzle donation gets
	// whole-ASDU material.
	models := CS101Models()
	raw := models[0]
	if raw.Name != "RawVariableFrame" {
		t.Fatalf("model order changed: %s", raw.Name)
	}
	for _, m := range models[5:] { // variable-frame models
		pkt := m.Generate().Bytes()
		if _, err := raw.Crack(pkt); err != nil {
			t.Fatalf("raw model cannot crack %s frame: %v", m.Name, err)
		}
	}
}

func TestCOTRecorded(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	resetLink(r)
	asdu := []byte{typeCIcNa, 1, 6, 0, 1, 0, 0x00, 0x00, 0x00, 0x14}
	r.Run(varFrameRaw(asdu))
	if s.LastCOT() != 6 {
		t.Fatalf("lastCOT = %d", s.LastCOT())
	}
}
