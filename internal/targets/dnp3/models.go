package dnp3

import "repro/internal/datamodel"

// Models returns the DNP3 Pit-equivalent. Every model wraps one link-layer
// frame with two checksum constraints — the header CRC-16/DNP and the
// per-block data CRC — plus the link length relation; these are the
// integrity constraints grammar-based fuzzers cannot express (§VI) and the
// File Fixup module maintains. User data is kept within one 16-byte block
// except for the CROB models, which span two fixed blocks.
func (o *Outstation) Models() []*datamodel.Model {
	return DNP3Models()
}

// linkFrame builds a single-block frame: user data (transport + app) must
// serialize to at most 16 bytes.
func linkFrame(name string, fc uint64, app ...*datamodel.Chunk) *datamodel.Model {
	user := append([]*datamodel.Chunk{
		datamodel.Num("transport", 1, 0xC0), // FIR|FIN, seq 0
		datamodel.Num("appCtrl", 1, 0xC0),   // FIR|FIN, seq 0
		datamodel.Num("appFunc", 1, fc).AsToken(),
	}, app...)
	return datamodel.NewModel(name,
		datamodel.Num("start", 2, 0x0564).AsToken(),
		datamodel.Num("linkLen", 1, 0).WithRel(datamodel.SizeOf, "user", 5),
		datamodel.Num("linkCtrl", 1, 0xC4).WithLegal(0xC0, 0xC2, 0xC3, 0xC4, 0xC9), // PRM | user data
		datamodel.NumLE("dest", 2, 10),
		datamodel.NumLE("src", 2, 1),
		datamodel.NumLE("headerCrc", 2, 0).WithFix(datamodel.CRC16DNP,
			"start", "linkLen", "linkCtrl", "dest", "src"),
		datamodel.Blk("user", user...),
		datamodel.NumLE("blockCrc", 2, 0).WithFix(datamodel.CRC16DNP, "user"),
	)
}

// crobFrame builds the two-block select/operate frame: the 19-byte user
// fragment is split 16+3 with a CRC after each block, mirroring the link
// layer's blocking rule.
func crobFrame(name string, fc uint64) *datamodel.Model {
	return datamodel.NewModel(name,
		datamodel.Num("start", 2, 0x0564).AsToken(),
		datamodel.Num("linkLen", 1, 19+5),
		datamodel.Num("linkCtrl", 1, 0xC4).WithLegal(0xC0, 0xC2, 0xC3, 0xC4, 0xC9),
		datamodel.NumLE("dest", 2, 10),
		datamodel.NumLE("src", 2, 1),
		datamodel.NumLE("headerCrc", 2, 0).WithFix(datamodel.CRC16DNP,
			"start", "linkLen", "linkCtrl", "dest", "src"),
		datamodel.Blk("blockA",
			datamodel.Num("transport", 1, 0xC0),
			datamodel.Num("appCtrl", 1, 0xC0),
			datamodel.Num("appFunc", 1, fc).AsToken(),
			datamodel.Num("group", 1, grCROB),
			datamodel.Num("variation", 1, 1),
			datamodel.Num("qualifier", 1, 0x17),
			datamodel.Num("count", 1, 1),
			datamodel.Num("index", 1, 0),
			datamodel.Num("opCode", 1, 0x01).WithLegal(0x01, 0x03, 0x04),
			datamodel.Num("opCount", 1, 1),
			datamodel.NumLE("onTime", 4, 100),
			datamodel.NumLE("offTimeHi", 2, 0), // first half of offTime
		),
		datamodel.NumLE("blockACrc", 2, 0).WithFix(datamodel.CRC16DNP, "blockA"),
		datamodel.Blk("blockB",
			datamodel.NumLE("offTimeLo", 2, 0), // second half of offTime
			datamodel.Num("status", 1, 0),
		),
		datamodel.NumLE("blockBCrc", 2, 0).WithFix(datamodel.CRC16DNP, "blockB"),
	)
}

// DNP3Models builds the model set without an outstation instance.
func DNP3Models() []*datamodel.Model {
	return []*datamodel.Model{
		linkFrame("ReadClassData", afRead,
			datamodel.Num("group", 1, grClassData),
			datamodel.Num("variation", 1, 1).WithLegal(1, 2, 3, 4),
			datamodel.Num("qualifier", 1, 0x06),
		),
		linkFrame("ReadBinaryRange", afRead,
			datamodel.Num("group", 1, grBinaryInput).WithLegal(
				grBinaryInput, grBinaryOutput, grCounter, grAnalogInput, grTime),
			datamodel.Num("variation", 1, 1),
			datamodel.Num("qualifier", 1, 0x00),
			datamodel.Num("rangeStart", 1, 0),
			datamodel.Num("rangeStop", 1, 7),
		),
		linkFrame("ReadWideRange", afRead,
			datamodel.Num("group", 1, grAnalogInput),
			datamodel.Num("variation", 1, 1),
			datamodel.Num("qualifier", 1, 0x01),
			datamodel.NumLE("rangeStart", 2, 0),
			datamodel.NumLE("rangeStop", 2, 15),
		),
		linkFrame("WriteTime", afWrite,
			datamodel.Num("group", 1, grTime),
			datamodel.Num("variation", 1, 1),
			datamodel.Num("qualifier", 1, 0x07),
			datamodel.Num("count", 1, 1),
			datamodel.Bytes("time", 6, []byte{0x10, 0x32, 0x54, 0x76, 0x98, 0x00}),
		),
		crobFrame("SelectCROB", afSelect),
		crobFrame("OperateCROB", afOperate),
		crobFrame("DirectOperateCROB", afDirectOperate),
		linkFrame("ColdRestart", afColdRestart),
		linkFrame("DelayMeasure", afDelayMeasure),
		linkFrame("EnableUnsolicited", afEnableUnsol,
			datamodel.Num("group", 1, grClassData),
			datamodel.Num("variation", 1, 2).WithLegal(2, 3, 4),
			datamodel.Num("qualifier", 1, 0x06),
		),
		linkFrame("DisableUnsolicited", afDisableUnsol,
			datamodel.Num("group", 1, grClassData),
			datamodel.Num("variation", 1, 2).WithLegal(2, 3, 4),
			datamodel.Num("qualifier", 1, 0x06),
		),
		linkFrame("FreezeCounters", afFreeze,
			datamodel.Num("group", 1, grCounter),
			datamodel.Num("variation", 1, 1),
			datamodel.Num("qualifier", 1, 0x00),
			datamodel.Num("rangeStart", 1, 0),
			datamodel.Num("rangeStop", 1, 7),
		),
		linkFrame("FreezeAndClear", afFreezeClear,
			datamodel.Num("group", 1, grCounter),
			datamodel.Num("variation", 1, 1),
			datamodel.Num("qualifier", 1, 0x06),
		),
		linkFrame("ReadFrozenCounters", afRead,
			datamodel.Num("group", 1, grFrozenCounter).AsToken(),
			datamodel.Num("variation", 1, 1),
			datamodel.Num("qualifier", 1, 0x06),
		),
		linkFrame("WriteOctetString", afWrite,
			datamodel.Num("group", 1, grOctetString).AsToken(),
			datamodel.Num("variation", 1, 0).WithRel(datamodel.SizeOf, "octets", 0),
			datamodel.Num("qualifier", 1, 0x17),
			datamodel.Num("count", 1, 1),
			datamodel.Num("index", 1, 0),
			datamodel.BytesVar("octets", 1, 6, []byte("PS")),
		),
		linkFrame("ClearRestartIIN", afWrite,
			datamodel.Num("group", 1, grIIN).AsToken(),
			datamodel.Num("variation", 1, 1),
			datamodel.Num("qualifier", 1, 0x00),
			datamodel.Num("rangeStart", 1, 7),
			datamodel.Num("rangeStop", 1, 7),
			datamodel.Num("bits", 1, 0),
		),
		linkFrame("AssignClass", afAssignClass,
			datamodel.Num("clsGroup", 1, grClassData),
			datamodel.Num("clsVariation", 1, 2).WithLegal(1, 2, 3, 4),
			datamodel.Num("clsQualifier", 1, 0x06),
			datamodel.Num("group", 1, grBinaryInput),
			datamodel.Num("variation", 1, 0),
			datamodel.Num("qualifier", 1, 0x06),
		),
	}
}
