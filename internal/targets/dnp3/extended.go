package dnp3

import "repro/internal/coverage"

// Extended application functions and object groups: counter freeze
// operations, octet-string writes, internal-indication clears, and class
// assignment — the remainder of an opendnp3 outstation's default surface.
const (
	afFreeze        = 0x07
	afFreezeNoAck   = 0x08
	afFreezeClear   = 0x09
	afAssignClass   = 0x16
	grFrozenCounter = 21
	grOctetString   = 110
	grIIN           = 80
)

// extendedState holds the banks the extended groups serve.
type extendedState struct {
	frozen        [8]uint32
	octet         map[int][]byte
	deviceRestart bool          // IIN1.7, cleared by a g80 write
	classAssign   map[byte]byte // group -> class
}

func newExtendedState() extendedState {
	return extendedState{
		octet:         map[int][]byte{},
		deviceRestart: true,
		classAssign:   map[byte]byte{},
	}
}

// dispatchExtended handles the extended functions; returns false when the
// function code is not handled here.
func (o *Outstation) dispatchExtended(tr *coverage.Tracer, fc byte, objs []byte) bool {
	switch fc {
	case afFreeze, afFreezeNoAck:
		o.hit(tr, 90)
		o.freeze(tr, objs, false)
	case afFreezeClear:
		o.hit(tr, 91)
		o.freeze(tr, objs, true)
	case afAssignClass:
		o.hit(tr, 92)
		o.assignClass(tr, objs)
	default:
		return false
	}
	return true
}

// freeze copies running counters into the frozen bank (g20 -> g21), and
// optionally clears the running values.
func (o *Outstation) freeze(tr *coverage.Tracer, objs []byte, clear bool) {
	h, _, ok := o.parseHeader(tr, objs, 0)
	if !ok {
		return
	}
	if h.group != grCounter {
		o.hit(tr, 93)
		return
	}
	start, stop := h.start, h.stop
	if stop < 0 || stop >= len(o.counters) {
		stop = len(o.counters) - 1
	}
	for i := start; i <= stop && i < len(o.counters); i++ {
		o.hit(tr, 94)
		o.ext.frozen[i] = o.counters[i]
		if clear {
			o.hit(tr, 95)
			o.counters[i] = 0
		}
	}
}

// assignClass maps an object group to an event class (g60 variation).
func (o *Outstation) assignClass(tr *coverage.Tracer, objs []byte) {
	// First header names the class (g60vN, all-objects qualifier).
	cls, rest, ok := o.parseHeader(tr, objs, 0)
	if !ok {
		return
	}
	if cls.group != grClassData || cls.variation < 1 || cls.variation > 4 {
		o.hit(tr, 96)
		return
	}
	// Following headers name the groups being assigned.
	for len(rest) > 0 {
		h, r2, ok := o.parseHeader(tr, rest, 0)
		if !ok {
			return
		}
		rest = r2
		o.hit(tr, 97)
		o.ext.classAssign[h.group] = cls.variation
	}
}

// extendedRead serves the extended readable groups; returns false when the
// group is not handled here.
func (o *Outstation) extendedRead(tr *coverage.Tracer, h header) bool {
	switch h.group {
	case grFrozenCounter:
		o.hit(tr, 98)
		o.scanRange(tr, h, len(o.ext.frozen), 99)
	case grOctetString:
		o.hit(tr, 101)
		// Count the in-range strings first, then record the per-string edge
		// that many times: hitting the same edge n times is the same trace
		// whatever order the map yields the indices in.
		n := 0
		for idx := range o.ext.octet {
			if h.stop < 0 || (idx >= h.start && idx <= h.stop) {
				n++
			}
		}
		for i := 0; i < n; i++ {
			o.hit(tr, 102)
		}
	default:
		return false
	}
	return true
}

// extendedWrite serves octet-string writes (g110, variation = string
// length, qualifier 0x17 with one index prefix) and IIN clears (g80v1).
func (o *Outstation) extendedWrite(tr *coverage.Tracer, h header, objs []byte) bool {
	switch h.group {
	case grOctetString:
		// Variation carries the string length; data is index + bytes.
		n := int(h.variation)
		if n == 0 || h.count != 1 {
			o.hit(tr, 103)
			return true
		}
		if len(objs) < 1+n {
			o.hit(tr, 104)
			return true
		}
		idx := int(objs[0])
		if idx > 15 {
			o.hit(tr, 105)
			return true
		}
		o.hit(tr, 106)
		o.ext.octet[idx] = append([]byte(nil), objs[1:1+n]...)
	case grIIN:
		// g80v1 write with a zero bit clears IIN1.7 (device restart).
		if len(objs) < 1 {
			o.hit(tr, 107)
			return true
		}
		if objs[0]&1 == 0 {
			o.hit(tr, 108)
			o.ext.deviceRestart = false
		} else {
			o.hit(tr, 109)
		}
	default:
		return false
	}
	return true
}
