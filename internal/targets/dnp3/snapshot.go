package dnp3

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/checkpoint"
)

// This file is the DNP3 target's side of the campaign-checkpoint seam
// (sandbox.StateCheckpointer): transport and application sequence state,
// the point banks, the select-before-operate latch, and the extended-type
// state including the octet-string store and class assignments. Map-backed
// banks are written in sorted key order so the encoding is canonical.

// SnapshotState implements sandbox.StateCheckpointer.
func (o *Outstation) SnapshotState(w *checkpoint.Writer) {
	w.Uvarint(uint64(o.addr))
	w.Uvarint(uint64(o.seq))
	w.Uvarint(uint64(o.appSeq))
	for i := range o.binaries {
		w.Bool(o.binaries[i])
	}
	for i := range o.outputs {
		w.Bool(o.outputs[i])
	}
	for i := range o.counters {
		w.Uvarint(uint64(o.counters[i]))
	}
	for i := range o.analogs {
		w.Uvarint(uint64(uint32(o.analogs[i])))
	}
	w.U64(o.clock)
	w.Bool(o.selected)
	w.Uvarint(uint64(o.selectedIndex))
	w.Uvarint(uint64(o.selectedCode))
	for i := range o.unsolEnabled {
		w.Bool(o.unsolEnabled[i])
	}
	w.Int(o.restarts)
	for i := range o.ext.frozen {
		w.Uvarint(uint64(o.ext.frozen[i]))
	}
	keys := make([]int, 0, len(o.ext.octet))
	for k := range o.ext.octet {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Int(k)
		w.Blob(o.ext.octet[k])
	}
	w.Bool(o.ext.deviceRestart)
	groups := make([]int, 0, len(o.ext.classAssign))
	for g := range o.ext.classAssign {
		groups = append(groups, int(g))
	}
	sort.Ints(groups)
	w.Int(len(groups))
	for _, g := range groups {
		w.Uvarint(uint64(g))
		w.Uvarint(uint64(o.ext.classAssign[byte(g)]))
	}
}

// RestoreState implements sandbox.StateCheckpointer.
func (o *Outstation) RestoreState(r *checkpoint.Reader) error {
	o.addr = uint16(readBounded(r, 0xffff, "dnp3: address"))
	o.seq = byte(readBounded(r, 0xff, "dnp3: transport sequence"))
	o.appSeq = byte(readBounded(r, 0xff, "dnp3: application sequence"))
	for i := range o.binaries {
		o.binaries[i] = r.Bool()
	}
	for i := range o.outputs {
		o.outputs[i] = r.Bool()
	}
	for i := range o.counters {
		o.counters[i] = uint32(readBounded(r, math.MaxUint32, "dnp3: counter"))
	}
	for i := range o.analogs {
		o.analogs[i] = int32(uint32(readBounded(r, math.MaxUint32, "dnp3: analog")))
	}
	o.clock = r.U64()
	o.selected = r.Bool()
	o.selectedIndex = byte(readBounded(r, 0xff, "dnp3: selected index"))
	o.selectedCode = byte(readBounded(r, 0xff, "dnp3: selected code"))
	for i := range o.unsolEnabled {
		o.unsolEnabled[i] = r.Bool()
	}
	o.restarts = r.Int()
	for i := range o.ext.frozen {
		o.ext.frozen[i] = uint32(readBounded(r, math.MaxUint32, "dnp3: frozen counter"))
	}
	no := r.Count()
	o.ext.octet = make(map[int][]byte, no)
	for i := 0; i < no && r.Err() == nil; i++ {
		k := r.Int()
		v := r.Blob()
		if r.Err() != nil {
			break
		}
		if _, dup := o.ext.octet[k]; dup {
			return fmt.Errorf("dnp3: duplicate octet index %d", k)
		}
		o.ext.octet[k] = append([]byte(nil), v...)
	}
	o.ext.deviceRestart = r.Bool()
	ng := r.Count()
	o.ext.classAssign = make(map[byte]byte, ng)
	for i := 0; i < ng && r.Err() == nil; i++ {
		g := byte(readBounded(r, 0xff, "dnp3: class group"))
		c := byte(readBounded(r, 0xff, "dnp3: class"))
		if r.Err() != nil {
			break
		}
		if _, dup := o.ext.classAssign[g]; dup {
			return fmt.Errorf("dnp3: duplicate class group %d", g)
		}
		o.ext.classAssign[g] = c
	}
	return r.Err()
}

// readBounded reads one uvarint pinned to max, failing the reader on
// overflow.
func readBounded(r *checkpoint.Reader, max uint64, what string) uint64 {
	v := r.Uvarint()
	if r.Err() == nil && v > max {
		r.Fail(fmt.Errorf("%s %d out of range", what, v))
		return 0
	}
	return v
}
