// Package dnp3 reimplements the packet-processing core of opendnp3 — a
// DNP3 (IEEE 1815) outstation — as an instrumented fuzzing target (paper
// §V-A, Fig. 4(f)).
//
// DNP3 stacks three layers. The data-link layer frames everything with the
// 0x05 0x64 start bytes, a length, control/destination/source fields and a
// CRC-16/DNP over the header, then carries user data in blocks of up to 16
// bytes, each closed by its own CRC. The transport layer prefixes one octet
// (FIR/FIN/sequence) for fragmentation. The application layer carries a
// control octet, a function code, and a list of object headers
// (group/variation/qualifier/range) with optional object data.
//
// opendnp3 contributed no entries to the paper's Table I, so this target
// seeds no vulnerabilities; it exists for the Fig. 4(f) coverage experiment
// (hundreds of paths — the second-largest code scale of the six).
package dnp3

import (
	"repro/internal/coverage"
	"repro/internal/datamodel"
	"repro/internal/targets"
)

// Application-layer function codes handled by the outstation.
const (
	afConfirm       = 0x00
	afRead          = 0x01
	afWrite         = 0x02
	afSelect        = 0x03
	afOperate       = 0x04
	afDirectOperate = 0x05
	afColdRestart   = 0x0D
	afWarmRestart   = 0x0E
	afEnableUnsol   = 0x14
	afDisableUnsol  = 0x15
	afDelayMeasure  = 0x17
)

// Object groups the outstation serves.
const (
	grBinaryInput  = 1
	grBinaryOutput = 10
	grCROB         = 12
	grCounter      = 20
	grAnalogInput  = 30
	grAnalogOutput = 41
	grTime         = 50
	grClassData    = 60
)

// Outstation is the instrumented opendnp3 outstation core.
type Outstation struct {
	id []coverage.BlockID //peachstar:nosnap immutable block identity wired at construction

	addr     uint16
	seq      byte // expected transport sequence
	appSeq   byte
	binaries [16]bool
	outputs  [16]bool
	counters [8]uint32
	analogs  [16]int32
	clock    uint64

	// Select-before-operate state.
	selected      bool
	selectedIndex byte
	selectedCode  byte

	unsolEnabled [4]bool
	restarts     int
	ext          extendedState
}

// New returns a fresh outstation at link address 10.
func New() *Outstation {
	o := &Outstation{
		id:   coverage.Blocks("opendnp3", 256),
		addr: 10,
		ext:  newExtendedState(),
	}
	for i := range o.analogs {
		o.analogs[i] = int32(i * 100)
	}
	for i := range o.counters {
		o.counters[i] = uint32(i)
	}
	return o
}

// Name implements targets.Target.
func (o *Outstation) Name() string { return "opendnp3" }

func (o *Outstation) hit(tr *coverage.Tracer, n int) { tr.Hit(o.id[n]) }

// Handle implements targets.Target: link-layer validation, block
// reassembly, transport and application parsing.
func (o *Outstation) Handle(tr *coverage.Tracer, pkt []byte) {
	o.hit(tr, 0)
	if len(pkt) < 10 {
		o.hit(tr, 1)
		return
	}
	if pkt[0] != 0x05 || pkt[1] != 0x64 {
		o.hit(tr, 2)
		return
	}
	// LEN counts ctrl+dest+src+user data, excluding CRCs.
	linkLen := int(pkt[2])
	if linkLen < 5 {
		o.hit(tr, 3)
		return
	}
	hdrCRC := uint16(pkt[8]) | uint16(pkt[9])<<8
	if datamodel.CRC16DNPSum(pkt[:8]) != hdrCRC {
		o.hit(tr, 4)
		return
	}
	ctrl := pkt[3]
	dst := uint16(pkt[4]) | uint16(pkt[5])<<8
	src := uint16(pkt[6]) | uint16(pkt[7])<<8
	if dst != o.addr && dst != 0xFFFF {
		o.hit(tr, 5)
		return
	}
	if src == dst {
		o.hit(tr, 6) // self-addressed, dropped
		return
	}
	// PRM bit must be set for primary frames; function USER_DATA (4) or
	// UNCONFIRMED_USER_DATA (3).
	if ctrl&0x40 == 0 {
		o.hit(tr, 7)
		return
	}
	lfc := ctrl & 0x0F
	switch lfc {
	case 0: // RESET_LINK_STATES
		o.hit(tr, 8)
		o.seq = 0
		return
	case 2: // TEST_LINK_STATES
		o.hit(tr, 9)
		return
	case 3, 4: // (un)confirmed user data
		o.hit(tr, 10)
	case 9: // REQUEST_LINK_STATUS
		o.hit(tr, 11)
		return
	default:
		o.hit(tr, 12)
		return
	}
	userLen := linkLen - 5
	user, ok := o.deblock(tr, pkt[10:], userLen)
	if !ok {
		return
	}
	o.transport(tr, user)
}

// deblock strips per-block CRCs, validating each, and returns exactly
// userLen bytes of user data.
func (o *Outstation) deblock(tr *coverage.Tracer, data []byte, userLen int) ([]byte, bool) {
	var user []byte
	for len(user) < userLen {
		need := userLen - len(user)
		if need > 16 {
			need = 16
		}
		if len(data) < need+2 {
			o.hit(tr, 13)
			return nil, false
		}
		block := data[:need]
		crc := uint16(data[need]) | uint16(data[need+1])<<8
		if datamodel.CRC16DNPSum(block) != crc {
			o.hit(tr, 14)
			return nil, false
		}
		o.hit(tr, 15)
		user = append(user, block...)
		data = data[need+2:]
	}
	if len(data) != 0 {
		o.hit(tr, 16)
		return nil, false
	}
	return user, true
}

// transport handles the one-octet transport header. Only single-fragment
// messages (FIR|FIN) are accepted, as the paper's fuzzing setup sends
// independent packets.
func (o *Outstation) transport(tr *coverage.Tracer, user []byte) {
	if len(user) < 1 {
		o.hit(tr, 17)
		return
	}
	th := user[0]
	fin, fir := th&0x80 != 0, th&0x40 != 0
	if !fir || !fin {
		o.hit(tr, 18)
		return
	}
	o.seq = th & 0x3F
	o.application(tr, user[1:])
}

// application parses the application fragment: control, function code, and
// the object-header list.
func (o *Outstation) application(tr *coverage.Tracer, frag []byte) {
	if len(frag) < 2 {
		o.hit(tr, 19)
		return
	}
	appCtrl := frag[0]
	fc := frag[1]
	o.appSeq = appCtrl & 0x0F
	if appCtrl&0xC0 != 0xC0 { // FIR|FIN required on requests
		o.hit(tr, 20)
		return
	}
	objs := frag[2:]
	switch fc {
	case afConfirm:
		o.hit(tr, 21)
	case afRead:
		o.hit(tr, 22)
		o.read(tr, objs)
	case afWrite:
		o.hit(tr, 23)
		o.write(tr, objs)
	case afSelect:
		o.hit(tr, 24)
		o.selectOp(tr, objs)
	case afOperate:
		o.hit(tr, 25)
		o.operate(tr, objs, false)
	case afDirectOperate:
		o.hit(tr, 26)
		o.operate(tr, objs, true)
	case afColdRestart:
		o.hit(tr, 27)
		o.restarts++
		o.selected = false
	case afWarmRestart:
		o.hit(tr, 28)
		o.restarts++
	case afEnableUnsol:
		o.hit(tr, 29)
		o.unsolMask(tr, objs, true)
	case afDisableUnsol:
		o.hit(tr, 30)
		o.unsolMask(tr, objs, false)
	case afDelayMeasure:
		o.hit(tr, 31)
	default:
		if !o.dispatchExtended(tr, fc, objs) {
			o.hit(tr, 32)
		}
	}
}

// header is one parsed object header.
type header struct {
	group, variation, qualifier byte
	start, stop                 int
	count                       int
	data                        []byte
}

// parseHeader decodes one object header at the front of objs, returning the
// rest. Supported qualifiers mirror opendnp3's request parser: 0x00/0x01
// start-stop, 0x06 all objects, 0x07/0x08 limited count, 0x17 one-byte
// index prefixes.
func (o *Outstation) parseHeader(tr *coverage.Tracer, objs []byte, withData int) (h header, rest []byte, ok bool) {
	if len(objs) < 3 {
		o.hit(tr, 33)
		return h, nil, false
	}
	h.group, h.variation, h.qualifier = objs[0], objs[1], objs[2]
	objs = objs[3:]
	switch h.qualifier {
	case 0x00: // 1-byte start/stop
		if len(objs) < 2 {
			o.hit(tr, 34)
			return h, nil, false
		}
		h.start, h.stop = int(objs[0]), int(objs[1])
		objs = objs[2:]
	case 0x01: // 2-byte start/stop
		if len(objs) < 4 {
			o.hit(tr, 35)
			return h, nil, false
		}
		h.start = int(objs[0]) | int(objs[1])<<8
		h.stop = int(objs[2]) | int(objs[3])<<8
		objs = objs[4:]
	case 0x06: // all objects
		h.start, h.stop = 0, -1
	case 0x07: // 1-byte count
		if len(objs) < 1 {
			o.hit(tr, 36)
			return h, nil, false
		}
		h.count = int(objs[0])
		objs = objs[1:]
	case 0x17: // 1-byte count + 1-byte index prefix per object
		if len(objs) < 1 {
			o.hit(tr, 37)
			return h, nil, false
		}
		h.count = int(objs[0])
		objs = objs[1:]
	default:
		o.hit(tr, 38)
		return h, nil, false
	}
	if h.stop >= 0 && h.start > h.stop {
		o.hit(tr, 39)
		return h, nil, false
	}
	if withData > 0 {
		n := withData
		if h.qualifier == 0x17 {
			n = (withData + 1) * h.count
		}
		if len(objs) < n {
			o.hit(tr, 40)
			return h, nil, false
		}
		h.data = objs[:n]
		objs = objs[n:]
	}
	o.hit(tr, 41)
	return h, objs, true
}

// read serves READ requests: iterate headers, collect requested points.
func (o *Outstation) read(tr *coverage.Tracer, objs []byte) {
	for len(objs) > 0 {
		h, rest, ok := o.parseHeader(tr, objs, 0)
		if !ok {
			return
		}
		objs = rest
		switch h.group {
		case grClassData:
			switch h.variation {
			case 1:
				o.hit(tr, 42)
			case 2, 3, 4:
				o.hit(tr, 43)
			default:
				o.hit(tr, 44)
			}
		case grBinaryInput:
			o.hit(tr, 45)
			o.scanRange(tr, h, len(o.binaries), 46)
		case grCounter:
			o.hit(tr, 48)
			o.scanRange(tr, h, len(o.counters), 49)
		case grAnalogInput:
			o.hit(tr, 51)
			o.scanRange(tr, h, len(o.analogs), 52)
		case grBinaryOutput:
			o.hit(tr, 54)
			o.scanRange(tr, h, len(o.outputs), 55)
		case grTime:
			o.hit(tr, 57)
		default:
			if !o.extendedRead(tr, h) {
				o.hit(tr, 58)
			}
		}
	}
	o.hit(tr, 59)
}

// scanRange walks the requested index range against a bank size, hitting
// per-point blocks — the response-building loop of an outstation database.
func (o *Outstation) scanRange(tr *coverage.Tracer, h header, bank int, blk int) {
	start, stop := h.start, h.stop
	if stop < 0 { // all objects
		stop = bank - 1
	}
	if h.count > 0 {
		stop = start + h.count - 1
	}
	if stop >= bank {
		o.hit(tr, blk)
		stop = bank - 1
	}
	for i := start; i <= stop && i < bank; i++ {
		o.hit(tr, blk+1)
	}
}

// write serves WRITE requests: g50v1 absolute time, g110 octet strings and
// g80v1 internal-indication clears are the writable points, as in
// opendnp3's default config.
func (o *Outstation) write(tr *coverage.Tracer, objs []byte) {
	h, rest, ok := o.parseHeader(tr, objs, 0)
	if !ok {
		return
	}
	if o.extendedWrite(tr, h, rest) {
		return
	}
	if h.group != grTime || h.variation != 1 {
		o.hit(tr, 60)
		return
	}
	if len(rest) < 6 {
		o.hit(tr, 61)
		return
	}
	o.hit(tr, 62)
	var t uint64
	for i := 5; i >= 0; i-- {
		t = t<<8 | uint64(rest[i])
	}
	o.clock = t
}

// crob is a parsed control relay output block (g12v1).
type crob struct {
	code   byte
	count  byte
	onTime uint32
	index  byte
}

// parseCROB expects qualifier 0x17 with one index-prefixed 11-byte CROB.
func (o *Outstation) parseCROB(tr *coverage.Tracer, objs []byte) (crob, bool) {
	var c crob
	if len(objs) < 3 {
		o.hit(tr, 63)
		return c, false
	}
	if objs[0] != grCROB || objs[1] != 1 || objs[2] != 0x17 {
		o.hit(tr, 64)
		return c, false
	}
	objs = objs[3:]
	if len(objs) < 1 || objs[0] != 1 {
		o.hit(tr, 65) // only single-object control supported
		return c, false
	}
	objs = objs[1:]
	if len(objs) < 12 {
		o.hit(tr, 66)
		return c, false
	}
	c.index = objs[0]
	c.code = objs[1]
	c.count = objs[2]
	c.onTime = uint32(objs[3]) | uint32(objs[4])<<8 | uint32(objs[5])<<16 | uint32(objs[6])<<24
	o.hit(tr, 67)
	return c, true
}

// validCode screens CROB operation codes like opendnp3's CommandHandler.
func validCode(code byte) bool {
	switch code & 0x0F {
	case 0x01, 0x03, 0x04: // LATCH_ON, LATCH_OFF, PULSE
		return true
	default:
		return false
	}
}

// selectOp arms a control point (select-before-operate).
func (o *Outstation) selectOp(tr *coverage.Tracer, objs []byte) {
	c, ok := o.parseCROB(tr, objs)
	if !ok {
		return
	}
	if int(c.index) >= len(o.outputs) {
		o.hit(tr, 68)
		return
	}
	if !validCode(c.code) {
		o.hit(tr, 69)
		return
	}
	if c.count == 0 {
		o.hit(tr, 70)
		return
	}
	o.hit(tr, 71)
	o.selected = true
	o.selectedIndex = c.index
	o.selectedCode = c.code
}

// operate executes a control. In SBO mode it must match the armed select.
func (o *Outstation) operate(tr *coverage.Tracer, objs []byte, direct bool) {
	c, ok := o.parseCROB(tr, objs)
	if !ok {
		return
	}
	if int(c.index) >= len(o.outputs) {
		o.hit(tr, 72)
		return
	}
	if !validCode(c.code) {
		o.hit(tr, 73)
		return
	}
	if !direct {
		if !o.selected || o.selectedIndex != c.index || o.selectedCode != c.code {
			o.hit(tr, 74) // NO_SELECT
			return
		}
		o.selected = false
	}
	switch c.code & 0x0F {
	case 0x01:
		o.hit(tr, 75)
		o.outputs[c.index] = true
	case 0x03:
		o.hit(tr, 76)
		o.outputs[c.index] = false
	case 0x04:
		o.hit(tr, 77)
		o.outputs[c.index] = !o.outputs[c.index]
	}
}

// unsolMask flips unsolicited-class enables for g60 class headers.
func (o *Outstation) unsolMask(tr *coverage.Tracer, objs []byte, enable bool) {
	for len(objs) > 0 {
		h, rest, ok := o.parseHeader(tr, objs, 0)
		if !ok {
			return
		}
		objs = rest
		if h.group != grClassData || h.variation < 2 || h.variation > 4 {
			o.hit(tr, 78)
			continue
		}
		o.hit(tr, 79)
		o.unsolEnabled[h.variation-1] = enable
	}
}

// Clock returns the written absolute time (tests use it).
func (o *Outstation) Clock() uint64 { return o.clock }

// Output returns binary output state (tests use it).
func (o *Outstation) Output(i int) bool { return o.outputs[i] }

// Restarts counts restart requests (tests use it).
func (o *Outstation) Restarts() int { return o.restarts }

func init() {
	targets.Register("opendnp3", func() targets.Target { return New() })
}
