package dnp3

import (
	"testing"

	"repro/internal/sandbox"
)

func TestFreezeCounters(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	res := r.Run(buildFrame(app(afFreeze, grCounter, 1, 0x00, 2, 5)))
	if res.Outcome != sandbox.OK {
		t.Fatalf("freeze crashed: %v", res.Fault)
	}
	for i := 2; i <= 5; i++ {
		if o.ext.frozen[i] != uint32(i) {
			t.Fatalf("frozen[%d] = %d", i, o.ext.frozen[i])
		}
	}
	if o.counters[3] != 3 {
		t.Fatal("plain freeze must not clear")
	}
}

func TestFreezeAndClear(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	r.Run(buildFrame(app(afFreezeClear, grCounter, 1, 0x06)))
	for i := range o.counters {
		if o.counters[i] != 0 {
			t.Fatalf("counter %d not cleared", i)
		}
		if o.ext.frozen[i] != uint32(i) {
			t.Fatalf("frozen[%d] = %d", i, o.ext.frozen[i])
		}
	}
}

func TestFreezeWrongGroupIgnored(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	r.Run(buildFrame(app(afFreeze, grBinaryInput, 1, 0x06)))
	for i := range o.ext.frozen {
		if o.ext.frozen[i] != 0 {
			t.Fatal("freeze of non-counter group had effect")
		}
	}
}

func TestWriteOctetString(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	// g110v3 (3-byte string), qualifier 0x17, count 1, index 4, "abc".
	res := r.Run(buildFrame(app(afWrite, grOctetString, 3, 0x17, 1, 4, 'a', 'b', 'c')))
	if res.Outcome != sandbox.OK {
		t.Fatalf("octet write crashed: %v", res.Fault)
	}
	if string(o.ext.octet[4]) != "abc" {
		t.Fatalf("octet[4] = %q", o.ext.octet[4])
	}
	// Truncated data: refused safely.
	r.Run(buildFrame(app(afWrite, grOctetString, 9, 0x17, 1, 5, 'x')))
	if _, ok := o.ext.octet[5]; ok {
		t.Fatal("truncated octet string stored")
	}
	// Index out of range.
	r.Run(buildFrame(app(afWrite, grOctetString, 1, 0x17, 1, 99, 'z')))
	if _, ok := o.ext.octet[99]; ok {
		t.Fatal("out-of-range octet index stored")
	}
}

func TestClearRestartIIN(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	if !o.ext.deviceRestart {
		t.Fatal("fresh outstation should flag device restart")
	}
	r.Run(buildFrame(app(afWrite, grIIN, 1, 0x00, 7, 7, 0)))
	if o.ext.deviceRestart {
		t.Fatal("IIN clear did not take")
	}
}

func TestAssignClass(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	// Assign class 2 (g60v2) to binary inputs and counters.
	objs := []byte{
		grClassData, 2, 0x06,
		grBinaryInput, 0, 0x06,
		grCounter, 0, 0x06,
	}
	r.Run(buildFrame(app(afAssignClass, objs...)))
	if o.ext.classAssign[grBinaryInput] != 2 || o.ext.classAssign[grCounter] != 2 {
		t.Fatalf("class assignments = %v", o.ext.classAssign)
	}
	// Bad class header variation ignored.
	o2 := New()
	r2 := sandbox.NewRunner(o2)
	r2.Run(buildFrame(app(afAssignClass, grClassData, 9, 0x06, grBinaryInput, 0, 0x06)))
	if len(o2.ext.classAssign) != 0 {
		t.Fatal("invalid class accepted")
	}
}

func TestReadFrozenCounters(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	r.Run(buildFrame(app(afFreeze, grCounter, 1, 0x06)))
	res := r.Run(buildFrame(app(afRead, grFrozenCounter, 1, 0x06)))
	if res.Outcome != sandbox.OK {
		t.Fatalf("frozen read crashed: %v", res.Fault)
	}
}

func TestExtendedModelsRoundTrip(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	for _, m := range DNP3Models() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
		if res := r.Run(pkt); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
}

func TestWriteOctetStringModelEffective(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	for _, m := range DNP3Models() {
		if m.Name != "WriteOctetString" {
			continue
		}
		r.Run(m.Generate().Bytes())
		if string(o.ext.octet[0]) != "PS" {
			t.Fatalf("model default did not write octet string: %v", o.ext.octet)
		}
		return
	}
	t.Fatal("WriteOctetString model missing")
}
