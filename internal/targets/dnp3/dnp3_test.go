package dnp3

import (
	"testing"

	"repro/internal/datamodel"
	"repro/internal/sandbox"
	"repro/internal/targets"
)

// buildFrame assembles a valid single-block link frame around an app
// fragment (transport octet included by the caller).
func buildFrame(user []byte) []byte {
	hdr := []byte{0x05, 0x64, byte(len(user) + 5), 0xC4, 10, 0, 1, 0}
	crc := datamodel.CRC16DNPSum(hdr)
	out := append(hdr, byte(crc), byte(crc>>8))
	for len(user) > 0 {
		n := len(user)
		if n > 16 {
			n = 16
		}
		block := user[:n]
		bcrc := datamodel.CRC16DNPSum(block)
		out = append(out, block...)
		out = append(out, byte(bcrc), byte(bcrc>>8))
		user = user[n:]
	}
	return out
}

// app builds a single-fragment application request.
func app(fc byte, objs ...byte) []byte {
	return append([]byte{0xC0, 0xC0, fc}, objs...)
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("opendnp3")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Name() != "opendnp3" {
		t.Fatalf("name = %s", tgt.Name())
	}
	if len(tgt.Models()) != 17 {
		t.Fatalf("models = %d", len(tgt.Models()))
	}
}

func TestModelsSelfConsistent(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	for _, m := range DNP3Models() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
		if res := r.Run(pkt); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
}

func TestModelFramesAreLinkValid(t *testing.T) {
	// The generated frames must parse as far as the application layer:
	// compare a generated ReadClassData frame against a hand-built one.
	m := DNP3Models()[0]
	got := m.Generate().Bytes()
	want := buildFrame(app(afRead, grClassData, 1, 0x06))
	if len(got) != len(want) {
		t.Fatalf("generated frame length %d, hand-built %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d: got %02x want %02x\n got %x\nwant %x", i, got[i], want[i], got, want)
		}
	}
}

func TestBadCRCDropped(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	pkt := buildFrame(app(afColdRestart))
	pkt[8] ^= 0xFF // header CRC
	r.Run(pkt)
	if o.Restarts() != 0 {
		t.Fatal("frame with bad header CRC processed")
	}
	pkt = buildFrame(app(afColdRestart))
	pkt[len(pkt)-1] ^= 0xFF // block CRC
	r.Run(pkt)
	if o.Restarts() != 0 {
		t.Fatal("frame with bad block CRC processed")
	}
	pkt = buildFrame(app(afColdRestart))
	r.Run(pkt)
	if o.Restarts() != 1 {
		t.Fatal("valid restart not processed")
	}
}

func TestAddressFiltering(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	user := app(afColdRestart)
	hdr := []byte{0x05, 0x64, byte(len(user) + 5), 0xC4, 99, 0, 1, 0} // wrong dest
	crc := datamodel.CRC16DNPSum(hdr)
	pkt := append(hdr, byte(crc), byte(crc>>8))
	bcrc := datamodel.CRC16DNPSum(user)
	pkt = append(pkt, user...)
	pkt = append(pkt, byte(bcrc), byte(bcrc>>8))
	r.Run(pkt)
	if o.Restarts() != 0 {
		t.Fatal("frame for another outstation processed")
	}
}

func TestTransportRequiresFirFin(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	user := app(afColdRestart)
	user[0] = 0x40 // FIR only
	r.Run(buildFrame(user))
	if o.Restarts() != 0 {
		t.Fatal("multi-fragment transport accepted")
	}
}

func TestWriteTime(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	pkt := buildFrame(app(afWrite, grTime, 1, 0x07, 1, 0x10, 0x32, 0x54, 0x76, 0x98, 0x00))
	res := r.Run(pkt)
	if res.Outcome != sandbox.OK {
		t.Fatalf("write crashed: %v", res.Fault)
	}
	if o.Clock() != 0x0098765432_10 {
		t.Fatalf("clock = %x", o.Clock())
	}
}

func TestSelectBeforeOperate(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	crob := []byte{grCROB, 1, 0x17, 1, 3, 0x01, 1, 100, 0, 0, 0, 0, 0, 0, 0, 0}
	// Operate without select: refused.
	r.Run(buildFrame(app(afOperate, crob...)))
	if o.Output(3) {
		t.Fatal("operate without select executed")
	}
	// Select then operate: executes LATCH_ON at index 3.
	r.Run(buildFrame(app(afSelect, crob...)))
	r.Run(buildFrame(app(afOperate, crob...)))
	if !o.Output(3) {
		t.Fatal("select+operate did not execute")
	}
	// Second operate without re-select: refused (select consumed).
	crobOff := append([]byte(nil), crob...)
	crobOff[5] = 0x03 // LATCH_OFF
	r.Run(buildFrame(app(afOperate, crobOff...)))
	if !o.Output(3) {
		t.Fatal("operate ran without matching select")
	}
}

func TestDirectOperateSkipsSelect(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	crob := []byte{grCROB, 1, 0x17, 1, 5, 0x01, 1, 100, 0, 0, 0, 0, 0, 0, 0, 0}
	r.Run(buildFrame(app(afDirectOperate, crob...)))
	if !o.Output(5) {
		t.Fatal("direct operate did not execute")
	}
}

func TestInvalidControlCode(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	crob := []byte{grCROB, 1, 0x17, 1, 2, 0x0F, 1, 100, 0, 0, 0, 0, 0, 0, 0, 0}
	r.Run(buildFrame(app(afDirectOperate, crob...)))
	if o.Output(2) {
		t.Fatal("invalid op code executed")
	}
}

func TestReadRequests(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	for _, objs := range [][]byte{
		{grClassData, 1, 0x06},
		{grClassData, 2, 0x06},
		{grBinaryInput, 1, 0x00, 0, 7},
		{grAnalogInput, 1, 0x01, 0, 0, 15, 0},
		{grCounter, 1, 0x07, 4},
		{grBinaryInput, 1, 0x00, 0, 200}, // range beyond bank, clamped
		{grTime, 1, 0x06},
	} {
		if res := r.Run(buildFrame(app(afRead, objs...))); res.Outcome != sandbox.OK {
			t.Fatalf("read %x crashed: %v", objs, res.Fault)
		}
	}
}

func TestMalformedRequestsSafe(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	for _, pkt := range [][]byte{
		nil,
		{0x05},
		{0x05, 0x64, 2, 0xC4, 10, 0, 1, 0, 0, 0}, // len < 5
		buildFrame([]byte{}),                     // no transport octet
		buildFrame([]byte{0xC0}),                 // no app header
		buildFrame(app(afRead)),                  // read with no headers: fine
		buildFrame(app(afRead, grBinaryInput)),   // truncated header
		buildFrame(app(afRead, grBinaryInput, 1, 0x00, 5)),    // missing stop
		buildFrame(app(afRead, grBinaryInput, 1, 0x00, 9, 2)), // start > stop
		buildFrame(app(afRead, grBinaryInput, 1, 0x44)),       // unknown qualifier
		buildFrame(app(afWrite, grTime, 1, 0x07, 1, 0x10)),    // short time object
		buildFrame(app(afSelect, grCROB, 1, 0x17, 1, 3)),      // short CROB
		buildFrame(app(0x7F)),                                 // unknown function
	} {
		if res := r.Run(pkt); res.Outcome != sandbox.OK {
			t.Fatalf("malformed frame crashed: %x -> %v", pkt, res.Fault)
		}
	}
}

func TestUnsolicitedMask(t *testing.T) {
	o := New()
	r := sandbox.NewRunner(o)
	r.Run(buildFrame(app(afEnableUnsol, grClassData, 2, 0x06)))
	if !o.unsolEnabled[1] {
		t.Fatal("enable unsolicited class 1 failed")
	}
	r.Run(buildFrame(app(afDisableUnsol, grClassData, 2, 0x06)))
	if o.unsolEnabled[1] {
		t.Fatal("disable unsolicited failed")
	}
}

func TestCROBModelMatchesHandBuilt(t *testing.T) {
	m := DNP3Models()[6] // DirectOperateCROB
	if m.Name != "DirectOperateCROB" {
		t.Fatalf("model order changed: %s", m.Name)
	}
	o := New()
	r := sandbox.NewRunner(o)
	res := r.Run(m.Generate().Bytes())
	if res.Outcome != sandbox.OK {
		t.Fatalf("generated CROB crashed: %v", res.Fault)
	}
	if !o.Output(0) {
		t.Fatal("generated direct-operate CROB did not latch output 0")
	}
}
