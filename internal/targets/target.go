// Package targets defines the protocol-program interface the fuzzing
// engines run against, and a registry of the six open-source ICS protocol
// implementations the paper evaluates (§V-A): libmodbus, IEC104,
// libiec61850, lib60870, libiccp (libiec_iccp_mod), and opendnp3.
//
// Each target is a Go reimplementation of the corresponding C library's
// packet-processing core, instrumented with coverage hooks at branch
// points (the paper instruments the originals with an LLVM pass; see
// DESIGN.md §2 for the substitution argument). Targets are stateful, like
// the long-running server processes the paper fuzzes: register banks,
// sessions and connection state persist across packets within a campaign.
package targets

import (
	"fmt"
	"sort"

	"repro/internal/coverage"
	"repro/internal/datamodel"
)

// Target is one protocol program under test plus its format specification.
type Target interface {
	// Name is the project name as the paper spells it.
	Name() string
	// Models returns the data-model set of the target's Pit file — one
	// model per packet type (§III).
	Models() []*datamodel.Model
	// Handle processes one protocol packet, reporting coverage through
	// tr. It may panic with *mem.Fault or a runtime error; the sandbox
	// recovers both.
	Handle(tr *coverage.Tracer, packet []byte)
}

// Factory constructs a fresh target instance (fresh server state).
type Factory func() Target

var registry = map[string]Factory{}

// Register adds a target factory under its canonical name. Target packages
// call it from init; duplicate registration panics.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("targets: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New instantiates the named target.
func New(name string) (Target, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("targets: unknown target %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists registered targets, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
