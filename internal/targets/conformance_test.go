package targets_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sandbox"
	"repro/internal/targets"
)

// TestConformanceAllTargets is the cross-protocol contract every registered
// target must honor: it registers under its paper name, exposes a
// non-empty, validating model set, accepts the default generated packet of
// every model without crashing, and — the determinism guard behind the
// parallel runner — produces identical campaign stats for a fixed seed, in
// serial and in a single-worker fleet.
func TestConformanceAllTargets(t *testing.T) {
	cases := []struct {
		name   string // registry name (the paper's project spelling)
		models int    // minimum expected packet types
	}{
		{"libmodbus", 2},
		{"opendnp3", 1},
		{"IEC104", 1},
		{"libiec61850", 1},
		{"libiccp", 1},
		{"lib60870", 1},
	}
	if got, want := len(targets.Names()), len(cases); got != want {
		t.Fatalf("registry has %d targets, conformance table covers %d", got, want)
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tgt, err := targets.New(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if got := tgt.Name(); got != tc.name {
				t.Fatalf("Name() = %q, want registry name %q", got, tc.name)
			}
			models := tgt.Models()
			if len(models) < tc.models {
				t.Fatalf("only %d models, want >= %d", len(models), tc.models)
			}
			for _, m := range models {
				if err := m.Validate(); err != nil {
					t.Fatalf("model %s invalid: %v", m.Name, err)
				}
			}

			// Every model's fixed-up default instance must be a packet
			// the server processes without faulting.
			runner := sandbox.NewRunner(tgt)
			for _, m := range models {
				inst := m.Generate()
				m.ApplyFixups(inst)
				pkt := inst.Bytes()
				if res := runner.Run(pkt); res.Outcome == sandbox.Crash {
					t.Fatalf("default %s packet crashes the fresh server: %v (pkt %x)",
						m.Name, res.Fault, pkt)
				}
			}

			// Valid randomly generated packets are likewise accepted by a
			// fresh instance (statefulness may reject later ones; the
			// first must parse).
			fresh, _ := targets.New(tc.name)
			runner = sandbox.NewRunner(fresh)
			r := rng.New(99)
			m := models[0]
			inst := m.GenerateRandom(r)
			m.ApplyFixups(inst)
			if res := runner.Run(inst.Bytes()); res.Outcome == sandbox.Crash {
				t.Fatalf("random valid %s packet crashes the fresh server: %v", m.Name, res.Fault)
			}

			// Determinism guard: two campaigns with equal seeds produce
			// identical stats, and a one-worker fleet matches them both.
			statsFor := func(parallel bool) core.Stats {
				tgt, err := targets.New(tc.name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.Config{
					Models:   tgt.Models(),
					Target:   tgt,
					Strategy: core.StrategyPeachStar,
					Seed:     7,
				}
				if parallel {
					f, err := core.NewFleet(cfg, core.ParallelConfig{Workers: 1})
					if err != nil {
						t.Fatal(err)
					}
					f.Run(2000)
					return f.Stats()
				}
				eng, err := core.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				eng.Run(2000)
				return eng.Stats()
			}
			a, b, c := statsFor(false), statsFor(false), statsFor(true)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("campaign not deterministic under fixed seed:\n  %+v\n  %+v", a, b)
			}
			if !reflect.DeepEqual(a, c) {
				t.Fatalf("one-worker fleet diverges from serial campaign:\n  serial %+v\n  fleet  %+v", a, c)
			}
		})
	}
}
