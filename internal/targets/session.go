package targets

import "repro/internal/session"

// SessionTarget is a Target that supports stateful-session fuzzing: it
// publishes the protocol's session state machine (which message may be
// sent in which state, and where sending it leads) and can reset its
// per-connection session state between sequences.
//
// In-process session campaigns reset the target at every sequence
// boundary (the in-process analogue of reconnecting to a real server);
// long-lived server state — register banks, stored points — survives the
// reset, exactly as it survives a TCP reconnect against a real target.
type SessionTarget interface {
	Target
	// StateModel returns the target's protocol session state machine.
	// Callers treat it as immutable.
	StateModel() *session.StateModel
	// ResetSession clears per-connection session state (activation,
	// sequence counters) while preserving long-lived server state. It
	// must not report coverage: a reset is not an execution.
	ResetSession()
}
