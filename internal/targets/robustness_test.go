package targets_test

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sandbox"
	"repro/internal/targets"
)

// TestCrackNeverPanics: the cracker (Algorithm 2's PARSE) must reject
// arbitrary bytes with an error, never a panic, for every model of every
// target — the fuzzer feeds it every valuable seed it finds.
func TestCrackNeverPanics(t *testing.T) {
	for _, name := range targets.Names() {
		tgt, err := targets.New(name)
		if err != nil {
			t.Fatal(err)
		}
		models := tgt.Models()
		f := func(data []byte) bool {
			for _, m := range models {
				// Crack either succeeds or errors; a panic fails
				// the quick.Check run.
				ins, err := m.Crack(data)
				if err == nil && ins == nil {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestCrackedBytesRoundTrip: whenever a model accepts bytes, re-serializing
// the instantiation tree reproduces them exactly — the invariant that makes
// puzzles faithful donor material.
func TestCrackedBytesRoundTrip(t *testing.T) {
	r := rng.New(77)
	for _, name := range targets.Names() {
		tgt, _ := targets.New(name)
		for _, m := range tgt.Models() {
			// Probe with mutated defaults: flip a few bytes of a
			// valid packet; accepted ones must round trip.
			base := m.Generate().Bytes()
			for i := 0; i < 50; i++ {
				pkt := append([]byte(nil), base...)
				for k := r.Range(1, 3); k > 0; k-- {
					pkt[r.Intn(len(pkt))] = r.Byte()
				}
				ins, err := m.Crack(pkt)
				if err != nil {
					continue
				}
				got := ins.Bytes()
				if string(got) != string(pkt) {
					t.Fatalf("%s/%s: crack/serialize not identity\n in  %x\n out %x",
						name, m.Name, pkt, got)
				}
			}
		}
	}
}

// TestHandleNeverHangs: every target must terminate on arbitrary packets —
// the sandbox hang budget exists for defense, not for routine use.
func TestHandleNeverHangs(t *testing.T) {
	r := rng.New(88)
	for _, name := range targets.Names() {
		tgt, _ := targets.New(name)
		runner := sandbox.NewRunner(tgt)
		for i := 0; i < 300; i++ {
			pkt := r.Bytes(r.Range(0, 96))
			if res := runner.Run(pkt); res.Outcome == sandbox.Hang {
				t.Fatalf("%s hung on %x", name, pkt)
			}
		}
	}
}
