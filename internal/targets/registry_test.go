package targets_test

import (
	"testing"

	"repro/internal/targets"

	_ "repro/internal/targets/cs101"
	_ "repro/internal/targets/dnp3"
	_ "repro/internal/targets/iccp"
	_ "repro/internal/targets/iec104"
	_ "repro/internal/targets/iec61850"
	_ "repro/internal/targets/modbus"
)

func TestNamesSortedAndComplete(t *testing.T) {
	names := targets.Names()
	want := []string{"IEC104", "lib60870", "libiccp", "libiec61850", "libmodbus", "opendnp3"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestNewReturnsFreshInstances(t *testing.T) {
	a, err := targets.New("libmodbus")
	if err != nil {
		t.Fatal(err)
	}
	b, err := targets.New("libmodbus")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("factory returned a shared instance")
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := targets.New("unknown"); err == nil {
		t.Fatal("unknown target should error")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	targets.Register("libmodbus", nil)
}

func TestEveryTargetExposesValidModels(t *testing.T) {
	for _, name := range targets.Names() {
		tgt, err := targets.New(name)
		if err != nil {
			t.Fatal(err)
		}
		models := tgt.Models()
		if len(models) < 4 {
			t.Fatalf("%s exposes only %d models", name, len(models))
		}
		for _, m := range models {
			if err := m.Validate(); err != nil {
				t.Fatalf("%s model %s invalid: %v", name, m.Name, err)
			}
			pkt := m.Generate().Bytes()
			if _, err := m.Crack(pkt); err != nil {
				t.Fatalf("%s model %s does not round trip: %v", name, m.Name, err)
			}
		}
	}
}

func TestModelNamesUniquePerTarget(t *testing.T) {
	for _, name := range targets.Names() {
		tgt, _ := targets.New(name)
		seen := map[string]bool{}
		for _, m := range tgt.Models() {
			if seen[m.Name] {
				t.Fatalf("%s has duplicate model name %s", name, m.Name)
			}
			seen[m.Name] = true
		}
	}
}
