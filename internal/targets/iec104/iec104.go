// Package iec104 reimplements the packet-processing core of the IEC104
// project (github.com/airpig2011/IEC104) — an IEC 60870-5-104 slave — as an
// instrumented fuzzing target (paper §V-A, Fig. 4(b)).
//
// IEC 60870-5-104 frames an APCI (start byte 0x68, length, four control
// octets) optionally followed by an ASDU. The control octets select I, S or
// U format; U frames drive the connection state machine (STARTDT / STOPDT /
// TESTFR), and I frames carry ASDUs whose type id selects the payload
// decoding. This is the smallest of the six evaluated projects — the paper
// reports only dozens of paths for it — and it carries no Table I
// vulnerabilities, which this reproduction mirrors.
package iec104

import (
	"repro/internal/coverage"
	"repro/internal/targets"
)

// ASDU type identifiers handled by the slave (the subset the reference
// implementation decodes).
const (
	typeMSpNa = 1   // M_SP_NA_1 single point information
	typeMMeNa = 9   // M_ME_NA_1 measured value, normalized
	typeCScNa = 45  // C_SC_NA_1 single command
	typeCIcNa = 100 // C_IC_NA_1 general interrogation
	typeCCsNa = 103 // C_CS_NA_1 clock synchronization
)

// Slave is the instrumented IEC104 station core.
type Slave struct {
	id []coverage.BlockID //peachstar:nosnap immutable block identity wired at construction

	started  bool // STARTDT received
	vr, vs   uint16
	points   [64]bool
	measured [64]uint16
	lastCOT  byte
	ext      extendedState
}

// New returns a fresh slave in the stopped state.
func New() *Slave {
	return &Slave{id: coverage.Blocks("iec104", 96)}
}

// Name implements targets.Target.
func (s *Slave) Name() string { return "IEC104" }

func (s *Slave) hit(tr *coverage.Tracer, n int) { tr.Hit(s.id[n]) }

// Handle implements targets.Target: APCI validation, frame-format dispatch,
// ASDU decoding.
func (s *Slave) Handle(tr *coverage.Tracer, pkt []byte) {
	s.hit(tr, 0)
	if len(pkt) < 6 {
		s.hit(tr, 1)
		return
	}
	if pkt[0] != 0x68 {
		s.hit(tr, 2)
		return
	}
	// APCI length counts everything after the length octet.
	if int(pkt[1]) != len(pkt)-2 {
		s.hit(tr, 3)
		return
	}
	ctrl1 := pkt[2]
	switch {
	case ctrl1&0x01 == 0: // I format
		s.hit(tr, 4)
		s.iFrame(tr, pkt)
	case ctrl1&0x03 == 0x01: // S format
		s.hit(tr, 5)
		s.sFrame(tr, pkt)
	default: // U format
		s.hit(tr, 6)
		s.uFrame(tr, ctrl1)
	}
}

// uFrame drives the connection state machine.
func (s *Slave) uFrame(tr *coverage.Tracer, ctrl1 byte) {
	switch ctrl1 {
	case 0x07: // STARTDT act
		s.hit(tr, 7)
		s.started = true
	case 0x13: // STOPDT act
		s.hit(tr, 8)
		s.started = false
	case 0x43: // TESTFR act
		s.hit(tr, 9)
	case 0x0B, 0x23, 0x83: // confirmations from a peer
		s.hit(tr, 10)
	default:
		s.hit(tr, 11)
	}
}

// sFrame acknowledges sequence numbers.
func (s *Slave) sFrame(tr *coverage.Tracer, pkt []byte) {
	ackSeq := uint16(pkt[4])>>1 | uint16(pkt[5])<<7
	if ackSeq > s.vs {
		s.hit(tr, 12)
		return
	}
	s.hit(tr, 13)
}

// iFrame decodes the carried ASDU. The reference implementation drops I
// frames while stopped.
func (s *Slave) iFrame(tr *coverage.Tracer, pkt []byte) {
	if !s.started {
		s.hit(tr, 14)
		return
	}
	s.vr++
	if len(pkt) < 12 {
		s.hit(tr, 15)
		return
	}
	asdu := pkt[6:]
	typeID := asdu[0]
	vsq := asdu[1]
	cot := asdu[2] & 0x3F
	ca := uint16(asdu[4]) | uint16(asdu[5])<<8
	s.lastCOT = cot
	if ca == 0 {
		s.hit(tr, 16)
		return
	}
	n := int(vsq & 0x7F)
	sequence := vsq&0x80 != 0
	body := asdu[6:]
	switch typeID {
	case typeMSpNa:
		s.hit(tr, 17)
		s.decodePoints(tr, body, n, sequence)
	case typeMMeNa:
		s.hit(tr, 18)
		s.decodeMeasured(tr, body, n, sequence)
	case typeCScNa:
		s.hit(tr, 19)
		s.singleCommand(tr, body, cot)
	case typeCIcNa:
		s.hit(tr, 20)
		s.interrogation(tr, body, cot)
	case typeCCsNa:
		s.hit(tr, 21)
		s.clockSync(tr, body)
	default:
		if !s.dispatchExtended(tr, typeID, body, n, sequence, cot) {
			s.hit(tr, 22)
		}
	}
}

// ioa decodes a 3-byte information object address.
func ioa(b []byte) int { return int(b[0]) | int(b[1])<<8 | int(b[2])<<16 }

// decodePoints parses M_SP_NA_1 single-point objects: 3-byte IOA + 1-byte
// SIQ per object, or one IOA followed by packed values when the sequence
// bit is set.
func (s *Slave) decodePoints(tr *coverage.Tracer, body []byte, n int, sequence bool) {
	if sequence {
		s.hit(tr, 23)
		if len(body) < 3+n {
			s.hit(tr, 24)
			return
		}
		base := ioa(body)
		for i := 0; i < n; i++ {
			if base+i < len(s.points) {
				s.hit(tr, 25)
				s.points[base+i] = body[3+i]&1 != 0
			}
		}
		return
	}
	s.hit(tr, 26)
	if len(body) < 4*n {
		s.hit(tr, 27)
		return
	}
	for i := 0; i < n; i++ {
		obj := body[4*i:]
		a := ioa(obj)
		if a < len(s.points) {
			s.hit(tr, 28)
			s.points[a] = obj[3]&1 != 0
		} else {
			s.hit(tr, 29)
		}
	}
}

// decodeMeasured parses M_ME_NA_1 objects: IOA + 2-byte NVA + 1-byte QDS.
func (s *Slave) decodeMeasured(tr *coverage.Tracer, body []byte, n int, sequence bool) {
	step := 6
	if sequence {
		s.hit(tr, 30)
		step = 3
		if len(body) < 3+step*n {
			s.hit(tr, 31)
			return
		}
		base := ioa(body)
		for i := 0; i < n; i++ {
			v := uint16(body[3+3*i]) | uint16(body[4+3*i])<<8
			if base+i < len(s.measured) {
				s.measured[base+i] = v
			}
		}
		return
	}
	s.hit(tr, 32)
	if len(body) < step*n {
		s.hit(tr, 33)
		return
	}
	for i := 0; i < n; i++ {
		obj := body[step*i:]
		a := ioa(obj)
		v := uint16(obj[3]) | uint16(obj[4])<<8
		if a < len(s.measured) {
			s.hit(tr, 34)
			s.measured[a] = v
		}
	}
}

// singleCommand handles C_SC_NA_1: activation / deactivation of one point.
func (s *Slave) singleCommand(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 4 {
		s.hit(tr, 35)
		return
	}
	if cot != 6 && cot != 8 { // act / deact
		s.hit(tr, 36)
		return
	}
	a := ioa(body)
	sco := body[3]
	if a >= len(s.points) {
		s.hit(tr, 37)
		return
	}
	if sco&0x80 != 0 { // select
		s.hit(tr, 38)
		return
	}
	s.hit(tr, 39)
	s.points[a] = sco&1 != 0
}

// interrogation handles C_IC_NA_1 (general interrogation).
func (s *Slave) interrogation(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 4 {
		s.hit(tr, 40)
		return
	}
	if cot != 6 {
		s.hit(tr, 41)
		return
	}
	qoi := body[3]
	if qoi == 20 { // station interrogation
		s.hit(tr, 42)
	} else if qoi >= 21 && qoi <= 36 { // group interrogation
		s.hit(tr, 43)
	} else {
		s.hit(tr, 44)
	}
}

// clockSync handles C_CS_NA_1: CP56Time2a payload.
func (s *Slave) clockSync(tr *coverage.Tracer, body []byte) {
	if len(body) < 3+7 {
		s.hit(tr, 45)
		return
	}
	min := body[5] & 0x3F
	hour := body[7] & 0x1F
	if min > 59 || hour > 23 {
		s.hit(tr, 46)
		return
	}
	s.hit(tr, 47)
}

// Started reports the state machine position (tests use it).
func (s *Slave) Started() bool { return s.started }

func init() {
	targets.Register("IEC104", func() targets.Target { return New() })
}
