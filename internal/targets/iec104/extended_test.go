package iec104

import (
	"testing"

	"repro/internal/sandbox"
)

func TestDoublePoints(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	asdu := []byte{typeMDpNa, 1, 3, 0, 1, 0, 0x04, 0x00, 0x00, 0x02}
	if res := r.Run(iFrameFor(asdu)); res.Outcome != sandbox.OK {
		t.Fatalf("double point crashed: %v", res.Fault)
	}
	if s.ext.doublePoints[4] != 2 {
		t.Fatalf("doublePoints[4] = %d", s.ext.doublePoints[4])
	}
	// Sequence mode.
	asdu = []byte{typeMDpNa, 0x82, 3, 0, 1, 0, 0x08, 0x00, 0x00, 0x01, 0x02}
	r.Run(iFrameFor(asdu))
	if s.ext.doublePoints[8] != 1 || s.ext.doublePoints[9] != 2 {
		t.Fatal("sequence double points wrong")
	}
}

func TestShortFloats(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	// 1.0f = 0x3F800000, little-endian on the wire.
	asdu := []byte{typeMMeNc, 1, 3, 0, 1, 0, 0x05, 0x00, 0x00, 0x00, 0x00, 0x80, 0x3F, 0x00}
	if res := r.Run(iFrameFor(asdu)); res.Outcome != sandbox.OK {
		t.Fatalf("short float crashed: %v", res.Fault)
	}
	if s.ext.floats[5] != 1.0 {
		t.Fatalf("floats[5] = %v", s.ext.floats[5])
	}
	// NaN is screened out.
	asdu = []byte{typeMMeNc, 1, 3, 0, 1, 0, 0x06, 0x00, 0x00, 0x01, 0x00, 0xC0, 0x7F, 0x00}
	r.Run(iFrameFor(asdu))
	if s.ext.floats[6] != 0 {
		t.Fatal("NaN stored")
	}
}

func TestFloatFromBits(t *testing.T) {
	cases := []struct {
		bits uint32
		want float32
	}{
		{0x3F800000, 1.0},
		{0xBF800000, -1.0},
		{0x40490FDB, 3.1415927},
		{0x00000000, 0.0},
		{0x42F60000, 123.0},
	}
	for _, c := range cases {
		got := floatFromBits(c.bits)
		diff := got - c.want
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-5 {
			t.Errorf("floatFromBits(%08x) = %v, want %v", c.bits, got, c.want)
		}
	}
}

func TestIntegratedTotals(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	asdu := []byte{typeMItNa, 1, 3, 0, 1, 0, 0x02, 0x00, 0x00, 0x2A, 0x00, 0x00, 0x00, 0x01}
	r.Run(iFrameFor(asdu))
	if s.ext.totals[2] != 42 {
		t.Fatalf("totals[2] = %d", s.ext.totals[2])
	}
	// Invalid flag (bit 7 of sequence byte) rejects the counter.
	asdu = []byte{typeMItNa, 1, 3, 0, 1, 0, 0x03, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x81}
	r.Run(iFrameFor(asdu))
	if s.ext.totals[3] != 0 {
		t.Fatal("invalid counter stored")
	}
}

func TestDoubleCommand(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	// DCS=2 (on), COT=6.
	asdu := []byte{typeCDcNa, 1, 6, 0, 1, 0, 0x07, 0x00, 0x00, 0x02}
	r.Run(iFrameFor(asdu))
	if s.ext.doublePoints[7] != 2 {
		t.Fatal("double command not executed")
	}
	// DCS=0 invalid.
	asdu = []byte{typeCDcNa, 1, 6, 0, 1, 0, 0x08, 0x00, 0x00, 0x00}
	r.Run(iFrameFor(asdu))
	if s.ext.doublePoints[8] != 0 {
		t.Fatal("invalid DCS executed")
	}
	// Select bit set: no execution.
	asdu = []byte{typeCDcNa, 1, 6, 0, 1, 0, 0x09, 0x00, 0x00, 0x82}
	r.Run(iFrameFor(asdu))
	if s.ext.doublePoints[9] != 0 {
		t.Fatal("select-only command executed")
	}
}

func TestReadAndTestCommands(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	for _, asdu := range [][]byte{
		{typeCRdNa, 1, 5, 0, 1, 0, 0x01, 0x00, 0x00},    // read, COT 5
		{typeCRdNa, 1, 6, 0, 1, 0, 0x01, 0x00, 0x00},    // wrong COT
		{typeCTsNa, 1, 6, 0, 1, 0, 0, 0, 0, 0xAA, 0x55}, // good pattern
		{typeCTsNa, 1, 6, 0, 1, 0, 0, 0, 0, 0x12, 0x34}, // bad pattern
		{typeCTsNa, 1, 6, 0, 1, 0, 0, 0},                // truncated
	} {
		if res := r.Run(iFrameFor(asdu)); res.Outcome != sandbox.OK {
			t.Fatalf("command %x crashed: %v", asdu, res.Fault)
		}
	}
}

func TestExtendedModelsSelfConsistent(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	for _, m := range IEC104Models() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
		if res := r.Run(pkt); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
}

func TestExtendedMalformedSafe(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	for _, asdu := range [][]byte{
		{typeMDpNa, 9, 3, 0, 1, 0, 0x04, 0x00, 0x00, 0x02}, // count beyond body
		{typeMMeNc, 9, 3, 0, 1, 0, 0x05, 0x00, 0x00},       // short float objects
		{typeMItNa, 9, 3, 0, 1, 0},                         // empty body
		{typeCDcNa, 1, 6, 0, 1, 0},                         // no object
	} {
		if res := r.Run(iFrameFor(asdu)); res.Outcome != sandbox.OK {
			t.Fatalf("malformed %x crashed: %v", asdu, res.Fault)
		}
	}
}
