package iec104

import "repro/internal/session"

// This file makes the IEC104 slave a targets.SessionTarget: the
// IEC 60870-5-104 connection state machine as a session.StateModel (the
// STARTDT activation gate every real 104 outstation enforces), and the
// per-connection reset a reconnect implies.

// ResetSession implements targets.SessionTarget: a fresh connection
// starts deactivated with zeroed sequence counters. Stored process data
// (points, measured values) is station state, not connection state, and
// survives — as it does on a real outstation across reconnects. No
// coverage is reported: a reset is not an execution.
func (s *Slave) ResetSession() {
	s.started = false
	s.vr, s.vs = 0, 0
	s.lastCOT = 0
}

// StateModel implements targets.SessionTarget.
func (s *Slave) StateModel() *session.StateModel { return IEC104StateModel() }

// IEC104StateModel builds the 104 connection state machine over the
// IEC104Models set: data transfer is gated on STARTDT activation, so
// I-frame models only appear in the started state. UFrameStart defaults
// to STARTDT-act (its legal set carries the other U functions, which
// mutators explore), so sending it from stopped activates the connection.
func IEC104StateModel() *session.StateModel {
	return &session.StateModel{
		Name:    "IEC104Session",
		Initial: 0,
		States: []session.State{
			{Name: "stopped", Actions: []session.Action{
				{Model: "UFrameStart", Next: 1},
				{Model: "SFrame", Next: 0},
			}},
			{Name: "started", Actions: []session.Action{
				{Model: "SinglePoint", Next: 1},
				{Model: "MeasuredValue", Next: 1},
				{Model: "SingleCommand", Next: 1},
				{Model: "Interrogation", Next: 1},
				{Model: "ClockSync", Next: 1},
				{Model: "ReadCommand", Next: 1},
				{Model: "TestCommand", Next: 1},
				{Model: "SFrame", Next: 1},
				{Model: "UFrameStart", Next: 1},
			}},
		},
	}
}
