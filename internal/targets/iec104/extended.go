package iec104

import "repro/internal/coverage"

// Extended ASDU type identifiers: the monitor- and control-direction types
// the reference implementation decodes beyond the basic set.
const (
	typeMDpNa = 3   // M_DP_NA_1 double point information
	typeMMeNc = 13  // M_ME_NC_1 measured value, short float
	typeMItNa = 15  // M_IT_NA_1 integrated totals (counters)
	typeCDcNa = 46  // C_DC_NA_1 double command
	typeCRdNa = 102 // C_RD_NA_1 read command
	typeCTsNa = 104 // C_TS_NA_1 test command
)

// extendedState holds the banks served by the extended types.
type extendedState struct {
	doublePoints [64]byte // 0 indeterminate, 1 off, 2 on, 3 indeterminate
	floats       [64]float32
	totals       [32]uint32
}

// dispatchExtended decodes the extended type identifiers; returns false
// when the type id is not handled here.
func (s *Slave) dispatchExtended(tr *coverage.Tracer, typeID byte, body []byte, n int, sequence bool, cot byte) bool {
	switch typeID {
	case typeMDpNa:
		s.hit(tr, 48)
		s.decodeDoublePoints(tr, body, n, sequence)
	case typeMMeNc:
		s.hit(tr, 49)
		s.decodeFloats(tr, body, n)
	case typeMItNa:
		s.hit(tr, 50)
		s.decodeTotals(tr, body, n)
	case typeCDcNa:
		s.hit(tr, 51)
		s.doubleCommand(tr, body, cot)
	case typeCRdNa:
		s.hit(tr, 52)
		s.readCommand(tr, body, cot)
	case typeCTsNa:
		s.hit(tr, 53)
		s.testCommand(tr, body, cot)
	default:
		return false
	}
	return true
}

// decodeDoublePoints parses M_DP_NA_1: IOA + DIQ per object (or packed in
// sequence mode, sharing the single-point sequence layout).
func (s *Slave) decodeDoublePoints(tr *coverage.Tracer, body []byte, n int, sequence bool) {
	if sequence {
		if len(body) < 3+n {
			s.hit(tr, 54)
			return
		}
		base := ioa(body)
		for i := 0; i < n; i++ {
			if base+i < len(s.ext.doublePoints) {
				s.hit(tr, 55)
				s.ext.doublePoints[base+i] = body[3+i] & 0x03
			}
		}
		return
	}
	if len(body) < 4*n {
		s.hit(tr, 56)
		return
	}
	for i := 0; i < n; i++ {
		obj := body[4*i:]
		a := ioa(obj)
		if a >= len(s.ext.doublePoints) {
			s.hit(tr, 57)
			continue
		}
		dpi := obj[3] & 0x03
		if dpi == 0 || dpi == 3 {
			s.hit(tr, 58) // indeterminate states take the quality branch
		}
		s.ext.doublePoints[a] = dpi
	}
}

// decodeFloats parses M_ME_NC_1: IOA + IEEE754 short float + QDS.
func (s *Slave) decodeFloats(tr *coverage.Tracer, body []byte, n int) {
	const objLen = 8 // 3 IOA + 4 float + 1 QDS
	if len(body) < objLen*n {
		s.hit(tr, 59)
		return
	}
	for i := 0; i < n; i++ {
		obj := body[objLen*i:]
		a := ioa(obj)
		bits := uint32(obj[3]) | uint32(obj[4])<<8 | uint32(obj[5])<<16 | uint32(obj[6])<<24
		// NaN/Inf screening: exponent all ones.
		if bits&0x7F800000 == 0x7F800000 {
			s.hit(tr, 60)
			continue
		}
		if a < len(s.ext.floats) {
			s.hit(tr, 61)
			s.ext.floats[a] = floatFromBits(bits)
		}
	}
}

// floatFromBits avoids importing math for one conversion.
func floatFromBits(bits uint32) float32 {
	// Manual IEEE754 decode keeps the target stdlib-free beyond fmt.
	sign := float32(1)
	if bits&0x80000000 != 0 {
		sign = -1
	}
	exp := int((bits >> 23) & 0xFF)
	frac := bits & 0x7FFFFF
	mant := float32(frac) / (1 << 23)
	if exp == 0 {
		return sign * mant * pow2(-126)
	}
	return sign * (1 + mant) * pow2(exp-127)
}

func pow2(e int) float32 {
	out := float32(1)
	for ; e > 0; e-- {
		out *= 2
	}
	for ; e < 0; e++ {
		out /= 2
	}
	return out
}

// decodeTotals parses M_IT_NA_1: IOA + 4-byte counter + sequence byte.
func (s *Slave) decodeTotals(tr *coverage.Tracer, body []byte, n int) {
	const objLen = 8
	if len(body) < objLen*n {
		s.hit(tr, 62)
		return
	}
	for i := 0; i < n; i++ {
		obj := body[objLen*i:]
		a := ioa(obj)
		if a >= len(s.ext.totals) {
			s.hit(tr, 63)
			continue
		}
		v := uint32(obj[3]) | uint32(obj[4])<<8 | uint32(obj[5])<<16 | uint32(obj[6])<<24
		if obj[7]&0x80 != 0 {
			s.hit(tr, 64) // invalid counter flag
			continue
		}
		s.ext.totals[a] = v
	}
}

// doubleCommand executes C_DC_NA_1: DCS 1 = off, 2 = on; 0/3 are invalid.
func (s *Slave) doubleCommand(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 4 {
		s.hit(tr, 65)
		return
	}
	if cot != 6 {
		s.hit(tr, 66)
		return
	}
	a := ioa(body)
	dcs := body[3] & 0x03
	if a >= len(s.ext.doublePoints) {
		s.hit(tr, 67)
		return
	}
	if dcs == 0 || dcs == 3 {
		s.hit(tr, 68)
		return
	}
	if body[3]&0x80 != 0 { // select
		s.hit(tr, 69)
		return
	}
	s.hit(tr, 70)
	s.ext.doublePoints[a] = dcs
}

// readCommand serves C_RD_NA_1: request a single object's value.
func (s *Slave) readCommand(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 3 {
		s.hit(tr, 71)
		return
	}
	if cot != 5 { // request
		s.hit(tr, 72)
		return
	}
	a := ioa(body)
	if a < len(s.points) {
		s.hit(tr, 73)
	} else {
		s.hit(tr, 74)
	}
}

// testCommand serves C_TS_NA_1: the fixed test pattern 0xAA55.
func (s *Slave) testCommand(tr *coverage.Tracer, body []byte, cot byte) {
	if len(body) < 5 {
		s.hit(tr, 75)
		return
	}
	if cot != 6 {
		s.hit(tr, 76)
		return
	}
	if body[3] != 0xAA || body[4] != 0x55 {
		s.hit(tr, 77)
		return
	}
	s.hit(tr, 78)
}
