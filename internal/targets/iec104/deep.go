package iec104

import (
	"repro/internal/coverage"
	"repro/internal/datamodel"
	"repro/internal/mem"
	"repro/internal/session"
)

// DeepSlave is the deep-state conformance target: an IEC 60870-5-104
// station core whose planted fault is reachable only through a correct
// multi-message session — STARTDT activation followed by at least two
// processed I-frames, then a single command, all without an intervening
// session reset. It exists to pin the session-fuzzing loop's reason for
// being: a single-packet campaign provably cannot reach the fault, because
// every execution starts from the deactivated state and the fault is gated
// on per-session progress a lone packet cannot accumulate.
//
// DeepSlave is deliberately NOT in the target registry and owns a private
// coverage block region, so registering campaigns and their golden
// fingerprints never see it.
type DeepSlave struct {
	id   []coverage.BlockID
	heap *mem.Heap

	started  bool   // STARTDT activation (session state)
	vr       uint16 // expected N(S) of the next in-order I-frame
	accepted int    // I-frames processed since activation
}

// NewDeep returns a fresh deep-state slave in the stopped state.
func NewDeep() *DeepSlave {
	return &DeepSlave{id: coverage.Blocks("iec104deep", 32), heap: mem.NewHeap()}
}

// Name implements targets.Target.
func (d *DeepSlave) Name() string { return "IEC104Deep" }

// Models implements targets.Target: the standard IEC104 model set.
func (d *DeepSlave) Models() []*datamodel.Model { return IEC104Models() }

// StateModel implements targets.SessionTarget.
func (d *DeepSlave) StateModel() *session.StateModel { return IEC104StateModel() }

// ResetSession implements targets.SessionTarget: the per-connection gate
// state clears; the fault requires re-walking the whole prefix.
func (d *DeepSlave) ResetSession() {
	d.started = false
	d.vr = 0
	d.accepted = 0
}

func (d *DeepSlave) hit(tr *coverage.Tracer, n int) { tr.Hit(d.id[n]) }

// Handle implements targets.Target.
func (d *DeepSlave) Handle(tr *coverage.Tracer, pkt []byte) {
	d.hit(tr, 0)
	if len(pkt) < 6 || pkt[0] != 0x68 || int(pkt[1]) != len(pkt)-2 {
		d.hit(tr, 1)
		return
	}
	ctrl1 := pkt[2]
	switch {
	case ctrl1&0x01 == 0: // I format
		d.hit(tr, 2)
		d.iFrame(tr, pkt)
	case ctrl1&0x03 == 0x01: // S format
		d.hit(tr, 3)
	default: // U format
		d.uFrame(tr, ctrl1)
	}
}

// uFrame drives the activation gate.
func (d *DeepSlave) uFrame(tr *coverage.Tracer, ctrl1 byte) {
	switch ctrl1 {
	case 0x07: // STARTDT act
		d.hit(tr, 4)
		d.started = true
		d.vr = 0
		d.accepted = 0
	case 0x13: // STOPDT act
		d.hit(tr, 5)
		d.started = false
	case 0x43: // TESTFR act
		d.hit(tr, 6)
	default:
		d.hit(tr, 7)
	}
}

// iFrame processes a data frame: dropped while deactivated, counted while
// activated. The single command fired after two processed I-frames walks a
// freed buffer — the planted deep-state fault.
func (d *DeepSlave) iFrame(tr *coverage.Tracer, pkt []byte) {
	if !d.started {
		d.hit(tr, 8)
		return
	}
	if len(pkt) < 12 {
		d.hit(tr, 9)
		return
	}
	// In-order delivery earns an extra branch; the gate below does not
	// require it — the fault is about session depth, not about the fuzzer
	// tracking the exact sequence-number discipline.
	ns := uint16(pkt[2])>>1 | uint16(pkt[3])<<7
	if ns == d.vr {
		d.hit(tr, 10)
	} else {
		d.hit(tr, 11)
	}
	d.vr++
	typeID := pkt[6]
	if typeID == typeCScNa && d.accepted >= 2 {
		d.hit(tr, 12)
		// The planted fault: command handling reads a connection buffer
		// that deep session progress has already torn down.
		buf := d.heap.Alloc(8)
		d.heap.Free(buf, "iec104deep.command.teardown")
		d.heap.LoadN(buf, 4, "iec104deep.command.deep") // heap-use-after-free
		return
	}
	d.hit(tr, 13)
	d.accepted++
}
