package iec104

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
)

// This file is the IEC 60870-5-104 target's side of the campaign-checkpoint
// seam (sandbox.StateCheckpointer): the activation flag, both sequence
// counters, the point and measurement banks, and the extended-type banks.
// Session-scoped state is captured too — a checkpoint is a cut of the
// whole campaign, mid-session wear included.

// SnapshotState implements sandbox.StateCheckpointer.
func (s *Slave) SnapshotState(w *checkpoint.Writer) {
	w.Bool(s.started)
	w.Uvarint(uint64(s.vr))
	w.Uvarint(uint64(s.vs))
	for i := range s.points {
		w.Bool(s.points[i])
	}
	for i := range s.measured {
		w.Uvarint(uint64(s.measured[i]))
	}
	w.Uvarint(uint64(s.lastCOT))
	w.Blob(s.ext.doublePoints[:])
	for i := range s.ext.floats {
		w.U64(uint64(math.Float32bits(s.ext.floats[i])))
	}
	for i := range s.ext.totals {
		w.Uvarint(uint64(s.ext.totals[i]))
	}
}

// RestoreState implements sandbox.StateCheckpointer.
func (s *Slave) RestoreState(r *checkpoint.Reader) error {
	s.started = r.Bool()
	s.vr = read16(r, "vr")
	s.vs = read16(r, "vs")
	for i := range s.points {
		s.points[i] = r.Bool()
	}
	for i := range s.measured {
		s.measured[i] = read16(r, "measurement")
	}
	cot := r.Uvarint()
	if r.Err() == nil && cot > 0xff {
		return fmt.Errorf("iec104: cause of transmission %d out of range", cot)
	}
	s.lastCOT = byte(cot)
	dp := r.Blob()
	if r.Err() != nil {
		return r.Err()
	}
	if len(dp) != len(s.ext.doublePoints) {
		return fmt.Errorf("iec104: %d double points, bank holds %d", len(dp), len(s.ext.doublePoints))
	}
	copy(s.ext.doublePoints[:], dp)
	for i := range s.ext.floats {
		bits := r.U64()
		if r.Err() == nil && bits > math.MaxUint32 {
			return fmt.Errorf("iec104: float bits %#x out of range", bits)
		}
		s.ext.floats[i] = math.Float32frombits(uint32(bits))
	}
	for i := range s.ext.totals {
		t := r.Uvarint()
		if r.Err() == nil && t > math.MaxUint32 {
			return fmt.Errorf("iec104: counter total %d out of range", t)
		}
		s.ext.totals[i] = uint32(t)
	}
	return r.Err()
}

// read16 reads one uvarint pinned to the 16-bit range.
func read16(r *checkpoint.Reader, what string) uint16 {
	v := r.Uvarint()
	if r.Err() == nil && v > 0xffff {
		r.Fail(fmt.Errorf("iec104: %s %d out of range", what, v))
		return 0
	}
	return uint16(v)
}
