package iec104

import "repro/internal/datamodel"

// Models returns the IEC 60870-5-104 Pit-equivalent. The APCI length field
// is a size-of relation over the control octets and the ASDU — the same
// shape the real APCI carries. The I-frame models share the ASDU header
// layout (type id token, VSQ, COT, common address), so their header chunks
// are mutual donors across type ids, while the U/S-frame models exercise
// the connection state machine.
func (s *Slave) Models() []*datamodel.Model {
	return IEC104Models()
}

// apci wraps body chunks behind the 0x68 start byte and the length field.
func apci(name string, body ...*datamodel.Chunk) *datamodel.Model {
	fields := []*datamodel.Chunk{
		datamodel.Num("start", 1, 0x68).AsToken(),
		datamodel.Num("apduLen", 1, 0).WithRel(datamodel.SizeOf, "apdu", 0),
		datamodel.Blk("apdu", body...),
	}
	return datamodel.NewModel(name, fields...)
}

// asduIFrame builds an I-format model for one ASDU type id.
func asduIFrame(name string, typeID uint64, objects ...*datamodel.Chunk) *datamodel.Model {
	body := []*datamodel.Chunk{
		// Send/receive sequence numbers; LSB of ctrl1 clear = I format.
		datamodel.Num("ctrl1", 1, 0x00),
		datamodel.Num("ctrl2", 1, 0x00),
		datamodel.Num("ctrl3", 1, 0x00),
		datamodel.Num("ctrl4", 1, 0x00),
		datamodel.Num("typeId", 1, typeID).AsToken(),
		datamodel.Num("vsq", 1, 1),
		datamodel.Num("cot", 1, 6),
		datamodel.Num("originator", 1, 0),
		datamodel.NumLE("commonAddr", 2, 1),
	}
	body = append(body, objects...)
	return apci(name, body...)
}

// IEC104Models builds the model set without a slave instance.
func IEC104Models() []*datamodel.Model {
	return []*datamodel.Model{
		apci("UFrameStart",
			datamodel.Num("ctrl1", 1, 0x07).WithLegal(0x07, 0x13, 0x43, 0x0B, 0x23, 0x83).AsToken(),
			datamodel.Num("ctrl2", 1, 0),
			datamodel.Num("ctrl3", 1, 0),
			datamodel.Num("ctrl4", 1, 0),
		),
		apci("SFrame",
			datamodel.Num("ctrl1", 1, 0x01).AsToken(),
			datamodel.Num("ctrl2", 1, 0),
			datamodel.Num("ctrl3", 1, 0),
			datamodel.Num("ctrl4", 1, 0),
		),
		asduIFrame("SinglePoint", typeMSpNa,
			datamodel.BytesVar("objects", 4, 32, []byte{0x01, 0x00, 0x00, 0x01}),
		),
		asduIFrame("MeasuredValue", typeMMeNa,
			datamodel.BytesVar("objects", 6, 36, []byte{0x02, 0x00, 0x00, 0x34, 0x12, 0x00}),
		),
		asduIFrame("SingleCommand", typeCScNa,
			datamodel.Bytes("ioa", 3, []byte{0x03, 0x00, 0x00}),
			datamodel.Num("sco", 1, 1),
		),
		asduIFrame("Interrogation", typeCIcNa,
			datamodel.Bytes("ioa", 3, []byte{0x00, 0x00, 0x00}),
			datamodel.Num("qoi", 1, 20),
		),
		asduIFrame("ClockSync", typeCCsNa,
			datamodel.Bytes("ioa", 3, []byte{0x00, 0x00, 0x00}),
			datamodel.Bytes("cp56", 7, []byte{0x00, 0x00, 0x1E, 0x0A, 0x0C, 0x06, 0x14}),
		),
		asduIFrame("DoublePoint", typeMDpNa,
			datamodel.BytesVar("objects", 4, 32, []byte{0x04, 0x00, 0x00, 0x02}),
		),
		asduIFrame("ShortFloat", typeMMeNc,
			datamodel.BytesVar("objects", 8, 40, []byte{0x05, 0x00, 0x00, 0x00, 0x00, 0x80, 0x3F, 0x00}),
		),
		asduIFrame("IntegratedTotals", typeMItNa,
			datamodel.BytesVar("objects", 8, 40, []byte{0x06, 0x00, 0x00, 0x2A, 0x00, 0x00, 0x00, 0x01}),
		),
		asduIFrame("DoubleCommand", typeCDcNa,
			datamodel.Bytes("ioa", 3, []byte{0x07, 0x00, 0x00}),
			datamodel.Num("dcs", 1, 2),
		),
		asduIFrameWithCOT("ReadCommand", typeCRdNa, 5,
			datamodel.Bytes("ioa", 3, []byte{0x01, 0x00, 0x00}),
		),
		asduIFrame("TestCommand", typeCTsNa,
			datamodel.Bytes("ioa", 3, []byte{0x00, 0x00, 0x00}),
			datamodel.Num("pattern", 2, 0xAA55), // wire bytes 0xAA 0x55
		),
	}
}

// asduIFrameWithCOT is asduIFrame with a non-activation default cause of
// transmission (the read command requires COT 5).
func asduIFrameWithCOT(name string, typeID, cot uint64, objects ...*datamodel.Chunk) *datamodel.Model {
	m := asduIFrame(name, typeID, objects...)
	var fix func(c *datamodel.Chunk) bool
	fix = func(c *datamodel.Chunk) bool {
		if c.Name == "cot" {
			c.Default = cot
			return true
		}
		for _, ch := range c.Children {
			if fix(ch) {
				return true
			}
		}
		return false
	}
	for _, f := range m.Fields {
		if fix(f) {
			break
		}
	}
	return m
}
