package iec104

import (
	"testing"

	"repro/internal/sandbox"
	"repro/internal/targets"
)

// apciFrame wraps APDU bytes with start byte and length.
func apciFrame(apdu []byte) []byte {
	out := []byte{0x68, byte(len(apdu))}
	return append(out, apdu...)
}

// iFrameFor builds an I frame with the given ASDU.
func iFrameFor(asdu []byte) []byte {
	apdu := append([]byte{0x00, 0x00, 0x00, 0x00}, asdu...)
	return apciFrame(apdu)
}

// startDT is the STARTDT activation U frame.
var startDT = []byte{0x68, 0x04, 0x07, 0x00, 0x00, 0x00}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("IEC104")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Name() != "IEC104" {
		t.Fatalf("name = %s", tgt.Name())
	}
	if len(tgt.Models()) != 13 {
		t.Fatalf("models = %d", len(tgt.Models()))
	}
}

func TestModelsSelfConsistent(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	for _, m := range IEC104Models() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
		if res := r.Run(pkt); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
}

func TestStateMachine(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	if s.Started() {
		t.Fatal("slave should start stopped")
	}
	r.Run(startDT)
	if !s.Started() {
		t.Fatal("STARTDT not processed")
	}
	r.Run([]byte{0x68, 0x04, 0x13, 0x00, 0x00, 0x00}) // STOPDT
	if s.Started() {
		t.Fatal("STOPDT not processed")
	}
}

func TestIFrameDroppedWhenStopped(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	asdu := []byte{typeMSpNa, 1, 6, 0, 1, 0, 0x01, 0x00, 0x00, 0x01}
	r.Run(iFrameFor(asdu))
	if s.points[1] {
		t.Fatal("stopped slave processed an I frame")
	}
	r.Run(startDT)
	r.Run(iFrameFor(asdu))
	if !s.points[1] {
		t.Fatal("started slave ignored single point")
	}
}

func TestMalformedFramesSafe(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	for _, pkt := range [][]byte{
		nil,
		{0x68},
		{0x67, 4, 7, 0, 0, 0},         // wrong start byte
		{0x68, 9, 7, 0, 0, 0},         // bad length
		apciFrame([]byte{0, 0, 0, 0}), // I frame with no ASDU
		iFrameFor([]byte{1, 1, 6}),    // truncated ASDU header
		iFrameFor([]byte{1, 9, 6, 0, 1, 0, 0x01}), // VSQ larger than body
	} {
		if res := r.Run(pkt); res.Outcome != sandbox.OK {
			t.Fatalf("malformed frame crashed: %x -> %v", pkt, res.Fault)
		}
	}
}

func TestCommonAddressZeroRejected(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	asdu := []byte{typeMSpNa, 1, 6, 0, 0, 0, 0x01, 0x00, 0x00, 0x01}
	r.Run(iFrameFor(asdu))
	if s.points[1] {
		t.Fatal("ASDU with CA=0 should be dropped")
	}
}

func TestSequenceEncodedPoints(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	// VSQ sequence bit + n=3, base IOA 5: values 1,0,1.
	asdu := []byte{typeMSpNa, 0x83, 6, 0, 1, 0, 0x05, 0x00, 0x00, 0x01, 0x00, 0x01}
	res := r.Run(iFrameFor(asdu))
	if res.Outcome != sandbox.OK {
		t.Fatalf("crash: %v", res.Fault)
	}
	if !s.points[5] || s.points[6] || !s.points[7] {
		t.Fatal("sequence-encoded points wrong")
	}
}

func TestMeasuredValues(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	asdu := []byte{typeMMeNa, 1, 3, 0, 1, 0, 0x02, 0x00, 0x00, 0x34, 0x12, 0x00}
	r.Run(iFrameFor(asdu))
	if s.measured[2] != 0x1234 {
		t.Fatalf("measured[2] = %04x", s.measured[2])
	}
}

func TestSingleCommand(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	// COT=6 act, IOA=3, SCO=1 (on, execute).
	asdu := []byte{typeCScNa, 1, 6, 0, 1, 0, 0x03, 0x00, 0x00, 0x01}
	r.Run(iFrameFor(asdu))
	if !s.points[3] {
		t.Fatal("command not executed")
	}
	// Select bit set: no execution.
	asdu = []byte{typeCScNa, 1, 6, 0, 1, 0, 0x04, 0x00, 0x00, 0x81}
	r.Run(iFrameFor(asdu))
	if s.points[4] {
		t.Fatal("select-only command executed")
	}
	// Wrong COT ignored.
	asdu = []byte{typeCScNa, 1, 3, 0, 1, 0, 0x05, 0x00, 0x00, 0x01}
	r.Run(iFrameFor(asdu))
	if s.points[5] {
		t.Fatal("command with COT=3 executed")
	}
}

func TestClockSyncValidation(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	good := []byte{typeCCsNa, 1, 6, 0, 1, 0, 0, 0, 0, 0x00, 0x00, 0x1E, 0x0A, 0x0C, 0x06, 0x14}
	if res := r.Run(iFrameFor(good)); res.Outcome != sandbox.OK {
		t.Fatalf("clock sync crashed: %v", res.Fault)
	}
}

func TestNoSeededCrashes(t *testing.T) {
	// IEC104 carries no Table I bugs: hammer it with structured noise and
	// expect zero crashes.
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(startDT)
	for i := 0; i < 2000; i++ {
		pkt := []byte{0x68, 0, byte(i), byte(i >> 3), byte(i >> 5), byte(i >> 7),
			byte(i), byte(i >> 1), 6, 0, 1, 0, byte(i), 0, 0, byte(i)}
		pkt[1] = byte(len(pkt) - 2)
		if res := r.Run(pkt); res.Outcome == sandbox.Crash {
			t.Fatalf("unexpected crash on %x: %v", pkt, res.Fault)
		}
	}
}
