package modbus

import (
	"testing"

	"repro/internal/datamodel"
	"repro/internal/sandbox"
)

// rtuFrame builds a valid RTU frame around a PDU.
func rtuFrame(slave byte, pdu []byte) []byte {
	out := append([]byte{slave}, pdu...)
	crc := crc16(out)
	return append(out, byte(crc), byte(crc>>8))
}

func TestRTUFrameDispatch(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	res := r.Run(rtuFrame(1, []byte{0x06, 0x00, 0x40, 0xCA, 0xFE}))
	if res.Outcome != sandbox.OK {
		t.Fatalf("RTU write crashed: %v", res.Fault)
	}
	if s.holding[0x40] != 0xCAFE {
		t.Fatalf("holding[0x40] = %04x", s.holding[0x40])
	}
}

func TestRTUBadCRCDropped(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	pkt := rtuFrame(1, []byte{0x06, 0x00, 0x41, 0x11, 0x11})
	pkt[len(pkt)-1] ^= 0xFF
	r.Run(pkt)
	if s.holding[0x41] == 0x1111 {
		t.Fatal("RTU frame with bad CRC processed")
	}
}

func TestRTUWrongSlaveDropped(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	// Slave 5 frames do not even reach the RTU discriminator (first
	// byte > 1), and the MBAP path rejects them.
	pkt := rtuFrame(5, []byte{0x06, 0x00, 0x42, 0x22, 0x22})
	r.Run(pkt)
	if s.holding[0x42] == 0x2222 {
		t.Fatal("frame for another slave processed")
	}
}

func TestRTUSharesServiceLayerWithTCP(t *testing.T) {
	// The same UAF state machine is reachable over RTU — the shared
	// dispatch of Fig. 2.
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(rtuFrame(1, []byte{0x08, 0x00, 0x04, 0x00, 0x00})) // force listen-only
	r.Run(rtuFrame(1, []byte{0x08, 0x00, 0x01, 0x00, 0x00})) // restart
	res := r.Run(rtuFrame(1, []byte{0x08, 0x00, 0x00, 0x12, 0x34}))
	if res.Outcome != sandbox.Crash {
		t.Fatal("UAF not reachable over the RTU path")
	}
}

func TestReadFileRecord(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	// One sub-request: file 2, record 1, length 2.
	pdu := []byte{fcReadFileRecord, 7, refTypeFileRecord, 0x00, 0x02, 0x00, 0x01, 0x00, 0x02}
	res := r.Run(frame(pdu))
	if res.Outcome != sandbox.OK {
		t.Fatalf("read file record crashed: %v", res.Fault)
	}
	resp := s.LastResponse()
	// fc, respLen, subLen=5, refType, then records 0x0201 0x0202.
	if resp[7] != fcReadFileRecord || resp[9] != 5 || resp[10] != refTypeFileRecord {
		t.Fatalf("response header = %x", resp)
	}
	if resp[11] != 0x02 || resp[12] != 0x01 || resp[13] != 0x02 || resp[14] != 0x02 {
		t.Fatalf("record data = %x", resp[11:])
	}
}

func TestReadFileRecordValidation(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	cases := [][]byte{
		{fcReadFileRecord},                                                // truncated
		{fcReadFileRecord, 6, 1, 2, 3, 4, 5, 6},                           // byteCount not multiple of 7
		{fcReadFileRecord, 7, 0x09, 0, 2, 0, 1, 0, 2},                     // wrong ref type
		{fcReadFileRecord, 7, refTypeFileRecord, 0x00, 0x09, 0, 1, 0, 2},  // file out of range
		{fcReadFileRecord, 7, refTypeFileRecord, 0x00, 0x01, 0, 30, 0, 9}, // rec+len beyond file
	}
	for _, pdu := range cases {
		if res := r.Run(frame(pdu)); res.Outcome != sandbox.OK {
			t.Fatalf("malformed file-record request crashed: %x -> %v", pdu, res.Fault)
		}
	}
}

func TestWriteThenReadFileRecord(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	// Write two records to file 3 starting at record 4.
	pdu := []byte{fcWriteFileRecord, 11, refTypeFileRecord, 0x00, 0x03, 0x00, 0x04, 0x00, 0x02,
		0xAA, 0xBB, 0xCC, 0xDD}
	if res := r.Run(frame(pdu)); res.Outcome != sandbox.OK {
		t.Fatalf("write file record crashed: %v", res.Fault)
	}
	if s.files[3][4] != 0xAABB || s.files[3][5] != 0xCCDD {
		t.Fatalf("file records = %04x %04x", s.files[3][4], s.files[3][5])
	}
}

func TestReadFIFOQueue(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	s.holding[0x50] = 3 // depth
	s.holding[0x51] = 0x0102
	s.holding[0x52] = 0x0304
	s.holding[0x53] = 0x0506
	res := r.Run(frame([]byte{fcReadFIFOQueue, 0x00, 0x50}))
	if res.Outcome != sandbox.OK {
		t.Fatalf("fifo crashed: %v", res.Fault)
	}
	resp := s.LastResponse()
	if resp[11] != 3 || resp[12] != 0x01 || resp[13] != 0x02 {
		t.Fatalf("fifo response = %x", resp)
	}
	// Over-depth queue -> illegal value.
	s.holding[0x60] = 99
	r.Run(frame([]byte{fcReadFIFOQueue, 0x00, 0x60}))
	if resp := s.LastResponse(); resp[0] != fcReadFIFOQueue|0x80 || resp[1] != exIllegalValue {
		t.Fatalf("over-depth response = %x", resp)
	}
}

func TestDeviceIdentification(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	// Stream access: basic objects.
	res := r.Run(frame([]byte{fcEncapsulated, meiDeviceID, 0x01, 0x00}))
	if res.Outcome != sandbox.OK {
		t.Fatalf("device id crashed: %v", res.Fault)
	}
	resp := s.LastResponse()
	if resp[7] != fcEncapsulated || resp[8] != meiDeviceID {
		t.Fatalf("device id response = %x", resp)
	}
	// Individual access: object 1 = product code.
	r.Run(frame([]byte{fcEncapsulated, meiDeviceID, 0x04, 0x01}))
	resp = s.LastResponse()
	if string(resp[len(resp)-5:]) != "PSTAR" {
		t.Fatalf("individual object response = %x", resp)
	}
	// Unknown MEI type -> illegal function.
	r.Run(frame([]byte{fcEncapsulated, 0x0D, 0x01, 0x00}))
	if resp := s.LastResponse(); resp[0] != fcEncapsulated|0x80 {
		t.Fatalf("unknown MEI response = %x", resp)
	}
	// Unknown object in individual mode -> illegal address.
	r.Run(frame([]byte{fcEncapsulated, meiDeviceID, 0x04, 0x55}))
	if resp := s.LastResponse(); resp[1] != exIllegalAddress {
		t.Fatalf("unknown object response = %x", resp)
	}
}

func TestExtendedModelsRoundTrip(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	for _, m := range ModbusModels() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
		if res := r.Run(pkt); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
}

func TestRTUModelMatchesWire(t *testing.T) {
	for _, m := range ModbusModels() {
		if m.Name != "RTUReadHolding" {
			continue
		}
		got := m.Generate().Bytes()
		want := rtuFrame(1, []byte{0x03, 0x00, 0x00, 0x00, 0x04})
		if len(got) != len(want) {
			t.Fatalf("lengths differ: %x vs %x", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("byte %d: %x vs %x", i, got, want)
			}
		}
		return
	}
	t.Fatal("RTUReadHolding model missing")
}

var _ = datamodel.CRC16Modbus // document the fixup pairing with HandleRTU
