package modbus

import "repro/internal/datamodel"

// Models returns the Modbus TCP Pit-equivalent: one data model per packet
// type, keyed by function code (the "function code" field of §III). Each
// model wraps an MBAP header whose length field is a size-of relation over
// the unit id and PDU — the integrity constraint File Fixup must maintain.
//
// Matching the paper's note that "the input model does not have to be
// elaborate" (§V-A), payload bodies are coarse-grained: addresses and
// quantities are numbers, data sections are variable blobs.
func (s *Server) Models() []*datamodel.Model {
	return ModbusModels()
}

// mbap wraps a PDU model body in the MBAP header. The length relation spans
// a synthetic block containing unit id + PDU so the fixup engine measures
// exactly what the header's length field counts.
func mbap(name string, fc uint64, body ...*datamodel.Chunk) *datamodel.Model {
	pduChildren := append([]*datamodel.Chunk{
		datamodel.Num("fc", 1, fc).AsToken(),
	}, body...)
	return datamodel.NewModel(name,
		datamodel.Num("txn", 2, 1),
		datamodel.Num("proto", 2, 0).AsToken(),
		datamodel.Num("length", 2, 0).WithRel(datamodel.SizeOf, "tail", 0),
		datamodel.Blk("tail",
			datamodel.Num("unit", 1, 0xFF).WithLegal(0, 1, 0xFF),
			datamodel.Blk("pdu", pduChildren...),
		),
	)
}

// ModbusModels builds the model set without a server instance.
func ModbusModels() []*datamodel.Model {
	return []*datamodel.Model{
		mbap("ReadCoils", fcReadCoils,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("qty", 2, 8),
		),
		mbap("ReadDiscreteInputs", fcReadDiscreteInputs,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("qty", 2, 8),
		),
		mbap("ReadHoldingRegisters", fcReadHolding,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("qty", 2, 4),
		),
		mbap("ReadInputRegisters", fcReadInput,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("qty", 2, 4),
		),
		mbap("WriteSingleCoil", fcWriteSingleCoil,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("value", 2, 0xFF00).WithLegal(0x0000, 0xFF00),
		),
		mbap("WriteSingleRegister", fcWriteSingleRegister,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("value", 2, 0x1234),
		),
		mbap("ReadExceptionStatus", fcReadExceptionStatus),
		mbap("Diagnostics", fcDiagnostics,
			datamodel.Num("sub", 2, 0).WithLegal(
				diagReturnQueryData, diagRestartComms, diagChangeASCIIDelim,
				diagForceListenOnly, diagClearCounters, diagBusMessageCount,
				diagBusCommErrorCount,
			),
			datamodel.Num("data", 2, 0),
		),
		mbap("GetCommEventCounter", fcGetCommEventCounter),
		mbap("WriteMultipleCoils", fcWriteMultipleCoils,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("qty", 2, 16),
			datamodel.Num("byteCount", 1, 0).WithRel(datamodel.SizeOf, "bits", 0),
			datamodel.BytesVar("bits", 1, 0xF6, []byte{0xFF, 0x0F}),
		),
		mbap("WriteMultipleRegisters", fcWriteMultipleRegs,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("qty", 2, 2),
			datamodel.Num("byteCount", 1, 0).WithRel(datamodel.SizeOf, "values", 0),
			datamodel.BytesVar("values", 2, 0xF6, []byte{0x00, 0x01, 0x00, 0x02}),
		),
		mbap("ReportServerID", fcReportServerID),
		mbap("MaskWriteRegister", fcMaskWriteRegister,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("andMask", 2, 0xFFFF),
			datamodel.Num("orMask", 2, 0),
		),
		mbap("ReadWriteMultipleRegisters", fcReadWriteMultipleRegs,
			datamodel.Num("readAddr", 2, 0),
			datamodel.Num("readQty", 2, 2),
			datamodel.Num("writeAddr", 2, 0),
			datamodel.Num("writeQty", 2, 0),
			datamodel.Num("byteCount", 1, 0).WithRel(datamodel.SizeOf, "writeData", 0),
			datamodel.BytesVar("writeData", 0, 0xF2, nil),
		),
		mbap("ReadFileRecord", fcReadFileRecord,
			datamodel.Num("byteCount", 1, 0).WithRel(datamodel.SizeOf, "subReqs", 0),
			datamodel.Rep("subReqs", datamodel.Blk("subReq",
				datamodel.Num("refType", 1, refTypeFileRecord),
				datamodel.Num("fileNo", 2, 1),
				datamodel.Num("recNo", 2, 0),
				datamodel.Num("recLen", 2, 2),
			), 4),
		),
		mbap("WriteFileRecord", fcWriteFileRecord,
			datamodel.Num("byteCount", 1, 0).WithRel(datamodel.SizeOf, "subReq", 0),
			datamodel.Blk("subReq",
				datamodel.Num("refType", 1, refTypeFileRecord),
				datamodel.Num("fileNo", 2, 1),
				datamodel.Num("recNo", 2, 0),
				datamodel.Num("recLen", 2, 0).WithRel(datamodel.CountOf, "records", 0),
				datamodel.Rep("records", datamodel.Num("record", 2, 0xBEEF), 8),
			),
		),
		mbap("ReadFIFOQueue", fcReadFIFOQueue,
			datamodel.Num("pointer", 2, 0),
		),
		mbap("ReadDeviceID", fcEncapsulated,
			datamodel.Num("mei", 1, meiDeviceID),
			datamodel.Num("readCode", 1, 1).WithLegal(1, 2, 3, 4),
			datamodel.Num("objectId", 1, 0),
		),
		// RTU serial family: slave address + PDU + CRC16 (little-endian
		// on the wire) — the Fig. 1-style Fixup constraint of Modbus.
		rtu("RTUReadHolding", fcReadHolding,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("qty", 2, 4),
		),
		rtu("RTUWriteSingleRegister", fcWriteSingleRegister,
			datamodel.Num("addr", 2, 0),
			datamodel.Num("value", 2, 0x1234),
		),
		rtu("RTUDiagnostics", fcDiagnostics,
			datamodel.Num("sub", 2, 0).WithLegal(
				diagReturnQueryData, diagRestartComms, diagForceListenOnly,
				diagClearCounters,
			),
			datamodel.Num("data", 2, 0),
		),
	}
}

// rtu wraps a PDU in the Modbus RTU serial frame: slave address, PDU,
// CRC16 transmitted little-endian.
func rtu(name string, fc uint64, body ...*datamodel.Chunk) *datamodel.Model {
	pduChildren := append([]*datamodel.Chunk{
		datamodel.Num("fc", 1, fc).AsToken(),
	}, body...)
	return datamodel.NewModel(name,
		datamodel.Num("slave", 1, 1).WithLegal(0, 1),
		datamodel.Blk("pdu", pduChildren...),
		datamodel.NumLE("crc", 2, 0).WithFix(datamodel.CRC16Modbus, "slave", "pdu"),
	)
}
