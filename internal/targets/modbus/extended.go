package modbus

import "repro/internal/coverage"

// Extended function codes: the remainder of the libmodbus-served set plus
// the encapsulated-interface transport. These live in their own file to
// mirror how libmodbus splits core register access from auxiliary
// services.
const (
	fcReadFileRecord  = 0x14
	fcWriteFileRecord = 0x15
	fcReadFIFOQueue   = 0x18
	fcEncapsulated    = 0x2B
	meiDeviceID       = 0x0E
	refTypeFileRecord = 0x06
	maxFileRecords    = 4
	recordsPerFile    = 32
)

// fileRecords is the file-record storage of the server (FC 0x14/0x15).
type fileRecords [maxFileRecords][recordsPerFile]uint16

// extendedDispatch serves the auxiliary function codes; it is called from
// Handle's switch via the hook below.
func (s *Server) extendedDispatch(tr *coverage.Tracer, fc byte, pdu []byte) bool {
	switch fc {
	case fcReadFileRecord:
		s.hit(tr, 110)
		s.readFileRecord(tr, pdu)
	case fcWriteFileRecord:
		s.hit(tr, 111)
		s.writeFileRecord(tr, pdu)
	case fcReadFIFOQueue:
		s.hit(tr, 112)
		s.readFIFOQueue(tr, pdu)
	case fcEncapsulated:
		s.hit(tr, 113)
		s.encapsulated(tr, pdu)
	default:
		return false
	}
	return true
}

// readFileRecord serves FC 0x14: byte count, then 7-byte sub-requests
// (reference type, file number, record number, record length).
func (s *Server) readFileRecord(tr *coverage.Tracer, pdu []byte) {
	if len(pdu) < 2 {
		s.hit(tr, 114)
		return
	}
	byteCount := int(pdu[1])
	if byteCount < 7 || byteCount > 0xF5 || len(pdu) != 2+byteCount {
		s.hit(tr, 115)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if byteCount%7 != 0 {
		s.hit(tr, 116)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	var resp []byte
	for off := 2; off < 2+byteCount; off += 7 {
		sub := pdu[off : off+7]
		if sub[0] != refTypeFileRecord {
			s.hit(tr, 117)
			s.exception(tr, pdu[0], exIllegalAddress)
			return
		}
		file := int(be16(sub[1:]))
		rec := int(be16(sub[3:]))
		length := int(be16(sub[5:]))
		if file >= maxFileRecords || rec+length > recordsPerFile {
			s.hit(tr, 118)
			s.exception(tr, pdu[0], exIllegalAddress)
			return
		}
		s.hit(tr, 119)
		resp = append(resp, byte(1+2*length), refTypeFileRecord)
		for i := 0; i < length; i++ {
			v := s.files[file][rec+i]
			resp = append(resp, byte(v>>8), byte(v))
		}
	}
	s.respond(tr, append([]byte{pdu[0], byte(len(resp))}, resp...))
}

// writeFileRecord serves FC 0x15: byte count, then variable sub-requests
// carrying record data.
func (s *Server) writeFileRecord(tr *coverage.Tracer, pdu []byte) {
	if len(pdu) < 2 {
		s.hit(tr, 120)
		return
	}
	byteCount := int(pdu[1])
	if byteCount < 9 || len(pdu) != 2+byteCount {
		s.hit(tr, 121)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	off := 2
	for off < 2+byteCount {
		if off+7 > len(pdu) {
			s.hit(tr, 122)
			s.exception(tr, pdu[0], exIllegalValue)
			return
		}
		sub := pdu[off : off+7]
		if sub[0] != refTypeFileRecord {
			s.hit(tr, 123)
			s.exception(tr, pdu[0], exIllegalAddress)
			return
		}
		file := int(be16(sub[1:]))
		rec := int(be16(sub[3:]))
		length := int(be16(sub[5:]))
		if off+7+2*length > len(pdu) {
			s.hit(tr, 124)
			s.exception(tr, pdu[0], exIllegalValue)
			return
		}
		if file >= maxFileRecords || rec+length > recordsPerFile {
			s.hit(tr, 125)
			s.exception(tr, pdu[0], exIllegalAddress)
			return
		}
		s.hit(tr, 126)
		for i := 0; i < length; i++ {
			s.files[file][rec+i] = be16(pdu[off+7+2*i:])
		}
		off += 7 + 2*length
	}
	s.respond(tr, pdu)
}

// readFIFOQueue serves FC 0x18: the FIFO at the pointer address holds up
// to 31 registers; empty queues return a zero count.
func (s *Server) readFIFOQueue(tr *coverage.Tracer, pdu []byte) {
	if len(pdu) != 3 {
		s.hit(tr, 127)
		return
	}
	addr := int(be16(pdu[1:]))
	if addr >= nbHolding {
		s.hit(tr, 128)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	count := int(s.holding[addr]) // register at pointer = queue depth
	if count > 31 {
		s.hit(tr, 129)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if addr+1+count > nbHolding {
		s.hit(tr, 130)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	s.hit(tr, 131)
	resp := []byte{pdu[0], 0, byte(2 * (count + 1)), 0, byte(count)}
	for i := 0; i < count; i++ {
		v := s.holding[addr+1+i]
		resp = append(resp, byte(v>>8), byte(v))
	}
	s.respond(tr, resp)
}

// deviceID objects served by the encapsulated-interface transport
// (FC 0x2B / MEI 0x0E), as libmodbus's bandwidth-server example provides.
var deviceID = map[byte]string{
	0x00: "ReproVendor",
	0x01: "PSTAR",
	0x02: "v1.0",
}

// encapsulated serves FC 0x2B: only the device-identification MEI type is
// implemented; the read-device-id code selects basic/regular/extended.
func (s *Server) encapsulated(tr *coverage.Tracer, pdu []byte) {
	if len(pdu) < 4 {
		s.hit(tr, 132)
		return
	}
	if pdu[1] != meiDeviceID {
		s.hit(tr, 133)
		s.exception(tr, pdu[0], exIllegalFunction)
		return
	}
	readCode := pdu[2]
	objectID := pdu[3]
	if readCode < 1 || readCode > 4 {
		s.hit(tr, 134)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if readCode == 4 { // single object access
		val, ok := deviceID[objectID]
		if !ok {
			s.hit(tr, 135)
			s.exception(tr, pdu[0], exIllegalAddress)
			return
		}
		s.hit(tr, 136)
		s.respond(tr, append([]byte{pdu[0], meiDeviceID, readCode, 0x83, 0, 0, 1, objectID, byte(len(val))}, val...))
		return
	}
	s.hit(tr, 137)
	resp := []byte{pdu[0], meiDeviceID, readCode, 0x83, 0, 0, byte(len(deviceID))}
	for id := byte(0); id <= 0x02; id++ {
		val := deviceID[id]
		resp = append(resp, id, byte(len(val)))
		resp = append(resp, val...)
		s.hit(tr, 138)
	}
	s.respond(tr, resp)
}

// HandleRTU processes a Modbus RTU frame: slave address, PDU, CRC16
// little-endian — the serial path of libmodbus, sharing the PDU dispatch
// with the TCP path. Registered as its own packet family in the models.
func (s *Server) HandleRTU(tr *coverage.Tracer, frame []byte) {
	s.hit(tr, 140)
	if len(frame) < 4 {
		s.hit(tr, 141)
		return
	}
	addr := frame[0]
	if addr != 1 && addr != 0 { // our slave id or broadcast
		s.hit(tr, 142)
		return
	}
	data := frame[:len(frame)-2]
	crc := uint16(frame[len(frame)-2]) | uint16(frame[len(frame)-1])<<8
	if crc16(data) != crc {
		s.hit(tr, 143)
		return
	}
	s.hit(tr, 144)
	s.dispatchPDU(tr, frame[1:len(frame)-2])
}

// crc16 is the Modbus RTU CRC (shared with datamodel's fixup engine; kept
// local so the target stays dependency-light).
func crc16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xA001
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}
