package modbus

import (
	"fmt"

	"repro/internal/checkpoint"
)

// This file is the libmodbus target's side of the campaign-checkpoint
// seam (sandbox.StateCheckpointer). Everything a packet can mutate and a
// later packet can observe is captured: the four data banks, the simulated
// heap with its seeded-bug bookkeeping, the diagnostic flags, and the
// file-record storage. Without it a warm-restarted campaign would fuzz a
// factory-fresh server while the uninterrupted one fuzzes a worn
// one — and state-dependent faults (the event-buffer use-after-free, the
// diagnostics double-free) would fire differently.

// SnapshotState implements sandbox.StateCheckpointer.
func (s *Server) SnapshotState(w *checkpoint.Writer) {
	for i := range s.coils {
		w.Bool(s.coils[i])
	}
	for i := range s.discrete {
		w.Bool(s.discrete[i])
	}
	for i := range s.holding {
		w.Uvarint(uint64(s.holding[i]))
	}
	for i := range s.input {
		w.Uvarint(uint64(s.input[i]))
	}
	s.heap.Snapshot(w)
	w.Uvarint(uint64(s.eventBuf))
	w.Bool(s.eventsFreed)
	w.Uvarint(uint64(s.eventCount))
	w.Bool(s.listenOnly)
	for f := range s.files {
		for r := range s.files[f] {
			w.Uvarint(uint64(s.files[f][r]))
		}
	}
	w.Blob(s.lastResponse)
}

// RestoreState implements sandbox.StateCheckpointer.
func (s *Server) RestoreState(r *checkpoint.Reader) error {
	for i := range s.coils {
		s.coils[i] = r.Bool()
	}
	for i := range s.discrete {
		s.discrete[i] = r.Bool()
	}
	for i := range s.holding {
		s.holding[i] = readU16(r, "holding register")
	}
	for i := range s.input {
		s.input[i] = readU16(r, "input register")
	}
	if r.Err() != nil {
		return r.Err()
	}
	if err := s.heap.Restore(r); err != nil {
		return err
	}
	eventBuf := r.Uvarint()
	s.eventsFreed = r.Bool()
	eventCount := r.Uvarint()
	s.listenOnly = r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if eventBuf > 1<<32-1 || eventCount > 0xffff {
		return fmt.Errorf("modbus: event state out of range")
	}
	s.eventBuf = uint32(eventBuf)
	s.eventCount = uint16(eventCount)
	for f := range s.files {
		for rec := range s.files[f] {
			s.files[f][rec] = readU16(r, "file record")
		}
	}
	last := r.Blob()
	if r.Err() != nil {
		return r.Err()
	}
	s.lastResponse = append([]byte(nil), last...)
	return nil
}

// readU16 reads one uvarint and pins it to the 16-bit range, failing the
// reader on overflow so a corrupt checkpoint is rejected, not truncated.
func readU16(r *checkpoint.Reader, what string) uint16 {
	v := r.Uvarint()
	if r.Err() == nil && v > 0xffff {
		r.Fail(fmt.Errorf("modbus: %s %d out of range", what, v))
		return 0
	}
	return uint16(v)
}
