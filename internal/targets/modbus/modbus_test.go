package modbus

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/datamodel"
	"repro/internal/mem"
	"repro/internal/sandbox"
	"repro/internal/targets"
)

// frame builds a valid Modbus TCP frame around a PDU.
func frame(pdu []byte) []byte {
	out := make([]byte, 7+len(pdu))
	out[0], out[1] = 0x00, 0x01 // txn
	n := len(pdu) + 1
	out[4], out[5] = byte(n>>8), byte(n)
	out[6] = 0xFF // unit
	copy(out[7:], pdu)
	return out
}

func run(t *testing.T, s *Server, pkt []byte) sandbox.Result {
	t.Helper()
	return sandbox.NewRunner(s).Run(pkt)
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("libmodbus")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Name() != "libmodbus" {
		t.Fatalf("name = %s", tgt.Name())
	}
	if len(tgt.Models()) < 10 {
		t.Fatalf("models = %d", len(tgt.Models()))
	}
}

func TestModelsGenerateAndHandleCleanly(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	for _, m := range ModbusModels() {
		pkt := m.Generate().Bytes()
		res := r.Run(pkt)
		if res.Outcome == sandbox.Crash {
			t.Fatalf("default instance of %s crashed: %v", m.Name, res.Fault)
		}
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s cannot crack its own default: %v", m.Name, err)
		}
	}
}

func TestShortAndMalformedHeaders(t *testing.T) {
	s := New()
	for _, pkt := range [][]byte{
		nil,
		{1},
		{0, 1, 0, 0, 0, 2, 0xFF},     // 7 bytes, too short
		{0, 1, 0, 9, 0, 2, 0xFF, 3},  // bad protocol id
		{0, 1, 0, 0, 0, 99, 0xFF, 3}, // length mismatch
		{0, 1, 0, 0, 0, 1, 0xFF, 3},  // length < 2 (length mismatch too)
		frame([]byte{0x03, 0, 0, 0}), // truncated read PDU
	} {
		if res := run(t, s, pkt); res.Outcome != sandbox.OK {
			t.Fatalf("malformed header crashed: %x -> %v", pkt, res.Fault)
		}
	}
}

func TestReadHoldingRegisters(t *testing.T) {
	s := New()
	res := run(t, s, frame([]byte{0x03, 0x00, 0x01, 0x00, 0x02}))
	if res.Outcome != sandbox.OK {
		t.Fatalf("read crashed: %v", res.Fault)
	}
	resp := s.LastResponse()
	// fc, byteCount=4, reg1=3, reg2=6.
	if resp[7] != 0x03 || resp[8] != 4 || resp[10] != 3 || resp[12] != 6 {
		t.Fatalf("response = %x", resp)
	}
}

func TestReadExceptionResponses(t *testing.T) {
	s := New()
	// Quantity too large -> illegal value.
	run(t, s, frame([]byte{0x03, 0x00, 0x00, 0x00, 0xFF}))
	if resp := s.LastResponse(); resp[0] != 0x83 || resp[1] != exIllegalValue {
		t.Fatalf("response = %x", resp)
	}
	// Address out of range -> illegal address.
	run(t, s, frame([]byte{0x03, 0xFF, 0x00, 0x00, 0x01}))
	if resp := s.LastResponse(); resp[0] != 0x83 || resp[1] != exIllegalAddress {
		t.Fatalf("response = %x", resp)
	}
	// Unknown function -> illegal function.
	run(t, s, frame([]byte{0x55}))
	if resp := s.LastResponse(); resp[0] != 0xD5 || resp[1] != exIllegalFunction {
		t.Fatalf("response = %x", resp)
	}
}

func TestWriteAndReadBackCoil(t *testing.T) {
	s := New()
	run(t, s, frame([]byte{0x05, 0x00, 0x0A, 0xFF, 0x00}))
	if !s.coils[10] {
		t.Fatal("coil 10 not set")
	}
	run(t, s, frame([]byte{0x01, 0x00, 0x0A, 0x00, 0x01}))
	resp := s.LastResponse()
	if resp[9]&1 != 1 {
		t.Fatalf("read coils response = %x", resp)
	}
	// Illegal coil value.
	run(t, s, frame([]byte{0x05, 0x00, 0x0A, 0x12, 0x34}))
	if resp := s.LastResponse(); resp[0] != 0x85 || resp[1] != exIllegalValue {
		t.Fatalf("response = %x", resp)
	}
}

func TestWriteSingleRegister(t *testing.T) {
	s := New()
	run(t, s, frame([]byte{0x06, 0x00, 0x20, 0xBE, 0xEF}))
	if s.holding[0x20] != 0xBEEF {
		t.Fatalf("holding[0x20] = %04x", s.holding[0x20])
	}
}

func TestWriteMultipleRegisters(t *testing.T) {
	s := New()
	res := run(t, s, frame([]byte{0x10, 0x00, 0x30, 0x00, 0x02, 0x04, 0xDE, 0xAD, 0xBE, 0xEF}))
	if res.Outcome != sandbox.OK {
		t.Fatalf("crash: %v", res.Fault)
	}
	if s.holding[0x30] != 0xDEAD || s.holding[0x31] != 0xBEEF {
		t.Fatal("registers not written")
	}
	// Byte count mismatch.
	run(t, s, frame([]byte{0x10, 0x00, 0x30, 0x00, 0x02, 0x05, 0xDE, 0xAD, 0xBE, 0xEF, 0x00}))
	if resp := s.LastResponse(); resp[0] != 0x90 {
		t.Fatalf("response = %x", resp)
	}
}

func TestWriteMultipleCoils(t *testing.T) {
	s := New()
	run(t, s, frame([]byte{0x0F, 0x00, 0x00, 0x00, 0x0A, 0x02, 0xFF, 0x03}))
	for i := 0; i < 10; i++ {
		if !s.coils[i] {
			t.Fatalf("coil %d not set", i)
		}
	}
}

func TestMaskWriteRegister(t *testing.T) {
	s := New()
	s.holding[5] = 0x12
	// and=0xF2 or=0x25: (0x12 & 0xF2) | (0x25 & ^0xF2) = 0x12 | 0x05 = 0x17
	run(t, s, frame([]byte{0x16, 0x00, 0x05, 0x00, 0xF2, 0x00, 0x25}))
	if s.holding[5] != 0x17 {
		t.Fatalf("mask write gave %04x", s.holding[5])
	}
}

func TestUnitFiltering(t *testing.T) {
	s := New()
	run(t, s, frame([]byte{0x06, 0x00, 0x01, 0x11, 0x11}))
	pkt := frame([]byte{0x06, 0x00, 0x02, 0x22, 0x22})
	pkt[6] = 0x07 // not our unit
	run(t, s, pkt)
	if s.holding[2] == 0x2222 {
		t.Fatal("server handled a frame addressed elsewhere")
	}
}

func TestSeededUAF(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	// Step 1: force listen-only (frees the event buffer).
	res := r.Run(frame([]byte{0x08, 0x00, 0x04, 0x00, 0x00}))
	if res.Outcome != sandbox.OK {
		t.Fatalf("force listen-only crashed: %v", res.Fault)
	}
	// Step 2: restart comms to leave listen-only... which is the only fc
	// processed. Then return query data reads the freed buffer.
	res = r.Run(frame([]byte{0x08, 0x00, 0x01, 0x00, 0x00}))
	if res.Outcome != sandbox.OK {
		t.Fatalf("restart crashed: %v", res.Fault)
	}
	res = r.Run(frame([]byte{0x08, 0x00, 0x00, 0x12, 0x34}))
	if res.Outcome != sandbox.Crash || res.Fault.Kind != mem.HeapUseAfterFree {
		t.Fatalf("expected UAF, got %+v fault=%+v", res.Outcome, res.Fault)
	}
}

func TestSeededSEGV(t *testing.T) {
	s := New()
	// 0x17 with writeQty=0 and readQty beyond the mapping.
	pdu := []byte{0x17, 0x02, 0x00, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}
	res := run(t, s, frame(pdu))
	if res.Outcome != sandbox.Crash {
		t.Fatal("expected crash on unchecked fast path")
	}
	if res.Fault.Kind != mem.SEGV && res.Fault.Kind != mem.HeapBufferOverflow {
		t.Fatalf("fault = %+v", res.Fault)
	}
}

func TestRWMultipleValidPath(t *testing.T) {
	s := New()
	s.holding[0] = 0xAA
	pdu := []byte{0x17, 0x00, 0x00, 0x00, 0x01, 0x00, 0x10, 0x00, 0x01, 0x02, 0x55, 0x66}
	res := run(t, s, frame(pdu))
	if res.Outcome != sandbox.OK {
		t.Fatalf("valid 0x17 crashed: %v", res.Fault)
	}
	if s.holding[0x10] != 0x5566 {
		t.Fatal("write part of 0x17 lost")
	}
	resp := s.LastResponse()
	if resp[7] != 0x17 || resp[9] != 0x00 || resp[10] != 0xAA {
		t.Fatalf("read part wrong: %x", resp)
	}
}

func TestDiagnosticsClearAndCounters(t *testing.T) {
	s := New()
	run(t, s, frame([]byte{0x06, 0x00, 0x01, 0x11, 0x11})) // bump event count
	run(t, s, frame([]byte{0x0B}))
	resp := s.LastResponse()
	if resp[10] != 0 || resp[11] != 1 {
		t.Fatalf("event counter response = %x", resp)
	}
	run(t, s, frame([]byte{0x08, 0x00, 0x0A, 0x00, 0x00})) // clear
	run(t, s, frame([]byte{0x0B}))
	if resp := s.LastResponse(); resp[11] != 0 {
		t.Fatal("counters not cleared")
	}
}

func TestListenOnlyDropsTraffic(t *testing.T) {
	s := New()
	run(t, s, frame([]byte{0x08, 0x00, 0x04, 0x00, 0x00})) // force listen-only
	run(t, s, frame([]byte{0x06, 0x00, 0x03, 0x77, 0x77}))
	if s.holding[3] == 0x7777 {
		t.Fatal("listen-only server processed a write")
	}
	run(t, s, frame([]byte{0x08, 0x00, 0x01, 0x00, 0x00})) // restart
	run(t, s, frame([]byte{0x06, 0x00, 0x03, 0x77, 0x77}))
	if s.holding[3] != 0x7777 {
		t.Fatal("server did not resume after restart")
	}
}

func TestOpcodesAreModelTokens(t *testing.T) {
	seen := map[uint64]bool{}
	for _, m := range ModbusModels() {
		inst := m.Generate()
		fc := inst.Find("fc")
		if fc == nil || !fc.Chunk.Token {
			t.Fatalf("model %s has no fc token", m.Name)
		}
		seen[fc.Uint()] = true
	}
	for _, fc := range []uint64{fcReadCoils, fcDiagnostics, fcReadWriteMultipleRegs} {
		if !seen[fc] {
			t.Fatalf("no model for function code %#x", fc)
		}
	}
}

func TestLengthRelationMaintained(t *testing.T) {
	for _, m := range ModbusModels() {
		n := m.Generate()
		lengthField := n.Find("length")
		if lengthField == nil {
			continue // RTU models carry a CRC instead of an MBAP length
		}
		ln := lengthField.Uint()
		if int(ln) != n.Find("tail").Len() {
			t.Fatalf("model %s: length %d != tail %d", m.Name, ln, n.Find("tail").Len())
		}
	}
}

func TestCoverageDiffersByFunction(t *testing.T) {
	s := New()
	tr := coverage.NewTracer()
	s.Handle(tr, frame([]byte{0x03, 0x00, 0x00, 0x00, 0x01}))
	sig1 := coverage.Hash(tr.Raw())
	tr.Reset()
	s.Handle(tr, frame([]byte{0x01, 0x00, 0x00, 0x00, 0x01}))
	sig2 := coverage.Hash(tr.Raw())
	if sig1 == sig2 {
		t.Fatal("different function codes should trace differently")
	}
}

var _ = datamodel.Variable // keep import for potential helpers
