// Package modbus reimplements the packet-processing core of libmodbus — the
// Modbus TCP server side — as an instrumented fuzzing target (paper §V-A,
// Fig. 4(a), Table I).
//
// The wire format is Modbus TCP: a 7-byte MBAP header (transaction id,
// protocol id, length, unit id) followed by a PDU (function code + data).
// The server maintains the standard four data banks (coils, discrete
// inputs, holding registers, input registers) and implements the function
// codes libmodbus serves, including the diagnostics subfunctions.
//
// Seeded vulnerabilities (matching Table I's libmodbus row — 1 heap
// use-after-free, 1 SEGV — as reproductions of the same bug classes at the
// same counts; see DESIGN.md §2.5):
//
//   - heap-use-after-free: the diagnostics (0x08) "force listen-only"
//     subfunction releases the communication event buffer, but "return
//     query data" still reads it afterwards. Triggering needs two valid
//     diagnostics packets in sequence.
//   - SEGV: read/write multiple registers (0x17) computes the response
//     pointer from the read quantity without validating it when the write
//     quantity is zero, dereferencing a wild address for quantities beyond
//     the mapping.
package modbus

import (
	"repro/internal/coverage"
	"repro/internal/mem"
	"repro/internal/targets"
)

// Modbus function codes implemented by the server (the libmodbus set).
const (
	fcReadCoils             = 0x01
	fcReadDiscreteInputs    = 0x02
	fcReadHolding           = 0x03
	fcReadInput             = 0x04
	fcWriteSingleCoil       = 0x05
	fcWriteSingleRegister   = 0x06
	fcReadExceptionStatus   = 0x07
	fcDiagnostics           = 0x08
	fcGetCommEventCounter   = 0x0B
	fcWriteMultipleCoils    = 0x0F
	fcWriteMultipleRegs     = 0x10
	fcReportServerID        = 0x11
	fcMaskWriteRegister     = 0x16
	fcReadWriteMultipleRegs = 0x17
)

// Exception codes returned in error responses.
const (
	exIllegalFunction = 0x01
	exIllegalAddress  = 0x02
	exIllegalValue    = 0x03
)

// Mapping sizes, as in libmodbus's modbus_mapping_new defaults used by the
// fuzzed test server.
const (
	nbCoils    = 0x500
	nbDiscrete = 0x500
	nbHolding  = 0x200
	nbInput    = 0x200
)

// Server is the instrumented libmodbus server core.
type Server struct {
	id []coverage.BlockID //peachstar:nosnap immutable block identity wired at construction

	coils    [nbCoils]bool
	discrete [nbDiscrete]bool
	holding  [nbHolding]uint16
	input    [nbInput]uint16

	// Simulated heap state for the seeded bugs.
	heap        *mem.Heap
	eventBuf    uint32 // communication event buffer (UAF target)
	eventsFreed bool
	eventCount  uint16
	listenOnly  bool

	// files is the file-record storage served by FC 0x14/0x15.
	files fileRecords

	// lastResponse is kept to exercise response-construction code.
	lastResponse []byte
}

// New returns a fresh server with zeroed banks, ready to handle packets.
func New() *Server {
	s := &Server{
		id:   coverage.Blocks("libmodbus", 160),
		heap: mem.NewHeap(),
	}
	s.eventBuf = s.heap.Alloc(64)
	// Pre-populate a few registers so reads have structure.
	for i := 0; i < 16; i++ {
		s.holding[i] = uint16(i * 3)
		s.input[i] = uint16(0xFF00 | i)
	}
	for f := 0; f < maxFileRecords; f++ {
		for r := 0; r < 8; r++ {
			s.files[f][r] = uint16(f<<8 | r)
		}
	}
	return s
}

// Name implements targets.Target.
func (s *Server) Name() string { return "libmodbus" }

// hit is shorthand for the instrumentation stub.
func (s *Server) hit(tr *coverage.Tracer, n int) { tr.Hit(s.id[n]) }

// Handle implements targets.Target: discriminate the transport (Modbus
// TCP's MBAP header versus an RTU serial frame), validate framing, and
// dispatch the PDU. The layout of branch blocks mirrors libmodbus's
// modbus_reply.
func (s *Server) Handle(tr *coverage.Tracer, pkt []byte) {
	s.hit(tr, 0)
	// RTU frames address slave 0/1 and close with a valid CRC16; the
	// check cannot misfire on MBAP traffic (transaction ids do not
	// produce valid trailing CRCs by accident).
	if len(pkt) >= 4 && pkt[0] <= 1 {
		data := pkt[:len(pkt)-2]
		crc := uint16(pkt[len(pkt)-2]) | uint16(pkt[len(pkt)-1])<<8
		if crc16(data) == crc {
			s.HandleRTU(tr, pkt)
			return
		}
	}
	// --- MBAP header ---
	if len(pkt) < 8 {
		s.hit(tr, 1)
		return
	}
	protoID := be16(pkt[2:])
	length := be16(pkt[4:])
	if protoID != 0 {
		s.hit(tr, 2)
		return
	}
	// Length counts unit id + PDU.
	if int(length) != len(pkt)-6 {
		s.hit(tr, 3)
		return
	}
	if length < 2 {
		s.hit(tr, 4)
		return
	}
	s.hit(tr, 5)
	unit := pkt[6]
	if unit != 0 && unit != 1 && unit != 0xFF {
		// Not addressed to this server (libmodbus accepts its own
		// slave id, 0 broadcast, and 0xFF for TCP).
		s.hit(tr, 6)
		return
	}
	s.dispatchPDU(tr, pkt[7:])
}

// dispatchPDU serves one PDU; both the TCP and RTU paths land here, the
// shared service layer of libmodbus (cf. the paper's Fig. 2 insight about
// shared code blocks).
func (s *Server) dispatchPDU(tr *coverage.Tracer, pdu []byte) {
	fc := pdu[0]
	// Listen-only mode drops everything except the diagnostics restart.
	if s.listenOnly && fc != fcDiagnostics {
		s.hit(tr, 7)
		return
	}
	switch fc {
	case fcReadCoils:
		s.hit(tr, 8)
		s.readBits(tr, pdu, s.coils[:], 10)
	case fcReadDiscreteInputs:
		s.hit(tr, 9)
		s.readBits(tr, pdu, s.discrete[:], 10)
	case fcReadHolding:
		s.hit(tr, 20)
		s.readRegisters(tr, pdu, s.holding[:], 22)
	case fcReadInput:
		s.hit(tr, 21)
		s.readRegisters(tr, pdu, s.input[:], 22)
	case fcWriteSingleCoil:
		s.writeSingleCoil(tr, pdu)
	case fcWriteSingleRegister:
		s.writeSingleRegister(tr, pdu)
	case fcReadExceptionStatus:
		s.hit(tr, 30)
		s.respond(tr, []byte{fc, 0x00})
	case fcDiagnostics:
		s.diagnostics(tr, pdu)
	case fcGetCommEventCounter:
		s.hit(tr, 31)
		s.respond(tr, []byte{fc, 0xFF, 0xFF, byte(s.eventCount >> 8), byte(s.eventCount)})
	case fcWriteMultipleCoils:
		s.writeMultipleCoils(tr, pdu)
	case fcWriteMultipleRegs:
		s.writeMultipleRegisters(tr, pdu)
	case fcReportServerID:
		s.hit(tr, 32)
		s.respond(tr, []byte{fc, 3, 0x0A, 0xFF, 'R'})
	case fcMaskWriteRegister:
		s.maskWriteRegister(tr, pdu)
	case fcReadWriteMultipleRegs:
		s.readWriteMultipleRegisters(tr, pdu)
	default:
		if !s.extendedDispatch(tr, fc, pdu) {
			s.hit(tr, 33)
			s.exception(tr, fc, exIllegalFunction)
		}
	}
}

// readBits serves 0x01/0x02: quantity check, address range check, bit
// packing — the shared bit-bank read path of libmodbus.
func (s *Server) readBits(tr *coverage.Tracer, pdu []byte, bank []bool, blk int) {
	if len(pdu) != 5 {
		s.hit(tr, blk)
		return
	}
	addr := int(be16(pdu[1:]))
	qty := int(be16(pdu[3:]))
	if qty < 1 || qty > 2000 {
		s.hit(tr, blk+1)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if addr+qty > len(bank) {
		s.hit(tr, blk+2)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	s.hit(tr, blk+3)
	nBytes := (qty + 7) / 8
	resp := make([]byte, 2+nBytes)
	resp[0], resp[1] = pdu[0], byte(nBytes)
	for i := 0; i < qty; i++ {
		if bank[addr+i] {
			s.hit(tr, blk+4)
			resp[2+i/8] |= 1 << (i % 8)
		}
	}
	s.respond(tr, resp)
}

// readRegisters serves 0x03/0x04: the shared register-bank read path.
func (s *Server) readRegisters(tr *coverage.Tracer, pdu []byte, bank []uint16, blk int) {
	if len(pdu) != 5 {
		s.hit(tr, blk)
		return
	}
	addr := int(be16(pdu[1:]))
	qty := int(be16(pdu[3:]))
	if qty < 1 || qty > 125 {
		s.hit(tr, blk+1)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if addr+qty > len(bank) {
		s.hit(tr, blk+2)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	s.hit(tr, blk+3)
	resp := make([]byte, 2+2*qty)
	resp[0], resp[1] = pdu[0], byte(2*qty)
	for i := 0; i < qty; i++ {
		v := bank[addr+i]
		resp[2+2*i] = byte(v >> 8)
		resp[3+2*i] = byte(v)
		if v != 0 {
			s.hit(tr, blk+4)
		}
	}
	s.respond(tr, resp)
}

// writeSingleCoil serves 0x05. Only 0x0000 and 0xFF00 are legal values —
// the classic Modbus quirk.
func (s *Server) writeSingleCoil(tr *coverage.Tracer, pdu []byte) {
	s.hit(tr, 40)
	if len(pdu) != 5 {
		s.hit(tr, 41)
		return
	}
	addr := int(be16(pdu[1:]))
	val := be16(pdu[3:])
	if addr >= nbCoils {
		s.hit(tr, 42)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	switch val {
	case 0xFF00:
		s.hit(tr, 43)
		s.coils[addr] = true
	case 0x0000:
		s.hit(tr, 44)
		s.coils[addr] = false
	default:
		s.hit(tr, 45)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	s.eventCount++
	s.respond(tr, pdu)
}

// writeSingleRegister serves 0x06. Note the paper's §III example: this and
// write-single-coil share address calculation and response construction;
// only the bank written differs.
func (s *Server) writeSingleRegister(tr *coverage.Tracer, pdu []byte) {
	s.hit(tr, 46)
	if len(pdu) != 5 {
		s.hit(tr, 47)
		return
	}
	addr := int(be16(pdu[1:]))
	if addr >= nbHolding {
		s.hit(tr, 48)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	s.hit(tr, 49)
	s.holding[addr] = be16(pdu[3:])
	s.eventCount++
	s.respond(tr, pdu)
}

// Diagnostics subfunction codes (0x08).
const (
	diagReturnQueryData   = 0x0000
	diagRestartComms      = 0x0001
	diagChangeASCIIDelim  = 0x0003
	diagForceListenOnly   = 0x0004
	diagClearCounters     = 0x000A
	diagBusMessageCount   = 0x000B
	diagBusCommErrorCount = 0x000C
)

// diagnostics serves 0x08 and hosts the seeded use-after-free: force
// listen-only releases the event buffer; return query data reads it.
func (s *Server) diagnostics(tr *coverage.Tracer, pdu []byte) {
	s.hit(tr, 50)
	if len(pdu) < 5 {
		s.hit(tr, 51)
		return
	}
	sub := be16(pdu[1:])
	switch sub {
	case diagReturnQueryData:
		s.hit(tr, 52)
		// BUG(seeded, Table I libmodbus UAF): reads the event buffer
		// without checking that it is still live.
		echo := s.heap.LoadN(s.eventBuf, 4, "modbus.diagnostics.return_query_data")
		s.respond(tr, append([]byte{pdu[0], pdu[1], pdu[2]}, echo...))
	case diagRestartComms:
		s.hit(tr, 53)
		s.listenOnly = false
		s.eventCount = 0
		if !s.eventsFreed {
			// Restart reallocates the buffer: free + alloc.
			s.heap.Free(s.eventBuf, "modbus.diagnostics.restart")
			s.eventBuf = s.heap.Alloc(64)
		}
		s.respond(tr, pdu[:5])
	case diagChangeASCIIDelim:
		s.hit(tr, 54)
		if pdu[3] == 0 {
			s.hit(tr, 55)
			s.exception(tr, pdu[0], exIllegalValue)
			return
		}
		s.respond(tr, pdu[:5])
	case diagForceListenOnly:
		s.hit(tr, 56)
		s.listenOnly = true
		// BUG(seeded): the event buffer is released on entering
		// listen-only mode, but diagReturnQueryData still uses it.
		if !s.eventsFreed {
			s.heap.Free(s.eventBuf, "modbus.diagnostics.force_listen_only")
			s.eventsFreed = true
		}
	case diagClearCounters:
		s.hit(tr, 102)
		s.eventCount = 0
		// Unlike return-query-data, the clear path checks buffer
		// liveness (keeping the seeded UAF a single-site bug, as in
		// Table I's count for libmodbus).
		if !s.eventsFreed {
			s.hit(tr, 103)
			s.heap.StoreN(s.eventBuf, []byte{0, 0, 0, 0}, "modbus.diagnostics.clear")
		}
		s.respond(tr, pdu[:5])
	case diagBusMessageCount, diagBusCommErrorCount:
		s.hit(tr, 58)
		s.respond(tr, []byte{pdu[0], pdu[1], pdu[2], byte(s.eventCount >> 8), byte(s.eventCount)})
	default:
		s.hit(tr, 59)
		s.exception(tr, pdu[0], exIllegalValue)
	}
}

// writeMultipleCoils serves 0x0F: header + packed bit payload.
func (s *Server) writeMultipleCoils(tr *coverage.Tracer, pdu []byte) {
	s.hit(tr, 60)
	if len(pdu) < 6 {
		s.hit(tr, 61)
		return
	}
	addr := int(be16(pdu[1:]))
	qty := int(be16(pdu[3:]))
	byteCount := int(pdu[5])
	if qty < 1 || qty > 0x7B0 {
		s.hit(tr, 62)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if byteCount != (qty+7)/8 || len(pdu) != 6+byteCount {
		s.hit(tr, 63)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if addr+qty > nbCoils {
		s.hit(tr, 64)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	s.hit(tr, 65)
	for i := 0; i < qty; i++ {
		s.coils[addr+i] = pdu[6+i/8]&(1<<(i%8)) != 0
	}
	s.eventCount++
	s.respond(tr, pdu[:5])
}

// writeMultipleRegisters serves 0x10.
func (s *Server) writeMultipleRegisters(tr *coverage.Tracer, pdu []byte) {
	s.hit(tr, 70)
	if len(pdu) < 6 {
		s.hit(tr, 71)
		return
	}
	addr := int(be16(pdu[1:]))
	qty := int(be16(pdu[3:]))
	byteCount := int(pdu[5])
	if qty < 1 || qty > 123 {
		s.hit(tr, 72)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if byteCount != 2*qty || len(pdu) != 6+byteCount {
		s.hit(tr, 73)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if addr+qty > nbHolding {
		s.hit(tr, 74)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	s.hit(tr, 75)
	for i := 0; i < qty; i++ {
		s.holding[addr+i] = be16(pdu[6+2*i:])
	}
	s.eventCount++
	s.respond(tr, pdu[:5])
}

// maskWriteRegister serves 0x16: reg = (reg & and) | (or & ^and).
func (s *Server) maskWriteRegister(tr *coverage.Tracer, pdu []byte) {
	s.hit(tr, 80)
	if len(pdu) != 7 {
		s.hit(tr, 81)
		return
	}
	addr := int(be16(pdu[1:]))
	if addr >= nbHolding {
		s.hit(tr, 82)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	s.hit(tr, 83)
	and, or := be16(pdu[3:]), be16(pdu[5:])
	s.holding[addr] = (s.holding[addr] & and) | (or &^ and)
	s.respond(tr, pdu)
}

// readWriteMultipleRegisters serves 0x17 and hosts the seeded SEGV: when
// the write quantity is zero the response pointer is computed from the
// read quantity without the range check that the non-zero path performs.
func (s *Server) readWriteMultipleRegisters(tr *coverage.Tracer, pdu []byte) {
	s.hit(tr, 90)
	if len(pdu) < 10 {
		s.hit(tr, 91)
		return
	}
	rAddr := int(be16(pdu[1:]))
	rQty := int(be16(pdu[3:]))
	wAddr := int(be16(pdu[5:]))
	wQty := int(be16(pdu[7:]))
	byteCount := int(pdu[9])
	if wQty == 0 {
		s.hit(tr, 92)
		// BUG(seeded, Table I libmodbus SEGV): the zero-write fast
		// path trusts rQty and indexes the mapping unchecked;
		// quantities past the mapping dereference a bad address.
		var acc uint16
		for i := 0; i < rQty; i++ {
			acc ^= s.holding[rAddr+i]
		}
		s.respond(tr, []byte{pdu[0], byte(2 * rQty), byte(acc >> 8), byte(acc)})
		return
	}
	if rQty < 1 || rQty > 0x7D || wQty > 0x79 {
		s.hit(tr, 93)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if byteCount != 2*wQty || len(pdu) != 10+byteCount {
		s.hit(tr, 94)
		s.exception(tr, pdu[0], exIllegalValue)
		return
	}
	if rAddr+rQty > nbHolding || wAddr+wQty > nbHolding {
		s.hit(tr, 95)
		s.exception(tr, pdu[0], exIllegalAddress)
		return
	}
	s.hit(tr, 96)
	for i := 0; i < wQty; i++ {
		s.holding[wAddr+i] = be16(pdu[10+2*i:])
	}
	resp := make([]byte, 2+2*rQty)
	resp[0], resp[1] = pdu[0], byte(2*rQty)
	for i := 0; i < rQty; i++ {
		v := s.holding[rAddr+i]
		resp[2+2*i], resp[3+2*i] = byte(v>>8), byte(v)
	}
	s.respond(tr, resp)
}

// exception builds a Modbus exception response (fc|0x80, code).
func (s *Server) exception(tr *coverage.Tracer, fc, code byte) {
	s.hit(tr, 100)
	s.lastResponse = []byte{fc | 0x80, code}
}

// respond stores the response PDU, exercising the shared
// response-construction path.
func (s *Server) respond(tr *coverage.Tracer, pdu []byte) {
	s.hit(tr, 101)
	resp := make([]byte, 7+len(pdu))
	resp[6] = 0xFF
	copy(resp[7:], pdu)
	n := len(pdu) + 1
	resp[4], resp[5] = byte(n>>8), byte(n)
	s.lastResponse = resp
}

// LastResponse returns the most recent response frame (tests use it).
func (s *Server) LastResponse() []byte { return s.lastResponse }

func be16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }

func init() {
	targets.Register("libmodbus", func() targets.Target { return New() })
}
