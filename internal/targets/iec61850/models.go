package iec61850

import "repro/internal/datamodel"

// Models returns the libiec61850 Pit-equivalent. MMS is BER-encoded, so
// every nesting level carries its own length octet — each one a size-of
// relation the File Fixup module must re-establish after chunk surgery.
// These are the deepest models of the six targets, matching the project's
// code-scale position in Fig. 4.
func (s *Server) Models() []*datamodel.Model {
	return IEC61850Models()
}

// ber wraps body chunks as one TLV: tag, short-form length, value. An empty
// body yields a zero-length element (BER NULL-style encoding).
func ber(name string, tag uint64, body ...*datamodel.Chunk) *datamodel.Chunk {
	if len(body) == 0 {
		return datamodel.Blk(name,
			datamodel.Num(name+"Tag", 1, tag),
			datamodel.Num(name+"Len", 1, 0),
		)
	}
	return datamodel.Blk(name,
		datamodel.Num(name+"Tag", 1, tag),
		datamodel.Num(name+"Len", 1, 0).WithRel(datamodel.SizeOf, name+"Val", 0),
		datamodel.Blk(name+"Val", body...),
	)
}

// berToken is ber with the tag marked as the packet-type token.
func berToken(name string, tag uint64, body ...*datamodel.Chunk) *datamodel.Chunk {
	b := ber(name, tag, body...)
	b.Children[0].Token = true
	return b
}

// berHighToken wraps body chunks as one TLV with a high-tag-number tag
// (two octets on the wire, e.g. fileOpen's 0xBF 0x48), marked as the
// packet-type token.
func berHighToken(name string, tag uint64, body ...*datamodel.Chunk) *datamodel.Chunk {
	if len(body) == 0 {
		return datamodel.Blk(name,
			datamodel.Num(name+"Tag", 2, tag).AsToken(),
			datamodel.Num(name+"Len", 1, 0),
		)
	}
	return datamodel.Blk(name,
		datamodel.Num(name+"Tag", 2, tag).AsToken(),
		datamodel.Num(name+"Len", 1, 0).WithRel(datamodel.SizeOf, name+"Val", 0),
		datamodel.Blk(name+"Val", body...),
	)
}

// berStr encodes an MMS VisibleString (tag 0x1A) chunk.
func berStr(name, def string, max int) *datamodel.Chunk {
	return datamodel.Blk(name,
		datamodel.Num(name+"Tag", 1, 0x1A),
		datamodel.Num(name+"Len", 1, 0).WithRel(datamodel.SizeOf, name+"Val", 0),
		datamodel.StrVar(name+"Val", 1, max, def),
	)
}

// objectNameChunks builds a domain-specific ObjectName [1].
func objectNameChunks(prefix, dom, item string) *datamodel.Chunk {
	return ber(prefix+"Name", 0xA1,
		berStr(prefix+"Dom", dom, 32),
		berStr(prefix+"Item", item, 32),
	)
}

// dataTSDU wraps an MMS chunk in session DATA + COTP DT + TPKT framing.
func dataTSDU(name string, mms *datamodel.Chunk) *datamodel.Model {
	return datamodel.NewModel(name,
		datamodel.Num("tpktVersion", 1, 0x03),
		datamodel.Num("tpktReserved", 1, 0x00),
		datamodel.Num("tpktLen", 2, 0).WithRel(datamodel.SizeOf, "rest", 4),
		datamodel.Blk("rest",
			datamodel.Num("cotpHdrLen", 1, 2),
			datamodel.Num("cotpType", 1, 0xF0).AsToken(),
			datamodel.Num("cotpFlags", 1, 0x80),
			// GIVE-TOKENS + DATA SPDU prefix: constant framing, so
			// token fields (Peach pits mark literal bytes as tokens,
			// which keeps foreign packets from cracking here).
			datamodel.Num("spduGive", 1, 0x01).AsToken(),
			datamodel.Num("spduGiveLen", 1, 0x00).AsToken(),
			datamodel.Num("spduData", 1, 0x01).AsToken(),
			datamodel.Num("spduDataLen", 1, 0x00).AsToken(),
			mms,
		),
	)
}

// confirmedReq wraps a service TLV in the confirmed-request envelope.
func confirmedReq(name string, invokeID uint64, svc *datamodel.Chunk) *datamodel.Model {
	return dataTSDU(name,
		berToken("pdu", tagConfirmedReq,
			ber("invoke", 0x02, datamodel.Num("invokeVal", 1, invokeID)),
			svc,
		),
	)
}

// IEC61850Models builds the model set without a server instance.
func IEC61850Models() []*datamodel.Model {
	const dom = "simpleIOGenericIO"
	return []*datamodel.Model{
		// COTP connection request.
		datamodel.NewModel("COTPConnect",
			datamodel.Num("tpktVersion", 1, 0x03),
			datamodel.Num("tpktReserved", 1, 0x00),
			datamodel.Num("tpktLen", 2, 0).WithRel(datamodel.SizeOf, "rest", 4),
			datamodel.Blk("rest",
				datamodel.Num("cotpHdrLen", 1, 6),
				datamodel.Num("cotpType", 1, 0xE0).AsToken(),
				datamodel.Bytes("cotpParams", 5, []byte{0x00, 0x00, 0x00, 0x00, 0x00}),
			),
		),
		// Session CONNECT carrying the MMS initiate-request.
		datamodel.NewModel("SessionInitiate",
			datamodel.Num("tpktVersion", 1, 0x03),
			datamodel.Num("tpktReserved", 1, 0x00),
			datamodel.Num("tpktLen", 2, 0).WithRel(datamodel.SizeOf, "rest", 4),
			datamodel.Blk("rest",
				datamodel.Num("cotpHdrLen", 1, 2),
				datamodel.Num("cotpType", 1, 0xF0),
				datamodel.Num("cotpFlags", 1, 0x80),
				datamodel.Num("spduType", 1, 0x0D).AsToken(),
				datamodel.Num("spduParamLen", 1, 0).WithRel(datamodel.SizeOf, "spduParams", 0),
				datamodel.BytesVar("spduParams", 0, 16, []byte{0x05, 0x06}),
				berToken("pdu", tagInitiateReq,
					ber("localDetail", 0x80, datamodel.Num("ldVal", 2, 65000)),
					ber("maxCalling", 0x81, datamodel.Num("mcgVal", 1, 5)),
					ber("maxCalled", 0x82, datamodel.Num("mcdVal", 1, 5)),
				),
			),
		),
		dataTSDU("Conclude", berToken("pdu", tagConcludeReq)),
		confirmedReq("Status", 1,
			berToken("status", svcStatus, datamodel.Num("extended", 1, 0)),
		),
		confirmedReq("Identify", 2, berToken("identify", svcIdentify)),
		confirmedReq("GetNameListDomains", 3,
			berToken("gnl", svcGetNameList,
				ber("objectClass", 0x80, datamodel.Num("classVal", 1, 9)),
				ber("scope", 0xA1, ber("vmd", 0x80)),
			),
		),
		confirmedReq("GetNameListVariables", 4,
			berToken("gnl", svcGetNameList,
				ber("objectClass", 0x80, datamodel.Num("classVal", 1, 0).WithLegal(0, 2)),
				// Scope [1] wrapping the domain-specific choice [1].
				ber("scope", 0xA1,
					ber("scopeDom", 0x81, datamodel.StrVar("scopeDomName", 1, 32, dom)),
				),
			),
		),
		confirmedReq("ReadVariable", 5,
			berToken("read", svcRead,
				ber("spec", 0xA1,
					ber("listOfVar", 0xA0,
						ber("entry", 0x30,
							objectNameChunks("var", dom, "GGIO1$ST$Ind1$stVal"),
						),
					),
				),
			),
		),
		confirmedReq("ReadNVL", 6,
			berToken("read", svcRead,
				ber("nvlSpec", 0xA2,
					objectNameChunks("nvl", dom, "Events"),
				),
			),
		),
		confirmedReq("WriteVariable", 7,
			berToken("write", svcWrite,
				ber("spec", 0xA1,
					ber("listOfVar", 0xA0,
						ber("entry", 0x30,
							objectNameChunks("var", dom, "GGIO1$SP$NamPlt$vendor"),
						),
					),
				),
				ber("listOfData", 0xA0,
					ber("value", 0x8A, datamodel.StrVar("valueStr", 1, 16, "ACME")),
				),
			),
		),
		confirmedReq("GetVarAttributes", 8,
			berToken("gva", svcGetVarAttrs,
				objectNameChunks("var", dom, "LLN0$ST$Mod$stVal"),
			),
		),
		confirmedReq("DefineNVL", 9,
			berToken("dnvl", svcDefineNVL,
				objectNameChunks("nvl", dom, "MyList"),
				ber("members", 0xA0,
					ber("m1", 0x30, objectNameChunks("mv1", dom, "GGIO1$ST$Ind1$stVal")),
					ber("m2", 0x30, objectNameChunks("mv2", dom, "LLN0$ST$Beh$stVal")),
				),
			),
		),
		confirmedReq("GetNVLAttributes", 10,
			berToken("gnvl", svcGetNVLAttrs,
				objectNameChunks("nvl", dom, "Events"),
			),
		),
		confirmedReq("DeleteNVL", 11,
			berToken("delnvl", svcDeleteNVL,
				objectNameChunks("nvl", dom, "MyList"),
			),
		),
		confirmedReq("FileOpen", 12,
			berHighToken("fopen", svcFileOpen,
				ber("fname", 0xA0,
					datamodel.Blk("gname",
						datamodel.Num("gnameTag", 1, 0x19),
						datamodel.Num("gnameLen", 1, 0).WithRel(datamodel.SizeOf, "gnameVal", 0),
						datamodel.StrVar("gnameVal", 1, 32, "COMTRADE/R1.CFG"),
					),
				),
				ber("initPos", 0x81, datamodel.Num("posVal", 1, 0)),
			),
		),
		confirmedReq("FileRead", 13,
			berHighToken("fread", svcFileRead,
				ber("frsm", 0x02, datamodel.Num("frsmVal", 1, 1)),
			),
		),
		confirmedReq("FileClose", 14,
			berHighToken("fclose", svcFileClose,
				ber("frsm", 0x02, datamodel.Num("frsmVal", 1, 1)),
			),
		),
		confirmedReq("FileDirectory", 15,
			berHighToken("fdir", svcFileDirectory,
				ber("fspec", 0xA0,
					datamodel.Blk("gdir",
						datamodel.Num("gdirTag", 1, 0x19),
						datamodel.Num("gdirLen", 1, 0).WithRel(datamodel.SizeOf, "gdirVal", 0),
						datamodel.StrVar("gdirVal", 1, 32, "COMTRADE"),
					),
				),
			),
		),
	}
}
