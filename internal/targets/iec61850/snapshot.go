package iec61850

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/checkpoint"
)

// This file is the IEC 61850 MMS target's side of the campaign-checkpoint
// seam (sandbox.StateCheckpointer). The IED model's *structure* (domains,
// items, types) is construction-time configuration pinned by the campaign
// digest; what a packet can mutate — attribute values, named variable
// lists, the file-transfer state machines, the connection-stack flags and
// request counters — is what the checkpoint carries. All maps are written
// in sorted key order so the encoding is canonical.

// SnapshotState implements sandbox.StateCheckpointer.
func (s *Server) SnapshotState(w *checkpoint.Writer) {
	w.Bool(s.cotpConnected)
	w.Bool(s.sessionOpen)
	w.Bool(s.associated)

	doms := make([]string, 0, len(s.domains))
	for d := range s.domains {
		doms = append(doms, d)
	}
	sort.Strings(doms)
	w.Int(len(doms))
	for _, d := range doms {
		items := s.domains[d]
		names := make([]string, 0, len(items))
		for n := range items {
			names = append(names, n)
		}
		sort.Strings(names)
		w.String(d)
		w.Int(len(names))
		for _, n := range names {
			w.String(n)
			w.Blob(items[n].value)
		}
	}

	keys := make([]string, 0, len(s.nvls))
	for k := range s.nvls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k)
		w.Int(len(s.nvls[k]))
		for _, m := range s.nvls[k] {
			w.String(m)
		}
	}

	w.Uvarint(uint64(s.invokeID))
	w.Int(s.writes)
	w.Int(s.reads)

	ids := make([]int, 0, len(s.fs.frsm))
	for id := range s.fs.frsm {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	w.Int(len(ids))
	for _, id := range ids {
		e := s.fs.frsm[uint32(id)]
		w.Uvarint(uint64(id))
		w.String(e.name)
		w.Int(e.pos)
	}
	w.Uvarint(uint64(s.fs.nextFRSM))
}

// RestoreState implements sandbox.StateCheckpointer.
func (s *Server) RestoreState(r *checkpoint.Reader) error {
	s.cotpConnected = r.Bool()
	s.sessionOpen = r.Bool()
	s.associated = r.Bool()

	nd := r.Count()
	for i := 0; i < nd && r.Err() == nil; i++ {
		d := r.String()
		ni := r.Count()
		if r.Err() != nil {
			break
		}
		items, found := s.domains[d]
		if !found {
			return fmt.Errorf("iec61850: checkpoint names unknown domain %q", d)
		}
		for j := 0; j < ni && r.Err() == nil; j++ {
			n := r.String()
			v := r.Blob()
			if r.Err() != nil {
				break
			}
			attr, found := items[n]
			if !found {
				return fmt.Errorf("iec61850: checkpoint names unknown attribute %s/%s", d, n)
			}
			attr.value = append([]byte(nil), v...)
		}
	}

	nk := r.Count()
	s.nvls = make(map[string][]string, nk)
	for i := 0; i < nk && r.Err() == nil; i++ {
		k := r.String()
		nm := r.Count()
		var members []string
		for j := 0; j < nm && r.Err() == nil; j++ {
			members = append(members, r.String())
		}
		if r.Err() != nil {
			break
		}
		if _, dup := s.nvls[k]; dup {
			return fmt.Errorf("iec61850: duplicate variable list %q", k)
		}
		s.nvls[k] = members
	}

	inv := r.Uvarint()
	if r.Err() == nil && inv > math.MaxUint32 {
		return fmt.Errorf("iec61850: invoke id %d out of range", inv)
	}
	s.invokeID = uint32(inv)
	s.writes = r.Int()
	s.reads = r.Int()

	nf := r.Count()
	s.fs.frsm = make(map[uint32]*frsmEntry, nf)
	for i := 0; i < nf && r.Err() == nil; i++ {
		id := r.Uvarint()
		name := r.String()
		pos := r.Int()
		if r.Err() != nil {
			break
		}
		if id > math.MaxUint32 {
			return fmt.Errorf("iec61850: file state machine id %d out of range", id)
		}
		if _, dup := s.fs.frsm[uint32(id)]; dup {
			return fmt.Errorf("iec61850: duplicate file state machine %d", id)
		}
		s.fs.frsm[uint32(id)] = &frsmEntry{name: name, pos: pos}
	}
	next := r.Uvarint()
	if r.Err() == nil && next > math.MaxUint32 {
		return fmt.Errorf("iec61850: next file state machine id %d out of range", next)
	}
	s.fs.nextFRSM = uint32(next)
	return r.Err()
}
