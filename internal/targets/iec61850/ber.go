// Package iec61850 reimplements the packet-processing core of libiec61850
// (mz-automation) — an MMS server for IEC 61850 — as an instrumented
// fuzzing target (paper §V-A, Fig. 4(c)).
//
// This is the largest of the six evaluated projects; the paper reports
// thousands of paths for it, where the others reach hundreds or dozens.
// The reproduction keeps that scale ordering: a TPKT/COTP/session stack, a
// recursive BER-TLV decoder, and nine MMS confirmed services over an IED
// data model (domains, logical nodes, functional-constraint objects, named
// variable lists).
//
// libiec61850 contributed no entries to the paper's Table I, so no
// vulnerabilities are seeded here; every parser path is bounds-checked.
package iec61850

import "repro/internal/coverage"

// tlv is one decoded BER element. Low-tag-number elements carry their tag
// octet verbatim; high-tag-number elements (tag octet 0x1F mask all ones,
// as MMS file services use) compose the leading octet and the extension
// octet into a 16-bit value, e.g. fileOpen's [72] is 0xBF48.
type tlv struct {
	tag  int
	val  []byte
	rest []byte // bytes following the element
}

// berDecoder wraps TLV decoding with instrumentation: length-form branches
// and error branches are the bulk of an MMS parser's control flow, so they
// are all counted.
type berDecoder struct {
	s  *Server
	tr *coverage.Tracer
}

// next decodes the element at the front of data. ok is false on any
// malformed encoding; every rejection is a distinct branch.
func (d *berDecoder) next(data []byte) (tlv, bool) {
	if len(data) < 2 {
		d.s.hit(d.tr, 200)
		return tlv{}, false
	}
	tag := int(data[0])
	idx := 1
	if data[0]&0x1F == 0x1F { // high tag number form
		d.s.hit(d.tr, 212)
		if len(data) < 3 || data[1]&0x80 != 0 {
			// Multi-octet tag numbers are rejected (MMS stays
			// below 128).
			d.s.hit(d.tr, 213)
			return tlv{}, false
		}
		tag = int(data[0])<<8 | int(data[1])
		idx = 2
	}
	if len(data) < idx+1 {
		d.s.hit(d.tr, 214)
		return tlv{}, false
	}
	lengthOctet := data[idx]
	offset := idx + 1
	var length int
	switch {
	case lengthOctet < 0x80: // short form
		d.s.hit(d.tr, 201)
		length = int(lengthOctet)
	case lengthOctet == 0x81: // long form, 1 octet
		if len(data) < offset+1 {
			d.s.hit(d.tr, 202)
			return tlv{}, false
		}
		d.s.hit(d.tr, 203)
		length = int(data[offset])
		offset++
	case lengthOctet == 0x82: // long form, 2 octets
		if len(data) < offset+2 {
			d.s.hit(d.tr, 204)
			return tlv{}, false
		}
		d.s.hit(d.tr, 205)
		length = int(data[offset])<<8 | int(data[offset+1])
		offset += 2
	default: // indefinite or over-long forms are rejected
		d.s.hit(d.tr, 206)
		return tlv{}, false
	}
	if offset+length > len(data) {
		d.s.hit(d.tr, 207)
		return tlv{}, false
	}
	return tlv{tag: tag, val: data[offset : offset+length], rest: data[offset+length:]}, true
}

// expect decodes the next element and checks its tag.
func (d *berDecoder) expect(data []byte, tag int) (tlv, bool) {
	e, ok := d.next(data)
	if !ok {
		return e, false
	}
	if e.tag != tag {
		d.s.hit(d.tr, 208)
		return e, false
	}
	return e, true
}

// uintVal decodes an unsigned integer payload of up to 4 bytes.
func (d *berDecoder) uintVal(e tlv) (uint32, bool) {
	if len(e.val) == 0 || len(e.val) > 4 {
		d.s.hit(d.tr, 209)
		return 0, false
	}
	var v uint32
	for _, b := range e.val {
		v = v<<8 | uint32(b)
	}
	return v, true
}

// visibleString validates an MMS identifier payload: ASCII letters, digits,
// '$' and '_' — the character set of IEC 61850 object references.
func (d *berDecoder) visibleString(e tlv) (string, bool) {
	if len(e.val) == 0 || len(e.val) > 64 {
		d.s.hit(d.tr, 210)
		return "", false
	}
	for _, b := range e.val {
		ok := b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
			b >= '0' && b <= '9' || b == '$' || b == '_'
		if !ok {
			d.s.hit(d.tr, 211)
			return "", false
		}
	}
	return string(e.val), true
}
