package iec61850

import (
	"testing"

	"repro/internal/sandbox"
)

// fileService hand-encodes a confirmed request with a high-tag service.
func fileService(invoke byte, svcHi, svcLo byte, body []byte) []byte {
	svc := append([]byte{svcHi, svcLo, byte(len(body))}, body...)
	inner := append([]byte{0x02, 0x01, invoke}, svc...)
	mms := append([]byte{0xA0, byte(len(inner))}, inner...)
	spdu := append([]byte{0x01, 0x00, 0x01, 0x00}, mms...)
	cotp := append([]byte{2, 0xF0, 0x80}, spdu...)
	return append([]byte{0x03, 0x00, 0x00, byte(4 + len(cotp))}, cotp...)
}

// openBody encodes the fileOpen parameter: [0]{ GraphicString(name) }.
func openBody(name string) []byte {
	g := append([]byte{0x19, byte(len(name))}, name...)
	return append([]byte{0xA0, byte(len(g))}, g...)
}

func TestFileOpenReadClose(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	res := r.Run(fileService(1, 0xBF, 0x48, openBody("COMTRADE/R1.DAT")))
	if res.Outcome != sandbox.OK {
		t.Fatalf("fileOpen crashed: %v", res.Fault)
	}
	if s.OpenFiles() != 1 {
		t.Fatalf("open files = %d", s.OpenFiles())
	}
	// R1.DAT is 90 bytes: three reads (32+32+26) reach EOF.
	for i := 0; i < 3; i++ {
		r.Run(fileService(2, 0xBF, 0x49, []byte{0x02, 0x01, 0x01}))
	}
	if s.fs.frsm[1].pos != 90 {
		t.Fatalf("frsm position = %d", s.fs.frsm[1].pos)
	}
	r.Run(fileService(3, 0xBF, 0x4A, []byte{0x02, 0x01, 0x01}))
	if s.OpenFiles() != 0 {
		t.Fatal("fileClose did not release the FRSM")
	}
}

func TestFileOpenValidation(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	for _, body := range [][]byte{
		openBody("no-such-file"),
		openBody("../etc/passwd"), // traversal screened
		openBody(""),              // empty body below fails GraphicString parse
		{0xA0, 0x00},              // empty name sequence
	} {
		if res := r.Run(fileService(1, 0xBF, 0x48, body)); res.Outcome != sandbox.OK {
			t.Fatalf("fileOpen %x crashed: %v", body, res.Fault)
		}
	}
	if s.OpenFiles() != 0 {
		t.Fatal("invalid open created an FRSM")
	}
}

func TestFileOpenLimit(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	for i := 0; i < frsmLimit+2; i++ {
		r.Run(fileService(byte(i), 0xBF, 0x48, openBody("model.icd")))
	}
	if s.OpenFiles() != frsmLimit {
		t.Fatalf("open files = %d, want limit %d", s.OpenFiles(), frsmLimit)
	}
}

func TestFileReadInvalidFRSM(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	if res := r.Run(fileService(1, 0xBF, 0x49, []byte{0x02, 0x01, 0x09})); res.Outcome != sandbox.OK {
		t.Fatalf("invalid frsm read crashed: %v", res.Fault)
	}
}

func TestFileDirectory(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	a := r.Run(fileService(1, 0xBF, 0x4D, openBody("COMTRADE")))
	b := r.Run(fileService(2, 0xBF, 0x4D, openBody("NOPE")))
	if a.Outcome != sandbox.OK || b.Outcome != sandbox.OK {
		t.Fatal("file directory crashed")
	}
	if a.PathSig == b.PathSig {
		t.Fatal("matching and empty directory listings should trace differently")
	}
}

func TestHighTagMalformedSafe(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	wrap := func(mms []byte) []byte {
		spdu := append([]byte{0x01, 0x00, 0x01, 0x00}, mms...)
		cotp := append([]byte{2, 0xF0, 0x80}, spdu...)
		return append([]byte{0x03, 0x00, 0x00, byte(4 + len(cotp))}, cotp...)
	}
	for _, mms := range [][]byte{
		{0xA0, 0x04, 0x02, 0x01, 0x05, 0xBF},             // truncated high tag
		{0xA0, 0x05, 0x02, 0x01, 0x05, 0xBF, 0xC8},       // multi-octet tag number
		{0xA0, 0x05, 0x02, 0x01, 0x05, 0xBF, 0x48},       // high tag without length
		{0xA0, 0x06, 0x02, 0x01, 0x05, 0xBF, 0x7F, 0x00}, // unknown file service
	} {
		if res := r.Run(wrap(mms)); res.Outcome != sandbox.OK {
			t.Fatalf("malformed high-tag PDU crashed: %x -> %v", mms, res.Fault)
		}
	}
}

func TestFileModelsRoundTrip(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	for _, m := range IEC61850Models() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
		if res := r.Run(pkt); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
}

func TestFileOpenModelEffective(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	for _, m := range IEC61850Models() {
		if m.Name != "FileOpen" {
			continue
		}
		r.Run(m.Generate().Bytes())
		if s.OpenFiles() != 1 {
			t.Fatal("FileOpen model default did not open a file")
		}
		return
	}
	t.Fatal("FileOpen model missing")
}

func TestFileNameScreening(t *testing.T) {
	cases := map[string]bool{
		"model.icd":       true,
		"COMTRADE/R1.CFG": true,
		"a/../b":          false,
		"bad name":        false,
		"":                false,
	}
	for name, want := range cases {
		if _, got := fileName([]byte(name)); got != want {
			t.Errorf("fileName(%q) = %v, want %v", name, got, want)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	if _, ok := fileName(long); ok {
		t.Error("over-long file name accepted")
	}
}
