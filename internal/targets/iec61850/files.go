package iec61850

import (
	"sort"

	"repro/internal/coverage"
)

// MMS file services use high-tag-number confirmed-service tags: fileOpen
// [72], fileRead [73], fileClose [74], fileDirectory [77]. On the wire the
// context+constructed leading octet 0xBF composes with the tag number.
const (
	svcFileOpen      = 0xBF48
	svcFileRead      = 0xBF49
	svcFileClose     = 0xBF4A
	svcFileDirectory = 0xBF4D
)

// graphicString is the BER tag of MMS file names.
const tagGraphicString = 0x19

// fileState is the server's file store plus the open FRSM (file read state
// machine) table, as libiec61850's MmsFileService keeps.
type fileState struct {
	files    map[string][]byte
	frsm     map[uint32]*frsmEntry
	nextFRSM uint32
}

type frsmEntry struct {
	name string
	pos  int
}

// frsmLimit bounds concurrently open files, as the C implementation's
// CONFIG_MMS_MAX_NUMBER_OF_OPEN_FILES_PER_CONNECTION.
const frsmLimit = 4

// fileChunkSize is the per-read chunk, far below the real 64 KiB to keep
// multi-chunk reads reachable with small packets.
const fileChunkSize = 32

func newFileState() fileState {
	return fileState{
		files: map[string][]byte{
			"IEDSERVER.BIN":   make([]byte, 70),
			"COMTRADE/R1.CFG": []byte("station,device,1999\n1,1A,P\n"),
			"COMTRADE/R1.DAT": make([]byte, 90),
			"model.icd":       []byte("<SCL><IED name=\"simpleIO\"/></SCL>"),
		},
		frsm:     map[uint32]*frsmEntry{},
		nextFRSM: 1,
	}
}

// dispatchFileService serves the file-service tags; returns false when the
// tag is not a file service.
func (s *Server) dispatchFileService(tr *coverage.Tracer, d *berDecoder, tag int, body []byte) bool {
	switch tag {
	case svcFileOpen:
		s.hit(tr, 90)
		s.fileOpen(tr, d, body)
	case svcFileRead:
		s.hit(tr, 91)
		s.fileRead(tr, d, body)
	case svcFileClose:
		s.hit(tr, 92)
		s.fileClose(tr, d, body)
	case svcFileDirectory:
		s.hit(tr, 93)
		s.fileDirectory(tr, d, body)
	default:
		return false
	}
	return true
}

// fileOpen parses a [0] fileName sequence holding one GraphicString and an
// optional [1] initial position, allocating an FRSM on success.
func (s *Server) fileOpen(tr *coverage.Tracer, d *berDecoder, body []byte) {
	nameSeq, ok := d.expect(body, 0xA0)
	if !ok {
		return
	}
	ge, ok := d.expect(nameSeq.val, tagGraphicString)
	if !ok {
		return
	}
	name, ok := fileName(ge.val)
	if !ok {
		s.hit(tr, 94)
		return
	}
	content, found := s.fs.files[name]
	if !found {
		s.hit(tr, 95) // file-non-existent
		return
	}
	pos := 0
	if pe, ok2 := d.next(nameSeq.rest); ok2 && pe.tag == 0x81 {
		if v, ok3 := d.uintVal(pe); ok3 {
			pos = int(v)
		}
	}
	if pos > len(content) {
		s.hit(tr, 96) // file-position-invalid
		return
	}
	if len(s.fs.frsm) >= frsmLimit {
		s.hit(tr, 97) // too many open files
		return
	}
	s.hit(tr, 98)
	id := s.fs.nextFRSM
	s.fs.nextFRSM++
	s.fs.frsm[id] = &frsmEntry{name: name, pos: pos}
}

// fileRead serves one chunk from an open FRSM; the response would carry
// moreFollows, modeled by the branch split below.
func (s *Server) fileRead(tr *coverage.Tracer, d *berDecoder, body []byte) {
	ie, ok := d.expect(body, 0x02)
	if !ok {
		return
	}
	id, ok := d.uintVal(ie)
	if !ok {
		return
	}
	f, found := s.fs.frsm[id]
	if !found {
		s.hit(tr, 99) // frsm-id invalid
		return
	}
	content := s.fs.files[f.name]
	remaining := len(content) - f.pos
	if remaining <= 0 {
		s.hit(tr, 100)
		return
	}
	if remaining > fileChunkSize {
		s.hit(tr, 101) // moreFollows = true
		f.pos += fileChunkSize
	} else {
		s.hit(tr, 102) // final chunk
		f.pos = len(content)
	}
}

// fileClose releases an FRSM.
func (s *Server) fileClose(tr *coverage.Tracer, d *berDecoder, body []byte) {
	ie, ok := d.expect(body, 0x02)
	if !ok {
		return
	}
	id, ok := d.uintVal(ie)
	if !ok {
		return
	}
	if _, found := s.fs.frsm[id]; !found {
		s.hit(tr, 103)
		return
	}
	s.hit(tr, 104)
	delete(s.fs.frsm, id)
}

// fileDirectory lists files under a [0] path prefix (empty = all).
func (s *Server) fileDirectory(tr *coverage.Tracer, d *berDecoder, body []byte) {
	prefix := ""
	if len(body) > 0 {
		pe, ok := d.next(body)
		if !ok {
			return
		}
		if pe.tag == 0xA0 {
			ge, ok := d.expect(pe.val, tagGraphicString)
			if !ok {
				return
			}
			p, ok := fileName(ge.val)
			if !ok {
				s.hit(tr, 105)
				return
			}
			prefix = p
		}
	}
	var names []string
	for name := range s.fs.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		s.hit(tr, 106)
		return
	}
	for range names {
		s.hit(tr, 107)
	}
}

// fileName validates an MMS file name: printable ASCII, '/'-separated, no
// traversal ("..") components — the screening the C library applies.
func fileName(raw []byte) (string, bool) {
	if len(raw) == 0 || len(raw) > 64 {
		return "", false
	}
	for _, b := range raw {
		ok := b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
			b >= '0' && b <= '9' || b == '.' || b == '/' || b == '_' || b == '-'
		if !ok {
			return "", false
		}
	}
	name := string(raw)
	for i := 0; i+1 < len(name); i++ {
		if name[i] == '.' && name[i+1] == '.' {
			return "", false
		}
	}
	return name, true
}

// OpenFiles reports the FRSM count (tests use it).
func (s *Server) OpenFiles() int { return len(s.fs.frsm) }
