package iec61850

import (
	"sort"

	"repro/internal/coverage"
	"repro/internal/targets"
)

// MMS PDU outer tags.
const (
	tagConfirmedReq = 0xA0
	tagInitiateReq  = 0xA8
	tagConcludeReq  = 0x8B
)

// Confirmed-service tags inside a confirmed-request.
const (
	svcStatus      = 0x80 // status-Request
	svcGetNameList = 0xA1
	svcIdentify    = 0x82
	svcRead        = 0xA4
	svcWrite       = 0xA5
	svcGetVarAttrs = 0xA6
	svcDefineNVL   = 0xAB
	svcGetNVLAttrs = 0xAC
	svcDeleteNVL   = 0xAD
)

// attribute is one leaf of the IED data model.
type attribute struct {
	fc       string // functional constraint (ST, MX, CO, CF, SP)
	typ      byte   // MMS type tag: 0x83 bool, 0x85 integer, 0x8A string
	value    []byte
	writable bool
}

// Server is the instrumented libiec61850 MMS server core.
type Server struct {
	id []coverage.BlockID //peachstar:nosnap immutable block identity wired at construction

	cotpConnected bool
	sessionOpen   bool
	associated    bool

	// IED model: domain -> item path -> attribute.
	domains map[string]map[string]*attribute
	// Named variable lists: name -> member item paths.
	nvls map[string][]string

	invokeID uint32
	writes   int
	reads    int
	fs       fileState
}

// New returns a fresh server with the example IED model that ships with
// libiec61850's server examples (one logical device, LLN0 and a GGIO).
func New() *Server {
	s := &Server{
		id:      coverage.Blocks("libiec61850", 512),
		domains: map[string]map[string]*attribute{},
		nvls:    map[string][]string{},
		fs:      newFileState(),
	}
	d := map[string]*attribute{
		"LLN0$ST$Mod$stVal":      {fc: "ST", typ: 0x85, value: []byte{1}},
		"LLN0$ST$Beh$stVal":      {fc: "ST", typ: 0x85, value: []byte{1}},
		"LLN0$ST$Health$stVal":   {fc: "ST", typ: 0x85, value: []byte{1}},
		"LLN0$CF$Mod$ctlModel":   {fc: "CF", typ: 0x85, value: []byte{0}, writable: true},
		"GGIO1$ST$Ind1$stVal":    {fc: "ST", typ: 0x83, value: []byte{0}},
		"GGIO1$ST$Ind2$stVal":    {fc: "ST", typ: 0x83, value: []byte{0}},
		"GGIO1$MX$AnIn1$mag$f":   {fc: "MX", typ: 0x85, value: []byte{0, 42}},
		"GGIO1$CO$SPCSO1$Oper":   {fc: "CO", typ: 0x83, value: []byte{0}, writable: true},
		"GGIO1$SP$NamPlt$vendor": {fc: "SP", typ: 0x8A, value: []byte("MZA"), writable: true},
	}
	s.domains["simpleIOGenericIO"] = d
	s.nvls["simpleIOGenericIO/Events"] = []string{"GGIO1$ST$Ind1$stVal", "GGIO1$ST$Ind2$stVal"}
	return s
}

// Name implements targets.Target.
func (s *Server) Name() string { return "libiec61850" }

func (s *Server) hit(tr *coverage.Tracer, n int) { tr.Hit(s.id[n]) }

// Handle implements targets.Target: TPKT, COTP, ISO session, then MMS.
func (s *Server) Handle(tr *coverage.Tracer, pkt []byte) {
	s.hit(tr, 0)
	if len(pkt) < 7 {
		s.hit(tr, 1)
		return
	}
	if pkt[0] != 0x03 || pkt[1] != 0x00 {
		s.hit(tr, 2)
		return
	}
	if int(pkt[2])<<8|int(pkt[3]) != len(pkt) {
		s.hit(tr, 3)
		return
	}
	cotp := pkt[4:]
	hdrLen := int(cotp[0])
	if hdrLen < 2 || 1+hdrLen > len(cotp) {
		s.hit(tr, 4)
		return
	}
	switch cotp[1] {
	case 0xE0: // connection request
		s.hit(tr, 5)
		s.cotpConnected = true
		s.sessionOpen = false
		s.associated = false
	case 0x80: // disconnect request
		s.hit(tr, 6)
		s.cotpConnected = false
	case 0xF0: // data transfer
		if !s.cotpConnected {
			s.hit(tr, 7)
			return
		}
		if cotp[hdrLen]&0x80 == 0 { // EOT must be set (single TSDU)
			s.hit(tr, 8)
			return
		}
		s.hit(tr, 9)
		s.session(tr, cotp[1+hdrLen:])
	default:
		s.hit(tr, 10)
	}
}

// session handles the ISO session layer: CONNECT (0x0D) opens the session
// and carries the first MMS PDU in its user data; GIVE-TOKENS + DATA
// (0x01 0x00 0x01 0x00) prefixes subsequent PDUs.
func (s *Server) session(tr *coverage.Tracer, spdu []byte) {
	if len(spdu) < 2 {
		s.hit(tr, 11)
		return
	}
	switch spdu[0] {
	case 0x0D: // CONNECT
		ln := int(spdu[1])
		if 2+ln > len(spdu) {
			s.hit(tr, 12)
			return
		}
		s.hit(tr, 13)
		s.sessionOpen = true
		// User data follows the session parameters.
		s.mms(tr, spdu[2+ln:])
	case 0x01: // GIVE TOKENS, then DATA TRANSFER
		if !s.sessionOpen {
			s.hit(tr, 14)
			return
		}
		if len(spdu) < 4 || spdu[1] != 0x00 || spdu[2] != 0x01 || spdu[3] != 0x00 {
			s.hit(tr, 15)
			return
		}
		s.hit(tr, 16)
		s.mms(tr, spdu[4:])
	default:
		s.hit(tr, 17)
	}
}

// mms decodes the outer MMS PDU.
func (s *Server) mms(tr *coverage.Tracer, data []byte) {
	d := &berDecoder{s: s, tr: tr}
	pdu, ok := d.next(data)
	if !ok {
		return
	}
	switch pdu.tag {
	case tagInitiateReq:
		s.hit(tr, 18)
		s.initiate(tr, d, pdu.val)
	case tagConfirmedReq:
		if !s.associated {
			s.hit(tr, 19)
			return
		}
		s.hit(tr, 20)
		s.confirmed(tr, d, pdu.val)
	case tagConcludeReq:
		s.hit(tr, 21)
		s.associated = false
	default:
		s.hit(tr, 22)
	}
}

// initiate parses the initiate-request parameter sequence: localDetail
// [0], max services calling/called [1]/[2], nest level [3], then the init
// detail. Parameters are optional but ordered, as in the MMS ASN.1.
func (s *Server) initiate(tr *coverage.Tracer, d *berDecoder, body []byte) {
	rest := body
	if len(rest) == 0 {
		s.hit(tr, 23)
		return
	}
	// localDetailCalling (optional).
	if e, ok := d.next(rest); ok && e.tag == 0x80 {
		if v, ok := d.uintVal(e); !ok || v < 1000 {
			s.hit(tr, 24)
			return
		}
		s.hit(tr, 25)
		rest = e.rest
	}
	// proposedMaxServOutstandingCalling [1] (required).
	e, ok := d.expect(rest, 0x81)
	if !ok {
		return
	}
	if v, ok2 := d.uintVal(e); !ok2 || v == 0 {
		s.hit(tr, 26)
		return
	}
	rest = e.rest
	// proposedMaxServOutstandingCalled [2] (required).
	e, ok = d.expect(rest, 0x82)
	if !ok {
		return
	}
	if v, ok2 := d.uintVal(e); !ok2 || v == 0 {
		s.hit(tr, 27)
		return
	}
	s.hit(tr, 28)
	s.associated = true
}

// confirmed parses invoke id + service and dispatches.
func (s *Server) confirmed(tr *coverage.Tracer, d *berDecoder, body []byte) {
	inv, ok := d.expect(body, 0x02) // invokeID INTEGER
	if !ok {
		return
	}
	id, ok := d.uintVal(inv)
	if !ok {
		return
	}
	s.invokeID = id
	svc, ok := d.next(inv.rest)
	if !ok {
		return
	}
	switch svc.tag {
	case svcStatus:
		s.hit(tr, 29)
	case svcIdentify:
		s.hit(tr, 30)
	case svcGetNameList:
		s.hit(tr, 31)
		s.getNameList(tr, d, svc.val)
	case svcRead:
		s.hit(tr, 32)
		s.read(tr, d, svc.val)
	case svcWrite:
		s.hit(tr, 33)
		s.write(tr, d, svc.val)
	case svcGetVarAttrs:
		s.hit(tr, 34)
		s.getVarAttrs(tr, d, svc.val)
	case svcDefineNVL:
		s.hit(tr, 35)
		s.defineNVL(tr, d, svc.val)
	case svcGetNVLAttrs:
		s.hit(tr, 36)
		s.getNVLAttrs(tr, d, svc.val)
	case svcDeleteNVL:
		s.hit(tr, 37)
		s.deleteNVL(tr, d, svc.val)
	default:
		if !s.dispatchFileService(tr, d, svc.tag, svc.val) {
			s.hit(tr, 38)
		}
	}
}

// getNameList serves object discovery: objectClass [0], objectScope [1]
// with vmd [0] / domain [1] alternatives, optional continueAfter [2].
func (s *Server) getNameList(tr *coverage.Tracer, d *berDecoder, body []byte) {
	cls, ok := d.expect(body, 0x80)
	if !ok {
		return
	}
	class, ok := d.uintVal(cls)
	if !ok {
		return
	}
	scope, ok := d.next(cls.rest)
	if !ok {
		return
	}
	var names []string
	switch scope.tag {
	case 0xA1: // scope: sub-choice inside
		sub, ok := d.next(scope.val)
		if !ok {
			return
		}
		switch sub.tag {
		case 0x80: // vmd-specific
			s.hit(tr, 39)
			if class == 9 { // domain objects
				s.hit(tr, 40)
				for dom := range s.domains {
					names = append(names, dom)
				}
			} else {
				s.hit(tr, 41)
			}
		case 0x81: // domain-specific
			dom, ok := d.visibleString(sub)
			if !ok {
				return
			}
			items, found := s.domains[dom]
			if !found {
				s.hit(tr, 42)
				return
			}
			switch class {
			case 0: // named variables
				s.hit(tr, 43)
				for item := range items {
					names = append(names, item)
				}
			case 2: // named variable lists
				s.hit(tr, 44)
				for nvl := range s.nvls {
					names = append(names, nvl)
				}
			default:
				s.hit(tr, 45)
			}
		default:
			s.hit(tr, 46)
			return
		}
	default:
		s.hit(tr, 47)
		return
	}
	sort.Strings(names)
	// continueAfter narrows the listing — hit per surviving name, the
	// response-building loop.
	if ca, ok := d.next(scope.rest); ok && ca.tag == 0x82 {
		s.hit(tr, 48)
		after, ok := d.visibleString(ca)
		if !ok {
			return
		}
		for _, n := range names {
			if n > after {
				s.hit(tr, 49)
			}
		}
		return
	}
	for range names {
		s.hit(tr, 50)
	}
}

// objectName parses an MMS ObjectName CHOICE: domain-specific [1] is a
// sequence of domainID and itemID visible strings.
func (s *Server) objectName(tr *coverage.Tracer, d *berDecoder, data []byte) (dom, item string, rest []byte, ok bool) {
	name, ok := d.next(data)
	if !ok {
		return "", "", nil, false
	}
	if name.tag != 0xA1 { // only domain-specific names are served
		s.hit(tr, 51)
		return "", "", nil, false
	}
	de, ok := d.expect(name.val, 0x1A)
	if !ok {
		return "", "", nil, false
	}
	dom, ok = d.visibleString(de)
	if !ok {
		return "", "", nil, false
	}
	ie, ok := d.expect(de.rest, 0x1A)
	if !ok {
		return "", "", nil, false
	}
	item, ok = d.visibleString(ie)
	if !ok {
		return "", "", nil, false
	}
	s.hit(tr, 52)
	return dom, item, name.rest, true
}

// lookup resolves a domain/item pair against the IED model.
func (s *Server) lookup(tr *coverage.Tracer, dom, item string) *attribute {
	items, found := s.domains[dom]
	if !found {
		s.hit(tr, 53)
		return nil
	}
	attr, found := items[item]
	if !found {
		s.hit(tr, 54)
		return nil
	}
	s.hit(tr, 55)
	return attr
}

// read serves the read service: variableAccessSpecification [1] with a
// listOfVariable [0], each entry a sequence holding an ObjectName. NVL
// reads ([1] variableListName) expand the list's members.
func (s *Server) read(tr *coverage.Tracer, d *berDecoder, body []byte) {
	spec, ok := d.next(body)
	if !ok {
		return
	}
	switch spec.tag {
	case 0xA0: // specification with modifiers — unsupported
		s.hit(tr, 56)
	case 0xA1: // listOfVariable
		list, ok := d.expect(spec.val, 0xA0)
		if !ok {
			return
		}
		rest := list.val
		count := 0
		for len(rest) > 0 && count < 32 {
			seq, ok := d.expect(rest, 0x30)
			if !ok {
				return
			}
			dom, item, _, ok := s.objectName(tr, d, seq.val)
			if !ok {
				return
			}
			attr := s.lookup(tr, dom, item)
			if attr != nil {
				s.reads++
				switch attr.typ {
				case 0x83:
					s.hit(tr, 57)
				case 0x85:
					s.hit(tr, 58)
				case 0x8A:
					s.hit(tr, 59)
				}
				switch attr.fc {
				case "ST":
					s.hit(tr, 60)
				case "MX":
					s.hit(tr, 61)
				case "CO":
					s.hit(tr, 62)
				default:
					s.hit(tr, 63)
				}
			}
			rest = seq.rest
			count++
		}
		if count > 1 {
			s.hit(tr, 64)
		}
	case 0xA2: // variableListName: read a whole NVL
		dom, item, _, ok := s.objectName(tr, d, spec.val)
		if !ok {
			return
		}
		members, found := s.nvls[dom+"/"+item]
		if !found {
			s.hit(tr, 65)
			return
		}
		s.hit(tr, 66)
		for _, m := range members {
			if s.lookup(tr, dom, m) != nil {
				s.reads++
				s.hit(tr, 67)
			}
		}
	default:
		s.hit(tr, 68)
	}
}

// write serves the write service: the variable spec followed by
// listOfData; type tags must match the model and the attribute must be
// writable (access control).
func (s *Server) write(tr *coverage.Tracer, d *berDecoder, body []byte) {
	spec, ok := d.expect(body, 0xA1)
	if !ok {
		return
	}
	list, ok := d.expect(spec.val, 0xA0)
	if !ok {
		return
	}
	seq, ok := d.expect(list.val, 0x30)
	if !ok {
		return
	}
	dom, item, _, ok := s.objectName(tr, d, seq.val)
	if !ok {
		return
	}
	dataList, ok := d.expect(spec.rest, 0xA0)
	if !ok {
		return
	}
	val, ok := d.next(dataList.val)
	if !ok {
		return
	}
	attr := s.lookup(tr, dom, item)
	if attr == nil {
		return
	}
	if !attr.writable {
		s.hit(tr, 69) // temporarily-unavailable / access-denied
		return
	}
	if val.tag != int(attr.typ) {
		s.hit(tr, 70) // type-inconsistent
		return
	}
	if len(val.val) == 0 || len(val.val) > 64 {
		s.hit(tr, 71)
		return
	}
	s.hit(tr, 72)
	attr.value = append([]byte(nil), val.val...)
	s.writes++
}

// getVarAttrs serves getVariableAccessAttributes: an ObjectName whose type
// description is returned.
func (s *Server) getVarAttrs(tr *coverage.Tracer, d *berDecoder, body []byte) {
	dom, item, _, ok := s.objectName(tr, d, body)
	if !ok {
		return
	}
	attr := s.lookup(tr, dom, item)
	if attr == nil {
		return
	}
	switch attr.typ {
	case 0x83:
		s.hit(tr, 73)
	case 0x85:
		s.hit(tr, 74)
	default:
		s.hit(tr, 75)
	}
}

// defineNVL creates a named variable list: NVL ObjectName + listOfVariable.
func (s *Server) defineNVL(tr *coverage.Tracer, d *berDecoder, body []byte) {
	dom, item, rest, ok := s.objectName(tr, d, body)
	if !ok {
		return
	}
	key := dom + "/" + item
	if _, exists := s.nvls[key]; exists {
		s.hit(tr, 76) // object-exists
		return
	}
	list, ok := d.expect(rest, 0xA0)
	if !ok {
		return
	}
	var members []string
	lrest := list.val
	for len(lrest) > 0 && len(members) < 16 {
		seq, ok := d.expect(lrest, 0x30)
		if !ok {
			return
		}
		mdom, mitem, _, ok := s.objectName(tr, d, seq.val)
		if !ok {
			return
		}
		if s.lookup(tr, mdom, mitem) == nil {
			s.hit(tr, 77)
			return
		}
		members = append(members, mitem)
		lrest = seq.rest
	}
	if len(members) == 0 {
		s.hit(tr, 78)
		return
	}
	s.hit(tr, 79)
	s.nvls[key] = members
}

// getNVLAttrs lists an NVL's members.
func (s *Server) getNVLAttrs(tr *coverage.Tracer, d *berDecoder, body []byte) {
	dom, item, _, ok := s.objectName(tr, d, body)
	if !ok {
		return
	}
	members, found := s.nvls[dom+"/"+item]
	if !found {
		s.hit(tr, 80)
		return
	}
	s.hit(tr, 81)
	for range members {
		s.hit(tr, 82)
	}
}

// deleteNVL removes an NVL; the preconfigured list is protected.
func (s *Server) deleteNVL(tr *coverage.Tracer, d *berDecoder, body []byte) {
	dom, item, _, ok := s.objectName(tr, d, body)
	if !ok {
		return
	}
	key := dom + "/" + item
	if _, found := s.nvls[key]; !found {
		s.hit(tr, 83)
		return
	}
	if key == "simpleIOGenericIO/Events" {
		s.hit(tr, 84) // access-denied for the config-defined list
		return
	}
	s.hit(tr, 85)
	delete(s.nvls, key)
}

// Associated reports MMS association state (tests use it).
func (s *Server) Associated() bool { return s.associated }

// Writes counts successful write operations (tests use it).
func (s *Server) Writes() int { return s.writes }

// Reads counts successful variable reads (tests use it).
func (s *Server) Reads() int { return s.reads }

// NVLCount returns the number of named variable lists (tests use it).
func (s *Server) NVLCount() int { return len(s.nvls) }

func init() {
	targets.Register("libiec61850", func() targets.Target { return New() })
}
