package iec61850

import (
	"testing"

	"repro/internal/coverage"
	"repro/internal/sandbox"
	"repro/internal/targets"
)

// modelByName fetches a model from the set.
func modelByName(t *testing.T, name string) packetGen {
	t.Helper()
	for _, m := range IEC61850Models() {
		if m.Name == name {
			return packetGen{pkt: m.Generate().Bytes()}
		}
	}
	t.Fatalf("no model %q", name)
	return packetGen{}
}

type packetGen struct{ pkt []byte }

// associate drives a fresh server to the associated state via the model
// defaults.
func associate(t *testing.T, r *sandbox.Runner) {
	t.Helper()
	r.Run(modelByName(t, "COTPConnect").pkt)
	r.Run(modelByName(t, "SessionInitiate").pkt)
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("libiec61850")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Name() != "libiec61850" {
		t.Fatalf("name = %s", tgt.Name())
	}
	if len(tgt.Models()) != 18 {
		t.Fatalf("models = %d", len(tgt.Models()))
	}
}

func TestModelsSelfConsistent(t *testing.T) {
	for _, m := range IEC61850Models() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
	}
}

func TestAssociationViaModels(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	if s.Associated() {
		t.Fatal("fresh server associated")
	}
	associate(t, r)
	if !s.Associated() {
		t.Fatal("model defaults did not associate")
	}
	r.Run(modelByName(t, "Conclude").pkt)
	if s.Associated() {
		t.Fatal("conclude ignored")
	}
}

func TestAllModelDefaultsSafe(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	for _, m := range IEC61850Models() {
		if res := r.Run(m.Generate().Bytes()); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
}

func TestReadVariableCounts(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	r.Run(modelByName(t, "ReadVariable").pkt)
	if s.Reads() != 1 {
		t.Fatalf("reads = %d", s.Reads())
	}
	// NVL read expands both members.
	r.Run(modelByName(t, "ReadNVL").pkt)
	if s.Reads() != 3 {
		t.Fatalf("reads after NVL = %d", s.Reads())
	}
}

func TestWriteVariable(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	r.Run(modelByName(t, "WriteVariable").pkt)
	if s.Writes() != 1 {
		t.Fatalf("writes = %d", s.Writes())
	}
	attr := s.domains["simpleIOGenericIO"]["GGIO1$SP$NamPlt$vendor"]
	if string(attr.value) != "ACME" {
		t.Fatalf("written value = %q", attr.value)
	}
}

func TestWriteReadOnlyRefused(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	// Build a write against a read-only attribute by patching the model
	// default: reuse WriteVariable but point it at a ST attribute.
	for _, m := range IEC61850Models() {
		if m.Name != "WriteVariable" {
			continue
		}
		inst := m.Generate()
		item := inst.Find("varItemVal")
		item.Data = []byte("GGIO1$ST$Ind1$stVal")
		m.ApplyFixups(inst)
		r.Run(inst.Bytes())
	}
	if s.Writes() != 0 {
		t.Fatal("read-only attribute written")
	}
}

func TestWriteTypeMismatchRefused(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	for _, m := range IEC61850Models() {
		if m.Name != "WriteVariable" {
			continue
		}
		inst := m.Generate()
		// vendor is a string attribute (0x8A); send a boolean tag.
		inst.Find("valueTag").SetUint(0x83)
		m.ApplyFixups(inst)
		r.Run(inst.Bytes())
	}
	if s.Writes() != 0 {
		t.Fatal("type-mismatched write accepted")
	}
}

func TestDefineAndDeleteNVL(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	base := s.NVLCount()
	r.Run(modelByName(t, "DefineNVL").pkt)
	if s.NVLCount() != base+1 {
		t.Fatalf("NVL not defined (count %d)", s.NVLCount())
	}
	// Defining the same list again: object-exists.
	r.Run(modelByName(t, "DefineNVL").pkt)
	if s.NVLCount() != base+1 {
		t.Fatal("duplicate NVL defined")
	}
	r.Run(modelByName(t, "DeleteNVL").pkt)
	if s.NVLCount() != base {
		t.Fatal("NVL not deleted")
	}
}

func TestPreconfiguredNVLProtected(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	for _, m := range IEC61850Models() {
		if m.Name != "DeleteNVL" {
			continue
		}
		inst := m.Generate()
		inst.Find("nvlItemVal").Data = []byte("Events")
		m.ApplyFixups(inst)
		r.Run(inst.Bytes())
	}
	if s.NVLCount() != 1 {
		t.Fatal("config-defined NVL deleted")
	}
}

func TestConfirmedRequiresAssociation(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(modelByName(t, "COTPConnect").pkt)
	// Jump straight to a read without initiate: dropped.
	r.Run(modelByName(t, "ReadVariable").pkt)
	if s.Reads() != 0 {
		t.Fatal("read served without association")
	}
}

func TestSessionRequiredForData(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(modelByName(t, "COTPConnect").pkt)
	// DATA SPDU before session CONNECT: dropped at the session layer.
	r.Run(modelByName(t, "Identify").pkt)
	if s.Associated() {
		t.Fatal("state moved without session")
	}
}

func TestBERLongFormLengths(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	tr := coverage.NewTracer()
	// Hand-encode a confirmed identify with a 0x81 long-form length.
	mms := []byte{0xA0, 0x81, 0x07, 0x02, 0x01, 0x05, 0x82, 0x81, 0x00}
	// Build TPKT+COTP+session around it.
	spdu := append([]byte{0x01, 0x00, 0x01, 0x00}, mms...)
	cotp := append([]byte{2, 0xF0, 0x80}, spdu...)
	pkt := append([]byte{0x03, 0x00, 0x00, byte(4 + len(cotp))}, cotp...)
	s.Handle(tr, pkt)
	// No crash and the identify branch taken; verify via a fresh trace
	// signature difference against a garbage long-form.
	res := r.Run(pkt)
	if res.Outcome != sandbox.OK {
		t.Fatalf("long-form identify crashed: %v", res.Fault)
	}
}

func TestMalformedBERSafe(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	wrap := func(mms []byte) []byte {
		spdu := append([]byte{0x01, 0x00, 0x01, 0x00}, mms...)
		cotp := append([]byte{2, 0xF0, 0x80}, spdu...)
		return append([]byte{0x03, 0x00, 0x00, byte(4 + len(cotp))}, cotp...)
	}
	for _, mms := range [][]byte{
		{},
		{0xA0},
		{0xA0, 0x05, 0x02},                   // length beyond data
		{0xA0, 0x83, 0x00, 0x00, 0x00},       // unsupported length form
		{0xA0, 0x82, 0xFF},                   // truncated long form
		{0xA0, 0x03, 0x02, 0x01},             // truncated invoke
		{0xA0, 0x04, 0x02, 0x02, 0x01, 0x05}, // invoke ok, missing service
		{0xA0, 0x06, 0x02, 0x01, 0x05, 0xA4, 0x01, 0xFF}, // read with garbage spec
	} {
		if res := r.Run(wrap(mms)); res.Outcome != sandbox.OK {
			t.Fatalf("malformed MMS crashed: %x -> %v", mms, res.Fault)
		}
	}
}

func TestGetNameListVariants(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	for _, name := range []string{"GetNameListDomains", "GetNameListVariables", "Status", "Identify", "GetVarAttributes", "GetNVLAttributes"} {
		if res := r.Run(modelByName(t, name).pkt); res.Outcome != sandbox.OK {
			t.Fatalf("%s crashed: %v", name, res.Fault)
		}
	}
}

func TestGetNameListDomainScopeReachesListing(t *testing.T) {
	// The domain-scope model must take a different trace from the
	// VMD-scope model — it walks the per-variable listing loop.
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	a := r.Run(modelByName(t, "GetNameListVariables").pkt)
	b := r.Run(modelByName(t, "GetNameListDomains").pkt)
	if a.PathSig == b.PathSig {
		t.Fatal("domain and vmd scopes traced identically; domain listing not reached")
	}
}

func TestNoSeededCrashesUnderNoise(t *testing.T) {
	// libiec61850 has no Table I entries; structured noise must not crash.
	s := New()
	r := sandbox.NewRunner(s)
	associate(t, r)
	for i := 0; i < 3000; i++ {
		mms := []byte{0xA0, byte(i % 0x30), 0x02, 0x01, byte(i),
			byte(0x80 + i%0x30), byte(i % 7), byte(i), byte(i >> 3), byte(i >> 5)}
		spdu := append([]byte{0x01, 0x00, 0x01, 0x00}, mms...)
		cotp := append([]byte{2, 0xF0, 0x80}, spdu...)
		pkt := append([]byte{0x03, 0x00, 0x00, byte(4 + len(cotp))}, cotp...)
		if res := r.Run(pkt); res.Outcome == sandbox.Crash {
			t.Fatalf("noise crashed: %x -> %v", pkt, res.Fault)
		}
	}
}

func TestBlockCountLargestOfTargets(t *testing.T) {
	// The paper's Fig. 4 scale ordering depends on libiec61850 being the
	// largest target; its instrumented-block allocation reflects that.
	if len(New().id) <= 256 {
		t.Fatal("libiec61850 should allocate the most instrumentation blocks")
	}
}
