package iccp

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sandbox"
	"repro/internal/targets"
)

// tpkt wraps a COTP payload in TPKT framing.
func tpkt(cotp []byte) []byte {
	total := 4 + len(cotp)
	out := []byte{0x03, 0x00, byte(total >> 8), byte(total)}
	return append(out, cotp...)
}

// dt builds a COTP data-transfer PDU around an MMS PDU.
func dt(mms []byte) []byte {
	return tpkt(append([]byte{2, cotpDT, 0x80}, mms...))
}

// mmsPDU assembles tag + length + body.
func mmsPDU(tag byte, body []byte) []byte {
	return append([]byte{tag, byte(len(body))}, body...)
}

// connect is the COTP connection request packet.
var connect = tpkt([]byte{6, cotpCR, 0x00, 0x00, 0x00, 0x00, 0x00})

// initiatePDU builds a valid initiate-request with the given AP title.
func initiatePDU(ap string) []byte {
	body := []byte{0x00, 0x01, 0x04, 0x00, byte(len(ap))}
	body = append(body, ap...)
	return dt(mmsPDU(tagInitiate, body))
}

// confirmedPDU builds a confirmed-request for a service.
func confirmedPDU(svc byte, rest ...byte) []byte {
	body := append([]byte{0x00, 0x01, svc}, rest...)
	return dt(mmsPDU(tagConfirmed, body))
}

// associate brings a fresh server to the associated state.
func associate(r *sandbox.Runner) {
	r.Run(connect)
	r.Run(initiatePDU("CLI"))
}

func TestRegistered(t *testing.T) {
	tgt, err := targets.New("libiccp")
	if err != nil {
		t.Fatal(err)
	}
	if tgt.Name() != "libiccp" {
		t.Fatalf("name = %s", tgt.Name())
	}
	if len(tgt.Models()) != 12 {
		t.Fatalf("models = %d", len(tgt.Models()))
	}
}

func TestModelsSelfConsistent(t *testing.T) {
	for _, m := range ICCPModels() {
		pkt := m.Generate().Bytes()
		if _, err := m.Crack(pkt); err != nil {
			t.Fatalf("model %s round trip: %v", m.Name, err)
		}
	}
}

func TestAssociationLifecycle(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	// Data before COTP connect: dropped.
	r.Run(dt(mmsPDU(tagInitiate, []byte{0x00, 0x01, 0x04, 0x00, 0x00})))
	if s.Associated() {
		t.Fatal("associated without COTP connection")
	}
	r.Run(connect)
	r.Run(initiatePDU("CLIENT1"))
	if !s.Associated() {
		t.Fatal("initiate did not associate")
	}
	r.Run(dt(mmsPDU(tagConclude, []byte{0})))
	if s.Associated() {
		t.Fatal("conclude did not end association")
	}
}

func TestInitiateValidation(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(connect)
	// Wrong protocol version.
	body := []byte{0x00, 0x09, 0x04, 0x00, 0x03, 'A', 'B', 'C'}
	r.Run(dt(mmsPDU(tagInitiate, body)))
	if s.Associated() {
		t.Fatal("wrong version accepted")
	}
	// Max PDU too small.
	body = []byte{0x00, 0x01, 0x00, 0x10, 0x03, 'A', 'B', 'C'}
	r.Run(dt(mmsPDU(tagInitiate, body)))
	if s.Associated() {
		t.Fatal("tiny max PDU accepted")
	}
}

func TestConfirmedRequiresAssociation(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(connect)
	r.Run(confirmedPDU(svcRead, 3, 'a', 'b', 'c'))
	// No crash, no effect: the read bug is unreachable pre-association.
	if s.Associated() {
		t.Fatal("state corrupted")
	}
}

func TestSeededSEGVInitiate(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(connect)
	// apLen=16 but only 2 AP bytes present.
	body := []byte{0x00, 0x01, 0x04, 0x00, 16, 'A', 'B'}
	res := r.Run(dt(mmsPDU(tagInitiate, body)))
	if res.Outcome != sandbox.Crash || res.Fault.Kind != mem.SEGV {
		t.Fatalf("res = %v fault = %+v", res.Outcome, res.Fault)
	}
}

func TestSeededSEGVRead(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(r)
	// nameLen=20 with a 3-byte name.
	res := r.Run(confirmedPDU(svcRead, 20, 'a', 'b', 'c'))
	if res.Outcome != sandbox.Crash || res.Fault.Kind != mem.SEGV {
		t.Fatalf("res = %v fault = %+v", res.Outcome, res.Fault)
	}
}

func TestSeededSEGVNamedList(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(r)
	// count=4 with a single 4-byte element.
	res := r.Run(confirmedPDU(svcDefineNamedList, 4, 0x30, 0, 0, 1))
	if res.Outcome != sandbox.Crash || res.Fault.Kind != mem.SEGV {
		t.Fatalf("res = %v fault = %+v", res.Outcome, res.Fault)
	}
}

func TestSeededHeapOverflowWrite(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(r)
	name := "Bilateral_Table_ID"
	rest := []byte{byte(len(name))}
	rest = append(rest, name...)
	value := make([]byte, 40) // > 32-byte server buffer
	rest = append(rest, byte(len(value)))
	rest = append(rest, value...)
	res := r.Run(confirmedPDU(svcWrite, rest...))
	if res.Outcome != sandbox.Crash || res.Fault.Kind != mem.HeapBufferOverflow {
		t.Fatalf("res = %v fault = %+v", res.Outcome, res.Fault)
	}
}

func TestFourDistinctFaultSites(t *testing.T) {
	// The four seeded bugs must dedup to four distinct sites with the
	// Table I kind split: 3 SEGV + 1 heap-buffer-overflow.
	segv, overflow := map[string]bool{}, map[string]bool{}
	crashers := [][]byte{
		dt(mmsPDU(tagInitiate, []byte{0x00, 0x01, 0x04, 0x00, 16, 'A'})),
		confirmedPDU(svcRead, 20, 'a'),
		confirmedPDU(svcDefineNamedList, 4, 0x30, 0, 0, 1),
	}
	name := "Bilateral_Table_ID"
	w := []byte{byte(len(name))}
	w = append(w, name...)
	w = append(w, 40)
	w = append(w, make([]byte, 40)...)
	crashers = append(crashers, confirmedPDU(svcWrite, w...))
	for _, pkt := range crashers {
		s := New()
		r := sandbox.NewRunner(s)
		associate(r)
		res := r.Run(pkt)
		if res.Outcome != sandbox.Crash {
			t.Fatalf("packet %x did not crash", pkt)
		}
		switch res.Fault.Kind {
		case mem.SEGV:
			segv[res.Fault.Site] = true
		case mem.HeapBufferOverflow:
			overflow[res.Fault.Site] = true
		default:
			t.Fatalf("unexpected kind %s", res.Fault.Kind)
		}
	}
	if len(segv) != 3 || len(overflow) != 1 {
		t.Fatalf("segv sites = %d overflow sites = %d", len(segv), len(overflow))
	}
}

func TestWriteValidPath(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(r)
	name := "DSConditions_Detect"
	rest := []byte{byte(len(name))}
	rest = append(rest, name...)
	rest = append(rest, 2, 0xAA, 0xBB)
	if res := r.Run(confirmedPDU(svcWrite, rest...)); res.Outcome != sandbox.OK {
		t.Fatalf("valid write crashed: %v", res.Fault)
	}
	v := s.TableValue(name)
	if len(v) != 2 || v[0] != 0xAA {
		t.Fatalf("table value = %x", v)
	}
}

func TestWriteUnknownVariable(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(r)
	rest := []byte{3, 'x', 'y', 'z', 1, 0x01}
	if res := r.Run(confirmedPDU(svcWrite, rest...)); res.Outcome != sandbox.OK {
		t.Fatalf("unknown-name write crashed: %v", res.Fault)
	}
}

func TestDefineTransferSetValid(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(r)
	res := r.Run(confirmedPDU(svcDefineNamedList, 2, 0x30, 0, 0, 1, 0x30, 0, 0, 2))
	if res.Outcome != sandbox.OK {
		t.Fatalf("valid transfer set crashed: %v", res.Fault)
	}
	if s.TransferSets() != 1 {
		t.Fatalf("transfer sets = %d", s.TransferSets())
	}
}

func TestGetNameListScopes(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	associate(r)
	for _, rest := range [][]byte{
		{0},
		{1, 4, 'I', 'C', 'C', '1'},
		{1, 3, 'x', 'y', 'z'},
		{9},
		{1, 9, 'a'}, // domain length beyond payload: checked path
	} {
		if res := r.Run(confirmedPDU(svcGetNameList, rest...)); res.Outcome != sandbox.OK {
			t.Fatalf("get-name-list %x crashed: %v", rest, res.Fault)
		}
	}
}

func TestMalformedFramingSafe(t *testing.T) {
	s := New()
	r := sandbox.NewRunner(s)
	r.Run(connect)
	for _, pkt := range [][]byte{
		nil,
		{0x03},
		{0x04, 0x00, 0x00, 0x07, 2, cotpDT, 0x80}, // bad TPKT version
		{0x03, 0x00, 0x00, 0x99, 2, cotpDT, 0x80}, // bad TPKT length
		tpkt([]byte{0}),                        // COTP header too short
		tpkt([]byte{99, cotpDT, 0x80}),         // COTP header beyond packet
		dt([]byte{}),                           // empty MMS
		dt([]byte{tagConfirmed}),               // tag without length
		dt(mmsPDU(tagConfirmed, []byte{0x00})), // confirmed too short
		dt(mmsPDU(0x55, []byte{1, 2, 3})),      // unknown tag
	} {
		if res := r.Run(pkt); res.Outcome != sandbox.OK {
			t.Fatalf("malformed packet crashed: %x -> %v", pkt, res.Fault)
		}
	}
}

func TestModelDefaultsReachDeepServices(t *testing.T) {
	// Replaying each model's default instance in order must reach the
	// associated state and exercise every service without crashing.
	s := New()
	r := sandbox.NewRunner(s)
	models := ICCPModels()
	for _, m := range models {
		if res := r.Run(m.Generate().Bytes()); res.Outcome == sandbox.Crash {
			t.Fatalf("default %s crashed: %v", m.Name, res.Fault)
		}
	}
	// The Conclude model tears the association down; re-initiating must
	// bring it back, confirming the default instances drive the state
	// machine end to end.
	r.Run(models[1].Generate().Bytes())
	if !s.Associated() {
		t.Fatal("default Initiate instance did not associate")
	}
}
