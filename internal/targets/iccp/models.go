package iccp

import "repro/internal/datamodel"

// Models returns the ICCP Pit-equivalent. Every data-transfer model stacks
// three size relations — TPKT total length, MMS PDU length, and the
// length-prefixed names inside services — giving File Fixup the layered
// constraints MMS-family protocols are known for. The name chunks share
// construction rules across the read/write/name-list models, so puzzles
// cracked from one service donate to the others (§III).
func (s *Server) Models() []*datamodel.Model {
	return ICCPModels()
}

// tpktCotpDT wraps an MMS PDU (tag + body) in COTP DT and TPKT framing.
func tpktCotpDT(name string, tag uint64, body ...*datamodel.Chunk) *datamodel.Model {
	return datamodel.NewModel(name,
		datamodel.Num("tpktVersion", 1, 0x03).AsToken(),
		datamodel.Num("tpktReserved", 1, 0x00).AsToken(),
		datamodel.Num("tpktLen", 2, 0).WithRel(datamodel.SizeOf, "rest", 4),
		datamodel.Blk("rest",
			datamodel.Num("cotpHdrLen", 1, 2),
			datamodel.Num("cotpType", 1, cotpDT).AsToken(),
			datamodel.Num("cotpFlags", 1, 0x80),
			datamodel.Blk("mms",
				datamodel.Num("tag", 1, tag).AsToken(),
				datamodel.Num("mmsLen", 1, 0).WithRel(datamodel.SizeOf, "mmsBody", 0),
				datamodel.Blk("mmsBody", body...),
			),
		),
	)
}

// ICCPModels builds the model set without a server instance.
func ICCPModels() []*datamodel.Model {
	return []*datamodel.Model{
		// COTP connection request: no MMS payload.
		datamodel.NewModel("COTPConnect",
			datamodel.Num("tpktVersion", 1, 0x03).AsToken(),
			datamodel.Num("tpktReserved", 1, 0x00).AsToken(),
			datamodel.Num("tpktLen", 2, 0).WithRel(datamodel.SizeOf, "rest", 4),
			datamodel.Blk("rest",
				datamodel.Num("cotpHdrLen", 1, 6),
				datamodel.Num("cotpType", 1, cotpCR).AsToken(),
				datamodel.Bytes("cotpParams", 5, []byte{0x00, 0x00, 0x00, 0x00, 0x00}),
			),
		),
		tpktCotpDT("Initiate", tagInitiate,
			datamodel.Num("version", 2, 1),
			datamodel.Num("maxPDU", 2, 1024),
			datamodel.Num("apLen", 1, 0).WithRel(datamodel.SizeOf, "apTitle", 0),
			datamodel.StrVar("apTitle", 1, 16, "ICCP-CLIENT"),
		),
		tpktCotpDT("Conclude", tagConclude,
			datamodel.Num("reason", 1, 0),
		),
		tpktCotpDT("GetNameListVMD", tagConfirmed,
			datamodel.Num("invokeId", 2, 1),
			datamodel.Num("service", 1, svcGetNameList).AsToken(),
			datamodel.Num("scope", 1, 0),
		),
		tpktCotpDT("GetNameListDomain", tagConfirmed,
			datamodel.Num("invokeId", 2, 2),
			datamodel.Num("service", 1, svcGetNameList).AsToken(),
			datamodel.Num("scope", 1, 1),
			datamodel.Num("domainLen", 1, 0).WithRel(datamodel.SizeOf, "domain", 0),
			datamodel.StrVar("domain", 1, 16, "ICC1"),
		),
		tpktCotpDT("ReadVariable", tagConfirmed,
			datamodel.Num("invokeId", 2, 3),
			datamodel.Num("service", 1, svcRead).AsToken(),
			datamodel.Num("nameLen", 1, 0).WithRel(datamodel.SizeOf, "itemName", 0),
			datamodel.StrVar("itemName", 1, 24, "Transfer_Set_Name"),
		),
		tpktCotpDT("WriteVariable", tagConfirmed,
			datamodel.Num("invokeId", 2, 4),
			datamodel.Num("service", 1, svcWrite).AsToken(),
			datamodel.Num("nameLen", 1, 0).WithRel(datamodel.SizeOf, "itemName", 0),
			datamodel.StrVar("itemName", 1, 24, "Bilateral_Table_ID"),
			datamodel.Num("valueLen", 1, 0).WithRel(datamodel.SizeOf, "value", 0),
			datamodel.BytesVar("value", 1, 48, []byte{0x01, 0x02}),
		),
		tpktCotpDT("NextTransferSet", tagConfirmed,
			datamodel.Num("invokeId", 2, 6),
			datamodel.Num("service", 1, svcNextTransferSet).AsToken(),
			datamodel.Num("scope", 1, 0),
		),
		tpktCotpDT("DeleteTransferSet", tagConfirmed,
			datamodel.Num("invokeId", 2, 7),
			datamodel.Num("service", 1, svcDeleteNamedList).AsToken(),
			datamodel.Num("index", 1, 0),
		),
		tpktCotpDT("ConclusionTimer", tagConfirmed,
			datamodel.Num("invokeId", 2, 8),
			datamodel.Num("service", 1, svcConclusionTimer).AsToken(),
			datamodel.Num("seconds", 2, 60),
		),
		tpktCotpDT("IdentifyPeer", tagConfirmed,
			datamodel.Num("invokeId", 2, 9),
			datamodel.Num("service", 1, svcIdentify).AsToken(),
		),
		tpktCotpDT("DefineTransferSet", tagConfirmed,
			datamodel.Num("invokeId", 2, 5),
			datamodel.Num("service", 1, svcDefineNamedList).AsToken(),
			datamodel.Num("count", 1, 0).WithRel(datamodel.CountOf, "elements", 0),
			datamodel.Rep("elements",
				datamodel.Blk("element",
					datamodel.Num("etag", 1, 0x30),
					datamodel.Num("eref", 3, 0x000001),
				), 8),
		),
	}
}
