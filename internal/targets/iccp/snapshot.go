package iccp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/checkpoint"
)

// This file is the ICCP/TASE.2 target's side of the campaign-checkpoint
// seam (sandbox.StateCheckpointer): the connection-stack flags, the
// simulated heap, the bilateral table (written in sorted name order so the
// encoding is canonical), and the transfer-set accounting.

// SnapshotState implements sandbox.StateCheckpointer.
func (s *Server) SnapshotState(w *checkpoint.Writer) {
	w.Bool(s.cotpConnected)
	w.Bool(s.associated)
	s.heap.Snapshot(w)
	w.Uvarint(uint64(s.valueBuf))
	names := make([]string, 0, len(s.table))
	for n := range s.table {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Int(len(names))
	for _, n := range names {
		w.String(n)
		w.Blob(s.table[n])
	}
	w.Int(s.transferSets)
	w.Uvarint(uint64(s.invokeID))
}

// RestoreState implements sandbox.StateCheckpointer.
func (s *Server) RestoreState(r *checkpoint.Reader) error {
	s.cotpConnected = r.Bool()
	s.associated = r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if err := s.heap.Restore(r); err != nil {
		return err
	}
	vb := r.Uvarint()
	if r.Err() == nil && vb > math.MaxUint32 {
		return fmt.Errorf("iccp: value buffer address %#x out of range", vb)
	}
	s.valueBuf = uint32(vb)
	n := r.Count()
	s.table = make(map[string][]byte, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		v := r.Blob()
		if r.Err() != nil {
			break
		}
		if _, dup := s.table[name]; dup {
			return fmt.Errorf("iccp: duplicate bilateral table entry %q", name)
		}
		s.table[name] = append([]byte(nil), v...)
	}
	s.transferSets = r.Int()
	iv := r.Uvarint()
	if r.Err() == nil && iv > 0xffff {
		return fmt.Errorf("iccp: invoke id %d out of range", iv)
	}
	s.invokeID = uint16(iv)
	return r.Err()
}
