// Package iccp reimplements the packet-processing core of libiec_iccp_mod
// (fcovatti's ICCP/TASE.2 stack) as an instrumented fuzzing target (paper
// §V-A, Fig. 4(e), Table I).
//
// ICCP (TASE.2) runs MMS services over the OSI stack; on the wire that is
// TPKT (RFC 1006) framing, a COTP transport PDU, and an MMS-style PDU. The
// server here implements the association lifecycle (COTP connect, MMS
// initiate, conclude) and the data services the library exposes (read,
// write, get-name-list, define-named-variable-list for transfer sets)
// against a small bilateral table.
//
// Seeded vulnerabilities (matching Table I's libiec_iccp_mod row — 3 SEGV
// and 1 heap-buffer-overflow):
//
//  1. SEGV: the initiate-request parser trusts the calling-AP-title length
//     octet and slices past the end of a truncated PDU.
//  2. SEGV: the read-service parser trusts the item-name length octet the
//     same way.
//  3. SEGV: the define-named-variable-list handler trusts the entry count
//     and walks off a short element list.
//  4. heap-buffer-overflow: the write service copies the attacker-supplied
//     value into a fixed 32-byte buffer with the attacker's length (the
//     strcpy idiom).
package iccp

import (
	"repro/internal/coverage"
	"repro/internal/mem"
	"repro/internal/targets"
)

// COTP PDU types.
const (
	cotpCR = 0xE0 // connection request
	cotpDT = 0xF0 // data transfer
	cotpDR = 0x80 // disconnect request
)

// MMS-style PDU tags (simplified BER outer tags, as the library's
// hand-rolled parser sees them).
const (
	tagInitiate  = 0xA8
	tagConfirmed = 0xA0
	tagConclude  = 0x8B
)

// MMS confirmed services handled.
const (
	svcGetNameList     = 0x02
	svcRead            = 0x04
	svcWrite           = 0x05
	svcDefineNamedList = 0x4D
)

// valueBufSize is the fixed server-side value buffer of the write service —
// the overflow target.
const valueBufSize = 32

// Server is the instrumented ICCP server core.
type Server struct {
	id []coverage.BlockID //peachstar:nosnap immutable block identity wired at construction

	cotpConnected bool
	associated    bool
	heap          *mem.Heap
	valueBuf      uint32

	// Bilateral table: the variables this ICCP node exposes.
	table map[string][]byte
	// Transfer sets defined by the peer.
	transferSets int
	invokeID     uint16
}

// New returns a fresh server with a small bilateral table.
func New() *Server {
	s := &Server{
		id:   coverage.Blocks("libiccp", 128),
		heap: mem.NewHeap(),
		table: map[string][]byte{
			"Transfer_Set_Name":   {0x00, 0x01},
			"DSConditions_Detect": {0x04},
			"Bilateral_Table_ID":  []byte("BLT1"),
			"Supported_Features":  {0x00, 0x12},
		},
	}
	s.valueBuf = s.heap.Alloc(valueBufSize)
	return s
}

// Name implements targets.Target.
func (s *Server) Name() string { return "libiccp" }

func (s *Server) hit(tr *coverage.Tracer, n int) { tr.Hit(s.id[n]) }

// Handle implements targets.Target: TPKT framing, COTP transport, MMS
// dispatch.
func (s *Server) Handle(tr *coverage.Tracer, pkt []byte) {
	s.hit(tr, 0)
	// --- TPKT ---
	if len(pkt) < 7 {
		s.hit(tr, 1)
		return
	}
	if pkt[0] != 0x03 || pkt[1] != 0x00 {
		s.hit(tr, 2)
		return
	}
	tpktLen := int(pkt[2])<<8 | int(pkt[3])
	if tpktLen != len(pkt) {
		s.hit(tr, 3)
		return
	}
	// --- COTP ---
	cotp := pkt[4:]
	hdrLen := int(cotp[0])
	if hdrLen < 2 || 1+hdrLen > len(cotp) {
		s.hit(tr, 4)
		return
	}
	pduType := cotp[1]
	payload := cotp[1+hdrLen:]
	switch pduType {
	case cotpCR:
		s.hit(tr, 5)
		s.cotpConnected = true
	case cotpDR:
		s.hit(tr, 6)
		s.cotpConnected = false
		s.associated = false
	case cotpDT:
		if !s.cotpConnected {
			s.hit(tr, 7)
			return
		}
		s.hit(tr, 8)
		s.mms(tr, payload)
	default:
		s.hit(tr, 9)
	}
}

// mms dispatches on the outer PDU tag.
func (s *Server) mms(tr *coverage.Tracer, pdu []byte) {
	if len(pdu) < 2 {
		s.hit(tr, 10)
		return
	}
	tag := pdu[0]
	length := int(pdu[1])
	if 2+length > len(pdu) {
		s.hit(tr, 11)
		return
	}
	body := pdu[2 : 2+length]
	switch tag {
	case tagInitiate:
		s.hit(tr, 12)
		s.initiate(tr, body)
	case tagConfirmed:
		if !s.associated {
			s.hit(tr, 13)
			return
		}
		s.hit(tr, 14)
		s.confirmed(tr, body)
	case tagConclude:
		s.hit(tr, 15)
		s.associated = false
	default:
		s.hit(tr, 16)
	}
}

// initiate parses the initiate-request: protocol version, max PDU size,
// then the length-prefixed calling AP title. The AP-title read is the first
// seeded SEGV.
func (s *Server) initiate(tr *coverage.Tracer, body []byte) {
	if len(body) < 5 {
		s.hit(tr, 17)
		return
	}
	version := int(body[0])<<8 | int(body[1])
	if version != 1 {
		s.hit(tr, 18)
		return
	}
	maxPDU := int(body[2])<<8 | int(body[3])
	if maxPDU < 64 {
		s.hit(tr, 19)
		return
	}
	apLen := int(body[4])
	// BUG(seeded, Table I libiec_iccp_mod SEGV #1): apLen is trusted; a
	// truncated PDU faults on the slice below.
	ap := body[5 : 5+apLen]
	if len(ap) == 0 {
		s.hit(tr, 20)
		return
	}
	s.hit(tr, 21)
	s.associated = true
}

// confirmed parses a confirmed-request: invoke id, service code, payload.
func (s *Server) confirmed(tr *coverage.Tracer, body []byte) {
	if len(body) < 3 {
		s.hit(tr, 22)
		return
	}
	s.invokeID = uint16(body[0])<<8 | uint16(body[1])
	svc := body[2]
	rest := body[3:]
	switch svc {
	case svcGetNameList:
		s.hit(tr, 23)
		s.getNameList(tr, rest)
	case svcRead:
		s.hit(tr, 24)
		s.read(tr, rest)
	case svcWrite:
		s.hit(tr, 25)
		s.write(tr, rest)
	case svcDefineNamedList:
		s.hit(tr, 26)
		s.defineNamedList(tr, rest)
	default:
		if !s.dispatchExtended(tr, svc, rest) {
			s.hit(tr, 27)
		}
	}
}

// getNameList serves the object-discovery service: scope 0 = VMD, 1 =
// domain-specific (expects a domain name).
func (s *Server) getNameList(tr *coverage.Tracer, rest []byte) {
	if len(rest) < 1 {
		s.hit(tr, 28)
		return
	}
	switch rest[0] {
	case 0:
		s.hit(tr, 29)
		for range s.table {
			s.hit(tr, 30)
		}
	case 1:
		if len(rest) < 2 {
			s.hit(tr, 31)
			return
		}
		dLen := int(rest[1])
		if 2+dLen > len(rest) {
			s.hit(tr, 32)
			return
		}
		domain := string(rest[2 : 2+dLen])
		if domain == "ICC1" {
			s.hit(tr, 33)
		} else {
			s.hit(tr, 34)
		}
	default:
		s.hit(tr, 35)
	}
}

// read serves the variable-read service: length-prefixed item name, looked
// up in the bilateral table. The name read is the second seeded SEGV.
func (s *Server) read(tr *coverage.Tracer, rest []byte) {
	if len(rest) < 1 {
		s.hit(tr, 36)
		return
	}
	nameLen := int(rest[0])
	// BUG(seeded, Table I libiec_iccp_mod SEGV #2): nameLen is trusted.
	name := string(rest[1 : 1+nameLen])
	if v, ok := s.table[name]; ok {
		s.hit(tr, 37)
		if len(v) > 1 {
			s.hit(tr, 38)
		}
	} else {
		s.hit(tr, 39)
	}
}

// write serves the variable-write service: length-prefixed name, one-octet
// value length, value bytes. The value copy is the seeded heap overflow.
func (s *Server) write(tr *coverage.Tracer, rest []byte) {
	if len(rest) < 2 {
		s.hit(tr, 40)
		return
	}
	nameLen := int(rest[0])
	if 1+nameLen+1 > len(rest) {
		s.hit(tr, 41)
		return
	}
	name := string(rest[1 : 1+nameLen])
	vLen := int(rest[1+nameLen])
	if 2+nameLen+vLen > len(rest) {
		s.hit(tr, 42)
		return
	}
	value := rest[2+nameLen : 2+nameLen+vLen]
	if _, ok := s.table[name]; !ok {
		s.hit(tr, 43)
		return
	}
	s.hit(tr, 44)
	// BUG(seeded, Table I libiec_iccp_mod heap-buffer-overflow): the
	// value is copied into the fixed 32-byte buffer with the supplied
	// length — the strcpy idiom of the original code.
	s.heap.StoreN(s.valueBuf, value, "iccp.write.value_copy")
	s.table[name] = append([]byte(nil), value...)
}

// defineNamedList creates a transfer set from a counted element list; each
// element is a 4-byte entry. The element loop is the third seeded SEGV.
func (s *Server) defineNamedList(tr *coverage.Tracer, rest []byte) {
	if len(rest) < 1 {
		s.hit(tr, 45)
		return
	}
	count := int(rest[0])
	if count == 0 {
		s.hit(tr, 46)
		return
	}
	elems := rest[1:]
	valid := 0
	for i := 0; i < count; i++ {
		// BUG(seeded, Table I libiec_iccp_mod SEGV #3): the count is
		// trusted over the actual element bytes.
		e := elems[4*i : 4*i+4]
		if e[0] == 0x30 {
			s.hit(tr, 47)
			valid++
		} else {
			s.hit(tr, 48)
		}
	}
	if valid > 0 {
		s.hit(tr, 49)
		s.transferSets++
	}
}

// Associated reports association state (tests use it).
func (s *Server) Associated() bool { return s.associated }

// TransferSets counts defined transfer sets (tests use it).
func (s *Server) TransferSets() int { return s.transferSets }

// TableValue returns a bilateral-table entry (tests use it).
func (s *Server) TableValue(name string) []byte { return s.table[name] }

func init() {
	targets.Register("libiccp", func() targets.Target { return New() })
}
