package iccp

import "repro/internal/coverage"

// Extended confirmed services: the TASE.2 conformance and transfer-set
// operations libiec_iccp_mod layers over plain MMS reads/writes. All
// extended paths are bounds-checked; the four Table I faults stay where
// iccp.go seeds them.
const (
	svcGetNamedListAttrs = 0x4C
	svcDeleteNamedList   = 0x4E
	svcNextTransferSet   = 0x60
	svcConclusionTimer   = 0x61
	svcIdentify          = 0x52
)

// dispatchExtended serves the extended confirmed services; returns false
// when the service code is not handled here.
func (s *Server) dispatchExtended(tr *coverage.Tracer, svc byte, rest []byte) bool {
	switch svc {
	case svcGetNamedListAttrs:
		s.hit(tr, 60)
		s.getNamedListAttrs(tr, rest)
	case svcDeleteNamedList:
		s.hit(tr, 61)
		s.deleteNamedList(tr, rest)
	case svcNextTransferSet:
		s.hit(tr, 62)
		s.nextTransferSet(tr, rest)
	case svcConclusionTimer:
		s.hit(tr, 63)
		s.conclusionTimer(tr, rest)
	case svcIdentify:
		s.hit(tr, 64)
		// Identify carries no parameters; respond with vendor info.
	default:
		return false
	}
	return true
}

// getNamedListAttrs reports a transfer set's element count.
func (s *Server) getNamedListAttrs(tr *coverage.Tracer, rest []byte) {
	if len(rest) < 1 {
		s.hit(tr, 65)
		return
	}
	idx := int(rest[0])
	if idx >= s.transferSets {
		s.hit(tr, 66)
		return
	}
	s.hit(tr, 67)
}

// deleteNamedList removes the most recent transfer set (the library keeps
// them in definition order).
func (s *Server) deleteNamedList(tr *coverage.Tracer, rest []byte) {
	if len(rest) < 1 {
		s.hit(tr, 68)
		return
	}
	if s.transferSets == 0 {
		s.hit(tr, 69)
		return
	}
	idx := int(rest[0])
	if idx >= s.transferSets {
		s.hit(tr, 70)
		return
	}
	s.hit(tr, 71)
	s.transferSets--
}

// nextTransferSet hands out the next free transfer-set name — the TASE.2
// Next_DSTransfer_Set negotiation.
func (s *Server) nextTransferSet(tr *coverage.Tracer, rest []byte) {
	if s.transferSets >= 8 {
		s.hit(tr, 72) // pool exhausted
		return
	}
	if len(rest) >= 1 && rest[0] > 0 {
		s.hit(tr, 73) // scoped request
		return
	}
	s.hit(tr, 74)
}

// conclusionTimer arms the association inactivity timer: a 16-bit seconds
// value, bounded like the library's configuration.
func (s *Server) conclusionTimer(tr *coverage.Tracer, rest []byte) {
	if len(rest) < 2 {
		s.hit(tr, 75)
		return
	}
	secs := uint16(rest[0])<<8 | uint16(rest[1])
	switch {
	case secs == 0:
		s.hit(tr, 76) // disable
	case secs > 3600:
		s.hit(tr, 77) // clamped
	default:
		s.hit(tr, 78)
	}
}
