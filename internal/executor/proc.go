package executor

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/internal/backoff"
	"repro/internal/coverage"
	"repro/internal/mem"
	"repro/internal/sandbox"
)

// Defaults for ProcConfig's zero values.
const (
	// DefaultExecTimeout is the per-execution watchdog: how long one
	// send+receive round may take before the target is classified as
	// hung and its process group is killed.
	DefaultExecTimeout = 200 * time.Millisecond
	// DefaultSpawnTimeout bounds the liveness probe: how long a freshly
	// spawned target has to start accepting connections.
	DefaultSpawnTimeout = 10 * time.Second
	// DefaultSpawnRetries is how many times one Run will respawn a target
	// that dies or never answers its liveness probe before giving the
	// campaign up as unrecoverable.
	DefaultSpawnRetries = 3
	// DefaultMaxJournal caps the reproducer journal. When a target has
	// processed this many packets since its last restart, the executor
	// restarts it preventively: the journal re-anchors at a fresh process
	// state, so every captured reproducer both stays bounded and replays
	// from a clean start.
	DefaultMaxJournal = 512
)

// responseCap bounds how many response bytes feed the coverage tracer per
// execution. Edge chaining makes consecutive byte pairs distinct edges, so
// a prefix this long already separates response shapes; hashing a server's
// entire bulk reply would only slow the loop.
const responseCap = 64

// ProcConfig parameterizes a supervised target process.
type ProcConfig struct {
	// Cmd is the target's argv. The literal substring "{addr}" in any
	// argument is replaced with Addr, so one flag spells both where the
	// server listens and where the executor connects.
	Cmd []string
	// Addr is the host:port the target serves on.
	Addr string
	// Net is the transport: "tcp" (default) or "udp". UDP targets get no
	// connect-probe (datagram sockets always "connect") and one silent
	// resend before a read timeout is classified as a hang, since a lost
	// datagram is indistinguishable from a stalled server.
	Net string
	// ExecTimeout is the per-execution watchdog (0 = DefaultExecTimeout).
	ExecTimeout time.Duration
	// SpawnTimeout bounds the post-spawn liveness probe
	// (0 = DefaultSpawnTimeout).
	SpawnTimeout time.Duration
	// SpawnRetries is the respawn budget per Run (0 = DefaultSpawnRetries).
	SpawnRetries int
	// MaxJournal caps the reproducer journal; reaching it triggers a
	// preventive restart (0 = DefaultMaxJournal).
	MaxJournal int
	// Seed seeds the connect-retry backoff's jitter stream; campaigns
	// should split it from their seed so retry timing never perturbs the
	// fuzzing streams.
	Seed uint64
	// Stderr, when non-nil, receives the target's stderr (crash banners);
	// nil discards it.
	Stderr *os.File
	// Logf receives supervisor lifecycle messages (nil = no logging).
	Logf func(format string, args ...any)
}

// Proc is the real-target execution backend: it owns one target process
// and one connection to it, and implements the full supervision loop —
// spawn, liveness probe with capped exponential backoff, per-exec write
// and read deadlines, crash detection from connection resets and exit
// statuses, a watchdog that classifies unresponsive targets as hangs and
// kills the process group, automatic restart with campaign state
// preserved, and a packet journal that makes every crash a replayable
// reproducer.
//
// Coverage: a separate process exposes no instrumentation map, so the
// tracer is fed from the target's observable behavior — each response's
// leading bytes and length bucket light blocks whose edge chaining
// distinguishes response shapes. Coarser than in-process edge coverage,
// but it gives the engine's feedback loop real signal: inputs that elicit
// new response shapes are retained and cracked.
type Proc struct {
	cfg    ProcConfig
	tracer *coverage.Tracer
	blocks []coverage.BlockID
	bk     *backoff.Policy

	cmd       *exec.Cmd
	waitCh    chan *os.ProcessState
	procState *os.ProcessState // cached once reaped
	conn      net.Conn
	journal   [][]byte
	buf       []byte

	// Session-boundary tracking (BeginSession). starts holds the journal
	// indices where a session began; sessStart is the current session's
	// start; sessions latches once BeginSession has ever been called, and
	// gates the session-only behaviors (boundary-aligned preventive
	// restarts, prefix re-establishment after a survived drop) so
	// sequence-blind campaigns keep their exact prior semantics.
	starts    []int
	sessStart int
	sessions  bool

	restarts int // process (re)spawns after the first
	drops    int // connection drops survived without a restart
	spawned  bool
	closed   bool
	broken   error // sticky unrecoverable-backend error
}

// Block-space layout inside the "proc-response" region: 256 byte-value
// blocks, 16 response-length buckets, and two outcome markers.
const (
	blkLenBase = 256
	blkDrop    = 272
	blkEmpty   = 273
	blkCount   = 274
)

// NewProc validates the configuration and prepares a supervisor. Nothing
// is spawned until the first Run.
func NewProc(cfg ProcConfig) (*Proc, error) {
	if len(cfg.Cmd) == 0 {
		return nil, fmt.Errorf("executor: ProcConfig.Cmd is required")
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("executor: ProcConfig.Addr is required")
	}
	switch cfg.Net {
	case "":
		cfg.Net = "tcp"
	case "tcp", "udp":
	default:
		return nil, fmt.Errorf("executor: ProcConfig.Net %q (want tcp or udp)", cfg.Net)
	}
	if cfg.ExecTimeout <= 0 {
		cfg.ExecTimeout = DefaultExecTimeout
	}
	if cfg.SpawnTimeout <= 0 {
		cfg.SpawnTimeout = DefaultSpawnTimeout
	}
	if cfg.SpawnRetries <= 0 {
		cfg.SpawnRetries = DefaultSpawnRetries
	}
	if cfg.MaxJournal <= 0 {
		cfg.MaxJournal = DefaultMaxJournal
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Proc{
		cfg:    cfg,
		tracer: coverage.NewTracer(),
		blocks: coverage.Blocks("proc-response", blkCount),
		bk:     backoff.New(cfg.Seed),
		buf:    make([]byte, 4096),
	}, nil
}

// Tracer exposes the response-coverage tracer of the most recent Run.
func (p *Proc) Tracer() *coverage.Tracer { return p.tracer }

// Restarts returns how many times the target process has been respawned
// after its initial start — crash recoveries, hang kills, and preventive
// journal-cap restarts combined.
func (p *Proc) Restarts() int { return p.restarts }

// Drops returns how many connection drops were survived by reconnecting to
// the still-live process (a server closing a connection it dislikes is not
// a crash).
func (p *Proc) Drops() int { return p.drops }

// Pid returns the live target's process ID, or 0 when no process is up —
// the hook chaos tests use to kill the target out from under the campaign.
func (p *Proc) Pid() int {
	if p.cmd == nil || p.cmd.Process == nil {
		return 0
	}
	if _, dead := p.exited(); dead {
		return 0
	}
	return p.cmd.Process.Pid
}

// Run executes one packet against the supervised process: ensure a live
// target (spawning or restarting as needed), journal the packet, send it
// under a write deadline, await the response under the watchdog deadline,
// and classify the outcome. Crash and hang results carry the journal as a
// replayable reproducer; the error return is reserved for an
// unrecoverable backend (spawn retries exhausted, executor closed).
func (p *Proc) Run(packet []byte) (sandbox.Result, error) {
	p.tracer.Reset()
	if p.closed {
		return sandbox.Result{}, fmt.Errorf("executor: Run after Close")
	}
	if p.broken != nil {
		return sandbox.Result{}, p.broken
	}
	if !p.sessions && len(p.journal) >= p.cfg.MaxJournal {
		// Preventive restart: re-anchor the journal at a fresh process so
		// reproducers stay bounded and replay from a clean start. With
		// sessions this happens in BeginSession instead, so a restart can
		// never sever an in-flight handshake prefix.
		p.stopTarget()
	}
	if err := p.ensureTarget(); err != nil {
		p.broken = err
		return sandbox.Result{}, err
	}
	p.journal = append(p.journal, append([]byte(nil), packet...))
	res := p.exchange(packet)
	res.PathSig = p.tracer.PathHash()
	return res, nil
}

// BeginSession marks a protocol-session boundary: the connection is
// dropped so the server's per-connection session state (activation
// flags, sequence numbers) resets, and the boundary is recorded in the
// reproducer journal. The next Run reconnects to the still-live process
// — boundaries do not cost a respawn. Preventive journal-cap restarts
// happen here, at the boundary, where they cannot sever a handshake
// prefix mid-sequence.
func (p *Proc) BeginSession() error {
	if p.closed {
		return fmt.Errorf("executor: BeginSession after Close")
	}
	if p.broken != nil {
		return p.broken
	}
	p.sessions = true
	if len(p.journal) >= p.cfg.MaxJournal {
		p.stopTarget()
	}
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.sessStart = len(p.journal)
	if n := len(p.starts); n == 0 || p.starts[n-1] != p.sessStart {
		p.starts = append(p.starts, p.sessStart)
	}
	return nil
}

// Close kills the target's process group and releases the connection.
func (p *Proc) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	p.stopTarget()
	return nil
}

// ensureTarget makes sure a live, connected target exists, spawning (and
// respawning, up to the retry budget) as needed. When the process is
// still alive and only the connection is down — the normal state after a
// BeginSession boundary — it reconnects instead of respawning, since a
// second spawn would race the live process for the listen address.
func (p *Proc) ensureTarget() error {
	if p.conn != nil {
		return nil
	}
	if p.cmd != nil {
		if _, dead := p.exited(); !dead {
			if err := p.connectProbeShort(); err == nil {
				return nil
			}
		}
		p.stopTarget()
	}
	var lastErr error
	for attempt := 0; attempt < p.cfg.SpawnRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(p.bk.Delay(50*time.Millisecond, time.Second, attempt-1))
		}
		if err := p.startProcess(); err != nil {
			lastErr = err
			continue
		}
		if err := p.connectProbe(); err != nil {
			p.stopTarget()
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("executor: target unrecoverable after %d spawn attempts: %w",
		p.cfg.SpawnRetries, lastErr)
}

// startProcess spawns the target in its own process group (so the watchdog
// can kill the whole tree) and resets the reproducer journal — every
// journal is anchored at a fresh process start.
func (p *Proc) startProcess() error {
	args := make([]string, len(p.cfg.Cmd))
	for i, a := range p.cfg.Cmd {
		args[i] = strings.ReplaceAll(a, "{addr}", p.cfg.Addr)
	}
	cmd := exec.Command(args[0], args[1:]...)
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if p.cfg.Stderr != nil {
		cmd.Stderr = p.cfg.Stderr
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("executor: spawn %q: %w", args[0], err)
	}
	if p.spawned {
		p.restarts++
	}
	p.spawned = true
	p.cmd = cmd
	p.procState = nil
	p.journal = p.journal[:0]
	// The journal re-anchors at the fresh process; if a session is in
	// flight its boundary re-anchors with it.
	p.starts = p.starts[:0]
	p.sessStart = 0
	if p.sessions {
		p.starts = append(p.starts, 0)
	}
	waitCh := make(chan *os.ProcessState, 1)
	go func() {
		cmd.Wait()
		waitCh <- cmd.ProcessState
	}()
	p.waitCh = waitCh
	p.cfg.Logf("executor: spawned %q (pid %d)", args[0], cmd.Process.Pid)
	return nil
}

// connectProbe establishes the connection to a freshly spawned target:
// connect-retry with capped exponential backoff and jitter until the
// server accepts, the process dies, or the spawn timeout expires.
func (p *Proc) connectProbe() error {
	deadline := time.Now().Add(p.cfg.SpawnTimeout)
	for attempt := 0; ; attempt++ {
		if st, dead := p.exited(); dead {
			return fmt.Errorf("executor: target died during liveness probe: %s", exitDesc(st))
		}
		c, err := net.DialTimeout(p.cfg.Net, p.cfg.Addr, 250*time.Millisecond)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			p.conn = c
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("executor: liveness probe timed out after %v: %w", p.cfg.SpawnTimeout, err)
		}
		time.Sleep(p.bk.Delay(5*time.Millisecond, 250*time.Millisecond, attempt))
	}
}

// exchange performs one send+receive round and classifies the outcome.
func (p *Proc) exchange(packet []byte) sandbox.Result {
	deadline := time.Now().Add(p.cfg.ExecTimeout)
	p.conn.SetWriteDeadline(deadline)
	if _, err := p.conn.Write(packet); err != nil {
		if isTimeout(err) {
			// The target stopped draining its socket: hung.
			return p.hangResult()
		}
		return p.connFailure(err, packet)
	}
	p.conn.SetReadDeadline(deadline)
	n, err := p.conn.Read(p.buf)
	if err == nil {
		p.observe(p.buf[:n])
		return sandbox.Result{Outcome: sandbox.OK}
	}
	if isTimeout(err) {
		if p.cfg.Net == "udp" {
			// One silent resend: a lost datagram is not a hang.
			p.conn.SetWriteDeadline(time.Now().Add(p.cfg.ExecTimeout))
			p.conn.Write(packet)
			p.conn.SetReadDeadline(time.Now().Add(p.cfg.ExecTimeout))
			if n, rerr := p.conn.Read(p.buf); rerr == nil {
				p.observe(p.buf[:n])
				return sandbox.Result{Outcome: sandbox.OK}
			}
		}
		if st, dead := p.exited(); dead {
			// Silent death: the process went away without a reset.
			return p.crashResult(st)
		}
		return p.hangResult()
	}
	return p.connFailure(err, packet)
}

// connFailure handles a broken connection: if the process died, that is a
// crash; if it is still alive, the drop is survived by reconnecting (a
// server may legitimately shed a connection it dislikes), and only an
// unreachable-but-alive target is handed to the watchdog as a hang. The
// reconnect is tried before waiting out any exit grace: servers that shed
// connections on malformed input do it constantly, and the fast path must
// cost one dial, not a death-grace per drop.
func (p *Proc) connFailure(cause error, packet []byte) sandbox.Result {
	if st, dead := p.exited(); dead {
		return p.crashResult(st)
	}
	p.conn.Close()
	p.conn = nil
	if p.cfg.Net != "tcp" {
		// A UDP "dial" succeeds unconditionally, so the reconnect probe
		// can never distinguish a shed socket from a dead target — the
		// exit grace is the only discriminator. An alive target (e.g. an
		// ICMP-refused send racing the server's bind at startup) gets its
		// socket re-established and the error absorbed as a drop.
		if st, dead := p.exitedWithin(300 * time.Millisecond); dead {
			return p.crashResult(st)
		}
		if err := p.connectProbeShort(); err == nil {
			p.drops++
			p.cfg.Logf("executor: survived connection drop (%v); reconnected", cause)
			p.tracer.Hit(p.blocks[blkDrop])
			return sandbox.Result{Outcome: sandbox.OK}
		}
		return p.hangResult()
	}
	if err := p.connectProbeShort(); err == nil {
		// The reconnect can land in the teardown window where a dying
		// process's listen socket still accepts, so give the exit status a
		// short moment to surface before trusting the new connection. (If
		// the reap outruns even this, the next exchange's error finds
		// exited() true and classifies the crash one execution late.)
		if st, dead := p.exitedWithin(5 * time.Millisecond); dead {
			return p.crashResult(st)
		}
		p.drops++
		p.cfg.Logf("executor: survived connection drop (%v); reconnected", cause)
		p.tracer.Hit(p.blocks[blkDrop])
		if p.sessions {
			// The fresh connection lost the server's per-connection
			// session state; walk it back to where the sequence was.
			p.reestablish()
		}
		return sandbox.Result{Outcome: sandbox.OK}
	}
	// Unreachable: a reset usually races the supervisor's view of the
	// death by a scheduler tick, so afford the exit status a grace to
	// appear before declaring the target hung.
	if st, dead := p.exitedWithin(300 * time.Millisecond); dead {
		return p.crashResult(st)
	}
	return p.hangResult()
}

// connectProbeShort is the drop-recovery probe: a few quick attempts, not
// the full spawn budget — a healthy server re-accepts immediately.
func (p *Proc) connectProbeShort() error {
	for attempt := 0; attempt < 4; attempt++ {
		c, err := net.DialTimeout(p.cfg.Net, p.cfg.Addr, 250*time.Millisecond)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			p.conn = c
			return nil
		}
		time.Sleep(p.bk.Delay(2*time.Millisecond, 50*time.Millisecond, attempt))
	}
	return fmt.Errorf("executor: target alive but unreachable")
}

// reestablish replays the current session's already-journaled packets
// (everything since the last BeginSession boundary, except the in-flight
// packet whose drop was just survived) down the freshly reconnected
// connection, driving a server that keeps session state per connection —
// activation flags, sequence numbers — back to the state the sequence
// believes it is in. Responses are drained but not observed: the
// execution's coverage stays the drop marker, not a replayed echo.
// Best-effort: a failure just leaves the session shallower than
// intended, which the engine's coverage feedback absorbs.
func (p *Proc) reestablish() {
	end := len(p.journal) - 1
	if end <= p.sessStart {
		return
	}
	prefix := p.journal[p.sessStart:end]
	deadline := time.Now().Add(p.cfg.ExecTimeout)
	for _, pkt := range prefix {
		p.conn.SetWriteDeadline(deadline)
		if _, err := p.conn.Write(pkt); err != nil {
			return
		}
		p.conn.SetReadDeadline(deadline)
		if _, err := p.conn.Read(p.buf); err != nil {
			return
		}
	}
	p.cfg.Logf("executor: re-established %d-packet session prefix after drop", len(prefix))
}

// crashResult classifies a dead target from its exit status and packages
// the reproducer. The next Run respawns.
func (p *Proc) crashResult(st *os.ProcessState) sandbox.Result {
	repro, starts := p.takeJournal()
	p.stopTarget()
	p.cfg.Logf("executor: target crashed (%s); %d-packet reproducer captured", exitDesc(st), len(repro))
	return sandbox.Result{
		Outcome:     sandbox.Crash,
		Fault:       classifyExit(st),
		Repro:       repro,
		ReproStarts: starts,
	}
}

// hangResult is the watchdog firing: the target is unresponsive, so its
// whole process group is killed and the hang is reported with the watchdog
// budget (in milliseconds) and the reproducer journal. The next Run
// respawns.
func (p *Proc) hangResult() sandbox.Result {
	repro, starts := p.takeJournal()
	p.stopTarget()
	p.cfg.Logf("executor: watchdog fired after %v; process group killed", p.cfg.ExecTimeout)
	return sandbox.Result{
		Outcome:     sandbox.Hang,
		HangSteps:   int(p.cfg.ExecTimeout / time.Millisecond),
		Repro:       repro,
		ReproStarts: starts,
	}
}

// takeJournal detaches the reproducer journal and its session boundaries
// (ownership moves to the result; the next spawn starts fresh ones).
func (p *Proc) takeJournal() ([][]byte, []int) {
	j, s := p.journal, p.starts
	p.journal, p.starts = nil, nil
	p.sessStart = 0
	return j, s
}

// observe feeds one response into the coverage tracer: a length bucket
// plus the leading bytes, whose edge chaining separates response shapes.
func (p *Proc) observe(resp []byte) {
	if len(resp) == 0 {
		p.tracer.Hit(p.blocks[blkEmpty])
		return
	}
	p.tracer.Hit(p.blocks[blkLenBase+lenBucket(len(resp))])
	n := len(resp)
	if n > responseCap {
		n = responseCap
	}
	for _, b := range resp[:n] {
		p.tracer.Hit(p.blocks[b])
	}
}

// lenBucket maps a response length to one of 16 buckets (0, 1, 2, 3, 4-5,
// 6-7, 8-11, ... power-of-two-ish growth).
func lenBucket(n int) int {
	b := 0
	for n > 1 && b < 15 {
		n >>= 1
		b++
	}
	return b
}

// exited non-blockingly reports whether the target process has exited,
// caching the reaped state.
func (p *Proc) exited() (*os.ProcessState, bool) {
	if p.procState != nil {
		return p.procState, true
	}
	if p.waitCh == nil {
		return nil, true // never spawned
	}
	select {
	case st := <-p.waitCh:
		p.procState = st
		return st, true
	default:
		return nil, false
	}
}

// exitedWithin waits up to grace for the target to exit — a connection
// reset usually races the supervisor's view of the death by a scheduler
// tick, so the classifier affords the exit status a moment to appear.
func (p *Proc) exitedWithin(grace time.Duration) (*os.ProcessState, bool) {
	if p.procState != nil {
		return p.procState, true
	}
	if p.waitCh == nil {
		return nil, true
	}
	select {
	case st := <-p.waitCh:
		p.procState = st
		return st, true
	case <-time.After(grace):
		return nil, false
	}
}

// stopTarget tears the target down: SIGKILL to the whole process group,
// reap the exit status, close the connection. Safe to call in any state.
func (p *Proc) stopTarget() {
	if p.cmd != nil && p.cmd.Process != nil && p.procState == nil {
		pid := p.cmd.Process.Pid
		// The spawn put the target in its own group with pgid == pid, so
		// the negative pid addresses everything it forked too.
		syscall.Kill(-pid, syscall.SIGKILL)
		p.cmd.Process.Kill()
		select {
		case st := <-p.waitCh:
			p.procState = st
		case <-time.After(2 * time.Second):
			// Unreapable (kernel limbo); abandon the wait goroutine.
		}
	}
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	p.cmd = nil
	p.waitCh = nil
	p.procState = nil
	p.journal = p.journal[:0]
	p.starts = p.starts[:0]
	p.sessStart = 0
}

// classifyExit turns an exit status into the fault identity that keys the
// crash bank: distinct induced crashes get distinct, stable signatures, so
// a reproducer replay lands on the same record.
func classifyExit(st *os.ProcessState) *mem.Fault {
	if st == nil {
		return &mem.Fault{Kind: mem.ConnReset, Site: "conn:reset-no-exit"}
	}
	if ws, ok := st.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
		sig := ws.Signal()
		kind := mem.ProcSignal
		if sig == syscall.SIGSEGV || sig == syscall.SIGBUS {
			// Signal deaths in the SEGV class keep the paper's Table I
			// fault kind, so in-process and real-process campaigns triage
			// the same way.
			kind = mem.SEGV
		}
		return &mem.Fault{Kind: kind, Site: "signal:" + sig.String()}
	}
	return &mem.Fault{Kind: mem.ProcExit, Site: fmt.Sprintf("exit:%d", st.ExitCode())}
}

// exitDesc renders an exit status for log lines.
func exitDesc(st *os.ProcessState) string {
	if st == nil {
		return "no exit status"
	}
	return st.String()
}

// isTimeout reports whether a network error is a deadline expiry.
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// Replay drives a fresh instance of the configured target through the
// packet sequence — a captured reproducer — and returns the result of the
// packet that terminated the replay (the first crash or hang), or an OK
// result if the target survived the whole sequence. The target instance
// is private to the call; the configured Addr must be free (replay after
// closing the capturing executor, or configure a different port).
func Replay(cfg ProcConfig, seq [][]byte) (sandbox.Result, error) {
	return ReplaySession(cfg, seq, nil)
}

// ReplaySession is Replay honoring recorded session boundaries
// (crash.Record.SeqStarts): at each boundary index the replay calls
// BeginSession, re-running the session's handshake steps against fresh
// per-connection server state — activation flags and sequence numbers
// regenerate on the server exactly as they did during capture — instead
// of pushing every packet byte-blind down one long-lived connection.
func ReplaySession(cfg ProcConfig, seq [][]byte, starts []int) (sandbox.Result, error) {
	p, err := NewProc(cfg)
	if err != nil {
		return sandbox.Result{}, err
	}
	defer p.Close()
	si := 0
	for i, pkt := range seq {
		if si < len(starts) && starts[si] <= i {
			if err := p.BeginSession(); err != nil {
				return sandbox.Result{}, err
			}
			for si < len(starts) && starts[si] <= i {
				si++
			}
		}
		res, err := p.Run(pkt)
		if err != nil {
			return sandbox.Result{}, err
		}
		if res.Outcome != sandbox.OK {
			return res, nil
		}
	}
	return sandbox.Result{Outcome: sandbox.OK}, nil
}
