package executor

import (
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/sandbox"
)

// These tests drive the toy stateful IEC-104-style server
// (examples/stateful/server) through the session-aware supervision
// machinery: BeginSession boundaries, mid-sequence connection drops with
// prefix re-establishment, and boundary-honoring reproducer replay.

func statefulConfig(t *testing.T) ProcConfig {
	return ProcConfig{
		Cmd:         []string{statefulBin, "-listen", "{addr}"},
		Addr:        freeAddr(t),
		ExecTimeout: 150 * time.Millisecond,
		Seed:        7,
	}
}

// Crafted packets against the stateful server's protocol.
func iFrame104(ns byte, typeID byte) []byte {
	asdu := []byte{typeID, 0x01, 0x06, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00}
	body := append([]byte{ns << 1, 0x00, 0x00, 0x00}, asdu...)
	return append([]byte{0x68, byte(len(body))}, body...)
}

var (
	pktStartDT = []byte{0x68, 0x04, 0x07, 0x00, 0x00, 0x00}
	pktI0      = iFrame104(0, 0x01)
	pktI1      = iFrame104(1, 0x01)
	pktDrop    = iFrame104(9, 0xfe) // one-shot injected connection drop
	pktCmd     = iFrame104(2, 0x2d) // planted fault after 2 accepted I-frames
)

// TestSessionProcDeepFault: the planted fault needs the whole stateful
// prefix — STARTDT, two correctly-sequenced I-frames — on one session,
// and the captured reproducer carries the session boundary.
func TestSessionProcDeepFault(t *testing.T) {
	p, err := NewProc(statefulConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.BeginSession(); err != nil {
		t.Fatal(err)
	}
	for _, pkt := range [][]byte{pktStartDT, pktI0, pktI1} {
		if res := mustRun(t, p, pkt); res.Outcome != sandbox.OK {
			t.Fatalf("prefix outcome = %v, want OK", res.Outcome)
		}
	}
	res := mustRun(t, p, pktCmd)
	if res.Outcome != sandbox.Crash {
		t.Fatalf("outcome = %v, want Crash", res.Outcome)
	}
	if res.Fault.Kind != mem.ProcExit || res.Fault.Site != "exit:3" {
		t.Fatalf("fault = %+v, want exit:3", res.Fault)
	}
	if len(res.Repro) != 4 {
		t.Fatalf("reproducer has %d packets, want 4", len(res.Repro))
	}
	if len(res.ReproStarts) != 1 || res.ReproStarts[0] != 0 {
		t.Fatalf("ReproStarts = %v, want [0]", res.ReproStarts)
	}
}

// TestSessionBoundaryResetsServerState: a BeginSession boundary drops the
// connection, so the server's activation state resets — the same command
// that crashes inside one session is inert when the prefix and trigger
// are separated by a boundary. No respawn is paid for the boundary.
func TestSessionBoundaryResetsServerState(t *testing.T) {
	p, err := NewProc(statefulConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.BeginSession(); err != nil {
		t.Fatal(err)
	}
	for _, pkt := range [][]byte{pktStartDT, pktI0, pktI1} {
		mustRun(t, p, pkt)
	}
	if err := p.BeginSession(); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, p, pktCmd)
	if res.Outcome != sandbox.OK {
		t.Fatalf("post-boundary command = %v, want OK (fresh session state)", res.Outcome)
	}
	if p.Restarts() != 0 {
		t.Fatalf("Restarts = %d, want 0 — a session boundary is not a respawn", p.Restarts())
	}
}

// TestSessionDropReestablishesPrefix is the fault-injection satellite:
// the server kills the connection mid-sequence (one-shot trigger); the
// executor must survive the drop, re-establish the session prefix on the
// fresh connection, and the eventual reproducer must replay — boundaries
// honored — to the matching crash signature.
func TestSessionDropReestablishesPrefix(t *testing.T) {
	p, err := NewProc(statefulConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.BeginSession(); err != nil {
		t.Fatal(err)
	}
	mustRun(t, p, pktStartDT)
	mustRun(t, p, pktI0)
	// Injected drop: the server closes the connection without dying.
	if res := mustRun(t, p, pktDrop); res.Outcome != sandbox.OK {
		t.Fatalf("drop outcome = %v, want OK (survived)", res.Outcome)
	}
	if p.Drops() != 1 || p.Restarts() != 0 {
		t.Fatalf("Drops = %d Restarts = %d, want 1/0", p.Drops(), p.Restarts())
	}
	// Only a re-established prefix (STARTDT + I0 replayed on the fresh
	// connection) lets the rest of the sequence stay in step: I1 must be
	// accepted (server vr back at 1) for the command to fire the fault.
	mustRun(t, p, pktI1)
	res := mustRun(t, p, pktCmd)
	if res.Outcome != sandbox.Crash || res.Fault.Site != "exit:3" {
		t.Fatalf("post-drop sequence did not reach the fault: %+v", res)
	}
	if len(res.Repro) != 5 {
		t.Fatalf("reproducer has %d packets, want 5", len(res.Repro))
	}
	repro, starts := res.Repro, res.ReproStarts
	p.Close() // free the port for the replay instance

	// Boundary-honoring replay against a fresh process: the one-shot drop
	// re-arms, the prefix re-establishes again, the signature matches.
	rep, err := ReplaySession(statefulConfig(t), repro, starts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != sandbox.Crash {
		t.Fatalf("replay outcome = %v, want Crash", rep.Outcome)
	}
	if rep.Fault.Kind != res.Fault.Kind || rep.Fault.Site != res.Fault.Site {
		t.Fatalf("replay fault %s@%s != original %s@%s",
			rep.Fault.Kind, rep.Fault.Site, res.Fault.Kind, res.Fault.Site)
	}
}

// TestSessionReplayBoundaries: a reproducer whose sessions were separated
// by a boundary only reproduces when the boundary is honored — replaying
// the same packets down one connection reaches a different (crashing!)
// state, which is exactly the byte-blind-replay bug the boundary fixes.
func TestSessionReplayBoundaries(t *testing.T) {
	// Captured shape: [STARTDT I0 I1] boundary [CMD]. With the boundary,
	// CMD lands on a fresh session and the target survives.
	seq := [][]byte{pktStartDT, pktI0, pktI1, pktCmd}
	rep, err := ReplaySession(statefulConfig(t), seq, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != sandbox.OK {
		t.Fatalf("boundary-honoring replay = %v, want OK", rep.Outcome)
	}
	// Byte-blind (boundary-free) replay of the same packets crashes: the
	// session state wrongly carries over.
	rep, err = ReplaySession(statefulConfig(t), seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != sandbox.Crash {
		t.Fatalf("byte-blind replay = %v, want Crash (state carried over)", rep.Outcome)
	}
}

// TestSessionJournalCapAtBoundary: with sessions on, preventive restarts
// happen only at BeginSession, so a journal longer than the cap is never
// severed mid-sequence.
func TestSessionJournalCapAtBoundary(t *testing.T) {
	cfg := statefulConfig(t)
	cfg.MaxJournal = 4
	p, err := NewProc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.BeginSession(); err != nil {
		t.Fatal(err)
	}
	// 6 packets on one session: exceeds the cap, must not restart.
	for i := 0; i < 6; i++ {
		if res := mustRun(t, p, pktStartDT); res.Outcome != sandbox.OK {
			t.Fatalf("exec %d: %v", i, res.Outcome)
		}
	}
	if p.Restarts() != 0 {
		t.Fatalf("Restarts = %d mid-sequence, want 0", p.Restarts())
	}
	// The next boundary pays the preventive restart and re-anchors.
	if err := p.BeginSession(); err != nil {
		t.Fatal(err)
	}
	if res := mustRun(t, p, pktStartDT); res.Outcome != sandbox.OK {
		t.Fatalf("post-boundary exec: %v", res.Outcome)
	}
	if p.Restarts() != 1 {
		t.Fatalf("Restarts = %d after boundary, want 1", p.Restarts())
	}
}
