// Package executor defines the pluggable execution backend behind the
// fuzzing engine: the one seam through which a generated packet becomes an
// observed outcome.
//
// The paper's fuzzer supervises a *separate instrumented server process*
// (Algorithm 1: RUNTARGET, with CRASH and HANG observed by the
// supervisor); this repository's targets have historically been in-process
// Go reimplementations run under internal/sandbox. This package makes the
// choice explicit:
//
//   - InProc wraps the sandbox runner unchanged — the fast, bit-for-bit
//     deterministic conformance tier every existing campaign runs on.
//   - Proc spawns and supervises a real server process, drives it over
//     TCP or UDP, detects crashes from connection resets and exit
//     statuses, classifies unresponsive targets as hangs with a watchdog,
//     restarts the target with campaign state preserved, and journals the
//     exact packet sequence since the last restart so every crash ships
//     with a replayable reproducer.
//
// The engine (internal/core) talks only to the Executor interface; which
// tier a campaign runs on is configuration.
package executor

import (
	"errors"

	"repro/internal/checkpoint"
	"repro/internal/coverage"
	"repro/internal/sandbox"
)

// Executor runs one generated packet against the target and classifies the
// outcome. Implementations own a coverage tracer that, after each Run,
// holds exactly that execution's coverage map — the engine merges it into
// the campaign's virgin state and hashes it for path signatures.
//
// Run returns an error only for backend-infrastructure failures the
// executor cannot recover by itself (the target binary is missing, the
// spawn loop exhausted its retries); target crashes and hangs are normal
// Results. An Executor is not safe for concurrent use; each fuzzing worker
// owns one.
type Executor interface {
	// Run executes one packet and classifies what happened.
	Run(packet []byte) (sandbox.Result, error)
	// Tracer exposes the coverage map of the most recent Run.
	Tracer() *coverage.Tracer
	// Close releases the backend (kills a supervised process, closes its
	// connection). Idempotent.
	Close() error
}

// SessionExecutor is the optional interface of executors that can mark
// protocol-session boundaries. The session-aware engine calls
// BeginSession before each message sequence; the executor resets
// whatever carries per-session target state — the in-process backend
// asks the target to clear its session fields, the process backend drops
// and re-establishes its connection — and records the boundary in its
// reproducer journal (sandbox.Result.ReproStarts). Executors that do not
// implement it are driven sequence-blind, which is still correct: the
// sequence just runs into whatever state the target was left in.
type SessionExecutor interface {
	// BeginSession marks the start of a new protocol session. The error
	// return is reserved for unrecoverable backend failures, like Run's.
	BeginSession() error
}

// StateCheckpointer is the optional interface of executors whose backend
// holds durable target state a campaign checkpoint can capture — the
// target layer of the checkpoint seam. The in-process backend implements
// it by delegating to the target (sandbox.StateCheckpointer); the process
// backend does not: a real target's memory cannot be serialized, so a
// warm-restarted process campaign resumes against a freshly started
// target, exactly as it would after any supervised restart.
type StateCheckpointer interface {
	// SnapshotState writes the backend's target state, reporting whether
	// anything was written (false when the concrete target has no
	// capturable state).
	SnapshotState(w *checkpoint.Writer) bool
	// RestoreState overwrites the target state with a
	// SnapshotState-produced dump.
	RestoreState(r *checkpoint.Reader) error
}

// SessionResetter is the optional interface of in-process targets that
// hold per-session state: ResetSession clears exactly the state a real
// server would lose when a client reconnects (activation flags, sequence
// numbers) — not long-lived server data.
type SessionResetter interface {
	ResetSession()
}

// InProc is the in-process execution backend: the sandbox runner behind
// the Executor interface. It adds nothing and changes nothing — a campaign
// on an InProc executor is bit-for-bit identical to one built before the
// interface existed, which the golden-fingerprint tests pin.
type InProc struct {
	r *sandbox.Runner
}

// NewInProc returns an in-process executor over the given target.
func NewInProc(t sandbox.Target) *InProc {
	return &InProc{r: sandbox.NewRunner(t)}
}

// Run executes one packet in the sandbox. The error is always nil: the
// sandbox converts every abnormal termination into a classified Result.
func (x *InProc) Run(packet []byte) (sandbox.Result, error) {
	return x.r.Run(packet), nil
}

// Tracer exposes the sandbox runner's coverage tracer.
func (x *InProc) Tracer() *coverage.Tracer { return x.r.Tracer() }

// Close is a no-op: in-process targets have no resources beyond the
// campaign's own memory.
func (x *InProc) Close() error { return nil }

// SnapshotState writes the target's durable state through the checkpoint
// codec when the target knows how to capture it (sandbox.StateCheckpointer),
// reporting whether anything was written. Targets without capturable state
// contribute nothing to a campaign checkpoint.
func (x *InProc) SnapshotState(w *checkpoint.Writer) bool {
	t, ok := x.r.Target().(sandbox.StateCheckpointer)
	if !ok {
		return false
	}
	t.SnapshotState(w)
	return true
}

// RestoreState overwrites the target's state with a SnapshotState-produced
// dump. It fails when the target cannot restore state: a checkpoint that
// carries target state must land on a backend that can absorb it, or the
// warm restart would silently lose the continuation guarantee.
func (x *InProc) RestoreState(r *checkpoint.Reader) error {
	t, ok := x.r.Target().(sandbox.StateCheckpointer)
	if !ok {
		return errors.New("executor: checkpoint carries target state but the target cannot restore it")
	}
	return t.RestoreState(r)
}

// BeginSession asks the target to reset its per-session state, when it
// knows how (SessionResetter); targets without session state need
// nothing reset. Never fails.
func (x *InProc) BeginSession() error {
	if t, ok := x.r.Target().(SessionResetter); ok {
		t.ResetSession()
	}
	return nil
}
