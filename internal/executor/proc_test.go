package executor

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/sandbox"
)

// The acceptance tests drive the bundled toy Modbus-TCP server
// (examples/realtarget/server) through the supervision loop with crafted
// packets, so every classifier branch — crash by exit status, watchdog
// hang, external kill, survived connection drop — is exercised
// deterministically against a real process.

var (
	serverBin   string
	statefulBin string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "executor-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	serverBin = filepath.Join(dir, "toy-modbus-server")
	statefulBin = filepath.Join(dir, "toy-stateful-server")
	for bin, pkg := range map[string]string{
		serverBin:   "repro/examples/realtarget/server",
		statefulBin: "repro/examples/stateful/server",
	} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", pkg, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// freeAddr reserves a loopback port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func testConfig(t *testing.T) ProcConfig {
	return ProcConfig{
		Cmd:         []string{serverBin, "-listen", "{addr}"},
		Addr:        freeAddr(t),
		ExecTimeout: 150 * time.Millisecond,
		Seed:        7,
	}
}

func newTestProc(t *testing.T) *Proc {
	t.Helper()
	p, err := NewProc(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// mbap frames a PDU in a Modbus-TCP header.
func mbap(pdu ...byte) []byte {
	out := make([]byte, 7+len(pdu))
	binary.BigEndian.PutUint16(out[0:2], 1)
	binary.BigEndian.PutUint16(out[4:6], uint16(1+len(pdu)))
	out[6] = 0xFF
	copy(out[7:], pdu)
	return out
}

// Crafted packets against the toy server's planted faults.
var (
	pktRead     = mbap(3, 0x00, 0x10, 0x00, 0x04) // fc3: read 4 registers at 0x10
	pktWrite    = mbap(6, 0x00, 0x20, 0x12, 0x34) // fc6: benign write
	pktCrashLow = mbap(6, 0xDE, 0x10, 0x00, 0x00) // fc6 @ 0xDE10 → os.Exit(41)
	pktCrashHi  = mbap(6, 0xDE, 0x90, 0x00, 0x00) // fc6 @ 0xDE90 → os.Exit(42)
	pktHang     = mbap(0x41, 0xDE)                // vendor fc + magic → busy loop
)

func mustRun(t *testing.T, p *Proc, pkt []byte) sandbox.Result {
	t.Helper()
	res, err := p.Run(pkt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestProcBasicExchange: benign packets come back OK with response-derived
// coverage and distinct path signatures for distinct response shapes.
func TestProcBasicExchange(t *testing.T) {
	p := newTestProc(t)
	read := mustRun(t, p, pktRead)
	if read.Outcome != sandbox.OK {
		t.Fatalf("read outcome = %v, want OK", read.Outcome)
	}
	if read.PathSig == 0 || p.Tracer().CountEdges() == 0 {
		t.Fatal("response produced no coverage signal")
	}
	write := mustRun(t, p, pktWrite)
	if write.Outcome != sandbox.OK {
		t.Fatalf("write outcome = %v, want OK", write.Outcome)
	}
	if write.PathSig == read.PathSig {
		t.Fatal("distinct response shapes produced identical path signatures")
	}
	if p.Restarts() != 0 {
		t.Fatalf("Restarts = %d after benign traffic, want 0", p.Restarts())
	}
}

// TestProcCrashDetection: the two planted exit paths are detected from
// their exit statuses, classified with distinct signatures, each carrying
// the replayable packet journal, and the target restarts transparently.
func TestProcCrashDetection(t *testing.T) {
	p := newTestProc(t)
	mustRun(t, p, pktRead) // journal context before the fault
	res := mustRun(t, p, pktCrashLow)
	if res.Outcome != sandbox.Crash {
		t.Fatalf("outcome = %v, want Crash", res.Outcome)
	}
	if res.Fault == nil || res.Fault.Kind != mem.ProcExit || res.Fault.Site != "exit:41" {
		t.Fatalf("fault = %+v, want proc-exit at exit:41", res.Fault)
	}
	if len(res.Repro) != 2 {
		t.Fatalf("reproducer has %d packets, want 2 (context + trigger)", len(res.Repro))
	}
	// The campaign continues: next Run respawns.
	if ok := mustRun(t, p, pktRead); ok.Outcome != sandbox.OK {
		t.Fatalf("post-crash outcome = %v, want OK", ok.Outcome)
	}
	if p.Restarts() != 1 {
		t.Fatalf("Restarts = %d, want 1", p.Restarts())
	}
	// The second planted path gets its own signature.
	res2 := mustRun(t, p, pktCrashHi)
	if res2.Fault == nil || res2.Fault.Site != "exit:42" {
		t.Fatalf("fault = %+v, want exit:42", res2.Fault)
	}
	if len(res2.Repro) != 2 {
		t.Fatalf("second reproducer has %d packets, want 2 (journal re-anchored at restart)", len(res2.Repro))
	}
}

// TestProcWatchdogHang: an unresponsive target is classified as a hang
// with the watchdog budget, its process group is killed, and fuzzing
// resumes on a fresh process.
func TestProcWatchdogHang(t *testing.T) {
	p := newTestProc(t)
	mustRun(t, p, pktRead)
	pidBefore := p.Pid()
	res := mustRun(t, p, pktHang)
	if res.Outcome != sandbox.Hang {
		t.Fatalf("outcome = %v, want Hang", res.Outcome)
	}
	if res.HangSteps != 150 {
		t.Fatalf("HangSteps = %d, want 150 (watchdog ms)", res.HangSteps)
	}
	if len(res.Repro) != 2 {
		t.Fatalf("hang reproducer has %d packets, want 2", len(res.Repro))
	}
	// The wedged process group must actually be dead.
	deadline := time.Now().Add(2 * time.Second)
	for syscall.Kill(pidBefore, 0) == nil {
		if time.Now().After(deadline) {
			t.Fatalf("pid %d still alive after watchdog kill", pidBefore)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ok := mustRun(t, p, pktRead); ok.Outcome != sandbox.OK {
		t.Fatalf("post-hang outcome = %v, want OK", ok.Outcome)
	}
	if p.Restarts() != 1 {
		t.Fatalf("Restarts = %d, want 1", p.Restarts())
	}
}

// TestProcExternalKill: a target killed out from under the campaign (the
// chaos case) is detected as a signal death and the campaign survives;
// replaying the captured sequence finds the target healthy — correctly
// reporting the death as not input-driven.
func TestProcExternalKill(t *testing.T) {
	p := newTestProc(t)
	mustRun(t, p, pktRead)
	pid := p.Pid()
	if pid == 0 {
		t.Fatal("no live pid")
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	// The next exchange observes the death.
	res := mustRun(t, p, pktWrite)
	if res.Outcome != sandbox.Crash {
		t.Fatalf("outcome = %v, want Crash", res.Outcome)
	}
	if res.Fault.Kind != mem.ProcSignal || res.Fault.Site != "signal:killed" {
		t.Fatalf("fault = %+v, want proc-signal at signal:killed", res.Fault)
	}
	if ok := mustRun(t, p, pktRead); ok.Outcome != sandbox.OK {
		t.Fatalf("post-kill outcome = %v, want OK", ok.Outcome)
	}
	// Replay: a fresh target survives the sequence — external kills are
	// not reproducible from inputs, and the verdict must say so.
	cfg := testConfig(t)
	rep, err := Replay(cfg, res.Repro)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != sandbox.OK {
		t.Fatalf("replay of externally-killed sequence = %v, want OK", rep.Outcome)
	}
}

// TestProcDroppedConnection: a server shedding the connection (the toy
// server drops on a malformed frame) is survived by reconnecting — no
// crash record, no restart.
func TestProcDroppedConnection(t *testing.T) {
	p := newTestProc(t)
	mustRun(t, p, pktRead)
	// Length field 0 is outside the server's accepted range: it drops the
	// connection without dying.
	malformed := mbap(3, 0, 0, 0, 4)
	binary.BigEndian.PutUint16(malformed[4:6], 0)
	res := mustRun(t, p, malformed)
	if res.Outcome != sandbox.OK {
		t.Fatalf("outcome = %v, want OK (survived drop)", res.Outcome)
	}
	if p.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", p.Drops())
	}
	if p.Restarts() != 0 {
		t.Fatalf("Restarts = %d, want 0 — a dropped connection is not a crash", p.Restarts())
	}
	if ok := mustRun(t, p, pktWrite); ok.Outcome != sandbox.OK {
		t.Fatalf("post-drop outcome = %v, want OK", ok.Outcome)
	}
}

// TestProcReplayDeterminism: captured reproducers replay to the same
// crash signature on a fresh target — the property that makes them
// reproducers.
func TestProcReplayDeterminism(t *testing.T) {
	p := newTestProc(t)
	mustRun(t, p, pktRead)
	mustRun(t, p, pktWrite)
	res := mustRun(t, p, pktCrashHi)
	if res.Outcome != sandbox.Crash {
		t.Fatalf("outcome = %v, want Crash", res.Outcome)
	}
	p.Close() // free the port for the replay instance
	cfg := testConfig(t)
	rep, err := Replay(cfg, res.Repro)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != sandbox.Crash {
		t.Fatalf("replay outcome = %v, want Crash", rep.Outcome)
	}
	if rep.Fault.Kind != res.Fault.Kind || rep.Fault.Site != res.Fault.Site {
		t.Fatalf("replay fault %s@%s != original %s@%s",
			rep.Fault.Kind, rep.Fault.Site, res.Fault.Kind, res.Fault.Site)
	}
}

// TestProcJournalCap: reaching the journal cap triggers a preventive
// restart that re-anchors the journal, keeping reproducers bounded.
func TestProcJournalCap(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxJournal = 8
	p, err := NewProc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 20; i++ {
		if res := mustRun(t, p, pktRead); res.Outcome != sandbox.OK {
			t.Fatalf("exec %d: outcome = %v, want OK", i, res.Outcome)
		}
	}
	if p.Restarts() != 2 {
		t.Fatalf("Restarts = %d, want 2 (20 execs / cap 8)", p.Restarts())
	}
	res := mustRun(t, p, pktCrashLow)
	if res.Outcome != sandbox.Crash {
		t.Fatalf("outcome = %v, want Crash", res.Outcome)
	}
	if len(res.Repro) > cfg.MaxJournal {
		t.Fatalf("reproducer has %d packets, cap is %d", len(res.Repro), cfg.MaxJournal)
	}
}

// TestProcSpawnFailure: a target binary that cannot run exhausts the spawn
// retries and surfaces as an unrecoverable backend error, not a hang.
func TestProcSpawnFailure(t *testing.T) {
	cfg := testConfig(t)
	cfg.Cmd = []string{"/nonexistent/fuzz-target"}
	cfg.SpawnTimeout = time.Second
	p, err := NewProc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Run(pktRead); err == nil {
		t.Fatal("Run succeeded against a nonexistent binary")
	}
	// The error is sticky: the backend is gone.
	if _, err := p.Run(pktRead); err == nil {
		t.Fatal("second Run succeeded after unrecoverable failure")
	}
}

// TestProcUDP: the datagram transport round-trips and detects crashes the
// same way.
func TestProcUDP(t *testing.T) {
	cfg := testConfig(t)
	cfg.Net = "udp"
	cfg.Cmd = []string{serverBin, "-udp", "-listen", "{addr}"}
	p, err := NewProc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if res := mustRun(t, p, pktRead); res.Outcome != sandbox.OK {
		t.Fatalf("udp read outcome = %v, want OK", res.Outcome)
	}
	res := mustRun(t, p, pktCrashLow)
	if res.Outcome != sandbox.Crash {
		t.Fatalf("udp crash outcome = %v, want Crash", res.Outcome)
	}
	if res.Fault.Site != "exit:41" {
		t.Fatalf("udp fault site = %q, want exit:41", res.Fault.Site)
	}
}
