package datamodel

import (
	"errors"
	"fmt"
)

// ErrCrack is wrapped by every cracking failure, so callers can cheaply test
// "did this model reject the packet" with errors.Is.
var ErrCrack = errors.New("datamodel: crack failed")

// crackErr builds a wrapped cracking error.
func crackErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCrack, fmt.Sprintf(format, args...))
}

// Crack parses a wire packet against the model, producing an instantiation
// tree (Definition 1), or an error when the packet does not conform. This is
// the PARSE step of Algorithm 2; a nil error corresponds to LEGAL(InsTree).
//
// Cracking rules:
//   - Number: consumes Width bytes; a Token must equal its default; a
//     non-empty Legal set must contain the value.
//   - String/Blob with fixed size: consumes exactly Size bytes.
//   - String/Blob with Variable size: consumes the value of an
//     already-parsed size-of field referring to it, else the remainder of
//     the enclosing region (bounded by MinSize/MaxSize).
//   - Block: children in order.
//   - Choice: alternatives in order, first full parse wins (backtracking).
//   - Array: count-of field if one was parsed, else greedy repetition of
//     the element until the region is exhausted.
//
// The whole packet must be consumed; trailing bytes fail the crack, because
// a puzzle corpus built from misaligned chunks would poison generation.
func (m *Model) Crack(packet []byte) (*Node, error) {
	p := &cracker{model: m, data: packet}
	n, err := p.parse(m.root(), 0, len(packet))
	if err != nil {
		return nil, err
	}
	if p.consumed != len(packet) {
		return nil, crackErr("model %s: %d trailing bytes", m.Name, len(packet)-p.consumed)
	}
	// Integrity check: a packet whose checksums do not verify is not a
	// legal instance (Peach's cracker validates fixups the same way).
	if !m.VerifyFixups(n) {
		return nil, crackErr("model %s: fixup verification failed", m.Name)
	}
	return n, nil
}

// CrackChunk parses data against a single chunk subtree, consuming all of
// it. The semantic-aware generator uses it to graft a donated block-level
// puzzle into a skeleton instance: the donated bytes are only accepted if
// they re-parse as the receiving chunk's structure, so interior relations
// inside the graft stay meaningful.
func CrackChunk(c *Chunk, data []byte) (*Node, error) {
	p := &cracker{data: data}
	n, err := p.parse(c, 0, len(data))
	if err != nil {
		return nil, err
	}
	if p.consumed != len(data) {
		return nil, crackErr("chunk %s: %d trailing bytes", c.Name, len(data)-p.consumed)
	}
	return n, nil
}

// cracker carries parse state: the packet, the rightmost consumed offset,
// and the values of already-parsed relation source fields.
type cracker struct {
	model    *Model
	data     []byte
	consumed int
	// sized maps target-chunk name -> resolved byte size, from parsed
	// size-of fields.
	sized map[string]int
	// counted maps target-chunk name -> resolved element count, from
	// parsed count-of fields.
	counted map[string]int
}

// parse consumes the chunk c from data[off:end], returning the node. end is
// the exclusive bound of the enclosing region.
func (p *cracker) parse(c *Chunk, off, end int) (*Node, error) {
	n, next, err := p.parseAt(c, off, end)
	if err != nil {
		return nil, err
	}
	if next > p.consumed {
		p.consumed = next
	}
	return n, nil
}

// parseAt is the recursive worker: it returns the parsed node and the next
// offset.
func (p *cracker) parseAt(c *Chunk, off, end int) (*Node, int, error) {
	switch c.Kind {
	case Number:
		if off+c.Width > end {
			return nil, 0, crackErr("number %q: need %d bytes at %d, region ends at %d", c.Name, c.Width, off, end)
		}
		raw := p.data[off : off+c.Width]
		v := decodeUint(raw, c.Endian)
		if c.Token && v != c.Default {
			return nil, 0, crackErr("token %q: got %d, want %d", c.Name, v, c.Default)
		}
		if len(c.Legal) > 0 && !containsU64(c.Legal, v) {
			return nil, 0, crackErr("number %q: %d not in legal set", c.Name, v)
		}
		n := &Node{Chunk: c}
		if c.Width <= len(n.store) {
			n.Data = n.store[:c.Width]
			copy(n.Data, raw)
		} else {
			n.Data = append([]byte(nil), raw...)
		}
		p.recordRelation(c, v)
		return n, off + c.Width, nil

	case String, Blob:
		size := c.Size
		if size == Variable {
			if s, ok := p.sizedFor(c.Name); ok {
				size = s
			} else {
				size = end - off
			}
			if size < c.MinSize {
				return nil, 0, crackErr("%s %q: size %d below minimum %d", c.Kind, c.Name, size, c.MinSize)
			}
			if c.MaxSize > 0 && size > c.MaxSize {
				return nil, 0, crackErr("%s %q: size %d above maximum %d", c.Kind, c.Name, size, c.MaxSize)
			}
		}
		if off+size > end {
			return nil, 0, crackErr("%s %q: need %d bytes at %d, region ends at %d", c.Kind, c.Name, size, off, end)
		}
		n := &Node{Chunk: c, Data: append([]byte(nil), p.data[off:off+size]...)}
		return n, off + size, nil

	case Block:
		n := &Node{Chunk: c}
		cur := off
		for i, ch := range c.Children {
			// A child region may itself be bounded by a size-of
			// field already parsed within this block.
			childEnd := end
			if s, ok := p.sizedFor(ch.Name); ok && ch.Kind != String && ch.Kind != Blob {
				if cur+s <= end {
					childEnd = cur + s
				}
			}
			child, next, err := p.parseAt(ch, cur, childEnd)
			if err != nil {
				return nil, 0, fmt.Errorf("%w (in block %q child %d)", err, c.Name, i)
			}
			n.Children = append(n.Children, child)
			cur = next
		}
		return n, cur, nil

	case Choice:
		var firstErr error
		for _, alt := range c.Children {
			saveS, saveC := cloneIntMap(p.sized), cloneIntMap(p.counted)
			child, next, err := p.parseAt(alt, off, end)
			if err == nil {
				n := &Node{Chunk: c, Children: []*Node{child}}
				return n, next, nil
			}
			// Backtrack relation state recorded by the failed
			// alternative.
			p.sized, p.counted = saveS, saveC
			if firstErr == nil {
				firstErr = err
			}
		}
		return nil, 0, fmt.Errorf("%w (no alternative of choice %q matched)", firstErr, c.Name)

	case Array:
		n := &Node{Chunk: c}
		cur := off
		want, haveCount := p.countedFor(c.Name)
		bound := arrayBound(c)
		if c.MaxCount > 0 {
			bound = c.MaxCount
		} else if haveCount {
			bound = want
		} else {
			bound = 1 << 16 // greedy mode: region-bounded
		}
		for len(n.Children) < bound {
			if haveCount && len(n.Children) == want {
				break
			}
			if !haveCount && cur >= end {
				break
			}
			child, next, err := p.parseAt(c.Children[0], cur, end)
			if err != nil {
				if haveCount {
					return nil, 0, fmt.Errorf("%w (array %q element %d)", err, c.Name, len(n.Children))
				}
				break // greedy: stop at first non-element
			}
			if next == cur {
				break // zero-width element; avoid livelock
			}
			n.Children = append(n.Children, child)
			cur = next
		}
		if haveCount && len(n.Children) != want {
			return nil, 0, crackErr("array %q: parsed %d elements, count field says %d", c.Name, len(n.Children), want)
		}
		return n, cur, nil
	}
	return nil, 0, crackErr("chunk %q: unknown kind", c.Name)
}

// recordRelation notes a parsed relation-source value so later variable
// chunks can resolve their sizes/counts.
func (p *cracker) recordRelation(c *Chunk, v uint64) {
	if c.Rel == nil {
		return
	}
	adjusted := int(v) - c.Rel.Adjust
	if adjusted < 0 {
		adjusted = 0
	}
	switch c.Rel.Kind {
	case SizeOf:
		if p.sized == nil {
			p.sized = map[string]int{}
		}
		p.sized[c.Rel.Of] = adjusted
	case CountOf:
		if p.counted == nil {
			p.counted = map[string]int{}
		}
		p.counted[c.Rel.Of] = adjusted
	}
}

func (p *cracker) sizedFor(name string) (int, bool) {
	s, ok := p.sized[name]
	return s, ok
}

func (p *cracker) countedFor(name string) (int, bool) {
	s, ok := p.counted[name]
	return s, ok
}

func containsU64(xs []uint64, v uint64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func cloneIntMap(m map[string]int) map[string]int {
	if m == nil {
		return nil
	}
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
