// Package datamodel implements the Peach data-model engine the paper builds
// on (§II, Fig. 1): packet formats are trees whose leaves are typed chunks
// (numbers, strings, blobs) and whose internal nodes are blocks; integrity
// constraints are expressed as Relations (size-of, count-of) and Fixups
// (checksums). The package provides the four operations Peach* needs:
//
//   - Generate: instantiate a model into a default instance tree,
//   - Serialize: render an instance tree to wire bytes,
//   - Crack: parse wire bytes back into an instantiation tree (Alg. 2, PARSE),
//   - ApplyFixups: re-establish integrity constraints after chunk surgery
//     (§IV-D, File Fixup).
package datamodel

import (
	"fmt"
	"sync"
)

// Kind discriminates chunk node types.
type Kind int

// Chunk kinds. Number, String and Blob are leaves; Block, Choice and Array
// are interior nodes.
const (
	// Number is a fixed-width unsigned integer field.
	Number Kind = iota
	// String is a textual field, fixed-size or variable.
	String
	// Blob is an opaque byte field, fixed-size or variable.
	Blob
	// Block is an ordered sequence of child chunks.
	Block
	// Choice selects exactly one of its children; alternatives are tried
	// in order when cracking.
	Choice
	// Array repeats its single child; the repetition count comes from a
	// count-of relation or from greedy consumption of the enclosing
	// region.
	Array
)

// String returns the Pit-style name of the kind.
func (k Kind) String() string {
	switch k {
	case Number:
		return "Number"
	case String:
		return "String"
	case Blob:
		return "Blob"
	case Block:
		return "Block"
	case Choice:
		return "Choice"
	case Array:
		return "Array"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Endian selects byte order for Number chunks.
type Endian int

// Byte orders. ICS protocols are predominantly big-endian on the wire
// (Modbus, IEC104, MMS); DNP3 is little-endian.
const (
	Big Endian = iota
	Little
)

// RelKind discriminates relation types (Peach's Relation element).
type RelKind int

// Relation kinds.
const (
	// SizeOf: this number carries the serialized byte length of the
	// referenced chunk.
	SizeOf RelKind = iota
	// CountOf: this number carries the element count of the referenced
	// Array chunk.
	CountOf
	// OffsetOf: this number carries the byte offset of the referenced
	// chunk from the start of the packet.
	OffsetOf
)

// String returns the Pit-style name of the relation kind.
func (k RelKind) String() string {
	switch k {
	case SizeOf:
		return "size-of"
	case CountOf:
		return "count-of"
	case OffsetOf:
		return "offset-of"
	default:
		return fmt.Sprintf("RelKind(%d)", int(k))
	}
}

// Relation declares that a Number chunk's value is derived from another
// chunk, as in Fig. 1's sizeof relation. Adjust is added to the measured
// quantity before storing (e.g. IEC104's APCI length excludes the first two
// header bytes: Adjust = -2 on a size-of spanning them would not apply, but
// a +N adjustment covers "length includes the length field itself" cases).
type Relation struct {
	Kind   RelKind
	Of     string // name of the measured chunk
	Adjust int
}

// FixKind discriminates checksum algorithms available to Fixups.
type FixKind int

// Checksum algorithms used by the ICS protocols in this repository.
const (
	// CRC32IEEE is Peach's Crc32Fixup (Fig. 1).
	CRC32IEEE FixKind = iota
	// CRC16Modbus is the reflected 0xA001 CRC used by Modbus RTU.
	CRC16Modbus
	// CRC16DNP is DNP3's data-link CRC (poly 0x3D65, reflected,
	// complemented).
	CRC16DNP
	// Sum8 is a one-byte modular sum.
	Sum8
	// LRC is the longitudinal redundancy check used by Modbus ASCII and
	// several serial ICS links: two's complement of the byte sum.
	LRC
)

// String returns the Pit-style name of the fixup kind.
func (k FixKind) String() string {
	switch k {
	case CRC32IEEE:
		return "Crc32Fixup"
	case CRC16Modbus:
		return "Crc16ModbusFixup"
	case CRC16DNP:
		return "Crc16DnpFixup"
	case Sum8:
		return "Sum8Fixup"
	case LRC:
		return "LRCFixup"
	default:
		return fmt.Sprintf("FixKind(%d)", int(k))
	}
}

// Fixup declares that a chunk's bytes are a checksum computed over the
// serialized bytes of the Over chunks, in declaration order (Fig. 1's
// Crc32Fixup).
type Fixup struct {
	Kind FixKind
	Over []string
}

// Variable marks a String/Blob whose size is not fixed but resolved through
// a size-of relation or by consuming the remainder of the enclosing region.
const Variable = -1

// Chunk is one node of a data model: a construction rule in the paper's
// terminology. The set of meaningful fields depends on Kind; Validate
// enforces the constraints.
type Chunk struct {
	Name string
	Kind Kind

	// Number fields.
	Width   int    // byte width, 1..8
	Endian  Endian // byte order
	Default uint64 // default/seed value
	Legal   []uint64
	// Token marks a field that identifies the packet type (the paper's
	// "function code"/"opcode" field, §III). A token must equal Default
	// for a crack to succeed, which is what lets one payload model reject
	// another opcode's bytes.
	Token bool

	// String/Blob fields. Size == Variable means size is resolved by
	// relation or region remainder; MinSize/MaxSize bound generated and
	// cracked sizes when variable.
	Size         int
	MinSize      int
	MaxSize      int
	DefaultBytes []byte

	// Rel derives this Number's value from another chunk.
	Rel *Relation
	// Fix derives this chunk's bytes from a checksum over other chunks.
	Fix *Fixup

	// Children of Block/Choice; the single element prototype of Array.
	Children []*Chunk

	// MaxCount bounds Array length during generation and cracking
	// (0 = default bound).
	MaxCount int

	// sig caches RuleSignature, precomputed by Model.Validate (which every
	// engine runs before its workers start, so the writes happen-before any
	// concurrent read). Empty until then; RuleSignature recomputes on the
	// fly for chunks used outside a validated model.
	sig string
}

// Model is a named data model: the root is implicitly a Block over Fields.
// One format specification (Pit) usually carries several models, one per
// packet type (§III: M_1 … M_n, typically one per opcode value).
//
// Models are used via pointer and must not be copied by value (the cached
// root holds a sync.Once), nor have Fields mutated after first use.
type Model struct {
	Name   string
	Fields []*Chunk

	rootOnce  sync.Once
	rootChunk *Chunk
}

// root wraps the model's fields as a synthetic Block so tree algorithms can
// treat the model uniformly. The wrapper is built once — root sits on the
// per-execution generate and crack paths.
func (m *Model) root() *Chunk {
	m.rootOnce.Do(func() {
		m.rootChunk = &Chunk{Name: m.Name, Kind: Block, Children: m.Fields}
	})
	return m.rootChunk
}

// Validate checks structural well-formedness: widths in range, children
// present where required, relation/fixup references resolvable, unique
// names among leaves that are referenced. It also precomputes every chunk's
// donor-rule signature, making RuleSignature allocation-free afterwards.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("datamodel: model has no name")
	}
	names := map[string]bool{}
	var collect func(c *Chunk) error
	collect = func(c *Chunk) error {
		if c.Name != "" {
			names[c.Name] = true
		}
		for _, ch := range c.Children {
			if err := collect(ch); err != nil {
				return err
			}
		}
		return nil
	}
	for _, f := range m.Fields {
		if err := collect(f); err != nil {
			return err
		}
	}
	var walk func(c *Chunk) error
	walk = func(c *Chunk) error {
		switch c.Kind {
		case Number:
			if c.Width < 1 || c.Width > 8 {
				return fmt.Errorf("datamodel: number %q width %d out of range", c.Name, c.Width)
			}
			if len(c.Children) != 0 {
				return fmt.Errorf("datamodel: number %q has children", c.Name)
			}
		case String, Blob:
			if c.Size < Variable {
				return fmt.Errorf("datamodel: %s %q has invalid size %d", c.Kind, c.Name, c.Size)
			}
			if c.Size == Variable && c.MaxSize != 0 && c.MaxSize < c.MinSize {
				return fmt.Errorf("datamodel: %s %q max size < min size", c.Kind, c.Name)
			}
			if len(c.Children) != 0 {
				return fmt.Errorf("datamodel: %s %q has children", c.Kind, c.Name)
			}
		case Block, Choice:
			if len(c.Children) == 0 {
				return fmt.Errorf("datamodel: %s %q has no children", c.Kind, c.Name)
			}
		case Array:
			if len(c.Children) != 1 {
				return fmt.Errorf("datamodel: array %q must have exactly one element prototype", c.Name)
			}
		default:
			return fmt.Errorf("datamodel: %q has unknown kind %d", c.Name, int(c.Kind))
		}
		if c.Rel != nil {
			if c.Kind != Number {
				return fmt.Errorf("datamodel: relation on non-number %q", c.Name)
			}
			if !names[c.Rel.Of] {
				return fmt.Errorf("datamodel: relation on %q references unknown chunk %q", c.Name, c.Rel.Of)
			}
		}
		if c.Fix != nil {
			if c.Kind != Number && c.Kind != Blob {
				return fmt.Errorf("datamodel: fixup on %s %q (want Number or Blob)", c.Kind, c.Name)
			}
			if len(c.Fix.Over) == 0 {
				return fmt.Errorf("datamodel: fixup on %q covers nothing", c.Name)
			}
			for _, o := range c.Fix.Over {
				if !names[o] {
					return fmt.Errorf("datamodel: fixup on %q references unknown chunk %q", c.Name, o)
				}
			}
		}
		c.sig = computeRuleSignature(c)
		for _, ch := range c.Children {
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(m.root())
}

// find returns the first chunk with the given name, in document order.
func (m *Model) find(name string) *Chunk {
	var rec func(c *Chunk) *Chunk
	rec = func(c *Chunk) *Chunk {
		if c.Name == name {
			return c
		}
		for _, ch := range c.Children {
			if got := rec(ch); got != nil {
				return got
			}
		}
		return nil
	}
	for _, f := range m.Fields {
		if got := rec(f); got != nil {
			return got
		}
	}
	return nil
}

// Opcode returns the value of the first token Number in the model, which by
// the convention of §III identifies the packet type. ok is false when the
// model has no token.
func (m *Model) Opcode() (val uint64, ok bool) {
	var rec func(c *Chunk) (uint64, bool)
	rec = func(c *Chunk) (uint64, bool) {
		if c.Kind == Number && c.Token {
			return c.Default, true
		}
		for _, ch := range c.Children {
			if v, ok := rec(ch); ok {
				return v, true
			}
		}
		return 0, false
	}
	return rec(m.root())
}
