package datamodel

// Arena is a per-engine bump allocator for the execution hot path. A
// steady-state fuzzing iteration builds an instance tree, mutates it,
// renders it, and throws it away; the arena turns all of those heap
// allocations (nodes, child slices, leaf payloads, the rendered seed) into
// pointer bumps over slabs that are reset once per iteration.
//
// Lifetime contract: everything handed out by an arena dies at the next
// Reset. Callers must copy anything that outlives the iteration (the engine
// does: the crash bank, the corpus and the valuable-instance queue all copy
// on retention, and cracked trees are built on the heap, never the arena).
//
// Slabs grow to the campaign's high-water mark: a request that does not fit
// the current slab falls back to the heap (correct, merely an allocation)
// and records the shortfall; Reset then grows the slab so the next
// iteration fits. After warm-up, steady state performs zero slab growth.
//
// A nil *Arena is valid and degrades every method to plain heap allocation,
// so tree-building code can be written once and run with or without an
// arena. An Arena is not safe for concurrent use; each worker engine owns
// one.
type Arena struct {
	nodes    []Node
	nodeOff  int
	nodeMiss int

	ptrs    []*Node
	ptrOff  int
	ptrMiss int

	buf     []byte
	bufOff  int
	bufMiss int
}

// Reset recycles every slab, growing any that overflowed last iteration.
func (a *Arena) Reset() {
	if a.nodeMiss > 0 {
		a.nodes = make([]Node, grown(len(a.nodes), a.nodeMiss))
		a.nodeMiss = 0
	}
	if a.ptrMiss > 0 {
		a.ptrs = make([]*Node, grown(len(a.ptrs), a.ptrMiss))
		a.ptrMiss = 0
	}
	if a.bufMiss > 0 {
		a.buf = make([]byte, grown(len(a.buf), a.bufMiss))
		a.bufMiss = 0
	}
	a.nodeOff, a.ptrOff, a.bufOff = 0, 0, 0
}

// grown sizes a slab to fit last iteration's demand with doubling headroom.
func grown(have, miss int) int {
	need := have + miss
	if need < 64 {
		need = 64
	}
	return 2 * need
}

// Node returns a zeroed node that lives until the next Reset.
//
//peachstar:hotpath
func (a *Arena) Node() *Node {
	if a == nil || a.nodeOff == len(a.nodes) {
		if a != nil {
			a.nodeMiss++
		}
		//peachstar:allocok slab-exhaustion fallback; misses are counted and the next Reset grows the slab
		return &Node{}
	}
	n := &a.nodes[a.nodeOff]
	a.nodeOff++
	*n = Node{}
	return n
}

// Children returns a zero-length child slice with capacity n. Appending
// beyond n reallocates onto the heap, which is safe — merely unarenaed.
//
//peachstar:hotpath
func (a *Arena) Children(n int) []*Node {
	if a == nil || a.ptrOff+n > len(a.ptrs) {
		if a != nil {
			a.ptrMiss += n
		}
		return make([]*Node, 0, n)
	}
	s := a.ptrs[a.ptrOff : a.ptrOff : a.ptrOff+n]
	a.ptrOff += n
	return s
}

// Bytes returns a zeroed byte slice of length n.
//
//peachstar:hotpath
func (a *Arena) Bytes(n int) []byte {
	b := a.Buffer(n)[:n]
	clear(b)
	return b
}

// Buffer returns a zero-length byte slice with capacity n, for callers that
// overwrite every byte (seed rendering via Node.AppendTo).
//
//peachstar:hotpath
func (a *Arena) Buffer(n int) []byte {
	if a == nil || a.bufOff+n > len(a.buf) {
		if a != nil {
			a.bufMiss += n
		}
		return make([]byte, 0, n)
	}
	s := a.buf[a.bufOff : a.bufOff : a.bufOff+n]
	a.bufOff += n
	return s
}
