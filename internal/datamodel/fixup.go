package datamodel

import (
	"hash/crc32"
	"sync"
)

// fixupBufPool recycles the checksum serialization scratch across ApplyFixups
// calls. The buffer cannot live on the stack (it threads through a recursive
// walk, so escape analysis heap-allocates it) and cannot live on the Model
// (models are shared read-only across parallel workers); a pool gives every
// concurrent caller an amortized-free buffer.
var fixupBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// ApplyFixups re-establishes the model's integrity constraints on an
// instance tree, in place: size-of/count-of/offset-of relations first
// (iterated to a fixpoint, since a size field's width never changes but
// nested variable regions can shift offsets), then checksum fixups over the
// final bytes. This is the File Fixup module of §IV-D; the paper notes it
// reuses Peach's Fixup and Relation machinery directly, which is what this
// method is.
func (m *Model) ApplyFixups(root *Node) {
	// Relations. Two passes suffice: sizes and counts depend only on
	// subtree shapes, which relations do not change; offsets depend on
	// sizes. A second pass settles offset fields that precede the sized
	// regions they reference.
	for pass := 0; pass < 2; pass++ {
		applyRelations(root, root)
	}
	// Fixups last: checksums cover final bytes. The covered regions are
	// serialized into one pooled scratch buffer threaded through the walk,
	// so the pass allocates nothing for packet-sized covers.
	bp := fixupBufPool.Get().(*[]byte)
	*bp = applyChecksums(root, root, (*bp)[:0])
	fixupBufPool.Put(bp)
}

// applyRelations walks the subtree, resolving each Number relation against
// the full instance tree.
func applyRelations(root, n *Node) {
	if n.Chunk.Rel != nil && n.Chunk.Kind == Number {
		target := root.Find(n.Chunk.Rel.Of)
		if target != nil {
			var v int
			switch n.Chunk.Rel.Kind {
			case SizeOf:
				v = target.Len()
			case CountOf:
				v = len(target.Children)
			case OffsetOf:
				v = offsetOf(root, target)
			}
			v += n.Chunk.Rel.Adjust
			if v < 0 {
				v = 0
			}
			n.SetUint(uint64(v) & widthMask(n.Chunk.Width))
		}
	}
	for _, c := range n.Children {
		applyRelations(root, c)
	}
}

// offsetOf returns the byte offset of target within root's serialization,
// or 0 if target is not in the tree.
func offsetOf(root, target *Node) int {
	off, found := 0, false
	var rec func(n *Node)
	rec = func(n *Node) {
		if found || n == target {
			found = true
			return
		}
		if n.IsLeaf() {
			off += len(n.Data)
			return
		}
		for _, c := range n.Children {
			rec(c)
			if found {
				return
			}
		}
	}
	rec(root)
	if !found {
		return 0
	}
	return off
}

// applyChecksums computes each fixup field from the serialized bytes of the
// chunks it covers. buf is the reusable serialization scratch; the grown
// buffer is returned so siblings share one backing array.
func applyChecksums(root, n *Node, buf []byte) []byte {
	for _, c := range n.Children {
		buf = applyChecksums(root, c, buf)
	}
	if n.Chunk.Fix == nil {
		return buf
	}
	covered := buf[:0]
	for _, name := range n.Chunk.Fix.Over {
		if t := root.Find(name); t != nil {
			covered = t.AppendTo(covered)
		}
	}
	sum := Checksum(n.Chunk.Fix.Kind, covered)
	switch n.Chunk.Kind {
	case Number:
		n.SetUint(sum & widthMask(n.Chunk.Width))
	case Blob:
		if len(n.Data) <= 8 {
			putUint(n.Data, sum, Big)
		} else {
			n.Data = encodeUint(sum, len(n.Data), Big)
		}
	}
	return covered
}

// Checksum computes the named checksum over data, returning it as an
// integer in the low-order bits.
func Checksum(kind FixKind, data []byte) uint64 {
	switch kind {
	case CRC32IEEE:
		return uint64(crc32.ChecksumIEEE(data))
	case CRC16Modbus:
		return uint64(CRC16ModbusSum(data))
	case CRC16DNP:
		return uint64(CRC16DNPSum(data))
	case Sum8:
		var s byte
		for _, b := range data {
			s += b
		}
		return uint64(s)
	case LRC:
		var s byte
		for _, b := range data {
			s += b
		}
		return uint64(byte(-int8(s)))
	default:
		return 0
	}
}

// CRC16ModbusSum computes the Modbus RTU CRC: polynomial 0x8005 reflected
// (0xA001), initial value 0xFFFF, no final XOR. The Modbus spec transmits
// it little-endian.
func CRC16ModbusSum(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xA001
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// CRC16DNPSum computes the DNP3 data-link CRC: polynomial 0x3D65 reflected
// (0xA6BC), initial value 0, complemented output. DNP3 transmits it
// little-endian after each data block.
func CRC16DNPSum(data []byte) uint16 {
	crc := uint16(0)
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xA6BC
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

// VerifyFixups reports whether every fixup field in the instance currently
// matches the checksum of the bytes it covers, and whether every size/count
// relation holds. Crackers use it to reject corrupt packets; tests use it
// to state the fixup invariant.
func (m *Model) VerifyFixups(root *Node) bool {
	ok := true
	var rec func(n *Node)
	rec = func(n *Node) {
		if n.Chunk.Rel != nil && n.Chunk.Kind == Number {
			if t := root.Find(n.Chunk.Rel.Of); t != nil {
				var v int
				switch n.Chunk.Rel.Kind {
				case SizeOf:
					v = t.Len()
				case CountOf:
					v = len(t.Children)
				case OffsetOf:
					v = offsetOf(root, t)
				}
				v += n.Chunk.Rel.Adjust
				if v < 0 {
					v = 0
				}
				if n.Uint() != uint64(v)&widthMask(n.Chunk.Width) {
					ok = false
				}
			}
		}
		if n.Chunk.Fix != nil {
			var covered []byte
			for _, name := range n.Chunk.Fix.Over {
				if t := root.Find(name); t != nil {
					covered = append(covered, t.Bytes()...)
				}
			}
			want := Checksum(n.Chunk.Fix.Kind, covered)
			var got uint64
			if n.Chunk.Kind == Number {
				got = n.Uint()
			} else {
				got = decodeUint(n.Data, Big)
			}
			if got != want&widthMask(len(n.Data)) {
				ok = false
			}
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(root)
	return ok
}
