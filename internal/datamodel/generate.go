package datamodel

import "repro/internal/rng"

// Generate instantiates the model into a default instance tree: every leaf
// takes its declared default, arrays take one element, choices take their
// first alternative. Relations and fixups are then established, so the
// result is a legal packet — the starting point of Algorithm 1 before any
// mutator runs.
func (m *Model) Generate() *Node { return m.GenerateInto(nil) }

// GenerateInto is Generate drawing all nodes, child slices and leaf bytes
// from the arena (nil means the heap) — the engine's per-iteration path.
//
//peachstar:hotpath
func (m *Model) GenerateInto(a *Arena) *Node {
	n := generateChunk(a, m.root(), nil)
	m.ApplyFixups(n)
	return n
}

// GenerateRandom instantiates the model with randomized leaf content:
// numbers draw from their legal set (or uniformly), variable-size fields
// draw a size in range, choices pick a random alternative, arrays a random
// small count. Tokens keep their defaults — they define the packet type.
// Fixups are applied, so the output is structurally legal. This is the
// "random generation" mutator class of §II.
func (m *Model) GenerateRandom(r *rng.RNG) *Node { return m.GenerateRandomInto(nil, r) }

// GenerateRandomInto is GenerateRandom backed by the arena (nil = heap).
//
//peachstar:hotpath
func (m *Model) GenerateRandomInto(a *Arena, r *rng.RNG) *Node {
	n := generateChunk(a, m.root(), r)
	m.ApplyFixups(n)
	return n
}

// generateChunk builds the instance subtree for c. A nil RNG requests the
// deterministic default instance.
func generateChunk(a *Arena, c *Chunk, r *rng.RNG) *Node {
	n := a.Node()
	n.Chunk = c
	switch c.Kind {
	case Number:
		v := c.Default
		if r != nil && !c.Token && c.Rel == nil && c.Fix == nil {
			switch {
			case len(c.Legal) > 0:
				v = rng.Pick(r, c.Legal)
			default:
				v = r.Uint64() & widthMask(c.Width)
			}
		}
		if c.Width <= len(n.store) {
			n.Data = n.store[:c.Width]
			putUint(n.Data, v, c.Endian)
		} else {
			n.Data = encodeUint(v, c.Width, c.Endian)
		}
	case String, Blob:
		n.Data = defaultPayload(a, c, r)
	case Block:
		n.Children = a.Children(len(c.Children))
		for _, ch := range c.Children {
			n.Children = append(n.Children, generateChunk(a, ch, r))
		}
	case Choice:
		alt := c.Children[0]
		if r != nil {
			alt = rng.Pick(r, c.Children)
		}
		n.Children = append(a.Children(1), generateChunk(a, alt, r))
	case Array:
		count := 1
		if r != nil {
			count = r.Range(1, arrayBound(c))
		}
		n.Children = a.Children(count)
		for i := 0; i < count; i++ {
			n.Children = append(n.Children, generateChunk(a, c.Children[0], r))
		}
	}
	return n
}

// defaultPayload produces leaf bytes for a String or Blob chunk.
func defaultPayload(a *Arena, c *Chunk, r *rng.RNG) []byte {
	size := c.Size
	if size == Variable {
		size = c.MinSize
		if r != nil {
			size = r.Range(c.MinSize, maxSize(c))
		}
		if len(c.DefaultBytes) >= c.MinSize && (maxSize(c) == 0 || len(c.DefaultBytes) <= maxSize(c)) && r == nil {
			size = len(c.DefaultBytes)
		}
	}
	out := a.Bytes(size)
	if len(c.DefaultBytes) > 0 {
		copy(out, c.DefaultBytes)
	}
	if r != nil {
		if c.Kind == String {
			for i := range out {
				out[i] = byte('a' + r.Intn(26))
			}
		} else {
			for i := range out {
				out[i] = r.Byte()
			}
		}
	} else if c.Kind == String && len(c.DefaultBytes) == 0 {
		for i := range out {
			out[i] = 'A'
		}
	}
	return out
}

// maxSize returns the effective maximum size of a variable chunk.
func maxSize(c *Chunk) int {
	if c.MaxSize > 0 {
		return c.MaxSize
	}
	return c.MinSize + 32
}

// arrayBound returns the generation bound for an Array chunk.
func arrayBound(c *Chunk) int {
	if c.MaxCount > 0 {
		return c.MaxCount
	}
	return 4
}

// widthMask returns the value mask for a width-byte number.
func widthMask(width int) uint64 {
	if width >= 8 {
		return ^uint64(0)
	}
	return (1 << (8 * width)) - 1
}
