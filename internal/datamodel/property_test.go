package datamodel

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestRoundTripProperty: for any seed, a randomly generated instance of any
// of several structurally diverse models serializes to bytes that crack back
// to an identical byte stream. This is the invariant Algorithm 2 depends on:
// valuable seeds produced by the generator are always crackable.
func TestRoundTripProperty(t *testing.T) {
	models := []*Model{
		figure1Model(),
		NewModel("rel-chain",
			Num("op", 1, 0x10).AsToken(),
			Num("len", 2, 0).WithRel(SizeOf, "body", 0),
			Blk("body",
				Num("addr", 2, 0),
				BytesVar("data", 1, 32, []byte{1}),
			),
			Num("crc", 2, 0).WithFix(CRC16Modbus, "op", "len", "body"),
		),
		NewModel("choice-arr",
			Num("n", 1, 0).WithRel(CountOf, "items", 0),
			Rep("items", Blk("item", Num("t", 1, 0).WithLegal(1, 2), Num("v", 2, 0)), 6),
		),
	}
	f := func(seed uint64, which uint8) bool {
		m := models[int(which)%len(models)]
		r := rng.New(seed)
		inst := m.GenerateRandom(r)
		pkt := inst.Bytes()
		got, err := m.Crack(pkt)
		if err != nil {
			t.Logf("crack failed for model %s: %v (pkt %x)", m.Name, err, pkt)
			return false
		}
		return bytes.Equal(got.Bytes(), pkt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFixupIdempotent: applying fixups twice equals applying them once.
func TestFixupIdempotent(t *testing.T) {
	m := figure1Model()
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := m.GenerateRandom(r)
		once := n.Bytes()
		m.ApplyFixups(n)
		return bytes.Equal(once, n.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestFixupRepairsArbitraryMutation: after corrupting any non-structural
// leaf, ApplyFixups restores a packet that verifies.
func TestFixupRepairsArbitraryMutation(t *testing.T) {
	m := figure1Model()
	f := func(seed uint64, junk uint32) bool {
		r := rng.New(seed)
		n := m.GenerateRandom(r)
		// Corrupt a payload leaf, then repair.
		n.Find("SampleRate").SetUint(uint64(junk))
		m.ApplyFixups(n)
		return m.VerifyFixups(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeUintProperty: decodeUint inverts encodeUint for all widths
// and byte orders.
func TestEncodeDecodeUintProperty(t *testing.T) {
	f := func(v uint64, w uint8, little bool) bool {
		width := int(w%8) + 1
		e := Big
		if little {
			e = Little
		}
		masked := v & widthMask(width)
		return decodeUint(encodeUint(masked, width, e), e) == masked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCRCLinearityProperty: CRC16 variants detect all single-bit errors on
// short messages (a guaranteed property of any CRC with a non-trivial
// polynomial over messages shorter than its period).
func TestCRCLinearityProperty(t *testing.T) {
	f := func(data []byte, bit uint16) bool {
		if len(data) == 0 || len(data) > 64 {
			return true
		}
		i := int(bit) % (len(data) * 8)
		orig := CRC16ModbusSum(data)
		origDNP := CRC16DNPSum(data)
		mut := append([]byte(nil), data...)
		mut[i/8] ^= 1 << (i % 8)
		return CRC16ModbusSum(mut) != orig && CRC16DNPSum(mut) != origDNP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLenMatchesBytes: Node.Len always equals len(Node.Bytes()).
func TestLenMatchesBytes(t *testing.T) {
	m := figure1Model()
	f := func(seed uint64) bool {
		n := m.GenerateRandom(rng.New(seed))
		return n.Len() == len(n.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
