package datamodel

// Builder helpers. Target packages define their Pit-equivalent data models
// in Go; these constructors keep those definitions close to how a Pit file
// reads (cf. Fig. 1) while staying type-checked.

// Num returns a big-endian Number chunk of the given byte width.
func Num(name string, width int, def uint64) *Chunk {
	return &Chunk{Name: name, Kind: Number, Width: width, Default: def, Endian: Big}
}

// NumLE returns a little-endian Number chunk.
func NumLE(name string, width int, def uint64) *Chunk {
	return &Chunk{Name: name, Kind: Number, Width: width, Default: def, Endian: Little}
}

// Token marks a Number as the packet-type identifier (function code /
// opcode, §III) and returns it.
func (c *Chunk) AsToken() *Chunk {
	c.Token = true
	return c
}

// WithLegal restricts the Number to the given legal values.
func (c *Chunk) WithLegal(vals ...uint64) *Chunk {
	c.Legal = vals
	return c
}

// WithRel attaches a relation to the Number.
func (c *Chunk) WithRel(kind RelKind, of string, adjust int) *Chunk {
	c.Rel = &Relation{Kind: kind, Of: of, Adjust: adjust}
	return c
}

// WithFix attaches a checksum fixup.
func (c *Chunk) WithFix(kind FixKind, over ...string) *Chunk {
	c.Fix = &Fixup{Kind: kind, Over: over}
	return c
}

// Str returns a fixed-size String chunk.
func Str(name string, size int, def string) *Chunk {
	return &Chunk{Name: name, Kind: String, Size: size, DefaultBytes: []byte(def)}
}

// StrVar returns a variable-size String chunk bounded by [min, max].
func StrVar(name string, min, max int, def string) *Chunk {
	return &Chunk{Name: name, Kind: String, Size: Variable, MinSize: min, MaxSize: max, DefaultBytes: []byte(def)}
}

// Bytes returns a fixed-size Blob chunk.
func Bytes(name string, size int, def []byte) *Chunk {
	return &Chunk{Name: name, Kind: Blob, Size: size, DefaultBytes: def}
}

// BytesVar returns a variable-size Blob chunk bounded by [min, max].
func BytesVar(name string, min, max int, def []byte) *Chunk {
	return &Chunk{Name: name, Kind: Blob, Size: Variable, MinSize: min, MaxSize: max, DefaultBytes: def}
}

// Blk returns a Block over the given children.
func Blk(name string, children ...*Chunk) *Chunk {
	return &Chunk{Name: name, Kind: Block, Children: children}
}

// Alt returns a Choice over the given alternatives.
func Alt(name string, alternatives ...*Chunk) *Chunk {
	return &Chunk{Name: name, Kind: Choice, Children: alternatives}
}

// Rep returns an Array repeating the element prototype, bounded by maxCount
// during generation (0 = default bound).
func Rep(name string, element *Chunk, maxCount int) *Chunk {
	return &Chunk{Name: name, Kind: Array, Children: []*Chunk{element}, MaxCount: maxCount}
}

// NewModel assembles and validates a model, panicking on a malformed
// definition — model definitions are compile-time constants of the target
// packages, so a defect is a programming error.
func NewModel(name string, fields ...*Chunk) *Model {
	m := &Model{Name: name, Fields: fields}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}
