package datamodel

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/rng"
)

// figure1Model reproduces the simple data model M of the paper's Fig. 1:
// ID, Size (sizeof Data), Data{CompressionCode, SampleRate, ExtraData},
// CRC (Crc32Fixup over the preceding fields).
func figure1Model() *Model {
	return NewModel("M",
		Num("ID", 2, 0x5249),
		Num("Size", 2, 0).WithRel(SizeOf, "Data", 0),
		Blk("Data",
			Num("CompressionCode", 2, 1),
			Num("SampleRate", 4, 44100),
			BytesVar("ExtraData", 0, 16, []byte{0xde, 0xad}),
		),
		Num("CRC", 4, 0).WithFix(CRC32IEEE, "ID", "Size", "Data"),
	)
}

func TestFigure1ModelGenerate(t *testing.T) {
	m := figure1Model()
	n := m.Generate()
	pkt := n.Bytes()
	// ID(2) + Size(2) + CompressionCode(2) + SampleRate(4) + ExtraData(2) + CRC(4)
	if len(pkt) != 16 {
		t.Fatalf("packet length = %d, want 16", len(pkt))
	}
	if n.Find("Size").Uint() != 8 {
		t.Fatalf("Size = %d, want 8 (sizeof Data)", n.Find("Size").Uint())
	}
	if !m.VerifyFixups(n) {
		t.Fatal("generated packet must verify")
	}
}

func TestFigure1ModelCrackRoundTrip(t *testing.T) {
	m := figure1Model()
	pkt := m.Generate().Bytes()
	n, err := m.Crack(pkt)
	if err != nil {
		t.Fatalf("crack: %v", err)
	}
	if !bytes.Equal(n.Bytes(), pkt) {
		t.Fatal("crack/serialize round trip not identity")
	}
	if n.Find("SampleRate").Uint() != 44100 {
		t.Fatalf("SampleRate = %d", n.Find("SampleRate").Uint())
	}
}

func TestCrackRejectsBadChecksum(t *testing.T) {
	m := figure1Model()
	pkt := m.Generate().Bytes()
	pkt[len(pkt)-1] ^= 0xFF
	if _, err := m.Crack(pkt); !errors.Is(err, ErrCrack) {
		t.Fatalf("corrupted CRC should fail crack, got %v", err)
	}
}

func TestCrackRejectsTrailingBytes(t *testing.T) {
	m := NewModel("t", Num("a", 2, 7))
	if _, err := m.Crack([]byte{0, 7, 9}); !errors.Is(err, ErrCrack) {
		t.Fatalf("trailing byte should fail, got %v", err)
	}
}

func TestCrackRejectsShortPacket(t *testing.T) {
	m := NewModel("t", Num("a", 4, 0))
	if _, err := m.Crack([]byte{1, 2}); !errors.Is(err, ErrCrack) {
		t.Fatal("short packet should fail")
	}
}

func TestTokenMismatchFailsCrack(t *testing.T) {
	m := NewModel("t", Num("op", 1, 3).AsToken(), Num("x", 1, 0))
	if _, err := m.Crack([]byte{3, 9}); err != nil {
		t.Fatalf("matching token should crack: %v", err)
	}
	if _, err := m.Crack([]byte{4, 9}); !errors.Is(err, ErrCrack) {
		t.Fatal("wrong token should fail")
	}
}

func TestLegalSetEnforced(t *testing.T) {
	m := NewModel("t", Num("code", 1, 1).WithLegal(1, 2, 3))
	if _, err := m.Crack([]byte{2}); err != nil {
		t.Fatalf("legal value rejected: %v", err)
	}
	if _, err := m.Crack([]byte{9}); !errors.Is(err, ErrCrack) {
		t.Fatal("illegal value accepted")
	}
}

func TestVariableBlobSizeFromRelation(t *testing.T) {
	m := NewModel("t",
		Num("len", 1, 0).WithRel(SizeOf, "payload", 0),
		BytesVar("payload", 0, 64, nil),
		Num("tail", 1, 0xEE),
	)
	// len=3, payload=3 bytes, tail.
	n, err := m.Crack([]byte{3, 0xAA, 0xBB, 0xCC, 0xEE})
	if err != nil {
		t.Fatalf("crack: %v", err)
	}
	if !bytes.Equal(n.Find("payload").Data, []byte{0xAA, 0xBB, 0xCC}) {
		t.Fatalf("payload = %x", n.Find("payload").Data)
	}
	if n.Find("tail").Uint() != 0xEE {
		t.Fatal("tail misparsed")
	}
	// Size field lying about the payload length must fail (tail would
	// misalign and trailing bytes remain).
	if _, err := m.Crack([]byte{4, 0xAA, 0xBB, 0xCC, 0xEE}); !errors.Is(err, ErrCrack) {
		t.Fatal("inconsistent size accepted")
	}
}

func TestSizeRelationAdjust(t *testing.T) {
	// APCI-style: length counts payload plus 2 control bytes.
	m := NewModel("t",
		Num("len", 1, 0).WithRel(SizeOf, "payload", 2),
		BytesVar("payload", 0, 64, []byte{1, 2, 3}),
	)
	n := m.Generate()
	if n.Find("len").Uint() != 5 {
		t.Fatalf("len = %d, want 3+2", n.Find("len").Uint())
	}
	got, err := m.Crack(n.Bytes())
	if err != nil {
		t.Fatalf("crack adjusted size: %v", err)
	}
	if len(got.Find("payload").Data) != 3 {
		t.Fatalf("payload size = %d", len(got.Find("payload").Data))
	}
}

func TestChoiceCrackBacktracks(t *testing.T) {
	m := NewModel("t",
		Alt("body",
			Blk("a", Num("opA", 1, 1).AsToken(), Num("va", 2, 0)),
			Blk("b", Num("opB", 1, 2).AsToken(), Bytes("vb", 1, nil)),
		),
	)
	n, err := m.Crack([]byte{2, 0x77})
	if err != nil {
		t.Fatalf("crack alt b: %v", err)
	}
	if n.Find("vb") == nil || n.Find("va") != nil {
		t.Fatal("wrong alternative selected")
	}
	n, err = m.Crack([]byte{1, 0, 5})
	if err != nil {
		t.Fatalf("crack alt a: %v", err)
	}
	if n.Find("va") == nil {
		t.Fatal("alternative a not selected")
	}
	if _, err := m.Crack([]byte{9, 9}); !errors.Is(err, ErrCrack) {
		t.Fatal("no alternative should match opcode 9")
	}
}

func TestArrayWithCountRelation(t *testing.T) {
	m := NewModel("t",
		Num("n", 1, 0).WithRel(CountOf, "items", 0),
		Rep("items", Num("item", 2, 0), 8),
	)
	n, err := m.Crack([]byte{3, 0, 1, 0, 2, 0, 3})
	if err != nil {
		t.Fatalf("crack: %v", err)
	}
	items := n.Find("items")
	if len(items.Children) != 3 {
		t.Fatalf("items = %d, want 3", len(items.Children))
	}
	if items.Children[2].Find("item").Uint() != 3 {
		t.Fatal("third item misparsed")
	}
	if _, err := m.Crack([]byte{4, 0, 1, 0, 2, 0, 3}); !errors.Is(err, ErrCrack) {
		t.Fatal("count mismatch accepted")
	}
}

func TestArrayGreedy(t *testing.T) {
	m := NewModel("t", Rep("items", Num("item", 2, 0), 0))
	n, err := m.Crack([]byte{0, 1, 0, 2})
	if err != nil {
		t.Fatalf("crack: %v", err)
	}
	if len(n.Find("items").Children) != 2 {
		t.Fatalf("greedy array parsed %d elements", len(n.Find("items").Children))
	}
	// Odd remainder cannot be consumed -> trailing byte -> fail.
	if _, err := m.Crack([]byte{0, 1, 0xFF}); !errors.Is(err, ErrCrack) {
		t.Fatal("trailing half-element accepted")
	}
}

func TestOffsetOfRelation(t *testing.T) {
	m := NewModel("t",
		Num("off", 1, 0).WithRel(OffsetOf, "tail", 0),
		Bytes("mid", 3, []byte{1, 2, 3}),
		Bytes("tail", 2, []byte{9, 9}),
	)
	n := m.Generate()
	if n.Find("off").Uint() != 4 {
		t.Fatalf("offset = %d, want 4", n.Find("off").Uint())
	}
}

func TestEndianness(t *testing.T) {
	be := NewModel("be", Num("v", 2, 0x0102))
	le := NewModel("le", NumLE("v", 2, 0x0102))
	if !bytes.Equal(be.Generate().Bytes(), []byte{1, 2}) {
		t.Fatal("big endian encoding wrong")
	}
	if !bytes.Equal(le.Generate().Bytes(), []byte{2, 1}) {
		t.Fatal("little endian encoding wrong")
	}
	n, err := le.Crack([]byte{2, 1})
	if err != nil || n.Find("v").Uint() != 0x0102 {
		t.Fatal("little endian decode wrong")
	}
}

func TestCRC16Modbus(t *testing.T) {
	// Known vector: Modbus frame 01 03 00 00 00 0A has CRC 0xCDC5
	// (transmitted C5 CD).
	crc := CRC16ModbusSum([]byte{0x01, 0x03, 0x00, 0x00, 0x00, 0x0A})
	if crc != 0xCDC5 {
		t.Fatalf("modbus crc = %04x, want cdc5", crc)
	}
}

func TestCRC16DNPKnownVector(t *testing.T) {
	// DNP3 header 05 64 05 C9 01 00 00 04 has CRC 0xEAE9 on the wire
	// (bytes E9 EA little-endian). We assert self-consistency plus the
	// complement property: appending the CRC little-endian and
	// recomputing over data||crc yields a fixed residue for this code.
	data := []byte{0x05, 0x64, 0x05, 0xC9, 0x01, 0x00, 0x00, 0x04}
	crc := CRC16DNPSum(data)
	if crc == 0 || crc == 0xFFFF {
		t.Fatalf("degenerate dnp crc %04x", crc)
	}
	// One-bit corruption must change the CRC.
	data[3] ^= 1
	if CRC16DNPSum(data) == crc {
		t.Fatal("dnp crc ignored a bit flip")
	}
}

func TestLRCAndSum8(t *testing.T) {
	if Checksum(Sum8, []byte{1, 2, 3}) != 6 {
		t.Fatal("sum8 wrong")
	}
	// LRC: two's complement of sum; sum+LRC == 0 mod 256.
	lrc := Checksum(LRC, []byte{0x10, 0x20, 0xF0})
	var sum byte
	for _, b := range []byte{0x10, 0x20, 0xF0} {
		sum += b
	}
	if sum+byte(lrc) != 0 {
		t.Fatalf("lrc property violated: %02x", lrc)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []*Model{
		{Name: "", Fields: []*Chunk{Num("a", 1, 0)}},
		{Name: "w", Fields: []*Chunk{{Name: "a", Kind: Number, Width: 9}}},
		{Name: "b", Fields: []*Chunk{{Name: "a", Kind: Block}}},
		{Name: "r", Fields: []*Chunk{Num("a", 1, 0).WithRel(SizeOf, "nope", 0)}},
		{Name: "f", Fields: []*Chunk{Num("a", 1, 0).WithFix(CRC32IEEE, "nope")}},
		{Name: "arr", Fields: []*Chunk{{Name: "a", Kind: Array, Children: []*Chunk{Num("x", 1, 0), Num("y", 1, 0)}}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d should fail validation", i)
		}
	}
	if err := figure1Model().Validate(); err != nil {
		t.Fatalf("figure 1 model should validate: %v", err)
	}
}

func TestGenerateRandomIsLegal(t *testing.T) {
	m := figure1Model()
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		n := m.GenerateRandom(r)
		if !m.VerifyFixups(n) {
			t.Fatal("random instance must verify fixups")
		}
		if _, err := m.Crack(n.Bytes()); err != nil {
			t.Fatalf("random instance must crack against its own model: %v", err)
		}
	}
}

func TestGenerateRandomRespectsLegalSet(t *testing.T) {
	m := NewModel("t", Num("code", 1, 1).WithLegal(1, 3, 5))
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		v := m.GenerateRandom(r).Find("code").Uint()
		if v != 1 && v != 3 && v != 5 {
			t.Fatalf("illegal generated value %d", v)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := figure1Model()
	n := m.Generate()
	c := n.Clone()
	c.Find("SampleRate").SetUint(1)
	if n.Find("SampleRate").Uint() == 1 {
		t.Fatal("clone shares data with original")
	}
}

func TestLinearizeDefaultOrder(t *testing.T) {
	m := figure1Model()
	lin := m.LinearizeDefault()
	names := make([]string, len(lin))
	for i, c := range lin {
		names[i] = c.Name
	}
	want := []string{"ID", "Size", "CompressionCode", "SampleRate", "ExtraData", "CRC"}
	if len(names) != len(want) {
		t.Fatalf("linearization = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("linearization[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestRuleSignatureInterchangeability(t *testing.T) {
	a := Num("addr", 2, 0)
	b := Num("addr", 2, 7) // same rule in another model: same signature
	if RuleSignature(a) != RuleSignature(b) {
		t.Fatal("same-named, same-shape numbers must share a signature across models")
	}
	if RuleSignature(Num("addr", 2, 0)) == RuleSignature(Num("version", 2, 0)) {
		t.Fatal("numbers with different roles must not be interchangeable")
	}
	blobA, blobB := Bytes("objects", 4, nil), Bytes("asdu", 4, nil)
	if RuleSignature(blobA) != RuleSignature(blobB) {
		t.Fatal("same-shape blobs are interchangeable regardless of name")
	}
	if RuleSignature(Num("x", 2, 0)) == RuleSignature(NumLE("x", 2, 0)) {
		t.Fatal("endianness must split signatures")
	}
	if RuleSignature(Num("x", 2, 0)) == RuleSignature(Num("x", 4, 0)) {
		t.Fatal("width must split signatures")
	}
	if RuleSignature(Num("x", 1, 1).AsToken()) == RuleSignature(Num("y", 1, 2).AsToken()) {
		t.Fatal("tokens with different values must not be interchangeable")
	}
	if Donatable(Num("crc", 4, 0).WithFix(CRC32IEEE, "x")) {
		t.Fatal("fixup fields are not donatable")
	}
	if Donatable(Num("len", 2, 0).WithRel(SizeOf, "x", 0)) {
		t.Fatal("relation fields are not donatable")
	}
	if !Donatable(Bytes("payload", 4, nil)) {
		t.Fatal("plain blobs are donatable")
	}
}

func TestOpcodeExtraction(t *testing.T) {
	m := NewModel("t", Num("hdr", 1, 0), Num("fc", 1, 6).AsToken(), Num("x", 1, 0))
	v, ok := m.Opcode()
	if !ok || v != 6 {
		t.Fatalf("opcode = %d,%v", v, ok)
	}
	m2 := NewModel("t2", Num("a", 1, 0))
	if _, ok := m2.Opcode(); ok {
		t.Fatal("model without token should report no opcode")
	}
}

func TestUintPanicsOnNonNumber(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint on blob should panic")
		}
	}()
	(&Node{Chunk: Bytes("b", 1, nil), Data: []byte{1}}).Uint()
}

func TestNodeStringFormat(t *testing.T) {
	m := NewModel("t", Num("a", 1, 7), Bytes("b", 2, []byte{0xAB, 0xCD}))
	s := m.Generate().String()
	if s != "t{a=7 b=abcd}" {
		t.Fatalf("String() = %q", s)
	}
}
