package datamodel

import (
	"fmt"
	"strings"
)

// Linearize flattens the model tree into the linear model M_L of §III /
// Fig. 2(a): the leaf construction rules in wire order. Choice nodes
// contribute one linearization per alternative combination; to keep the
// result finite and aligned with how the engine uses it (one concrete
// packet shape at a time), LinearizeDefault picks the first alternative of
// every choice and a single array element, matching Generate.
func (m *Model) LinearizeDefault() []*Chunk {
	var out []*Chunk
	var rec func(c *Chunk)
	rec = func(c *Chunk) {
		switch c.Kind {
		case Number, String, Blob:
			out = append(out, c)
		case Block:
			for _, ch := range c.Children {
				rec(ch)
			}
		case Choice:
			rec(c.Children[0])
		case Array:
			rec(c.Children[0])
		}
	}
	rec(m.root())
	return out
}

// LinearizeInstance flattens an instance tree into (rule, data) pairs in
// wire order. Unlike LinearizeDefault this follows the shape the instance
// actually took: the chosen alternative of each choice and every array
// element.
func LinearizeInstance(root *Node) []*Node {
	return root.Leaves(nil)
}

// RuleSignature computes the construction-rule identity of a chunk: two
// chunks with equal signatures "conform to similar/same construction rules"
// in the sense of §III, making their instantiations interchangeable donor
// material. The signature captures the data type, width/size class,
// endianness, and the constraints that affect interchangeability; it
// deliberately omits the chunk's name and model, because cross-model
// donation is the whole point (Fig. 2's α1/α2 rule similarity).
//
// Fields whose content is recomputed by File Fixup (relations, fixups) and
// token fields (they define the packet type) are not donor-compatible with
// anything; they get a unique non-donatable signature.
func RuleSignature(c *Chunk) string {
	if c.sig != "" {
		return c.sig // precomputed by Model.Validate; no allocation
	}
	return computeRuleSignature(c)
}

// computeRuleSignature builds the signature string; see RuleSignature.
func computeRuleSignature(c *Chunk) string {
	if c.Fix != nil || c.Rel != nil {
		return fmt.Sprintf("fixed/%s/%s", c.Kind, c.Name)
	}
	if c.Kind == Number && c.Token {
		return fmt.Sprintf("token/%d/%d", c.Width, c.Default)
	}
	switch c.Kind {
	case Number:
		legal := ""
		if len(c.Legal) > 0 {
			// The legal set constrains interchangeability: a donor
			// must have been produced under the same constraint.
			parts := make([]string, len(c.Legal))
			for i, v := range c.Legal {
				parts[i] = fmt.Sprintf("%d", v)
			}
			legal = "/legal:" + strings.Join(parts, ",")
		}
		e := "be"
		if c.Endian == Little {
			e = "le"
		}
		// A number's name is part of its construction rule: "addr" in
		// one packet type and "addr" in another instantiate the same
		// rule (the write-register/write-coil example of §III), while
		// two same-width numbers with different roles (a version
		// octet, a header length) do not — donating across roles
		// destroys the validity Algorithm 3 exists to preserve.
		return fmt.Sprintf("num/%s/w%d/%s%s", c.Name, c.Width, e, legal)
	case String:
		return fmt.Sprintf("str/%s", sizeClass(c))
	case Blob:
		return fmt.Sprintf("blob/%s", sizeClass(c))
	default:
		return fmt.Sprintf("node/%s", c.Kind)
	}
}

// sizeClass buckets String/Blob sizes so that a donor of a compatible size
// range can fill a field even when exact sizes differ (File Fixup repairs
// the size relations afterwards).
func sizeClass(c *Chunk) string {
	if c.Size != Variable {
		return fmt.Sprintf("fix%d", c.Size)
	}
	max := maxSize(c)
	switch {
	case max <= 8:
		return "var-small"
	case max <= 64:
		return "var-mid"
	default:
		return "var-large"
	}
}

// Donatable reports whether a chunk accepts donor puzzles at all.
func Donatable(c *Chunk) bool {
	return c.Fix == nil && c.Rel == nil && !(c.Kind == Number && c.Token)
}
