package datamodel

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Node is one node of an instantiation tree (Definition 1): the same shape
// as the model tree, but with leaves carrying realistic data bytes instead
// of construction rules.
//
// Nodes are always used through pointers; copying a Node value whose Data
// aliases its inline store would leave the copy's Data pointing at the
// original.
type Node struct {
	Chunk    *Chunk
	Data     []byte  // leaf payload (Number: Width bytes in wire order)
	Children []*Node // interior node children
	// store inlines short leaf payloads — every Number leaf (≤ 8 wire
	// bytes) encodes here instead of a heap slice, so SetUint and the
	// fixup pass allocate nothing.
	store [8]byte
}

// IsLeaf reports whether the node carries data directly.
func (n *Node) IsLeaf() bool {
	k := n.Chunk.Kind
	return k == Number || k == String || k == Blob
}

// Bytes renders the subtree to wire bytes by in-order concatenation of leaf
// data — the JOINT operation of Algorithms 1 and 2. One buffer is pre-sized
// via Len, so rendering is a single allocation regardless of depth.
func (n *Node) Bytes() []byte {
	return n.AppendTo(make([]byte, 0, n.Len()))
}

// AppendTo appends the subtree's wire bytes to dst and returns it — the
// allocation-free JOINT: callers render into a reused or pre-sized buffer
// (see Len) instead of paying the per-level append cascade Bytes once did.
//
//peachstar:hotpath
func (n *Node) AppendTo(dst []byte) []byte {
	if n.IsLeaf() {
		return append(dst, n.Data...)
	}
	for _, c := range n.Children {
		dst = c.AppendTo(dst)
	}
	return dst
}

// Len returns the serialized byte length of the subtree without allocating
// the bytes.
func (n *Node) Len() int {
	if n.IsLeaf() {
		return len(n.Data)
	}
	total := 0
	for _, c := range n.Children {
		total += c.Len()
	}
	return total
}

// Clone deep-copies the subtree onto the heap.
func (n *Node) Clone() *Node { return n.CloneInto(nil) }

// CloneInto deep-copies the subtree, drawing nodes, child slices and leaf
// bytes from the arena (nil means the heap). Short leaf payloads land in
// the clone's inline store. The clone shares nothing with the original, so
// arena-backed clones of retained instances are safe to mutate and discard.
//
//peachstar:hotpath
func (n *Node) CloneInto(a *Arena) *Node {
	out := a.Node()
	out.Chunk = n.Chunk
	if n.Data != nil {
		if len(n.Data) <= len(out.store) {
			out.Data = out.store[:len(n.Data)]
		} else {
			out.Data = a.Bytes(len(n.Data))
		}
		copy(out.Data, n.Data)
	}
	if len(n.Children) > 0 {
		out.Children = a.Children(len(n.Children))
		for _, c := range n.Children {
			out.Children = append(out.Children, c.CloneInto(a))
		}
	}
	return out
}

// Find returns the first node in document order whose chunk has the given
// name, or nil.
func (n *Node) Find(name string) *Node {
	if n.Chunk.Name == name {
		return n
	}
	for _, c := range n.Children {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}

// Uint decodes a Number leaf's data according to its width and endianness.
// It panics on non-Number nodes (a programming error, not a data error).
func (n *Node) Uint() uint64 {
	if n.Chunk.Kind != Number {
		panic(fmt.Sprintf("datamodel: Uint on %s node %q", n.Chunk.Kind, n.Chunk.Name))
	}
	return decodeUint(n.Data, n.Chunk.Endian)
}

// SetUint encodes v into the Number leaf's data, in place into the node's
// inline store — no allocation. The leaf's Data is repointed at the store,
// detaching it from whatever backing (cracked bytes, a donor puzzle) it had
// before, so the previous backing is never written through.
func (n *Node) SetUint(v uint64) {
	if n.Chunk.Kind != Number {
		panic(fmt.Sprintf("datamodel: SetUint on %s node %q", n.Chunk.Kind, n.Chunk.Name))
	}
	w := n.Chunk.Width
	if w > len(n.store) {
		n.Data = encodeUint(v, w, n.Chunk.Endian)
		return
	}
	n.Data = n.store[:w]
	putUint(n.Data, v, n.Chunk.Endian)
}

// Leaves appends all leaf nodes in document order to dst and returns it.
func (n *Node) Leaves(dst []*Node) []*Node {
	if n.IsLeaf() {
		return append(dst, n)
	}
	for _, c := range n.Children {
		dst = c.Leaves(dst)
	}
	return dst
}

// String renders a compact single-line description of the subtree, intended
// for debugging and crash reports.
func (n *Node) String() string {
	var b strings.Builder
	n.describe(&b)
	return b.String()
}

func (n *Node) describe(b *strings.Builder) {
	if n.IsLeaf() {
		if n.Chunk.Kind == Number {
			fmt.Fprintf(b, "%s=%d", n.Chunk.Name, n.Uint())
		} else {
			fmt.Fprintf(b, "%s=%x", n.Chunk.Name, n.Data)
		}
		return
	}
	fmt.Fprintf(b, "%s{", n.Chunk.Name)
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		c.describe(b)
	}
	b.WriteByte('}')
}

// encodeUint renders v as width bytes in the given byte order.
func encodeUint(v uint64, width int, e Endian) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	out := make([]byte, width)
	copy(out, tmp[8-width:])
	if e == Little {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// putUint encodes v's low len(dst) bytes into dst in the given byte order —
// the in-place form of encodeUint for pre-sized destinations (≤ 8 bytes).
func putUint(dst []byte, v uint64, e Endian) {
	if e == Big {
		for i := len(dst) - 1; i >= 0; i-- {
			dst[i] = byte(v)
			v >>= 8
		}
	} else {
		for i := range dst {
			dst[i] = byte(v)
			v >>= 8
		}
	}
}

// decodeUint is the inverse of encodeUint.
func decodeUint(data []byte, e Endian) uint64 {
	var v uint64
	if e == Big {
		for _, b := range data {
			v = v<<8 | uint64(b)
		}
	} else {
		for i := len(data) - 1; i >= 0; i-- {
			v = v<<8 | uint64(data[i])
		}
	}
	return v
}
