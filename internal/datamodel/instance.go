package datamodel

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Node is one node of an instantiation tree (Definition 1): the same shape
// as the model tree, but with leaves carrying realistic data bytes instead
// of construction rules.
type Node struct {
	Chunk    *Chunk
	Data     []byte  // leaf payload (Number: Width bytes in wire order)
	Children []*Node // interior node children
}

// IsLeaf reports whether the node carries data directly.
func (n *Node) IsLeaf() bool {
	k := n.Chunk.Kind
	return k == Number || k == String || k == Blob
}

// Bytes renders the subtree to wire bytes by in-order concatenation of leaf
// data — the JOINT operation of Algorithms 1 and 2.
func (n *Node) Bytes() []byte {
	if n.IsLeaf() {
		out := make([]byte, len(n.Data))
		copy(out, n.Data)
		return out
	}
	var out []byte
	for _, c := range n.Children {
		out = append(out, c.Bytes()...)
	}
	return out
}

// Len returns the serialized byte length of the subtree without allocating
// the bytes.
func (n *Node) Len() int {
	if n.IsLeaf() {
		return len(n.Data)
	}
	total := 0
	for _, c := range n.Children {
		total += c.Len()
	}
	return total
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	out := &Node{Chunk: n.Chunk}
	if n.Data != nil {
		out.Data = make([]byte, len(n.Data))
		copy(out.Data, n.Data)
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.Clone())
	}
	return out
}

// Find returns the first node in document order whose chunk has the given
// name, or nil.
func (n *Node) Find(name string) *Node {
	if n.Chunk.Name == name {
		return n
	}
	for _, c := range n.Children {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}

// Uint decodes a Number leaf's data according to its width and endianness.
// It panics on non-Number nodes (a programming error, not a data error).
func (n *Node) Uint() uint64 {
	if n.Chunk.Kind != Number {
		panic(fmt.Sprintf("datamodel: Uint on %s node %q", n.Chunk.Kind, n.Chunk.Name))
	}
	return decodeUint(n.Data, n.Chunk.Endian)
}

// SetUint encodes v into the Number leaf's data.
func (n *Node) SetUint(v uint64) {
	if n.Chunk.Kind != Number {
		panic(fmt.Sprintf("datamodel: SetUint on %s node %q", n.Chunk.Kind, n.Chunk.Name))
	}
	n.Data = encodeUint(v, n.Chunk.Width, n.Chunk.Endian)
}

// Leaves appends all leaf nodes in document order to dst and returns it.
func (n *Node) Leaves(dst []*Node) []*Node {
	if n.IsLeaf() {
		return append(dst, n)
	}
	for _, c := range n.Children {
		dst = c.Leaves(dst)
	}
	return dst
}

// String renders a compact single-line description of the subtree, intended
// for debugging and crash reports.
func (n *Node) String() string {
	var b strings.Builder
	n.describe(&b)
	return b.String()
}

func (n *Node) describe(b *strings.Builder) {
	if n.IsLeaf() {
		if n.Chunk.Kind == Number {
			fmt.Fprintf(b, "%s=%d", n.Chunk.Name, n.Uint())
		} else {
			fmt.Fprintf(b, "%s=%x", n.Chunk.Name, n.Data)
		}
		return
	}
	fmt.Fprintf(b, "%s{", n.Chunk.Name)
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		c.describe(b)
	}
	b.WriteByte('}')
}

// encodeUint renders v as width bytes in the given byte order.
func encodeUint(v uint64, width int, e Endian) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	out := make([]byte, width)
	copy(out, tmp[8-width:])
	if e == Little {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// decodeUint is the inverse of encodeUint.
func decodeUint(data []byte, e Endian) uint64 {
	var v uint64
	if e == Big {
		for _, b := range data {
			v = v<<8 | uint64(b)
		}
	} else {
		for i := len(data) - 1; i >= 0; i-- {
			v = v<<8 | uint64(data[i])
		}
	}
	return v
}
