package datamodel

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

// fuzzModels is the structurally diverse model set the native fuzz targets
// exercise: the paper's Fig. 1 model plus a relation/fixup chain and a
// choice-array model — every chunk kind, relation and checksum the cracker
// and generator support.
func fuzzModels() []*Model {
	return []*Model{
		figure1Model(),
		NewModel("rel-chain",
			Num("op", 1, 0x10).AsToken(),
			Num("len", 2, 0).WithRel(SizeOf, "body", 0),
			Blk("body",
				Num("addr", 2, 0),
				BytesVar("data", 1, 32, []byte{1}),
			),
			Num("crc", 2, 0).WithFix(CRC16Modbus, "op", "len", "body"),
		),
		NewModel("choice-arr",
			Num("n", 1, 0).WithRel(CountOf, "items", 0),
			Rep("items", Blk("item", Num("t", 1, 0).WithLegal(1, 2), Num("v", 2, 0)), 6),
		),
	}
}

// FuzzCrack feeds arbitrary bytes to the cracker of every fuzz model. The
// invariants of Algorithm 2 under hostile input: cracking never panics, and
// any packet the cracker accepts re-serializes to exactly the bytes it
// consumed (otherwise puzzles collected from it would misrepresent the wire
// content). Applying fixups to a cracked instance must also never panic —
// the engine does exactly that to every valuable seed.
func FuzzCrack(f *testing.F) {
	for _, m := range fuzzModels() {
		f.Add(m.Generate().Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0x10, 0x00, 0x01, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, m := range fuzzModels() {
			ins, err := m.Crack(data)
			if err != nil {
				continue
			}
			if got := ins.Bytes(); !bytes.Equal(got, data) {
				t.Fatalf("%s: crack accepted %x but re-serializes to %x", m.Name, data, got)
			}
			m.ApplyFixups(ins)
			if got := len(ins.Bytes()); got == 0 && len(data) > 0 {
				t.Fatalf("%s: fixup collapsed a %d-byte packet to nothing", m.Name, len(data))
			}
		}
	})
}

// FuzzGenerate drives random generation from arbitrary RNG seeds. The
// invariants of Algorithm 3's output: generation and fixup never panic,
// fixups are idempotent (sizes and checksums converge in one pass), and the
// fixed-up packet always cracks back against its own model with identical
// bytes — generated seeds must be legal inputs to the cracker, or the
// crack–generate feedback cycle would leak.
func FuzzGenerate(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(1))
	f.Add(^uint64(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, which uint8) {
		models := fuzzModels()
		m := models[int(which)%len(models)]
		r := rng.New(seed)
		ins := m.GenerateRandom(r)
		m.ApplyFixups(ins)
		pkt := ins.Bytes()
		if !m.VerifyFixups(ins) {
			t.Fatalf("%s: fixups not satisfied after ApplyFixups (pkt %x)", m.Name, pkt)
		}
		m.ApplyFixups(ins)
		if again := ins.Bytes(); !bytes.Equal(again, pkt) {
			t.Fatalf("%s: fixup not idempotent: %x then %x", m.Name, pkt, again)
		}
		back, err := m.Crack(pkt)
		if err != nil {
			t.Fatalf("%s: generated packet does not crack: %v (pkt %x)", m.Name, err, pkt)
		}
		if got := back.Bytes(); !bytes.Equal(got, pkt) {
			t.Fatalf("%s: crack(generate) round-trip %x -> %x", m.Name, pkt, got)
		}
	})
}

// FuzzCrackSeedCorpusBytes widens FuzzCrack's reach: interpret the input as
// a seed and mutate a legally generated packet at one position, which keeps
// the fuzzer near the accept/reject boundary where cracker bugs live.
func FuzzCrackSeedCorpusBytes(f *testing.F) {
	f.Add(uint64(3), uint16(0), uint8(0xFF))
	f.Fuzz(func(t *testing.T, seed uint64, pos uint16, val uint8) {
		models := fuzzModels()
		m := models[int(seed)%len(models)]
		r := rng.New(seed)
		ins := m.GenerateRandom(r)
		m.ApplyFixups(ins)
		pkt := ins.Bytes()
		if len(pkt) == 0 {
			return
		}
		pkt[int(pos)%len(pkt)] = val
		got, err := m.Crack(pkt)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Bytes(), pkt) {
			t.Fatalf("%s: accepted mutated packet %x re-serializes differently", m.Name, pkt)
		}
	})
}
