// Package checkpoint is the canonical binary codec behind durable campaign
// checkpoints: the versioned Snapshot/Restore seam every stateful layer of
// the engine (coverage, corpus, crash bank, scheduler, session state, fleet
// counters) serializes itself through.
//
// The format follows the same discipline as the session sequence codec
// (internal/session): a fixed magic and version lead the envelope, every
// integer is a minimally-encoded unsigned varint (non-minimal encodings are
// rejected, so decoding is canonical — every accepted buffer re-encodes to
// itself byte for byte), lengths are validated against the remaining input
// before any allocation, and trailing bytes are an error. Canonical
// encoding is what makes the round-trip golden test possible: snapshot →
// restore → snapshot must reproduce the identical byte string.
//
// Decoding never panics on hostile input: the Reader carries a sticky
// error, every accessor degrades to a zero value once it is set, and the
// fuzz target (FuzzCheckpointDecode) pins that property over truncated,
// corrupt and non-minimal inputs.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Magic leads every checkpoint file ("Peach* ChecKpoint").
const Magic = "PSCK"

// Version is the checkpoint envelope version. Restore rejects any other
// value, so the format can evolve without a flag day.
const Version = 1

// Writer accumulates a canonical binary encoding. The zero value is ready
// to use; Data returns the accumulated bytes.
type Writer struct {
	buf []byte
}

// Data returns the accumulated encoding.
func (w *Writer) Data() []byte { return w.buf }

// Len returns the number of bytes accumulated so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uvarint appends one minimally-encoded unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Int appends one non-negative integer as a uvarint. Negative values are a
// programmer error — counters and cursors snapshotted through Int are
// non-negative by construction — and panic rather than corrupt the stream.
func (w *Writer) Int(v int) {
	if v < 0 {
		panic(fmt.Sprintf("checkpoint: Int(%d) is negative", v))
	}
	w.Uvarint(uint64(v))
}

// U64 appends one fixed-width little-endian 64-bit value — for hashes and
// RNG state words, where varint coding would save nothing.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Blob appends a length-prefixed byte string.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Bool appends one canonical boolean byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Reader decodes a canonical binary encoding with a sticky error: the
// first malformed field fails the whole decode, every later accessor
// returns a zero value, and Err reports what went wrong. Readers never
// panic on malformed input.
type Reader struct {
	data []byte
	err  error
}

// NewReader returns a reader over data. The reader aliases the slice;
// accessors that return bytes copy out.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.data) }

// fail records the first decode error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// Fail records a caller-diagnosed decode error — a value that read cleanly
// but is semantically out of range for the layer decoding it. Like the
// codec's own errors it is sticky: only the first failure is kept, and
// every subsequent read returns zero values.
func (r *Reader) Fail(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// Uvarint reads one minimally-encoded unsigned varint, rejecting
// non-minimal encodings (0x80 0x00 for zero, and so on) and overflow.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, used := binary.Uvarint(r.data)
	if used <= 0 || (used > 1 && r.data[used-1] == 0) {
		r.fail("bad varint")
		return 0
	}
	r.data = r.data[used:]
	return v
}

// Int reads one non-negative integer.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if r.err == nil && v > uint64(math.MaxInt64) {
		r.fail("integer %d overflows int", v)
		return 0
	}
	return int(v)
}

// Count reads an element count and validates it against the remaining
// input: every encoded element costs at least one byte, so a count larger
// than the remainder is corrupt. Validating here lets restore loops
// pre-size slices without a hostile length prefix allocating unbounded
// memory.
func (r *Reader) Count() int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.data)) {
		r.fail("count %d exceeds %d remaining bytes", v, len(r.data))
		return 0
	}
	return int(v)
}

// U64 reads one fixed-width little-endian 64-bit value.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v
}

// Blob reads one length-prefixed byte string, copied out of the input. A
// zero-length blob decodes to nil, matching what Writer.Blob(nil) encoded.
func (r *Reader) Blob() []byte {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[:n])
	r.data = r.data[n:]
	return out
}

// String reads one length-prefixed string.
func (r *Reader) String() string {
	n := r.Count()
	if r.err != nil {
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

// Bool reads one canonical boolean byte; any value other than 0 or 1 is
// rejected, keeping the encoding canonical.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.data) == 0 {
		r.fail("truncated bool")
		return false
	}
	b := r.data[0]
	if b > 1 {
		r.fail("non-canonical bool byte %#x", b)
		return false
	}
	r.data = r.data[1:]
	return b == 1
}

// Finish asserts the input was fully consumed and returns the decode
// result: the sticky error, or an error for trailing bytes.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("checkpoint: %d trailing bytes", len(r.data))
	}
	return nil
}

// Section is one framed region of a checkpoint envelope: a numeric ID (the
// composing layer assigns meaning) and the section's body.
type Section struct {
	// ID tags the section's kind.
	ID uint64
	// Body is the section's encoded payload.
	Body []byte
}

// Seal builds a checkpoint envelope: magic, version byte, the campaign's
// 64-bit rule-signature digest (restore refuses a checkpoint taken under
// different data models), then a section count and per-section uvarint ID +
// length-prefixed body.
func Seal(digest uint64, sections []Section) []byte {
	var w Writer
	w.buf = append(w.buf, Magic...)
	w.buf = append(w.buf, Version)
	w.U64(digest)
	w.Uvarint(uint64(len(sections)))
	for _, s := range sections {
		w.Uvarint(s.ID)
		w.Blob(s.Body)
	}
	return w.Data()
}

// Open parses a Seal-produced envelope, returning the digest and the
// sections (bodies copied out of data). Unknown magic or version,
// truncation, non-minimal varints and trailing bytes are errors.
func Open(data []byte) (digest uint64, sections []Section, err error) {
	if len(data) < len(Magic)+1 {
		return 0, nil, fmt.Errorf("checkpoint: truncated envelope")
	}
	if string(data[:len(Magic)]) != Magic {
		return 0, nil, fmt.Errorf("checkpoint: bad magic")
	}
	if v := data[len(Magic)]; v != Version {
		return 0, nil, fmt.Errorf("checkpoint: unknown version %d", v)
	}
	r := NewReader(data[len(Magic)+1:])
	digest = r.U64()
	n := r.Count()
	sections = make([]Section, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := r.Uvarint()
		body := r.Blob()
		sections = append(sections, Section{ID: id, Body: body})
	}
	if err := r.Finish(); err != nil {
		return 0, nil, err
	}
	return digest, sections, nil
}

// WriteFileAtomic writes data to path crash-safely: the bytes land in a
// temporary file in the same directory, are synced to disk, and replace
// path with a single rename — a reader (or a warm restart after a kill
// mid-write) sees either the previous checkpoint or the new one, never a
// torn mix.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
