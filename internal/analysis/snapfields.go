package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// checkpointPackage hosts the Writer/Reader codec types that identify a
// Snapshot/Restore method pair.
const checkpointPackage = "repro/internal/checkpoint"

// Snapfields enforces complete checkpoint-codec coverage: for every type
// with a hand-written Snapshot(*checkpoint.Writer)/Restore(*checkpoint.Reader)
// pair (any of the repo's naming conventions: Snapshot/Restore,
// SnapshotState/RestoreState, snapshot/restore), every stored field must be
// referenced by both sides of the codec or carry //peachstar:nosnap
// <reason>. A field added to a checkpointed struct but not to its codec is
// exactly the silent warm-restart drift PR 9's runtime goldens can only
// catch after the fact; snapfields makes it a build failure. sync.Mutex and
// sync.RWMutex fields are exempt — locks are never checkpointed.
var Snapfields = &Analyzer{
	Name: "snapfields",
	Doc:  "every field of a checkpointed type must be covered by both Snapshot and Restore or marked //peachstar:nosnap",
	Run:  runSnapfields,
}

// codecPair is one type's snapshot/restore method pair.
type codecPair struct {
	typeName string
	snapshot *ast.FuncDecl
	restore  *ast.FuncDecl
}

func runSnapfields(pass *Pass) {
	pairs := map[string]*codecPair{}
	// methodsByType lets the reference walk follow same-receiver helper
	// calls (e.g. Snapshot -> snapStreams).
	methodsByType := map[string]map[string]*ast.FuncDecl{}
	var funcs []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			funcs = append(funcs, fn)
			recv := receiverBaseType(fn)
			if recv == "" {
				continue
			}
			if methodsByType[recv] == nil {
				methodsByType[recv] = map[string]*ast.FuncDecl{}
			}
			methodsByType[recv][fn.Name.Name] = fn
			role := codecRole(pass, fn)
			if role == "" {
				continue
			}
			p := pairs[recv]
			if p == nil {
				p = &codecPair{typeName: recv}
				pairs[recv] = p
			}
			if role == "snapshot" {
				p.snapshot = fn
			} else {
				p.restore = fn
			}
		}
	}

	names := make([]string, 0, len(pairs))
	for n := range pairs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		p := pairs[name]
		if p.snapshot == nil || p.restore == nil {
			// A lone half is legal (e.g. a type that only serialises);
			// drift enforcement needs both sides.
			continue
		}
		checkCodecPair(pass, p, methodsByType[name])
	}
}

// codecRole classifies fn as the "snapshot" or "restore" half of a
// checkpoint codec, or "" if it is neither: the name must match the
// convention and a parameter must be *checkpoint.Writer (snapshot) or
// *checkpoint.Reader (restore).
func codecRole(pass *Pass, fn *ast.FuncDecl) string {
	base := strings.TrimSuffix(strings.ToLower(fn.Name.Name), "state")
	switch base {
	case "snapshot":
		if hasParamOfType(pass, fn, "Writer") {
			return "snapshot"
		}
	case "restore":
		if hasParamOfType(pass, fn, "Reader") {
			return "restore"
		}
	}
	return ""
}

// hasParamOfType reports whether fn has a parameter of type
// *checkpoint.<name>.
func hasParamOfType(pass *Pass, fn *ast.FuncDecl, name string) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == checkpointPackage {
			return true
		}
	}
	return false
}

func checkCodecPair(pass *Pass, p *codecPair, methods map[string]*ast.FuncDecl) {
	obj := pass.Pkg.Scope().Lookup(p.typeName)
	if obj == nil {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fieldSet := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		fieldSet[st.Field(i)] = true
	}
	snapRefs := referencedFields(pass, p.snapshot, methods, fieldSet)
	restRefs := referencedFields(pass, p.restore, methods, fieldSet)

	astFields := structASTFields(pass, p.typeName)
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if snapRefs[fv] && restRefs[fv] {
			continue
		}
		if isMutexType(fv.Type()) {
			continue
		}
		af := astFields[fv.Name()]
		if af != nil && pass.FieldHasDirective(af, DirNoSnap) {
			continue
		}
		var missing string
		switch {
		case !snapRefs[fv] && !restRefs[fv]:
			missing = p.snapshot.Name.Name + " or " + p.restore.Name.Name
		case !snapRefs[fv]:
			missing = p.snapshot.Name.Name
		default:
			missing = p.restore.Name.Name
		}
		pos := fv.Pos()
		if af != nil {
			pos = af.Pos()
		}
		pass.Reportf(pos, "field %s.%s is not covered by %s: a warm restart would silently drop it (cover it in both, or mark //peachstar:nosnap <reason>)", p.typeName, fv.Name(), missing)
	}
}

// referencedFields walks fn and every same-receiver method it transitively
// calls (same package), collecting which of the struct's fields are
// referenced — by selector, by composite-literal key, or wholesale via a
// positional composite literal covering every field.
func referencedFields(pass *Pass, fn *ast.FuncDecl, methods map[string]*ast.FuncDecl, fieldSet map[*types.Var]bool) map[*types.Var]bool {
	refs := map[*types.Var]bool{}
	seen := map[*ast.FuncDecl]bool{}
	var walk func(fn *ast.FuncDecl)
	walk = func(fn *ast.FuncDecl) {
		if fn == nil || seen[fn] || fn.Body == nil {
			return
		}
		seen[fn] = true
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if v, ok := usesOf(pass.TypesInfo, n).(*types.Var); ok && fieldSet[v] {
					refs[v] = true
				}
			case *ast.CompositeLit:
				// A positional, fully-populated literal covers all fields.
				if len(n.Elts) > 0 {
					if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed && len(n.Elts) == len(fieldSet) {
						if tv, ok := pass.TypesInfo.Types[n]; ok {
							if sameStruct(tv.Type, fieldSet) {
								for fv := range fieldSet {
									refs[fv] = true
								}
							}
						}
					}
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if m, ok := methods[sel.Sel.Name]; ok {
						walk(m)
					}
				}
			}
			return true
		})
	}
	walk(fn)
	return refs
}

// sameStruct reports whether t's underlying struct is the one described by
// fieldSet.
func sameStruct(t types.Type, fieldSet map[*types.Var]bool) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok || st.NumFields() != len(fieldSet) {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if !fieldSet[st.Field(i)] {
			return false
		}
	}
	return true
}

// structASTFields returns the AST fields of the named struct type, keyed by
// field name (embedded fields keyed by their type name), for directive
// lookups and positions.
func structASTFields(pass *Pass, typeName string) map[string]*ast.Field {
	out := map[string]*ast.Field{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if len(field.Names) == 0 {
						out[embeddedName(field.Type)] = field
						continue
					}
					for _, name := range field.Names {
						out[name.Name] = field
					}
				}
			}
		}
	}
	return out
}

func embeddedName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex — never
// checkpointed, exempt without a directive.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
