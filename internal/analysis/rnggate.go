package analysis

import (
	"go/ast"
)

// rngPackage is the module's deterministic random source; the only streams
// a campaign may draw from are handles minted from it.
const rngPackage = "repro/internal/rng"

// NewRnggate builds the rnggate analyzer: all randomness must flow through
// internal/rng stream handles. Repo-wide it bans the stdlib rand packages
// outright, and it restricts stream *creation* (rng.New, rng.Split) to the
// designated seeding layers so the split-stream discipline — worker i draws
// from rng.Split(campaignSeed, i), nothing else — cannot be bypassed by a
// leaf package minting a private generator with its own seed.
func NewRnggate(seeding []string) *Analyzer {
	a := &Analyzer{
		Name:     "rnggate",
		Doc:      "randomness must flow through internal/rng stream handles created at the seeding layers",
		Suppress: DirNondeterministic,
	}
	a.Run = func(pass *Pass) {
		path := pass.Pkg.Path()
		if path == rngPackage {
			return
		}
		checkBannedImports(pass, map[string]string{
			"math/rand":    "all randomness flows through internal/rng stream handles",
			"math/rand/v2": "all randomness flows through internal/rng stream handles",
			"crypto/rand":  "system entropy would make campaigns unreproducible; use internal/rng",
		})
		if matchPath(seeding, path) {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if p, name := pkgFunc(pass.TypesInfo, call); p == rngPackage {
					switch name {
					case "New", "Split":
						pass.Reportf(call.Pos(), "rng.%s outside a seeding layer: %s must receive a *rng.RNG handle from its caller instead of minting its own stream (split-stream discipline)", name, path)
					}
				}
				return true
			})
		}
	}
	return a
}
