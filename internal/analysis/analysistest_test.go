package analysis

// This file is the suite's analysistest-style harness: each testdata
// package under testdata/src/ is loaded with a fake import path (several
// analyzers decide behaviour from the package path), run through exactly
// the analyzer under test, and the findings are checked against the
// `// want `+"`regexp`"+`` comments embedded in the sources — every want
// must be matched by a finding on its line, and every finding must be
// claimed by a want, so both false negatives and false positives fail the
// test.

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// wantArgRe extracts the backtick-quoted expectations of a // want comment.
var wantArgRe = regexp.MustCompile("`([^`]*)`")

func runTestdata(t *testing.T, dir, importPath string, analyzers []*Analyzer) {
	t.Helper()
	pkg, err := LoadDir("../..", "testdata/src/"+dir, importPath)
	if err != nil {
		t.Fatalf("loading testdata %s: %v", dir, err)
	}
	findings := RunPackage(pkg, analyzers)

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllStringSubmatch(c.Text[idx:], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: want comment without a backtick-quoted regexp", pos.Filename, pos.Line)
				}
				for _, m := range args {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &want{pos.Filename, pos.Line, re, false})
				}
			}
		}
	}

	for _, f := range findings {
		text := fmt.Sprintf("%s: %s", f.Analyzer, f.Message)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestDetsource(t *testing.T) {
	runTestdata(t, "detsource", "repro/internal/core", []*Analyzer{NewDetsource(DeterministicPackages)})
}

// TestDetsourceScopedToDeterministicPackages reruns the violation-seeded
// detsource sources under an import path outside the deterministic set:
// everything must come back clean, because detsource's contract is scoped,
// not repo-wide.
func TestDetsourceScopedToDeterministicPackages(t *testing.T) {
	pkg, err := LoadDir("../..", "testdata/src/detsource", "repro/internal/report")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range RunPackage(pkg, []*Analyzer{NewDetsource(DeterministicPackages)}) {
		t.Errorf("finding outside deterministic packages: %s", f)
	}
}

func TestRnggate(t *testing.T) {
	runTestdata(t, "rnggate", "repro/internal/coverage", []*Analyzer{NewRnggate(SeedingPackages)})
}

// TestRnggateSeedingLayer checks the other side of the gate: the same
// stream-minting calls are legal in a designated seeding package.
func TestRnggateSeedingLayer(t *testing.T) {
	runTestdata(t, "rnggate_seed", "repro/cmd/seedtool", []*Analyzer{NewRnggate(SeedingPackages)})
}

func TestHotalloc(t *testing.T) {
	runTestdata(t, "hotalloc", "repro/internal/hotdemo", []*Analyzer{Hotalloc})
}

func TestSnapfields(t *testing.T) {
	runTestdata(t, "snapfields", "repro/internal/snapdemo", []*Analyzer{Snapfields})
}

func TestAtomicmix(t *testing.T) {
	runTestdata(t, "atomicmix", "repro/internal/atomdemo", []*Analyzer{Atomicmix})
}

// TestDirectiveErrors checks that malformed //peachstar: directives are
// findings in their own right — a typo can never silently disable a check.
func TestDirectiveErrors(t *testing.T) {
	pkg, err := LoadDir("../..", "testdata/src/directive", "repro/internal/dirdemo")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackage(pkg, nil)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "directive" {
			t.Errorf("finding attributed to %q, want \"directive\"", f.Analyzer)
		}
	}
	if !strings.Contains(findings[0].Message, "unknown directive //peachstar:hotpth") {
		t.Errorf("first finding should flag the unknown kind, got: %s", findings[0].Message)
	}
	if !strings.Contains(findings[1].Message, "//peachstar:nosnap requires a reason") {
		t.Errorf("second finding should flag the missing reason, got: %s", findings[1].Message)
	}
}

// TestLintSelfClean self-applies the full suite to the whole module: the
// repository must stay peachlint-clean, and because this runs under plain
// `go test ./...`, deliberately introducing any violation class turns the
// test (and therefore make ci) red even before make lint runs.
func TestLintSelfClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	analyzers := Analyzers()
	for _, pkg := range pkgs {
		for _, f := range RunPackage(pkg, analyzers) {
			t.Errorf("%s", f)
		}
	}
}
