package analysis

import "strings"

// DeterministicPackages is the default set of import paths whose code must
// be bit-for-bit deterministic: everything between the RNG and the emitted
// frames. A trailing "/..." entry covers a subtree (the in-process protocol
// targets). fleetnet (network timing), executor (real processes), backoff
// (wall-clock delays) and the session-orchestration layer are deliberately
// outside the set — their nondeterminism is confined by the merge-window
// design, not absent.
var DeterministicPackages = []string{
	"repro/internal/core",
	"repro/internal/mutator",
	"repro/internal/datamodel",
	"repro/internal/session",
	"repro/internal/coverage",
	"repro/internal/corpus",
	"repro/internal/crash",
	"repro/internal/checkpoint",
	"repro/internal/mem",
	"repro/internal/rng",
	"repro/internal/sandbox",
	"repro/internal/pit",
	"repro/internal/targets/...",
}

// SeedingPackages are the layers allowed to mint RNG streams with rng.New
// or rng.Split: the campaign roots, the engine construction path, and the
// process-supervision backoff (whose jitter stream is seeded from the
// campaign seed). Everything else must receive a *rng.RNG handle.
var SeedingPackages = []string{
	"repro/internal/rng",
	"repro/internal/core",
	"repro/internal/backoff",
	"repro/internal/bench",
	"repro/peachstar",
	"repro/cmd/...",
	"repro/examples/...",
}

// matchPath reports whether path is covered by the pattern set ("/..."
// suffix matches the subtree).
func matchPath(patterns []string, path string) bool {
	for _, p := range patterns {
		if sub, ok := strings.CutSuffix(p, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

// Analyzers returns the full peachlint suite configured with the
// repository's default package sets.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewDetsource(DeterministicPackages),
		NewRnggate(SeedingPackages),
		Hotalloc,
		Snapfields,
		Atomicmix,
	}
}
