package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix catches mixed atomic/plain access to the same field: a field
// that is published with sync/atomic anywhere (atomic.AddUint64(&s.n, ...)
// or an atomic.Int64-style wrapper) must never be plainly read or written,
// except inside the function that constructs its owner (before the value is
// shared). A mixed access is a data race that the -race suite only reports
// when the scheduler happens to interleave the two sides; atomicmix reports
// it on every build. Provably quiescent plain access (all workers parked at
// a merge-window boundary) is acknowledged with //peachstar:nonatomic
// <reason>.
var Atomicmix = &Analyzer{
	Name:     "atomicmix",
	Doc:      "fields published with sync/atomic must never be plainly accessed outside their constructor",
	Suppress: DirNonatomic,
	Run:      runAtomicmix,
}

func runAtomicmix(pass *Pass) {
	info := pass.TypesInfo

	// Pass 1: collect the fields accessed through sync/atomic, and the
	// exact selector nodes that constitute those sanctioned accesses.
	atomicFields := map[*types.Var]bool{}      // plain ints passed as &s.f to atomic.*
	sanctioned := map[*ast.SelectorExpr]bool{} // selector nodes inside atomic call args
	wrapperFields := map[*types.Var]bool{}     // fields of type atomic.Int64 etc.

	fieldOf := func(e ast.Expr) (*ast.SelectorExpr, *types.Var) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil, nil
		}
		return sel, s.Obj().(*types.Var)
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if path, _ := pkgFunc(info, call); path == "sync/atomic" {
					for _, arg := range call.Args {
						un, ok := arg.(*ast.UnaryExpr)
						if !ok {
							continue
						}
						if sel, fv := fieldOf(un.X); fv != nil {
							atomicFields[fv] = true
							sanctioned[sel] = true
						}
					}
				}
			}
			return true
		})
	}

	// Wrapper-typed fields (atomic.Int64 & friends) found by scanning the
	// package's struct types.
	ownerOf := map[*types.Var]*types.Named{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			ownerOf[fv] = named
			if isAtomicWrapper(fv.Type()) {
				wrapperFields[fv] = true
			}
		}
	}
	if len(atomicFields) == 0 && len(wrapperFields) == 0 {
		return
	}

	// Pass 2: every other access to those fields is a finding, unless the
	// enclosing function constructs the owner (composite literal or
	// new(T)), which happens-before any sharing.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, fv := fieldOf(n)
				if fv == nil {
					return true
				}
				if atomicFields[fv] && !sanctioned[sel] {
					if constructsOwner(pass, ownerOf[fv], sel.Pos()) {
						return true
					}
					pass.Reportf(sel.Pos(), "plain access to %s, which is published with sync/atomic elsewhere: a plain read/write races with the atomic side (use atomic access, or //peachstar:nonatomic <reason> at a proven quiescent point)", fieldDesc(ownerOf[fv], fv))
				}
				return true
			case *ast.CallExpr:
				// x.f.Load() — sanction the wrapper-field selector that is
				// the method receiver.
				if m, ok := n.Fun.(*ast.SelectorExpr); ok {
					if sel, fv := fieldOf(m.X); fv != nil && wrapperFields[fv] {
						sanctioned[sel] = true
					}
				}
				return true
			case *ast.UnaryExpr:
				// &x.f on a wrapper keeps atomicity (the pointee is still
				// accessed through its methods).
				if sel, fv := fieldOf(n.X); fv != nil && wrapperFields[fv] {
					sanctioned[sel] = true
				}
				return true
			}
			return true
		})
	}

	// Wrapper misuse: any remaining unsanctioned selector of a wrapper
	// field is a copy or overwrite of the atomic value.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel, fv := fieldOf(se)
			if fv == nil {
				return true
			}
			if wrapperFields[fv] && !sanctioned[sel] {
				if constructsOwner(pass, ownerOf[fv], sel.Pos()) {
					return true
				}
				pass.Reportf(sel.Pos(), "plain copy or overwrite of atomic wrapper field %s: access it only through its methods", fieldDesc(ownerOf[fv], fv))
			}
			return true
		})
	}
}

func fieldDesc(owner *types.Named, fv *types.Var) string {
	if owner != nil {
		return owner.Obj().Name() + "." + fv.Name()
	}
	return fv.Name()
}

// isAtomicWrapper reports whether t is one of sync/atomic's typed wrappers
// (atomic.Int64, atomic.Uint64, atomic.Bool, atomic.Value, ...).
func isAtomicWrapper(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// constructsOwner reports whether the function enclosing pos creates the
// owner type itself (a composite literal or new(T) of it): initialisation
// before sharing is the one place plain access is legal.
func constructsOwner(pass *Pass, owner *types.Named, pos token.Pos) bool {
	if owner == nil {
		return false
	}
	fn := enclosingFunc(pass.Files, pos)
	if fn == nil || fn.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok && namedIs(tv.Type, owner) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
				if _, isBuiltin := usesOf(pass.TypesInfo, id).(*types.Builtin); isBuiltin {
					if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok && namedIs(tv.Type, owner) {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

// namedIs reports whether t (possibly behind a pointer) is the named type.
func namedIs(t types.Type, want *types.Named) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == want.Obj()
}
