package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the slice of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// goList shells out to `go list -export -deps` for the patterns and returns
// the decoded package records. Building export data uses only the local
// toolchain and build cache, so the loader works fully offline.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter satisfies types.Importer by reading compiler export data
// produced by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typeCheck parses and type-checks one package's files against export data.
func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		name := gf
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load loads, parses and type-checks the packages matching the patterns
// (e.g. "./...") relative to dir. Only the matched packages are returned;
// their dependencies are consumed as export data. Test files are not
// loaded: peachlint checks shipped code, the runtime suites check the
// tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// VetUnit describes one compilation unit as handed to a vet tool by
// cmd/go: explicit file lists and maps from import path to export-data
// file, no `go list` round trip needed.
type VetUnit struct {
	ImportPath  string
	Dir         string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
}

// LoadVetUnit type-checks a vet compilation unit against the export data
// cmd/go already built for its dependencies.
func LoadVetUnit(u VetUnit) (*Package, error) {
	exports := map[string]string{}
	for path, file := range u.PackageFile {
		exports[path] = file
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if real, ok := u.ImportMap[path]; ok {
			path = real
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return typeCheck(fset, imp, u.ImportPath, u.Dir, u.GoFiles)
}

// LoadDir loads a single directory of Go files as the package importPath,
// resolving its imports with `go list -export`. It exists for the
// analysistest harness: testdata packages live outside the module's package
// graph but still need real type-checking, and some analyzers (detsource,
// rnggate) decide behaviour from the import path, which the caller fakes
// here (e.g. a testdata package posing as repro/internal/core). moduleDir
// anchors import resolution so "repro/..." imports resolve.
func LoadDir(moduleDir, dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			goFiles = append(goFiles, e.Name()) // typeCheck joins with dir
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	// Collect the imports by parsing just the file headers.
	hdrFset := token.NewFileSet()
	importSet := map[string]bool{}
	for _, gf := range goFiles {
		f, err := parser.ParseFile(hdrFset, filepath.Join(dir, gf), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range f.Imports {
			path := im.Path.Value
			importSet[path[1:len(path)-1]] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		listed, err := goList(moduleDir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	return typeCheck(fset, exportImporter(fset, exports), importPath, dir, goFiles)
}
