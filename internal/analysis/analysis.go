package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one peachlint check. The shape mirrors
// golang.org/x/tools/go/analysis so the checks could be ported onto the real
// framework wholesale if the module ever takes that dependency; peachlint
// deliberately reimplements only the slice it needs on the standard library.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in `want` comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Suppress is the directive kind (e.g. "nondeterministic") that
	// suppresses this analyzer's diagnostics when placed on or directly
	// above the offending line. Empty means no line-level escape hatch.
	Suppress string
	// Run reports diagnostics for one type-checked package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	dirs   *directiveIndex
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos. Diagnostics suppressed by the
// analyzer's escape-hatch directive are dropped by the driver.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned by token.Pos within the pass's
// FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is a resolved diagnostic as emitted by RunPackage: positioned,
// attributed to its analyzer, and ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Directive kinds understood by the suite. See the package documentation
// for semantics.
const (
	DirHotpath          = "hotpath"
	DirNondeterministic = "nondeterministic"
	DirAllocOK          = "allocok"
	DirNoSnap           = "nosnap"
	DirNonatomic        = "nonatomic"
)

// directiveReasonRequired says whether a directive kind must carry a
// free-text reason. Suppressions always do; hotpath is an annotation, not
// an excuse.
var directiveReasonRequired = map[string]bool{
	DirHotpath:          false,
	DirNondeterministic: true,
	DirAllocOK:          true,
	DirNoSnap:           true,
	DirNonatomic:        true,
}

// directive is one parsed //peachstar: comment.
type directive struct {
	kind   string
	reason string
	pos    token.Pos
	line   int // line of the comment itself
}

// directiveIndex holds every directive in a package, keyed by file line for
// suppression lookups.
type directiveIndex struct {
	fset *token.FileSet
	// byFileLine maps filename -> line -> directives on that line.
	byFileLine map[string]map[int][]directive
	errs       []Diagnostic
}

const directivePrefix = "peachstar:"

// parseDirectives scans every comment in the files for //peachstar:
// directives, recording malformed ones as diagnostics so a typo can never
// silently disable a check.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	idx := &directiveIndex{fset: fset, byFileLine: map[string]map[int][]directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				kind, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				reason = strings.TrimSpace(reason)
				need, known := directiveReasonRequired[kind]
				switch {
				case !known:
					idx.errs = append(idx.errs, Diagnostic{c.Pos(), fmt.Sprintf(
						"unknown directive //peachstar:%s (known: hotpath, nondeterministic, allocok, nosnap, nonatomic)", kind)})
					continue
				case need && reason == "":
					idx.errs = append(idx.errs, Diagnostic{c.Pos(), fmt.Sprintf(
						"//peachstar:%s requires a reason", kind)})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx.byFileLine[pos.Filename]
				if lines == nil {
					lines = map[int][]directive{}
					idx.byFileLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], directive{kind, reason, c.Pos(), pos.Line})
			}
		}
	}
	return idx
}

// at reports whether a directive of the given kind sits on line or the line
// above it in pos's file.
func (idx *directiveIndex) at(kind string, pos token.Pos) bool {
	p := idx.fset.Position(pos)
	lines := idx.byFileLine[p.Filename]
	for _, d := range lines[p.Line] {
		if d.kind == kind {
			return true
		}
	}
	for _, d := range lines[p.Line-1] {
		if d.kind == kind {
			return true
		}
	}
	return false
}

// FuncHasDirective reports whether fn's doc comment carries the directive
// kind (e.g. //peachstar:hotpath marking a function for hotalloc).
func (p *Pass) FuncHasDirective(fn *ast.FuncDecl, kind string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, "//"+directivePrefix+kind) {
			return true
		}
	}
	return false
}

// FieldHasDirective reports whether a struct field's doc or trailing line
// comment carries the directive kind (used by snapfields for nosnap).
func (p *Pass) FieldHasDirective(field *ast.Field, kind string) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//"+directivePrefix+kind) {
				return true
			}
		}
	}
	return false
}

// Suppressed reports whether the pass's escape-hatch directive covers pos,
// either on the same line, the line above, or on the doc comment of the
// enclosing function declaration.
func (p *Pass) Suppressed(pos token.Pos) bool {
	kind := p.Analyzer.Suppress
	if kind == "" {
		return false
	}
	if p.dirs.at(kind, pos) {
		return true
	}
	for _, f := range p.Files {
		if f.Pos() <= pos && pos < f.End() {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if ok && fn.Pos() <= pos && pos < fn.End() {
					return p.FuncHasDirective(fn, kind)
				}
			}
		}
	}
	return false
}

// RunPackage runs the analyzers over one loaded package and returns the
// surviving findings (suppressed diagnostics dropped, directive parse
// errors included) sorted by position. It is the single entry point shared
// by cmd/peachlint, the vet-tool mode, the analysistest harness, and the
// root self-application test.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	var out []Finding
	for _, d := range dirs.errs {
		out = append(out, Finding{"directive", pkg.Fset.Position(d.Pos), d.Message})
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			dirs:      dirs,
		}
		pass.report = func(d Diagnostic) {
			if pass.Suppressed(d.Pos) {
				return
			}
			out = append(out, Finding{a.Name, pkg.Fset.Position(d.Pos), d.Message})
		}
		a.Run(pass)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// usesOf returns the package-level object the identifier resolves to, or
// nil.
func usesOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isBuiltinCall reports whether call invokes the named Go builtin
// (append, delete, make, ...), resolving the identifier so a local
// function shadowing the builtin name is not mistaken for it.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := usesOf(info, id).(*types.Builtin)
	return ok && b.Name() == name
}

// pkgFunc resolves a call like pkgname.Func and returns the imported
// package path and function name, or "" if the call is not of that shape.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := usesOf(info, id).(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// enclosingFunc returns the function declaration containing pos, or nil.
func enclosingFunc(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if f.Pos() <= pos && pos < f.End() {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos < fn.End() {
					return fn
				}
			}
		}
	}
	return nil
}

// receiverBaseType returns the named base type of a method receiver
// expression (stripping pointers and generics), or "".
func receiverBaseType(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
