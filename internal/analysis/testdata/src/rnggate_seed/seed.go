// Package seedtool is rnggate testdata posing as repro/cmd/seedtool, a
// designated seeding layer: minting and splitting streams is its job, so
// the whole file must come back clean.
package seedtool

import (
	"repro/internal/rng"
)

func campaignStreams(seed uint64, workers int) []*rng.RNG {
	out := make([]*rng.RNG, workers)
	for i := range out {
		out[i] = rng.New(rng.Split(seed, i))
	}
	return out
}
