// Package dirdemo holds malformed //peachstar: directives; every one must
// surface as a finding rather than silently disabling a check.
package dirdemo

//peachstar:hotpth misspelled kind
func typo() {}

//peachstar:nosnap
func missingReason() {}
