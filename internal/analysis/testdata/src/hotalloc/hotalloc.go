// Package hotdemo is hotalloc testdata: every alloc-introducing construct
// inside a //peachstar:hotpath function must be flagged, pre-sized and
// pointer-shaped equivalents must come back clean, and the same constructs
// in an unannotated function are out of scope.
package hotdemo

import "fmt"

type point struct{ x, y int }

func sink(v any) { _ = v }

//peachstar:hotpath
func hot(name string, vals []int) string {
	s := fmt.Sprintf("x=%d", 1) // want `fmt\.Sprintf allocates`
	s = s + name                // want `string concatenation allocates`
	b := []byte(name)           // want `string-to-slice conversion allocates`
	_ = string(b)               // want `\[\]byte-to-string conversion allocates`
	m := map[string]int{}       // want `map literal allocates`
	_ = m
	mm := make(map[string]int) // want `make\(map\) allocates`
	_ = mm
	ch := make(chan int) // want `make\(chan\) allocates`
	_ = ch

	var acc []int
	for _, v := range vals {
		acc = append(acc, v) // want `append to un-presized local "acc" grows`
	}
	_ = acc

	p := &point{1, 2} // want `&-composite literal escapes to the heap`
	_ = p
	q := new(point) // want `new\(T\) allocates`
	_ = q

	n := len(vals)
	f := func() int { return n } // want `closure captures n and allocates`
	_ = f

	sink(n) // want `interface boxing of int allocates`
	return s
}

//peachstar:hotpath
func hotClean(vals []int, scratch []byte) []int {
	// Pre-sized append, pointer-shaped interface args, and static closures
	// are all allocation-free: none of these may be flagged.
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v)
	}
	scratch = scratch[:0]
	sink(&out)
	g := func() int { return 1 }
	_ = g
	return out
}

//peachstar:hotpath
func hotExcused() *point {
	//peachstar:allocok fixture: grow-on-miss fallback, counted and amortised
	return &point{3, 4}
}

// cold is unannotated: identical constructs are out of hotalloc's scope.
func cold(name string) string {
	s := fmt.Sprintf("x=%s", name)
	m := map[string]int{}
	_ = m
	return s + name
}
