package core

import (
	crand "crypto/rand" // want `import of crypto/rand: system entropy`
	mrand "math/rand"   // want `import of math/rand: deterministic packages draw`
)

func stdlibRand(buf []byte) int {
	_, _ = crand.Read(buf)
	return mrand.Int()
}
