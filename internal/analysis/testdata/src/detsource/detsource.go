// Package core is detsource testdata posing as repro/internal/core: every
// banned nondeterminism source seeded here must be flagged, and every
// recognised order-insensitive shape must come back clean.
package core

import (
	"sort"
	"time"
)

func wallClock() int64 {
	t0 := time.Now()             // want `time\.Now in deterministic package`
	return int64(time.Since(t0)) // want `time\.Since in deterministic package`
}

// deadline reads the wall clock for loop-exit gating only; the doc-comment
// directive covers every diagnostic in the function.
//
//peachstar:nondeterministic wall clock gates loop exit, never fuzzing state
func deadline() time.Time {
	return time.Now()
}

func lineSuppressed() time.Time {
	//peachstar:nondeterministic fixture: provably cannot reach fuzzing state
	return time.Now()
}

func emits(m map[string]int, sink func(string)) {
	for k := range m { // want `map iteration order reaches output`
		sink(k)
	}
}

func emitsSuppressed(m map[string]int, sink func(string)) {
	//peachstar:nondeterministic fixture: sink is order-insensitive by contract
	for k := range m {
		sink(k)
	}
}

func accumulates(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func freshLocals(m map[string]int) int {
	n := 0
	for _, v := range m {
		d := v * 2
		n += d
	}
	return n
}

func keyedStores(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func prune(m, dead map[string]int) {
	for k := range dead {
		delete(m, k)
	}
}

func keyless(m map[string]int, count func()) {
	// Neither key nor value is bound: the iterations are indistinguishable,
	// so their order is unobservable even though the body calls a function.
	for range m {
		count()
	}
}

func maxVal(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func sortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unsortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `collects into "keys" which is never sorted`
		keys = append(keys, k)
	}
	return keys
}
