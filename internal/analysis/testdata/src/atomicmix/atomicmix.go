// Package atomdemo is atomicmix testdata: a field published with
// sync/atomic anywhere must never be plainly accessed outside its owner's
// constructor, and atomic wrapper fields must only be touched through
// their methods.
package atomdemo

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu    sync.Mutex
	execs uint64
	total atomic.Uint64
}

// newCounter constructs the owner: plain initialisation happens-before any
// sharing and is legal.
func newCounter() *counter {
	c := &counter{}
	c.execs = 1
	return c
}

func (c *counter) bump() {
	atomic.AddUint64(&c.execs, 1)
	c.total.Add(1)
}

func (c *counter) read() uint64 {
	return c.execs // want `plain access to counter\.execs`
}

//peachstar:nonatomic fixture: all workers parked at the merge barrier
func (c *counter) quiescentRead() uint64 {
	return c.execs
}

func (c *counter) wrapperLoad() uint64 { return c.total.Load() }

func (c *counter) wrapperCopy() atomic.Uint64 {
	return c.total // want `plain copy or overwrite of atomic wrapper field counter\.total`
}

// plain is never touched by sync/atomic: ordinary access stays out of
// scope entirely.
type plain struct {
	n int
}

func (p *plain) inc() { p.n++ }
