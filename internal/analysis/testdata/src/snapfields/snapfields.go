// Package snapdemo is snapfields testdata: a checkpointed type's fields
// must be referenced by both codec halves, with sync.Mutex and
// //peachstar:nosnap fields exempt, helper-method references followed, and
// both naming conventions (Snapshot/Restore, SnapshotState/RestoreState)
// recognised.
package snapdemo

import (
	"sync"

	"repro/internal/checkpoint"
)

// covered has every field in both halves (the mutex is exempt): clean.
type covered struct {
	mu    sync.Mutex
	execs uint64
	name  string
}

func (c *covered) Snapshot(w *checkpoint.Writer) {
	w.U64(c.execs)
	w.String(c.name)
}

func (c *covered) Restore(r *checkpoint.Reader) {
	c.execs = r.U64()
	c.name = r.String()
}

// dropped.tail is still written by Snapshot but was deleted from Restore —
// the silent warm-restart drift case.
type dropped struct {
	head uint64
	tail uint64 // want `field dropped\.tail is not covered by Restore`
}

func (d *dropped) Snapshot(w *checkpoint.Writer) {
	w.U64(d.head)
	w.U64(d.tail)
}

func (d *dropped) Restore(r *checkpoint.Reader) {
	d.head = r.U64()
}

// missing.skip appears in neither half.
type missing struct {
	kept uint64
	skip uint64 // want `field missing\.skip is not covered by Snapshot or Restore`
}

func (m *missing) Snapshot(w *checkpoint.Writer) { w.U64(m.kept) }
func (m *missing) Restore(r *checkpoint.Reader)  { m.kept = r.U64() }

// excused uses the State-suffixed naming convention and the nosnap escape
// hatch: clean.
type excused struct {
	stored  uint64
	scratch []byte //peachstar:nosnap per-iteration scratch, rebuilt on demand
}

func (e *excused) SnapshotState(w *checkpoint.Writer) { w.U64(e.stored) }
func (e *excused) RestoreState(r *checkpoint.Reader)  { e.stored = r.U64() }

// viaHelper covers one field through a same-receiver helper method, which
// the reference walk must follow: clean.
type viaHelper struct {
	a uint64
	b uint64
}

func (v *viaHelper) Snapshot(w *checkpoint.Writer) {
	w.U64(v.a)
	v.snapRest(w)
}

func (v *viaHelper) snapRest(w *checkpoint.Writer) { w.U64(v.b) }

func (v *viaHelper) Restore(r *checkpoint.Reader) {
	v.a = r.U64()
	v.b = r.U64()
}

// half has only a serialising side — drift enforcement needs both halves,
// so a lone Snapshot is not checked.
type half struct {
	onlyWritten uint64
}

func (h *half) Snapshot(w *checkpoint.Writer) { w.U64(h.onlyWritten) }
