package rnggate

import "math/rand" // want `import of math/rand: all randomness flows through internal/rng`

func stdlibRand() int {
	return rand.Int()
}
