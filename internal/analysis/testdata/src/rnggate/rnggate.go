// Package rnggate is rnggate testdata posing as a non-seeding engine
// package: stream creation must be flagged, drawing from a handed-in
// stream must not.
package rnggate

import (
	"repro/internal/rng"
)

func mintsStream() *rng.RNG {
	return rng.New(42) // want `rng\.New outside a seeding layer`
}

func splitsSeed(seed uint64) uint64 {
	return rng.Split(seed, 3) // want `rng\.Split outside a seeding layer`
}

// drawsFromHandle consumes a stream handle minted by the seeding layer —
// the sanctioned shape.
func drawsFromHandle(r *rng.RNG) uint64 {
	return r.Uint64()
}

//peachstar:nondeterministic fixture: offline replay tool mints a scratch stream
func suppressedMint() *rng.RNG {
	return rng.New(7)
}
