package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewDetsource builds the detsource analyzer over the given set of
// deterministic package patterns. In those packages it forbids the three
// stdlib nondeterminism sources that can silently perturb a campaign —
// wall-clock reads (time.Now/Since/Until), the rand packages, and map
// iteration whose order can reach output — each escapable only with an
// explicit //peachstar:nondeterministic <reason>.
func NewDetsource(deterministic []string) *Analyzer {
	a := &Analyzer{
		Name:     "detsource",
		Doc:      "forbid wall-clock, stdlib rand, and order-dependent map iteration in deterministic packages",
		Suppress: DirNondeterministic,
	}
	a.Run = func(pass *Pass) {
		if !matchPath(deterministic, pass.Pkg.Path()) {
			return
		}
		checkBannedImports(pass, map[string]string{
			"math/rand":    "deterministic packages draw through internal/rng stream handles",
			"math/rand/v2": "deterministic packages draw through internal/rng stream handles",
			"crypto/rand":  "system entropy can never reach a reproducible campaign",
		})
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if path, name := pkgFunc(pass.TypesInfo, n); path == "time" {
						switch name {
						case "Now", "Since", "Until":
							pass.Reportf(n.Pos(), "time.%s in deterministic package %s: the wall clock must not reach fuzzing state (use //peachstar:nondeterministic <reason> only if it provably cannot)", name, pass.Pkg.Path())
						}
					}
				case *ast.RangeStmt:
					checkMapRange(pass, f, n)
				}
				return true
			})
		}
	}
	return a
}

// checkBannedImports reports any import of the given paths, with a
// per-path explanation.
func checkBannedImports(pass *Pass, banned map[string]string) {
	for _, f := range pass.Files {
		for _, im := range f.Imports {
			path := im.Path.Value
			path = path[1 : len(path)-1]
			if why, ok := banned[path]; ok {
				pass.Reportf(im.Pos(), "import of %s: %s", path, why)
			}
		}
	}
}

// checkMapRange flags `for ... range m` over a map whose body can leak the
// iteration order into output. Recognised order-insensitive shapes are
// clean without a directive:
//
//   - pure commutative accumulation (x++, x += e, x |= e, ...);
//   - keyed stores into another map (m2[k] = v) or into a slice/array
//     indexed by the loop key (out[k] = v);
//   - delete(m2, k);
//   - the max/min tournament (if v > best { best = v; ... });
//   - collecting keys into a slice that is sorted later in the same
//     function (sort.* / slices.Sort* with the slice as first argument).
//
// Everything else — appends that stay unsorted, calls, sends, returns,
// writes through unkeyed destinations — is assumed to emit in map order.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	// A range that binds neither key nor value (`for range m`, or with
	// blanks) runs an identical body once per entry: with nothing to
	// distinguish the iterations, their order is unobservable.
	if blankExpr(rng.Key) && blankExpr(rng.Value) {
		return
	}
	// Key/value loop variables, for keyed-store recognition.
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := pass.TypesInfo.Defs[id]; o != nil {
				loopVars[o] = true
			} else if o := pass.TypesInfo.Uses[id]; o != nil {
				loopVars[o] = true
			}
		}
	}
	c := &mapRangeChecker{pass: pass, loopVars: loopVars}
	for _, s := range rng.Body.List {
		c.stmt(s)
		if c.bad != nil {
			break
		}
	}
	if c.bad == nil {
		// Pure-collect loops are clean only if the collected slice is
		// sorted afterwards in the same function.
		for obj := range c.collected {
			if !sortedAfter(pass, file, rng, obj) {
				pass.Reportf(rng.Pos(), "map iteration order reaches output: %s collects into %q which is never sorted in this function", rangeDesc(rng), obj.Name())
				return
			}
		}
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order reaches output: %s %s (sort the keys first, restructure, or justify with //peachstar:nondeterministic <reason>)", rangeDesc(rng), c.why)
}

// blankExpr reports whether a range clause position is unbound: absent or
// the blank identifier.
func blankExpr(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func rangeDesc(rng *ast.RangeStmt) string {
	if id, ok := rng.X.(*ast.Ident); ok {
		return "range over map " + id.Name
	}
	if sel, ok := rng.X.(*ast.SelectorExpr); ok {
		return "range over map ." + sel.Sel.Name
	}
	return "range over map"
}

// mapRangeChecker walks a map-range body classifying statements as
// order-insensitive or not. bad holds the first offending node.
type mapRangeChecker struct {
	pass     *Pass
	loopVars map[types.Object]bool
	// collected maps slice variables that receive `append` collects and
	// must be sorted after the loop.
	collected map[types.Object]bool
	bad       ast.Node
	why       string
}

func (c *mapRangeChecker) fail(n ast.Node, why string) {
	if c.bad == nil {
		c.bad, c.why = n, why
	}
}

func (c *mapRangeChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		// x++ / x-- is commutative accumulation.
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			c.fail(s, "has an order-sensitive statement")
			return
		}
		if isBuiltinCall(c.pass.TypesInfo, call, "delete") {
			return // builtin delete: keyed, order-insensitive
		}
		c.fail(s, "calls a function inside the loop")
	case *ast.IfStmt:
		c.ifStmt(s)
	case *ast.BlockStmt:
		for _, inner := range s.List {
			c.stmt(inner)
		}
	case *ast.BranchStmt:
		if s.Tok != token.CONTINUE {
			c.fail(s, "transfers control out of the loop (order-dependent exit)")
		}
	case *ast.DeclStmt:
		// Local declarations don't leak order by themselves; uses do.
	default:
		c.fail(s, "has an order-sensitive statement")
	}
}

// assign classifies an assignment inside the loop body.
func (c *mapRangeChecker) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN, token.AND_NOT_ASSIGN:
		// Commutative/associative accumulation: order-insensitive.
		return
	case token.DEFINE:
		// := declares fresh loop-local variables; order can only leak
		// through a later use of them, which the other checks see.
		return
	case token.ASSIGN:
		// s = append(s, ...) is a collect; clean iff sorted later.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if isBuiltinCall(c.pass.TypesInfo, call, "append") {
					if lhs, ok := s.Lhs[0].(*ast.Ident); ok {
						if obj := usesOf(c.pass.TypesInfo, lhs); obj != nil {
							if c.collected == nil {
								c.collected = map[types.Object]bool{}
							}
							c.collected[obj] = true
							return
						}
					}
					c.fail(s, "appends in map order")
					return
				}
			}
			// Keyed store: m2[expr] = v or out[k] = v with k the loop key.
			if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok && s.Tok == token.ASSIGN {
				if c.keyedStore(ix) {
					return
				}
				c.fail(s, "writes through an index that is not keyed by the loop variable")
				return
			}
		}
		c.fail(s, "assigns in map order")
	default:
		// -=, /=, %=, shifts: order of float/int division etc. can matter;
		// be conservative for the exotic ones except -= on integers, which
		// is commutative in the additive-inverse sense.
		if s.Tok == token.SUB_ASSIGN {
			return
		}
		c.fail(s, "assigns with an order-sensitive operator")
	}
}

// keyedStore reports whether ix is a per-key destination: a map index
// (unique keys make order irrelevant) or a slice/array indexed by a loop
// variable.
func (c *mapRangeChecker) keyedStore(ix *ast.IndexExpr) bool {
	if tv, ok := c.pass.TypesInfo.Types[ix.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	if id, ok := ix.Index.(*ast.Ident); ok {
		if obj := usesOf(c.pass.TypesInfo, id); obj != nil && c.loopVars[obj] {
			return true
		}
	}
	return false
}

// ifStmt allows condition-guarded accumulation, including the max/min
// tournament pattern (if v > best { best = v }), as long as the condition
// itself calls nothing.
func (c *mapRangeChecker) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		c.fail(s, "has an order-sensitive statement")
		return
	}
	if callsFunction(c.pass, s.Cond) {
		c.fail(s, "calls a function in a loop condition")
		return
	}
	condVars := exprVars(c.pass, s.Cond)
	for _, inner := range s.Body.List {
		if a, ok := inner.(*ast.AssignStmt); ok && a.Tok == token.ASSIGN && c.tournamentAssign(a, condVars) {
			continue
		}
		c.stmt(inner)
	}
	switch e := s.Else.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range e.List {
			c.stmt(inner)
		}
	case *ast.IfStmt:
		c.ifStmt(e)
	}
}

// tournamentAssign recognises `best = v` (and companions like `bestK = k`)
// under a comparison condition that mentions `best`: a commutative
// tournament as long as the comparison is strict or ties are impossible;
// peachlint accepts comparison-guarded assignment as the established
// max/min idiom.
func (c *mapRangeChecker) tournamentAssign(a *ast.AssignStmt, condVars map[types.Object]bool) bool {
	if len(a.Lhs) == 0 {
		return false
	}
	for _, lhs := range a.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return false
		}
		obj := usesOf(c.pass.TypesInfo, id)
		if obj == nil {
			return false
		}
		if condVars[obj] {
			return true // at least one assigned var is compared in the guard
		}
	}
	return false
}

// callsFunction reports whether the expression contains any call (len/cap
// of a value are allowed — they allocate nothing and read no order).
func callsFunction(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := usesOf(pass.TypesInfo, id).(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap":
						return true
					}
				}
			}
			found = true
			return false
		}
		return true
	})
	return found
}

// exprVars collects the variable objects mentioned in an expression.
func exprVars(pass *Pass, e ast.Expr) map[types.Object]bool {
	vars := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := usesOf(pass.TypesInfo, id).(*types.Var); ok {
				vars[v] = true
			}
		}
		return true
	})
	return vars
}

// sortedAfter reports whether obj (a slice collected inside the loop) is
// passed to a sort.* or slices.Sort* call after the loop, lexically within
// the enclosing function.
func sortedAfter(pass *Pass, file *ast.File, rng *ast.RangeStmt, obj types.Object) bool {
	fn := enclosingFunc([]*ast.File{file}, rng.Pos())
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || sorted {
			return !sorted
		}
		path, name := pkgFunc(pass.TypesInfo, call)
		isSort := path == "sort" || (path == "slices" && len(name) >= 4 && name[:4] == "Sort")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			base := arg
			if id, ok := base.(*ast.Ident); ok {
				if usesOf(pass.TypesInfo, id) == obj {
					sorted = true
					return false
				}
			}
		}
		return true
	})
	return sorted
}
