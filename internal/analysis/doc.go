// Package analysis is peachlint: a static-analysis suite that enforces the
// engine's determinism, hot-path, and checkpoint invariants at compile time.
//
// The repository's core contracts — bit-for-bit campaign determinism, fixed
// RNG draw counts through internal/rng, a ≤1 alloc/exec steady-state hot
// path, atomics-only publication of fleet statistics, and complete
// Snapshot/Restore coverage of every checkpointed field — were historically
// guarded only by runtime golden tests that fire *after* a violation ships.
// This package turns each of those runtime guards into a build-time check:
// `make lint` (and therefore `make check` / `make ci`) fails with a
// file:line diagnostic the moment a violation is written, instead of when a
// golden fingerprint or allocation budget happens to notice.
//
// The suite is five analyzers, mirroring the golang.org/x/tools/go/analysis
// API shape (Analyzer/Pass/Diagnostic) but implemented on the standard
// library's go/ast + go/types only, so the module keeps zero external
// dependencies and `go build ./...` works offline:
//
//   - detsource  — in deterministic packages, forbids wall-clock reads
//     (time.Now/Since/Until), math/rand / crypto/rand imports, and map
//     `range` loops whose iteration order can reach output (appends, calls,
//     writes) without an intervening sort. Front-runs the
//     TestAdaptiveOffGolden / warm-restart fingerprint suites.
//   - rnggate    — all randomness must flow through internal/rng stream
//     handles: bans the stdlib rand packages repo-wide and restricts
//     rng.New / rng.Split (stream creation) to the designated seeding
//     layers, so the split-stream discipline cannot be bypassed by a leaf
//     package minting its own generator. Front-runs the golden draw-order
//     tests (TestPickGoldenStream).
//   - hotalloc   — functions annotated //peachstar:hotpath are checked for
//     alloc-introducing constructs: fmt calls, string concatenation and
//     string<->[]byte conversions, interface boxing, capturing closures,
//     map literals/makes, &T{} composite literals and new(T), and append
//     to an un-presized local slice. Front-runs
//     TestSteadyStateExecAllocBudget.
//   - snapfields — for every type with a Snapshot/Restore (or
//     SnapshotState/RestoreState) checkpoint codec pair, every stored field
//     must be referenced by both methods or carry //peachstar:nosnap.
//     Front-runs the checkpoint round-trip goldens and
//     TestCheckpointWarmRestartContinuesExactly by making the
//     new-field-silently-absent-from-warm-restart hazard a build failure.
//   - atomicmix  — a plain field that is published with sync/atomic
//     anywhere must never be plainly read or written outside the function
//     that constructs its owner; mixing the two is a data race the -race
//     suite only catches when the scheduler happens to interleave it.
//
// # Directives
//
// peachlint is steered by //peachstar: comment directives. A directive
// applies to its own source line or the line directly below it (so it can
// sit on the statement or on its own line above); on a function's doc
// comment it applies to the whole function. Every suppressing directive
// must carry a reason — a bare directive is itself a lint error.
//
//	//peachstar:hotpath
//	    Marks the function for the hotalloc analyzer. Applied to the
//	    per-exec loop: Engine.Step and its generation/mutation callees,
//	    coverage MergeTracer/PathHash, datamodel GenerateInto/arena paths,
//	    and mutator Pick*/Mutate.
//
//	//peachstar:nondeterministic <reason>
//	    Escape hatch for detsource and rnggate. The reason must explain why
//	    the nondeterminism provably cannot reach fuzzing state or emitted
//	    frames (e.g. the driver's wall-clock deadline check, which only
//	    decides *when* to stop, never *what* is executed).
//
//	//peachstar:allocok <reason>
//	    Escape hatch for hotalloc, for allocations that are off the
//	    steady-state path (e.g. arena slab growth, first-iteration sizing)
//	    and are amortised away by TestSteadyStateExecAllocBudget.
//
//	//peachstar:nosnap <reason>
//	    Field-level escape hatch for snapfields: the field is intentionally
//	    transient (scratch buffers, arena slabs, caches rebuilt on first
//	    use, wiring re-established by the restore path). sync.Mutex and
//	    sync.RWMutex fields are exempt without a directive — locks are
//	    never checkpointed.
//
//	//peachstar:nonatomic <reason>
//	    Escape hatch for atomicmix, for plain access that is provably
//	    race-free (e.g. reads at a quiescent merge-window boundary while
//	    all workers are parked).
//
// Misspelled or unknown //peachstar: directives, and suppressing
// directives without a reason, are reported as diagnostics so a typo can
// never silently disable a check.
//
// # Drivers
//
// cmd/peachlint is the multichecker: `peachlint ./...` loads packages via
// `go list -export` (type-checking against the build cache's export data,
// fully offline) and runs all five analyzers; `make lint` wires it into
// `make check` and `make ci`, and the root TestLintSelfClean keeps the
// self-application in the ordinary test suite. The same binary also speaks
// the cmd/go vet tool protocol (it accepts a vet .cfg file and the
// -V=full version handshake), so it can run as
// `go vet -vettool=$(which peachlint) ./...`.
package analysis
