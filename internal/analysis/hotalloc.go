package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc flags alloc-introducing constructs inside functions annotated
// //peachstar:hotpath: fmt calls, string concatenation and
// string<->[]byte conversions, interface boxing of non-pointer values,
// closures that capture variables, map/chan literals and makes, and append
// to a local slice that was not pre-sized. It turns the runtime
// TestSteadyStateExecAllocBudget guard (a lagging, whole-loop indicator)
// into a file:line diagnostic at the offending expression. Allocations
// that are genuinely off the steady-state path (slab growth, first-call
// sizing) are acknowledged with //peachstar:allocok <reason>.
var Hotalloc = &Analyzer{
	Name:     "hotalloc",
	Doc:      "flag alloc-introducing constructs in //peachstar:hotpath functions",
	Suppress: DirAllocOK,
	Run:      runHotalloc,
}

func runHotalloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !pass.FuncHasDirective(fn, DirHotpath) {
				continue
			}
			h := &hotallocChecker{pass: pass, fn: fn}
			h.classifyLocals()
			ast.Inspect(fn.Body, h.visit)
		}
	}
}

type hotallocChecker struct {
	pass *Pass
	fn   *ast.FuncDecl
	// unpresized holds local slice vars declared without capacity (var s
	// []T, s := []T{...}); appending to them grows in-loop.
	unpresized map[types.Object]bool
}

// classifyLocals records which local slice variables were declared without
// a capacity, so append to them can be flagged while append into a
// caller-provided or make(cap)'d slice stays clean.
func (h *hotallocChecker) classifyLocals() {
	h.unpresized = map[types.Object]bool{}
	info := h.pass.TypesInfo
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil || !isSlice(obj.Type()) {
						continue
					}
					if len(vs.Values) == 0 {
						h.unpresized[obj] = true // var s []T — nil slice
					} else if i < len(vs.Values) && unpresizedExpr(info, vs.Values[i]) {
						h.unpresized[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj != nil && isSlice(obj.Type()) && unpresizedExpr(info, n.Rhs[i]) {
					h.unpresized[obj] = true
				}
			}
		}
		return true
	})
}

// unpresizedExpr reports whether the initialiser yields a slice with no
// useful capacity: a composite literal (empty or seeded, growth follows)
// qualifies; make with an explicit length/capacity, a subslice, or a call
// result does not.
func unpresizedExpr(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return isSlice(info.Types[e].Type)
	case *ast.CallExpr:
		// make carries an explicit size; other call results are the
		// callee's responsibility.
		return false
	default:
		return false
	}
}

func isSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func (h *hotallocChecker) visit(n ast.Node) bool {
	pass := h.pass
	switch n := n.(type) {
	case *ast.CallExpr:
		h.call(n)
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isStringType(pass.TypesInfo.Types[n].Type) {
			pass.Reportf(n.OpPos, "string concatenation allocates in hotpath %s", h.fn.Name.Name)
		}
	case *ast.AssignStmt:
		if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.TypesInfo.Types[n.Lhs[0]].Type) {
			pass.Reportf(n.TokPos, "string concatenation allocates in hotpath %s", h.fn.Name.Name)
		}
		if n.Tok == token.ASSIGN {
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					h.boxing(n.Rhs[i], pass.TypesInfo.Types[lhs].Type)
				}
			}
		}
	case *ast.GenDecl:
		if n.Tok == token.VAR {
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && vs.Type != nil {
					declared := pass.TypesInfo.Types[vs.Type].Type
					for _, v := range vs.Values {
						h.boxing(v, declared)
					}
				}
			}
		}
	case *ast.CompositeLit:
		if t := pass.TypesInfo.Types[n].Type; t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map literal allocates in hotpath %s", h.fn.Name.Name)
			}
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "&-composite literal escapes to the heap in hotpath %s", h.fn.Name.Name)
			}
		}
	case *ast.FuncLit:
		if capt := h.captures(n); capt != "" {
			pass.Reportf(n.Pos(), "closure captures %s and allocates in hotpath %s", capt, h.fn.Name.Name)
		}
		return false // don't descend: inner code runs when the closure does
	}
	return true
}

// call classifies a call expression: fmt.*, make(map/chan), conversions
// between string and byte/rune slices, append to un-presized locals, and
// interface boxing of arguments.
func (h *hotallocChecker) call(call *ast.CallExpr) {
	pass := h.pass
	info := pass.TypesInfo

	if path, name := pkgFunc(info, call); path == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates (formatting, boxing) in hotpath %s", name, h.fn.Name.Name)
		return
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.Types[call.Args[0]].Type
		if isStringType(dst) && isByteOrRuneSlice(src) {
			pass.Reportf(call.Pos(), "[]byte-to-string conversion allocates in hotpath %s", h.fn.Name.Name)
		}
		if isByteOrRuneSlice(dst) && isStringType(src) {
			pass.Reportf(call.Pos(), "string-to-slice conversion allocates in hotpath %s", h.fn.Name.Name)
		}
		return
	}

	// Builtins: make(map/chan), append to un-presized local.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := usesOf(info, id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					switch info.Types[call.Args[0]].Type.Underlying().(type) {
					case *types.Map:
						pass.Reportf(call.Pos(), "make(map) allocates in hotpath %s", h.fn.Name.Name)
					case *types.Chan:
						pass.Reportf(call.Pos(), "make(chan) allocates in hotpath %s", h.fn.Name.Name)
					}
				}
			case "new":
				pass.Reportf(call.Pos(), "new(T) allocates in hotpath %s", h.fn.Name.Name)
			case "append":
				if len(call.Args) > 0 {
					if sid, ok := call.Args[0].(*ast.Ident); ok {
						if obj := usesOf(info, sid); obj != nil && h.unpresized[obj] {
							pass.Reportf(call.Pos(), "append to un-presized local %q grows in hotpath %s (pre-size with make or reuse scratch)", sid.Name, h.fn.Name.Name)
						}
					}
				}
			}
			return
		}
	}

	// Interface boxing of arguments.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis != token.NoPos {
		return // s... spreads an existing slice; no per-element boxing here
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		h.boxing(arg, pt)
	}
}

// boxing reports arg if storing it into a destination of interface type
// heap-allocates: the value is concrete and not pointer-shaped.
func (h *hotallocChecker) boxing(arg ast.Expr, dst types.Type) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv := h.pass.TypesInfo.Types[arg]
	src := tv.Type
	if src == nil || tv.IsNil() {
		return
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return // interface-to-interface: no new allocation
	}
	if pointerShaped(src) {
		return // pointers/chans/maps/funcs store directly in the iface word
	}
	h.pass.Reportf(arg.Pos(), "interface boxing of %s allocates in hotpath %s", types.TypeString(src, types.RelativeTo(h.pass.Pkg)), h.fn.Name.Name)
}

// captures returns the name of a variable the closure captures from the
// enclosing function, or "" if it captures nothing (a static closure).
func (h *hotallocChecker) captures(lit *ast.FuncLit) string {
	info := h.pass.TypesInfo
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside the
		// literal itself.
		if v.Pos() >= h.fn.Pos() && v.Pos() < h.fn.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit directly in an interface's
// data word without allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
