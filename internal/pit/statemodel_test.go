package pit

import (
	"strings"
	"testing"
)

const statefulPit = `
<Pit>
  <DataModel name="StartDT">
    <Number name="start" size="8" value="0x68" token="true"/>
    <Number name="ctrl" size="8" value="0x07"/>
  </DataModel>
  <DataModel name="Read">
    <Number name="start" size="8" value="0x68" token="true"/>
    <Blob name="body" minSize="0" maxSize="8"/>
  </DataModel>
  <StateModel name="Session" initialState="stopped" maxSteps="6">
    <State name="stopped">
      <Action type="output" ref="StartDT" next="started"/>
    </State>
    <State name="started">
      <Action type="output" ref="Read"/>
      <Action type="output" ref="StartDT" next="stopped"/>
    </State>
  </StateModel>
</Pit>`

func TestParseDocumentStateModel(t *testing.T) {
	doc, err := ParseDocumentString(statefulPit)
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	if len(doc.Models) != 2 {
		t.Fatalf("models = %d, want 2", len(doc.Models))
	}
	if len(doc.StateModels) != 1 {
		t.Fatalf("state models = %d, want 1", len(doc.StateModels))
	}
	sm := doc.StateModels[0]
	if sm.Name != "Session" || sm.MaxSteps != 6 {
		t.Fatalf("got %q maxSteps=%d", sm.Name, sm.MaxSteps)
	}
	if sm.Initial != sm.StateIndex("stopped") {
		t.Fatalf("initial = %d, want stopped", sm.Initial)
	}
	started := sm.StateIndex("started")
	if started < 0 {
		t.Fatalf("no started state")
	}
	acts := sm.States[sm.Initial].Actions
	if len(acts) != 1 || acts[0].Model != "StartDT" || acts[0].Next != started {
		t.Fatalf("stopped actions wrong: %+v", acts)
	}
	// Omitted next= self-loops.
	if got := sm.States[started].Actions[0]; got.Model != "Read" || got.Next != started {
		t.Fatalf("started self-loop wrong: %+v", got)
	}
	if err := sm.Validate(); err != nil {
		t.Fatalf("parsed model invalid: %v", err)
	}
}

// TestParseIgnoresStateModel: the legacy Parse entry point must keep
// returning just the data models for stateful documents.
func TestParseIgnoresStateModel(t *testing.T) {
	models, err := ParseString(statefulPit)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(models) != 2 {
		t.Fatalf("models = %d, want 2", len(models))
	}
}

func TestParseDocumentStateModelErrors(t *testing.T) {
	cases := []struct{ name, fragment, want string }{
		{"bad-ref", `<State name="a"><Action ref="NoSuch"/></State>`, "not a declared DataModel"},
		{"bad-next", `<State name="a"><Action ref="StartDT" next="nowhere"/></State>`, "not a declared state"},
		{"bad-type", `<State name="a"><Action type="input" ref="StartDT"/></State>`, "unsupported type"},
		{"no-ref", `<State name="a"><Action/></State>`, "missing ref"},
		{"dup-state", `<State name="a"><Action ref="StartDT"/></State><State name="a"/>`, "duplicate state"},
	}
	for _, tc := range cases {
		doc := `<Pit><DataModel name="StartDT"><Number name="n" size="8"/></DataModel>` +
			`<StateModel name="SM">` + tc.fragment + `</StateModel></Pit>`
		_, err := ParseDocumentString(doc)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := ParseDocumentString(`<Pit><DataModel name="D"><Number name="n" size="8"/></DataModel>` +
		`<StateModel name="SM" initialState="ghost"><State name="a"><Action ref="D"/></State></StateModel></Pit>`); err == nil {
		t.Fatalf("undeclared initialState accepted")
	}
}
