package pit

import (
	"strings"
	"testing"

	"repro/internal/datamodel"
)

const samplePit = `
<Pit>
  <DataModel name="ReadHoldingRegisters">
    <Number name="fc" size="8" value="3" token="true"/>
    <Number name="len" size="16">
      <Relation type="size" of="body"/>
    </Number>
    <Block name="body">
      <Number name="addr" size="16" value="0"/>
      <Blob name="data" minSize="0" maxSize="32" value="0102"/>
    </Block>
    <Number name="crc" size="16" endian="little">
      <Fixup class="Crc16Modbus" over="fc,len,body"/>
    </Number>
  </DataModel>
  <DataModel name="WithChoice">
    <Choice name="cmd">
      <Block name="a"><Number name="opA" size="8" value="1" token="true"/></Block>
      <Block name="b"><Number name="opB" size="8" value="2" token="true"/></Block>
    </Choice>
  </DataModel>
  <DataModel name="WithArray">
    <Number name="n" size="8"><Relation type="count" of="items"/></Number>
    <Array name="items" maxCount="5">
      <Number name="item" size="16" legal="1,2,0x10"/>
    </Array>
  </DataModel>
</Pit>`

func TestParseSample(t *testing.T) {
	models, err := ParseString(samplePit)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(models) != 3 {
		t.Fatalf("models = %d", len(models))
	}
	m := models[0]
	if m.Name != "ReadHoldingRegisters" {
		t.Fatalf("name = %s", m.Name)
	}
	op, ok := m.Opcode()
	if !ok || op != 3 {
		t.Fatalf("opcode = %d,%v", op, ok)
	}
	// Generated instance must be internally consistent and re-crackable.
	n := m.Generate()
	if !m.VerifyFixups(n) {
		t.Fatal("generated pit model instance fails verification")
	}
	if _, err := m.Crack(n.Bytes()); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestParsedEndianness(t *testing.T) {
	models, _ := ParseString(samplePit)
	var crc *datamodel.Chunk
	var find func(c *datamodel.Chunk)
	for _, f := range models[0].Fields {
		find = func(c *datamodel.Chunk) {
			if c.Name == "crc" {
				crc = c
			}
			for _, ch := range c.Children {
				find(ch)
			}
		}
		find(f)
	}
	if crc == nil || crc.Endian != datamodel.Little {
		t.Fatal("crc should be little-endian")
	}
	if crc.Fix == nil || crc.Fix.Kind != datamodel.CRC16Modbus || len(crc.Fix.Over) != 3 {
		t.Fatalf("fixup = %+v", crc.Fix)
	}
}

func TestParsedLegalSet(t *testing.T) {
	models, _ := ParseString(samplePit)
	m := models[2]
	inst, err := m.Crack([]byte{2, 0, 1, 0, 0x10})
	if err != nil {
		t.Fatalf("crack: %v", err)
	}
	if len(inst.Find("items").Children) != 2 {
		t.Fatal("array count wrong")
	}
	if _, err := m.Crack([]byte{1, 0, 9}); err == nil {
		t.Fatal("value 9 violates legal set; crack should fail")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":          `<<<`,
		"no models":        `<Pit></Pit>`,
		"unnamed model":    `<Pit><DataModel><Number name="a" size="8"/></DataModel></Pit>`,
		"bad number size":  `<Pit><DataModel name="m"><Number name="a" size="12"/></DataModel></Pit>`,
		"bad legal":        `<Pit><DataModel name="m"><Number name="a" size="8" legal="x"/></DataModel></Pit>`,
		"unknown element":  `<Pit><DataModel name="m"><Widget name="a"/></DataModel></Pit>`,
		"bad relation":     `<Pit><DataModel name="m"><Number name="a" size="8"><Relation type="zap" of="a"/></Number></DataModel></Pit>`,
		"relation no of":   `<Pit><DataModel name="m"><Number name="a" size="8"><Relation type="size"/></Number></DataModel></Pit>`,
		"unknown fixup":    `<Pit><DataModel name="m"><Number name="a" size="8"><Fixup class="Magic" over="a"/></Number></DataModel></Pit>`,
		"fixup no over":    `<Pit><DataModel name="m"><Number name="a" size="8"><Fixup class="Crc32" over=""/></Number></DataModel></Pit>`,
		"dangling rel":     `<Pit><DataModel name="m"><Number name="a" size="8"><Relation type="size" of="ghost"/></Number></DataModel></Pit>`,
		"bad hex":          `<Pit><DataModel name="m"><Blob name="a" size="2" value="zz"/></DataModel></Pit>`,
		"array two proto":  `<Pit><DataModel name="m"><Array name="a"><Number name="x" size="8"/><Number name="y" size="8"/></Array></DataModel></Pit>`,
		"top-level fixup":  `<Pit><DataModel name="m"><Fixup class="Crc32" over="x"/></DataModel></Pit>`,
		"bad blob minsize": `<Pit><DataModel name="m"><Blob name="a" minSize="q"/></DataModel></Pit>`,
	}
	for name, doc := range cases {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestHexValueParsing(t *testing.T) {
	models, err := ParseString(`<Pit><DataModel name="m"><Blob name="a" size="3" value="0a 0b 0c"/></DataModel></Pit>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n := models[0].Generate()
	got := n.Find("a").Data
	if got[0] != 0x0a || got[1] != 0x0b || got[2] != 0x0c {
		t.Fatalf("blob default = %x", got)
	}
}

func TestHexNumberValue(t *testing.T) {
	models, err := ParseString(`<Pit><DataModel name="m"><Number name="a" size="16" value="0xABCD"/></DataModel></Pit>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if models[0].Generate().Find("a").Uint() != 0xABCD {
		t.Fatal("hex number value wrong")
	}
}

func TestParseReader(t *testing.T) {
	models, err := Parse(strings.NewReader(samplePit))
	if err != nil || len(models) != 3 {
		t.Fatalf("Parse(reader) = %d models, %v", len(models), err)
	}
}
