// Package pit parses Pit files — the XML format specifications Peach (and
// therefore Peach*) consumes. The paper's evaluation "used the existing pit
// file of Peach" (§V-A); this package provides the equivalent input path for
// this reproduction, so that users can describe new protocols without
// writing Go.
//
// The dialect is a faithful subset of Peach 3 Pit semantics with a compact
// syntax:
//
//	<Pit>
//	  <DataModel name="ReadHoldingRegisters">
//	    <Number name="fc" size="8" value="3" token="true"/>
//	    <Number name="count" size="16" endian="big">
//	      <Relation type="size" of="body"/>
//	    </Number>
//	    <Block name="body">
//	      <Blob name="data" minSize="0" maxSize="32"/>
//	    </Block>
//	    <Number name="crc" size="16">
//	      <Fixup class="Crc16Modbus" over="fc,count,body"/>
//	    </Number>
//	  </DataModel>
//	</Pit>
//
// As in Peach, Number sizes are in bits (8/16/32/64); String/Blob sizes are
// in bytes.
package pit

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/datamodel"
)

// xmlPit mirrors the document root.
type xmlPit struct {
	XMLName     xml.Name        `xml:"Pit"`
	DataModels  []xmlChunk      `xml:"DataModel"`
	StateModels []xmlStateModel `xml:"StateModel"`
}

// xmlChunk is the recursive element form shared by all chunk kinds.
type xmlChunk struct {
	XMLName xml.Name
	Name    string `xml:"name,attr"`
	Size    string `xml:"size,attr"`
	MinSize string `xml:"minSize,attr"`
	MaxSize string `xml:"maxSize,attr"`
	Value   string `xml:"value,attr"`
	Endian  string `xml:"endian,attr"`
	Token   string `xml:"token,attr"`
	Legal   string `xml:"legal,attr"`
	MaxCnt  string `xml:"maxCount,attr"`

	Relation *xmlRelation `xml:"Relation"`
	Fixup    *xmlFixup    `xml:"Fixup"`

	Children []xmlChunk `xml:",any"`
}

type xmlRelation struct {
	Type   string `xml:"type,attr"`
	Of     string `xml:"of,attr"`
	Adjust string `xml:"adjust,attr"`
}

type xmlFixup struct {
	Class string `xml:"class,attr"`
	Over  string `xml:"over,attr"`
}

// Parse reads a Pit document and returns its data models, validated.
// <StateModel> elements are ignored; use ParseDocument for both halves.
func Parse(r io.Reader) ([]*datamodel.Model, error) {
	var doc xmlPit
	if err := decodePit(r, &doc); err != nil {
		return nil, err
	}
	return convertModels(&doc)
}

// decodePit unmarshals the XML root.
func decodePit(r io.Reader, doc *xmlPit) error {
	if err := xml.NewDecoder(r).Decode(doc); err != nil {
		return fmt.Errorf("pit: %w", err)
	}
	return nil
}

// convertModels validates and converts the document's data models.
func convertModels(doc *xmlPit) ([]*datamodel.Model, error) {
	if len(doc.DataModels) == 0 {
		return nil, fmt.Errorf("pit: document declares no DataModel")
	}
	var models []*datamodel.Model
	for i := range doc.DataModels {
		dm := &doc.DataModels[i]
		if dm.Name == "" {
			return nil, fmt.Errorf("pit: DataModel %d has no name", i)
		}
		var fields []*datamodel.Chunk
		for j := range dm.Children {
			c, err := convert(&dm.Children[j])
			if err != nil {
				return nil, fmt.Errorf("pit: model %s: %w", dm.Name, err)
			}
			fields = append(fields, c)
		}
		m := &datamodel.Model{Name: dm.Name, Fields: fields}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("pit: %w", err)
		}
		models = append(models, m)
	}
	return models, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) ([]*datamodel.Model, error) {
	return Parse(strings.NewReader(s))
}

// convert maps one XML element to a datamodel chunk.
func convert(x *xmlChunk) (*datamodel.Chunk, error) {
	switch x.XMLName.Local {
	case "Number":
		bits, err := atoiDefault(x.Size, 0)
		if err != nil || bits%8 != 0 || bits < 8 || bits > 64 {
			return nil, fmt.Errorf("number %q: bad size %q (want 8/16/32/64 bits)", x.Name, x.Size)
		}
		c := &datamodel.Chunk{Name: x.Name, Kind: datamodel.Number, Width: bits / 8}
		if x.Endian == "little" {
			c.Endian = datamodel.Little
		}
		if x.Value != "" {
			v, err := parseUint(x.Value)
			if err != nil {
				return nil, fmt.Errorf("number %q: bad value %q", x.Name, x.Value)
			}
			c.Default = v
		}
		if x.Token == "true" {
			c.Token = true
		}
		if x.Legal != "" {
			for _, part := range strings.Split(x.Legal, ",") {
				v, err := parseUint(strings.TrimSpace(part))
				if err != nil {
					return nil, fmt.Errorf("number %q: bad legal value %q", x.Name, part)
				}
				c.Legal = append(c.Legal, v)
			}
		}
		if err := attachConstraints(c, x); err != nil {
			return nil, err
		}
		return c, nil

	case "String", "Blob":
		kind := datamodel.String
		if x.XMLName.Local == "Blob" {
			kind = datamodel.Blob
		}
		c := &datamodel.Chunk{Name: x.Name, Kind: kind, Size: datamodel.Variable}
		if x.Size != "" {
			n, err := atoiDefault(x.Size, 0)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%s %q: bad size %q", x.XMLName.Local, x.Name, x.Size)
			}
			c.Size = n
		} else {
			min, err := atoiDefault(x.MinSize, 0)
			if err != nil {
				return nil, fmt.Errorf("%s %q: bad minSize", x.XMLName.Local, x.Name)
			}
			max, err := atoiDefault(x.MaxSize, 0)
			if err != nil {
				return nil, fmt.Errorf("%s %q: bad maxSize", x.XMLName.Local, x.Name)
			}
			c.MinSize, c.MaxSize = min, max
		}
		if x.Value != "" {
			if kind == datamodel.String {
				c.DefaultBytes = []byte(x.Value)
			} else {
				b, err := parseHex(x.Value)
				if err != nil {
					return nil, fmt.Errorf("blob %q: bad hex value %q", x.Name, x.Value)
				}
				c.DefaultBytes = b
			}
		}
		if err := attachConstraints(c, x); err != nil {
			return nil, err
		}
		return c, nil

	case "Block", "Choice":
		kind := datamodel.Block
		if x.XMLName.Local == "Choice" {
			kind = datamodel.Choice
		}
		c := &datamodel.Chunk{Name: x.Name, Kind: kind}
		for i := range x.Children {
			ch, err := convert(&x.Children[i])
			if err != nil {
				return nil, err
			}
			c.Children = append(c.Children, ch)
		}
		return c, nil

	case "Array":
		if len(x.Children) != 1 {
			return nil, fmt.Errorf("array %q: want exactly one element prototype", x.Name)
		}
		el, err := convert(&x.Children[0])
		if err != nil {
			return nil, err
		}
		maxCount, err := atoiDefault(x.MaxCnt, 0)
		if err != nil {
			return nil, fmt.Errorf("array %q: bad maxCount", x.Name)
		}
		return &datamodel.Chunk{Name: x.Name, Kind: datamodel.Array, Children: []*datamodel.Chunk{el}, MaxCount: maxCount}, nil

	case "Relation", "Fixup":
		return nil, fmt.Errorf("%s must be nested inside a field element", x.XMLName.Local)
	default:
		return nil, fmt.Errorf("unknown element <%s>", x.XMLName.Local)
	}
}

// attachConstraints wires Relation/Fixup sub-elements onto a leaf chunk.
func attachConstraints(c *datamodel.Chunk, x *xmlChunk) error {
	if x.Relation != nil {
		var kind datamodel.RelKind
		switch x.Relation.Type {
		case "size":
			kind = datamodel.SizeOf
		case "count":
			kind = datamodel.CountOf
		case "offset":
			kind = datamodel.OffsetOf
		default:
			return fmt.Errorf("field %q: unknown relation type %q", x.Name, x.Relation.Type)
		}
		adj, err := atoiDefault(x.Relation.Adjust, 0)
		if err != nil {
			return fmt.Errorf("field %q: bad relation adjust", x.Name)
		}
		if x.Relation.Of == "" {
			return fmt.Errorf("field %q: relation lacks of=", x.Name)
		}
		c.Rel = &datamodel.Relation{Kind: kind, Of: x.Relation.Of, Adjust: adj}
	}
	if x.Fixup != nil {
		var kind datamodel.FixKind
		switch x.Fixup.Class {
		case "Crc32", "Crc32Fixup":
			kind = datamodel.CRC32IEEE
		case "Crc16Modbus":
			kind = datamodel.CRC16Modbus
		case "Crc16Dnp":
			kind = datamodel.CRC16DNP
		case "Sum8":
			kind = datamodel.Sum8
		case "LRC":
			kind = datamodel.LRC
		default:
			return fmt.Errorf("field %q: unknown fixup class %q", x.Name, x.Fixup.Class)
		}
		var over []string
		for _, part := range strings.Split(x.Fixup.Over, ",") {
			if p := strings.TrimSpace(part); p != "" {
				over = append(over, p)
			}
		}
		if len(over) == 0 {
			return fmt.Errorf("field %q: fixup covers nothing", x.Name)
		}
		c.Fix = &datamodel.Fixup{Kind: kind, Over: over}
	}
	return nil
}

func atoiDefault(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func parseUint(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

func parseHex(s string) ([]byte, error) {
	s = strings.ReplaceAll(s, " ", "")
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd hex length")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		v, err := strconv.ParseUint(s[2*i:2*i+2], 16, 8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}
