package pit

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/datamodel"
	"repro/internal/session"
)

// The <StateModel> dialect, alongside <DataModel>:
//
//	<StateModel name="Session" initialState="stopped" maxSteps="8">
//	  <State name="stopped">
//	    <Action type="output" ref="StartDT" next="started"/>
//	  </State>
//	  <State name="started">
//	    <Action type="output" ref="ReadCommand"/>
//	  </State>
//	</StateModel>
//
// An Action's ref names a DataModel in the same document; next names the
// destination state and defaults to the current state (self-loop), which
// matches how Peach pits model "send and stay". Only output actions are
// supported — the engine fuzzes what it sends.

// xmlStateModel mirrors a <StateModel> element.
type xmlStateModel struct {
	Name     string     `xml:"name,attr"`
	Initial  string     `xml:"initialState,attr"`
	MaxSteps string     `xml:"maxSteps,attr"`
	States   []xmlState `xml:"State"`
}

type xmlState struct {
	Name    string      `xml:"name,attr"`
	Actions []xmlAction `xml:"Action"`
}

type xmlAction struct {
	Type string `xml:"type,attr"`
	Ref  string `xml:"ref,attr"`
	Next string `xml:"next,attr"`
}

// Document is a fully parsed Pit file: the data models plus any session
// state machines that reference them.
type Document struct {
	Models      []*datamodel.Model
	StateModels []*session.StateModel
}

// ParseDocument reads a Pit document and returns both halves, validated.
// Unlike Parse, it also converts <StateModel> elements; every Action ref
// must resolve to a DataModel declared in the same document.
func ParseDocument(r io.Reader) (*Document, error) {
	var doc xmlPit
	if err := decodePit(r, &doc); err != nil {
		return nil, err
	}
	models, err := convertModels(&doc)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool, len(models))
	for _, m := range models {
		known[m.Name] = true
	}
	out := &Document{Models: models}
	for i := range doc.StateModels {
		sm, err := convertStateModel(&doc.StateModels[i], known)
		if err != nil {
			return nil, err
		}
		out.StateModels = append(out.StateModels, sm)
	}
	return out, nil
}

// ParseDocumentString is ParseDocument over an in-memory document.
func ParseDocumentString(s string) (*Document, error) {
	return ParseDocument(strings.NewReader(s))
}

// convertStateModel maps one <StateModel> element onto a session model.
func convertStateModel(x *xmlStateModel, knownModels map[string]bool) (*session.StateModel, error) {
	if x.Name == "" {
		return nil, fmt.Errorf("pit: StateModel has no name")
	}
	sm := &session.StateModel{Name: x.Name}
	if x.MaxSteps != "" {
		n, err := atoiDefault(x.MaxSteps, 0)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("pit: StateModel %s: bad maxSteps %q", x.Name, x.MaxSteps)
		}
		sm.MaxSteps = n
	}
	index := make(map[string]int, len(x.States))
	for i, st := range x.States {
		if st.Name == "" {
			return nil, fmt.Errorf("pit: StateModel %s: state %d has no name", x.Name, i)
		}
		if _, dup := index[st.Name]; dup {
			return nil, fmt.Errorf("pit: StateModel %s: duplicate state %q", x.Name, st.Name)
		}
		index[st.Name] = i
		sm.States = append(sm.States, session.State{Name: st.Name})
	}
	if x.Initial == "" {
		sm.Initial = 0
	} else {
		i, ok := index[x.Initial]
		if !ok {
			return nil, fmt.Errorf("pit: StateModel %s: initialState %q is not a declared state", x.Name, x.Initial)
		}
		sm.Initial = i
	}
	for si, st := range x.States {
		for ai, a := range st.Actions {
			if a.Type != "" && a.Type != "output" {
				return nil, fmt.Errorf("pit: StateModel %s: state %q action %d: unsupported type %q (only output)", x.Name, st.Name, ai, a.Type)
			}
			if a.Ref == "" {
				return nil, fmt.Errorf("pit: StateModel %s: state %q action %d: missing ref", x.Name, st.Name, ai)
			}
			if !knownModels[a.Ref] {
				return nil, fmt.Errorf("pit: StateModel %s: state %q action %d: ref %q is not a declared DataModel", x.Name, st.Name, ai, a.Ref)
			}
			next := si
			if a.Next != "" {
				n, ok := index[a.Next]
				if !ok {
					return nil, fmt.Errorf("pit: StateModel %s: state %q action %d: next %q is not a declared state", x.Name, st.Name, ai, a.Next)
				}
				next = n
			}
			sm.States[si].Actions = append(sm.States[si].Actions, session.Action{Model: a.Ref, Next: next})
		}
	}
	if err := sm.Validate(); err != nil {
		return nil, fmt.Errorf("pit: %w", err)
	}
	return sm, nil
}
