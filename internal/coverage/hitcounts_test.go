package coverage

import "testing"

// TestSnapshotMatchesFullCopy pins the dirty-walk Snapshot against the
// obvious reference — a full copy of the raw map — across random hit
// patterns of varying density, including the empty tracer and a tracer
// reused after Reset (the case a stale dirty index would break).
func TestSnapshotMatchesFullCopy(t *testing.T) {
	check := func(tr *Tracer, what string) {
		t.Helper()
		got := tr.Snapshot()
		want := append([]byte(nil), tr.Raw()...)
		if len(got) != MapSize {
			t.Fatalf("%s: snapshot length %d, want %d", what, len(got), MapSize)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: snapshot[%#x] = %d, raw map has %d", what, i, got[i], want[i])
			}
		}
	}
	check(NewTracer(), "empty")
	for round := 0; round < 10; round++ {
		check(hitTracer(1+round*80, uint64(round+3)), "random")
	}
	tr := hitTracer(500, 17)
	tr.Reset()
	check(tr, "after Reset")
	tr.Hit(7)
	tr.Hit(9000)
	check(tr, "reused after Reset")
}

// TestAppendEdgesMatchesRaw: the appended edge list is exactly the set of
// non-zero map indices, in ascending order, with length CountEdges — the
// identity the scheduler relies on when it stores a valuable trace's edge
// list for rarity scoring and distillation.
func TestAppendEdgesMatchesRaw(t *testing.T) {
	for round := 0; round < 10; round++ {
		tr := hitTracer(20+round*70, uint64(round+11))
		edges := tr.AppendEdges(nil)
		if len(edges) != tr.CountEdges() {
			t.Fatalf("round %d: %d edges appended, CountEdges = %d", round, len(edges), tr.CountEdges())
		}
		for i := 1; i < len(edges); i++ {
			if edges[i-1] >= edges[i] {
				t.Fatalf("round %d: edge list not strictly ascending at %d: %v >= %v",
					round, i, edges[i-1], edges[i])
			}
		}
		inList := make(map[uint16]bool, len(edges))
		for _, e := range edges {
			if tr.Raw()[e] == 0 {
				t.Fatalf("round %d: appended edge %#x is zero in the map", round, e)
			}
			inList[e] = true
		}
		for i, c := range tr.Raw() {
			if c != 0 && !inList[uint16(i)] {
				t.Fatalf("round %d: lit edge %#x missing from the list", round, i)
			}
		}
	}
}

// TestAppendEdgesAppends: AppendEdges extends dst in place rather than
// replacing it, so callers can reuse a scratch slice.
func TestAppendEdgesAppends(t *testing.T) {
	tr := NewTracer()
	tr.Hit(5)
	edges := tr.AppendEdges([]uint16{0xFFFF})
	if len(edges) != 2 || edges[0] != 0xFFFF || edges[1] != 5 {
		t.Fatalf("AppendEdges did not append: %v", edges)
	}
}

// TestHitCountsAccumulate: each accumulated execution adds exactly one to
// every edge it lit — once per edge regardless of the raw hit count — and
// the exec denominator tracks calls.
func TestHitCountsAccumulate(t *testing.T) {
	h := NewHitCounts()
	if h.Execs() != 0 {
		t.Fatal("fresh HitCounts has execs")
	}

	tr := NewTracer()
	tr.Hit(100) // edge 100, and repeat so the counter exceeds 1
	tr.Hit(100)
	h.AccumulateTracer(tr)
	h.AccumulateTracer(tr)
	if h.Execs() != 2 {
		t.Fatalf("execs = %d, want 2", h.Execs())
	}
	for i := 0; i < MapSize; i++ {
		want := uint32(0)
		if tr.Raw()[i] != 0 {
			want = 2 // one per execution, not per raw hit
		}
		if got := h.Count(uint16(i)); got != want {
			t.Fatalf("count[%#x] = %d, want %d", i, got, want)
		}
	}

	// A different footprint only bumps its own edges.
	tr2 := NewTracer()
	tr2.Hit(4000)
	h.AccumulateTracer(tr2)
	if h.Count(4000^0) != 1 {
		t.Fatalf("new edge count = %d, want 1", h.Count(4000))
	}
	if h.Execs() != 3 {
		t.Fatalf("execs = %d, want 3", h.Execs())
	}
}

// TestHitCountsSaturate: a counter at the uint32 maximum stays there
// instead of wrapping to zero (which would make the edge read as
// infinitely rare).
func TestHitCountsSaturate(t *testing.T) {
	h := NewHitCounts()
	tr := NewTracer()
	tr.Hit(100)
	var edge uint16
	for i, c := range tr.Raw() {
		if c != 0 {
			edge = uint16(i)
		}
	}
	h.counts[edge] = ^uint32(0)
	h.AccumulateTracer(tr)
	if h.Count(edge) != ^uint32(0) {
		t.Fatalf("saturated counter moved to %d", h.Count(edge))
	}
}

// TestRarityScore: the 16.16 fixed-point sum, with never-counted edges
// treated as seen once so pre-sidecar edge lists stay scorable.
func TestRarityScore(t *testing.T) {
	h := NewHitCounts()
	h.counts[10] = 1
	h.counts[11] = 2
	h.counts[12] = 65536
	want := uint64(1<<16) + uint64(1<<15) + 1
	if got := h.RarityScore([]uint16{10, 11, 12}); got != want {
		t.Fatalf("score = %d, want %d", got, want)
	}
	// Edge 13 has count 0 → scored as count 1.
	if got := h.RarityScore([]uint16{13}); got != 1<<16 {
		t.Fatalf("uncounted edge score = %d, want %d", got, 1<<16)
	}
	if got := h.RarityScore(nil); got != 0 {
		t.Fatalf("empty list score = %d, want 0", got)
	}
}
