package coverage

import (
	"encoding/binary"
	"math/bits"
)

// This file implements the per-edge global hit accounting behind
// rarity-weighted seed selection: Virgin answers "has this (edge, bucket)
// ever been seen?", HitCounts answers "how often has this edge been lit
// across the campaign?". Seeds whose traces touch low-count edges exercise
// program states the campaign rarely reaches, which makes them the
// mutation bases and donor sources most likely to extend coverage — the
// AFL++ "favored by rarity" heuristic adapted to generation-based fuzzing.

// HitCounts is a sidecar of per-edge execution counters alongside a
// campaign's Virgin map: counts[i] is the number of executions that lit
// edge i at least once (not the summed raw hit counts — one execution
// contributes one, however hot its inner loop). Counters saturate instead
// of wrapping, so a campaign of any length keeps a total order on rarity.
//
// A HitCounts is not safe for concurrent use; each worker engine owns one,
// like its Tracer.
type HitCounts struct {
	counts [MapSize]uint32
	// execs is the number of executions accumulated, the denominator of
	// any frequency a consumer derives.
	execs uint64
}

// NewHitCounts returns an empty per-edge execution counter map.
func NewHitCounts() *HitCounts { return &HitCounts{} }

// AccumulateTracer folds one execution's footprint into the counters: every
// edge lit in the tracer's live map gains one, walking only dirty lines
// (the per-execution cost is proportional to the footprint, like
// MergeTracer's).
func (h *HitCounts) AccumulateTracer(t *Tracer) {
	h.execs++
	for wi, w := range t.dirty {
		for ; w != 0; w &= w - 1 {
			base := wi<<(dirtyShift+6) + bits.TrailingZeros64(w)<<dirtyShift
			for i := base; i < base+(1<<dirtyShift); i += 8 {
				lw := binary.LittleEndian.Uint64(t.buf[i : i+8])
				if lw == 0 {
					continue
				}
				for b := 0; b < 64; b += 8 {
					if byte(lw>>b) != 0 {
						if c := &h.counts[i+b/8]; *c != ^uint32(0) {
							*c++
						}
					}
				}
			}
		}
	}
}

// Count returns how many accumulated executions lit the edge.
func (h *HitCounts) Count(edge uint16) uint32 { return h.counts[edge] }

// Execs returns the number of executions accumulated so far.
func (h *HitCounts) Execs() uint64 { return h.execs }

// RarityScore sums the rarity of the given edges in 16.16 fixed point: an
// edge seen by n executions contributes 2^16/n, so a seed's score is
// dominated by its rarest edges while common framing edges contribute
// almost nothing. Edges never accumulated (count 0 — possible when the
// edge list predates the sidecar) count as seen once.
func (h *HitCounts) RarityScore(edges []uint16) uint64 {
	var score uint64
	for _, e := range edges {
		n := h.counts[e]
		if n == 0 {
			n = 1
		}
		score += (1 << 16) / uint64(n)
	}
	return score
}
