package coverage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/checkpoint"
)

// This file is the coverage layer's side of the campaign-checkpoint seam:
// Virgin and HitCounts serialize themselves through the canonical
// checkpoint codec. Both dumps are sparse — only non-zero words (Virgin)
// or non-zero counters (HitCounts) are written, in ascending index order —
// so a checkpoint costs space proportional to the coverage actually
// observed, the same dirty-word-aware discipline as the hot-path scans,
// and the byte stream is canonical (snapshot → restore → snapshot is the
// identical byte string).

// Snapshot writes the accumulator's observed state: the number of non-zero
// map words, then per word an ascending uvarint word index and the fixed
// 64-bit word. The edge counter is derived state and is recomputed on
// restore rather than stored.
func (v *Virgin) Snapshot(w *checkpoint.Writer) {
	seen := v.seen[:]
	n := 0
	for i := 0; i+8 <= len(seen); i += 8 {
		if binary.LittleEndian.Uint64(seen[i:i+8]) != 0 {
			n++
		}
	}
	w.Int(n)
	for i := 0; i+8 <= len(seen); i += 8 {
		sw := binary.LittleEndian.Uint64(seen[i : i+8])
		if sw == 0 {
			continue
		}
		w.Int(i / 8)
		w.U64(sw)
	}
}

// Restore overwrites the accumulator with a Snapshot-produced dump,
// recomputing the edge counter from the restored map. Word indices must be
// strictly ascending and in range; violations fail the restore and leave
// the reader's sticky error set.
func (v *Virgin) Restore(r *checkpoint.Reader) error {
	v.Reset()
	seen := v.seen[:]
	n := r.Count()
	prev := -1
	for i := 0; i < n && r.Err() == nil; i++ {
		wi := r.Int()
		sw := r.U64()
		if r.Err() != nil {
			break
		}
		if wi <= prev || wi >= MapSize/8 {
			return fmt.Errorf("coverage: virgin word index %d out of order or range", wi)
		}
		prev = wi
		binary.LittleEndian.PutUint64(seen[wi*8:wi*8+8], sw)
		for b := 0; b < 64; b += 8 {
			if byte(sw>>b) != 0 {
				v.edges++
			}
		}
	}
	return r.Err()
}

// Snapshot writes the counter map: the accumulated execution count, the
// number of non-zero counters, then per counter an ascending uvarint edge
// index and uvarint count.
func (h *HitCounts) Snapshot(w *checkpoint.Writer) {
	w.U64(h.execs)
	n := 0
	for _, c := range h.counts {
		if c != 0 {
			n++
		}
	}
	w.Int(n)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		w.Int(i)
		w.Uvarint(uint64(c))
	}
}

// Restore overwrites the counter map with a Snapshot-produced dump. Edge
// indices must be strictly ascending and in range, and counts must fit the
// 32-bit counters.
func (h *HitCounts) Restore(r *checkpoint.Reader) error {
	*h = HitCounts{}
	h.execs = r.U64()
	n := r.Count()
	prev := -1
	for i := 0; i < n && r.Err() == nil; i++ {
		e := r.Int()
		c := r.Uvarint()
		if r.Err() != nil {
			break
		}
		if e <= prev || e >= MapSize {
			return fmt.Errorf("coverage: hit-count edge %d out of order or range", e)
		}
		if c == 0 || c > uint64(^uint32(0)) {
			return fmt.Errorf("coverage: hit count %d for edge %d out of range", c, e)
		}
		prev = e
		h.counts[e] = uint32(c)
	}
	return r.Err()
}
