package coverage

import (
	"math/rand"
	"testing"
)

// TestClassifyWordVariantsMatchBucket pins both word classifiers — the wide
// 16-bit-LUT one and the compact 128-entry one — to the scalar bucket
// reference, byte-exhaustively in every lane position and over random
// words. This is the equivalence that lets bench-hotpath pick whichever
// variant is faster without a semantic question.
func TestClassifyWordVariantsMatchBucket(t *testing.T) {
	ref := func(w uint64) uint64 {
		var out uint64
		for b := 0; b < 64; b += 8 {
			out |= uint64(bucket(byte(w>>b))) << b
		}
		return out
	}
	for c := 0; c < 256; c++ {
		for b := 0; b < 64; b += 8 {
			w := uint64(c) << b
			if got, want := classifyWord(w), ref(w); got != want {
				t.Fatalf("classifyWord(%#x) = %#x, want %#x", w, got, want)
			}
			if got, want := classifyWordCompact(w), ref(w); got != want {
				t.Fatalf("classifyWordCompact(%#x) = %#x, want %#x", w, got, want)
			}
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		w := r.Uint64()
		want := ref(w)
		if got := classifyWord(w); got != want {
			t.Fatalf("classifyWord(%#x) = %#x, want %#x", w, got, want)
		}
		if got := classifyWordCompact(w); got != want {
			t.Fatalf("classifyWordCompact(%#x) = %#x, want %#x", w, got, want)
		}
	}
}

// The classifier benchmarks feed both variants the same mixed word stream
// (sparse low counts, the occasional saturated byte) so the choice between
// them is made on measurements, not taste. Run via make bench-hotpath's
// coverage microbench companion:
//
//	go test ./internal/coverage -bench 'BenchmarkClassifyWord' -run XXX

var classifyWords = func() []uint64 {
	r := rand.New(rand.NewSource(2))
	words := make([]uint64, 4096)
	for i := range words {
		var w uint64
		for b := 0; b < 64; b += 8 {
			switch r.Intn(4) {
			case 0: // zero lane, the common sparse case
			case 1:
				w |= uint64(1+r.Intn(3)) << b
			case 2:
				w |= uint64(r.Intn(128)) << b
			case 3:
				w |= uint64(128+r.Intn(128)) << b
			}
		}
		words[i] = w
	}
	return words
}()

var classifySink uint64

func BenchmarkClassifyWordWide(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= classifyWord(classifyWords[i&4095])
	}
	classifySink = acc
}

func BenchmarkClassifyWordCompact(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= classifyWordCompact(classifyWords[i&4095])
	}
	classifySink = acc
}
