// Package coverage implements the AFL-style edge-coverage substrate that
// Peach* layers on top of generation-based fuzzing (paper §IV-B).
//
// The paper instruments branch points of the target protocol program with
//
//	cur_location = <COMPILE_TIME_RANDOM>;
//	shared_mem[cur_location ^ prev_location]++;
//	prev_location = cur_location >> 1;
//
// This package reproduces that scheme exactly. Targets in this repository are
// Go reimplementations of the C libraries the paper fuzzes, so instead of an
// LLVM pass the instrumentation is an explicit call, Tracer.Hit, placed at
// branch points. Block identifiers play the role of the compile-time random
// values; they are drawn from a deterministic per-site generator (see
// Region) so that runs are reproducible.
package coverage

// MapSize is the size of the shared coverage byte map. AFL and the paper's
// prototype both use a 64 KiB map, which keeps collision rates low for
// programs up to a few tens of thousands of branch points.
const MapSize = 1 << 16

// BlockID identifies an instrumented basic block. It stands in for the
// compile-time random value in the paper's instrumentation snippet.
type BlockID uint16

// Tracer records edge coverage for a single execution of a target. It is the
// shared_mem[] region plus the prev_location register from the paper.
//
// A Tracer is not safe for concurrent use; each fuzzing worker owns one.
type Tracer struct {
	buf  [MapSize]byte
	prev BlockID
}

// NewTracer returns a tracer with an empty coverage map.
func NewTracer() *Tracer { return &Tracer{} }

// Hit records entry into basic block cur, updating the edge counter for the
// transition prev -> cur. This is a verbatim transcription of the paper's
// instrumentation stub.
func (t *Tracer) Hit(cur BlockID) {
	t.buf[uint16(cur)^uint16(t.prev)]++
	t.prev = cur >> 1
}

// Reset clears the map and the previous-location register, preparing the
// tracer for the next execution.
func (t *Tracer) Reset() {
	t.buf = [MapSize]byte{}
	t.prev = 0
}

// ResetEdge clears only the previous-location register. Targets call this at
// the top of a packet-handling entry point so that edges do not leak across
// independent packets when the map itself is being accumulated.
func (t *Tracer) ResetEdge() { t.prev = 0 }

// Snapshot copies the current coverage map. The copy is bucketed lazily by
// the consumer; raw hit counts are preserved here.
func (t *Tracer) Snapshot() []byte {
	out := make([]byte, MapSize)
	copy(out, t.buf[:])
	return out
}

// Raw exposes the live map for zero-copy consumers such as Virgin.Merge.
// Callers must not retain the slice across Reset.
func (t *Tracer) Raw() []byte { return t.buf[:] }

// CountEdges returns the number of distinct edges (non-zero bytes) in the
// current map.
func (t *Tracer) CountEdges() int {
	n := 0
	for _, b := range t.buf {
		if b != 0 {
			n++
		}
	}
	return n
}

// bucket maps a raw hit count to one of AFL's eight count buckets. Two
// executions are considered to reach the same program state when every edge
// falls in the same bucket; this is the standard reading of the paper's "new
// program execution state that has not appeared before".
func bucket(c byte) byte {
	switch {
	case c == 0:
		return 0
	case c == 1:
		return 1
	case c == 2:
		return 2
	case c == 3:
		return 4
	case c <= 7:
		return 8
	case c <= 15:
		return 16
	case c <= 31:
		return 32
	case c <= 127:
		return 64
	default:
		return 128
	}
}

// Classify rewrites a raw coverage map in place into bucketed form.
func Classify(m []byte) {
	for i, c := range m {
		m[i] = bucket(c)
	}
}

// Virgin tracks which bucketed edge states have ever been observed across a
// fuzzing campaign. It answers the valuable-seed question of §IV-B: did this
// execution light any bit that has never been lit before?
type Virgin struct {
	seen  [MapSize]byte // OR of all bucketed maps observed so far
	edges int           // distinct edges with any bucket seen
}

// NewVirgin returns an empty campaign-coverage accumulator.
func NewVirgin() *Virgin { return &Virgin{} }

// Merge folds one execution's raw map into the accumulator. It returns true
// if the execution is "valuable": it produced at least one (edge, bucket)
// pair never seen before. The input map is read, not modified.
func (v *Virgin) Merge(raw []byte) bool {
	valuable := false
	for i, c := range raw {
		if c == 0 {
			continue
		}
		b := bucket(c)
		if v.seen[i]&b == 0 {
			if v.seen[i] == 0 {
				v.edges++
			}
			v.seen[i] |= b
			valuable = true
		}
	}
	return valuable
}

// MergeVirgin folds another accumulator's observed state into v, the
// campaign-level union operation behind sharded fuzzing: each worker
// accumulates coverage locally and the shard runner periodically merges the
// local accumulators into (and back out of) a shared one. It returns true
// when o contributed at least one (edge, bucket) pair v had not seen. o is
// read, not modified.
func (v *Virgin) MergeVirgin(o *Virgin) bool {
	changed := false
	for i, b := range o.seen {
		novel := b &^ v.seen[i]
		if novel == 0 {
			continue
		}
		if v.seen[i] == 0 {
			v.edges++
		}
		v.seen[i] |= novel
		changed = true
	}
	return changed
}

// WouldMerge reports whether Merge would return true, without mutating the
// accumulator. Used by tests and by the harness to probe coverage levels.
func (v *Virgin) WouldMerge(raw []byte) bool {
	for i, c := range raw {
		if c == 0 {
			continue
		}
		if v.seen[i]&bucket(c) == 0 {
			return true
		}
	}
	return false
}

// Edges returns the number of distinct edges observed so far, a coarse
// campaign-level coverage measure used by the speed-to-coverage experiment.
func (v *Virgin) Edges() int { return v.edges }

// Reset clears the accumulator.
func (v *Virgin) Reset() {
	v.seen = [MapSize]byte{}
	v.edges = 0
}

// Hash returns a 64-bit FNV-1a hash of the bucketed form of a raw map. Two
// inputs with equal hashes exercised the same bucketed edge set; the crash
// triager uses this as a cheap execution-path signature.
func Hash(raw []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i, c := range raw {
		if c == 0 {
			continue
		}
		h ^= uint64(i)
		h *= prime
		h ^= uint64(bucket(c))
		h *= prime
	}
	return h
}
