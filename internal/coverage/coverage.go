// Package coverage implements the AFL-style edge-coverage substrate that
// Peach* layers on top of generation-based fuzzing (paper §IV-B).
//
// The paper instruments branch points of the target protocol program with
//
//	cur_location = <COMPILE_TIME_RANDOM>;
//	shared_mem[cur_location ^ prev_location]++;
//	prev_location = cur_location >> 1;
//
// This package reproduces that scheme exactly. Targets in this repository are
// Go reimplementations of the C libraries the paper fuzzes, so instead of an
// LLVM pass the instrumentation is an explicit call, Tracer.Hit, placed at
// branch points. Block identifiers play the role of the compile-time random
// values; they are drawn from a deterministic per-site generator (see
// Region) so that runs are reproducible.
//
// # Hot path
//
// Every consumer of a coverage map (Merge, WouldMerge, Hash, Classify,
// CountEdges) views it as a sequence of 64-bit words and skips zero words
// outright — the maps are sparse (a protocol execution lights a few hundred
// edges out of 65536), so the scan touches roughly 1/64th of the map's
// bytes. Bucketing goes through a precomputed 16-bit lookup table, AFL's
// count_class_lookup16 trick, classifying two counters per table load. All
// of this is observationally identical to the byte-at-a-time definitions
// (the test suite checks the word implementations against byte-level
// reference implementations), so campaign determinism is unaffected.
package coverage

import (
	"encoding/binary"
	"math/bits"
)

// MapSize is the size of the shared coverage byte map. AFL and the paper's
// prototype both use a 64 KiB map, which keeps collision rates low for
// programs up to a few tens of thousands of branch points.
const MapSize = 1 << 16

// BlockID identifies an instrumented basic block. It stands in for the
// compile-time random value in the paper's instrumentation snippet.
type BlockID uint16

// dirtyLine is the granularity of the tracer's dirty index: one bit per
// 64-byte cache line of the map. A typical protocol execution lights a few
// hundred edges, touching well under 1/10th of the map's 1024 lines, so
// consumers that walk the dirty index (MergeTracer, PathHash, Reset) skip
// the overwhelmingly zero remainder without loading it at all.
const (
	dirtyShift = 6                          // log2 of the line size
	dirtyWords = MapSize >> dirtyShift / 64 // 64 lines tracked per uint64
)

// Tracer records edge coverage for a single execution of a target. It is the
// shared_mem[] region plus the prev_location register from the paper, plus a
// dirty-line index maintained by Hit (the sole writer of the map) that lets
// per-execution consumers scan only the lines this execution touched.
//
// A Tracer is not safe for concurrent use; each fuzzing worker owns one.
// Code must mutate the map only through Hit — writing through Raw would
// bypass the dirty index.
type Tracer struct {
	buf   [MapSize]byte
	dirty [dirtyWords]uint64
	prev  BlockID
}

// NewTracer returns a tracer with an empty coverage map.
func NewTracer() *Tracer { return &Tracer{} }

// Hit records entry into basic block cur, updating the edge counter for the
// transition prev -> cur. This is a verbatim transcription of the paper's
// instrumentation stub, plus one OR to mark the touched line dirty.
func (t *Tracer) Hit(cur BlockID) {
	i := uint16(cur) ^ uint16(t.prev)
	t.buf[i]++
	t.dirty[i>>(dirtyShift+6)] |= 1 << ((i >> dirtyShift) & 63)
	t.prev = cur >> 1
}

// Reset clears the map and the previous-location register, preparing the
// tracer for the next execution. Only dirty lines are cleared, so the cost
// is proportional to the previous execution's footprint, not the map size.
func (t *Tracer) Reset() {
	for wi := range t.dirty {
		w := t.dirty[wi]
		if w == 0 {
			continue
		}
		for ; w != 0; w &= w - 1 {
			line := wi<<(dirtyShift+6) + bits.TrailingZeros64(w)<<dirtyShift
			b := t.buf[line : line+(1<<dirtyShift)]
			for i := range b {
				b[i] = 0
			}
		}
		t.dirty[wi] = 0
	}
	t.prev = 0
}

// PathHash is Hash over the tracer's live map, walking only dirty lines.
// The value is identical to Hash(t.Raw()): zero bytes never contribute, and
// dirty lines are visited in ascending order.
func (t *Tracer) PathHash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for wi, w := range t.dirty {
		for ; w != 0; w &= w - 1 {
			base := wi<<(dirtyShift+6) + bits.TrailingZeros64(w)<<dirtyShift
			for i := base; i < base+(1<<dirtyShift); i += 8 {
				lw := binary.LittleEndian.Uint64(t.buf[i : i+8])
				if lw == 0 {
					continue
				}
				for b := 0; b < 64; b += 8 {
					c := byte(lw >> b)
					if c == 0 {
						continue
					}
					h ^= uint64(i + b/8)
					h *= prime
					h ^= uint64(bucket(c))
					h *= prime
				}
			}
		}
	}
	return h
}

// ResetEdge clears only the previous-location register. Targets call this at
// the top of a packet-handling entry point so that edges do not leak across
// independent packets when the map itself is being accumulated.
func (t *Tracer) ResetEdge() { t.prev = 0 }

// Snapshot copies the current coverage map. The copy is bucketed lazily by
// the consumer; raw hit counts are preserved here. Only dirty lines are
// copied — the untouched remainder of the map is provably zero (Hit is the
// sole writer and marks every line it touches; Reset clears exactly the
// dirty lines) and the fresh allocation is already zero-filled — so the
// copy cost is proportional to the execution's footprint, not the map
// size, identically to CountEdges/MergeTracer.
func (t *Tracer) Snapshot() []byte {
	out := make([]byte, MapSize)
	for wi, w := range t.dirty {
		for ; w != 0; w &= w - 1 {
			line := wi<<(dirtyShift+6) + bits.TrailingZeros64(w)<<dirtyShift
			copy(out[line:line+(1<<dirtyShift)], t.buf[line:line+(1<<dirtyShift)])
		}
	}
	return out
}

// Raw exposes the live map for zero-copy consumers such as Virgin.Merge.
// Callers must not retain the slice across Reset.
func (t *Tracer) Raw() []byte { return t.buf[:] }

// AppendEdges appends the indices of the edges (non-zero bytes) lit in the
// current map to dst and returns it, walking only dirty lines in ascending
// index order. The adaptive scheduler uses the edge list of a valuable
// execution as the seed's identity for rarity scoring and corpus
// distillation.
func (t *Tracer) AppendEdges(dst []uint16) []uint16 {
	for wi, w := range t.dirty {
		for ; w != 0; w &= w - 1 {
			base := wi<<(dirtyShift+6) + bits.TrailingZeros64(w)<<dirtyShift
			for i := base; i < base+(1<<dirtyShift); i += 8 {
				lw := binary.LittleEndian.Uint64(t.buf[i : i+8])
				if lw == 0 {
					continue
				}
				for b := 0; b < 64; b += 8 {
					if byte(lw>>b) != 0 {
						dst = append(dst, uint16(i+b/8))
					}
				}
			}
		}
	}
	return dst
}

// CountEdges returns the number of distinct edges (non-zero bytes) in the
// current map, walking only dirty lines.
func (t *Tracer) CountEdges() int {
	n := 0
	for wi, w := range t.dirty {
		for ; w != 0; w &= w - 1 {
			base := wi<<(dirtyShift+6) + bits.TrailingZeros64(w)<<dirtyShift
			for i := base; i < base+(1<<dirtyShift); i += 8 {
				lw := binary.LittleEndian.Uint64(t.buf[i : i+8])
				for ; lw != 0; lw >>= 8 {
					if byte(lw) != 0 {
						n++
					}
				}
			}
		}
	}
	return n
}

// bucket maps a raw hit count to one of AFL's eight count buckets. Two
// executions are considered to reach the same program state when every edge
// falls in the same bucket; this is the standard reading of the paper's "new
// program execution state that has not appeared before".
func bucket(c byte) byte {
	switch {
	case c == 0:
		return 0
	case c == 1:
		return 1
	case c == 2:
		return 2
	case c == 3:
		return 4
	case c <= 7:
		return 8
	case c <= 15:
		return 16
	case c <= 31:
		return 32
	case c <= 127:
		return 64
	default:
		return 128
	}
}

// classLUT folds bucket over pairs of adjacent counters: entry i holds
// bucket(lo(i)) in its low byte and bucket(hi(i)) in its high byte. One
// 128 KiB table classifies two map bytes per load (AFL's
// count_class_lookup16).
var classLUT [1 << 16]uint16

func init() {
	for i := range classLUT {
		classLUT[i] = uint16(bucket(byte(i))) | uint16(bucket(byte(i>>8)))<<8
	}
}

// classLUT128 is the compact alternative to classLUT: bucket over the 7
// low bits only. Counters with the high bit set always bucket to 128,
// which is exactly the high bit itself, so classifyWordCompact handles
// them with bit arithmetic and the table shrinks from 128 KiB to two
// cache lines. The equivalence test pins both classifiers to bucket().
var classLUT128 [128]byte

func init() {
	for i := range classLUT128 {
		classLUT128[i] = bucket(byte(i))
	}
}

// classifyWord buckets all eight counters of a map word at once. It uses
// the wide 16-bit LUT: four table loads per word beat the compact
// 128-entry variant's eight loads plus mask arithmetic both in the
// microbench (1.9 vs 5.6 ns/word, BenchmarkClassifyWord*) and end to end
// on `make bench-hotpath` (1432 vs 1550 ns/exec on the libmodbus loop).
// The two are pinned equivalent by TestClassifyWordVariantsMatchBucket,
// so a cache-pressured platform can swap the body for
// classifyWordCompact without a semantic question.
func classifyWord(w uint64) uint64 {
	return uint64(classLUT[uint16(w)]) |
		uint64(classLUT[uint16(w>>16)])<<16 |
		uint64(classLUT[uint16(w>>32)])<<32 |
		uint64(classLUT[uint16(w>>48)])<<48
}

// classifyWordCompact buckets all eight counters of a map word through the
// 128-entry table. Counters >= 128 bucket to 0x80 — their own high bit —
// so the word's high bits pass through directly and the low 7 bits of
// those bytes are masked to index 0 (bucket 0) before the table loads:
// (h>>7)*0x7f spreads each byte's high bit into a 0x7f mask with no
// cross-byte carries.
func classifyWordCompact(w uint64) uint64 {
	const hiBits = 0x8080808080808080
	h := w & hiBits
	lw := (w &^ hiBits) &^ ((h >> 7) * 0x7f)
	return h |
		uint64(classLUT128[byte(lw)]) |
		uint64(classLUT128[byte(lw>>8)])<<8 |
		uint64(classLUT128[byte(lw>>16)])<<16 |
		uint64(classLUT128[byte(lw>>24)])<<24 |
		uint64(classLUT128[byte(lw>>32)])<<32 |
		uint64(classLUT128[byte(lw>>40)])<<40 |
		uint64(classLUT128[byte(lw>>48)])<<48 |
		uint64(classLUT128[byte(lw>>56)])<<56
}

// Classify rewrites a raw coverage map in place into bucketed form.
func Classify(m []byte) {
	i := 0
	for ; i+8 <= len(m); i += 8 {
		w := binary.LittleEndian.Uint64(m[i : i+8])
		if w == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(m[i:i+8], classifyWord(w))
	}
	for ; i < len(m); i++ {
		m[i] = bucket(m[i])
	}
}

// Virgin tracks which bucketed edge states have ever been observed across a
// fuzzing campaign. It answers the valuable-seed question of §IV-B: did this
// execution light any bit that has never been lit before?
type Virgin struct {
	seen [MapSize]byte // OR of all bucketed maps observed so far
	//peachstar:nosnap derived from seen; recomputed on restore
	edges int // distinct edges with any bucket seen
}

// NewVirgin returns an empty campaign-coverage accumulator.
func NewVirgin() *Virgin { return &Virgin{} }

// Merge folds one execution's raw map into the accumulator. It returns true
// if the execution is "valuable": it produced at least one (edge, bucket)
// pair never seen before. The input map is read, not modified.
//
// Bucket values are single bits, so "bucket b unseen at edge i" is exactly
// "b &^ seen[i] != 0", which vectorizes over eight edges per word; only
// words carrying novelty (rare in steady state) fall back to per-byte work
// for the edge counter.
func (v *Virgin) Merge(raw []byte) bool {
	valuable := false
	seen := v.seen[:]
	i := 0
	for ; i+8 <= len(raw); i += 8 {
		w := binary.LittleEndian.Uint64(raw[i : i+8])
		if w == 0 {
			continue
		}
		sw := binary.LittleEndian.Uint64(seen[i : i+8])
		novel := classifyWord(w) &^ sw
		if novel == 0 {
			continue
		}
		valuable = true
		for b := 0; b < 64; b += 8 {
			if byte(sw>>b) == 0 && byte(novel>>b) != 0 {
				v.edges++
			}
		}
		binary.LittleEndian.PutUint64(seen[i:i+8], sw|novel)
	}
	for ; i < len(raw); i++ {
		c := raw[i]
		if c == 0 {
			continue
		}
		b := bucket(c)
		if seen[i]&b == 0 {
			if seen[i] == 0 {
				v.edges++
			}
			seen[i] |= b
			valuable = true
		}
	}
	return valuable
}

// MergeTracer is Merge over a tracer's live map, walking only the lines the
// execution touched — the per-execution feedback step of the engine. It is
// observationally identical to Merge(t.Raw()).
//
//peachstar:hotpath
func (v *Virgin) MergeTracer(t *Tracer) bool {
	valuable := false
	seen := v.seen[:]
	for wi, w := range t.dirty {
		for ; w != 0; w &= w - 1 {
			base := wi<<(dirtyShift+6) + bits.TrailingZeros64(w)<<dirtyShift
			for i := base; i < base+(1<<dirtyShift); i += 8 {
				lw := binary.LittleEndian.Uint64(t.buf[i : i+8])
				if lw == 0 {
					continue
				}
				sw := binary.LittleEndian.Uint64(seen[i : i+8])
				novel := classifyWord(lw) &^ sw
				if novel == 0 {
					continue
				}
				valuable = true
				for b := 0; b < 64; b += 8 {
					if byte(sw>>b) == 0 && byte(novel>>b) != 0 {
						v.edges++
					}
				}
				binary.LittleEndian.PutUint64(seen[i:i+8], sw|novel)
			}
		}
	}
	return valuable
}

// MergeVirgin folds another accumulator's observed state into v, the
// campaign-level union operation behind sharded fuzzing: each worker
// accumulates coverage locally and the shard runner periodically merges the
// local accumulators into (and back out of) a shared one. It returns true
// when o contributed at least one (edge, bucket) pair v had not seen. o is
// read, not modified.
func (v *Virgin) MergeVirgin(o *Virgin) bool {
	changed := false
	vs, os := v.seen[:], o.seen[:]
	for i := 0; i+8 <= len(os); i += 8 {
		ow := binary.LittleEndian.Uint64(os[i : i+8])
		if ow == 0 {
			continue
		}
		vw := binary.LittleEndian.Uint64(vs[i : i+8])
		novel := ow &^ vw
		if novel == 0 {
			continue
		}
		changed = true
		for b := 0; b < 64; b += 8 {
			if byte(vw>>b) == 0 && byte(novel>>b) != 0 {
				v.edges++
			}
		}
		binary.LittleEndian.PutUint64(vs[i:i+8], vw|novel)
	}
	return changed
}

// WouldMerge reports whether Merge would return true, without mutating the
// accumulator. Used by tests and by the harness to probe coverage levels.
func (v *Virgin) WouldMerge(raw []byte) bool {
	seen := v.seen[:]
	i := 0
	for ; i+8 <= len(raw); i += 8 {
		w := binary.LittleEndian.Uint64(raw[i : i+8])
		if w == 0 {
			continue
		}
		sw := binary.LittleEndian.Uint64(seen[i : i+8])
		if classifyWord(w)&^sw != 0 {
			return true
		}
	}
	for ; i < len(raw); i++ {
		if c := raw[i]; c != 0 && seen[i]&bucket(c) == 0 {
			return true
		}
	}
	return false
}

// Edges returns the number of distinct edges observed so far, a coarse
// campaign-level coverage measure used by the speed-to-coverage experiment.
func (v *Virgin) Edges() int { return v.edges }

// Reset clears the accumulator.
func (v *Virgin) Reset() {
	v.seen = [MapSize]byte{}
	v.edges = 0
}

// Hash returns a 64-bit FNV-1a hash of the bucketed form of a raw map. Two
// inputs with equal hashes exercised the same bucketed edge set; the crash
// triager uses this as a cheap execution-path signature. Zero bytes never
// contribute, so the word-level zero skip leaves the value identical to the
// byte-at-a-time definition.
func Hash(raw []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	i := 0
	for ; i+8 <= len(raw); i += 8 {
		w := binary.LittleEndian.Uint64(raw[i : i+8])
		if w == 0 {
			continue
		}
		for b := 0; b < 64; b += 8 {
			c := byte(w >> b)
			if c == 0 {
				continue
			}
			h ^= uint64(i + b/8)
			h *= prime
			h ^= uint64(bucket(c))
			h *= prime
		}
	}
	for ; i < len(raw); i++ {
		c := raw[i]
		if c == 0 {
			continue
		}
		h ^= uint64(i)
		h *= prime
		h ^= uint64(bucket(c))
		h *= prime
	}
	return h
}
