package coverage

import (
	"math/rand"
	"testing"
)

// randomVirgin merges n random sparse executions into a fresh accumulator.
func randomVirgin(r *rand.Rand, execs int) *Virgin {
	v := NewVirgin()
	raw := make([]byte, MapSize)
	for e := 0; e < execs; e++ {
		for i := range raw {
			raw[i] = 0
		}
		for h := 0; h < 200; h++ {
			raw[r.Intn(MapSize)] = byte(1 + r.Intn(255))
		}
		v.Merge(raw)
	}
	return v
}

func TestVirginDeltaFullStateFromEmptyShadow(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cur := randomVirgin(r, 10)

	frame := AppendVirginDelta(nil, cur, NewVirgin())
	got := NewVirgin()
	changed, err := got.ApplyDelta(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("applying a non-empty delta reported no change")
	}
	if got.seen != cur.seen {
		t.Fatal("decoded bitmap differs from the source")
	}
	if got.Edges() != cur.Edges() {
		t.Fatalf("decoded edges = %d, source = %d", got.Edges(), cur.Edges())
	}
}

// TestVirginDeltaIncrementalMatchesMergeVirgin drives several rounds of new
// coverage through the delta path and checks the receiver stays bit-for-bit
// identical to a receiver using the in-process MergeVirgin union.
func TestVirginDeltaIncrementalMatchesMergeVirgin(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cur := NewVirgin()
	shadow := NewVirgin()
	viaDelta := NewVirgin()
	viaMerge := NewVirgin()
	raw := make([]byte, MapSize)

	for round := 0; round < 8; round++ {
		for e := 0; e < 5; e++ {
			for i := range raw {
				raw[i] = 0
			}
			for h := 0; h < 100; h++ {
				raw[r.Intn(MapSize)] = byte(1 + r.Intn(255))
			}
			cur.Merge(raw)
		}
		frame := AppendVirginDelta(nil, cur, shadow)
		if _, err := viaDelta.ApplyDelta(frame); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		viaMerge.MergeVirgin(cur)
		if viaDelta.seen != viaMerge.seen || viaDelta.Edges() != viaMerge.Edges() {
			t.Fatalf("round %d: delta receiver diverged from MergeVirgin receiver", round)
		}
	}
	if shadow.seen != cur.seen || shadow.Edges() != cur.Edges() {
		t.Fatal("shadow did not catch up to the sender state")
	}
}

func TestVirginDeltaEmptyWhenCaughtUp(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cur := randomVirgin(r, 5)
	shadow := NewVirgin()
	AppendVirginDelta(nil, cur, shadow)

	frame := AppendVirginDelta(nil, cur, shadow)
	if len(frame) != 1 || frame[0] != 0 {
		t.Fatalf("caught-up delta = %x, want the single-byte zero count", frame)
	}
	v := NewVirgin()
	changed, err := v.ApplyDelta(frame)
	if err != nil || changed {
		t.Fatalf("empty delta: changed=%v err=%v", changed, err)
	}
}

// TestVirginDeltaIdempotent re-applies the same frame (the reconnect case)
// and checks nothing double-counts.
func TestVirginDeltaIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	cur := randomVirgin(r, 10)
	frame := AppendVirginDelta(nil, cur, NewVirgin())

	v := NewVirgin()
	if _, err := v.ApplyDelta(frame); err != nil {
		t.Fatal(err)
	}
	edges := v.Edges()
	changed, err := v.ApplyDelta(frame)
	if err != nil {
		t.Fatal(err)
	}
	if changed || v.Edges() != edges {
		t.Fatalf("re-applying the same delta: changed=%v, edges %d -> %d", changed, edges, v.Edges())
	}
}

func TestVirginDeltaRejectsMalformedFrames(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	frame := AppendVirginDelta(nil, randomVirgin(r, 5), NewVirgin())
	cases := map[string][]byte{
		"empty":           {},
		"truncated entry": frame[:len(frame)-3],
		"trailing bytes":  append(append([]byte{}, frame...), 0xff),
		"out of range":    {1, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8},
		"non-ascending":   {2, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, f := range cases {
		if _, err := NewVirgin().ApplyDelta(f); err == nil {
			t.Errorf("%s: malformed frame accepted", name)
		}
	}
}

// TestVirginDeltaUnionWithLocalState: applying a remote delta into an
// accumulator that already has local coverage must behave as a union, the
// same as MergeVirgin of the remote state would.
func TestVirginDeltaUnionWithLocalState(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	remote := randomVirgin(r, 8)
	localA := randomVirgin(r, 8)
	localB := NewVirgin()
	localB.MergeVirgin(localA)

	frame := AppendVirginDelta(nil, remote, NewVirgin())
	if _, err := localA.ApplyDelta(frame); err != nil {
		t.Fatal(err)
	}
	localB.MergeVirgin(remote)
	if localA.seen != localB.seen || localA.Edges() != localB.Edges() {
		t.Fatal("delta union differs from MergeVirgin union")
	}
}

func BenchmarkAppendVirginDelta(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	cur := randomVirgin(r, 50)
	shadow := NewVirgin()
	buf := AppendVirginDelta(nil, cur, shadow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendVirginDelta(buf[:0], cur, shadow)
	}
}
