package coverage

// Region hands out deterministic BlockIDs for one instrumented source region
// (typically one target package or one function group). The paper's LLVM pass
// assigns each basic block a compile-time random value; Region reproduces the
// statistical effect — IDs spread across the map — while staying deterministic
// so that experiments are reproducible run to run.
//
// IDs are derived from a splitmix64 stream seeded by the region name, which
// gives a good spread over the 16-bit ID space without coordination between
// target packages.
type Region struct {
	state uint64
}

// NewRegion returns an ID generator for the named region.
func NewRegion(name string) *Region {
	// FNV-1a over the name seeds the stream.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return &Region{state: h}
}

// Next returns the next block ID in the region's deterministic stream.
func (r *Region) Next() BlockID {
	// splitmix64 step.
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return BlockID(z)
}

// Block returns a stable ID for block index i of the named region, without
// constructing a Region. Useful for table-driven instrumentation.
func Block(name string, i int) BlockID {
	r := NewRegion(name)
	var id BlockID
	for j := 0; j <= i; j++ {
		id = r.Next()
	}
	return id
}

// Blocks pre-computes n block IDs for the named region. Target packages call
// this once at init time and index the slice at branch points, keeping the
// instrumentation overhead to one slice load per hit.
func Blocks(name string, n int) []BlockID {
	r := NewRegion(name)
	out := make([]BlockID, n)
	for i := range out {
		out[i] = r.Next()
	}
	return out
}
