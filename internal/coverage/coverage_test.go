package coverage

import (
	"testing"
	"testing/quick"
)

func TestHitUpdatesEdgeCounter(t *testing.T) {
	tr := NewTracer()
	tr.Hit(0x1234)
	// prev starts at 0, so the first edge index is 0x1234 ^ 0.
	if got := tr.Raw()[0x1234]; got != 1 {
		t.Fatalf("edge counter = %d, want 1", got)
	}
	// prev should now be 0x1234 >> 1.
	tr.Hit(0x1234)
	idx := 0x1234 ^ (0x1234 >> 1)
	if got := tr.Raw()[idx]; got != 1 {
		t.Fatalf("second edge counter = %d, want 1", got)
	}
}

func TestHitMatchesPaperScheme(t *testing.T) {
	// Replay a block sequence and check against a direct transcription of
	// the paper's snippet.
	seq := []BlockID{10, 20, 10, 30, 30, 20}
	var want [MapSize]byte
	var prev BlockID
	for _, cur := range seq {
		want[uint16(cur)^uint16(prev)]++
		prev = cur >> 1
	}
	tr := NewTracer()
	for _, cur := range seq {
		tr.Hit(cur)
	}
	for i := range want {
		if tr.Raw()[i] != want[i] {
			t.Fatalf("map[%d] = %d, want %d", i, tr.Raw()[i], want[i])
		}
	}
}

func TestResetClearsMapAndPrev(t *testing.T) {
	tr := NewTracer()
	tr.Hit(7)
	tr.Hit(9)
	tr.Reset()
	if tr.CountEdges() != 0 {
		t.Fatalf("edges after reset = %d, want 0", tr.CountEdges())
	}
	tr.Hit(7)
	if tr.Raw()[7] != 1 {
		t.Fatal("prev register not cleared by Reset")
	}
}

func TestResetEdgeOnlyClearsPrev(t *testing.T) {
	tr := NewTracer()
	tr.Hit(7)
	tr.ResetEdge()
	tr.Hit(7)
	if tr.Raw()[7] != 2 {
		t.Fatalf("map[7] = %d, want 2 (accumulated across ResetEdge)", tr.Raw()[7])
	}
}

func TestBucketBoundaries(t *testing.T) {
	cases := []struct{ in, want byte }{
		{0, 0}, {1, 1}, {2, 2}, {3, 4}, {4, 8}, {7, 8}, {8, 16},
		{15, 16}, {16, 32}, {31, 32}, {32, 64}, {127, 64}, {128, 128}, {255, 128},
	}
	for _, c := range cases {
		if got := bucket(c.in); got != c.want {
			t.Errorf("bucket(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestVirginMergeDetectsNewEdges(t *testing.T) {
	v := NewVirgin()
	m := make([]byte, MapSize)
	m[100] = 1
	if !v.Merge(m) {
		t.Fatal("first merge should be valuable")
	}
	if v.Merge(m) {
		t.Fatal("identical map should not be valuable twice")
	}
	if v.Edges() != 1 {
		t.Fatalf("edges = %d, want 1", v.Edges())
	}
}

func TestVirginMergeDetectsNewBuckets(t *testing.T) {
	v := NewVirgin()
	m := make([]byte, MapSize)
	m[100] = 1
	v.Merge(m)
	m[100] = 2 // different bucket, same edge
	if !v.Merge(m) {
		t.Fatal("new hit-count bucket on a known edge should be valuable")
	}
	if v.Edges() != 1 {
		t.Fatalf("edges = %d, want 1 (same edge)", v.Edges())
	}
	m[100] = 3 // bucket 4, new again
	if !v.Merge(m) {
		t.Fatal("bucket 4 should be new")
	}
	m[100] = 2 // bucket 2 already seen
	if v.Merge(m) {
		t.Fatal("bucket 2 was already recorded")
	}
}

func TestWouldMergeDoesNotMutate(t *testing.T) {
	v := NewVirgin()
	m := make([]byte, MapSize)
	m[5] = 1
	if !v.WouldMerge(m) {
		t.Fatal("WouldMerge should report true for a fresh edge")
	}
	if !v.WouldMerge(m) {
		t.Fatal("WouldMerge must not record anything")
	}
	if v.Edges() != 0 {
		t.Fatal("WouldMerge mutated the accumulator")
	}
}

func TestHashDistinguishesBuckets(t *testing.T) {
	a := make([]byte, MapSize)
	b := make([]byte, MapSize)
	a[9] = 1
	b[9] = 3
	if Hash(a) == Hash(b) {
		t.Fatal("different buckets should hash differently")
	}
	b[9] = 1
	if Hash(a) != Hash(b) {
		t.Fatal("equal maps should hash equally")
	}
	// Same bucket, different raw count: hashes must agree.
	b[9] = 2
	a[9] = 2
	if Hash(a) != Hash(b) {
		t.Fatal("same map, same hash")
	}
}

func TestHashBucketInsensitiveWithinBucket(t *testing.T) {
	a := make([]byte, MapSize)
	b := make([]byte, MapSize)
	a[42] = 4
	b[42] = 7 // both bucket 8
	if Hash(a) != Hash(b) {
		t.Fatal("raw counts in the same bucket must hash equally")
	}
}

func TestClassifyInPlace(t *testing.T) {
	m := make([]byte, MapSize)
	m[0] = 5
	m[1] = 200
	Classify(m)
	if m[0] != 8 || m[1] != 128 {
		t.Fatalf("Classify gave %d,%d want 8,128", m[0], m[1])
	}
}

func TestRegionDeterminism(t *testing.T) {
	a := Blocks("modbus", 16)
	b := Blocks("modbus", 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("region stream not deterministic at %d", i)
		}
	}
	c := Blocks("dnp3", 16)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("distinct regions produced identical streams")
	}
}

func TestBlockMatchesBlocks(t *testing.T) {
	ids := Blocks("x", 8)
	for i, want := range ids {
		if got := Block("x", i); got != want {
			t.Fatalf("Block(x,%d) = %d, want %d", i, got, want)
		}
	}
}

func TestRegionSpread(t *testing.T) {
	// IDs from one region should not collide excessively in a 16-bit space.
	ids := Blocks("spread-test", 512)
	seen := map[BlockID]bool{}
	dups := 0
	for _, id := range ids {
		if seen[id] {
			dups++
		}
		seen[id] = true
	}
	if dups > 8 { // birthday bound for 512 in 65536 is ~2
		t.Fatalf("too many duplicate block IDs: %d", dups)
	}
}

func TestVirginMergeProperty(t *testing.T) {
	// Property: after Merge(m) returns, WouldMerge(m) is false.
	f := func(idxs []uint16, vals []byte) bool {
		v := NewVirgin()
		m := make([]byte, MapSize)
		for i, ix := range idxs {
			if i < len(vals) {
				m[ix] = vals[i]
			}
		}
		v.Merge(m)
		return !v.WouldMerge(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeMonotonicEdges(t *testing.T) {
	// Property: Edges never decreases across merges.
	f := func(seqs [][]uint16) bool {
		v := NewVirgin()
		prev := 0
		for _, s := range seqs {
			m := make([]byte, MapSize)
			for _, ix := range s {
				m[ix]++
			}
			v.Merge(m)
			if v.Edges() < prev {
				return false
			}
			prev = v.Edges()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeVirginUnion(t *testing.T) {
	a, b := NewVirgin(), NewVirgin()
	raw1 := make([]byte, MapSize)
	raw1[10] = 1
	raw1[20] = 3
	raw2 := make([]byte, MapSize)
	raw2[20] = 3
	raw2[30] = 1
	a.Merge(raw1)
	b.Merge(raw2)

	if !a.MergeVirgin(b) {
		t.Fatal("merging b's novel edge 30 should report change")
	}
	if got := a.Edges(); got != 3 {
		t.Fatalf("edges after union = %d, want 3", got)
	}
	if a.MergeVirgin(b) {
		t.Fatal("second merge must be a no-op")
	}
	// a now subsumes both executions.
	if a.WouldMerge(raw1) || a.WouldMerge(raw2) {
		t.Fatal("union should cover both source maps")
	}
	// b is untouched.
	if got := b.Edges(); got != 2 {
		t.Fatalf("source edges = %d, want 2 (must not be modified)", got)
	}
}

func TestMergeVirginBucketGranularity(t *testing.T) {
	a, b := NewVirgin(), NewVirgin()
	raw := make([]byte, MapSize)
	raw[5] = 1 // bucket 1
	a.Merge(raw)
	raw[5] = 9 // bucket 16: same edge, new bucket
	b.Merge(raw)
	if !a.MergeVirgin(b) {
		t.Fatal("new bucket on a known edge should report change")
	}
	if got := a.Edges(); got != 1 {
		t.Fatalf("edges = %d, want 1 (same edge, richer buckets)", got)
	}
}

// --- word-level scan vs byte-level reference ---
//
// The hot-path rewrite views maps as 64-bit words, skips zero words, and
// buckets through the 16-bit lookup table. These tests pin the word
// implementations to byte-at-a-time reference transcriptions of the original
// definitions, over maps exercising word boundaries, dense regions, and the
// full counter range. Bit-for-bit equality here is what guarantees campaign
// determinism across the rewrite.

// refVirgin is the byte-at-a-time Merge/WouldMerge/edge accounting.
type refVirgin struct {
	seen  [MapSize]byte
	edges int
}

func (v *refVirgin) merge(raw []byte) bool {
	valuable := false
	for i, c := range raw {
		if c == 0 {
			continue
		}
		b := bucket(c)
		if v.seen[i]&b == 0 {
			if v.seen[i] == 0 {
				v.edges++
			}
			v.seen[i] |= b
			valuable = true
		}
	}
	return valuable
}

func refHash(raw []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i, c := range raw {
		if c == 0 {
			continue
		}
		h ^= uint64(i)
		h *= prime
		h ^= uint64(bucket(c))
		h *= prime
	}
	return h
}

// testMaps builds a set of coverage maps that stress the word scan: empty,
// single edges at word-boundary offsets, dense clusters, every counter
// value, and pseudo-random sparse maps.
func testMaps() [][]byte {
	var maps [][]byte
	add := func(fill func(m []byte)) {
		m := make([]byte, MapSize)
		fill(m)
		maps = append(maps, m)
	}
	add(func(m []byte) {})
	for _, off := range []int{0, 1, 7, 8, 9, 63, 64, MapSize - 8, MapSize - 1} {
		off := off
		add(func(m []byte) { m[off] = 1 })
	}
	add(func(m []byte) {
		for i := 0; i < 256; i++ {
			m[i] = byte(i) // dense run with every counter value
		}
	})
	add(func(m []byte) {
		for i := range m {
			m[i] = byte(i * 7) // fully dense
		}
	})
	state := uint64(0x9E3779B97F4A7C15)
	add(func(m []byte) {
		for i := 0; i < 300; i++ { // sparse pseudo-random (the realistic case)
			state = state*6364136223846793005 + 1442695040888963407
			m[uint16(state>>33)] = byte(state>>17) | 1
		}
	})
	return maps
}

func TestMergeMatchesByteReference(t *testing.T) {
	v, ref := NewVirgin(), &refVirgin{}
	for mi, m := range testMaps() {
		if got, want := v.Merge(m), ref.merge(m); got != want {
			t.Fatalf("map %d: Merge = %v, reference = %v", mi, got, want)
		}
		if v.Edges() != ref.edges {
			t.Fatalf("map %d: edges = %d, reference = %d", mi, v.Edges(), ref.edges)
		}
		if v.seen != ref.seen {
			t.Fatalf("map %d: accumulator state diverged from reference", mi)
		}
	}
}

func TestWouldMergeMatchesMerge(t *testing.T) {
	v := NewVirgin()
	for mi, m := range testMaps() {
		probe := *v // WouldMerge must predict Merge on a copy
		if got, want := v.WouldMerge(m), probe.Merge(m); got != want {
			t.Fatalf("map %d: WouldMerge = %v, Merge = %v", mi, got, want)
		}
		v.Merge(m)
	}
}

func TestHashMatchesByteReference(t *testing.T) {
	for mi, m := range testMaps() {
		if got, want := Hash(m), refHash(m); got != want {
			t.Fatalf("map %d: Hash = %#x, reference = %#x", mi, got, want)
		}
	}
}

func TestClassifyMatchesBucket(t *testing.T) {
	for mi, m := range testMaps() {
		want := make([]byte, len(m))
		for i, c := range m {
			want[i] = bucket(c)
		}
		Classify(m)
		for i := range m {
			if m[i] != want[i] {
				t.Fatalf("map %d: Classify[%d] = %d, want %d", mi, i, m[i], want[i])
			}
		}
	}
}

func TestCountEdgesMatchesByteReference(t *testing.T) {
	tr := NewTracer()
	state := uint64(1)
	for i := 0; i < 500; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		tr.Hit(BlockID(state >> 48))
	}
	want := 0
	for _, c := range tr.Raw() {
		if c != 0 {
			want++
		}
	}
	if got := tr.CountEdges(); got != want {
		t.Fatalf("CountEdges = %d, want %d", got, want)
	}
}

func TestClassLUTMatchesBucketPairs(t *testing.T) {
	for i := 0; i < 1<<16; i += 257 { // stride covers all byte pairs' classes
		lo, hi := byte(i), byte(i>>8)
		want := uint16(bucket(lo)) | uint16(bucket(hi))<<8
		if classLUT[i] != want {
			t.Fatalf("classLUT[%#x] = %#x, want %#x", i, classLUT[i], want)
		}
	}
}

// hitTracer replays a pseudo-random block sequence, the way real targets
// populate a tracer.
func hitTracer(n int, seed uint64) *Tracer {
	tr := NewTracer()
	state := seed
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		tr.Hit(BlockID(state >> 48))
	}
	return tr
}

func TestMergeTracerMatchesMergeRaw(t *testing.T) {
	a, b := NewVirgin(), NewVirgin()
	for round := 0; round < 10; round++ {
		tr := hitTracer(50+round*40, uint64(round+1))
		if got, want := a.MergeTracer(tr), b.Merge(tr.Raw()); got != want {
			t.Fatalf("round %d: MergeTracer = %v, Merge = %v", round, got, want)
		}
		if a.Edges() != b.Edges() {
			t.Fatalf("round %d: edges %d vs %d", round, a.Edges(), b.Edges())
		}
		if a.seen != b.seen {
			t.Fatalf("round %d: accumulator state diverged", round)
		}
	}
}

func TestPathHashMatchesHashRaw(t *testing.T) {
	for round := 0; round < 10; round++ {
		tr := hitTracer(30+round*60, uint64(round+7))
		if got, want := tr.PathHash(), Hash(tr.Raw()); got != want {
			t.Fatalf("round %d: PathHash = %#x, Hash = %#x", round, got, want)
		}
	}
}

func TestSparseResetClearsEverything(t *testing.T) {
	tr := hitTracer(400, 99)
	tr.Reset()
	for i, c := range tr.Raw() {
		if c != 0 {
			t.Fatalf("map[%d] = %d after Reset", i, c)
		}
	}
	for _, w := range tr.dirty {
		if w != 0 {
			t.Fatal("dirty index not cleared by Reset")
		}
	}
	if tr.PathHash() != Hash(tr.Raw()) {
		t.Fatal("empty tracer hash mismatch")
	}
	// The tracer must be fully reusable after a sparse reset.
	tr.Hit(7)
	if tr.Raw()[7] != 1 || tr.CountEdges() != 1 {
		t.Fatal("tracer unusable after sparse Reset")
	}
}

// sparseMap builds a realistic ~300-edge map for the scan benchmarks.
func sparseMap() []byte {
	m := make([]byte, MapSize)
	state := uint64(42)
	for i := 0; i < 300; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		m[uint16(state>>33)] = byte(state>>17) | 1
	}
	return m
}

func BenchmarkMergeSparse(b *testing.B) {
	m := sparseMap()
	v := NewVirgin()
	v.Merge(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Merge(m)
	}
}

func BenchmarkHashSparse(b *testing.B) {
	m := sparseMap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash(m)
	}
}

func BenchmarkMergeSparseByteReference(b *testing.B) {
	m := sparseMap()
	v := &refVirgin{}
	v.merge(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.merge(m)
	}
}

func BenchmarkHashSparseByteReference(b *testing.B) {
	m := sparseMap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refHash(m)
	}
}
