package coverage

import (
	"encoding/binary"
	"fmt"
)

// This file implements the campaign-bitmap delta codec used by the network
// fleet transport (internal/fleetnet). A Virgin accumulator is monotonic —
// words only ever gain bits — so the state a peer is missing is exactly the
// set of 64-bit words that changed since the last exchange. A sender keeps a
// shadow Virgin per peer (the state it last sent); AppendVirginDelta encodes
// only the differing words and brings the shadow up to date, so steady-state
// sync windows ship a handful of words instead of the 64 KiB map.
//
// Wire format (all integers unsigned varints unless noted):
//
//	count            number of word entries
//	count × {
//	  gap            word-index delta from the previous entry (absolute
//	                 index for the first entry); entries are strictly
//	                 ascending
//	  word           8 bytes little-endian, the sender's full word
//	}
//
// Words are OR-combined on apply, so deltas are idempotent and may be
// re-sent after a reconnect without corrupting the receiver.

// virginWords is the Virgin bitmap size in 64-bit words.
const virginWords = MapSize / 8

// AppendVirginDelta appends to dst an encoding of every bitmap word of cur
// that differs from shadow, ORs those words into shadow (bringing it up to
// date, edge counter included), and returns the extended buffer. With an
// all-zero shadow it encodes cur's full observed state; with a shadow that
// has caught up it encodes an empty delta (one zero byte).
func AppendVirginDelta(dst []byte, cur, shadow *Virgin) []byte {
	cs, ss := cur.seen[:], shadow.seen[:]
	count := 0
	for i := 0; i < MapSize; i += 8 {
		if binary.LittleEndian.Uint64(cs[i:i+8]) != binary.LittleEndian.Uint64(ss[i:i+8]) {
			count++
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(count))]...)
	prev := 0
	for wi := 0; wi < virginWords; wi++ {
		i := wi * 8
		cw := binary.LittleEndian.Uint64(cs[i : i+8])
		sw := binary.LittleEndian.Uint64(ss[i : i+8])
		if cw == sw {
			continue
		}
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], uint64(wi-prev))]...)
		prev = wi
		dst = append(dst, tmp[:8]...)
		binary.LittleEndian.PutUint64(dst[len(dst)-8:], cw)
		// Catch the shadow up, keeping its edge counter truthful. The
		// accumulator is monotonic, so sw is a subset of cw and the novel
		// bits are exactly cw &^ sw.
		novel := cw &^ sw
		for b := 0; b < 64; b += 8 {
			if byte(sw>>b) == 0 && byte(novel>>b) != 0 {
				shadow.edges++
			}
		}
		binary.LittleEndian.PutUint64(ss[i:i+8], cw)
	}
	return dst
}

// ApplyDelta ORs an AppendVirginDelta encoding into the accumulator,
// maintaining the edge counter exactly as MergeVirgin would. It reports
// whether any previously unseen (edge, bucket) state arrived, and rejects
// malformed input (truncated entries, out-of-range or non-ascending
// indices, trailing bytes) without partial effects being rolled back —
// callers treat an error as a broken peer and drop the connection.
func (v *Virgin) ApplyDelta(frame []byte) (changed bool, err error) {
	count, n := binary.Uvarint(frame)
	if n <= 0 {
		return false, fmt.Errorf("coverage: delta header: truncated varint")
	}
	pos := n
	wi := -1
	for k := uint64(0); k < count; k++ {
		gap, n := binary.Uvarint(frame[pos:])
		if n <= 0 {
			return changed, fmt.Errorf("coverage: delta entry %d: truncated gap", k)
		}
		pos += n
		if k == 0 {
			wi = int(gap)
		} else {
			if gap == 0 {
				return changed, fmt.Errorf("coverage: delta entry %d: non-ascending index", k)
			}
			wi += int(gap)
		}
		if wi >= virginWords {
			return changed, fmt.Errorf("coverage: delta entry %d: word index %d out of range", k, wi)
		}
		if pos+8 > len(frame) {
			return changed, fmt.Errorf("coverage: delta entry %d: truncated word", k)
		}
		w := binary.LittleEndian.Uint64(frame[pos : pos+8])
		pos += 8
		i := wi * 8
		vw := binary.LittleEndian.Uint64(v.seen[i : i+8])
		novel := w &^ vw
		if novel == 0 {
			continue
		}
		changed = true
		for b := 0; b < 64; b += 8 {
			if byte(vw>>b) == 0 && byte(novel>>b) != 0 {
				v.edges++
			}
		}
		binary.LittleEndian.PutUint64(v.seen[i:i+8], vw|novel)
	}
	if pos != len(frame) {
		return changed, fmt.Errorf("coverage: delta: %d trailing bytes", len(frame)-pos)
	}
	return changed, nil
}
