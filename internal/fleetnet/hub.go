package fleetnet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/datamodel"
)

// ModelDigest fingerprints a target's model set for the handshake: both
// ends of a link must be fuzzing the same target with structurally
// identical data models, or their rule signatures would disagree and
// donated puzzles would be garbage. The digest is an FNV-1a walk over the
// target name and every chunk's name, kind, and construction-rule
// signature in tree order.
func ModelDigest(target string, models []*datamodel.Model) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff // field separator
		h *= prime
	}
	var walk func(c *datamodel.Chunk)
	walk = func(c *datamodel.Chunk) {
		mix(c.Name)
		mix(fmt.Sprintf("%d", c.Kind))
		mix(datamodel.RuleSignature(c))
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	mix(target)
	for _, m := range models {
		mix(m.Name)
		for _, c := range m.Fields {
			walk(c)
		}
	}
	return h
}

// HubConfig parameterizes a Hub.
type HubConfig struct {
	// State is the campaign state the hub serves — typically a running
	// Fleet's State(), so the hub's own workers and its remote leaves
	// converge on one campaign; a standalone aggregator passes
	// core.NewSyncState.
	State *core.SyncState
	// Target and Models identify the campaign for the handshake.
	Target string
	Models []*datamodel.Model
	// NodeID names this hub in handshakes; defaults to "hub".
	NodeID string
	// LocalExecs, when non-nil, reports the hub's own executions so leaf
	// progress displays can show a fleet-wide total. It is called from
	// connection-handler goroutines and must be safe for concurrent use
	// (core.Fleet.ExecsApprox is; Fleet.Execs is not).
	LocalExecs func() int
	// Timeout bounds each frame read/write (0 = 30s). A leaf that stalls
	// longer is dropped; it reconnects with its resume cursor.
	Timeout time.Duration
	// Logf receives connection lifecycle messages (nil = no logging).
	Logf func(format string, args ...any)
	// KnownPeers, when non-nil, supplies the peer addresses shared in
	// helloAcks — the acceptor half of the mesh peer exchange. Nil for a
	// plain hub. Called from handler goroutines.
	KnownPeers func() []string
	// LearnPeer, when non-nil, receives every peer address announced in a
	// hello (the dialer's advertise address plus its known peers). Nil
	// ignores them. Called from handler goroutines.
	LearnPeer func(addr string)
}

// Hub serves one campaign's shared state to remote peers. Every accepted
// connection merges through the same core.SyncPeer path local workers use,
// so a hub that also runs a local Fleet needs no extra coordination — the
// shared state's mutex serializes workers and remote sessions alike. In
// mesh mode every node embeds a Hub as its accept loop.
type Hub struct {
	cfg    HubConfig
	digest uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	leaves map[string]*remoteLeaf
	closed bool
	// done closes when the hub does — the signal context watchers and
	// other background observers select on.
	done chan struct{}
	wg   sync.WaitGroup
}

// remoteLeaf is the hub's per-peer accounting, keyed by the peer's
// self-chosen node id. Totals are absolute figures from the peer's latest
// sync, so reconnects and resends never double-count. gen counts sessions:
// a redial before the previous connection is reaped starts a new session
// under the same id, and only the *current* session's teardown may mark
// the peer disconnected (see Hub.handle).
type remoteLeaf struct {
	execs, hangs uint64
	connected    bool
	gen          uint64
	advertise    string // dial-back address from the latest handshake ("" for plain leaves)
}

// NewHub validates the configuration and returns a hub ready to Serve.
func NewHub(cfg HubConfig) (*Hub, error) {
	if cfg.State == nil {
		return nil, fmt.Errorf("fleetnet: HubConfig.State is required")
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("fleetnet: HubConfig.Target is required")
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "hub"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Hub{
		cfg:    cfg,
		digest: ModelDigest(cfg.Target, cfg.Models),
		conns:  make(map[net.Conn]struct{}),
		leaves: make(map[string]*remoteLeaf),
		done:   make(chan struct{}),
	}, nil
}

// ListenAndServeContext is ListenAndServe scoped to a context: when ctx
// is canceled the hub closes itself — the listener stops accepting and
// every connected peer is dropped mid-read rather than waiting out its
// frame timeout. The public Run API serves hub attachments through this,
// which is what makes `context cancel` tear a whole fleet node down
// promptly.
func (h *Hub) ListenAndServeContext(ctx context.Context, addr string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := h.ListenAndServe(addr); err != nil {
		return err
	}
	if ctx.Done() == nil {
		return nil
	}
	// Deliberately outside h.wg: the watcher itself calls Close, which
	// waits on h.wg — membership would deadlock. It exits as soon as the
	// hub closes for any reason.
	go func() {
		select {
		case <-ctx.Done():
			h.Close()
		case <-h.done:
		}
	}()
	return nil
}

// ListenAndServe listens on addr (host:port; ":0" picks a free port) and
// serves until Close. It returns once the listener is installed; the accept
// loop runs in the background. Addr reports the bound address.
func (h *Hub) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		ln.Close()
		return fmt.Errorf("fleetnet: hub is closed")
	}
	h.ln = ln
	h.mu.Unlock()
	h.wg.Add(1)
	go h.acceptLoop(ln)
	return nil
}

// Addr returns the listener's address, or "" before ListenAndServe.
func (h *Hub) Addr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ln == nil {
		return ""
	}
	return h.ln.Addr().String()
}

// Close stops accepting, disconnects every peer, and waits for the
// connection handlers to drain. Safe to call more than once (a
// context-scoped hub may race its watcher's Close against the caller's).
// The shared state keeps everything already merged; a restarted hub on
// the same state resumes cleanly.
func (h *Hub) Close() error {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.done)
	}
	ln := h.ln
	for c := range h.conns {
		c.Close()
	}
	h.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	h.wg.Wait()
	return nil
}

// RemoteStats sums the latest absolute figures reported by every peer ever
// seen (disconnected peers' contributions remain — the work happened) and
// reports how many are currently connected.
func (h *Hub) RemoteStats() (execs, hangs, connected int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, l := range h.leaves {
		execs += int(l.execs)
		hangs += int(l.hangs)
		if l.connected {
			connected++
		}
	}
	return execs, hangs, connected
}

// InboundAdvertised lists the advertised dial-back addresses of currently
// connected inbound sessions. The mesh consults it to avoid duplicating a
// link that already exists in the other direction: a learned peer that
// keeps an uplink to us does not need one from us.
func (h *Hub) InboundAdvertised() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool)
	for _, l := range h.leaves {
		if l.connected && l.advertise != "" {
			out[l.advertise] = true
		}
	}
	return out
}

func (h *Hub) acceptLoop(ln net.Listener) {
	defer h.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if !closed {
				h.cfg.Logf("fleetnet hub: accept: %v", err)
			}
			return
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		h.conns[conn] = struct{}{}
		h.mu.Unlock()
		h.wg.Add(1)
		go h.handle(conn)
	}
}

// connPeer is the acceptor side of one session: the peerSession cursors
// that make deltas deltas, plus the frames of the window in flight. It
// implements core.SyncPeer for the window where a decoded sync frame is
// merged and the reply is built, so a remote peer takes exactly the merge
// path a local worker does.
type connPeer struct {
	hub     *Hub
	nodeID  string
	gen     uint64 // session generation under nodeID; see remoteLeaf.gen
	session *peerSession

	req *syncFrame    // current window's decoded push
	ack *syncAckFrame // reply being built
}

// Exchange merges one peer push into the shared state and builds the reply
// under the same lock — one atomic merge window, exactly like a worker's.
// The reply deltas are built BEFORE the push is absorbed: the journal tail
// then contains only other nodes' puzzles and the bitmap delta only other
// nodes' words, so nothing the peer already knows is echoed back.
func (p *connPeer) Exchange(virgin *coverage.Virgin, corp *corpus.Corpus, crashes *crash.Bank) error {
	req, ack, s := p.req, p.ack, p.session
	// The dialer owns its cursor into our journal — it survives its own
	// session resets where our copy would not — so honor the one it sent.
	s.localCursor = int(req.cursor)
	ack.virginDelta, ack.puzzles = s.sendDelta(virgin, corp)
	// Absorbing the push advances localCursor over the entries it
	// journaled (nothing else can append inside this locked window), so
	// the cursor returned to the dialer skips exactly its own material.
	if err := s.absorbDelta(req.virginDelta, req.puzzles, req.crashes, virgin, corp, crashes); err != nil {
		return err
	}
	ack.crashes = s.crashDelta(crashes.Records())
	ack.newCursor = uint64(s.localCursor)
	corp.CompactJournal()
	ack.fleetEdges = uint64(virgin.Edges())
	return nil
}

// handle runs one peer session: handshake, then sync windows until the
// connection drops or the hub closes.
func (h *Hub) handle(conn net.Conn) {
	defer h.wg.Done()
	peer := &connPeer{hub: h, session: newPeerSession()}
	defer func() {
		conn.Close()
		// A gone peer must not pin journal compaction; if it resumes, the
		// handshake re-registers it at its resume cursor (or the journal
		// fallback replays the full corpus for it).
		if peer.session.journalID >= 0 {
			h.cfg.State.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
				peer.session.unregister(corp)
				return nil
			}))
		}
		h.mu.Lock()
		delete(h.conns, conn)
		// Only the session currently owning this node id may report it
		// disconnected: a peer that redialed before this stale connection
		// was reaped has already started generation gen+1, and its live
		// session must keep counting as connected.
		if l, ok := h.leaves[peer.nodeID]; ok && l.gen == peer.gen {
			l.connected = false
		}
		h.mu.Unlock()
	}()

	if err := h.handshake(conn, peer); err != nil {
		h.cfg.Logf("fleetnet hub: handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	h.cfg.Logf("fleetnet hub: peer %q connected from %s", peer.nodeID, conn.RemoteAddr())

	for {
		conn.SetDeadline(time.Now().Add(h.cfg.Timeout))
		typ, payload, err := readFrame(conn)
		if err != nil {
			h.cfg.Logf("fleetnet hub: peer %q: %v", peer.nodeID, err)
			return
		}
		switch typ {
		case frameSync:
		case frameError:
			r := &wireReader{buf: payload}
			h.cfg.Logf("fleetnet hub: peer %q sent error: %s", peer.nodeID, r.str())
			return
		default:
			sendError(conn, "unexpected frame type %d mid-session", typ)
			return
		}
		req, err := decodeSync(payload)
		if err != nil {
			sendError(conn, "%v", err)
			return
		}
		peer.req = req
		peer.ack = &syncAckFrame{}
		if err := h.cfg.State.Exchange(peer); err != nil {
			h.cfg.Logf("fleetnet hub: peer %q push rejected: %v", peer.nodeID, err)
			sendError(conn, "%v", err)
			return
		}
		h.noteLeaf(peer.nodeID, req)
		peer.ack.fleetExecs = uint64(h.fleetExecs())
		_, _, connected := h.RemoteStats()
		peer.ack.leaves = uint64(connected)
		if err := writeFrame(conn, frameSyncAck, peer.ack.encode(nil)); err != nil {
			h.cfg.Logf("fleetnet hub: peer %q: %v", peer.nodeID, err)
			return
		}
	}
}

// handshake validates a hello frame and replies. Only structural protocol
// errors are tolerated silently; mismatched target/models are answered with
// an error frame so the operator sees the reason on the dialing side.
func (h *Hub) handshake(conn net.Conn, peer *connPeer) error {
	conn.SetDeadline(time.Now().Add(h.cfg.Timeout))
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameHello {
		sendError(conn, "expected hello, got frame type %d", typ)
		return fmt.Errorf("expected hello, got type %d", typ)
	}
	hello, err := decodeHello(payload)
	if err != nil {
		sendError(conn, "%v", err)
		return err
	}
	version, err := negotiate(hello.version)
	if err != nil {
		sendError(conn, "%v", err)
		return err
	}
	if hello.target != h.cfg.Target {
		err := fmt.Errorf("peer fuzzes target %q, this node fuzzes %q", hello.target, h.cfg.Target)
		sendError(conn, "%v", err)
		return err
	}
	if hello.digest != h.digest {
		err := fmt.Errorf("model digest mismatch (peer %016x, local %016x): data models differ", hello.digest, h.digest)
		sendError(conn, "%v", err)
		return err
	}
	peer.nodeID = hello.nodeID
	h.mu.Lock()
	l, ok := h.leaves[peer.nodeID]
	if !ok {
		l = &remoteLeaf{}
		h.leaves[peer.nodeID] = l
	}
	l.gen++
	peer.gen = l.gen
	l.connected = true
	l.advertise = hello.advertise
	h.mu.Unlock()
	// Seed the journal registration from the resume cursor NOW, before the
	// ack releases the dialer: a resuming peer's tail is pinned against
	// compaction from the moment it connects, not from its first sync.
	h.cfg.State.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		peer.session.register(corp, int(hello.resumeCursor))
		return nil
	}))
	if h.cfg.LearnPeer != nil {
		if hello.advertise != "" {
			h.cfg.LearnPeer(hello.advertise)
		}
		for _, a := range hello.peers {
			h.cfg.LearnPeer(a)
		}
	}
	ack := &helloAckFrame{version: version, digest: h.digest, hubID: h.cfg.NodeID}
	if h.cfg.KnownPeers != nil {
		ack.peers = h.cfg.KnownPeers()
	}
	return writeFrame(conn, frameHelloAck, ack.encode(nil))
}

// noteLeaf records a peer's absolute progress figures.
func (h *Hub) noteLeaf(nodeID string, req *syncFrame) {
	h.mu.Lock()
	defer h.mu.Unlock()
	l := h.leaves[nodeID]
	if l == nil {
		return // unreachable mid-session; handshake created the entry
	}
	if req.execs > l.execs {
		l.execs = req.execs
	}
	if req.hangs > l.hangs {
		l.hangs = req.hangs
	}
}

// fleetExecs is this node's best knowledge of total fleet executions.
func (h *Hub) fleetExecs() int {
	execs, _, _ := h.RemoteStats()
	if h.cfg.LocalExecs != nil {
		execs += h.cfg.LocalExecs()
	}
	return execs
}
