package fleetnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/datamodel"
)

// ModelDigest fingerprints a target's model set for the handshake: hub and
// leaf must be fuzzing the same target with structurally identical data
// models, or their rule signatures would disagree and donated puzzles
// would be garbage. The digest is an FNV-1a walk over the target name and
// every chunk's name, kind, and construction-rule signature in tree order.
func ModelDigest(target string, models []*datamodel.Model) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff // field separator
		h *= prime
	}
	var walk func(c *datamodel.Chunk)
	walk = func(c *datamodel.Chunk) {
		mix(c.Name)
		mix(fmt.Sprintf("%d", c.Kind))
		mix(datamodel.RuleSignature(c))
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	mix(target)
	for _, m := range models {
		mix(m.Name)
		for _, c := range m.Fields {
			walk(c)
		}
	}
	return h
}

// HubConfig parameterizes a Hub.
type HubConfig struct {
	// State is the campaign state the hub serves — typically a running
	// Fleet's State(), so the hub's own workers and its remote leaves
	// converge on one campaign; a standalone aggregator passes
	// core.NewSyncState.
	State *core.SyncState
	// Target and Models identify the campaign for the handshake.
	Target string
	Models []*datamodel.Model
	// NodeID names this hub in handshakes; defaults to "hub".
	NodeID string
	// LocalExecs, when non-nil, reports the hub's own executions so leaf
	// progress displays can show a fleet-wide total.
	LocalExecs func() int
	// Timeout bounds each frame read/write (0 = 30s). A leaf that stalls
	// longer is dropped; it reconnects with its resume cursor.
	Timeout time.Duration
	// Logf receives connection lifecycle messages (nil = no logging).
	Logf func(format string, args ...any)
}

// Hub serves one campaign's shared state to remote leaves. Every accepted
// connection merges through the same core.SyncPeer path local workers use,
// so a hub that also runs a local Fleet needs no extra coordination — the
// shared state's mutex serializes workers and leaves alike.
type Hub struct {
	cfg    HubConfig
	digest uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	leaves map[string]*remoteLeaf
	closed bool
	wg     sync.WaitGroup
}

// remoteLeaf is the hub's per-leaf accounting, keyed by the leaf's
// self-chosen node id. Totals are absolute figures from the leaf's latest
// sync, so reconnects and resends never double-count.
type remoteLeaf struct {
	execs, hangs uint64
	connected    bool
}

// NewHub validates the configuration and returns a hub ready to Serve.
func NewHub(cfg HubConfig) (*Hub, error) {
	if cfg.State == nil {
		return nil, fmt.Errorf("fleetnet: HubConfig.State is required")
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("fleetnet: HubConfig.Target is required")
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "hub"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Hub{
		cfg:    cfg,
		digest: ModelDigest(cfg.Target, cfg.Models),
		conns:  make(map[net.Conn]struct{}),
		leaves: make(map[string]*remoteLeaf),
	}, nil
}

// ListenAndServe listens on addr (host:port; ":0" picks a free port) and
// serves until Close. It returns once the listener is installed; the accept
// loop runs in the background. Addr reports the bound address.
func (h *Hub) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		ln.Close()
		return fmt.Errorf("fleetnet: hub is closed")
	}
	h.ln = ln
	h.mu.Unlock()
	h.wg.Add(1)
	go h.acceptLoop(ln)
	return nil
}

// Addr returns the listener's address, or "" before ListenAndServe.
func (h *Hub) Addr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ln == nil {
		return ""
	}
	return h.ln.Addr().String()
}

// Close stops accepting, disconnects every leaf, and waits for the
// connection handlers to drain. The shared state keeps everything already
// merged; a restarted hub on the same state resumes cleanly.
func (h *Hub) Close() error {
	h.mu.Lock()
	h.closed = true
	ln := h.ln
	for c := range h.conns {
		c.Close()
	}
	h.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	h.wg.Wait()
	return nil
}

// RemoteStats sums the latest absolute figures reported by every leaf ever
// seen (disconnected leaves' contributions remain — the work happened) and
// reports how many leaves are currently connected.
func (h *Hub) RemoteStats() (execs, hangs, connected int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, l := range h.leaves {
		execs += int(l.execs)
		hangs += int(l.hangs)
		if l.connected {
			connected++
		}
	}
	return execs, hangs, connected
}

func (h *Hub) acceptLoop(ln net.Listener) {
	defer h.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			h.mu.Lock()
			closed := h.closed
			h.mu.Unlock()
			if !closed {
				h.cfg.Logf("fleetnet hub: accept: %v", err)
			}
			return
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		h.conns[conn] = struct{}{}
		h.mu.Unlock()
		h.wg.Add(1)
		go h.handle(conn)
	}
}

// connPeer is the hub side of one leaf session: the per-connection sync
// cursors that make deltas deltas. It implements core.SyncPeer for the
// window where a decoded sync frame is merged and the reply is built, so a
// remote leaf takes exactly the merge path a local worker does.
type connPeer struct {
	hub    *Hub
	nodeID string
	// shadow mirrors the shared coverage the leaf is known to have: what
	// this hub sent plus what the leaf itself pushed. Reply deltas are
	// computed against it, so steady-state windows carry only novelty.
	shadow *coverage.Virgin
	// corpusPeer registers this connection as a consumer of the shared
	// journal (pinning compaction no further back than the leaf's
	// cursor); -1 until the first window.
	corpusPeer int
	// sentCrash maps fault keys to the highest Count the leaf is known to
	// hold; a record is (re-)sent when the hub's count grows past it.
	sentCrash map[string]int

	req *syncFrame    // current window's decoded push
	ack *syncAckFrame // reply being built
}

// Exchange merges one leaf push into the shared state and builds the reply
// under the same lock — one atomic merge window, exactly like a worker's.
func (p *connPeer) Exchange(virgin *coverage.Virgin, corp *corpus.Corpus, crashes *crash.Bank) error {
	req, ack := p.req, p.ack
	if p.corpusPeer < 0 {
		p.corpusPeer = corp.RegisterPeer(int(req.hubCursor))
	}
	// Build the reply's corpus and coverage deltas BEFORE absorbing the
	// push: the journal tail then contains only other nodes' puzzles, and
	// the bitmap delta only other nodes' words. The push is folded into
	// the shadow afterwards, so nothing the leaf already knows is ever
	// echoed back.
	ack.virginDelta = coverage.AppendVirginDelta(nil, virgin, p.shadow)
	corp.ReadJournal(int(req.hubCursor), func(pz corpus.Puzzle) {
		ack.puzzles = append(ack.puzzles, pz)
	})
	if _, err := virgin.ApplyDelta(req.virginDelta); err != nil {
		return err
	}
	if _, err := p.shadow.ApplyDelta(req.virginDelta); err != nil {
		return err
	}
	for _, pz := range req.puzzles {
		corp.Absorb(pz)
	}
	// The reply tail above ended at the pre-push journal length, and the
	// leaf's accepted puzzles landed after it; within this locked window
	// nothing else could append, so a cursor at the current length skips
	// exactly the leaf's own material next window.
	ack.newCursor = uint64(corp.JournalLen())
	corp.AdvancePeer(p.corpusPeer, int(ack.newCursor))
	corp.CompactJournal()
	for _, r := range req.crashes {
		crashes.Absorb(r)
		if key := crash.RecordKey(r); r.Count > p.sentCrash[key] {
			p.sentCrash[key] = r.Count // the leaf already has this much
		}
	}
	for _, r := range crashes.Records() {
		key := crash.RecordKey(r)
		if sent, ok := p.sentCrash[key]; !ok || r.Count > sent {
			p.sentCrash[key] = r.Count
			ack.crashes = append(ack.crashes, r)
		}
	}
	ack.fleetEdges = uint64(virgin.Edges())
	return nil
}

// handle runs one leaf session: handshake, then sync windows until the
// connection drops or the hub closes.
func (h *Hub) handle(conn net.Conn) {
	defer h.wg.Done()
	peer := &connPeer{hub: h, shadow: coverage.NewVirgin(), corpusPeer: -1, sentCrash: make(map[string]int)}
	defer func() {
		h.mu.Lock()
		delete(h.conns, conn)
		if l, ok := h.leaves[peer.nodeID]; ok {
			l.connected = false
		}
		h.mu.Unlock()
		conn.Close()
		// A gone leaf must not pin journal compaction; if it resumes, the
		// MergeJournal fallback replays the full corpus for it.
		if peer.corpusPeer >= 0 {
			h.cfg.State.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
				corp.DropPeer(peer.corpusPeer)
				return nil
			}))
		}
	}()

	if err := h.handshake(conn, peer); err != nil {
		h.cfg.Logf("fleetnet hub: handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	h.cfg.Logf("fleetnet hub: leaf %q connected from %s", peer.nodeID, conn.RemoteAddr())

	for {
		conn.SetDeadline(time.Now().Add(h.cfg.Timeout))
		typ, payload, err := readFrame(conn)
		if err != nil {
			h.cfg.Logf("fleetnet hub: leaf %q: %v", peer.nodeID, err)
			return
		}
		switch typ {
		case frameSync:
		case frameError:
			r := &wireReader{buf: payload}
			h.cfg.Logf("fleetnet hub: leaf %q sent error: %s", peer.nodeID, r.str())
			return
		default:
			sendError(conn, "unexpected frame type %d mid-session", typ)
			return
		}
		req, err := decodeSync(payload)
		if err != nil {
			sendError(conn, "%v", err)
			return
		}
		peer.req = req
		peer.ack = &syncAckFrame{}
		if err := h.cfg.State.Exchange(peer); err != nil {
			h.cfg.Logf("fleetnet hub: leaf %q push rejected: %v", peer.nodeID, err)
			sendError(conn, "%v", err)
			return
		}
		h.noteLeaf(peer.nodeID, req)
		peer.ack.fleetExecs = uint64(h.fleetExecs())
		h.mu.Lock()
		leaves := 0
		for _, l := range h.leaves {
			if l.connected {
				leaves++
			}
		}
		h.mu.Unlock()
		peer.ack.leaves = uint64(leaves)
		if err := writeFrame(conn, frameSyncAck, peer.ack.encode(nil)); err != nil {
			h.cfg.Logf("fleetnet hub: leaf %q: %v", peer.nodeID, err)
			return
		}
	}
}

// handshake validates a hello frame and replies. Only structural protocol
// errors are tolerated silently; mismatched target/models are answered with
// an error frame so the operator sees the reason leaf-side.
func (h *Hub) handshake(conn net.Conn, peer *connPeer) error {
	conn.SetDeadline(time.Now().Add(h.cfg.Timeout))
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameHello {
		sendError(conn, "expected hello, got frame type %d", typ)
		return fmt.Errorf("expected hello, got type %d", typ)
	}
	hello, err := decodeHello(payload)
	if err != nil {
		sendError(conn, "%v", err)
		return err
	}
	version, err := negotiate(hello.version)
	if err != nil {
		sendError(conn, "%v", err)
		return err
	}
	if hello.target != h.cfg.Target {
		err := fmt.Errorf("leaf fuzzes target %q, hub fuzzes %q", hello.target, h.cfg.Target)
		sendError(conn, "%v", err)
		return err
	}
	if hello.digest != h.digest {
		err := fmt.Errorf("model digest mismatch (leaf %016x, hub %016x): data models differ", hello.digest, h.digest)
		sendError(conn, "%v", err)
		return err
	}
	peer.nodeID = hello.nodeID
	h.mu.Lock()
	l, ok := h.leaves[peer.nodeID]
	if !ok {
		l = &remoteLeaf{}
		h.leaves[peer.nodeID] = l
	}
	l.connected = true
	h.mu.Unlock()
	ack := &helloAckFrame{version: version, digest: h.digest, hubID: h.cfg.NodeID}
	return writeFrame(conn, frameHelloAck, ack.encode(nil))
}

// noteLeaf records a leaf's absolute progress figures.
func (h *Hub) noteLeaf(nodeID string, req *syncFrame) {
	h.mu.Lock()
	defer h.mu.Unlock()
	l := h.leaves[nodeID]
	if l == nil {
		l = &remoteLeaf{connected: true}
		h.leaves[nodeID] = l
	}
	if req.execs > l.execs {
		l.execs = req.execs
	}
	if req.hangs > l.hangs {
		l.hangs = req.hangs
	}
}

// fleetExecs is the hub's best knowledge of total fleet executions.
func (h *Hub) fleetExecs() int {
	execs, _, _ := h.RemoteStats()
	if h.cfg.LocalExecs != nil {
		execs += h.cfg.LocalExecs()
	}
	return execs
}
