package fleetnet

import (
	"repro/internal/corpus"
	"repro/internal/crash"
	"repro/internal/mem"
)

// This file defines the typed view of each frame payload and its
// encode/decode pair. Decoded blobs alias the frame buffer (one allocation
// per frame); everything downstream either copies on store (crash bank) or
// treats puzzle data as immutable (corpus), matching in-process semantics.

// helloFrame opens a session (leaf → hub).
type helloFrame struct {
	version uint64
	nodeID  string // stable per leaf process; keys the hub's per-leaf stats
	target  string // protocol target name, must match the hub's
	digest  uint64 // model-set digest, must match the hub's
	// resumeCursor is the leaf's saved position in the hub's corpus
	// journal — how much of the hub's corpus it had consumed before a
	// disconnect. Zero for a fresh leaf.
	resumeCursor uint64
}

func (f *helloFrame) encode(dst []byte) []byte {
	dst = append(dst, magic...)
	dst = appendUvarint(dst, f.version)
	dst = appendString(dst, f.nodeID)
	dst = appendString(dst, f.target)
	dst = appendU64(dst, f.digest)
	return appendUvarint(dst, f.resumeCursor)
}

func decodeHello(payload []byte) (*helloFrame, error) {
	r := &wireReader{buf: payload}
	if len(payload) < len(magic) || string(payload[:len(magic)]) != magic {
		r.fail("bad magic (not a fleetnet client)")
		return nil, r.err
	}
	r.pos = len(magic)
	f := &helloFrame{
		version:      r.uvarint(),
		nodeID:       r.str(),
		target:       r.str(),
		digest:       r.u64(),
		resumeCursor: r.uvarint(),
	}
	return f, r.done()
}

// helloAckFrame accepts a session (hub → leaf).
type helloAckFrame struct {
	version uint64 // negotiated session version
	digest  uint64 // hub's model digest, echoed for symmetric diagnostics
	hubID   string
}

func (f *helloAckFrame) encode(dst []byte) []byte {
	dst = appendUvarint(dst, f.version)
	dst = appendU64(dst, f.digest)
	return appendString(dst, f.hubID)
}

func decodeHelloAck(payload []byte) (*helloAckFrame, error) {
	r := &wireReader{buf: payload}
	f := &helloAckFrame{version: r.uvarint(), digest: r.u64(), hubID: r.str()}
	return f, r.done()
}

// appendPuzzles / readPuzzles encode the corpus delta shared by both sync
// directions.
func appendPuzzles(dst []byte, ps []corpus.Puzzle) []byte {
	dst = appendUvarint(dst, uint64(len(ps)))
	for _, p := range ps {
		dst = appendString(dst, p.Signature)
		dst = appendString(dst, p.Model)
		dst = appendBlob(dst, p.Data)
	}
	return dst
}

func readPuzzles(r *wireReader) []corpus.Puzzle {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxFrame/4 { // each puzzle costs ≥ 3 length bytes on the wire
		r.fail("implausible puzzle count %d", n)
		return nil
	}
	ps := make([]corpus.Puzzle, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		ps = append(ps, corpus.Puzzle{
			Signature: r.str(),
			Model:     r.str(),
			Data:      r.blob(),
		})
	}
	return ps
}

// appendCrashes / readCrashes encode the crash-record delta shared by both
// sync directions.
func appendCrashes(dst []byte, rs []*crash.Record) []byte {
	dst = appendUvarint(dst, uint64(len(rs)))
	for _, rec := range rs {
		dst = appendString(dst, string(rec.Kind))
		dst = appendString(dst, rec.Site)
		dst = appendBlob(dst, rec.Example)
		dst = appendUvarint(dst, uint64(rec.Count))
		dst = appendUvarint(dst, uint64(rec.FirstExec))
		dst = appendU64(dst, rec.PathSig)
	}
	return dst
}

func readCrashes(r *wireReader) []*crash.Record {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxFrame/8 {
		r.fail("implausible crash count %d", n)
		return nil
	}
	rs := make([]*crash.Record, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		rs = append(rs, &crash.Record{
			Kind:      mem.FaultKind(r.str()),
			Site:      r.str(),
			Example:   r.blob(),
			Count:     int(r.uvarint()),
			FirstExec: int(r.uvarint()),
			PathSig:   r.u64(),
		})
	}
	return rs
}

// syncFrame is one leaf push (leaf → hub).
type syncFrame struct {
	execs, hangs uint64 // leaf totals, absolute (idempotent under resend)
	hubCursor    uint64 // where the hub should read its journal from
	virginDelta  []byte
	puzzles      []corpus.Puzzle
	crashes      []*crash.Record
}

func (f *syncFrame) encode(dst []byte) []byte {
	dst = appendUvarint(dst, f.execs)
	dst = appendUvarint(dst, f.hangs)
	dst = appendUvarint(dst, f.hubCursor)
	dst = appendBlob(dst, f.virginDelta)
	dst = appendPuzzles(dst, f.puzzles)
	return appendCrashes(dst, f.crashes)
}

func decodeSync(payload []byte) (*syncFrame, error) {
	r := &wireReader{buf: payload}
	f := &syncFrame{
		execs:       r.uvarint(),
		hangs:       r.uvarint(),
		hubCursor:   r.uvarint(),
		virginDelta: r.blob(),
		puzzles:     readPuzzles(r),
		crashes:     readCrashes(r),
	}
	return f, r.done()
}

// syncAckFrame is the hub's reply to one sync.
type syncAckFrame struct {
	virginDelta []byte
	puzzles     []corpus.Puzzle
	crashes     []*crash.Record
	newCursor   uint64 // the leaf's next hubCursor
	// Fleet-wide figures for leaf-side progress display: total remote
	// executions the hub has heard of (its own workers included when it
	// runs a fleet), distinct edges in the hub union map, and the number
	// of currently connected leaves.
	fleetExecs, fleetEdges, leaves uint64
}

func (f *syncAckFrame) encode(dst []byte) []byte {
	dst = appendBlob(dst, f.virginDelta)
	dst = appendPuzzles(dst, f.puzzles)
	dst = appendCrashes(dst, f.crashes)
	dst = appendUvarint(dst, f.newCursor)
	dst = appendUvarint(dst, f.fleetExecs)
	dst = appendUvarint(dst, f.fleetEdges)
	return appendUvarint(dst, f.leaves)
}

func decodeSyncAck(payload []byte) (*syncAckFrame, error) {
	r := &wireReader{buf: payload}
	f := &syncAckFrame{
		virginDelta: r.blob(),
		puzzles:     readPuzzles(r),
		crashes:     readCrashes(r),
		newCursor:   r.uvarint(),
		fleetExecs:  r.uvarint(),
		fleetEdges:  r.uvarint(),
		leaves:      r.uvarint(),
	}
	return f, r.done()
}
