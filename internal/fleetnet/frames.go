package fleetnet

import (
	"repro/internal/corpus"
	"repro/internal/crash"
	"repro/internal/mem"
)

// This file defines the typed view of each frame payload and its
// encode/decode pair. Decoded blobs alias the frame buffer (one allocation
// per frame); everything downstream either copies on store (crash bank) or
// treats puzzle data as immutable (corpus), matching in-process semantics.

// helloFrame opens a session (dialer → acceptor).
type helloFrame struct {
	version uint64
	nodeID  string // stable per node process; keys the acceptor's per-peer stats
	target  string // protocol target name, must match the acceptor's
	digest  uint64 // model-set digest, must match the acceptor's
	// resumeCursor is the dialer's saved position in the acceptor's corpus
	// journal — how much of the acceptor's corpus it had consumed before a
	// disconnect. Zero for a fresh peer. The acceptor seeds its journal
	// registration from it at handshake time, so compaction is pinned
	// correctly from the moment a resuming peer connects.
	resumeCursor uint64
	// Peer exchange (protocol v2): the address other nodes can dial this
	// node at ("" for a plain leaf with no accept loop) and the mesh peer
	// addresses it knows, so one seed address bootstraps a whole mesh.
	advertise string
	peers     []string
}

func (f *helloFrame) encode(dst []byte) []byte {
	dst = append(dst, magic...)
	dst = appendUvarint(dst, f.version)
	dst = appendString(dst, f.nodeID)
	dst = appendString(dst, f.target)
	dst = appendU64(dst, f.digest)
	dst = appendUvarint(dst, f.resumeCursor)
	dst = appendString(dst, f.advertise)
	return appendAddrs(dst, f.peers)
}

func decodeHello(payload []byte) (*helloFrame, error) {
	r := &wireReader{buf: payload}
	if len(payload) < len(magic) || string(payload[:len(magic)]) != magic {
		r.fail("bad magic (not a fleetnet client)")
		return nil, r.err
	}
	r.pos = len(magic)
	f := &helloFrame{
		version:      r.uvarint(),
		nodeID:       r.str(),
		target:       r.str(),
		digest:       r.u64(),
		resumeCursor: r.uvarint(),
	}
	// The peer-exchange tail was added in protocol v2; tolerate its absence
	// so a v1-shaped frame still decodes into an empty peer set.
	if r.err == nil && r.pos < len(r.buf) {
		f.advertise = r.str()
		f.peers = readAddrs(r)
	}
	return f, r.done()
}

// helloAckFrame accepts a session (acceptor → dialer).
type helloAckFrame struct {
	version uint64 // negotiated session version
	digest  uint64 // acceptor's model digest, echoed for symmetric diagnostics
	hubID   string
	// peers is the acceptor's known mesh peer set (protocol v2) — how a
	// node that bootstrapped from one address learns the rest of the mesh.
	peers []string
}

func (f *helloAckFrame) encode(dst []byte) []byte {
	dst = appendUvarint(dst, f.version)
	dst = appendU64(dst, f.digest)
	dst = appendString(dst, f.hubID)
	return appendAddrs(dst, f.peers)
}

func decodeHelloAck(payload []byte) (*helloAckFrame, error) {
	r := &wireReader{buf: payload}
	f := &helloAckFrame{version: r.uvarint(), digest: r.u64(), hubID: r.str()}
	if r.err == nil && r.pos < len(r.buf) {
		f.peers = readAddrs(r)
	}
	return f, r.done()
}

// appendAddrs / readAddrs encode the peer-address lists of the v2 peer
// exchange.
func appendAddrs(dst []byte, addrs []string) []byte {
	dst = appendUvarint(dst, uint64(len(addrs)))
	for _, a := range addrs {
		dst = appendString(dst, a)
	}
	return dst
}

// maxPeerAddrs bounds a peer-exchange list; any sane mesh is orders of
// magnitude smaller, so a bigger count means a corrupt frame.
const maxPeerAddrs = 1024

func readAddrs(r *wireReader) []string {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxPeerAddrs {
		r.fail("implausible peer count %d", n)
		return nil
	}
	addrs := make([]string, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		addrs = append(addrs, r.str())
	}
	return addrs
}

// appendPuzzles / readPuzzles encode the corpus delta shared by both sync
// directions.
func appendPuzzles(dst []byte, ps []corpus.Puzzle) []byte {
	dst = appendUvarint(dst, uint64(len(ps)))
	for _, p := range ps {
		dst = appendString(dst, p.Signature)
		dst = appendString(dst, p.Model)
		dst = appendBlob(dst, p.Data)
	}
	return dst
}

func readPuzzles(r *wireReader) []corpus.Puzzle {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxFrame/4 { // each puzzle costs ≥ 3 length bytes on the wire
		r.fail("implausible puzzle count %d", n)
		return nil
	}
	ps := make([]corpus.Puzzle, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		ps = append(ps, corpus.Puzzle{
			Signature: r.str(),
			Model:     r.str(),
			Data:      r.blob(),
		})
	}
	return ps
}

// appendCrashes / readCrashes encode the crash-record delta shared by both
// sync directions.
func appendCrashes(dst []byte, rs []*crash.Record) []byte {
	dst = appendUvarint(dst, uint64(len(rs)))
	for _, rec := range rs {
		dst = appendString(dst, string(rec.Kind))
		dst = appendString(dst, rec.Site)
		dst = appendBlob(dst, rec.Example)
		dst = appendUvarint(dst, uint64(rec.Count))
		dst = appendUvarint(dst, uint64(rec.FirstExec))
		dst = appendU64(dst, rec.PathSig)
	}
	return dst
}

func readCrashes(r *wireReader) []*crash.Record {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	if n > maxFrame/8 {
		r.fail("implausible crash count %d", n)
		return nil
	}
	rs := make([]*crash.Record, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		rs = append(rs, &crash.Record{
			Kind:      mem.FaultKind(r.str()),
			Site:      r.str(),
			Example:   r.blob(),
			Count:     int(r.uvarint()),
			FirstExec: int(r.uvarint()),
			PathSig:   r.u64(),
		})
	}
	return rs
}

// syncFrame is one push (dialer → acceptor).
type syncFrame struct {
	execs, hangs uint64 // sender totals, absolute (idempotent under resend)
	cursor       uint64 // where the receiver should read its own journal from
	virginDelta  []byte
	puzzles      []corpus.Puzzle
	crashes      []*crash.Record
}

func (f *syncFrame) encode(dst []byte) []byte {
	dst = appendUvarint(dst, f.execs)
	dst = appendUvarint(dst, f.hangs)
	dst = appendUvarint(dst, f.cursor)
	dst = appendBlob(dst, f.virginDelta)
	dst = appendPuzzles(dst, f.puzzles)
	return appendCrashes(dst, f.crashes)
}

func decodeSync(payload []byte) (*syncFrame, error) {
	r := &wireReader{buf: payload}
	f := &syncFrame{
		execs:       r.uvarint(),
		hangs:       r.uvarint(),
		cursor:      r.uvarint(),
		virginDelta: r.blob(),
		puzzles:     readPuzzles(r),
		crashes:     readCrashes(r),
	}
	return f, r.done()
}

// syncAckFrame is the acceptor's reply to one sync.
type syncAckFrame struct {
	virginDelta []byte
	puzzles     []corpus.Puzzle
	crashes     []*crash.Record
	newCursor   uint64 // the dialer's next cursor into the acceptor's journal
	// Fleet-wide figures for dialer-side progress display: total remote
	// executions the acceptor has heard of (its own workers included when
	// it runs a fleet), distinct edges in its union map, and the number of
	// currently connected inbound peers.
	fleetExecs, fleetEdges, leaves uint64
}

func (f *syncAckFrame) encode(dst []byte) []byte {
	dst = appendBlob(dst, f.virginDelta)
	dst = appendPuzzles(dst, f.puzzles)
	dst = appendCrashes(dst, f.crashes)
	dst = appendUvarint(dst, f.newCursor)
	dst = appendUvarint(dst, f.fleetExecs)
	dst = appendUvarint(dst, f.fleetEdges)
	return appendUvarint(dst, f.leaves)
}

func decodeSyncAck(payload []byte) (*syncAckFrame, error) {
	r := &wireReader{buf: payload}
	f := &syncAckFrame{
		virginDelta: r.blob(),
		puzzles:     readPuzzles(r),
		crashes:     readCrashes(r),
		newCursor:   r.uvarint(),
		fleetExecs:  r.uvarint(),
		fleetEdges:  r.uvarint(),
		leaves:      r.uvarint(),
	}
	return f, r.done()
}
