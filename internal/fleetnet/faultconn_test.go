package fleetnet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// Fault-injection tests: the fleet protocol's tolerance claims — partial
// writes reassemble, mid-frame resets reset the session and the next sync
// re-pushes idempotently, stalled peers are bounded by the frame timeout —
// exercised through a net.Conn wrapper that misbehaves on demand, over the
// real hub/leaf and mesh stacks. The TestConcurrent* names put these under
// `make race`.

// faultPlan is the shared, concurrently-mutable control block for every
// faultConn a proxy hands out. All knobs are safe to flip mid-connection
// from the test goroutine.
type faultPlan struct {
	// chunk caps bytes per underlying Write (0 = unlimited): partial writes.
	chunk atomic.Int64
	// latency sleeps before every underlying op: a slow link.
	latency atomic.Int64 // nanoseconds
	// killAfter, when armed (>0), counts down bytes written through the
	// wrapper and severs the connection mid-frame when it reaches zero.
	killAfter atomic.Int64
	// stall, while true, blocks reads (without consuming data): an
	// unresponsive peer that keeps the TCP session open.
	stall atomic.Bool
	// kills counts connections severed by killAfter.
	kills atomic.Int64
}

// faultConn wraps a net.Conn and misbehaves per the shared plan.
type faultConn struct {
	net.Conn
	plan *faultPlan
	// down, when true, aborts a stalled read — proxy teardown must not
	// wait out a stall left armed by a failing test.
	down *atomic.Bool
}

func (f *faultConn) Read(p []byte) (int, error) {
	n, err := f.Conn.Read(p)
	// The gate sits after the underlying read: a pipe goroutine is usually
	// already parked inside Conn.Read when a stall is armed, so gating the
	// call entry would let one buffered delivery slip through. Holding the
	// data keeps the connection open while delivering nothing — the peer's
	// frame deadline is what must end the wait.
	for f.plan.stall.Load() {
		if f.down.Load() {
			return 0, io.ErrClosedPipe
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d := f.plan.latency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return n, err
}

func (f *faultConn) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		if d := f.plan.latency.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		n := len(p)
		if c := int(f.plan.chunk.Load()); c > 0 && n > c {
			n = c
		}
		if armed := f.plan.killAfter.Load(); armed > 0 {
			if int64(n) >= armed {
				// Sever mid-frame: write the last allowed bytes, then cut.
				f.Conn.Write(p[:armed])
				f.plan.killAfter.Store(0)
				f.plan.kills.Add(1)
				f.Conn.Close()
				return written, io.ErrClosedPipe
			}
			f.plan.killAfter.Add(int64(-n))
		}
		n, err := f.Conn.Write(p[:n])
		written += n
		if err != nil {
			return written, err
		}
		p = p[n:]
	}
	return written, nil
}

// faultProxy accepts on a loopback port and pipes each connection to the
// upstream address through faultConn wrappers, so an unmodified leaf or
// mesh uplink dialing the proxy experiences the plan's faults in both
// directions.
type faultProxy struct {
	ln       net.Listener
	upstream string
	plan     *faultPlan
	wg       sync.WaitGroup
	closed   atomic.Bool
}

func newFaultProxy(t *testing.T, upstream string) *faultProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &faultProxy{ln: ln, upstream: upstream, plan: &faultPlan{}}
	p.wg.Add(1)
	go p.acceptLoop()
	t.Cleanup(p.Close)
	return p
}

func (p *faultProxy) Addr() string { return p.ln.Addr().String() }

func (p *faultProxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.wg.Wait()
}

func (p *faultProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.upstream)
		if err != nil {
			down.Close()
			continue
		}
		faulty := &faultConn{Conn: down, plan: p.plan, down: &p.closed}
		p.wg.Add(2)
		pipe := func(dst, src net.Conn) {
			defer p.wg.Done()
			io.Copy(dst, src)
			// Half-close propagates as full close: the frame protocol is
			// strictly request/reply, so a dead direction means a dead link.
			dst.Close()
			src.Close()
		}
		go pipe(up, faulty)
		go pipe(faulty, up)
	}
}

// TestConcurrentSyncOverDegradedLink: two leaves sync concurrently through
// one proxy that fragments every write into 3-byte chunks with injected
// latency. Frames must reassemble; the fleet must settle to the same union
// both sides.
func TestConcurrentSyncOverDegradedLink(t *testing.T) {
	const budget = 3000
	state := core.NewSyncState(0)
	hub, err := NewHub(HubConfig{State: state, Target: "conv", Models: convModels(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	proxy := newFaultProxy(t, hub.Addr())
	proxy.plan.chunk.Store(3)
	proxy.plan.latency.Store(int64(100 * time.Microsecond))

	fleets := []*core.Fleet{newConvFleet(t, 41, 1, 0), newConvFleet(t, 41, 1, 1)}
	var wg sync.WaitGroup
	for i, f := range fleets {
		leaf, err := NewLeaf(LeafConfig{
			Fleet:  f,
			Addr:   proxy.Addr(),
			Target: "conv",
			Models: convModels(),
			NodeID: []string{"deg-a", "deg-b"}[i],
			Logf:   t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer leaf.Close()
		wg.Add(1)
		go func(l *Leaf) {
			defer wg.Done()
			if err := l.Run(budget, 512); err != nil {
				t.Errorf("leaf run over degraded link: %v", err)
			}
		}(leaf)
	}
	wg.Wait()

	execs, _, _ := hub.RemoteStats()
	if want := 2 * budget; execs < want {
		t.Fatalf("hub absorbed %d remote execs over the degraded link, want ≥ %d", execs, want)
	}
}

// TestConcurrentSyncSurvivesMidFrameResets: the link is severed mid-frame
// repeatedly; each severed window errors, the session resets, and the next
// window re-pushes idempotently — no state may be lost by the time the
// last clean sync lands.
func TestConcurrentSyncSurvivesMidFrameResets(t *testing.T) {
	state := core.NewSyncState(0)
	hub, err := NewHub(HubConfig{State: state, Target: "conv", Models: convModels(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	proxy := newFaultProxy(t, hub.Addr())

	fleet := newConvFleet(t, 43, 1, 0)
	leaf, err := NewLeaf(LeafConfig{
		Fleet:  fleet,
		Addr:   proxy.Addr(),
		Target: "conv",
		Models: convModels(),
		NodeID: "reset-leaf",
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()

	syncErrs, syncOKs := 0, 0
	for window := 1; window <= 8; window++ {
		fleet.Run(window * 400)
		if window%2 == 1 {
			// Cut the link a few dozen bytes into the next push — mid-frame,
			// after the header is out.
			proxy.plan.killAfter.Store(40)
		}
		if err := leaf.Sync(); err != nil {
			syncErrs++
			if leaf.Connected() {
				t.Fatal("leaf still marked connected after a failed sync")
			}
		} else {
			syncOKs++
		}
	}
	proxy.plan.killAfter.Store(0)
	if err := leaf.Sync(); err != nil {
		t.Fatalf("final sync on a clean link: %v", err)
	}
	if syncErrs == 0 {
		t.Fatal("no sync ever failed — the mid-frame cuts never landed")
	}
	if syncOKs == 0 {
		t.Fatal("no sync between cuts succeeded")
	}
	if kills := proxy.plan.kills.Load(); kills == 0 {
		t.Fatal("proxy recorded no mid-frame kills")
	}
	execs, _, _ := hub.RemoteStats()
	if execs != fleet.Execs() {
		t.Fatalf("hub absorbed %d execs, leaf ran %d — resets lost state", execs, fleet.Execs())
	}
}

// TestConcurrentSyncStalledPeerTimesOut: a peer that keeps the TCP session
// open but stops responding must cost one frame timeout, not a wedged
// campaign; once the stall clears, the next sync recovers the session.
func TestConcurrentSyncStalledPeerTimesOut(t *testing.T) {
	state := core.NewSyncState(0)
	hub, err := NewHub(HubConfig{State: state, Target: "conv", Models: convModels(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	proxy := newFaultProxy(t, hub.Addr())

	fleet := newConvFleet(t, 47, 1, 0)
	leaf, err := NewLeaf(LeafConfig{
		Fleet:   fleet,
		Addr:    proxy.Addr(),
		Target:  "conv",
		Models:  convModels(),
		NodeID:  "stall-leaf",
		Timeout: 300 * time.Millisecond,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leaf.Close()

	fleet.Run(500)
	if err := leaf.Sync(); err != nil {
		t.Fatalf("baseline sync: %v", err)
	}

	proxy.plan.stall.Store(true)
	start := time.Now()
	err = leaf.Sync()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("sync against a stalled peer succeeded")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("stalled sync took %v — the frame timeout did not bound it", elapsed)
	}
	proxy.plan.stall.Store(false)

	fleet.Run(1000)
	if err := leaf.Sync(); err != nil {
		t.Fatalf("sync after stall cleared: %v", err)
	}
	execs, _, _ := hub.RemoteStats()
	if execs != fleet.Execs() {
		t.Fatalf("hub absorbed %d execs, leaf ran %d after stall recovery", execs, fleet.Execs())
	}
}

// TestConcurrentMeshOverFaultyLink: a two-node mesh whose single uplink
// runs through a degraded, occasionally-severed link. The uplink's capped
// exponential backoff must keep re-establishing the session and the nodes
// must still exchange their execution totals.
func TestConcurrentMeshOverFaultyLink(t *testing.T) {
	fleetA := newConvFleet(t, 53, 1, 0)
	fleetB := newConvFleet(t, 53, 1, 1)

	// The proxy address IS node A's identity: A advertises it, and B keeps
	// its single (static) uplink to it — so the one link in this mesh runs
	// through the fault injector in both directions. A advertising the
	// proxy also keeps A from dialing itself when B's hello announces the
	// proxy address in its peer book.
	aListen, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aAddr := aListen.Addr().String()
	aListen.Close()
	proxy := newFaultProxy(t, aAddr)
	proxy.plan.chunk.Store(5)
	proxy.plan.latency.Store(int64(50 * time.Microsecond))

	a, err := NewMesh(MeshConfig{
		Fleet:     fleetA,
		Target:    "conv",
		Models:    convModels(),
		NodeID:    "mesh-a",
		Advertise: proxy.Addr(),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ListenAndServe(aAddr); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	b, err := NewMesh(MeshConfig{
		Fleet:      fleetB,
		Target:     "conv",
		Models:     convModels(),
		NodeID:     "mesh-b",
		Peers:      []string{proxy.Addr()},
		StaticOnly: true,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for round := 1; round <= 10; round++ {
		fleetA.Run(round * 300)
		fleetB.Run(round * 300)
		if round == 3 || round == 6 {
			proxy.plan.killAfter.Store(60) // sever B's next push mid-frame
		}
		if err := a.Sync(); err != nil {
			t.Logf("mesh-a sync round %d: %v (tolerated)", round, err)
		}
		if err := b.Sync(); err != nil {
			t.Logf("mesh-b sync round %d: %v (tolerated)", round, err)
		}
	}
	proxy.plan.killAfter.Store(0)
	settle(t, a, b)

	if kills := proxy.plan.kills.Load(); kills == 0 {
		t.Fatal("proxy recorded no mid-frame kills — the chaos never landed")
	}
	// B is the link's only dialer, so only A accumulates inbound figures;
	// B's window into A's work is the ack stream, checked through the
	// fleets' converged union maps.
	if got := a.RemoteExecs(); got < fleetB.Execs() {
		t.Fatalf("mesh-a saw %d remote execs, want ≥ %d (B's total)", got, fleetB.Execs())
	}
	ea, eb := fleetA.Stats().Edges, fleetB.Stats().Edges
	if ea == 0 || ea != eb {
		t.Fatalf("union maps did not converge over the faulty link: A %d edges, B %d edges", ea, eb)
	}
}
