package fleetnet

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/datamodel"
)

// DefaultMaxUplinks bounds a mesh node's outbound sessions when
// MeshConfig.MaxUplinks is zero. Convergence only needs the topology
// connected; past a point more links buy redundancy, not reach.
const DefaultMaxUplinks = 16

// meshPeerFails is how many consecutive failed sync attempts a *learned*
// peer survives before the node forgets its address. Static peers are
// operator intent and are retried forever. Redials back off exponentially
// with jitter (see backoff.Policy.Steps): a failed attempt sits out
// roughly 2^(fails-1) windows, capped at meshPeerFails, plus a
// seed-jittered extra — so a dead peer costs one bounded dial every few
// windows, and nodes that watched the same peer die don't redial it in
// lockstep when it returns.
const meshPeerFails = 8

// DefaultMeshDialTimeout bounds a mesh uplink's TCP connect when
// MeshConfig.DialTimeout is zero. Deliberately much tighter than the frame
// Timeout: a blackholed peer (host down, SYN dropped) must not stall the
// node's whole sync round — and with it the fuzzing loop — for 30s.
const DefaultMeshDialTimeout = 2 * time.Second

// MeshConfig parameterizes a Mesh node.
type MeshConfig struct {
	// Fleet is the local campaign this node contributes. Its shared state
	// is what every link — inbound and outbound — merges through.
	Fleet *core.Fleet
	// Target and Models identify the campaign for the handshake.
	Target string
	Models []*datamodel.Model
	// NodeID names this node in its peers' stats; defaults to
	// hostname/pid/sequence.
	NodeID string
	// Advertise is the address other nodes should dial to reach this
	// node's accept loop. Defaults to the listener address, which is
	// correct when listening on a routable interface (and on loopback
	// demos); override it when the bind address is not dialable from the
	// peers (":7712", a NAT, a container).
	Advertise string
	// Peers is the static bootstrap peer set: addresses this node always
	// keeps an uplink to. One seed address is enough to join a mesh — the
	// handshake peer exchange supplies the rest.
	Peers []string
	// StaticOnly disables dialing peers learned through the handshake
	// exchange: the node links only to its static set (inbound sessions
	// are still accepted, and learned addresses are still relayed onward).
	// For fixed topologies — rings, lines — where the experiment is the
	// shape.
	StaticOnly bool
	// MaxUplinks caps concurrent outbound sessions (0 = DefaultMaxUplinks).
	// Static peers are dialed first when the cap bites.
	MaxUplinks int
	// Timeout bounds each frame read/write (0 = 30s).
	Timeout time.Duration
	// DialTimeout bounds each uplink's TCP connect
	// (0 = DefaultMeshDialTimeout).
	DialTimeout time.Duration
	// Logf receives lifecycle messages (nil = no logging).
	Logf func(format string, args ...any)
}

// Mesh runs one node of a hub-less fleet: the hub accept loop serving
// inbound peers plus leaf-style uplinks to every known peer address, all
// merging through the node's own fleet state. Where a hub/leaf fleet has
// one cursor per leaf all held by the hub, a mesh node holds a vector of
// peerSessions — one per link — so any node can vanish and the remaining
// links keep the campaign converging; sync bandwidth scales with links,
// not through one box.
//
// Sync, Run and Close must be called from the fleet's driving goroutine;
// the accept loop and its handlers run in the background like a Hub's.
// (Deadline-bounded runs live in the public session driver,
// peachstar.Campaign.Start, which alternates core.Fleet.Drive windows
// with Mesh.SyncContext.)
type Mesh struct {
	cfg MeshConfig
	hub *Hub

	// mu guards known and advertise, which handler goroutines touch
	// through the peer-exchange callbacks.
	mu        sync.Mutex
	known     map[string]bool // address → static?
	advertise string

	// uplinks is touched only by the driving goroutine.
	uplinks map[string]*meshUplink
	// bk draws the redial-backoff jitter; seeded from the node ID so each
	// node jitters its own way (anti-thundering-herd) yet reproduces its
	// schedule across runs. Touched only by the driving goroutine.
	bk *backoff.Policy
	// closedTx/closedRx retain the traffic of dropped uplinks so Traffic
	// stays cumulative.
	closedTx, closedRx int

	// localExecs is the node's own execution count as of the last window,
	// published for handler goroutines building acks.
	localExecs int64
	// pubUplinks is the connected-uplink count as of the last sync round,
	// published so PeerStats can be read from display goroutines without
	// touching the driving goroutine's uplink map.
	pubUplinks int64
}

// hashID folds a node ID into the 64-bit seed of the node's backoff
// jitter stream (FNV-1a).
func hashID(id string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime
	}
	return h
}

// meshUplink is one outbound link plus its retry accounting.
type meshUplink struct {
	leaf   *Leaf
	static bool
	fails  int // consecutive failed attempts; learned peers are forgotten past meshPeerFails
	skip   int // disconnected-redial backoff: windows to sit out before the next attempt
}

// NewMesh validates the configuration and prepares the node. Nothing
// listens or dials until ListenAndServe and the first Sync.
func NewMesh(cfg MeshConfig) (*Mesh, error) {
	if cfg.Fleet == nil {
		return nil, fmt.Errorf("fleetnet: MeshConfig.Fleet is required")
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("fleetnet: MeshConfig.Target is required")
	}
	if cfg.NodeID == "" {
		host, _ := os.Hostname()
		cfg.NodeID = fmt.Sprintf("%s/%d/%d", host, os.Getpid(), atomic.AddUint32(&leafSeq, 1))
	}
	if cfg.MaxUplinks <= 0 {
		cfg.MaxUplinks = DefaultMaxUplinks
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultMeshDialTimeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	m := &Mesh{
		cfg:       cfg,
		known:     make(map[string]bool),
		uplinks:   make(map[string]*meshUplink),
		advertise: cfg.Advertise,
		bk:        backoff.New(hashID(cfg.NodeID)),
	}
	for _, a := range cfg.Peers {
		if a != "" {
			m.known[a] = true
		}
	}
	hub, err := NewHub(HubConfig{
		State:      cfg.Fleet.State(),
		Target:     cfg.Target,
		Models:     cfg.Models,
		NodeID:     cfg.NodeID,
		LocalExecs: func() int { return int(atomic.LoadInt64(&m.localExecs)) },
		Timeout:    cfg.Timeout,
		Logf:       cfg.Logf,
		KnownPeers: m.knownPeers,
		LearnPeer:  m.learnPeer,
	})
	if err != nil {
		return nil, err
	}
	m.hub = hub
	return m, nil
}

// ListenAndServe starts the node's accept loop on addr (":0" picks a free
// port). It returns once the listener is installed; inbound peers are
// served in the background.
func (m *Mesh) ListenAndServe(addr string) error {
	if err := m.hub.ListenAndServe(addr); err != nil {
		return err
	}
	m.mu.Lock()
	if m.advertise == "" {
		m.advertise = m.hub.Addr()
	}
	m.mu.Unlock()
	return nil
}

// Addr returns the accept loop's bound address, or "" before
// ListenAndServe.
func (m *Mesh) Addr() string { return m.hub.Addr() }

// knownPeers snapshots the peer book for a handshake, sorted for
// determinism. Called from handler goroutines and uplink dials.
func (m *Mesh) knownPeers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.known))
	for a := range m.known {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// learnPeer folds one announced address into the peer book. Own address
// and known addresses are ignored. Called from handler goroutines and
// uplink dials.
func (m *Mesh) learnPeer(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" || addr == m.advertise {
		return
	}
	if _, ok := m.known[addr]; !ok {
		m.known[addr] = false
		m.cfg.Logf("fleetnet mesh %s: learned peer %s", m.cfg.NodeID, addr)
	}
}

// AddPeer adds one address to the peer book at runtime as a static peer
// (dialed from the next Sync on, retried forever, never forgotten) — for
// topologies wired up after the nodes exist, like a ring of nodes that
// each had to listen before the next one could point at them.
func (m *Mesh) AddPeer(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr != "" && addr != m.advertise {
		m.known[addr] = true
	}
}

// forgetPeer drops a learned address that stopped answering. Static
// addresses are never forgotten.
func (m *Mesh) forgetPeer(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if static, ok := m.known[addr]; ok && !static {
		delete(m.known, addr)
		m.cfg.Logf("fleetnet mesh %s: forgot unreachable peer %s", m.cfg.NodeID, addr)
	}
}

// ensureUplinks creates uplinks for known peers that lack one: every
// static peer, plus — unless StaticOnly — every learned peer that does not
// already keep an inbound session to us (a link needs only one dialer; the
// exchange is bidirectional either way).
func (m *Mesh) ensureUplinks() {
	m.mu.Lock()
	type cand struct {
		addr   string
		static bool
	}
	var want []cand
	for addr, static := range m.known {
		if addr == m.advertise {
			continue
		}
		if static || !m.cfg.StaticOnly {
			want = append(want, cand{addr, static})
		}
	}
	advertise := m.advertise
	m.mu.Unlock()
	// Static peers first: when MaxUplinks bites, operator-configured links
	// must never be starved by alphabetically-earlier learned addresses.
	sort.Slice(want, func(i, j int) bool {
		if want[i].static != want[j].static {
			return want[i].static
		}
		return want[i].addr < want[j].addr
	})
	inbound := m.hub.InboundAdvertised()
	for _, c := range want {
		if _, ok := m.uplinks[c.addr]; ok {
			continue
		}
		if !c.static && inbound[c.addr] {
			continue
		}
		if len(m.uplinks) >= m.cfg.MaxUplinks {
			break
		}
		leaf, err := NewLeaf(LeafConfig{
			Fleet:       m.cfg.Fleet,
			Addr:        c.addr,
			Target:      m.cfg.Target,
			Models:      m.cfg.Models,
			NodeID:      m.cfg.NodeID,
			Timeout:     m.cfg.Timeout,
			DialTimeout: m.cfg.DialTimeout,
			Logf:        m.cfg.Logf,
			Advertise:   advertise,
			KnownPeers:  m.knownPeers,
			LearnPeer:   m.learnPeer,
		})
		if err != nil {
			m.cfg.Logf("fleetnet mesh %s: uplink to %s: %v", m.cfg.NodeID, c.addr, err)
			continue
		}
		m.uplinks[c.addr] = &meshUplink{leaf: leaf, static: c.static}
	}
}

// Sync runs one merge window with every peer: dial any known peer that
// lacks a link, then exchange deltas over each uplink in address order.
// Individual link failures are tolerated — the failing session resets and
// redials with capped exponential backoff and jitter, a learned peer that
// stays dead is eventually forgotten — and the first error is returned for
// logging;
// inbound sessions sync themselves through the accept loop. The node's
// fleet must not be running (call between Run windows, like Leaf.Sync).
func (m *Mesh) Sync() error { return m.SyncContext(context.Background()) }

// SyncContext is Sync under a context: cancellation interrupts the uplink
// in flight (dial included) and skips the remaining uplinks of the round,
// so a canceled campaign leaves a mesh within one link exchange instead
// of finishing a full round against every peer. The context's error is
// returned once it fires; link errors keep their first-error-for-logging
// semantics.
func (m *Mesh) SyncContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	atomic.StoreInt64(&m.localExecs, int64(m.cfg.Fleet.Execs()))
	// Flush the workers into the shared state before (and independent of)
	// any uplink exchange: a node whose links all point inward — the seed
	// node of a freshly bootstrapped mesh — must still present its latest
	// discoveries to the peers that pull from it, and must fold their
	// pushes back into its workers. Uplink syncs flush again around their
	// own windows; SyncAll converges to a no-op, so the overlap is cheap.
	m.cfg.Fleet.SyncAll()
	m.ensureUplinks()
	m.pruneDuplicateLinks()
	addrs := make([]string, 0, len(m.uplinks))
	for a := range m.uplinks {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	var firstErr error
	for _, addr := range addrs {
		if err := ctx.Err(); err != nil {
			return err
		}
		u := m.uplinks[addr]
		if !u.leaf.Connected() && u.skip > 0 {
			u.skip-- // back off a dead peer's redial; don't stall the round
			continue
		}
		err := u.leaf.SyncContext(ctx)
		if err == nil {
			u.fails, u.skip = 0, 0
			continue
		}
		if ctx.Err() != nil {
			// The campaign was canceled, not the peer: no failure is
			// charged against the link.
			return ctx.Err()
		}
		u.fails++
		u.skip = m.bk.Steps(u.fails, meshPeerFails)
		m.cfg.Logf("fleetnet mesh %s: sync with %s: %v", m.cfg.NodeID, addr, err)
		if firstErr == nil {
			firstErr = err
		}
		if !u.static && u.fails >= meshPeerFails {
			m.dropUplink(addr, u)
			m.forgetPeer(addr)
		}
	}
	m.publishUplinks()
	return firstErr
}

// publishUplinks refreshes the connected-uplink count PeerStats reads.
// Called from the driving goroutine at the end of a sync round (and on
// teardown), where the uplink map is safe to walk.
func (m *Mesh) publishUplinks() {
	n := 0
	for _, u := range m.uplinks {
		if u.leaf.Connected() {
			n++
		}
	}
	atomic.StoreInt64(&m.pubUplinks, int64(n))
}

// pruneDuplicateLinks resolves the bootstrap race where both sides of a
// pair learned each other in the same window and both dialed before either
// handshake landed: once a node sees a live inbound session from an
// address it also keeps a connected learned uplink to, the node with the
// lexically larger advertise address yields its uplink — deterministically
// one link per pair, bidirectional over whichever remains. Static uplinks
// are operator intent and never yielded.
func (m *Mesh) pruneDuplicateLinks() {
	m.mu.Lock()
	advertise := m.advertise
	m.mu.Unlock()
	var inbound map[string]bool
	for addr, u := range m.uplinks {
		if u.static || !u.leaf.Connected() || advertise <= addr {
			continue
		}
		if inbound == nil {
			inbound = m.hub.InboundAdvertised()
		}
		if !inbound[addr] {
			continue
		}
		m.dropUplink(addr, u)
		m.cfg.Logf("fleetnet mesh %s: yielded duplicate link to %s (peer keeps dialing)", m.cfg.NodeID, addr)
	}
}

// dropUplink closes one uplink, retaining its traffic counters. The
// address stays in the peer book unless the caller also forgets it.
func (m *Mesh) dropUplink(addr string, u *meshUplink) {
	tx, rx := u.leaf.Traffic()
	m.closedTx += tx
	m.closedRx += rx
	u.leaf.Close()
	delete(m.uplinks, addr)
}

// Run drives the local fleet to execBudget total executions, syncing with
// the mesh every syncEvery executions (0 = every 4 merge windows' worth,
// 1024). Sync failures are logged and fuzzing continues; the budget is
// always spent. The final state is flushed with a last Sync whose error,
// if any, is returned.
func (m *Mesh) Run(execBudget, syncEvery int) error {
	if syncEvery <= 0 {
		syncEvery = 4 * core.DefaultMergeEvery
	}
	fleet := m.cfg.Fleet
	for fleet.Execs() < execBudget {
		window := fleet.Execs() + syncEvery
		if window > execBudget {
			window = execBudget
		}
		fleet.Run(window)
		if err := m.Sync(); err != nil {
			m.cfg.Logf("fleetnet mesh %s: sync: %v (continuing locally)", m.cfg.NodeID, err)
		}
	}
	return m.Sync()
}

// PeerStats reports the node's connectivity: connected uplinks (as of
// the latest sync round), connected inbound sessions, and the size of
// the peer book (static + learned). Safe to call from any goroutine —
// progress displays consume it from event loops while the driving
// goroutine syncs.
func (m *Mesh) PeerStats() (uplinks, inbound, known int) {
	uplinks = int(atomic.LoadInt64(&m.pubUplinks))
	_, _, inbound = m.hub.RemoteStats()
	m.mu.Lock()
	known = len(m.known)
	m.mu.Unlock()
	return uplinks, inbound, known
}

// RemoteExecs sums the executions reported by peers over inbound sessions
// (absolute figures, surviving disconnects) — the node's window into work
// it did not do itself.
func (m *Mesh) RemoteExecs() int {
	execs, _, _ := m.hub.RemoteStats()
	return execs
}

// Traffic returns the cumulative bytes this node's uplinks have sent and
// received in sync frames (inbound sessions are accounted by their
// dialer's Traffic).
func (m *Mesh) Traffic() (tx, rx int) {
	tx, rx = m.closedTx, m.closedRx
	for _, u := range m.uplinks {
		t, r := u.leaf.Traffic()
		tx += t
		rx += r
	}
	return tx, rx
}

// Close tears the node down: every uplink is closed (unregistering its
// journal consumers) and the accept loop stops. The fleet and everything
// already merged stay intact — a mesh with a closed node keeps converging
// over its remaining links, and a replacement node bootstraps back in from
// any live peer address.
func (m *Mesh) Close() error {
	for addr, u := range m.uplinks {
		m.dropUplink(addr, u)
	}
	m.publishUplinks()
	return m.hub.Close()
}
