package fleetnet

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/datamodel"
	"repro/internal/mem"
	"repro/internal/sandbox"
	"repro/internal/targets"

	_ "repro/internal/targets/modbus"
)

// newLeafFleet builds a 1-worker fleet fuzzing RNG stream `stream` of the
// campaign seed — the distributed mirror of worker `stream` in a local
// multi-worker fleet.
func newLeafFleet(t *testing.T, seed uint64, stream int) (*core.Fleet, targets.Target) {
	t.Helper()
	tgt, err := targets.New("libmodbus")
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFleet(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     seed,
	}, core.ParallelConfig{Workers: 1, SeedStream: stream})
	if err != nil {
		t.Fatal(err)
	}
	return f, tgt
}

// newLocalFleet builds the single-process control: a 2-worker fleet over
// the same campaign seed.
func newLocalFleet(t *testing.T, seed uint64) *core.Fleet {
	t.Helper()
	tgt, err := targets.New("libmodbus")
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFleet(core.Config{
		Models:   tgt.Models(),
		Target:   tgt,
		Strategy: core.StrategyPeachStar,
		Seed:     seed,
	}, core.ParallelConfig{
		Workers: 2,
		NewTarget: func() sandbox.Target {
			t2, err := targets.New("libmodbus")
			if err != nil {
				panic(err)
			}
			return t2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func startHub(t *testing.T, state *core.SyncState, models []*datamodel.Model) *Hub {
	t.Helper()
	hub, err := NewHub(HubConfig{State: state, Target: "libmodbus", Models: models, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hub.Close() })
	return hub
}

func newTestLeaf(t *testing.T, fleet *core.Fleet, tgt targets.Target, addr, id string) *Leaf {
	t.Helper()
	leaf, err := NewLeaf(LeafConfig{
		Fleet:  fleet,
		Addr:   addr,
		Target: "libmodbus",
		Models: tgt.Models(),
		NodeID: id,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leaf.Close() })
	return leaf
}

// TestLoopbackRealTargetSettles runs the hub + two leaves over the real
// libmodbus target and checks the settlement invariant the protocol does
// guarantee on a big target: after a final sync round, hub and both leaves
// agree on one union edge count, and it is no smaller than what either
// leaf found alone. (Exact equality with a single-process run is asserted
// on the saturable conformance target — see convergence_test.go.)
func TestLoopbackRealTargetSettles(t *testing.T) {
	const budget = 40000
	state := core.NewSyncState(0)
	fleetA, tgtA := newLeafFleet(t, 99, 0)
	fleetB, tgtB := newLeafFleet(t, 99, 1)
	hub := startHub(t, state, tgtA.Models())
	leafA := newTestLeaf(t, fleetA, tgtA, hub.Addr(), "leaf-a")
	leafB := newTestLeaf(t, fleetB, tgtB, hub.Addr(), "leaf-b")

	var wg sync.WaitGroup
	for _, l := range []*Leaf{leafA, leafB} {
		wg.Add(1)
		go func(l *Leaf) {
			defer wg.Done()
			if err := l.Run(budget/2, 1024); err != nil {
				t.Errorf("%v", err)
			}
		}(l)
	}
	wg.Wait()
	for _, l := range []*Leaf{leafA, leafB} {
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	hubEdges := state.Edges()
	sa, sb := fleetA.Stats(), fleetB.Stats()
	if sa.Edges != hubEdges || sb.Edges != hubEdges {
		t.Fatalf("fleet did not settle: hub %d, leaf-a %d, leaf-b %d edges", hubEdges, sa.Edges, sb.Edges)
	}
	execs, _, connected := hub.RemoteStats()
	if execs < budget {
		t.Fatalf("hub heard of %d remote execs, want >= %d", execs, budget)
	}
	if connected != 2 {
		t.Fatalf("hub reports %d connected leaves, want 2", connected)
	}
	if _, edges, nodes, ok := leafA.FleetStats(); !ok || edges != hubEdges || nodes != 2 {
		t.Fatalf("leaf fleet stats = (%d edges, %d leaves, ok=%v), want (%d, 2, true)", edges, nodes, ok, hubEdges)
	}
}

// TestLeafReconnectResumes drops the client side of the session mid-
// campaign and checks the next sync redials, resumes the journal cursor,
// and loses nothing.
func TestLeafReconnectResumes(t *testing.T) {
	state := core.NewSyncState(0)
	fleet, tgt := newLeafFleet(t, 7, 0)
	hub := startHub(t, state, tgt.Models())
	leaf := newTestLeaf(t, fleet, tgt, hub.Addr(), "leaf-r")

	fleet.Run(4000)
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	if !leaf.Connected() {
		t.Fatal("leaf should be connected after a successful sync")
	}
	edgesBefore := state.Edges()
	cursorBefore := leaf.session.remoteCursor

	leaf.Close() // simulated connection loss
	fleet.Run(fleet.Execs() + 4000)
	if err := leaf.Sync(); err != nil {
		t.Fatalf("sync after reconnect: %v", err)
	}
	if leaf.session.remoteCursor < cursorBefore {
		t.Fatalf("hub cursor went backwards across reconnect: %d -> %d", cursorBefore, leaf.session.remoteCursor)
	}
	if state.Edges() < edgesBefore {
		t.Fatalf("hub edges shrank across reconnect: %d -> %d", edgesBefore, state.Edges())
	}
	if got, want := state.Edges(), fleet.Stats().Edges; got != want {
		t.Fatalf("hub edges = %d, leaf edges = %d after resync", got, want)
	}
}

// TestHubRestartOnSameState restarts the hub process-equivalent (same
// shared state, same address) and checks a leaf session survives via
// reconnect: the leaf's resume cursor outruns the new hub's fresh
// connection state, which must degrade to a full replay, not an error.
func TestHubRestartOnSameState(t *testing.T) {
	state := core.NewSyncState(0)
	fleet, tgt := newLeafFleet(t, 11, 0)
	hub := startHub(t, state, tgt.Models())
	addr := hub.Addr()
	leaf := newTestLeaf(t, fleet, tgt, addr, "leaf-h")

	fleet.Run(4000)
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	hub.Close()

	hub2, err := NewHub(HubConfig{State: state, Target: "libmodbus", Models: tgt.Models(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub2.ListenAndServe(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer hub2.Close()

	fleet.Run(fleet.Execs() + 4000)
	// First sync after the hub vanished fails (dead connection detected);
	// the one after reconnects against the restarted hub.
	var synced bool
	for attempt := 0; attempt < 3 && !synced; attempt++ {
		synced = leaf.Sync() == nil
	}
	if !synced {
		t.Fatal("leaf failed to resync with the restarted hub")
	}
	if got, want := state.Edges(), fleet.Stats().Edges; got != want {
		t.Fatalf("restarted hub edges = %d, leaf edges = %d", got, want)
	}
}

// TestHandshakeRejectsMismatchedCampaigns: a leaf fuzzing another target,
// or the same target with different data models, must be refused with a
// reason, not silently merged.
func TestHandshakeRejectsMismatchedCampaigns(t *testing.T) {
	state := core.NewSyncState(0)
	fleet, tgt := newLeafFleet(t, 1, 0)
	hub := startHub(t, state, tgt.Models())

	wrongTarget, err := NewLeaf(LeafConfig{
		Fleet: fleet, Addr: hub.Addr(), Target: "IEC104", Models: tgt.Models(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongTarget.Sync(); err == nil {
		t.Fatal("hub accepted a leaf fuzzing a different target")
	}

	altModels := []*datamodel.Model{{Name: "bogus", Fields: []*datamodel.Chunk{datamodel.Num("x", 1, 0)}}}
	wrongModels, err := NewLeaf(LeafConfig{
		Fleet: fleet, Addr: hub.Addr(), Target: "libmodbus", Models: altModels,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wrongModels.Sync(); err == nil {
		t.Fatal("hub accepted a leaf with mismatched data models")
	}
}

// TestVersionNegotiationRule pins the min-of-maxima rule.
func TestVersionNegotiationRule(t *testing.T) {
	if _, err := negotiate(0); err == nil {
		t.Fatal("protocol 0 must be refused")
	}
	if v, err := negotiate(ProtocolVersion); err != nil || v != ProtocolVersion {
		t.Fatalf("negotiate(current) = %d, %v", v, err)
	}
	// A future leaf advertising a higher version is served at ours.
	if v, err := negotiate(ProtocolVersion + 7); err != nil || v != ProtocolVersion {
		t.Fatalf("negotiate(future) = %d, %v", v, err)
	}
}

// TestCrashRecordsPropagateAcrossFleet: a fault known to one leaf must
// reach the hub bank and the other leaf, deduplicated, surviving resends.
func TestCrashRecordsPropagateAcrossFleet(t *testing.T) {
	state := core.NewSyncState(0)
	fleetA, tgtA := newLeafFleet(t, 3, 0)
	fleetB, tgtB := newLeafFleet(t, 3, 1)
	hub := startHub(t, state, tgtA.Models())
	leafA := newTestLeaf(t, fleetA, tgtA, hub.Addr(), "leaf-a")
	leafB := newTestLeaf(t, fleetB, tgtB, hub.Addr(), "leaf-b")

	// Plant a fault in leaf A's shared state, as a worker sync would.
	rec := &crash.Record{Kind: mem.SEGV, Site: "modbus.test.site", Example: []byte{1, 2}, Count: 3, FirstExec: 17, PathSig: 99}
	fleetA.State().Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, _ *corpus.Corpus, b *crash.Bank) error {
		b.Absorb(rec)
		return nil
	}))

	fleetA.Run(512)
	fleetB.Run(512)
	if err := leafA.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := leafB.Sync(); err != nil {
		t.Fatal(err)
	}
	found := func(recs []*crash.Record) bool {
		for _, r := range recs {
			if r.Site == "modbus.test.site" && r.Count == 3 && r.FirstExec == 17 {
				return true
			}
		}
		return false
	}
	if !found(state.CrashRecords()) {
		t.Fatal("hub bank missing the leaf's fault")
	}
	if !found(fleetB.State().CrashRecords()) {
		t.Fatal("second leaf missing the relayed fault")
	}
	// Resend round (reconnect simulation): nothing may double.
	leafA.Close()
	if err := leafA.Sync(); err != nil {
		t.Fatal(err)
	}
	planted := 0
	for _, r := range state.CrashRecords() {
		if r.Site == "modbus.test.site" {
			planted++
			if r.Count != 3 {
				t.Fatalf("fault count inflated to %d after resend", r.Count)
			}
		}
	}
	// Exactly one instance of the planted fault; the short libmodbus runs
	// may legitimately contribute further records of their own.
	if planted != 1 {
		t.Fatalf("hub bank has %d copies of the planted fault, want 1", planted)
	}
}

// TestHubCompactsSharedJournal: with every leaf's cursor advanced, the hub
// journal must not retain consumed prefixes.
func TestHubCompactsSharedJournal(t *testing.T) {
	state := core.NewSyncState(0)
	fleet, tgt := newLeafFleet(t, 5, 0)
	hub := startHub(t, state, tgt.Models())
	leaf := newTestLeaf(t, fleet, tgt, hub.Addr(), "leaf-c")

	fleet.Run(6000)
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Sync(); err != nil { // second window advances past round one's tail
		t.Fatal(err)
	}
	var base, length int
	state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		base, length = corp.JournalBase(), corp.JournalLen()
		return nil
	}))
	if base == 0 && length > 0 {
		t.Fatalf("hub journal never compacted: base %d, len %d", base, length)
	}
}

// TestHubRestartWithLostState is the README's hardest failure promise: a
// hub that restarts with a FRESH SyncState (everything lost) must serve a
// reconnecting leaf whose saved cursor now points past the end of the new
// hub's empty journal — degrading to a full replay, never crashing — and
// the fleet must re-converge.
func TestHubRestartWithLostState(t *testing.T) {
	fleet, tgt := newLeafFleet(t, 13, 0)
	hub := startHub(t, core.NewSyncState(0), tgt.Models())
	addr := hub.Addr()
	leaf := newTestLeaf(t, fleet, tgt, addr, "leaf-lost")

	fleet.Run(6000)
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	if leaf.session.remoteCursor == 0 {
		t.Skip("campaign pushed no puzzles; cursor overrun not exercised")
	}
	hub.Close()

	// Restart with lost state: fresh SyncState, empty journal.
	freshState := core.NewSyncState(0)
	hub2, err := NewHub(HubConfig{State: freshState, Target: "libmodbus", Models: tgt.Models(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub2.ListenAndServe(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer hub2.Close()

	fleet.Run(fleet.Execs() + 2000)
	var synced bool
	for attempt := 0; attempt < 3 && !synced; attempt++ {
		synced = leaf.Sync() == nil
	}
	if !synced {
		t.Fatal("leaf failed to resync with the state-lost hub")
	}
	// One more window: the leaf's stale cursor has been re-issued by the
	// new hub, and the fresh hub must have received the full replay.
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, want := freshState.Edges(), fleet.Stats().Edges; got != want {
		t.Fatalf("state-lost hub re-converged to %d edges, leaf has %d", got, want)
	}
}

// TestClosedLeafDoesNotPinCompaction: after Close, a detached uplink must
// not block the fleet's shared-journal compaction while the campaign keeps
// fuzzing; a revived leaf re-registers and still converges.
func TestClosedLeafDoesNotPinCompaction(t *testing.T) {
	state := core.NewSyncState(0)
	fleet, tgt := newLeafFleet(t, 17, 0)
	hub := startHub(t, state, tgt.Models())
	leaf := newTestLeaf(t, fleet, tgt, hub.Addr(), "leaf-pin")

	fleet.Run(3000)
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	leaf.Close()

	// Keep fuzzing detached; worker syncs keep feeding the shared journal.
	fleet.Run(fleet.Execs() + 5000)
	fleet.SyncAll()
	var base, length int
	fleet.State().Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		base, length = corp.JournalBase(), corp.JournalLen()
		return nil
	}))
	if base == 0 && length > 0 {
		t.Fatalf("closed uplink pinned the journal: base %d, len %d", base, length)
	}

	// Revival: the leaf re-registers (full replay if compacted past) and
	// the hub still converges to the fleet's state.
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, want := state.Edges(), fleet.Stats().Edges; got != want {
		t.Fatalf("revived leaf: hub at %d edges, fleet at %d", got, want)
	}
}
