package fleetnet

import (
	"fmt"
	"net"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/datamodel"
)

// LeafConfig parameterizes a Leaf.
type LeafConfig struct {
	// Fleet is the local campaign this leaf contributes; its shared state
	// is what gets exchanged with the hub.
	Fleet *core.Fleet
	// Addr is the hub's host:port.
	Addr string
	// Target and Models identify the campaign; they must match the hub's
	// (verified by the handshake digest).
	Target string
	Models []*datamodel.Model
	// NodeID names this leaf in the hub's per-leaf stats. Defaults to
	// hostname/pid/sequence, which is stable for the leaf's lifetime and
	// distinct for multiple leaves in one process — a restarted leaf
	// process is a new leaf.
	NodeID string
	// Timeout bounds each frame read/write (0 = 30s).
	Timeout time.Duration
	// Logf receives connection lifecycle messages (nil = no logging).
	Logf func(format string, args ...any)
}

// Leaf connects one local Fleet to a hub. All methods must be called from
// the fleet's driving goroutine (a Leaf adds networking to the campaign
// loop, not concurrency). Disconnects are tolerated: the leaf keeps
// fuzzing, and the next Sync redials and resumes — its cursor into the hub
// journal survives locally, and everything it re-pushes merges
// idempotently on the hub.
type Leaf struct {
	cfg    LeafConfig
	state  *core.SyncState
	digest uint64

	conn net.Conn
	// shadow mirrors the coverage the hub is known to have (what this
	// leaf pushed plus what the hub sent); push deltas are computed
	// against it. Reset on reconnect — the replacement connection's hub
	// may be a restarted process that lost this session's context.
	shadow *coverage.Virgin
	// pushCursor is this leaf's read position in its own shared journal
	// (what has been pushed to the hub); pushPeer registers the uplink as
	// a journal consumer so compaction waits for it.
	pushCursor int
	pushPeer   int
	// hubCursor is the read position in the hub's journal — the resumable
	// cursor: it survives reconnects and hub restarts (a hub that lost or
	// compacted the tail behind it serves a full replay instead).
	hubCursor int
	// sentCrash maps fault keys to the highest Count the hub is known to
	// hold; a record is (re-)sent when the local count grows past it.
	sentCrash map[string]int

	// Fleet-wide figures from the latest ack, for progress displays.
	fleetExecs, fleetEdges, leaves int
	synced                         bool

	// Cumulative wire traffic (frame payloads + headers), for the sync-cost
	// benchmark.
	txBytes, rxBytes int
}

// NewLeaf validates the configuration and registers the uplink with the
// fleet's shared corpus. No connection is made until the first Sync.
func NewLeaf(cfg LeafConfig) (*Leaf, error) {
	if cfg.Fleet == nil {
		return nil, fmt.Errorf("fleetnet: LeafConfig.Fleet is required")
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("fleetnet: LeafConfig.Addr is required")
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("fleetnet: LeafConfig.Target is required")
	}
	if cfg.NodeID == "" {
		host, _ := os.Hostname()
		cfg.NodeID = fmt.Sprintf("%s/%d/%d", host, os.Getpid(), atomic.AddUint32(&leafSeq, 1))
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	l := &Leaf{
		cfg:       cfg,
		state:     cfg.Fleet.State(),
		digest:    ModelDigest(cfg.Target, cfg.Models),
		shadow:    coverage.NewVirgin(),
		sentCrash: make(map[string]int),
		pushPeer:  -1,
	}
	l.state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		l.pushPeer = corp.RegisterPeer(0)
		return nil
	}))
	return l, nil
}

// Sync runs one merge window with the hub: flush the local workers into the
// shared state, exchange deltas over the wire, fold the hub's reply back,
// and flush again so the workers see the remote material immediately. On
// any failure the session is reset (the next Sync redials and re-pushes
// from scratch; all exchanged state merges idempotently) and the error is
// returned for logging — a leaf should keep fuzzing regardless.
func (l *Leaf) Sync() error {
	l.cfg.Fleet.SyncAll()
	if l.conn == nil {
		if err := l.dial(); err != nil {
			return err
		}
	}

	// A Close releases the uplink's journal registration so a dead leaf
	// never pins compaction; a Sync after Close is a revival, so
	// re-register at the saved cursor (clamped into the live journal).
	if l.pushPeer < 0 {
		l.state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
			l.pushPeer = corp.RegisterPeer(l.pushCursor)
			return nil
		}))
	}

	// Build the push under the state lock, but keep network I/O outside it.
	req := &syncFrame{
		execs:     uint64(l.cfg.Fleet.Execs()),
		hubCursor: uint64(l.hubCursor),
	}
	bank := l.cfg.Fleet.Crashes()
	req.hangs = uint64(bank.Hangs())
	for _, r := range bank.Records() {
		key := crash.RecordKey(r)
		if sent, ok := l.sentCrash[key]; !ok || r.Count > sent {
			l.sentCrash[key] = r.Count
			req.crashes = append(req.crashes, r)
		}
	}
	l.state.Exchange(core.ExchangeFunc(func(virgin *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		req.virginDelta = coverage.AppendVirginDelta(nil, virgin, l.shadow)
		l.pushCursor = corp.ReadJournal(l.pushCursor, func(p corpus.Puzzle) {
			req.puzzles = append(req.puzzles, p)
		})
		corp.AdvancePeer(l.pushPeer, l.pushCursor)
		corp.CompactJournal()
		return nil
	}))

	l.conn.SetDeadline(time.Now().Add(l.cfg.Timeout))
	push := req.encode(nil)
	l.txBytes += len(push) + 5 // frame header + type byte
	if err := writeFrame(l.conn, frameSync, push); err != nil {
		l.reset()
		return fmt.Errorf("fleetnet: push to hub: %w", err)
	}
	typ, payload, err := readFrame(l.conn)
	if err != nil {
		l.reset()
		return fmt.Errorf("fleetnet: read hub reply: %w", err)
	}
	l.rxBytes += len(payload) + 5
	if typ == frameError {
		r := &wireReader{buf: payload}
		msg := r.str()
		l.reset()
		return fmt.Errorf("fleetnet: hub rejected sync: %s", msg)
	}
	if typ != frameSyncAck {
		l.reset()
		return fmt.Errorf("fleetnet: expected syncAck, got frame type %d", typ)
	}
	ack, err := decodeSyncAck(payload)
	if err != nil {
		l.reset()
		return err
	}

	applyErr := l.state.Exchange(core.ExchangeFunc(func(virgin *coverage.Virgin, corp *corpus.Corpus, crashes *crash.Bank) error {
		if _, err := virgin.ApplyDelta(ack.virginDelta); err != nil {
			return err
		}
		// The hub's reply is coverage this leaf now has; folding it into
		// the shadow keeps the next push delta free of echoes.
		if _, err := l.shadow.ApplyDelta(ack.virginDelta); err != nil {
			return err
		}
		preLen := corp.JournalLen()
		for _, p := range ack.puzzles {
			corp.Absorb(p)
		}
		// Puzzles the hub just sent are journaled locally for the workers
		// to pull; the uplink must not push them straight back. When
		// nothing else appended since the push was built (the common,
		// single-threaded case), skip the echo outright.
		if l.pushCursor == preLen {
			l.pushCursor = corp.JournalLen()
			corp.AdvancePeer(l.pushPeer, l.pushCursor)
		}
		for _, r := range ack.crashes {
			crashes.Absorb(r)
			if key := crash.RecordKey(r); r.Count > l.sentCrash[key] {
				l.sentCrash[key] = r.Count
			}
		}
		return nil
	}))
	if applyErr != nil {
		l.reset()
		return applyErr
	}
	l.hubCursor = int(ack.newCursor)
	l.fleetExecs, l.fleetEdges, l.leaves = int(ack.fleetExecs), int(ack.fleetEdges), int(ack.leaves)
	l.synced = true

	l.cfg.Fleet.SyncAll()
	return nil
}

// dial connects and handshakes.
func (l *Leaf) dial() error {
	conn, err := net.DialTimeout("tcp", l.cfg.Addr, l.cfg.Timeout)
	if err != nil {
		return fmt.Errorf("fleetnet: dial hub %s: %w", l.cfg.Addr, err)
	}
	hello := &helloFrame{
		version:      ProtocolVersion,
		nodeID:       l.cfg.NodeID,
		target:       l.cfg.Target,
		digest:       l.digest,
		resumeCursor: uint64(l.hubCursor),
	}
	conn.SetDeadline(time.Now().Add(l.cfg.Timeout))
	if err := writeFrame(conn, frameHello, hello.encode(nil)); err != nil {
		conn.Close()
		return fmt.Errorf("fleetnet: send hello: %w", err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("fleetnet: read hello reply: %w", err)
	}
	if typ == frameError {
		r := &wireReader{buf: payload}
		msg := r.str()
		conn.Close()
		return fmt.Errorf("fleetnet: hub refused connection: %s", msg)
	}
	if typ != frameHelloAck {
		conn.Close()
		return fmt.Errorf("fleetnet: expected helloAck, got frame type %d", typ)
	}
	ack, err := decodeHelloAck(payload)
	if err != nil {
		conn.Close()
		return err
	}
	if ack.version < MinProtocolVersion || ack.version > ProtocolVersion {
		conn.Close()
		return fmt.Errorf("fleetnet: hub negotiated unsupported protocol %d (this build speaks %d..%d)",
			ack.version, MinProtocolVersion, ProtocolVersion)
	}
	l.conn = conn
	l.cfg.Logf("fleetnet leaf: connected to hub %q at %s (protocol %d)", ack.hubID, l.cfg.Addr, ack.version)
	return nil
}

// reset tears the session down so the next Sync starts fresh. The shadow
// bitmap, push cursor, and sent-crash set rewind to zero — the replacement
// hub connection may not remember this session, so everything is re-pushed
// and merges idempotently. hubCursor deliberately survives: it indexes hub
// state, and the hub downgrades a stale cursor to a full replay by itself.
func (l *Leaf) reset() {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.shadow = coverage.NewVirgin()
	l.pushCursor = 0
	l.sentCrash = make(map[string]int)
}

// Close ends the session and unregisters the uplink from the fleet's
// shared corpus journal, so a permanently detached leaf does not pin
// journal compaction while the campaign keeps fuzzing. The fleet and its
// results are untouched, and a later Sync revives the leaf: it
// re-registers (falling back to a full journal replay if its tail was
// compacted away) and reconnects.
func (l *Leaf) Close() error {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	if l.pushPeer >= 0 {
		id := l.pushPeer
		l.pushPeer = -1
		l.state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
			corp.DropPeer(id)
			return nil
		}))
	}
	return nil
}

// Connected reports whether a session is currently established.
func (l *Leaf) Connected() bool { return l.conn != nil }

// Traffic returns the cumulative bytes this leaf has sent to and received
// from the hub in sync frames (headers included, handshakes excluded) —
// the measurement behind `make bench-fleetnet`.
func (l *Leaf) Traffic() (tx, rx int) { return l.txBytes, l.rxBytes }

// FleetStats returns the fleet-wide figures from the latest ack — total
// executions the hub knows of, distinct edges in the hub's union map, and
// connected leaves — and whether any ack has arrived yet.
func (l *Leaf) FleetStats() (execs, edges, leaves int, ok bool) {
	return l.fleetExecs, l.fleetEdges, l.leaves, l.synced
}

// Run drives the local fleet to execBudget total executions, syncing with
// the hub every syncEvery executions (0 = every 4 merge windows' worth,
// 1024). Sync failures are logged and fuzzing continues; the budget is
// always spent. The final state is flushed with a last Sync whose error, if
// any, is returned (the campaign results remain locally intact).
func (l *Leaf) Run(execBudget, syncEvery int) error {
	if syncEvery <= 0 {
		syncEvery = 4 * core.DefaultMergeEvery
	}
	fleet := l.cfg.Fleet
	for fleet.Execs() < execBudget {
		window := fleet.Execs() + syncEvery
		if window > execBudget {
			window = execBudget
		}
		fleet.Run(window)
		if err := l.Sync(); err != nil {
			l.cfg.Logf("fleetnet leaf: sync: %v (continuing locally)", err)
		}
	}
	return l.Sync()
}

// RunUntil is Run with a wall-clock deadline instead of an exec budget:
// the same syncEvery execution cadence between hub syncs, stopping within
// one merge-window slice (≤256 execs) of the deadline.
func (l *Leaf) RunUntil(deadline time.Time, syncEvery int) error {
	if syncEvery <= 0 {
		syncEvery = 4 * core.DefaultMergeEvery
	}
	fleet := l.cfg.Fleet
	for time.Now().Before(deadline) {
		window := fleet.Execs() + syncEvery
		// Advance in merge-window slices so the deadline is re-checked
		// every ≤256 execs rather than once per sync window.
		for fleet.Execs() < window && time.Now().Before(deadline) {
			slice := fleet.Execs() + core.DefaultMergeEvery
			if slice > window {
				slice = window
			}
			fleet.Run(slice)
		}
		if err := l.Sync(); err != nil {
			l.cfg.Logf("fleetnet leaf: sync: %v (continuing locally)", err)
		}
	}
	return l.Sync()
}

// leafSeq disambiguates default node ids for multiple leaves in one
// process (the loopback examples and tests).
var leafSeq uint32
