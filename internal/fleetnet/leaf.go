package fleetnet

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/datamodel"
)

// LeafConfig parameterizes a Leaf.
type LeafConfig struct {
	// Fleet is the local campaign this leaf contributes; its shared state
	// is what gets exchanged with the remote node.
	Fleet *core.Fleet
	// Addr is the remote node's host:port.
	Addr string
	// Target and Models identify the campaign; they must match the
	// remote's (verified by the handshake digest).
	Target string
	Models []*datamodel.Model
	// NodeID names this node in the remote's per-peer stats. Defaults to
	// hostname/pid/sequence, which is stable for the leaf's lifetime and
	// distinct for multiple leaves in one process — a restarted leaf
	// process is a new leaf.
	NodeID string
	// Timeout bounds each frame read/write (0 = 30s).
	Timeout time.Duration
	// DialTimeout bounds the TCP connect of a (re)dial (0 = Timeout). The
	// mesh sets a tight value here so one blackholed peer cannot stall a
	// node's whole sync round for a full frame timeout.
	DialTimeout time.Duration
	// Logf receives connection lifecycle messages (nil = no logging).
	Logf func(format string, args ...any)
	// Advertise is the address other nodes can dial this node's accept
	// loop at, announced in the handshake ("" for a plain leaf without
	// one). Set by the mesh for its uplinks.
	Advertise string
	// KnownPeers, when non-nil, supplies the peer addresses announced in
	// the hello — the dialer half of the mesh peer exchange.
	KnownPeers func() []string
	// LearnPeer, when non-nil, receives every peer address the remote
	// shares in its helloAck.
	LearnPeer func(addr string)
}

// Leaf connects one local Fleet to a remote node (a hub, or in mesh mode
// any peer's accept loop — a mesh uplink is a Leaf). All methods must be
// called from the fleet's driving goroutine (a Leaf adds networking to the
// campaign loop, not concurrency). Disconnects are tolerated: the leaf
// keeps fuzzing, and the next Sync redials and resumes — its cursor into
// the remote journal survives locally, and everything it re-pushes merges
// idempotently on the remote.
type Leaf struct {
	cfg    LeafConfig
	state  *core.SyncState
	digest uint64

	conn net.Conn
	// session is the per-peer sync state for this uplink: the shadow of
	// what the remote holds, the cursors into both journals, and the
	// crash watermarks. Reset on reconnect (remoteCursor excepted) — the
	// replacement connection's far side may be a restarted process that
	// lost this session's context.
	session *peerSession

	// Fleet-wide figures from the latest ack, for progress displays.
	// Guarded by statsMu: FleetStats is documented safe to call from a
	// display goroutine while the driving goroutine syncs.
	statsMu                        sync.Mutex
	fleetExecs, fleetEdges, leaves int
	synced                         bool

	// Cumulative wire traffic (frame payloads + headers), for the sync-cost
	// benchmark.
	txBytes, rxBytes int
}

// NewLeaf validates the configuration and registers the uplink with the
// fleet's shared corpus. No connection is made until the first Sync.
func NewLeaf(cfg LeafConfig) (*Leaf, error) {
	if cfg.Fleet == nil {
		return nil, fmt.Errorf("fleetnet: LeafConfig.Fleet is required")
	}
	if cfg.Addr == "" {
		return nil, fmt.Errorf("fleetnet: LeafConfig.Addr is required")
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("fleetnet: LeafConfig.Target is required")
	}
	if cfg.NodeID == "" {
		host, _ := os.Hostname()
		cfg.NodeID = fmt.Sprintf("%s/%d/%d", host, os.Getpid(), atomic.AddUint32(&leafSeq, 1))
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = cfg.Timeout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	l := &Leaf{
		cfg:     cfg,
		state:   cfg.Fleet.State(),
		digest:  ModelDigest(cfg.Target, cfg.Models),
		session: newPeerSession(),
	}
	l.state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		l.session.register(corp, 0)
		return nil
	}))
	return l, nil
}

// Sync runs one merge window with the remote: flush the local workers into
// the shared state, exchange deltas over the wire, fold the reply back,
// and flush again so the workers see the remote material immediately. On
// any failure the session is reset (the next Sync redials and re-pushes
// from scratch; all exchanged state merges idempotently) and the error is
// returned for logging — a leaf should keep fuzzing regardless.
func (l *Leaf) Sync() error { return l.SyncContext(context.Background()) }

// SyncContext is Sync under a context: an already-canceled context skips
// the exchange entirely, and a cancellation that lands mid-window
// interrupts the dial and any blocked frame I/O promptly (the session
// resets, exactly like a transport failure) instead of waiting out the
// frame timeout — what makes session teardown prompt for the public
// Run API.
func (l *Leaf) SyncContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	l.cfg.Fleet.SyncAll()
	if l.conn == nil {
		if err := l.dial(ctx); err != nil {
			return err
		}
	}
	unwatch := watchContext(ctx, l.conn)
	defer unwatch()
	req := l.buildPush()
	ack, err := l.roundTrip(ctx, req)
	if err != nil {
		l.reset()
		return err
	}
	if err := l.applyAck(ack); err != nil {
		l.reset()
		return err
	}
	l.statsMu.Lock()
	l.fleetExecs, l.fleetEdges, l.leaves = int(ack.fleetExecs), int(ack.fleetEdges), int(ack.leaves)
	l.synced = true
	l.statsMu.Unlock()

	l.cfg.Fleet.SyncAll()
	return nil
}

// buildPush assembles one push frame: everything the remote is not known
// to hold. The deltas are built under the state lock; network I/O stays
// outside it.
func (l *Leaf) buildPush() *syncFrame {
	req := &syncFrame{
		execs:  uint64(l.cfg.Fleet.Execs()),
		cursor: uint64(l.session.remoteCursor),
	}
	bank := l.cfg.Fleet.Crashes()
	req.hangs = uint64(bank.Hangs())
	req.crashes = l.session.crashDelta(bank.Records())
	l.state.Exchange(core.ExchangeFunc(func(virgin *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		// A Close released the journal registration so a dead leaf never
		// pins compaction; a Sync after Close is a revival, so re-register
		// at the saved cursor (clamped into the live journal).
		l.session.register(corp, l.session.localCursor)
		req.virginDelta, req.puzzles = l.session.sendDelta(virgin, corp)
		corp.CompactJournal()
		return nil
	}))
	return req
}

// roundTrip ships one push and reads the reply, accounting wire traffic.
func (l *Leaf) roundTrip(ctx context.Context, req *syncFrame) (*syncAckFrame, error) {
	l.conn.SetDeadline(time.Now().Add(l.cfg.Timeout))
	// The deadline store above can overwrite the context watcher's yank if
	// the cancellation landed while the push was being built; re-checking
	// after the store closes that window (a cancel after this check finds
	// the fresh deadline in place and yanks it normally).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	push := req.encode(nil)
	l.txBytes += len(push) + 5 // frame header + type byte
	if err := writeFrame(l.conn, frameSync, push); err != nil {
		return nil, fmt.Errorf("fleetnet: push to %s: %w", l.cfg.Addr, err)
	}
	typ, payload, err := readFrame(l.conn)
	if err != nil {
		return nil, fmt.Errorf("fleetnet: read reply from %s: %w", l.cfg.Addr, err)
	}
	l.rxBytes += len(payload) + 5
	if typ == frameError {
		r := &wireReader{buf: payload}
		return nil, fmt.Errorf("fleetnet: peer rejected sync: %s", r.str())
	}
	if typ != frameSyncAck {
		return nil, fmt.Errorf("fleetnet: expected syncAck, got frame type %d", typ)
	}
	return decodeSyncAck(payload)
}

// applyAck folds one reply into the shared state under the state lock and
// advances the remote-journal cursor.
func (l *Leaf) applyAck(ack *syncAckFrame) error {
	err := l.state.Exchange(core.ExchangeFunc(func(virgin *coverage.Virgin, corp *corpus.Corpus, crashes *crash.Bank) error {
		return l.session.absorbDelta(ack.virginDelta, ack.puzzles, ack.crashes, virgin, corp, crashes)
	}))
	if err != nil {
		return err
	}
	l.session.remoteCursor = int(ack.newCursor)
	return nil
}

// dial connects and handshakes. The context interrupts both the TCP
// connect and the handshake frames.
func (l *Leaf) dial(ctx context.Context) error {
	d := net.Dialer{Timeout: l.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", l.cfg.Addr)
	if err != nil {
		return fmt.Errorf("fleetnet: dial %s: %w", l.cfg.Addr, err)
	}
	unwatch := watchContext(ctx, conn)
	defer unwatch()
	hello := &helloFrame{
		version:      ProtocolVersion,
		nodeID:       l.cfg.NodeID,
		target:       l.cfg.Target,
		digest:       l.digest,
		resumeCursor: uint64(l.session.remoteCursor),
		advertise:    l.cfg.Advertise,
	}
	if l.cfg.KnownPeers != nil {
		hello.peers = l.cfg.KnownPeers()
	}
	conn.SetDeadline(time.Now().Add(l.cfg.Timeout))
	// Same deadline-vs-cancel window as roundTrip: the store above could
	// have buried a cancellation that landed while hello was assembled.
	if err := ctx.Err(); err != nil {
		conn.Close()
		return err
	}
	if err := writeFrame(conn, frameHello, hello.encode(nil)); err != nil {
		conn.Close()
		return fmt.Errorf("fleetnet: send hello: %w", err)
	}
	typ, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("fleetnet: read hello reply: %w", err)
	}
	if typ == frameError {
		r := &wireReader{buf: payload}
		msg := r.str()
		conn.Close()
		return fmt.Errorf("fleetnet: peer refused connection: %s", msg)
	}
	if typ != frameHelloAck {
		conn.Close()
		return fmt.Errorf("fleetnet: expected helloAck, got frame type %d", typ)
	}
	ack, err := decodeHelloAck(payload)
	if err != nil {
		conn.Close()
		return err
	}
	if ack.version < MinProtocolVersion || ack.version > ProtocolVersion {
		conn.Close()
		return fmt.Errorf("fleetnet: peer negotiated unsupported protocol %d (this build speaks %d..%d)",
			ack.version, MinProtocolVersion, ProtocolVersion)
	}
	if l.cfg.LearnPeer != nil {
		for _, a := range ack.peers {
			l.cfg.LearnPeer(a)
		}
	}
	l.conn = conn
	l.cfg.Logf("fleetnet leaf: connected to %q at %s (protocol %d)", ack.hubID, l.cfg.Addr, ack.version)
	return nil
}

// reset tears the session down so the next Sync starts fresh. The shadow
// bitmap, local cursor, and sent-crash set rewind to zero — the replacement
// connection's far side may not remember this session, so everything is
// re-pushed and merges idempotently. The remote cursor deliberately
// survives: it indexes remote state, and the remote downgrades a stale
// cursor to a full replay by itself.
func (l *Leaf) reset() {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.session.resetWire()
}

// Close ends the session and unregisters the uplink from the fleet's
// shared corpus journal, so a permanently detached leaf does not pin
// journal compaction while the campaign keeps fuzzing. The fleet and its
// results are untouched, and a later Sync revives the leaf: it
// re-registers (falling back to a full journal replay if its tail was
// compacted away) and reconnects.
func (l *Leaf) Close() error {
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	if l.session.journalID >= 0 {
		l.state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
			l.session.unregister(corp)
			return nil
		}))
	}
	return nil
}

// Addr returns the remote address this leaf dials.
func (l *Leaf) Addr() string { return l.cfg.Addr }

// Connected reports whether a session is currently established.
func (l *Leaf) Connected() bool { return l.conn != nil }

// Traffic returns the cumulative bytes this leaf has sent to and received
// from its remote in sync frames (headers included, handshakes excluded) —
// the measurement behind `make bench-fleetnet`.
func (l *Leaf) Traffic() (tx, rx int) { return l.txBytes, l.rxBytes }

// FleetStats returns the fleet-wide figures from the latest ack — total
// executions the remote knows of, distinct edges in its union map, and
// its connected peers — and whether any ack has arrived yet. Unlike the
// leaf's other methods it is safe to call from any goroutine while the
// driving goroutine syncs (progress displays consume it from event
// loops).
func (l *Leaf) FleetStats() (execs, edges, leaves int, ok bool) {
	l.statsMu.Lock()
	defer l.statsMu.Unlock()
	return l.fleetExecs, l.fleetEdges, l.leaves, l.synced
}

// Run drives the local fleet to execBudget total executions, syncing with
// the remote every syncEvery executions (0 = every 4 merge windows' worth,
// 1024). Sync failures are logged and fuzzing continues; the budget is
// always spent. The final state is flushed with a last Sync whose error, if
// any, is returned (the campaign results remain locally intact).
func (l *Leaf) Run(execBudget, syncEvery int) error {
	if syncEvery <= 0 {
		syncEvery = 4 * core.DefaultMergeEvery
	}
	fleet := l.cfg.Fleet
	for fleet.Execs() < execBudget {
		window := fleet.Execs() + syncEvery
		if window > execBudget {
			window = execBudget
		}
		fleet.Run(window)
		if err := l.Sync(); err != nil {
			l.cfg.Logf("fleetnet leaf: sync: %v (continuing locally)", err)
		}
	}
	return l.Sync()
}

// leafSeq disambiguates default node ids for multiple leaves in one
// process (the loopback examples and tests).
var leafSeq uint32
