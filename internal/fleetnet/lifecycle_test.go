package fleetnet

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
)

// Session-lifecycle regression tests for the bugs found reviewing PR 3:
// the reconnect race on remoteLeaf.connected, the dead resumeCursor wire
// field, and all-or-nothing echo suppression in the uplink.

// connCount is a test-only window into the hub's live connection set.
func (h *Hub) connCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// injectPuzzle plants one puzzle in a shared state's corpus journal, the
// way an inbound session or a worker sync would.
func injectPuzzle(state *core.SyncState, p corpus.Puzzle) {
	state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		corp.Absorb(p)
		return nil
	}))
}

// TestRapidReconnectKeepsConnectedCount pins the reconnect race fix: when
// a node redials before its old connection is reaped, the stale handler's
// teardown must not mark the live session disconnected — only the session
// currently owning the node id may clear the flag.
func TestRapidReconnectKeepsConnectedCount(t *testing.T) {
	state := core.NewSyncState(0)
	fleet1, tgt1 := newLeafFleet(t, 21, 0)
	fleet2, tgt2 := newLeafFleet(t, 21, 1)
	hub := startHub(t, state, tgt1.Models())

	leaf1 := newTestLeaf(t, fleet1, tgt1, hub.Addr(), "dup")
	if err := leaf1.Sync(); err != nil {
		t.Fatal(err)
	}
	// The same node id redials (a restarted process reusing its id) while
	// the first connection still lingers hub-side.
	leaf2 := newTestLeaf(t, fleet2, tgt2, hub.Addr(), "dup")
	if err := leaf2.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, _, connected := hub.RemoteStats(); connected != 1 {
		t.Fatalf("hub reports %d connected for one node id with two sessions, want 1", connected)
	}

	// The STALE session dies; its teardown must not touch the live one.
	leaf1.Close()
	waitFor(t, "stale connection reap", func() bool { return hub.connCount() == 1 })
	if _, _, connected := hub.RemoteStats(); connected != 1 {
		t.Fatalf("stale teardown disconnected the live session: connected = %d, want 1", connected)
	}
	if err := leaf2.Sync(); err != nil {
		t.Fatalf("live session broken after stale teardown: %v", err)
	}
	if _, _, leaves, ok := leaf2.FleetStats(); !ok || leaves != 1 {
		t.Fatalf("ack leaves = %d (ok=%v), want 1", leaves, ok)
	}

	// The CURRENT session's teardown does clear the flag.
	leaf2.Close()
	waitFor(t, "live connection reap", func() bool { return hub.connCount() == 0 })
	if _, _, connected := hub.RemoteStats(); connected != 0 {
		t.Fatalf("connected = %d after the owning session closed, want 0", connected)
	}
}

// TestResumeCursorPinsCompactionFromHandshake pins the fix for the dead
// resumeCursor wire field: the hub must seed the connection's journal
// registration from it at handshake time, so a resuming peer's unread tail
// is protected from compaction before its first sync — and the first sync
// is an incremental tail, not a full replay.
func TestResumeCursorPinsCompactionFromHandshake(t *testing.T) {
	const puzzleBytes = 1024
	state := core.NewSyncState(0)
	fleetX, tgtX := newLeafFleet(t, 23, 0)
	fleetY, tgtY := newLeafFleet(t, 23, 1)
	hub := startHub(t, state, tgtX.Models())
	leafX := newTestLeaf(t, fleetX, tgtX, hub.Addr(), "leaf-x")
	leafY := newTestLeaf(t, fleetY, tgtY, hub.Addr(), "leaf-y")

	for i := 0; i < 3; i++ {
		injectPuzzle(state, corpus.Puzzle{
			Signature: fmt.Sprintf("early-%d", i),
			Data:      bytes.Repeat([]byte{byte(i)}, puzzleBytes),
			Model:     "m",
		})
	}
	if err := leafX.Sync(); err != nil {
		t.Fatal(err)
	}
	if leafX.session.remoteCursor != 3 {
		t.Fatalf("leaf-x consumed to cursor %d, want 3", leafX.session.remoteCursor)
	}

	// Disconnect and wait for the hub to reap the session (dropping its
	// registration), then grow the journal past the saved cursor.
	leafX.Close()
	waitFor(t, "leaf-x session reap", func() bool { return hub.connCount() == 0 })
	for i := 0; i < 2; i++ {
		injectPuzzle(state, corpus.Puzzle{
			Signature: fmt.Sprintf("late-%d", i),
			Data:      bytes.Repeat([]byte{0x10 + byte(i)}, puzzleBytes),
			Model:     "m",
		})
	}

	// Handshake only — no sync yet. The resume cursor alone must pin
	// compaction at 3 while another peer races ahead and compacts.
	if err := leafX.dial(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := leafY.Sync(); err != nil {
		t.Fatal(err)
	}
	var base int
	state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		base = corp.JournalBase()
		return nil
	}))
	if base > 3 {
		t.Fatalf("journal compacted to base %d past the resuming leaf's cursor 3: handshake did not pin it", base)
	}
	if base == 0 {
		t.Fatalf("journal never compacted (base 0): compaction path not exercised")
	}

	// The resuming leaf's first window must then be the incremental tail
	// (2 late puzzles), not a 5-puzzle full replay.
	_, rx0 := leafX.Traffic()
	if err := leafX.Sync(); err != nil {
		t.Fatal(err)
	}
	_, rx1 := leafX.Traffic()
	if got := rx1 - rx0; got >= 4*puzzleBytes {
		t.Fatalf("resume window received %d bytes — a full replay, not the 2-puzzle tail", got)
	}
	if leafX.session.remoteCursor != 5 {
		t.Fatalf("leaf-x cursor = %d after resume window, want 5", leafX.session.remoteCursor)
	}
}

// TestStaleCursorHealsToIncremental pins the stale-cursor self-heal: a
// dialer resuming with a cursor minted by a previous incarnation of the
// acceptor's state (beyond the live journal end) gets one full replay and
// a CORRECTED cursor back — not its own stale cursor echoed, which would
// degrade every subsequent window to a full replay.
func TestStaleCursorHealsToIncremental(t *testing.T) {
	const puzzleBytes = 1024
	state := core.NewSyncState(0)
	fleet, tgt := newLeafFleet(t, 31, 0)
	hub := startHub(t, state, tgt.Models())
	leaf := newTestLeaf(t, fleet, tgt, hub.Addr(), "leaf-stale")

	for i := 0; i < 3; i++ {
		injectPuzzle(state, corpus.Puzzle{
			Signature: fmt.Sprintf("sig-%d", i),
			Data:      bytes.Repeat([]byte{byte(i)}, puzzleBytes),
			Model:     "m",
		})
	}
	// A cursor saved against a hub incarnation that no longer exists.
	leaf.session.remoteCursor = 500

	// First window: the hub serves the full-replay fallback once...
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := leaf.session.remoteCursor; got != 3 {
		t.Fatalf("cursor after stale-resume window = %d, want healed to 3 (journal end)", got)
	}
	// ...and subsequent windows are incremental again, near the protocol
	// floor — not another 3 KiB replay.
	_, rx0 := leaf.Traffic()
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	_, rx1 := leaf.Traffic()
	if got := rx1 - rx0; got >= puzzleBytes {
		t.Fatalf("window after heal received %d bytes — still replaying instead of incremental", got)
	}
}

// TestNoEchoOfAbsorbedPuzzlesUnderInterleave pins the echo-suppression
// fix: puzzles absorbed from the remote must never be pushed back to it,
// even when concurrent local appends land between building a push and
// applying its ack (the case the old pushCursor==preLen shortcut missed).
func TestNoEchoOfAbsorbedPuzzlesUnderInterleave(t *testing.T) {
	state := core.NewSyncState(0)
	fleet, tgt := newLeafFleet(t, 29, 0)
	hub := startHub(t, state, tgt.Models())
	leaf := newTestLeaf(t, fleet, tgt, hub.Addr(), "leaf-echo")

	big := corpus.Puzzle{Signature: "hub-big", Data: bytes.Repeat([]byte{0xA5}, 4096), Model: "m"}
	injectPuzzle(state, big)

	// One sync window, hand-driven so a local append can interleave while
	// the frames are in flight — in production an inbound mesh session or
	// a worker flush appends to the shared journal exactly there.
	fleet.SyncAll()
	if err := leaf.dial(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := leaf.buildPush()
	local := corpus.Puzzle{Signature: "local-sig", Data: []byte{1, 2, 3, 4}, Model: "m"}
	injectPuzzle(fleet.State(), local)
	ack, err := leaf.roundTrip(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := leaf.applyAck(ack); err != nil {
		t.Fatal(err)
	}
	if _, rx := leaf.Traffic(); rx < len(big.Data) {
		t.Fatalf("window 1 received %d bytes; the big hub puzzle did not arrive", rx)
	}

	// The next ordinary window must push the interleaved local puzzle and
	// nothing of the absorbed hub material.
	tx0, _ := leaf.Traffic()
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	tx1, _ := leaf.Traffic()
	if got := tx1 - tx0; got >= len(big.Data) {
		t.Fatalf("window 2 pushed %d bytes — the absorbed hub puzzle was echoed back", got)
	}
	var sigs []string
	state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		sigs = corp.Signatures()
		return nil
	}))
	found := false
	for _, s := range sigs {
		if s == "local-sig" {
			found = true
		}
	}
	if !found {
		t.Fatalf("interleaved local puzzle never reached the hub (signatures: %v)", sigs)
	}
}
