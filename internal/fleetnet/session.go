package fleetnet

import (
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
)

// peerSession is the per-peer sync bookkeeping one node keeps about one
// remote: everything needed to turn full-state exchange into deltas. The
// protocol is symmetric — a hub connection, a leaf uplink, and both ends of
// a mesh link keep exactly the same three pieces of state — so it lives in
// one struct used by both directions:
//
//   - shadow: the coverage the remote is known to hold (what we sent plus
//     what it sent us); outgoing bitmap deltas are computed against it.
//   - localCursor + journalID: the read position in the *local* shared
//     journal (everything below it has crossed this link) and the
//     registration that pins journal compaction no further than it.
//   - remoteCursor: the resumable read position in the *remote's* journal.
//     A node with several peers holds one per link — the vector of cursors
//     that replaces PR 3's single hubCursor.
//   - sentCrash: per-fault watermarks of the highest Count the remote is
//     known to hold, so crash records are only re-sent when they grow.
//
// All fields are owned by the goroutine driving the link (the hub handler
// or the uplink's driving loop); methods that touch the shared state must
// be called under the SyncState lock (inside an Exchange).
type peerSession struct {
	shadow *coverage.Virgin
	// journalID is this link's RegisterPeer id in the local shared
	// journal; -1 until registered.
	journalID int
	// localCursor is the absolute position in the local journal up to
	// which the remote is caught up.
	localCursor int
	// remoteCursor is the absolute position in the remote's journal this
	// node has consumed — the cursor sent in sync frames. It survives
	// reconnects and session resets: it indexes remote state, and the
	// remote downgrades a stale cursor to a full replay by itself.
	remoteCursor int
	// sentCrash maps fault keys to the highest Count the remote is known
	// to hold.
	sentCrash map[string]int
	// echoSpans are absolute [start,end) spans of the local journal that
	// were absorbed *from* this peer and must never be pushed back to it.
	// A span is recorded only when concurrent appends (other sessions,
	// local workers) landed between localCursor and the absorbed block —
	// otherwise the cursor steps straight over it — and is dropped as soon
	// as the cursor passes it, so the list stays at most one window deep.
	echoSpans [][2]int
}

func newPeerSession() *peerSession {
	return &peerSession{
		shadow:    coverage.NewVirgin(),
		journalID: -1,
		sentCrash: make(map[string]int),
	}
}

// register declares the remote a consumer of the local journal starting at
// cursor (clamped into the live journal by RegisterPeer), so compaction
// never drops entries the link still has to deliver. No-op when already
// registered. Must run under the state lock.
func (s *peerSession) register(corp *corpus.Corpus, cursor int) {
	if s.journalID >= 0 {
		return
	}
	s.journalID = corp.RegisterPeer(cursor)
	if cursor > s.localCursor {
		s.localCursor = cursor
	}
}

// unregister releases the journal registration (link teardown), so a dead
// peer never pins compaction. Must run under the state lock.
func (s *peerSession) unregister(corp *corpus.Corpus) {
	if s.journalID < 0 {
		return
	}
	corp.DropPeer(s.journalID)
	s.journalID = -1
}

// sendDelta builds the outgoing half of one sync window under the state
// lock: every coverage word the remote is not known to hold (folded into
// the shadow as sent) and the local journal tail past localCursor, minus
// the spans that arrived from this very peer. The cursor and the journal
// registration advance to the journal end.
func (s *peerSession) sendDelta(virgin *coverage.Virgin, corp *corpus.Corpus) (virginDelta []byte, puzzles []corpus.Puzzle) {
	virginDelta = coverage.AppendVirginDelta(nil, virgin, s.shadow)
	from := s.localCursor
	// Index arithmetic only holds while the cursor is inside the live
	// journal; outside it ReadJournal serves a full signature-ordered
	// replay, where echo skipping is meaningless (and duplicates dedup on
	// the remote anyway).
	indexed := from >= corp.JournalBase() && from <= corp.JournalLen()
	idx := from
	corp.ReadJournal(from, func(p corpus.Puzzle) {
		if !indexed || !s.inEchoSpan(idx) {
			puzzles = append(puzzles, p)
		}
		idx++
	})
	if !indexed {
		// The cursor pointed outside the live journal — below the
		// compaction horizon, or minted by a previous incarnation of this
		// state (an acceptor restarted with everything lost) — so the read
		// above was a full replay and the only honest resume point is the
		// live end, which may be BELOW a stale cursor. Without this
		// rewind, a beyond-the-end cursor would be echoed back forever and
		// every window would degrade to a full replay instead of one.
		s.localCursor = corp.JournalLen()
	}
	s.advanceLocal(corp, corp.JournalLen())
	return virginDelta, puzzles
}

// absorbDelta folds the incoming half of a window into the shared state
// under the state lock: coverage into the union and the shadow (the remote
// holds what it sent), puzzles into the corpus — remembering the journal
// span they landed in so they are never echoed back over this link — and
// crash records into the bank, raising the watermarks.
func (s *peerSession) absorbDelta(virginDelta []byte, puzzles []corpus.Puzzle, records []*crash.Record,
	virgin *coverage.Virgin, corp *corpus.Corpus, bank *crash.Bank) error {
	if _, err := virgin.ApplyDelta(virginDelta); err != nil {
		return err
	}
	if _, err := s.shadow.ApplyDelta(virginDelta); err != nil {
		return err
	}
	pre := corp.JournalLen()
	for _, p := range puzzles {
		corp.Absorb(p)
	}
	if post := corp.JournalLen(); post > pre {
		if s.localCursor == pre {
			// Nothing interleaved since our last journal read: step the
			// cursor straight over the remote's material.
			s.advanceLocal(corp, post)
		} else {
			// Concurrent appends sit between the cursor and this block;
			// remember the block so the next tail read skips exactly the
			// absorbed entries and nothing else.
			s.echoSpans = append(s.echoSpans, [2]int{pre, post})
		}
	}
	for _, r := range records {
		bank.Absorb(r)
		if key := crash.RecordKey(r); r.Count > s.sentCrash[key] {
			s.sentCrash[key] = r.Count
		}
	}
	return nil
}

// crashDelta returns the records whose local count exceeds the remote's
// watermark, raising the watermarks to the returned counts. (Optimistic:
// if the window then fails in transport, resetWire rewinds the watermarks
// and everything is re-sent — Absorb merges idempotently.)
func (s *peerSession) crashDelta(records []*crash.Record) []*crash.Record {
	var out []*crash.Record
	for _, r := range records {
		key := crash.RecordKey(r)
		if sent, ok := s.sentCrash[key]; !ok || r.Count > sent {
			s.sentCrash[key] = r.Count
			out = append(out, r)
		}
	}
	return out
}

// advanceLocal moves the local read cursor (never backwards), keeps the
// journal registration with it, and drops echo spans the cursor has
// passed. Must run under the state lock.
func (s *peerSession) advanceLocal(corp *corpus.Corpus, cursor int) {
	if cursor > s.localCursor {
		s.localCursor = cursor
	}
	corp.AdvancePeer(s.journalID, s.localCursor)
	keep := s.echoSpans[:0]
	for _, span := range s.echoSpans {
		if span[1] > s.localCursor {
			keep = append(keep, span)
		}
	}
	s.echoSpans = keep
}

func (s *peerSession) inEchoSpan(idx int) bool {
	for _, span := range s.echoSpans {
		if idx >= span[0] && idx < span[1] {
			return true
		}
	}
	return false
}

// resetWire rewinds everything that described the lost connection: the
// replacement session's far side may not remember this link, so the shadow,
// local cursor, watermarks and echo spans go back to zero and everything is
// re-sent (merging idempotently). remoteCursor and the journal registration
// deliberately survive — the cursor indexes remote state the remote itself
// validates, and the registration keeps compaction honest until the link is
// explicitly closed.
func (s *peerSession) resetWire() {
	s.shadow = coverage.NewVirgin()
	s.localCursor = 0
	s.sentCrash = make(map[string]int)
	s.echoSpans = nil
}
