package fleetnet

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/coverage"
	"repro/internal/crash"
	"repro/internal/session"
	"repro/internal/targets/iec104"
)

// seqPool reads the stored sequences for one state model out of a shared
// sync state, deep-copied so assertions outlive the exchange.
func seqPool(state *core.SyncState, name string) [][]byte {
	var out [][]byte
	state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		for _, p := range corp.Sequences(name) {
			out = append(out, append([]byte(nil), p.Data...))
		}
		return nil
	}))
	return out
}

// injectSequence plants one encoded sequence in a shared state's corpus,
// the way a session worker's merge window would.
func injectSequence(state *core.SyncState, name string, enc []byte) {
	state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		corp.AddSequence(name, enc)
		return nil
	}))
}

// TestSequenceSyncLossless pins the wire v3 claim: session-sequence corpus
// entries cross a hub-leaf link bit-for-bit in both directions, arriving
// under the reserved signature namespace and still decoding to legal walks
// of the state model — the whole journey is opaque puzzle relay, no
// sequence-aware code on the wire path.
func TestSequenceSyncLossless(t *testing.T) {
	sm := iec104.IEC104StateModel()
	mkSeq := func(fill byte) []byte {
		seq := session.Sequence{Steps: []session.Step{
			{State: 0, Action: 0, Data: []byte{0x68, 0x04, 0x07, 0x00, 0x00, 0x00}},
			{State: 1, Action: 2, Data: bytes.Repeat([]byte{fill}, 14)},
			{State: 1, Action: 7, Data: []byte{0x68, 0x04, 0x01, 0x00, 0x02, 0x00}},
		}}
		if err := sm.Valid(seq); err != nil {
			t.Fatalf("test sequence is not a legal walk: %v", err)
		}
		return session.Encode(nil, seq)
	}

	state := core.NewSyncState(0)
	fleet, tgt := newLeafFleet(t, 31, 0)
	hub := startHub(t, state, tgt.Models())
	leaf := newTestLeaf(t, fleet, tgt, hub.Addr(), "seq-leaf")

	// Push: a sequence retained by the leaf's session campaign reaches the
	// hub on the next sync window.
	pushed := mkSeq(0xA5)
	injectSequence(fleet.State(), sm.Name, pushed)
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	hubSeqs := seqPool(state, sm.Name)
	if len(hubSeqs) != 1 || !bytes.Equal(hubSeqs[0], pushed) {
		t.Fatalf("hub sequences after push = %x, want exactly %x", hubSeqs, pushed)
	}

	// Pull: a sequence another leaf contributed comes back down intact.
	pulled := mkSeq(0x3C)
	injectSequence(state, sm.Name, pulled)
	if err := leaf.Sync(); err != nil {
		t.Fatal(err)
	}
	got := seqPool(fleet.State(), sm.Name)
	if len(got) != 2 {
		t.Fatalf("leaf has %d sequences after pull, want 2", len(got))
	}
	for _, enc := range got {
		if !bytes.Equal(enc, pushed) && !bytes.Equal(enc, pulled) {
			t.Fatalf("leaf sequence %x matches neither original", enc)
		}
		seq, err := session.Decode(enc)
		if err != nil {
			t.Fatalf("synced sequence does not decode: %v", err)
		}
		if err := sm.Valid(seq); err != nil {
			t.Fatalf("synced sequence is not a legal walk: %v", err)
		}
	}

	// The reserved namespace survived the trip: the entries are stored
	// under the sequence signature, invisible to donor lookups.
	state.Exchange(core.ExchangeFunc(func(_ *coverage.Virgin, corp *corpus.Corpus, _ *crash.Bank) error {
		for _, p := range corp.Sequences(sm.Name) {
			if !corpus.IsSeqSignature(p.Signature) {
				t.Errorf("synced sequence stored under non-reserved signature %q", p.Signature)
			}
		}
		return nil
	}))
}
