// Package fleetnet extends the fleet's batched merge protocol across
// hosts: nodes exchange deltas over TCP — virgin coverage bitmaps as
// dirty-word deltas, corpus puzzles as journal tails with resumable
// cursors, crash records as an idempotent dedup stream. The merge
// semantics are exactly the in-process Fleet's (every connection speaks to
// its local state through the same core.SyncPeer path worker engines use);
// this package only adds framing, transport, topology, and reconnect
// handling.
//
// Two topologies share one session protocol:
//
//   - hub/leaf: a Hub serves one campaign's shared state
//     (core.SyncState); Leaf nodes running local fleets dial it and sync
//     every N executions.
//   - mesh: every Mesh node runs the hub accept loop *and* leaf-style
//     uplinks to its peer set, so the fleet has no designated hub. Each
//     link keeps its own peerSession (shadow bitmap, journal cursors,
//     crash watermarks) — a vector of cursors per node, one per peer —
//     and the handshake exchanges peer addresses, so one seed address
//     bootstraps a whole mesh.
//
// # Wire protocol
//
// Every frame is length-prefixed: a 4-byte big-endian payload length, one
// type byte, then the payload. Integers inside payloads are unsigned
// varints unless noted; byte strings are a uvarint length followed by the
// bytes. The session is strictly request/response, dialer-driven:
//
//	dialer → acceptor   hello      magic, version, node id, target, model
//	                               digest, resume cursor into the
//	                               acceptor's journal, advertise address,
//	                               known peer addresses
//	acceptor → dialer   helloAck   negotiated version, acceptor model
//	                               digest, acceptor id, known peer
//	                               addresses
//	dialer → acceptor   sync       dialer stats, virgin delta, puzzle
//	                               delta, crash records, journal cursor
//	acceptor → dialer   syncAck    virgin delta, puzzle delta (from the
//	                               dialer's cursor), crash records, new
//	                               cursor, fleet stats
//	either side         error      human-readable reason; sender closes
//
// # Version negotiation
//
// A dialer sends the highest protocol version it speaks; the acceptor
// answers with min(its own highest, the dialer's). Both sides then require
// the negotiated version to be at least their own minimum supported
// version — otherwise they send an error frame and close. Version 2 added
// the peer-exchange fields to hello/helloAck; version 3 added session
// sequences to the corpus delta (as opaque puzzles — no layout change).
// This build speaks version 3 and accepts version 2, so a v1 peer is
// refused with a clear error rather than misdecoding frames, while a v2
// peer interoperates fully (sequence entries are opaque to it and relay
// losslessly).
//
// # Determinism
//
// A networked campaign is not bit-for-bit reproducible — sync timing
// depends on the network — but it preserves the same convergence guarantee
// as the in-process fleet: all exchanged state is monotonic (bitmap union,
// never-evicting journal merges, idempotent crash absorption), so any
// interleaving, duplication, or replay of sync windows yields the same
// final merged state for the same executed work. That is also the mesh
// convergence argument: duplicate delivery over redundant links (a puzzle
// arriving via two paths) merges to the same state as single delivery, so
// any connected topology — ring, star, full mesh, or one healing after a
// partition — converges to the union of all nodes' work.
package fleetnet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol version bounds spoken by this build. See the package comment
// for the negotiation rule.
const (
	// ProtocolVersion is the highest protocol version this build speaks.
	// v2 added the peer-exchange fields to hello/helloAck. v3 declares
	// session-sequence corpus entries (reserved "seq\x00" signature
	// namespace, versioned session-codec Data): sequences ride the
	// generic puzzle delta with no frame-layout change, so the bump is a
	// capability advertisement, not a wire change.
	ProtocolVersion = 3
	// MinProtocolVersion is the lowest peer version this build accepts.
	// v1 peers are refused: their hello/helloAck layouts lack the v2
	// peer-exchange tail, and a session negotiated below a build's wire
	// layout would misdecode frames. v2 peers remain accepted — the v3
	// sequence entries are ordinary puzzles to them, stored and relayed
	// losslessly (signature, model and data are opaque on the wire), so a
	// mixed-version fleet still converges to the union of all work.
	MinProtocolVersion = 2
)

// magic opens every hello frame; it rejects accidental connections from
// non-fleetnet clients before any allocation-heavy decoding.
const magic = "PSFN"

// maxFrame bounds a single frame's payload. The largest legitimate frame is
// a full-corpus replay after a reconnect; 64 MiB is far above any corpus
// this repository produces while still rejecting nonsense lengths from a
// corrupt stream.
const maxFrame = 64 << 20

// Frame types.
const (
	frameHello    = byte(1)
	frameHelloAck = byte(2)
	frameSync     = byte(3)
	frameSyncAck  = byte(4)
	frameError    = byte(5)
)

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("fleetnet: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// appendUvarint appends v as an unsigned varint.
func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

// appendBlob appends a length-prefixed byte string.
func appendBlob(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendU64 appends a fixed-width little-endian 64-bit value.
func appendU64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(dst, tmp[:]...)
}

// wireReader decodes a frame payload with sticky error handling: after the
// first malformed field every subsequent read returns zero values and the
// error survives until checked by done.
type wireReader struct {
	buf []byte
	pos int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("fleetnet: "+format, args...)
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *wireReader) blob() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)-r.pos) < n {
		r.fail("blob of %d bytes overruns frame at offset %d", n, r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

func (r *wireReader) str() string { return string(r.blob()) }

func (r *wireReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.pos < 8 {
		r.fail("truncated u64 at offset %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos : r.pos+8])
	r.pos += 8
	return v
}

// done returns the sticky decode error, or an error if the payload has
// undecoded trailing bytes.
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("fleetnet: %d trailing bytes in frame", len(r.buf)-r.pos)
	}
	return nil
}

// sendError best-effort ships an error frame before the sender closes the
// connection, so the far side logs a reason instead of a bare EOF.
func sendError(w io.Writer, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	writeFrame(w, frameError, appendString(nil, msg)) //nolint:errcheck — already tearing down
}

// negotiate applies the version rule from the package comment to a peer's
// advertised version and returns the effective session version.
func negotiate(peer uint64) (uint64, error) {
	eff := peer
	if eff > ProtocolVersion {
		eff = ProtocolVersion
	}
	if eff < MinProtocolVersion {
		return 0, fmt.Errorf("fleetnet: peer speaks protocol %d, this build needs %d..%d",
			peer, MinProtocolVersion, ProtocolVersion)
	}
	return eff, nil
}
