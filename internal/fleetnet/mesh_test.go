package fleetnet

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// newConvMesh builds one mesh node over a 1-worker conformance-target
// fleet, listening on loopback.
func newConvMesh(t *testing.T, fleet *core.Fleet, id string, static bool, peers ...string) *Mesh {
	t.Helper()
	m, err := NewMesh(MeshConfig{
		Fleet:      fleet,
		Target:     "conv",
		Models:     convModels(),
		NodeID:     id,
		Peers:      peers,
		StaticOnly: static,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// runMeshes drives each node to its exec budget on its own goroutine —
// the per-node driving loop a real deployment runs — and waits for all.
func runMeshes(t *testing.T, window int, nodes map[*Mesh]int) {
	t.Helper()
	var wg sync.WaitGroup
	for m, budget := range nodes {
		wg.Add(1)
		go func(m *Mesh, budget int) {
			defer wg.Done()
			if err := m.Run(budget, window); err != nil {
				t.Logf("mesh %s final sync: %v", m.cfg.NodeID, err)
			}
		}(m, budget)
	}
	wg.Wait()
}

// settle runs a few sequential sync rounds so every node's last
// discoveries propagate across the whole topology. Individual link errors
// are tolerated like the mesh itself tolerates them (a dead address may
// still be churning out of the peer books); the convergence assertions are
// the real check.
func settle(t *testing.T, nodes ...*Mesh) {
	t.Helper()
	for round := 0; round < 3; round++ {
		for _, m := range nodes {
			if err := m.Sync(); err != nil {
				t.Logf("settlement sync on %s: %v (continuing)", m.cfg.NodeID, err)
			}
		}
	}
}

// TestMeshThreeNodeConvergesToRunParallel is the acceptance test for mesh
// mode: a 3-node hub-less mesh campaign — every node running the accept
// loop plus uplinks, bootstrapped from a single seed address — must reach
// the same final edge and unique-crash counts as an equal-budget
// single-process 3-worker RunParallel campaign with the same seed, and
// must KEEP converging after one node is killed mid-campaign and a
// replacement bootstraps back in (partition/heal). No hub is configured
// anywhere: node A is only the bootstrap address, and the campaign
// finishes with A's accept loop being one of three equals.
func TestMeshThreeNodeConvergesToRunParallel(t *testing.T) {
	const (
		seed   = 77
		window = 512
		slice  = 4000 // per-node executions per phase
	)

	// Control: one process, 3 workers, same campaign seed, equal total
	// budget (3 nodes × 3 slices — the killed node's third is re-run by
	// its replacement).
	control := newConvFleet(t, seed, 3, 0)
	control.Run(9 * slice)
	want := control.Stats()
	if want.Edges == 0 || want.UniqueCrashes == 0 {
		t.Fatalf("control campaign found nothing (edges %d, crashes %d)", want.Edges, want.UniqueCrashes)
	}

	fleetA := newConvFleet(t, seed, 1, 0)
	fleetB := newConvFleet(t, seed, 1, 1)
	fleetC := newConvFleet(t, seed, 1, 2)
	nodeA := newConvMesh(t, fleetA, "node-a", false)
	nodeB := newConvMesh(t, fleetB, "node-b", false, nodeA.Addr())
	nodeC := newConvMesh(t, fleetC, "node-c", false, nodeA.Addr())

	// Phase 1: all three nodes fuzz concurrently.
	runMeshes(t, window, map[*Mesh]int{nodeA: slice, nodeB: slice, nodeC: slice})

	// Partition: node C dies. Its synced work survives in its peers; the
	// remaining links keep the campaign converging.
	nodeC.Close()

	// Phase 2: the survivors keep fuzzing (their links to C fail and are
	// tolerated).
	runMeshes(t, window, map[*Mesh]int{nodeA: 2 * slice, nodeB: 2 * slice})

	// Heal: a replacement node re-runs stream 2 from scratch on a fresh
	// fleet and bootstraps back into the mesh from the same seed address.
	fleetC2 := newConvFleet(t, seed, 1, 2)
	nodeC2 := newConvMesh(t, fleetC2, "node-c2", false, nodeA.Addr())

	// Phase 3: all three again; C2 spends the killed node's remaining
	// budget plus a make-up slice for the work lost with C's local state.
	runMeshes(t, window, map[*Mesh]int{nodeA: 3 * slice, nodeB: 3 * slice, nodeC2: 2 * slice})
	settle(t, nodeA, nodeB, nodeC2)

	fleets := map[string]*core.Fleet{"node-a": fleetA, "node-b": fleetB, "node-c2": fleetC2}
	for id, f := range fleets {
		s := f.Stats()
		if s.Edges != want.Edges {
			t.Errorf("%s edges = %d, single-process RunParallel edges = %d", id, s.Edges, want.Edges)
		}
		if s.UniqueCrashes != want.UniqueCrashes {
			t.Errorf("%s unique crashes = %d, single-process = %d", id, s.UniqueCrashes, want.UniqueCrashes)
		}
	}

	// Mesh-shaped, not hub-shaped: the seed node is reachable AND has
	// peers of its own in the book, and the healed node linked to BOTH
	// survivors (one learned through the peer exchange, having
	// bootstrapped from a single address).
	if _, inbound, _ := nodeA.PeerStats(); inbound < 2 {
		t.Errorf("seed node has %d inbound sessions, want >= 2", inbound)
	}
	if uplinks, _, known := nodeC2.PeerStats(); uplinks < 2 || known < 2 {
		t.Errorf("healed node: %d uplinks, %d known peers — peer exchange did not spread the mesh (want >= 2 each)", uplinks, known)
	}
}

// TestMeshRingTopologyConverges pins the StaticOnly mode: three nodes in a
// directed ring (A→B→C→A), no learned dialing, must still converge — every
// link exchanges both directions, so a connected directed topology
// suffices — while each node keeps exactly its one configured uplink.
func TestMeshRingTopologyConverges(t *testing.T) {
	const (
		seed   = 101
		window = 512
		budget = 6000
	)
	fleetA := newConvFleet(t, seed, 1, 0)
	fleetB := newConvFleet(t, seed, 1, 1)
	fleetC := newConvFleet(t, seed, 1, 2)
	nodeA := newConvMesh(t, fleetA, "ring-a", true)
	nodeB := newConvMesh(t, fleetB, "ring-b", true)
	nodeC := newConvMesh(t, fleetC, "ring-c", true)
	// Wire the ring once every node has a bound address.
	nodeA.AddPeer(nodeB.Addr())
	nodeB.AddPeer(nodeC.Addr())
	nodeC.AddPeer(nodeA.Addr())

	runMeshes(t, window, map[*Mesh]int{nodeA: budget, nodeB: budget, nodeC: budget})
	settle(t, nodeA, nodeB, nodeC)

	edges := fleetA.Stats().Edges
	if edges == 0 {
		t.Fatal("ring campaign found no coverage")
	}
	for id, f := range map[string]*core.Fleet{"ring-b": fleetB, "ring-c": fleetC} {
		if got := f.Stats().Edges; got != edges {
			t.Errorf("%s edges = %d, ring-a edges = %d: ring did not converge", id, got, edges)
		}
	}
	for _, m := range []*Mesh{nodeA, nodeB, nodeC} {
		if uplinks, _, _ := m.PeerStats(); uplinks != 1 {
			t.Errorf("%s keeps %d uplinks in StaticOnly ring, want exactly 1", m.cfg.NodeID, uplinks)
		}
	}
}
