package fleetnet

import (
	"context"
	"net"
	"time"
)

// This file is the context-cancellation glue for the wire layer. The
// protocol code reads and writes whole frames under per-frame deadlines;
// contexts add a second, caller-owned way out, so a canceled campaign
// tears its sessions down in the time it takes a blocked read to notice —
// not in a full frame timeout.

// watchContext arranges for a cancellation of ctx to interrupt any frame
// I/O blocked on conn, by yanking the connection's deadline into the past
// (the blocked read or write returns a timeout error, the caller's error
// path resets the session, and the session's next use redials). The
// returned release function stops the watch and must be called before the
// connection's next legitimate deadline is set; contexts that can never
// be canceled cost nothing.
func watchContext(ctx context.Context, conn net.Conn) (release func()) {
	if conn == nil || ctx.Done() == nil {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Now())
		case <-stop:
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}
