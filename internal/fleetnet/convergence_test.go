package fleetnet

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/datamodel"
	"repro/internal/mem"
	"repro/internal/sandbox"
)

// convTarget is the conformance target for the distributed-vs-local
// equivalence test. It mirrors the shape of the ICS targets (opcode gate,
// size relation, checksum, shared payload rules rewarding cross-opcode
// donation) but its edge space is small enough that any topology fully
// saturates it within a few thousand executions. That matters: final edge
// counts of two *differently interleaved* campaigns are only comparable
// when both have exhausted the reachable edge set — on the big targets
// rare donor-chain edges make the final count interleaving-sensitive, so
// exact cross-topology equality is only well-defined at saturation.
type convTarget struct {
	ids []coverage.BlockID
}

func newConvTarget() *convTarget {
	return &convTarget{ids: coverage.Blocks("fleetnet-conv", 32)}
}

func (ct *convTarget) Handle(tr *coverage.Tracer, pkt []byte) {
	tr.Hit(ct.ids[0])
	if len(pkt) < 3 {
		tr.Hit(ct.ids[1])
		return
	}
	op, ln := pkt[0], int(pkt[1])
	if 2+ln+1 != len(pkt) {
		tr.Hit(ct.ids[2])
		return
	}
	var sum byte
	for _, b := range pkt[:len(pkt)-1] {
		sum += b
	}
	if sum != pkt[len(pkt)-1] {
		tr.Hit(ct.ids[3])
		return
	}
	payload := pkt[2 : 2+ln]
	for _, b := range payload {
		if b&1 == 0 {
			tr.Hit(ct.ids[4])
		} else {
			tr.Hit(ct.ids[5])
		}
	}
	if op < 1 || op > 3 {
		tr.Hit(ct.ids[6])
		return
	}
	base := int(op-1) * 6
	tr.Hit(ct.ids[7+base])
	if len(payload) >= 1 && payload[0] == 0xAB {
		tr.Hit(ct.ids[8+base])
		if len(payload) >= 8 {
			tr.Hit(ct.ids[9+base])
			if op == 2 {
				panic(&mem.Fault{Kind: mem.SEGV, Site: "conv.op2"})
			}
			if payload[7] == op {
				tr.Hit(ct.ids[10+base])
			}
		}
	}
}

func convModels() []*datamodel.Model {
	mk := func(op uint64) *datamodel.Model {
		return datamodel.NewModel(
			map[uint64]string{1: "op1", 2: "op2", 3: "op3"}[op],
			datamodel.Num("op", 1, op).AsToken(),
			datamodel.Num("len", 1, 0).WithRel(datamodel.SizeOf, "payload", 0),
			datamodel.BytesVar("payload", 0, 16, []byte{0, 0}),
			datamodel.Num("sum", 1, 0).WithFix(datamodel.Sum8, "op", "len", "payload"),
		)
	}
	return []*datamodel.Model{mk(1), mk(2), mk(3)}
}

func newConvFleet(t *testing.T, seed uint64, workers, stream int) *core.Fleet {
	t.Helper()
	f, err := core.NewFleet(core.Config{
		Models:   convModels(),
		Target:   newConvTarget(),
		Strategy: core.StrategyPeachStar,
		Seed:     seed,
	}, core.ParallelConfig{
		Workers:    workers,
		SeedStream: stream,
		NewTarget:  func() sandbox.Target { return newConvTarget() },
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestLoopbackTwoNodeConvergesToRunParallel is the acceptance integration
// test for the network transport: a hub plus two leaves on loopback, each
// leaf spending half the budget on the RNG stream the corresponding local
// worker would use, must reach the same final edge count — and the same
// unique-crash count — as a single-process 2-worker RunParallel campaign
// of equal total budget and the same campaign seed. The leaves run
// concurrently, so the test also exercises the hub's locking under -race.
func TestLoopbackTwoNodeConvergesToRunParallel(t *testing.T) {
	const (
		seed   = 42
		budget = 30000 // total; the conformance target saturates far earlier
	)

	local := newConvFleet(t, seed, 2, 0)
	local.Run(budget)
	want := local.Stats()
	if want.Edges == 0 {
		t.Fatal("control campaign found no coverage")
	}

	state := core.NewSyncState(0)
	hub, err := NewHub(HubConfig{State: state, Target: "conv", Models: convModels(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	fleets := []*core.Fleet{newConvFleet(t, seed, 1, 0), newConvFleet(t, seed, 1, 1)}
	leaves := make([]*Leaf, len(fleets))
	for i, f := range fleets {
		leaf, err := NewLeaf(LeafConfig{
			Fleet:  f,
			Addr:   hub.Addr(),
			Target: "conv",
			Models: convModels(),
			NodeID: []string{"leaf-a", "leaf-b"}[i],
			Logf:   t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer leaf.Close()
		leaves[i] = leaf
	}

	var wg sync.WaitGroup
	for _, l := range leaves {
		wg.Add(1)
		go func(l *Leaf) {
			defer wg.Done()
			if err := l.Run(budget/2, 512); err != nil {
				t.Errorf("%v", err)
			}
		}(l)
	}
	wg.Wait()
	// Final settlement: each leaf's last push may postdate the other's
	// last pull, so one more round each propagates the union everywhere.
	for _, l := range leaves {
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}

	if got := fleets[0].Execs() + fleets[1].Execs(); got < budget {
		t.Fatalf("distributed campaign spent %d execs, want >= %d", got, budget)
	}
	if got := state.Edges(); got != want.Edges {
		t.Fatalf("hub union edges = %d, single-process RunParallel edges = %d", got, want.Edges)
	}
	for i, f := range fleets {
		s := f.Stats()
		if s.Edges != want.Edges {
			t.Fatalf("leaf %d edges = %d, single-process RunParallel edges = %d", i, s.Edges, want.Edges)
		}
		if s.UniqueCrashes != want.UniqueCrashes {
			t.Fatalf("leaf %d unique crashes = %d, single-process = %d", i, s.UniqueCrashes, want.UniqueCrashes)
		}
	}
	// The exchanged corpora must agree on the rule signatures learned.
	sigsA, sigsB := fleets[0].Corpus().Signatures(), fleets[1].Corpus().Signatures()
	if len(sigsA) != len(sigsB) {
		t.Fatalf("leaf corpora diverged: %d vs %d signatures", len(sigsA), len(sigsB))
	}
	for i := range sigsA {
		if sigsA[i] != sigsB[i] {
			t.Fatalf("leaf corpora diverged at signature %d: %q vs %q", i, sigsA[i], sigsB[i])
		}
	}
}

// TestSingleLeafTransportLossless pins the transport's behavioral
// neutrality: one leaf syncing with a hub that has no other input must be
// bit-for-bit identical to the same fleet driven without any networking —
// pushing your own state and pulling it back is a no-op. This is the
// distributed extension of the workers=1 ≡ serial guarantee.
func TestSingleLeafTransportLossless(t *testing.T) {
	const (
		budget = 30000
		window = 256
	)
	control, _ := newLeafFleet(t, 99, 0)
	for control.Execs() < budget {
		next := control.Execs() + window
		if next > budget {
			next = budget
		}
		control.Run(next)
		// Leaf.Sync flushes twice per window (before and after the wire
		// exchange); mirror it exactly.
		control.SyncAll()
		control.SyncAll()
	}
	control.SyncAll()
	control.SyncAll()

	state := core.NewSyncState(0)
	fleet, tgt := newLeafFleet(t, 99, 0)
	hub := startHub(t, state, tgt.Models())
	leaf := newTestLeaf(t, fleet, tgt, hub.Addr(), "leaf-lossless")
	if err := leaf.Run(budget, window); err != nil {
		t.Fatal(err)
	}

	cs, ls := control.Stats(), fleet.Stats()
	if !reflect.DeepEqual(cs, ls) {
		t.Fatalf("networked single leaf diverged:\ncontrol %+v\nleaf    %+v", cs, ls)
	}
}
